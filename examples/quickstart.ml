(* Quickstart: build a 3-replica cluster with lazy coarse-grained strong
   consistency, run a few transactions, and inspect the results.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Define a schema. *)
  let inventory =
    Storage.Schema.make ~name:"inventory"
      ~columns:
        [ ("sku", Storage.Value.Tint); ("name", Storage.Value.Ttext);
          ("stock", Storage.Value.Tint) ]
      ~key:[ "sku" ] ()
  in
  (* 2. Create the replicated cluster: every replica gets a copy of the
        database; the [load] callback populates each copy identically. *)
  let config =
    { Core.Config.default with replicas = 3; gc_interval_ms = 0.0; hiccup_interval_ms = 0.0 }
  in
  let cluster =
    Core.Cluster.create ~config ~tracing:true ~mode:Core.Consistency.Coarse
      ~schemas:[ inventory ]
      ~load:(fun db ->
        Storage.Database.load db "inventory"
          [
            [| Storage.Value.Int 1; Storage.Value.Text "widget"; Storage.Value.Int 10 |];
            [| Storage.Value.Int 2; Storage.Value.Text "gadget"; Storage.Value.Int 5 |];
          ])
      ()
  in
  let engine = Core.Cluster.engine cluster in
  (* 3. Transactions are lists of prepared statements. This one sells two
        widgets. *)
  let sell sku qty =
    Core.Transaction.make ~profile:"sell"
      [
        Storage.Query.Update_key
          {
            table = "inventory";
            key = [| Storage.Value.Int sku |];
            set = [ ("stock", Storage.Expr.(Col 2 - i qty)) ];
          };
      ]
  in
  let check_stock sku =
    Core.Transaction.make ~profile:"check"
      [ Storage.Query.Get { table = "inventory"; key = [| Storage.Value.Int sku |] } ]
  in
  (* 4. Submit transactions from a simulated client process. *)
  Sim.Process.spawn engine (fun () ->
      (match Core.Cluster.submit cluster ~sid:1 (sell 1 2) with
      | Core.Transaction.Committed { commit_version; response_ms; _ } ->
        Printf.printf "sale committed at version %s in %.2f ms\n"
          (match commit_version with Some v -> string_of_int v | None -> "?")
          response_ms
      | Core.Transaction.Aborted { reason; _ } ->
        Format.printf "sale aborted: %a@." Core.Transaction.pp_abort_reason reason);
      (* Strong consistency: this read — from a different session, on
         whatever replica the balancer picks — must see the sale. *)
      match Core.Cluster.submit cluster ~sid:2 (check_stock 1) with
      | Core.Transaction.Committed { snapshot; response_ms; _ } ->
        Printf.printf "read ran at snapshot v%d in %.2f ms\n" snapshot response_ms
      | Core.Transaction.Aborted _ -> print_endline "read aborted");
  (* 5. Run the simulation to completion. *)
  Sim.Engine.run engine;
  (* 6. Every replica converged to the same state. *)
  for i = 0 to 2 do
    let db = Core.Replica.database (Core.Cluster.replica cluster i) in
    match
      Storage.Table.read
        (Storage.Database.table db "inventory")
        ~key:[| Storage.Value.Int 1 |]
        ~at:(Storage.Database.version db)
    with
    | Some row ->
      Printf.printf "replica %d: widget stock = %d (v_local = %d)\n" i
        (Storage.Value.as_int row.(2))
        (Storage.Database.version db)
    | None -> Printf.printf "replica %d: row missing!\n" i
  done;
  (* 7. The cluster was created with [~tracing:true], so every stage of
        both transactions (and the refresh applies on the other replicas)
        left a span. Dump them, then export Chrome trace-event JSON —
        load quickstart_trace.json in chrome://tracing or
        ui.perfetto.dev to see the timeline. *)
  match Core.Cluster.trace cluster with
  | None -> ()
  | Some trace ->
    Format.printf "@.trace (%d spans):@.%a@." (Obs.Trace.length trace)
      Obs.Export.pp_text trace;
    Obs.Export.write_chrome_trace trace ~file:"quickstart_trace.json";
    print_endline "wrote quickstart_trace.json"

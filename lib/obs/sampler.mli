(** Periodic resource sampling: a simulation process that reads a set of
    probes every [interval_ms] of virtual time and accumulates
    per-probe time series — the evidence for diagnosing stalls
    (certifier queueing vs refresh backlog vs CPU saturation).

    Unlike {!Trace}, a {e running} sampler does schedule simulation
    events (one wake-up per interval). The probes themselves only read
    state, so transaction timings are unaffected, but only start a
    sampler when telemetry is wanted. *)

type t

type series = { name : string; points : (float * float) array }
(** [(virtual-time-ms, value)] pairs in sample order. *)

val create : ?interval_ms:float -> Sim.Engine.t -> t
(** Default interval: 100 ms of virtual time. *)

val add : t -> name:string -> (unit -> float) -> unit
(** Register a probe; it is read on every tick once {!start}ed. *)

val add_resource : t -> name:string -> Sim.Resource.t -> unit
(** Registers [name.busy], [name.queue] and [name.util] probes for a
    simulated resource. *)

val start : t -> unit
(** Spawn the sampling process. The process exits after {!stop}, letting
    horizonless [Engine.run] drain. *)

val stop : t -> unit

val running : t -> bool

val interval_ms : t -> float

val sample_all : t -> unit
(** Take one sample of every probe now (also used by the tick loop). *)

val series : t -> series list
(** One series per probe, in registration order. *)

val pp : Format.formatter -> t -> unit
(** Compact mean/peak summary per series. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.6g" x)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num x -> add_num buf x
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  add buf v;
  Buffer.contents buf

(* --- a small recursive-descent parser (enough to read traces back) --- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let literal c word value =
  if
    c.pos + String.length word <= String.length c.src
    && String.sub c.src c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then error c "truncated \\u escape";
        let hex = String.sub c.src (c.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> error c "bad \\u escape"
        in
        (* Traces only contain ASCII; decode the BMP code point naively. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
        c.pos <- c.pos + 4
      | _ -> error c "bad escape");
      advance c;
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then error c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some x -> x
  | None -> error c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { src = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage"
    else Ok v
  with Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_str = function Str s -> Some s | _ -> None

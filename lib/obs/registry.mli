(** Named counters and gauges with snapshot support.

    Counters are monotonically increasing integers (commits, aborts,
    retries); gauges are instantaneous floats (queue depths, log size).
    Handles are find-or-create by name, so instrumentation sites can look
    them up once and bump a bare [ref] on the hot path. The registry is
    pure bookkeeping: it never touches the simulation clock. *)

type t

type counter

type gauge

val create : unit -> t

val counter : t -> string -> counter
(** Find or create. Raises [Invalid_argument] if the name is a gauge. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val gauge : t -> string -> gauge
(** Find or create. Raises [Invalid_argument] if the name is a counter. *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val find : t -> string -> float option
(** Current value by name, counters widened to float. *)

val snapshot : t -> (string * float) list
(** All metrics, sorted by name. *)

val reset : t -> unit
(** Zero every metric (e.g. at the end of warm-up). *)

val pp : Format.formatter -> t -> unit

(** The tracing context: allocates span and trace ids on virtual time and
    retains finished spans in a bounded ring buffer (the in-memory sink).

    Tracing never schedules simulation events, never consumes random
    numbers, and never blocks — an instrumented run is {e bit-identical}
    in virtual time to an uninstrumented one. Instrumentation sites hold
    a [Trace.t option]; the [_opt] variants make the disabled path a
    single branch. *)

type t

val create : ?capacity:int -> Sim.Engine.t -> t
(** Ring-buffer capacity defaults to 65536 finished spans; once full, the
    oldest span is overwritten and {!dropped} increments. *)

val engine : t -> Sim.Engine.t

val now : t -> float
(** Current virtual time in ms. *)

val next_trace_id : t -> int
(** Allocate a fresh trace id (one per transaction). *)

val start :
  t ->
  trace_id:int ->
  ?parent:Span.t ->
  ?at:float ->
  component:Span.component ->
  name:string ->
  ?args:(string * string) list ->
  unit ->
  Span.t
(** Open a span at the current virtual time (or retroactively at [at]).
    The span is not in the buffer until {!finish}ed. *)

val finish : t -> ?args:(string * string) list -> ?at:float -> Span.t -> unit
(** Close the span at the current virtual time (or at [at]) and retain
    it. *)

val instant : t -> trace_id:int -> ?parent:Span.t -> component:Span.component ->
  name:string -> ?args:(string * string) list -> unit -> unit
(** A zero-duration span (rendered as an instant event). *)

(** {2 Option-threaded variants for instrumentation sites} *)

val start_opt :
  t option ->
  trace_id:int ->
  ?parent:Span.t option ->
  component:Span.component ->
  name:string ->
  ?args:(string * string) list ->
  unit ->
  Span.t option

val finish_opt : t option -> ?args:(string * string) list -> Span.t option -> unit

val instant_opt :
  t option -> trace_id:int -> component:Span.component -> name:string ->
  ?args:(string * string) list -> unit -> unit

(** {2 Reading the sink} *)

val spans : t -> Span.t list
(** Finished spans, oldest first (in finish order). *)

val length : t -> int
(** Spans currently retained. *)

val dropped : t -> int
(** Spans overwritten because the ring was full. *)

val clear : t -> unit

(** Windowed time-series telemetry on virtual time.

    A {!t} carves the run into fixed windows of [window_ms] virtual
    milliseconds and aggregates three kinds of channels per window:

    - {e counters} ({!counter}/{!bump}): event counts that reset at
      every window boundary (commits, aborts, certifier decisions,
      retransmits, fault injections) — a window's count divided by its
      span is the windowed rate (TPS, decisions/sec);
    - {e distributions} ({!dist}/{!observe}): per-window mergeable
      log-bucketed latency histograms ({!Util.Histogram.Log}), closed
      into p50/p95/p99/max summaries and additionally merged into a
      whole-run histogram per channel;
    - {e probes} ({!add_probe}): gauges read once at each window close
      (replica lag, certifier log length, watermark horizon, epoch).

    Recording costs one hash-free mutation on the hot path; window
    rollover is driven by a simulation process ({!start}) that wakes
    once per window, like {!Sampler}. Nothing here draws randomness or
    perturbs protocol events, so an instrumented run is bit-identical
    in outcome to an uninstrumented one, and two instrumented runs with
    the same seed produce identical series (both are pinned by tests). *)

type t

type counter

type dist

(** One closed window. Channel lists are sorted by name. *)
type summary = {
  count : int;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type window = {
  seq : int;  (** 0-based window index *)
  start_ms : float;
  end_ms : float;
  counters : (string * int) list;
  gauges : (string * float) list;
  dists : (string * summary) list;
}

val create : ?window_ms:float -> ?buckets_per_decade:int -> Sim.Engine.t -> t
(** Defaults: 250 ms windows, 40 histogram buckets per decade. Raises
    [Invalid_argument] on a non-positive window. *)

val window_ms : t -> float

val counter : t -> string -> counter
(** Find or create a per-window counter channel by name. *)

val bump : ?by:int -> counter -> unit

val dist : t -> string -> dist
(** Find or create a per-window distribution channel by name. *)

val observe : dist -> float -> unit

val add_probe : t -> name:string -> (unit -> float) -> unit
(** Register a gauge read at every window close. *)

val add_pre_close : t -> (unit -> unit) -> unit
(** Register a hook run at every window close {e before} the window is
    snapshotted — the place to {!bump} counters with deltas of external
    monotonic sources. *)

val start : t -> unit
(** Spawn the window-rollover process. The process exits after {!stop},
    letting a horizonless [Engine.run] drain. *)

val stop : t -> unit

val running : t -> bool

val flush : t -> unit
(** Close the current window now, if any virtual time has elapsed in it.
    Call after {!stop} to capture the final partial window. *)

val windows : t -> window list
(** Closed windows, oldest first. *)

val merged : t -> string -> Util.Histogram.Log.t option
(** The whole-run histogram of a distribution channel: every closed
    window's histogram merged ({!Util.Histogram.Log.merge}). *)

val rate_per_sec : window -> string -> float
(** A counter's windowed rate: count over the window span, per second of
    virtual time; 0 for an unknown name or an empty window. *)

val gauge_value : window -> string -> float option

val summary_of : window -> string -> summary option

type metric = Counter of int ref | Gauge of float ref

type t = { metrics : (string, metric) Hashtbl.t }

type counter = int ref

type gauge = float ref

let create () = { metrics = Hashtbl.create 32 }

let counter t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter c) -> c
  | Some (Gauge _) -> invalid_arg (Printf.sprintf "Registry.counter: %S is a gauge" name)
  | None ->
    let c = ref 0 in
    Hashtbl.replace t.metrics name (Counter c);
    c

let incr ?(by = 1) c = c := !c + by

let counter_value c = !c

let gauge t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Gauge g) -> g
  | Some (Counter _) ->
    invalid_arg (Printf.sprintf "Registry.gauge: %S is a counter" name)
  | None ->
    let g = ref 0.0 in
    Hashtbl.replace t.metrics name (Gauge g);
    g

let set g v = g := v

let gauge_value g = !g

let find t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter c) -> Some (float_of_int !c)
  | Some (Gauge g) -> Some !g
  | None -> None

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v = match m with Counter c -> float_of_int !c | Gauge g -> !g in
      (name, v) :: acc)
    t.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.iter
    (fun _ m -> match m with Counter c -> c := 0 | Gauge g -> g := 0.0)
    t.metrics

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) ->
      if Float.is_integer v then Format.fprintf ppf "%-32s %12.0f@," name v
      else Format.fprintf ppf "%-32s %12.3f@," name v)
    (snapshot t);
  Format.fprintf ppf "@]"

type t = {
  engine : Sim.Engine.t;
  capacity : int;
  ring : Span.t option array;
  mutable write : int;  (* next slot to overwrite *)
  mutable stored : int;
  mutable dropped : int;
  mutable next_span_id : int;
  mutable next_trace_id : int;
}

let create ?(capacity = 65_536) engine =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    engine;
    capacity;
    ring = Array.make capacity None;
    write = 0;
    stored = 0;
    dropped = 0;
    next_span_id = 0;
    next_trace_id = 0;
  }

let engine t = t.engine

let now t = Sim.Engine.now t.engine

let next_trace_id t =
  let id = t.next_trace_id in
  t.next_trace_id <- id + 1;
  id

let push t span =
  if t.ring.(t.write) <> None then t.dropped <- t.dropped + 1
  else t.stored <- t.stored + 1;
  t.ring.(t.write) <- Some span;
  t.write <- (t.write + 1) mod t.capacity

let start t ~trace_id ?parent ?at ~component ~name ?(args = []) () =
  let id = t.next_span_id in
  t.next_span_id <- id + 1;
  {
    Span.id;
    trace_id;
    parent = Option.map (fun (p : Span.t) -> p.Span.id) parent;
    name;
    component;
    start_ms = (match at with Some time -> time | None -> now t);
    end_ms = Float.nan;
    args;
  }

let finish t ?(args = []) ?at span =
  span.Span.end_ms <- (match at with Some time -> time | None -> now t);
  if args <> [] then Span.add_args span args;
  push t span

let instant t ~trace_id ?parent ~component ~name ?(args = []) () =
  let span = start t ~trace_id ?parent ~component ~name ~args () in
  finish t span

(* Option-threaded variants: instrumentation sites hold a [t option] so a
   disabled run pays one branch and no allocation. *)

let start_opt t ~trace_id ?parent ~component ~name ?args () =
  match t with
  | None -> None
  | Some t ->
    let parent = Option.join parent in
    Some (start t ~trace_id ?parent ~component ~name ?args ())

let finish_opt t ?args span =
  match (t, span) with
  | Some t, Some span -> finish t ?args span
  | _ -> ()

let instant_opt t ~trace_id ~component ~name ?args () =
  match t with None -> () | Some t -> instant t ~trace_id ~component ~name ?args ()

let spans t =
  (* Oldest-first: the ring wraps at [write]. *)
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    match t.ring.((t.write + i) mod t.capacity) with
    | Some s -> acc := s :: !acc
    | None -> ()
  done;
  !acc

let length t = t.stored

let dropped t = t.dropped

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.write <- 0;
  t.stored <- 0;
  t.dropped <- 0

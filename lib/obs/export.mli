(** Trace sinks: Chrome trace-event JSON and a compact text dump.

    The JSON loads in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}: components render as processes (load balancer, replicas,
    certifier, clients), replicas as threads, spans as nested slices,
    and sampler series as counter tracks. *)

val chrome_json : ?sampler:Sampler.t -> ?timeseries:Timeseries.t -> Trace.t -> Json.t
(** The trace as a [{"traceEvents": [...]}] document; pass [sampler]
    and/or [timeseries] to include their series as counter events. *)

val chrome_trace : ?sampler:Sampler.t -> ?timeseries:Timeseries.t -> Trace.t -> string

val write_chrome_trace :
  ?sampler:Sampler.t -> ?timeseries:Timeseries.t -> Trace.t -> file:string -> unit

val timeseries_json : Timeseries.t -> Json.t
(** The windowed series as a standalone document:
    [{"window_ms": w, "windows": [{"seq", "start_ms", "end_ms",
    "counters": {..}, "gauges": {..}, "dists": {name: {"count", "p50",
    "p95", "p99", "max"}}}]}]. Field order is deterministic (channels
    sorted by name), so two same-seed runs serialize byte-identically. *)

val write_timeseries : Timeseries.t -> file:string -> unit

val pp_text : Format.formatter -> Trace.t -> unit
(** One line per finished span, oldest first. *)

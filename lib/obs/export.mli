(** Trace sinks: Chrome trace-event JSON and a compact text dump.

    The JSON loads in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}: components render as processes (load balancer, replicas,
    certifier, clients), replicas as threads, spans as nested slices,
    and sampler series as counter tracks. *)

val chrome_json : ?sampler:Sampler.t -> Trace.t -> Json.t
(** The trace as a [{"traceEvents": [...]}] document; pass [sampler] to
    include its time series as counter events. *)

val chrome_trace : ?sampler:Sampler.t -> Trace.t -> string

val write_chrome_trace : ?sampler:Sampler.t -> Trace.t -> file:string -> unit

val pp_text : Format.formatter -> Trace.t -> unit
(** One line per finished span, oldest first. *)

type probe = { name : string; read : unit -> float; samples : (float * float) Util.Vec.t }

type t = {
  engine : Sim.Engine.t;
  interval_ms : float;
  probes : probe Util.Vec.t;
  mutable running : bool;
}

type series = { name : string; points : (float * float) array }

let create ?(interval_ms = 100.0) engine =
  if interval_ms <= 0.0 then invalid_arg "Sampler.create: interval must be positive";
  { engine; interval_ms; probes = Util.Vec.create (); running = false }

let add t ~name read = Util.Vec.push t.probes { name; read; samples = Util.Vec.create () }

let add_resource t ~name r =
  add t ~name:(name ^ ".busy") (fun () -> float_of_int (Sim.Resource.busy r));
  add t ~name:(name ^ ".queue") (fun () -> float_of_int (Sim.Resource.queue_length r));
  add t ~name:(name ^ ".util") (fun () -> Sim.Resource.utilization r)

let sample_all t =
  let now = Sim.Engine.now t.engine in
  for i = 0 to Util.Vec.length t.probes - 1 do
    let p = Util.Vec.get t.probes i in
    Util.Vec.push p.samples (now, p.read ())
  done

let start t =
  if t.running then invalid_arg "Sampler.start: already running";
  t.running <- true;
  Sim.Process.spawn t.engine (fun () ->
      let rec loop () =
        if t.running then begin
          sample_all t;
          Sim.Process.sleep t.engine t.interval_ms;
          loop ()
        end
      in
      loop ())

let stop t = t.running <- false

let running t = t.running

let interval_ms t = t.interval_ms

let series t =
  List.map
    (fun (p : probe) ->
      { name = p.name; points = Array.of_list (Util.Vec.to_list p.samples) })
    (Util.Vec.to_list t.probes)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      let n = Array.length s.points in
      if n = 0 then Format.fprintf ppf "%-28s (no samples)@," s.name
      else begin
        let sum = Array.fold_left (fun acc (_, v) -> acc +. v) 0.0 s.points in
        let peak = Array.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity s.points in
        Format.fprintf ppf "%-28s %5d samples  mean %8.3f  peak %8.3f@," s.name n
          (sum /. float_of_int n) peak
      end)
    (series t);
  Format.fprintf ppf "@]"

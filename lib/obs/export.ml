(* Chrome trace-event export: load the file in chrome://tracing or
   https://ui.perfetto.dev. Spans become complete ("X") events, sampler
   series become counter ("C") events, and metadata events name one
   process per component with one thread per replica. *)

let telemetry_pid = 5

let us ms = ms *. 1000.0

let span_event (s : Span.t) =
  let args =
    ("trace", Json.Num (float_of_int s.Span.trace_id))
    :: (match s.Span.parent with
       | None -> []
       | Some p -> [ ("parent_span", Json.Num (float_of_int p)) ])
    @ List.map (fun (k, v) -> (k, Json.Str v)) s.Span.args
  in
  Json.Obj
    [
      ("name", Json.Str s.Span.name);
      ("cat", Json.Str (Span.component_name s.Span.component));
      ("ph", Json.Str "X");
      ("ts", Json.Num (us s.Span.start_ms));
      ("dur", Json.Num (us (Span.duration_ms s)));
      ("pid", Json.Num (float_of_int (Span.pid s.Span.component)));
      ("tid", Json.Num (float_of_int (Span.tid s.Span.component)));
      ("args", Json.Obj args);
    ]

let metadata_events spans =
  let processes = Hashtbl.create 8 and threads = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.t) ->
      let c = s.Span.component in
      Hashtbl.replace processes (Span.pid c) (Span.component_name c);
      Hashtbl.replace threads (Span.pid c, Span.tid c) (Span.thread_name c))
    spans;
  let meta name pid ?tid label =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("ph", Json.Str "M");
         ("pid", Json.Num (float_of_int pid));
       ]
      @ (match tid with None -> [] | Some t -> [ ("tid", Json.Num (float_of_int t)) ])
      @ [ ("args", Json.Obj [ ("name", Json.Str label) ]) ])
  in
  let procs =
    Hashtbl.fold (fun pid label acc -> (pid, label) :: acc) processes []
    |> List.sort compare
    |> List.map (fun (pid, label) -> meta "process_name" pid label)
  in
  let thrs =
    Hashtbl.fold (fun key label acc -> (key, label) :: acc) threads []
    |> List.sort compare
    |> List.map (fun ((pid, tid), label) -> meta "thread_name" pid ~tid label)
  in
  procs @ thrs

let counter_events (sampler : Sampler.t) =
  List.concat_map
    (fun (s : Sampler.series) ->
      Array.to_list s.Sampler.points
      |> List.map (fun (time_ms, value) ->
             Json.Obj
               [
                 ("name", Json.Str s.Sampler.name);
                 ("ph", Json.Str "C");
                 ("ts", Json.Num (us time_ms));
                 ("pid", Json.Num (float_of_int telemetry_pid));
                 ("args", Json.Obj [ ("value", Json.Num value) ]);
               ]))
    (Sampler.series sampler)

let chrome_json ?sampler trace =
  let spans = Trace.spans trace in
  let counters =
    match sampler with
    | None -> []
    | Some s ->
      let telemetry_name =
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num (float_of_int telemetry_pid));
            ("args", Json.Obj [ ("name", Json.Str "telemetry") ]);
          ]
      in
      telemetry_name :: counter_events s
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (metadata_events spans @ List.map span_event spans @ counters));
      ("displayTimeUnit", Json.Str "ms");
    ]

let chrome_trace ?sampler trace = Json.to_string (chrome_json ?sampler trace)

let write_chrome_trace ?sampler trace ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace ?sampler trace))

let pp_text ppf trace =
  let spans = Trace.spans trace in
  Format.fprintf ppf "@[<v>%d spans (%d dropped)@," (List.length spans)
    (Trace.dropped trace);
  List.iter (fun s -> Format.fprintf ppf "%a@," Span.pp s) spans;
  Format.fprintf ppf "@]"

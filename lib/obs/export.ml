(* Chrome trace-event export: load the file in chrome://tracing or
   https://ui.perfetto.dev. Spans become complete ("X") events, sampler
   series become counter ("C") events, and metadata events name one
   process per component with one thread per replica. *)

let telemetry_pid = 5

let us ms = ms *. 1000.0

let span_event (s : Span.t) =
  let args =
    ("trace", Json.Num (float_of_int s.Span.trace_id))
    :: (match s.Span.parent with
       | None -> []
       | Some p -> [ ("parent_span", Json.Num (float_of_int p)) ])
    @ List.map (fun (k, v) -> (k, Json.Str v)) s.Span.args
  in
  Json.Obj
    [
      ("name", Json.Str s.Span.name);
      ("cat", Json.Str (Span.component_name s.Span.component));
      ("ph", Json.Str "X");
      ("ts", Json.Num (us s.Span.start_ms));
      ("dur", Json.Num (us (Span.duration_ms s)));
      ("pid", Json.Num (float_of_int (Span.pid s.Span.component)));
      ("tid", Json.Num (float_of_int (Span.tid s.Span.component)));
      ("args", Json.Obj args);
    ]

let metadata_events spans =
  let processes = Hashtbl.create 8 and threads = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.t) ->
      let c = s.Span.component in
      Hashtbl.replace processes (Span.pid c) (Span.component_name c);
      Hashtbl.replace threads (Span.pid c, Span.tid c) (Span.thread_name c))
    spans;
  let meta name pid ?tid label =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("ph", Json.Str "M");
         ("pid", Json.Num (float_of_int pid));
       ]
      @ (match tid with None -> [] | Some t -> [ ("tid", Json.Num (float_of_int t)) ])
      @ [ ("args", Json.Obj [ ("name", Json.Str label) ]) ])
  in
  let procs =
    Hashtbl.fold (fun pid label acc -> (pid, label) :: acc) processes []
    |> List.sort compare
    |> List.map (fun (pid, label) -> meta "process_name" pid label)
  in
  let thrs =
    Hashtbl.fold (fun key label acc -> (key, label) :: acc) threads []
    |> List.sort compare
    |> List.map (fun ((pid, tid), label) -> meta "thread_name" pid ~tid label)
  in
  procs @ thrs

let counter_events (sampler : Sampler.t) =
  List.concat_map
    (fun (s : Sampler.series) ->
      Array.to_list s.Sampler.points
      |> List.map (fun (time_ms, value) ->
             Json.Obj
               [
                 ("name", Json.Str s.Sampler.name);
                 ("ph", Json.Str "C");
                 ("ts", Json.Num (us time_ms));
                 ("pid", Json.Num (float_of_int telemetry_pid));
                 ("args", Json.Obj [ ("value", Json.Num value) ]);
               ]))
    (Sampler.series sampler)

(* Each closed window becomes one "C" event per channel, stamped at the
   window's end: counters as windowed rates (per second of virtual
   time), gauges as read, distributions as their p99. *)
let timeseries_counter_events (ts : Timeseries.t) =
  List.concat_map
    (fun (w : Timeseries.window) ->
      let event name value =
        Json.Obj
          [
            ("name", Json.Str name);
            ("ph", Json.Str "C");
            ("ts", Json.Num (us w.Timeseries.end_ms));
            ("pid", Json.Num (float_of_int telemetry_pid));
            ("args", Json.Obj [ ("value", Json.Num value) ]);
          ]
      in
      List.map
        (fun (name, _) ->
          event (name ^ "/s") (Timeseries.rate_per_sec w name))
        w.Timeseries.counters
      @ List.map (fun (name, v) -> event name v) w.Timeseries.gauges
      @ List.map
          (fun (name, (s : Timeseries.summary)) ->
            event (name ^ ".p99") s.Timeseries.p99)
          w.Timeseries.dists)
    (Timeseries.windows ts)

let telemetry_process_name =
  Json.Obj
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Num (float_of_int telemetry_pid));
      ("args", Json.Obj [ ("name", Json.Str "telemetry") ]);
    ]

let chrome_json ?sampler ?timeseries trace =
  let spans = Trace.spans trace in
  let sampler_events =
    match sampler with None -> [] | Some s -> counter_events s
  in
  let timeseries_events =
    match timeseries with
    | None -> []
    | Some ts -> timeseries_counter_events ts
  in
  let counters =
    match sampler_events @ timeseries_events with
    | [] -> []
    | events -> telemetry_process_name :: events
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (metadata_events spans @ List.map span_event spans @ counters));
      ("displayTimeUnit", Json.Str "ms");
    ]

let chrome_trace ?sampler ?timeseries trace =
  Json.to_string (chrome_json ?sampler ?timeseries trace)

let write_chrome_trace ?sampler ?timeseries trace ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace ?sampler ?timeseries trace))

let timeseries_json (ts : Timeseries.t) =
  let window (w : Timeseries.window) =
    Json.Obj
      [
        ("seq", Json.Num (float_of_int w.Timeseries.seq));
        ("start_ms", Json.Num w.Timeseries.start_ms);
        ("end_ms", Json.Num w.Timeseries.end_ms);
        ( "counters",
          Json.Obj
            (List.map
               (fun (name, n) -> (name, Json.Num (float_of_int n)))
               w.Timeseries.counters) );
        ( "gauges",
          Json.Obj (List.map (fun (name, v) -> (name, Json.Num v)) w.Timeseries.gauges)
        );
        ( "dists",
          Json.Obj
            (List.map
               (fun (name, (s : Timeseries.summary)) ->
                 ( name,
                   Json.Obj
                     [
                       ("count", Json.Num (float_of_int s.Timeseries.count));
                       ("p50", Json.Num s.Timeseries.p50);
                       ("p95", Json.Num s.Timeseries.p95);
                       ("p99", Json.Num s.Timeseries.p99);
                       ("max", Json.Num s.Timeseries.max);
                     ] ))
               w.Timeseries.dists) );
      ]
  in
  Json.Obj
    [
      ("window_ms", Json.Num (Timeseries.window_ms ts));
      ("windows", Json.Arr (List.map window (Timeseries.windows ts)));
    ]

let write_timeseries ts ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (timeseries_json ts)))

let pp_text ppf trace =
  let spans = Trace.spans trace in
  Format.fprintf ppf "@[<v>%d spans (%d dropped)@," (List.length spans)
    (Trace.dropped trace);
  List.iter (fun s -> Format.fprintf ppf "%a@," Span.pp s) spans;
  Format.fprintf ppf "@]"

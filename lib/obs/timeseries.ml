(* Windowed time-series aggregation on virtual time.

   Channels mutate plain refs/histograms on the hot path; the only
   simulation activity is the rollover process, which wakes once per
   window, runs the pre-close hooks, snapshots every channel, and
   resets the per-window state. Nothing here draws randomness, so an
   instrumented run executes the exact same protocol events as an
   uninstrumented one. *)

type counter = { c_name : string; mutable c_count : int }

type dist = {
  d_name : string;
  d_current : Util.Histogram.Log.t;  (* this window's observations *)
  mutable d_merged : Util.Histogram.Log.t;  (* whole-run roll-up *)
}

type summary = {
  count : int;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type window = {
  seq : int;
  start_ms : float;
  end_ms : float;
  counters : (string * int) list;
  gauges : (string * float) list;
  dists : (string * summary) list;
}

type probe = { p_name : string; p_read : unit -> float }

type t = {
  engine : Sim.Engine.t;
  window_ms : float;
  buckets_per_decade : int;
  counters : counter Util.Vec.t;
  dists : dist Util.Vec.t;
  probes : probe Util.Vec.t;
  pre_close : (unit -> unit) Util.Vec.t;
  windows : window Util.Vec.t;
  mutable window_start : float;
  mutable running : bool;
}

let create ?(window_ms = 250.0) ?(buckets_per_decade = 40) engine =
  if window_ms <= 0.0 then
    invalid_arg "Timeseries.create: window must be positive";
  {
    engine;
    window_ms;
    buckets_per_decade;
    counters = Util.Vec.create ();
    dists = Util.Vec.create ();
    probes = Util.Vec.create ();
    pre_close = Util.Vec.create ();
    windows = Util.Vec.create ();
    window_start = Sim.Engine.now engine;
    running = false;
  }

let window_ms t = t.window_ms

let find_channel vec name get_name =
  let found = ref None in
  for i = 0 to Util.Vec.length vec - 1 do
    let x = Util.Vec.get vec i in
    if get_name x = name then found := Some x
  done;
  !found

let counter t name =
  match find_channel t.counters name (fun c -> c.c_name) with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_count = 0 } in
    Util.Vec.push t.counters c;
    c

let bump ?(by = 1) c = c.c_count <- c.c_count + by

let dist t name =
  match find_channel t.dists name (fun d -> d.d_name) with
  | Some d -> d
  | None ->
    let d =
      {
        d_name = name;
        d_current =
          Util.Histogram.Log.create ~buckets_per_decade:t.buckets_per_decade ();
        d_merged =
          Util.Histogram.Log.create ~buckets_per_decade:t.buckets_per_decade ();
      }
    in
    Util.Vec.push t.dists d;
    d

let observe d x = Util.Histogram.Log.add d.d_current x

let add_probe t ~name p_read = Util.Vec.push t.probes { p_name = name; p_read }

let add_pre_close t f = Util.Vec.push t.pre_close f

let by_name (a, _) (b, _) = compare (a : string) b

let close_window t =
  for i = 0 to Util.Vec.length t.pre_close - 1 do
    (Util.Vec.get t.pre_close i) ()
  done;
  let counters =
    Util.Vec.to_list t.counters
    |> List.map (fun c ->
           let v = c.c_count in
           c.c_count <- 0;
           (c.c_name, v))
    |> List.sort by_name
  in
  let dists =
    Util.Vec.to_list t.dists
    |> List.map (fun d ->
           let h = d.d_current in
           let s =
             {
               count = Util.Histogram.Log.count h;
               p50 = Util.Histogram.Log.percentile h 50.0;
               p95 = Util.Histogram.Log.percentile h 95.0;
               p99 = Util.Histogram.Log.percentile h 99.0;
               max = Util.Histogram.Log.max_value h;
             }
           in
           d.d_merged <- Util.Histogram.Log.merge d.d_merged h;
           Util.Histogram.Log.clear h;
           (d.d_name, s))
    |> List.sort by_name
  in
  let gauges =
    Util.Vec.to_list t.probes
    |> List.map (fun p -> (p.p_name, p.p_read ()))
    |> List.sort by_name
  in
  let now = Sim.Engine.now t.engine in
  Util.Vec.push t.windows
    {
      seq = Util.Vec.length t.windows;
      start_ms = t.window_start;
      end_ms = now;
      counters;
      gauges;
      dists;
    };
  t.window_start <- now

let start t =
  if t.running then invalid_arg "Timeseries.start: already running";
  t.running <- true;
  t.window_start <- Sim.Engine.now t.engine;
  Sim.Process.spawn t.engine (fun () ->
      let rec loop () =
        if t.running then begin
          Sim.Process.sleep t.engine t.window_ms;
          (* Re-check after the sleep so [stop; run-to-drain] doesn't
             record a trailing partial window twice. *)
          if t.running then begin
            close_window t;
            loop ()
          end
        end
      in
      loop ())

let stop t = t.running <- false

let running t = t.running

let flush t =
  if Sim.Engine.now t.engine > t.window_start then close_window t

let windows t = Util.Vec.to_list t.windows

let merged t name =
  match find_channel t.dists name (fun d -> d.d_name) with
  | None -> None
  | Some d -> Some d.d_merged

let rate_per_sec (w : window) name =
  let span_ms = w.end_ms -. w.start_ms in
  if span_ms <= 0.0 then 0.0
  else
    match List.assoc_opt name w.counters with
    | None -> 0.0
    | Some n -> float_of_int n /. (span_ms /. 1000.0)

let gauge_value (w : window) name = List.assoc_opt name w.gauges

let summary_of (w : window) name = List.assoc_opt name w.dists

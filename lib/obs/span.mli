(** Trace spans: one timed interval of work on a middleware component.

    A span belongs to a {e trace} (all the work done on behalf of one
    transaction shares a trace id) and to a {e component} — the Chrome
    trace-event mapping renders one "process" per component and one
    "thread" per replica (or per client session), so a loaded cluster
    reads as a swim-lane diagram in [chrome://tracing] / Perfetto. *)

type component =
  | Client of int  (** session id *)
  | Load_balancer
  | Replica of int  (** replica id *)
  | Certifier

type t = {
  id : int;  (** unique within a {!Trace.t} *)
  trace_id : int;  (** transaction this span belongs to *)
  parent : int option;  (** enclosing span id *)
  name : string;
  component : component;
  start_ms : float;  (** virtual time *)
  mutable end_ms : float;  (** [nan] until finished *)
  mutable args : (string * string) list;
}

val pid : component -> int
(** Chrome trace "process" id of the component. *)

val tid : component -> int
(** Chrome trace "thread" id within the component's process. *)

val component_name : component -> string

val thread_name : component -> string

val duration_ms : t -> float

val add_args : t -> (string * string) list -> unit

val pp : Format.formatter -> t -> unit

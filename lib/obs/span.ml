type component =
  | Client of int
  | Load_balancer
  | Replica of int
  | Certifier

type t = {
  id : int;
  trace_id : int;
  parent : int option;
  name : string;
  component : component;
  start_ms : float;
  mutable end_ms : float;
  mutable args : (string * string) list;
}

(* Chrome trace-event coordinates: one "process" per middleware
   component, one "thread" per replica (or per session for clients). *)
let pid = function
  | Client _ -> 1
  | Load_balancer -> 2
  | Replica _ -> 3
  | Certifier -> 4

let tid = function
  | Client sid -> sid
  | Load_balancer -> 0
  | Replica id -> id
  | Certifier -> 0

let component_name = function
  | Client _ -> "client"
  | Load_balancer -> "load_balancer"
  | Replica _ -> "replica"
  | Certifier -> "certifier"

let thread_name = function
  | Client sid -> Printf.sprintf "session %d" sid
  | Load_balancer -> "lb"
  | Replica id -> Printf.sprintf "replica %d" id
  | Certifier -> "primary"

let duration_ms s = s.end_ms -. s.start_ms

let add_args s args = s.args <- s.args @ args

let pp ppf s =
  Format.fprintf ppf "[%10.3f %10.3f] %-13s/%-9s %s (trace %d%s)%s" s.start_ms s.end_ms
    (component_name s.component) (thread_name s.component) s.name s.trace_id
    (match s.parent with None -> "" | Some p -> Printf.sprintf ", parent %d" p)
    (match s.args with
    | [] -> ""
    | args ->
      " " ^ String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) args))

(** A minimal JSON value type: enough to emit Chrome trace-event files
    that are valid by construction, and to parse them back in tests. No
    external dependency, no streaming. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

val parse : string -> (t, string) result
(** Strict whole-input parse; [Error] carries a short diagnostic. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] otherwise. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option

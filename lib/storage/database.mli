(** A database instance: named tables plus the local commit version.

    The version counter matches the paper's model: the database starts at
    version 0 and the version increments by one each time an update
    transaction (local or refresh) commits. {!apply} installs a certified
    writeset at the next version; the replicated system calls it in the
    certifier's total order. *)

type t

val create : ?intern:Intern.t -> unit -> t
(** [?intern] shares a conflict-key intern table across a replication
    group (the cluster passes one table to every replica database and
    the certifier); by default each database gets its own. *)

val intern : t -> Intern.t
(** The intern table writesets extracted from this database ({!Txn.writeset})
    resolve their conflict ids against. *)

val create_table : t -> Schema.t -> Table.t
(** Raises [Invalid_argument] if a table with that name exists. *)

val table : t -> string -> Table.t
(** Raises [Not_found] for unknown tables. *)

val table_opt : t -> string -> Table.t option

val table_names : t -> string list
(** In creation order. *)

val version : t -> int
(** Current committed version ([V_local] in the paper). *)

val apply : t -> Writeset.t -> version:int -> unit
(** Install every entry of the writeset at [version] and advance the
    database version. Raises [Invalid_argument] unless
    [version = version t + 1] (commits apply in total order) or the
    writeset touches unknown tables. Installation has redo semantics:
    entries already present at [version] (from a partially applied batch
    interrupted by a crash) are skipped, so certifier-log replay is
    idempotent. *)

val apply_unpublished : t -> Writeset.t -> version:int -> unit
(** Install a writeset's row versions {e without} advancing the database
    version: the rows become visible only to snapshots [>= version],
    which no reader can hold until {!publish} moves the version counter
    past it. This is the write half of conflict-aware parallel refresh
    application — non-conflicting writesets of a batch install
    concurrently and out of version order, and the batch becomes visible
    atomically when the whole prefix is durable. Requires
    [version > version t]; same redo semantics as {!apply}. Writesets
    sharing a conflict key ({!Writeset.keys}) must still be installed in
    ascending version order relative to each other (the per-key MVCC
    chains grow newest-first). *)

val publish : t -> version:int -> unit
(** Advance the database version to [version], making every row installed
    by {!apply_unpublished} at versions [<= version] visible to new
    snapshots. The caller guarantees the whole prefix is installed.
    Raises [Invalid_argument] if [version < version t]. *)

val load : t -> string -> Value.t array list -> unit
(** Bulk-load rows into a table as part of version 0 (initial database
    population). Rows are validated against the schema; raises
    [Invalid_argument] on validation failure or if the database has
    already advanced past version 0. *)

val gc : t -> keep_after:int -> int
(** Garbage-collect old versions in all tables. *)

val total_versions : t -> int

(** {2 Checkpointing} *)

val snapshot : t -> string
(** Serialize the full database — schemas, every key's version chain and
    the commit version — into a self-contained binary checkpoint
    ({!Codec} format). *)

val of_snapshot : ?intern:Intern.t -> string -> t
(** Rebuild a database from {!snapshot} output. Raises {!Codec.Corrupt}
    on malformed input. The result is value-equal to the original:
    same schemas, same visible rows at every version retained.
    [?intern] as in {!create} — state transfer passes the recovering
    replica's existing table so ids stay group-wide. *)

val fingerprint : t -> at:int -> int
(** Order-independent hash of the visible contents of every table at
    snapshot [at]. Two replicas that have applied the same prefix of the
    commit order have equal fingerprints — the convergence check used in
    tests. *)

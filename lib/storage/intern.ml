(* Dense integer ids for (table, primary-key) conflict identities.

   The certifier's keyed index, the replicas' pending-conflict-key
   multisets and the refresh-apply lane partitioner all key hash tables
   by "which record does this write touch". Before interning, each of
   those tables was keyed by a boxed (string, Value.t array) pair:
   every probe allocated a tuple and ran the polymorphic hash over the
   table name and every key column. Interning resolves each pair to a
   dense int exactly once — at writeset-build time — and the hot paths
   probe int-keyed tables (Util.Tables.Itbl) instead.

   One intern table serves one replication group: the cluster creates
   a single table and shares it across the certifier and every replica
   database, so ids are comparable wherever a writeset travels.
   Writesets remember their origin table (Writeset.origin) and their
   cached ids are only trusted against that same table — foreign
   writesets re-resolve through the local table (Writeset.cids). *)

type t = {
  tables : (string, (Value.t array, int) Hashtbl.t) Hashtbl.t;
      (* two levels so resolving never allocates a tuple key *)
  mutable next : int;
}

let create ?(size = 64) () = { tables = Hashtbl.create size; next = 0 }

let id t ~table ~key =
  let keys =
    match Hashtbl.find_opt t.tables table with
    | Some keys -> keys
    | None ->
      let keys = Hashtbl.create 256 in
      Hashtbl.add t.tables table keys;
      keys
  in
  match Hashtbl.find_opt keys key with
  | Some id -> id
  | None ->
    let id = t.next in
    t.next <- id + 1;
    Hashtbl.add keys key id;
    id

let find t ~table ~key =
  match Hashtbl.find_opt t.tables table with
  | None -> None
  | Some keys -> Hashtbl.find_opt keys key

let size t = t.next

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable order : string list;  (* creation order, reversed *)
  mutable version : int;
  intern : Intern.t;
      (* the conflict-key intern table writesets extracted from this
         database resolve against; shared across a replication group *)
}

let create ?intern () =
  {
    tables = Hashtbl.create 16;
    order = [];
    version = 0;
    intern = (match intern with Some it -> it | None -> Intern.create ());
  }

let intern t = t.intern

let create_table t schema =
  let name = schema.Schema.table_name in
  if Hashtbl.mem t.tables name then
    invalid_arg ("Database.create_table: duplicate table " ^ name);
  let table = Table.create schema in
  Hashtbl.add t.tables name table;
  t.order <- name :: t.order;
  table

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> raise Not_found

let table_opt t name = Hashtbl.find_opt t.tables name

let table_names t = List.rev t.order

let version t = t.version

(* Redo semantics: re-applying a writeset whose entries (or a prefix of
   them) are already installed at [version] is a no-op for those entries.
   Crash recovery replays the certifier log from the last published
   version, which may re-deliver a writeset that was partially installed
   by an interrupted parallel batch apply. *)
let install_entries t ws ~version =
  List.iter
    (fun entry ->
      let table =
        match Hashtbl.find_opt t.tables entry.Writeset.ws_table with
        | Some table -> table
        | None -> invalid_arg ("Database.apply: unknown table " ^ entry.Writeset.ws_table)
      in
      let installed =
        match Table.latest_version table ~key:entry.Writeset.ws_key with
        | Some newest -> newest >= version
        | None -> false
      in
      if not installed then begin
        let row =
          match entry.Writeset.ws_op with Writeset.Put row -> Some row | Delete -> None
        in
        Table.install table ~key:entry.Writeset.ws_key ~version row
      end)
    (Writeset.entries ws)

let apply t ws ~version =
  if version <> t.version + 1 then
    invalid_arg
      (Printf.sprintf "Database.apply: version %d out of order (local is %d)" version
         t.version);
  install_entries t ws ~version;
  t.version <- version

let apply_unpublished t ws ~version =
  if version <= t.version then
    invalid_arg
      (Printf.sprintf "Database.apply_unpublished: version %d already published (local is %d)"
         version t.version);
  install_entries t ws ~version

let publish t ~version =
  if version < t.version then
    invalid_arg
      (Printf.sprintf "Database.publish: version %d below published %d" version t.version);
  t.version <- version

let load t name rows =
  if t.version <> 0 then invalid_arg "Database.load: database already has commits";
  let table = table t name in
  let schema = Table.schema table in
  List.iter
    (fun row ->
      (match Schema.validate_row schema row with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Database.load: " ^ msg));
      Table.install table ~key:(Schema.key_of_row schema row) ~version:0 (Some row))
    rows

let gc t ~keep_after =
  Hashtbl.fold (fun _ table acc -> acc + Table.gc table ~keep_after) t.tables 0

let total_versions t =
  Hashtbl.fold (fun _ table acc -> acc + Table.version_count table) t.tables 0

(* --- Checkpointing --- *)

let snapshot_magic = "REPRODB1"

let snapshot t =
  let buf = Buffer.create 65_536 in
  Buffer.add_string buf snapshot_magic;
  Codec.encode_int buf t.version;
  let names = table_names t in
  Codec.encode_int buf (List.length names);
  List.iter
    (fun name ->
      let tbl = table t name in
      Codec.encode_schema buf (Table.schema tbl);
      let chains =
        Table.fold_chains tbl ~init:[] ~f:(fun acc key chain -> (key, chain) :: acc)
      in
      let chains = List.rev chains in
      Codec.encode_int buf (List.length chains);
      List.iter
        (fun (key, chain) ->
          Codec.encode_row buf key;
          Codec.encode_int buf (List.length chain);
          (* Oldest first, so restore can install in increasing order. *)
          List.iter
            (fun (version, row) ->
              Codec.encode_int buf version;
              Codec.encode_row_opt buf row)
            (List.rev chain))
        chains)
    names;
  Buffer.contents buf

let of_snapshot ?intern data =
  let r = Codec.reader data in
  Codec.expect_raw r snapshot_magic;
  let version = Codec.decode_int r in
  if version < 0 then raise (Codec.Corrupt "negative database version");
  let t = create ?intern () in
  let ntables = Codec.decode_int r in
  if ntables < 0 then raise (Codec.Corrupt "negative table count");
  for _ = 1 to ntables do
    let schema = Codec.decode_schema r in
    let tbl = create_table t schema in
    let nkeys = Codec.decode_int r in
    if nkeys < 0 then raise (Codec.Corrupt "negative key count");
    for _ = 1 to nkeys do
      let key = Codec.decode_row r in
      let nversions = Codec.decode_int r in
      if nversions < 0 then raise (Codec.Corrupt "negative version count");
      for _ = 1 to nversions do
        let v = Codec.decode_int r in
        let row = Codec.decode_row_opt r in
        Table.install tbl ~key ~version:v row
      done
    done
  done;
  t.version <- version;
  t

let fingerprint t ~at =
  let row_hash table_name key row =
    let h = ref (Hashtbl.hash table_name) in
    let mix v = h := (!h * 31) + Value.hash v in
    Array.iter mix key;
    Array.iter mix row;
    !h land max_int
  in
  Hashtbl.fold
    (fun name tbl acc ->
      Table.fold_visible tbl ~at ~init:acc ~f:(fun acc key row ->
          acc lxor row_hash name key row))
    t.tables 0


(** Transaction writesets.

    A writeset is the set of records a transaction inserted, updated or
    deleted, keyed by (table, primary key). It is the unit the certifier
    checks for write-write conflicts and the payload of refresh
    transactions propagated to remote replicas. *)

type op =
  | Put of Value.t array  (** insert or full-row update *)
  | Delete

type entry = {
  ws_table : string;
  ws_key : Value.t array;
  ws_op : op;
}

type t

val empty : t

val of_entries : ?intern:Intern.t -> entry list -> t
(** Later entries for the same (table, key) supersede earlier ones.
    With [?intern], each distinct (table, key) is resolved to its dense
    conflict id at build time and cached in the writeset ({!cids}); the
    writeset remembers the table as its {!origin}. Cluster code always
    passes the group's shared table so every conflict probe downstream
    runs over ints. *)

val is_empty : t -> bool

val entries : t -> entry list
(** In insertion order (after per-key superseding). *)

val cardinal : t -> int
(** Number of distinct (table, key) pairs written. O(1): stored at
    construction — {!conflicts} consults both sides' cardinality on
    every certification check. *)

val tables : t -> string list
(** Distinct tables written, in first-write order. *)

val origin : t -> Intern.t option
(** The intern table the cached ids were resolved against, if any. *)

val interned : t -> intern:Intern.t -> bool
(** Whether {!cids} against [intern] is the zero-cost cached path. *)

val cids : t -> intern:Intern.t -> int array
(** The conflict ids of {!keys}, in insertion order, resolved against
    [intern]. When the writeset was built with that same table
    (physically equal — the cluster hot path) this returns the cached
    array without allocating; otherwise each key is re-resolved through
    [intern], assigning fresh ids as needed. *)

val mem : t -> table:string -> key:Value.t array -> bool

val keys : t -> (string * Value.t array) list
(** The conflict keys: every (table, primary key) the writeset touches,
    in insertion order. Two writesets {!conflicts} iff their key lists
    intersect — the relation the replicas use to partition a refresh
    batch into independently applicable lanes. *)

val conflicts : t -> t -> bool
(** Whether the two writesets write a common (table, key). *)

val size_bytes : t -> int
(** Approximate propagation footprint. *)

val pp : Format.formatter -> t -> unit

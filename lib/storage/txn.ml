type cost = {
  rows_scanned : int;
  rows_read : int;
  rows_written : int;
}

type buffered = Bput of Value.t array | Bdelete

(* One buffered record write. The table/key pair is kept for writeset
   extraction; lookups go through the group intern table's dense ids, so
   probing the buffer never allocates a tuple key or polymorphically
   hashes a value array. *)
type wcell = {
  w_table : string;
  w_key : Mvcc.key;
  mutable w_op : buffered;
}

type t = {
  db : Database.t;
  snapshot : int;
  writes : wcell Util.Tables.Itbl.t;  (* conflict id -> cell *)
  mutable write_order : wcell list;  (* reversed first-write order *)
  mutable ws_cache : Writeset.t option;
      (* memoized [writeset]: early certification probes an active
         transaction's partial writeset once per incoming refresh, and
         commit reuses the final build; any new write invalidates it *)
  mutable scanned : int;
  mutable read : int;
  mutable written : int;
}

let begin_at db ~snapshot =
  if snapshot > Database.version db then
    invalid_arg
      (Printf.sprintf "Txn.begin_at: snapshot %d beyond database version %d" snapshot
         (Database.version db));
  {
    db;
    snapshot;
    writes = Util.Tables.Itbl.create 8;
    write_order = [];
    ws_cache = None;
    scanned = 0;
    read = 0;
    written = 0;
  }

let begin_ db = begin_at db ~snapshot:(Database.version db)

let snapshot t = t.snapshot

let database t = t.db

let cost t = { rows_scanned = t.scanned; rows_read = t.read; rows_written = t.written }

let reset_cost t =
  let c = cost t in
  t.scanned <- 0;
  t.read <- 0;
  t.written <- 0;
  c

let buffer t table key op =
  let kid = Intern.id (Database.intern t.db) ~table ~key in
  (match Util.Tables.Itbl.find_opt t.writes kid with
  | Some cell -> cell.w_op <- op
  | None ->
    let cell = { w_table = table; w_key = key; w_op = op } in
    Util.Tables.Itbl.add t.writes kid cell;
    t.write_order <- cell :: t.write_order);
  t.ws_cache <- None;
  t.written <- t.written + 1

(* The write buffer's view of one record, if any. Read-only-so-far
   transactions (the common case) skip the probe entirely; otherwise a
   key the group has never interned cannot have been written here. *)
let local_find t ~table ~key =
  match t.write_order with
  | [] -> None
  | _ -> (
    match Intern.find (Database.intern t.db) ~table ~key with
    | None -> None
    | Some kid -> Util.Tables.Itbl.find_opt t.writes kid)

(* Point read overlaying the write buffer on the snapshot. *)
let get_raw t ~table ~key =
  match local_find t ~table ~key with
  | Some { w_op = Bput row; _ } -> Some row
  | Some { w_op = Bdelete; _ } -> None
  | None -> Table.read (Database.table t.db table) ~key ~at:t.snapshot

let get t ~table ~key =
  let r = get_raw t ~table ~key in
  t.scanned <- t.scanned + 1;
  (match r with Some _ -> t.read <- t.read + 1 | None -> ());
  r

(* Extract an indexable equality [col = const] from a predicate:
   only top-level conjunctions are mined. *)
let rec indexable_eq table expr =
  match expr with
  | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Const v) | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Col c)
    ->
    if Table.has_index table ~column:c then Some (c, v) else None
  | Expr.And (a, b) -> begin
    match indexable_eq table a with Some _ as hit -> hit | None -> indexable_eq table b
  end
  | _ -> None

(* Is the predicate exactly a primary-key equality (single-column keys)? *)
let key_eq table expr =
  let schema = Table.schema table in
  if Array.length schema.Schema.primary_key <> 1 then None
  else
    let kcol = schema.Schema.primary_key.(0) in
    match expr with
    | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Const v) | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Col c)
      when c = kcol ->
      Some [| v |]
    | _ -> None

let matching_local_writes t table_name pred =
  List.fold_left
    (fun acc cell ->
      if String.equal cell.w_table table_name then
        match cell.w_op with
        | Bput row when pred row -> (cell.w_key, Some row) :: acc
        | Bput _ -> (cell.w_key, None) :: acc  (* overrides base row that may match *)
        | Bdelete -> (cell.w_key, None) :: acc
      else acc)
    [] t.write_order

let select t ~table:table_name ?where ?limit () =
  let table = Database.table t.db table_name in
  let pred row = match where with None -> true | Some e -> Expr.eval_bool row e in
  let base, overlay_keys =
    match where with
    | Some e when key_eq table e <> None -> begin
      (* Primary-key point lookup. *)
      let key = match key_eq table e with Some k -> k | None -> assert false in
      t.scanned <- t.scanned + 1;
      match Table.read table ~key ~at:t.snapshot with
      | Some row when pred row -> ([ (key, row) ], [ key ])
      | Some _ | None -> ([], [ key ])
    end
    | Some e -> begin
      match indexable_eq table e with
      | Some (col, v) ->
        let hits = Table.index_lookup table ~column:col ~value:v ~at:t.snapshot in
        t.scanned <- t.scanned + List.length hits;
        (List.filter (fun (_, row) -> pred row) hits, List.map fst hits)
      | None ->
        let hits, examined = Table.scan table ~at:t.snapshot ~where:pred ?limit () in
        t.scanned <- t.scanned + examined;
        (hits, List.map fst hits)
    end
    | None ->
      let hits, examined = Table.scan table ~at:t.snapshot ~where:pred ?limit () in
      t.scanned <- t.scanned + examined;
      (hits, List.map fst hits)
  in
  ignore overlay_keys;
  (* Overlay the write buffer: local puts that match are added/replace,
     local deletes and non-matching puts hide base rows. *)
  let local = matching_local_writes t table_name pred in
  let hidden = List.map fst local in
  let base_kept =
    List.filter
      (fun (key, _) -> not (List.exists (fun k -> Mvcc.Key_order.compare k key = 0) hidden))
      base
  in
  let added = List.filter_map (fun (_, row) -> row) local in
  let rows = List.map snd base_kept @ added in
  let rows = match limit with Some l -> List.filteri (fun i _ -> i < l) rows | None -> rows in
  t.read <- t.read + List.length rows;
  rows

let in_range ?lo ?hi key =
  (match lo with Some lo -> Mvcc.Key_order.compare key lo >= 0 | None -> true)
  && match hi with Some hi -> Mvcc.Key_order.compare key hi <= 0 | None -> true

let range t ~table:table_name ?lo ?hi ?where ?limit () =
  let table = Database.table t.db table_name in
  let schema = Table.schema table in
  let pred row = match where with None -> true | Some e -> Expr.eval_bool row e in
  let base, examined = Table.range_scan table ~at:t.snapshot ?lo ?hi ~where:pred ?limit () in
  t.scanned <- t.scanned + examined;
  (* Overlay local writes whose keys fall inside the range. *)
  let local =
    matching_local_writes t table_name pred
    |> List.filter (fun (key, _) -> in_range ?lo ?hi key)
  in
  let hidden = List.map fst local in
  let base_kept =
    List.filter
      (fun (key, _) -> not (List.exists (fun k -> Mvcc.Key_order.compare k key = 0) hidden))
      base
  in
  let added =
    List.filter_map (fun (_, row) -> row) local
    |> List.sort (fun a b ->
           Mvcc.Key_order.compare (Schema.key_of_row schema a) (Schema.key_of_row schema b))
  in
  let rows = List.map snd base_kept @ added in
  let rows = match limit with Some l -> List.filteri (fun i _ -> i < l) rows | None -> rows in
  t.read <- t.read + List.length rows;
  rows

let insert t ~table:table_name row =
  let table = Database.table t.db table_name in
  let schema = Table.schema table in
  match Schema.validate_row schema row with
  | Error msg -> Error msg
  | Ok () ->
    let key = Schema.key_of_row schema row in
    if get_raw t ~table:table_name ~key <> None then
      Error
        (Format.asprintf "%s: duplicate key %a" table_name
           (Format.pp_print_list Value.pp) (Array.to_list key))
    else begin
      buffer t table_name key (Bput row);
      Ok ()
    end

let put t ~table:table_name row =
  let table = Database.table t.db table_name in
  let schema = Table.schema table in
  match Schema.validate_row schema row with
  | Error msg -> Error msg
  | Ok () ->
    buffer t table_name (Schema.key_of_row schema row) (Bput row);
    Ok ()

let apply_set schema row set =
  let row = Array.copy row in
  List.iter
    (fun (col_name, expr) ->
      let idx =
        match Schema.column_index schema col_name with
        | idx -> idx
        | exception Not_found ->
          invalid_arg
            (Printf.sprintf "Txn.update: unknown column %s.%s" schema.Schema.table_name
               col_name)
      in
      row.(idx) <- Expr.eval row expr)
    set;
  row

let update t ~table:table_name ?where ~set () =
  let table = Database.table t.db table_name in
  let schema = Table.schema table in
  let victims = select t ~table:table_name ?where () in
  List.iter
    (fun row ->
      let updated = apply_set schema row set in
      let key = Schema.key_of_row schema row in
      let new_key = Schema.key_of_row schema updated in
      if Mvcc.Key_order.compare key new_key <> 0 then
        invalid_arg "Txn.update: updating primary-key columns is not supported";
      buffer t table_name key (Bput updated))
    victims;
  List.length victims

let update_key t ~table:table_name ~key ~set =
  match get t ~table:table_name ~key with
  | None -> false
  | Some row ->
    let schema = Table.schema (Database.table t.db table_name) in
    let updated = apply_set schema row set in
    buffer t table_name key (Bput updated);
    true

let delete t ~table:table_name ?where () =
  let schema = Table.schema (Database.table t.db table_name) in
  let victims = select t ~table:table_name ?where () in
  List.iter
    (fun row -> buffer t table_name (Schema.key_of_row schema row) Bdelete)
    victims;
  List.length victims

let delete_key t ~table:table_name ~key =
  match get t ~table:table_name ~key with
  | None -> false
  | Some _ ->
    buffer t table_name key Bdelete;
    true

let writeset t =
  match t.ws_cache with
  | Some ws -> ws
  | None ->
    let entries =
      List.rev_map
        (fun cell ->
          let ws_op =
            match cell.w_op with
            | Bput row -> Writeset.Put row
            | Bdelete -> Writeset.Delete
          in
          { Writeset.ws_table = cell.w_table; ws_key = cell.w_key; ws_op })
        t.write_order
    in
    let ws = Writeset.of_entries ~intern:(Database.intern t.db) entries in
    t.ws_cache <- Some ws;
    ws

let is_read_only t = t.write_order = []

let validate t =
  List.for_all
    (fun cell ->
      match Table.latest_version (Database.table t.db cell.w_table) ~key:cell.w_key with
      | None -> true
      | Some v -> v <= t.snapshot)
    t.write_order

let commit_standalone t =
  if is_read_only t then Ok t.snapshot
  else if not (validate t) then Error "write-write conflict"
  else begin
    let version = Database.version t.db + 1 in
    Database.apply t.db (writeset t) ~version;
    Ok version
  end

(** Dense integer ids for (table, primary-key) conflict identities.

    Interning maps each (table, key) pair a writeset touches to a small
    int, assigned on first sight and stable for the lifetime of the
    table. The certification and refresh-apply hot paths key their hash
    tables by these ids ({!Util.Tables.Itbl}) instead of boxed
    (string, value-array) pairs, eliminating tuple allocation and
    polymorphic hashing from every conflict probe.

    One intern table serves one replication group: ids from different
    tables are not comparable. {!Writeset.t} records which table built
    it, and {!Writeset.cids} re-resolves through the local table when
    handed a foreign writeset. *)

type t

val create : ?size:int -> unit -> t

val id : t -> table:string -> key:Value.t array -> int
(** The id for [(table, key)], assigning the next dense id on first
    sight. Ids count up from 0, so they double as indexes into
    side arrays. *)

val find : t -> table:string -> key:Value.t array -> int option
(** Lookup without assignment. *)

val size : t -> int
(** Number of distinct identities interned so far (= the next fresh id). *)

type key = Value.t array

module Key_order = struct
  type t = key

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    let rec go i =
      if i >= la && i >= lb then 0
      else if i >= la then -1
      else if i >= lb then 1
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
end

(* Chains live in a hashtable specialized to keys: [Value.hash] reads
   each constructor directly where the polymorphic hash would traverse
   the boxed representation on every probe, and equality via
   [Key_order.compare] keeps the same int/float coercions the ordered
   directory uses. *)
module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal a b = Key_order.compare a b = 0

  let hash (k : key) =
    let h = ref (Array.length k) in
    for i = 0 to Array.length k - 1 do
      (* Ints hash as themselves: primary keys are typically dense, so
         the identity is uniform under the table's power-of-two masking
         and skips a generic-hash call per element per probe. *)
      let hv =
        match Array.unsafe_get k i with
        | Value.Int x -> x
        | Value.Text s -> Hashtbl.hash s
        | v -> Value.hash v
      in
      h := (!h * 31) + hv
    done;
    !h land max_int
end)

type version = { version : int; row : Value.t array option }

(* The key directory for ordered scans is a sorted array rebuilt lazily:
   installing a brand-new key only invalidates it, and the next ordered
   access pays one collect-and-sort over the whole table. Point
   reads/updates (the hot path) never touch it; workloads that
   interleave fresh-key inserts with range scans re-sort per scan, which
   is the deliberate trade — bulk load of n keys went from n log n map
   rebalancing allocations to zero. *)
type t = {
  chains : version list ref Key_tbl.t;
  mutable dir : key array option;  (* sorted ascending; [None] = stale *)
}

let create () = { chains = Key_tbl.create 256; dir = None }

let install t key ~version row =
  match Key_tbl.find_opt t.chains key with
  | None ->
    Key_tbl.add t.chains key (ref [ { version; row } ]);
    t.dir <- None
  | Some chain -> begin
    match !chain with
    | { version = newest; _ } :: _ when newest >= version ->
      invalid_arg
        (Printf.sprintf "Mvcc.install: version %d not above newest %d" version newest)
    | versions -> chain := { version; row } :: versions
  end

let read t key ~at =
  match Key_tbl.find_opt t.chains key with
  | None -> None
  | Some chain ->
    let rec visible = function
      | [] -> None
      | { version; row } :: rest -> if version <= at then row else visible rest
    in
    visible !chain

let latest_version t key =
  match Key_tbl.find_opt t.chains key with
  | None -> None
  | Some chain -> ( match !chain with [] -> None | { version; _ } :: _ -> Some version)

let key_count t = Key_tbl.length t.chains

let version_count t =
  Key_tbl.fold (fun _ chain acc -> acc + List.length !chain) t.chains 0

(* Rebuild (or reuse) the sorted key directory. *)
let dir t =
  match t.dir with
  | Some d -> d
  | None ->
    let d = Array.make (Key_tbl.length t.chains) [||] in
    let i = ref 0 in
    Key_tbl.iter
      (fun key _ ->
        d.(!i) <- key;
        incr i)
      t.chains;
    Array.sort Key_order.compare d;
    t.dir <- Some d;
    d

let iter_keys_ordered t f = Array.iter f (dir t)

let iter_keys_range t ?lo ?hi f =
  let d = dir t in
  let n = Array.length d in
  (* First index holding a key >= lo. *)
  let start =
    match lo with
    | None -> 0
    | Some lo ->
      let rec bs l r =
        if l >= r then l
        else
          let m = (l + r) / 2 in
          if Key_order.compare d.(m) lo < 0 then bs (m + 1) r else bs l m
      in
      bs 0 n
  in
  let rec go i =
    if i < n then begin
      let key = d.(i) in
      match hi with
      | Some hi when Key_order.compare key hi > 0 -> ()
      | Some _ | None ->
        f key;
        go (i + 1)
    end
  in
  go start

let fold_visible t ~at ~init ~f =
  Array.fold_left
    (fun acc key ->
      match read t key ~at with None -> acc | Some row -> f acc key row)
    init (dir t)

let fold_chains t ~init ~f =
  Array.fold_left
    (fun acc key ->
      match Key_tbl.find_opt t.chains key with
      | None -> acc
      | Some chain -> f acc key (List.map (fun { version; row } -> (version, row)) !chain))
    init (dir t)

let gc t ~keep_after =
  let removed = ref 0 in
  Key_tbl.iter
    (fun _ chain ->
      (* Keep every version newer than the horizon, plus the newest one at
         or below it (still visible to snapshots above the horizon). *)
      let rec trim kept = function
        | [] -> List.rev kept
        | ({ version; _ } as v) :: rest ->
          if version > keep_after then trim (v :: kept) rest
          else begin
            removed := !removed + List.length rest;
            List.rev (v :: kept)
          end
      in
      chain := trim [] !chain)
    t.chains;
  !removed


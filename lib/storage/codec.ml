type reader = { buf : string; mutable pos : int }

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let reader buf = { buf; pos = 0 }

let reader_at_end r = r.pos >= String.length r.buf

let need r n =
  if r.pos + n > String.length r.buf then
    corrupt "truncated input: need %d bytes at offset %d of %d" n r.pos
      (String.length r.buf)

let expect_raw r expected =
  let n = String.length expected in
  need r n;
  let got = String.sub r.buf r.pos n in
  if not (String.equal got expected) then
    corrupt "expected %S, found %S" expected got;
  r.pos <- r.pos + n

let read_byte r =
  need r 1;
  let b = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  b

let encode_int64 buf x =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xFF))
  done

let decode_int64 r =
  need r 8;
  let x = ref 0L in
  for i = 0 to 7 do
    x :=
      Int64.logor !x
        (Int64.shift_left (Int64.of_int (Char.code r.buf.[r.pos + i])) (8 * i))
  done;
  r.pos <- r.pos + 8;
  !x

let encode_int buf x = encode_int64 buf (Int64.of_int x)

let decode_int r = Int64.to_int (decode_int64 r)

let encode_string buf s =
  encode_int buf (String.length s);
  Buffer.add_string buf s

let decode_string r =
  let len = decode_int r in
  if len < 0 then corrupt "negative string length %d" len;
  need r len;
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

(* Value tags. *)
let tag_null = 0
let tag_int = 1
let tag_float = 2
let tag_text = 3
let tag_true = 4
let tag_false = 5

let encode_value buf = function
  | Value.Null -> Buffer.add_char buf (Char.chr tag_null)
  | Value.Int x ->
    Buffer.add_char buf (Char.chr tag_int);
    encode_int buf x
  | Value.Float x ->
    Buffer.add_char buf (Char.chr tag_float);
    encode_int64 buf (Int64.bits_of_float x)
  | Value.Text s ->
    Buffer.add_char buf (Char.chr tag_text);
    encode_string buf s
  | Value.Bool b -> Buffer.add_char buf (Char.chr (if b then tag_true else tag_false))

let decode_value r =
  let tag = read_byte r in
  if tag = tag_null then Value.Null
  else if tag = tag_int then Value.Int (decode_int r)
  else if tag = tag_float then Value.Float (Int64.float_of_bits (decode_int64 r))
  else if tag = tag_text then Value.Text (decode_string r)
  else if tag = tag_true then Value.Bool true
  else if tag = tag_false then Value.Bool false
  else corrupt "unknown value tag %d at offset %d" tag (r.pos - 1)

let encode_row buf row =
  encode_int buf (Array.length row);
  Array.iter (encode_value buf) row

let decode_row r =
  let n = decode_int r in
  if n < 0 || n > 4096 then corrupt "implausible row arity %d" n;
  Array.init n (fun _ -> decode_value r)

let encode_row_opt buf = function
  | None -> Buffer.add_char buf '\000'
  | Some row ->
    Buffer.add_char buf '\001';
    encode_row buf row

let decode_row_opt r =
  match read_byte r with
  | 0 -> None
  | 1 -> Some (decode_row r)
  | b -> corrupt "bad row-option tag %d" b

let encode_writeset buf ws =
  let entries = Writeset.entries ws in
  encode_int buf (List.length entries);
  List.iter
    (fun e ->
      encode_string buf e.Writeset.ws_table;
      encode_row buf e.Writeset.ws_key;
      match e.Writeset.ws_op with
      | Writeset.Put row ->
        Buffer.add_char buf '\001';
        encode_row buf row
      | Writeset.Delete -> Buffer.add_char buf '\000')
    entries

let decode_writeset ?intern r =
  let n = decode_int r in
  if n < 0 then corrupt "negative writeset size %d" n;
  let entries =
    List.init n (fun _ ->
        let ws_table = decode_string r in
        let ws_key = decode_row r in
        let ws_op =
          match read_byte r with
          | 1 -> Writeset.Put (decode_row r)
          | 0 -> Writeset.Delete
          | b -> corrupt "bad writeset op tag %d" b
        in
        { Writeset.ws_table; ws_key; ws_op })
  in
  Writeset.of_entries ?intern entries

(* Exact wire sizes, computed without encoding. [writeset_bytes] sits on
   every message-sizing path (one call per refresh copy, per standby
   push, per submitted update); materializing a Buffer just to read its
   length allocated the whole encoding per message. These mirror the
   encoders above — keep them in lockstep. *)

let value_wire_size = function
  | Value.Null | Value.Bool _ -> 1
  | Value.Int _ | Value.Float _ -> 9
  | Value.Text s -> 9 + String.length s

let row_wire_size row =
  Array.fold_left (fun acc v -> acc + value_wire_size v) 8 row

let writeset_bytes ws =
  List.fold_left
    (fun acc e ->
      let op_size =
        match e.Writeset.ws_op with
        | Writeset.Put row -> 1 + row_wire_size row
        | Writeset.Delete -> 1
      in
      acc + 8 + String.length e.Writeset.ws_table + row_wire_size e.Writeset.ws_key
      + op_size)
    8 (Writeset.entries ws)

let encode_schema buf (schema : Schema.t) =
  encode_string buf schema.Schema.table_name;
  encode_int buf (Array.length schema.Schema.columns);
  Array.iter
    (fun col ->
      encode_string buf col.Schema.col_name;
      Buffer.add_char buf
        (match col.Schema.col_type with
        | Value.Tint -> 'i'
        | Value.Tfloat -> 'f'
        | Value.Ttext -> 's'
        | Value.Tbool -> 'b');
      Buffer.add_char buf (if col.Schema.nullable then '\001' else '\000'))
    schema.Schema.columns;
  encode_int buf (Array.length schema.Schema.primary_key);
  Array.iter (encode_int buf) schema.Schema.primary_key;
  encode_int buf (Array.length schema.Schema.indexed);
  Array.iter (encode_int buf) schema.Schema.indexed

let decode_schema r =
  let name = decode_string r in
  let ncols = decode_int r in
  if ncols <= 0 || ncols > 4096 then corrupt "implausible column count %d" ncols;
  let columns = ref [] in
  let nullable = ref [] in
  for _ = 1 to ncols do
    let col_name = decode_string r in
    let ty =
      match Char.chr (read_byte r) with
      | 'i' -> Value.Tint
      | 'f' -> Value.Tfloat
      | 's' -> Value.Ttext
      | 'b' -> Value.Tbool
      | c -> corrupt "bad column type %C" c
    in
    (match read_byte r with
    | 1 -> nullable := col_name :: !nullable
    | 0 -> ()
    | b -> corrupt "bad nullable flag %d" b);
    columns := (col_name, ty) :: !columns
  done;
  let columns = List.rev !columns in
  let names = List.map fst columns in
  let nth i =
    match List.nth_opt names i with
    | Some n -> n
    | None -> corrupt "column index %d out of range" i
  in
  let nkeys = decode_int r in
  if nkeys <= 0 || nkeys > ncols then corrupt "implausible key count %d" nkeys;
  let key = List.init nkeys (fun _ -> nth (decode_int r)) in
  let nidx = decode_int r in
  if nidx < 0 || nidx > ncols then corrupt "implausible index count %d" nidx;
  let indexes = List.init nidx (fun _ -> nth (decode_int r)) in
  Schema.make ~name ~columns ~nullable:!nullable ~indexes ~key ()

(* --- Flat Bytes encodings ------------------------------------------- *)

module Flat = struct
  (* An append-only [Bytes] writer and a bounds-checked cursor over it.

     The Buffer-based codec above allocates per encode (the Buffer, its
     internal growth, and the final [contents] copy); high-volume sinks
     — the runlog, long-lived accounting streams — instead append into
     one growing [Bytes] and decode in place, so a soak's worth of
     records costs one flat buffer instead of a heap of boxed values. *)

  type writer = {
    mutable bytes : Bytes.t;
    mutable len : int;
  }

  let writer ?(capacity = 4096) () = { bytes = Bytes.create (max 16 capacity); len = 0 }

  let length w = w.len

  let clear w = w.len <- 0

  let ensure w n =
    let cap = Bytes.length w.bytes in
    if w.len + n > cap then begin
      let cap' = max (w.len + n) (2 * cap) in
      let grown = Bytes.create cap' in
      Bytes.blit w.bytes 0 grown 0 w.len;
      w.bytes <- grown
    end

  let u8 w x =
    ensure w 1;
    Bytes.unsafe_set w.bytes w.len (Char.unsafe_chr (x land 0xff));
    w.len <- w.len + 1

  let i64 w x =
    ensure w 8;
    Bytes.set_int64_le w.bytes w.len x;
    w.len <- w.len + 8

  let int w x = i64 w (Int64.of_int x)

  let float w x = i64 w (Int64.bits_of_float x)

  let str w s =
    let n = String.length s in
    int w n;
    ensure w n;
    Bytes.blit_string s 0 w.bytes w.len n;
    w.len <- w.len + n

  let contents w = Bytes.sub_string w.bytes 0 w.len

  type cursor = {
    data : Bytes.t;
    limit : int;
    mutable pos : int;
  }

  let cursor ?limit w =
    let limit = match limit with Some l -> l | None -> w.len in
    if limit > Bytes.length w.bytes then corrupt "flat cursor limit beyond buffer";
    { data = w.bytes; limit; pos = 0 }

  let cursor_of_string s =
    { data = Bytes.unsafe_of_string s; limit = String.length s; pos = 0 }

  let at_end c = c.pos >= c.limit

  let check c n =
    if c.pos + n > c.limit then
      corrupt "flat decode: need %d bytes at offset %d of %d" n c.pos c.limit

  let read_u8 c =
    check c 1;
    let b = Char.code (Bytes.unsafe_get c.data c.pos) in
    c.pos <- c.pos + 1;
    b

  let read_i64 c =
    check c 8;
    let x = Bytes.get_int64_le c.data c.pos in
    c.pos <- c.pos + 8;
    x

  let read_int c = Int64.to_int (read_i64 c)

  let read_float c = Int64.float_of_bits (read_i64 c)

  let read_str c =
    let n = read_int c in
    if n < 0 then corrupt "flat decode: negative string length %d" n;
    check c n;
    let s = Bytes.sub_string c.data c.pos n in
    c.pos <- c.pos + n;
    s
end

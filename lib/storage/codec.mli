(** Binary encoding of storage values, rows, writesets and schemas.

    Used for database checkpoints ({!Database.snapshot}), for exact
    wire-size accounting of propagated writesets, and for replica state
    transfer in recovery. The format is little-endian, self-describing
    via tag bytes, and versioned by a leading magic string. *)

type reader

val reader : string -> reader
(** A cursor over an encoded buffer, starting at offset 0. *)

val reader_at_end : reader -> bool

val expect_raw : reader -> string -> unit
(** Consume exactly these raw bytes; raises {!Corrupt} on mismatch.
    Used for magic headers. *)

exception Corrupt of string
(** Raised by every [decode_*] on malformed input. *)

val encode_value : Buffer.t -> Value.t -> unit
val decode_value : reader -> Value.t

val encode_row : Buffer.t -> Value.t array -> unit
val decode_row : reader -> Value.t array

val encode_row_opt : Buffer.t -> Value.t array option -> unit
val decode_row_opt : reader -> Value.t array option

val encode_int : Buffer.t -> int -> unit
val decode_int : reader -> int

val encode_string : Buffer.t -> string -> unit
val decode_string : reader -> string

val encode_writeset : Buffer.t -> Writeset.t -> unit

val decode_writeset : ?intern:Intern.t -> reader -> Writeset.t
(** [?intern] is forwarded to {!Writeset.of_entries}: state transfer
    passes the recovering group's table so decoded writesets carry
    cached conflict ids. *)

val writeset_bytes : Writeset.t -> int
(** Exact encoded size of a writeset, computed directly — no
    intermediate encoding is materialized. Equal to the length
    {!encode_writeset} would produce. *)

val value_wire_size : Value.t -> int
val row_wire_size : Value.t array -> int

val encode_schema : Buffer.t -> Schema.t -> unit
val decode_schema : reader -> Schema.t

(** Flat [Bytes]-based encoding for high-volume sinks: an append-only
    growing buffer plus a bounds-checked in-place cursor. Unlike the
    [Buffer]-based codec above, appending allocates nothing beyond the
    occasional doubling, and decoding walks the buffer without an
    intermediate copy. The runlog sink ({!Check.Runlog}) stores every
    committed transaction's record this way during chaos soaks. *)
module Flat : sig
  type writer

  val writer : ?capacity:int -> unit -> writer
  val length : writer -> int
  val clear : writer -> unit

  val u8 : writer -> int -> unit
  val int : writer -> int -> unit
  val i64 : writer -> int64 -> unit
  val float : writer -> float -> unit
  val str : writer -> string -> unit

  val contents : writer -> string
  (** Copy out the written prefix. *)

  type cursor

  val cursor : ?limit:int -> writer -> cursor
  (** Read back what was written, in place (no copy). The writer must
      not be appended to while the cursor is live. *)

  val cursor_of_string : string -> cursor

  val at_end : cursor -> bool
  val read_u8 : cursor -> int
  val read_int : cursor -> int
  val read_i64 : cursor -> int64
  val read_float : cursor -> float
  val read_str : cursor -> string
end

type op =
  | Put of Value.t array
  | Delete

type entry = {
  ws_table : string;
  ws_key : Value.t array;
  ws_op : op;
}

type t = {
  items : entry list;  (* insertion order *)
  index : (string * Value.t array, entry) Hashtbl.t;
  card : int;  (* |items|, precomputed: [cardinal] sits on the certifier hot path *)
}

let empty = { items = []; index = Hashtbl.create 1; card = 0 }

let of_entries entries =
  let index = Hashtbl.create (List.length entries * 2) in
  (* Later writes supersede earlier ones for the same record; keep first
     occurrence position for ordering. *)
  List.iter (fun e -> Hashtbl.replace index (e.ws_table, e.ws_key) e) entries;
  let seen = Hashtbl.create 16 in
  let items =
    List.filter_map
      (fun e ->
        let k = (e.ws_table, e.ws_key) in
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some (Hashtbl.find index k)
        end)
      entries
  in
  { items; index; card = Hashtbl.length seen }

let is_empty t = t.items = []

let entries t = t.items

let cardinal t = t.card

let tables t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
      if Hashtbl.mem seen e.ws_table then None
      else begin
        Hashtbl.add seen e.ws_table ();
        Some e.ws_table
      end)
    t.items

let mem t ~table ~key = Hashtbl.mem t.index (table, key)

let keys t = List.map (fun e -> (e.ws_table, e.ws_key)) t.items

let conflicts a b =
  (* Probe the smaller set against the larger one's hash index. *)
  let small, large = if cardinal a <= cardinal b then (a, b) else (b, a) in
  List.exists (fun e -> Hashtbl.mem large.index (e.ws_table, e.ws_key)) small.items

let size_bytes t =
  List.fold_left
    (fun acc e ->
      let key_size = Array.fold_left (fun s v -> s + Value.size_bytes v) 0 e.ws_key in
      let op_size =
        match e.ws_op with
        | Put row -> Array.fold_left (fun s v -> s + Value.size_bytes v) 0 row
        | Delete -> 1
      in
      acc + key_size + op_size + String.length e.ws_table + 8)
    0 t.items

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      let pp_key ppf key =
        Array.iteri
          (fun i v -> Format.fprintf ppf "%s%a" (if i > 0 then "," else "") Value.pp v)
          key
      in
      match e.ws_op with
      | Put _ -> Format.fprintf ppf "PUT %s[%a]@," e.ws_table pp_key e.ws_key
      | Delete -> Format.fprintf ppf "DEL %s[%a]@," e.ws_table pp_key e.ws_key)
    t.items;
  Format.fprintf ppf "@]"

module Itbl = Util.Tables.Itbl

type op =
  | Put of Value.t array
  | Delete

type entry = {
  ws_table : string;
  ws_key : Value.t array;
  ws_op : op;
}

type t = {
  items : entry list;  (* insertion order *)
  mutable index : (string * Value.t array, entry) Hashtbl.t option;
      (* tuple-keyed probe index, built on first demand: the interned
         paths never need it, so the common case pays nothing *)
  card : int;  (* |items|, precomputed: [cardinal] sits on the certifier hot path *)
  kids : int array;  (* conflict ids aligned with [items]; [||] unless interned *)
  origin : Intern.t option;  (* the table [kids] was resolved against *)
}

let empty = { items = []; index = None; card = 0; kids = [||]; origin = None }

let build_index items =
  let index = Hashtbl.create ((2 * List.length items) + 1) in
  List.iter (fun e -> Hashtbl.replace index (e.ws_table, e.ws_key) e) items;
  index

let index t =
  match t.index with
  | Some ix -> ix
  | None ->
    let ix = build_index t.items in
    t.index <- Some ix;
    ix

let of_entries ?intern entries =
  (* Later writes supersede earlier ones for the same record; keep first
     occurrence position for ordering. *)
  match intern with
  | Some it ->
    (* Resolve each entry's conflict id exactly once; superseding and
       dedup then run over dense ints — no tuple keys, no polymorphic
       hashing of value arrays. *)
    let resolved =
      List.map (fun e -> (Intern.id it ~table:e.ws_table ~key:e.ws_key, e)) entries
    in
    let last = Itbl.create 16 in
    List.iter (fun (id, e) -> Itbl.replace last id e) resolved;
    let seen = Itbl.create 16 in
    let items_rev, kids_rev, card =
      List.fold_left
        (fun (items, kids, n) (id, _) ->
          if Itbl.mem seen id then (items, kids, n)
          else begin
            Itbl.add seen id ();
            (Itbl.find last id :: items, id :: kids, n + 1)
          end)
        ([], [], 0) resolved
    in
    {
      items = List.rev items_rev;
      index = None;
      card;
      kids = Array.of_list (List.rev kids_rev);
      origin = Some it;
    }
  | None ->
    let index = build_index entries in
    let seen = Hashtbl.create 16 in
    let items =
      List.filter_map
        (fun e ->
          let k = (e.ws_table, e.ws_key) in
          if Hashtbl.mem seen k then None
          else begin
            Hashtbl.add seen k ();
            Some (Hashtbl.find index k)
          end)
        entries
    in
    { items; index = Some index; card = Hashtbl.length seen; kids = [||]; origin = None }

let is_empty t = t.items = []

let entries t = t.items

let cardinal t = t.card

let origin t = t.origin

let interned t ~intern = match t.origin with Some o -> o == intern | None -> false

let cids t ~intern =
  match t.origin with
  | Some o when o == intern -> t.kids
  | _ ->
    (* Foreign or un-interned writeset (tests and standalone fixtures
       drive the certifier/replica APIs with bare writesets): resolve
       through the caller's table so its ids stay comparable with every
       other id it handed out. *)
    let arr = Array.make t.card 0 in
    List.iteri
      (fun i e -> arr.(i) <- Intern.id intern ~table:e.ws_table ~key:e.ws_key)
      t.items;
    arr

let tables t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
      if Hashtbl.mem seen e.ws_table then None
      else begin
        Hashtbl.add seen e.ws_table ();
        Some e.ws_table
      end)
    t.items

let mem t ~table ~key = Hashtbl.mem (index t) (table, key)

let keys t = List.map (fun e -> (e.ws_table, e.ws_key)) t.items

let conflicts a b =
  if a.card = 0 || b.card = 0 then false
  else
    match (a.origin, b.origin) with
    | Some oa, Some ob when oa == ob ->
      (* Same intern table: the ids are directly comparable. Writesets
         are a handful of rows, so direct scans beat hashing; the rare
         large pair falls back to an int-keyed set. *)
      let small, large = if a.card <= b.card then (a.kids, b.kids) else (b.kids, a.kids) in
      if Array.length small * Array.length large <= 1024 then
        Array.exists (fun k -> Array.exists (Int.equal k) large) small
      else begin
        let set = Itbl.create (2 * Array.length large) in
        Array.iter (fun k -> Itbl.replace set k ()) large;
        Array.exists (fun k -> Itbl.mem set k) small
      end
    | _ ->
      (* Probe the smaller set against the larger one's hash index. *)
      let small, large = if a.card <= b.card then (a, b) else (b, a) in
      let ix = index large in
      List.exists (fun e -> Hashtbl.mem ix (e.ws_table, e.ws_key)) small.items

let size_bytes t =
  List.fold_left
    (fun acc e ->
      let key_size = Array.fold_left (fun s v -> s + Value.size_bytes v) 0 e.ws_key in
      let op_size =
        match e.ws_op with
        | Put row -> Array.fold_left (fun s v -> s + Value.size_bytes v) 0 row
        | Delete -> 1
      in
      acc + key_size + op_size + String.length e.ws_table + 8)
    0 t.items

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      let pp_key ppf key =
        Array.iteri
          (fun i v -> Format.fprintf ppf "%s%a" (if i > 0 then "," else "") Value.pp v)
          key
      in
      match e.ws_op with
      | Put _ -> Format.fprintf ppf "PUT %s[%a]@," e.ws_table pp_key e.ws_key
      | Delete -> Format.fprintf ppf "DEL %s[%a]@," e.ws_table pp_key e.ws_key)
    t.items;
  Format.fprintf ppf "@]"

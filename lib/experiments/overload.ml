(* Open-loop offered-rate sweep (docs/PROTOCOL.md, "Overload &
   admission control"): drive the cluster with a rate-paced arrival
   process at each offered rate and report goodput, shedding, latency
   and queue depth — the classic goodput-vs-offered-load curve that
   shows where an unprotected system collapses and a protected one
   plateaus. *)

type point = {
  offered_tps : float;
  goodput_tps : float;  (** committed transactions per second *)
  committed : int;
  aborted : int;
  shed : int;
  deadline_expired : int;
  retry_budget_exhausted : int;
  max_queue_depth : int;
  p50_ms : float;
  p99_ms : float;  (** response latency of committed transactions *)
  abort_rate : float;
}

let run_point ?(config = Core.Config.default) ?(params = Workload.Microbench.default)
    ?(clients = 16) ~mode ~offered_tps ~warmup_ms ~measure_ms () =
  let cluster =
    Core.Cluster.create ~config ~mode
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.open_loop_many cluster ~n:clients ~first_sid:0 ~rate_tps:offered_tps
    (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms ~measure_ms;
  let m = Core.Cluster.metrics cluster in
  {
    offered_tps;
    goodput_tps = Core.Metrics.throughput_tps m;
    committed = Core.Metrics.committed m;
    aborted = Core.Metrics.aborted m;
    shed = Core.Metrics.shed m;
    deadline_expired = Core.Metrics.deadline_expired m;
    retry_budget_exhausted = Core.Metrics.retry_budget_exhausted m;
    max_queue_depth = Core.Metrics.max_queue_depth m;
    p50_ms = Core.Metrics.percentile_response_ms m 50.0;
    p99_ms = Core.Metrics.percentile_response_ms m 99.0;
    abort_rate = Core.Metrics.abort_rate m;
  }

let sweep ?config ?params ?clients ?(jobs = 1) ~mode ~rates ~warmup_ms ~measure_ms ()
    =
  Runner.map_jobs ~jobs
    (fun offered_tps ->
      run_point ?config ?params ?clients ~mode ~offered_tps ~warmup_ms ~measure_ms ())
    rates

let pp_point ppf p =
  Format.fprintf ppf
    "offered %8.0f tps  goodput %8.1f tps  p50 %7.2fms  p99 %7.2fms  committed=%-6d \
     aborted=%-5d shed=%-5d expired=%-4d budget_out=%-4d max_queue=%d"
    p.offered_tps p.goodput_tps p.p50_ms p.p99_ms p.committed p.aborted p.shed
    p.deadline_expired p.retry_budget_exhausted p.max_queue_depth

let point_json p =
  Obs.Json.Obj
    [
      ("offered_tps", Obs.Json.Num p.offered_tps);
      ("goodput_tps", Obs.Json.Num p.goodput_tps);
      ("committed", Obs.Json.Num (float_of_int p.committed));
      ("aborted", Obs.Json.Num (float_of_int p.aborted));
      ("shed", Obs.Json.Num (float_of_int p.shed));
      ("deadline_expired", Obs.Json.Num (float_of_int p.deadline_expired));
      ("retry_budget_exhausted", Obs.Json.Num (float_of_int p.retry_budget_exhausted));
      ("max_queue_depth", Obs.Json.Num (float_of_int p.max_queue_depth));
      ("p50_ms", Obs.Json.Num p.p50_ms);
      ("p99_ms", Obs.Json.Num p.p99_ms);
      ("abort_rate", Obs.Json.Num p.abort_rate);
    ]

let sweep_json ~mode points =
  Obs.Json.Obj
    [
      ("version", Obs.Json.Num 1.0);
      ("kind", Obs.Json.Str "overload_sweep");
      ("mode", Obs.Json.Str (Core.Consistency.to_string mode));
      ("points", Obs.Json.Arr (List.map point_json points));
    ]

(** Open-loop offered-rate sweeps (docs/PROTOCOL.md, "Overload &
    admission control").

    Each point drives the cluster with a rate-paced ({e open-loop})
    Poisson arrival process — arrivals do not slow down when the
    cluster does — and reports goodput, shedding, tail latency and
    queue depth. Sweeping the offered rate across the capacity knee
    produces the goodput-vs-offered-load curve: an unprotected cluster
    collapses past the knee (unbounded queues, retry storms), a
    protected one sheds excess and holds its plateau. *)

type point = {
  offered_tps : float;  (** aggregate offered arrival rate *)
  goodput_tps : float;  (** committed transactions per second *)
  committed : int;
  aborted : int;
  shed : int;  (** refusals ({!Core.Transaction.Overloaded}) *)
  deadline_expired : int;
  retry_budget_exhausted : int;
  max_queue_depth : int;
  p50_ms : float;
  p99_ms : float;  (** response latency of committed transactions *)
  abort_rate : float;
}

val run_point :
  ?config:Core.Config.t ->
  ?params:Workload.Microbench.params ->
  ?clients:int ->
  mode:Core.Consistency.mode ->
  offered_tps:float ->
  warmup_ms:float ->
  measure_ms:float ->
  unit ->
  point
(** One offered rate against a fresh cluster. [clients] (default 16) is
    the number of independent generators the rate is split across. *)

val sweep :
  ?config:Core.Config.t ->
  ?params:Workload.Microbench.params ->
  ?clients:int ->
  ?jobs:int ->
  mode:Core.Consistency.mode ->
  rates:float list ->
  warmup_ms:float ->
  measure_ms:float ->
  unit ->
  point list
(** [run_point] per rate, in order. Each point is an independent
    simulation, so [jobs] (default 1, {!Runner.map_jobs}) parallelizes
    the sweep without perturbing any result. *)

val pp_point : Format.formatter -> point -> unit

val sweep_json : mode:Core.Consistency.mode -> point list -> Obs.Json.t
(** Versioned artifact envelope for a sweep, one object per point. *)

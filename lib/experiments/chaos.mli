(** Seeded fault-schedule soak harness (docs/FAULTS.md).

    Runs the hardened protocol ({!Core.Config.hardened}) under a named
    deterministic fault plan, feeds the committed-transaction runlog to
    the {!Check.Runlog} battery for the mode's consistency guarantee,
    and verifies the cluster did not wedge: after every fault window
    heals, commits must keep flowing and every live replica must catch
    up to the certifier. Everything — the fault schedule, the workload,
    the wedge drain — derives from [seed] and [duration_ms], so a run
    is reproducible bit for bit ({!reproducible}). *)

type plan =
  | Clean  (** fault plan attached but all-clean: must match no plan at all *)
  | Lossy  (** i.i.d. drop/duplicate/delay on every link *)
  | Partitions  (** scheduled full and partial (asymmetric) partitions *)
  | Gray  (** no message loss; replica and certifier slowdown windows *)
  | Mixed
      (** loss + an extra-lossy refresh link + partition + slowdown + a
          scripted drop burst + one replica crash/recover cycle *)
  | CertFailover
      (** certifier-group havoc: the initial primary is crashed AND
          partitioned mid-load (returning into the cut, so it rejoins
          only after the heal via epoch adoption), then the promoted
          standby is partitioned while holding the role — a deposed but
          alive primary whose stragglers must all be epoch-fenced.
          Promotions are automatic; the soak requires at least one, zero
          consistency violations and zero decision divergence across the
          group's log copies. Forces [certifier_standbys >= 2]. *)
  | ControlPlane
      (** combined control-plane havoc: a certifier standby is
          partitioned away while the primary is healthy (exercising the
          partitioned-voter lease under [standby_ack_quorum = all]),
          then the active LB is crashed (the standby LB must take over
          routing with session floors intact), and while the LB outage
          still holds the certifier primary is crashed (the survivors
          must elect a successor by quorum vote). Requires at least one
          automatic promotion AND one LB takeover, zero violations,
          zero divergent log entries. Forces [certifier_standbys >= 2],
          [lb_standby], and a nonzero [voter_lease_ms]. *)
  | Overload
      (** metastable-failure reproduction (docs/FAULTS.md, "Overload"):
          an {e open-loop} arrival process offers more load than the
          cluster can serve while a gray slowdown hits the certifier —
          the trigger whose retry storm outlives the fault. The soak
          arms the full protection stack (admission cap, bounded
          certifier backlog, apply-lag governor, retry budget,
          deadlines) unless [~protections:false]; it requires at least
          one shed, zero zombie commits, zero violations, and bounded
          post-heal recovery. *)

val all_plans : plan list

val plan_name : plan -> string

val plan_of_string : string -> (plan, string) result

type result = {
  mode : Core.Consistency.mode;
  plan : plan;
  seed : int;
  tiers : bool;  (** the run used the mixed-tier read workload *)
  committed : int;
  aborted : int;
  aborts_by_reason : (string * int) list;
  violations : (string * int) list;  (** checker name, violation count *)
  duplicate_commit_versions : int;
      (** committed records sharing a commit version (must be 0) *)
  wedged : bool;
      (** true if the post-heal drain saw no commits, or a live replica
          failed to reach the certifier's pre-drain version *)
  wedge_drain_ms : float;
      (** virtual time from the start of the post-heal drain until the
          cluster both committed again and every live replica caught up
          (sampled at 1/20th-drain granularity; the full drain span when
          wedged) *)
  digest : string;  (** {!Check.Runlog.digest} of the measured window *)
  drops : int;
  duplicates : int;
  delays : int;
  retransmits : int;
  suspects : int;
  failovers : int;
  reprovisions : int;
  evictions : int;
  promotions : int;  (** automatic certifier promotions *)
  fenced : int;
      (** stale-epoch certifier messages/decisions rejected, summed over
          certifier, replicas and load balancer *)
  epoch : int;  (** final certifier epoch (0 when no failover happened) *)
  elections : int;  (** certifier vote rounds started *)
  vote_denials : int;  (** votes refused (stale log, old ballot, busy) *)
  lease_expiries : int;
      (** partitioned voters demoted out of the ack quorum by lease *)
  lb_takeovers : int;  (** standby-LB routing takeovers *)
  lb_fenced : int;  (** stale-LB-epoch pushes/relays rejected *)
  lb_epoch : int;  (** final LB routing epoch (0 when no takeover) *)
  divergent_log_entries : int;
      (** versions whose writeset differs between two certifier group
          members' retained logs (must be 0) *)
  outage_max_ms : float;
      (** widest commit-outage window an automatic promotion closed *)
  shed : int;
      (** requests refused with {!Core.Transaction.Overloaded} — LB
          admission, apply-lag governor, or certifier backlog *)
  deadline_expired : int;  (** transactions dropped past their deadline *)
  retry_budget_exhausted : int;
      (** clients that gave a transaction up on an empty retry budget *)
  max_queue_depth : int;
      (** deepest certifier backlog / admitted-in-flight depth observed *)
  zombie_commits : int;
      (** committed records whose tid was also shed (must be 0) *)
}

val ok : result -> bool
(** No checker violations, no duplicate commit versions, no divergent
    certifier log entries, no zombie commits, not wedged — and, under
    {!CertFailover}, at least one automatic promotion; under
    {!ControlPlane}, at least one automatic promotion and one LB
    takeover; under {!Overload}, at least one shed. *)

val default_config : seed:int -> Core.Config.t
(** The config a soak runs under when none is given: a hardened
    3-replica cluster with [record_log] on. Exposed so CLI overrides
    can start from the same base the soak would use. *)

val soak :
  ?config:Core.Config.t ->
  ?params:Workload.Microbench.params ->
  ?clients:int ->
  ?tiers:bool ->
  ?protections:bool ->
  ?offered_tps:float ->
  mode:Core.Consistency.mode ->
  plan:plan ->
  seed:int ->
  duration_ms:float ->
  unit ->
  result
(** One soak run. [config] defaults to a hardened 3-replica cluster
    with [record_log] on; [seed] overrides the config's seed so it
    drives both the cluster and the fault plan. [tiers] (default false)
    turns on [read_tiers] and drives the mixed-tier read workload
    ({!Workload.Microbench.tiered_workload}), so the tier contracts in
    the battery are exercised under faults rather than vacuously
    empty. [protections] (default true) and [offered_tps] (default
    6000, the aggregate open-loop arrival rate — comfortably past the
    gray-window capacity for every mode) only affect the
    {!Overload} plan: [~protections:false] leaves every overload knob
    off — the control arm that demonstrates the metastable collapse. *)

val reproducible :
  ?config:Core.Config.t ->
  ?params:Workload.Microbench.params ->
  ?clients:int ->
  ?tiers:bool ->
  ?protections:bool ->
  ?offered_tps:float ->
  mode:Core.Consistency.mode ->
  plan:plan ->
  seed:int ->
  duration_ms:float ->
  unit ->
  result * bool
(** Run the same soak twice; the boolean is whether the two runlog
    digests were identical (the bit-reproducibility claim). *)

val soak_matrix :
  ?config:Core.Config.t ->
  ?params:Workload.Microbench.params ->
  ?clients:int ->
  ?tiers:bool ->
  ?protections:bool ->
  ?offered_tps:float ->
  ?modes:Core.Consistency.mode list ->
  ?plans:plan list ->
  ?jobs:int ->
  seeds:int list ->
  duration_ms:float ->
  unit ->
  result list
(** The full grid: every plan x mode x seed (defaults: the paper's four
    modes under the [Mixed] plan). [jobs] (default 1) runs that many
    soaks concurrently on separate domains ({!Runner.map_jobs}); every
    run is an independent simulation, so results — order, digests, and
    per-run log lines — are identical whatever [jobs] is. *)

val pp_result : Format.formatter -> result -> unit

val health_json : result list -> Obs.Json.t
(** The per-mode health timeline artifact: one object per run (plan,
    seed, verdict, commit/abort counts, violation counts by checker,
    faults injected, retransmissions, detector and HA events,
    wedge-drain time, digest) under a versioned envelope. CI uploads
    this when a soak fails. *)

val write_health : result list -> file:string -> unit

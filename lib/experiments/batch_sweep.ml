type cell = { baseline : Runner.summary; batched : Runner.summary }

type point = {
  update_types : int;
  cells : (Core.Consistency.mode * cell) list;
}

let speedup_pct cell =
  if cell.baseline.Runner.tps <= 0.0 then 0.0
  else ((cell.batched.Runner.tps /. cell.baseline.Runner.tps) -. 1.0) *. 100.0

let default_modes =
  [
    Core.Consistency.Coarse;
    Core.Consistency.Fine;
    Core.Consistency.Session;
    Core.Consistency.Eager;
  ]

let run ?(config = Core.Config.default) ?(batched = Core.Config.batched)
    ?(params = Workload.Microbench.default) ?(clients = 80) ?(modes = default_modes)
    ?(update_points = [ 0; 5; 10; 15; 20 ]) ?(warmup_ms = 2_000.0)
    ?(measure_ms = 8_000.0) () =
  List.map
    (fun update_types ->
      let cells =
        List.map
          (fun mode ->
            let go config =
              Runner.run_micro ~config ~mode
                ~params:{ params with Workload.Microbench.update_types }
                ~clients ~warmup_ms ~measure_ms ()
            in
            (mode, { baseline = go config; batched = go (batched config) }))
          modes
      in
      { update_types; cells })
    update_points

let modes_of points =
  match points with [] -> [] | p :: _ -> List.map fst p.cells

let render points =
  let modes = modes_of points in
  let header =
    "upd types"
    :: List.concat_map
         (fun mode ->
           let name = Core.Consistency.to_string mode in
           [ name ^ " TPS"; "+batch TPS"; "gain %" ])
         modes
  in
  let rows =
    List.map
      (fun p ->
        string_of_int p.update_types
        :: List.concat_map
             (fun mode ->
               match List.assoc_opt mode p.cells with
               | Some cell ->
                 [
                   Report.fmt_f cell.baseline.Runner.tps;
                   Report.fmt_f cell.batched.Runner.tps;
                   Printf.sprintf "%+.1f" (speedup_pct cell);
                 ]
               | None -> [ "-"; "-"; "-" ])
             modes)
      points
  in
  let series =
    List.map
      (fun mode ->
        ( Core.Consistency.to_string mode,
          List.filter_map
            (fun p ->
              Option.map
                (fun cell -> (float_of_int p.update_types, speedup_pct cell))
                (List.assoc_opt mode p.cells))
            points ))
      modes
  in
  Report.section
    "Batching sweep: group certification + parallel refresh apply vs the unbatched \
     pipeline (8 replicas)"
  ^ "\n" ^ Report.table ~header rows ^ "\n"
  ^ Plot.chart ~series ~y_label:"throughput gain %"
      ~x_label:"update transaction types (of 40)" ()

let log_src = Logs.Src.create "repro.chaos" ~doc:"Seeded fault-schedule soak harness"

module Log = (val Logs.src_log log_src)

type plan =
  | Clean
  | Lossy
  | Partitions
  | Gray
  | Mixed
  | CertFailover
  | ControlPlane
  | Overload

let all_plans =
  [ Clean; Lossy; Partitions; Gray; Mixed; CertFailover; ControlPlane; Overload ]

let plan_name = function
  | Clean -> "clean"
  | Lossy -> "lossy"
  | Partitions -> "partitions"
  | Gray -> "gray"
  | Mixed -> "mixed"
  | CertFailover -> "cert-failover"
  | ControlPlane -> "control-plane"
  | Overload -> "overload"

let plan_of_string = function
  | "clean" -> Ok Clean
  | "lossy" -> Ok Lossy
  | "partitions" -> Ok Partitions
  | "gray" -> Ok Gray
  | "mixed" -> Ok Mixed
  | "cert-failover" -> Ok CertFailover
  | "control-plane" -> Ok ControlPlane
  | "overload" -> Ok Overload
  | s ->
    Error
      (Printf.sprintf
         "unknown fault plan %S \
          (clean|lossy|partitions|gray|mixed|cert-failover|control-plane|overload)" s)

(* Every schedule below is derived only from [seed] and [duration_ms]:
   same inputs, same plan, bit for bit. All windows close by
   [0.75 * duration], leaving a clean tail for the cluster to converge
   in (the wedge check relies on it). *)
let build_plan plan ~seed ~duration_ms ~replicas engine =
  (* Derive the plan's seed rather than reusing the run seed verbatim:
     the cluster's root RNG is [Util.Rng.create seed], and seeding the
     fault stream identically would correlate fault draws with the
     streams split from the root. *)
  let f = Sim.Faults.create ~seed:(seed lxor 0x2b99_17c5_1e7a_3f6d) engine in
  let frac a = a *. duration_ms in
  (match plan with
  | Clean -> ()
  | Lossy ->
    Sim.Faults.set_default f
      (Sim.Faults.spec ~drop:0.03 ~duplicate:0.02 ~delay:0.03 ~delay_ms:15.0 ())
  | Partitions ->
    Sim.Faults.set_default f (Sim.Faults.spec ~drop:0.005 ());
    (* Two replicas take turns being cut off from everyone. *)
    Sim.Faults.partition f ~a:[ 0 ] ~b:[] ~from_ms:(frac 0.15) ~until_ms:(frac 0.3) ();
    Sim.Faults.partition f
      ~a:[ 1 mod replicas ]
      ~b:[] ~from_ms:(frac 0.45) ~until_ms:(frac 0.6) ();
    (* A partial (asymmetric) cut: replica 0 can send to the certifier
       but hears nothing back. *)
    Sim.Faults.partition f ~symmetric:false
      ~a:[ Core.Config.node_certifier ]
      ~b:[ 0 ] ~from_ms:(frac 0.65) ~until_ms:(frac 0.72) ()
  | Gray ->
    (* Gray failure: nothing is lost, but one replica and then the
       certifier run several times slower than their cost model says. *)
    Sim.Faults.slow f ~node:0 ~factor:5.0 ~from_ms:(frac 0.1) ~until_ms:(frac 0.35);
    Sim.Faults.slow f ~node:Core.Config.node_certifier ~factor:3.0
      ~from_ms:(frac 0.5) ~until_ms:(frac 0.65)
  | Mixed ->
    Sim.Faults.set_default f
      (Sim.Faults.spec ~drop:0.02 ~duplicate:0.01 ~delay:0.02 ~delay_ms:10.0 ());
    (* The certifier->replica refresh link is extra lossy: stresses
       repair retransmission and receiver-side dedup. *)
    Sim.Faults.set_link f ~src:Core.Config.node_certifier ~dst:Sim.Faults.any
      (Sim.Faults.spec ~drop:0.08 ~duplicate:0.04 ~delay:0.02 ~delay_ms:10.0 ());
    Sim.Faults.partition f ~a:[ 0 ] ~b:[] ~from_ms:(frac 0.2) ~until_ms:(frac 0.35) ();
    Sim.Faults.slow f
      ~node:(1 mod replicas)
      ~factor:4.0 ~from_ms:(frac 0.4) ~until_ms:(frac 0.55);
    Sim.Faults.script_drop f ~src:Sim.Faults.any ~dst:Core.Config.node_certifier
      ~count:25
  | CertFailover ->
    (* Certifier-group havoc: mild ambient loss, the initial primary cut
       off around its crash/revival window (so it returns into a
       partition and must reconcile after the heal), and the first
       promoted standby partitioned later while it holds the role — a
       deposed-but-alive primary whose in-flight decisions and pushes
       must all be epoch-fenced. The soak schedule crashes the initial
       primary at 0.18d and revives it at 0.42d; promotions themselves
       are automatic (standby failure detectors). *)
    Sim.Faults.set_default f
      (Sim.Faults.spec ~drop:0.02 ~duplicate:0.01 ~delay:0.02 ~delay_ms:10.0 ());
    Sim.Faults.partition f
      ~a:[ Core.Config.node_cert_standby 0 ]
      ~b:[] ~from_ms:(frac 0.18) ~until_ms:(frac 0.55) ();
    Sim.Faults.partition f
      ~a:[ Core.Config.node_cert_standby 1 ]
      ~b:[] ~from_ms:(frac 0.5) ~until_ms:(frac 0.7) ()
  | ControlPlane ->
    (* Whole-control-plane havoc (certifier group AND load balancer in
       one run), layered over mild ambient loss. Three overlapping
       phases, all healed by 0.75d:
       - [0.12d, 0.30d]: a caught-up standby is partitioned while the
         primary is healthy — under [standby_ack_quorum = all] every
         commit stalls until the voter lease demotes it to learner;
       - [0.25d, 0.55d]: the active LB is crashed by the soak schedule
         (below); the standby LB must take over routing with floors
         intact, and the deposed instance is fenced when it returns;
       - [0.45d, 0.62d]: the certifier primary is crashed by the soak
         schedule — overlapping the LB outage window's tail, so for a
         while the cluster has neither its original router nor its
         original certifier — and a quorum-intersecting election must
         promote a safe successor. *)
    Sim.Faults.set_default f
      (Sim.Faults.spec ~drop:0.02 ~duplicate:0.01 ~delay:0.02 ~delay_ms:10.0 ());
    Sim.Faults.partition f
      ~a:[ Core.Config.node_cert_standby 1 ]
      ~b:[] ~from_ms:(frac 0.12) ~until_ms:(frac 0.3) ()
  | Overload ->
    (* The metastable trigger (docs/FAULTS.md, "Overload"): a gray
       slowdown of the certifier — the shared bottleneck — while an
       open-loop arrival process keeps offering load regardless of
       completions. Work queues, clients time out and retry, and the
       retry traffic outlives the fault: without admission control the
       collapse is self-sustaining after the heal. The window closes by
       0.55d, leaving the usual convergence tail. *)
    Sim.Faults.slow f ~node:Core.Config.node_certifier ~factor:6.0
      ~from_ms:(frac 0.25) ~until_ms:(frac 0.55));
  f

type result = {
  mode : Core.Consistency.mode;
  plan : plan;
  seed : int;
  tiers : bool;
  committed : int;
  aborted : int;
  aborts_by_reason : (string * int) list;
  violations : (string * int) list;
  duplicate_commit_versions : int;
  wedged : bool;
  wedge_drain_ms : float;
      (** virtual time the post-heal drain took until the cluster both
          progressed and caught up (the full drain span when wedged) *)
  digest : string;
  drops : int;
  duplicates : int;
  delays : int;
  retransmits : int;
  suspects : int;
  failovers : int;
  reprovisions : int;
  evictions : int;
  promotions : int;  (** automatic certifier promotions *)
  fenced : int;  (** stale-epoch certifier messages/decisions rejected *)
  epoch : int;  (** final certifier epoch *)
  elections : int;  (** certifier vote rounds started *)
  vote_denials : int;  (** ballots refused by voters *)
  lease_expiries : int;  (** voters demoted to learner by the liveness lease *)
  lb_takeovers : int;  (** standby-LB routing takeovers *)
  lb_fenced : int;  (** stale-LB-epoch pushes/relays rejected *)
  lb_epoch : int;  (** final LB routing epoch *)
  divergent_log_entries : int;
      (** versions whose writeset differs between two certifier group
          members' retained logs (must be 0: same version, same decision
          on every surviving copy) *)
  outage_max_ms : float;  (** widest commit-outage window a promotion closed *)
  shed : int;  (** requests refused [Overloaded] (LB, governor, certifier) *)
  deadline_expired : int;  (** transactions dropped past their deadline *)
  retry_budget_exhausted : int;  (** clients that gave up on an empty budget *)
  max_queue_depth : int;  (** deepest backlog/admitted depth observed *)
  zombie_commits : int;
      (** committed-log records whose tid was also shed — must be 0:
          a refused transaction may never commit *)
}

let ok r =
  (not r.wedged)
  && r.duplicate_commit_versions = 0
  && r.divergent_log_entries = 0
  && List.for_all (fun (_, n) -> n = 0) r.violations
  (* The cert-failover plan exists to exercise automatic promotion: a
     run where no standby ever took over proves nothing. *)
  && (r.plan <> CertFailover || r.promotions >= 1)
  (* Likewise, a control-plane run must see both halves actually fail
     over: at least one safe election-backed promotion AND at least one
     standby-LB takeover. *)
  && (r.plan <> ControlPlane || (r.promotions >= 1 && r.lb_takeovers >= 1))
  (* A shed transaction may never also commit, whatever the plan. *)
  && r.zombie_commits = 0
  (* An overload run where nothing was ever refused proves nothing: the
     open-loop load is sized beyond capacity, so protection must bite. *)
  && (r.plan <> Overload || r.shed > 0)

(* The per-mode checker battery: first-committer-wins (no lost or
   double-committed writes under GSI) and epoch fencing (commit versions
   partitioned by certifier epoch — trivially clean without failovers)
   always, plus the guarantee the mode advertises. *)
let checkers mode =
  let always =
    [
      ("first_committer_wins", Check.Runlog.first_committer_wins);
      ("epoch_fencing", Check.Runlog.epoch_fencing);
      (* Control-plane invariants: one certification history (no version
         assigned twice by rival primaries), and LB takeovers preserve
         handed-out session guarantees. Both trivially empty on runs
         without failovers. *)
      ("election_safety", Check.Runlog.election_safety);
      ("lb_floor_preservation", Check.Runlog.lb_floor_preservation);
      (* The read-tier contracts constrain only records of their own
         class, so they are trivially empty on untiered logs and can
         ride in every battery. *)
      ("tier_bounded_staleness", Check.Runlog.tier_bounded_staleness);
      ("tier_causal_ryw", Check.Runlog.tier_causal_ryw);
      ("tier_monotone_reads", Check.Runlog.tier_monotone_reads);
    ]
  in
  match (mode : Core.Consistency.mode) with
  | Core.Consistency.Eager | Core.Consistency.Coarse ->
    always @ [ ("strong_consistency", Check.Runlog.strong_consistency) ]
  | Core.Consistency.Fine ->
    always @ [ ("fine_strong_consistency", Check.Runlog.fine_strong_consistency) ]
  | Core.Consistency.Session ->
    always
    @ [
        ("session_consistency", Check.Runlog.session_consistency);
        ("monotone_session_snapshots", Check.Runlog.monotone_session_snapshots);
      ]
  | Core.Consistency.Bounded k ->
    always @ [ ("bounded_staleness", Check.Runlog.bounded_staleness ~k) ]

(* Decision divergence across the certifier group: every version present
   in more than one member's retained log must carry the same writeset
   on each copy — structurally equal entries. Any mismatch means two
   histories assigned the same version to different transactions and
   both survived, i.e. reconciliation failed. *)
let divergent_log_entries certifier =
  let canonical = Hashtbl.create 1024 in
  let divergent = ref 0 in
  for k = 0 to Core.Certifier.group_size certifier - 1 do
    List.iter
      (fun (v, ws) ->
        let entries = Storage.Writeset.entries ws in
        match Hashtbl.find_opt canonical v with
        | None -> Hashtbl.add canonical v entries
        | Some seen -> if seen <> entries then incr divergent)
      (Core.Certifier.node_log certifier k)
  done;
  !divergent

let count_duplicate_versions records =
  let seen = Hashtbl.create 256 in
  List.fold_left
    (fun acc r ->
      match r.Check.Runlog.commit_version with
      | None -> acc
      | Some v ->
        if Hashtbl.mem seen v then acc + 1
        else begin
          Hashtbl.add seen v ();
          acc
        end)
    0 records

let default_params = { Workload.Microbench.tables = 4; rows = 200; update_types = 2 }

let default_config ~seed =
  Core.Config.hardened
    {
      Core.Config.default with
      Core.Config.seed;
      replicas = 3;
      record_log = true;
      hiccup_interval_ms = 0.0;
    }

let soak ?config ?(params = default_params) ?(clients = 12) ?(tiers = false)
    ?(protections = true) ?(offered_tps = 6_000.0) ~mode ~plan ~seed ~duration_ms () =
  let config =
    match config with
    | Some c -> { c with Core.Config.seed; record_log = true }
    | None -> default_config ~seed
  in
  (* The overload plan arms the full protection stack (admission cap,
     bounded certifier backlog, apply-lag governor, retry budget,
     deadlines). [~protections:false] is the experiment's control arm:
     same open-loop load, same gray fault, nothing shed — the metastable
     collapse the protections exist to prevent. *)
  let config =
    if plan = Overload && protections then
      {
        config with
        Core.Config.admission_limit = 48;
        cert_queue_bound = 24;
        apply_lag_gap = 200;
        retry_budget = 6.0;
        retry_budget_per_s = 2.0;
        deadline_ms = 500.0;
      }
    else config
  in
  let config =
    if tiers then { config with Core.Config.read_tiers = true } else config
  in
  (* The cert-failover plan needs a certifier group that survives losing
     its primary while another member is partitioned: two standbys. *)
  let config =
    if plan = CertFailover && config.Core.Config.certifier_standbys < 2 then
      { config with Core.Config.certifier_standbys = 2 }
    else config
  in
  (* The control-plane plan needs the whole HA surface: two certifier
     standbys (an election quorum that survives one partitioned voter),
     a standby LB, and the voter lease — under the default
     [standby_ack_quorum = all] the partitioned-voter phase would
     otherwise stall commits for its entire window. *)
  let config =
    if plan = ControlPlane then
      {
        config with
        Core.Config.certifier_standbys = max 2 config.Core.Config.certifier_standbys;
        lb_standby = true;
        voter_lease_ms =
          (if config.Core.Config.voter_lease_ms <= 0.0 then 100.0
           else config.Core.Config.voter_lease_ms);
      }
    else config
  in
  let replicas = config.Core.Config.replicas in
  let cluster =
    Core.Cluster.create ~config
      ~faults:(build_plan plan ~seed ~duration_ms ~replicas)
      ~mode
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  let engine = Core.Cluster.engine cluster in
  (* The mixed schedule also exercises fail-stop: crash a replica during
     the faulty window and bring it back before the drain tail. *)
  if plan = Mixed && replicas > 1 then
    Sim.Process.spawn engine (fun () ->
        let victim = 2 mod replicas in
        Sim.Process.sleep engine (0.45 *. duration_ms);
        Core.Cluster.crash_replica cluster victim;
        (* Long enough (at the default 2s duration) for the detector to
           declare it dead before it returns. *)
        Sim.Process.sleep engine (0.25 *. duration_ms);
        Core.Cluster.recover_replica cluster victim);
  (* The cert-failover schedule: fail-stop the initial primary mid-load
     (it is also partitioned by the plan, so the kill is indistinguishable
     from a network cut until it returns) and revive it while the cut
     still holds — it rejoins as a standby only after the heal, via epoch
     adoption and log reconciliation. Promotion itself is automatic. *)
  if plan = CertFailover then
    Sim.Process.spawn engine (fun () ->
        Sim.Process.sleep engine (0.18 *. duration_ms);
        Core.Cluster.crash_certifier cluster;
        Sim.Process.sleep engine (0.24 *. duration_ms);
        Core.Cluster.revive_certifier_node cluster 0);
  (* The control-plane schedule (see the plan's phase comment in
     [build_plan]): crash the active LB while the certifier group is
     digesting a partitioned voter, then crash the certifier primary
     while the LB outage still holds — both successors must come up, by
     takeover and by election, with no released guarantee lost. *)
  if plan = ControlPlane then begin
    Sim.Process.spawn engine (fun () ->
        Sim.Process.sleep engine (0.25 *. duration_ms);
        let victim = Core.Cluster.lb_active_index cluster in
        Core.Cluster.crash_lb cluster victim;
        Sim.Process.sleep engine (0.3 *. duration_ms);
        Core.Cluster.recover_lb cluster victim);
    Sim.Process.spawn engine (fun () ->
        Sim.Process.sleep engine (0.45 *. duration_ms);
        Core.Cluster.crash_certifier cluster;
        Sim.Process.sleep engine (0.17 *. duration_ms);
        Core.Cluster.revive_certifier_node cluster 0)
  end;
  let workload =
    if tiers then Workload.Microbench.tiered_workload params
    else Workload.Microbench.workload params
  in
  (* The overload plan drives open-loop arrivals: [offered_tps] is the
     aggregate offered rate, split across [clients] generators, and it
     does not slow down when the cluster does — the defining property of
     the regime. Every other plan keeps the paper's closed-loop RTEs. *)
  if plan = Overload then
    Core.Client.open_loop_many cluster ~n:clients ~first_sid:0 ~rate_tps:offered_tps
      workload
  else Core.Client.spawn_many cluster ~n:clients ~first_sid:0 workload;
  Core.Cluster.run_for cluster ~warmup_ms:0.0 ~measure_ms:duration_ms;
  (* Drain: every fault window has healed; a live cluster must keep
     committing and every replica must catch up to where the certifier
     stood at the start of the drain. Either failing means it wedged. *)
  let metrics = Core.Cluster.metrics cluster in
  let committed_before = Core.Metrics.committed metrics in
  let cert_version_before = Core.Certifier.version (Core.Cluster.certifier cluster) in
  let progressed () = Core.Metrics.committed metrics > committed_before in
  let caught_up () =
    let up = ref true in
    for i = 0 to replicas - 1 do
      let r = Core.Cluster.replica cluster i in
      if (not (Core.Replica.is_crashed r)) && Core.Replica.v_local r < cert_version_before
      then up := false
    done;
    !up
  in
  (* Step the drain in slices so the health timeline can report how long
     the cluster took to become healthy again. Running to intermediate
     horizons executes exactly the same events in the same order as one
     run to the full horizon, so digests are unaffected. *)
  let drain_start = Sim.Engine.now engine in
  let drain_span = 0.5 *. duration_ms in
  let slices = 20 in
  let healthy_at = ref None in
  for slice = 1 to slices do
    Sim.Engine.run engine
      ~until:(drain_start +. (float_of_int slice /. float_of_int slices *. drain_span));
    if !healthy_at = None && progressed () && caught_up () then
      healthy_at := Some (Sim.Engine.now engine -. drain_start)
  done;
  let progressed = progressed () and caught_up = caught_up () in
  let wedge_drain_ms = Option.value !healthy_at ~default:drain_span in
  let records = Core.Cluster.records cluster in
  let violations =
    List.map
      (fun (name, check) ->
        let vs = check records in
        List.iteri
          (fun i v ->
            if i < 3 then
              Format.eprintf "[chaos %s/%s/%d] %s: %a@."
                (Core.Consistency.to_string mode)
                (plan_name plan) seed name Check.Runlog.pp_violation v)
          vs;
        (name, List.length vs))
      (checkers mode)
  in
  {
    mode;
    plan;
    seed;
    tiers;
    committed = Core.Metrics.committed metrics;
    aborted = Core.Metrics.aborted metrics;
    aborts_by_reason = Core.Metrics.aborts_by_reason metrics;
    violations;
    duplicate_commit_versions = count_duplicate_versions records;
    wedged = not (progressed && caught_up);
    wedge_drain_ms;
    digest = Check.Runlog.digest records;
    drops = Core.Metrics.fault_drops metrics;
    duplicates = Core.Metrics.fault_duplicates metrics;
    delays = Core.Metrics.fault_delays metrics;
    retransmits = Core.Metrics.retransmits metrics;
    suspects = Core.Metrics.suspects metrics;
    failovers = Core.Metrics.failovers metrics;
    reprovisions = Core.Cluster.reprovisions cluster;
    evictions = Core.Certifier.evictions (Core.Cluster.certifier cluster);
    promotions = Core.Certifier.promotions (Core.Cluster.certifier cluster);
    fenced =
      Core.Certifier.fenced (Core.Cluster.certifier cluster)
      + Array.fold_left
          (fun acc i -> acc + Core.Replica.fenced_refreshes (Core.Cluster.replica cluster i))
          0
          (Array.init replicas Fun.id)
      + Core.Cluster.lb_cert_fenced cluster;
    epoch = Core.Certifier.current_epoch (Core.Cluster.certifier cluster);
    divergent_log_entries = divergent_log_entries (Core.Cluster.certifier cluster);
    outage_max_ms = Core.Metrics.outage_max_ms metrics;
    elections = Core.Certifier.elections (Core.Cluster.certifier cluster);
    vote_denials = Core.Certifier.vote_denials (Core.Cluster.certifier cluster);
    lease_expiries = Core.Certifier.lease_expiries (Core.Cluster.certifier cluster);
    lb_takeovers = Core.Cluster.lb_takeovers cluster;
    lb_fenced = Core.Cluster.lb_fenced cluster;
    lb_epoch = Core.Cluster.lb_epoch cluster;
    shed = Core.Metrics.shed metrics;
    deadline_expired = Core.Metrics.deadline_expired metrics;
    retry_budget_exhausted = Core.Metrics.retry_budget_exhausted metrics;
    max_queue_depth = Core.Metrics.max_queue_depth metrics;
    zombie_commits =
      List.fold_left
        (fun acc r ->
          if Core.Cluster.was_shed cluster ~tid:r.Check.Runlog.tid then acc + 1
          else acc)
        0 records;
  }

let reproducible ?config ?params ?clients ?tiers ?protections ?offered_tps ~mode ~plan
    ~seed ~duration_ms () =
  let once () =
    soak ?config ?params ?clients ?tiers ?protections ?offered_tps ~mode ~plan ~seed
      ~duration_ms ()
  in
  let a = once () and b = once () in
  (a, String.equal a.digest b.digest)

let pp_result ppf r =
  let viol = List.fold_left (fun acc (_, n) -> acc + n) 0 r.violations in
  Format.fprintf ppf
    "%-7s %-13s seed=%-4d %s  committed=%-5d aborted=%-4d violations=%d%s%s%s  \
     drain=%.0fms  faults: drop=%d dup=%d delay=%d retx=%d suspects=%d failovers=%d \
     reprov=%d evict=%d%s%s%s  digest=%s"
    (Core.Consistency.to_string r.mode)
    (plan_name r.plan ^ if r.tiers then "+tiers" else "")
    r.seed
    (if ok r then "ok    " else "FAILED")
    r.committed r.aborted viol
    (if r.duplicate_commit_versions > 0 then
       Printf.sprintf " dup_versions=%d" r.duplicate_commit_versions
     else "")
    (if r.divergent_log_entries > 0 then
       Printf.sprintf " DIVERGENT=%d" r.divergent_log_entries
     else "")
    (if r.wedged then " WEDGED" else "")
    r.wedge_drain_ms
    r.drops r.duplicates r.delays r.retransmits r.suspects r.failovers r.reprovisions
    r.evictions
    (if r.epoch > 0 then
       Printf.sprintf " epoch=%d promotions=%d fenced=%d outage_max=%.0fms" r.epoch
         r.promotions r.fenced r.outage_max_ms
     else "")
    (if r.elections + r.lb_takeovers + r.lease_expiries > 0 then
       Printf.sprintf " elections=%d denials=%d leases=%d lb_takeovers=%d lb_fenced=%d"
         r.elections r.vote_denials r.lease_expiries r.lb_takeovers r.lb_fenced
     else "")
    (if r.shed + r.deadline_expired + r.retry_budget_exhausted + r.zombie_commits > 0
     then
       Printf.sprintf " shed=%d expired=%d budget_out=%d max_queue=%d zombies=%d"
         r.shed r.deadline_expired r.retry_budget_exhausted r.max_queue_depth
         r.zombie_commits
     else "")
    (String.sub r.digest 0 12)

(* Per-run health timeline artifact: what the soak injected and what the
   cluster did about it, one object per run — uploaded by CI when a soak
   fails so the failure is diagnosable without a local rerun. *)
let result_json r =
  let num n = Obs.Json.Num (float_of_int n) in
  let counts pairs =
    Obs.Json.Obj (List.map (fun (name, n) -> (name, num n)) pairs)
  in
  Obs.Json.Obj
    [
      ("mode", Obs.Json.Str (Core.Consistency.to_string r.mode));
      ("plan", Obs.Json.Str (plan_name r.plan));
      ("seed", num r.seed);
      ("tiers", Obs.Json.Bool r.tiers);
      ("ok", Obs.Json.Bool (ok r));
      ("committed", num r.committed);
      ("aborted", num r.aborted);
      ("aborts_by_reason", counts r.aborts_by_reason);
      ("violations", counts r.violations);
      ("duplicate_commit_versions", num r.duplicate_commit_versions);
      ("divergent_log_entries", num r.divergent_log_entries);
      ("wedged", Obs.Json.Bool r.wedged);
      ("wedge_drain_ms", Obs.Json.Num r.wedge_drain_ms);
      ( "faults",
        counts
          [
            ("drops", r.drops);
            ("duplicates", r.duplicates);
            ("delays", r.delays);
          ] );
      ("retransmits", num r.retransmits);
      ("suspects", num r.suspects);
      ("failovers", num r.failovers);
      ("reprovisions", num r.reprovisions);
      ("evictions", num r.evictions);
      ("promotions", num r.promotions);
      ("fenced", num r.fenced);
      ("epoch", num r.epoch);
      ("elections", num r.elections);
      ("vote_denials", num r.vote_denials);
      ("lease_expiries", num r.lease_expiries);
      ("lb_takeovers", num r.lb_takeovers);
      ("lb_fenced", num r.lb_fenced);
      ("lb_epoch", num r.lb_epoch);
      ("outage_max_ms", Obs.Json.Num r.outage_max_ms);
      ( "overload",
        counts
          [
            ("shed", r.shed);
            ("deadline_expired", r.deadline_expired);
            ("retry_budget_exhausted", r.retry_budget_exhausted);
            ("max_queue_depth", r.max_queue_depth);
            ("zombie_commits", r.zombie_commits);
          ] );
      ("digest", Obs.Json.Str r.digest);
    ]

let health_json results =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Num 1.0);
      ("runs", Obs.Json.Arr (List.map result_json results));
    ]

let write_health results ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string (health_json results));
      output_char oc '\n')

let soak_matrix ?config ?params ?clients ?tiers ?protections ?offered_tps
    ?(modes = Core.Consistency.all) ?(plans = [ Mixed ]) ?(jobs = 1) ~seeds ~duration_ms
    () =
  (* The matrix order (plans, then modes, then seeds) is part of the
     harness contract: results come back in it whatever [jobs] is, and
     per-run lines are logged after collection so the output stream is
     identical too. Each soak is one self-contained simulation, so runs
     only share the work queue. *)
  let combos =
    List.concat_map
      (fun plan ->
        List.concat_map (fun mode -> List.map (fun seed -> (plan, mode, seed)) seeds) modes)
      plans
  in
  let results =
    Runner.map_jobs ~jobs
      (fun (plan, mode, seed) ->
        soak ?config ?params ?clients ?tiers ?protections ?offered_tps ~mode ~plan ~seed
          ~duration_ms ())
      combos
  in
  List.iter (fun r -> Log.info (fun m -> m "%a" pp_result r)) results;
  results

(** Certification-index sweep: host wall-clock cost of the
    first-committer-wins conflict check, [Core.Config.Linear] log scan
    vs [Core.Config.Keyed] index probe, as the requesting snapshot falls
    {e staleness} versions behind the certifier.

    The two index choices are event-identical in simulation (the cost
    model charges per writeset row either way), so this experiment
    measures real CPU per {!Core.Certifier.check_conflict} call — the
    quantity the keyed index exists to flatten from O(staleness ×
    |writeset|) to O(|writeset|).

    See docs/PROTOCOL.md ("Certification index and watermark GC") and
    EXPERIMENTS.md for recorded results. *)

val build :
  ?config:Core.Config.t ->
  index:Core.Config.cert_index ->
  versions:int ->
  ws_rows:int ->
  unit ->
  Core.Certifier.t
(** A certifier whose log holds [versions] committed disjoint writesets
    of [ws_rows] rows each, driven through {!Core.Certifier.certify} in
    a private simulation. Shared with the Bechamel micro-benches in
    [bench/main.ml]. *)

val probe : versions:int -> ws_rows:int -> Storage.Writeset.t
(** A writeset disjoint from everything {!build} committed: the
    no-early-exit worst case for both index choices. *)

type point = { staleness : int; linear_ns : float; keyed_ns : float }

val speedup : point -> float
(** [linear_ns /. keyed_ns]. *)

val default_stalenesses : int list

val run :
  ?versions:int ->
  ?ws_rows:int ->
  ?stalenesses:int list ->
  ?jobs:int ->
  unit ->
  point list
(** Build both fixtures, cross-check that they agree on conflicting and
    clean probes at every staleness (differential guard), then time the
    clean probe. [jobs >= 2] builds the two fixtures on separate
    domains; the timing loops always run serially. *)

val render : point list -> string

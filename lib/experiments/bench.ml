type point = {
  mode : Core.Consistency.mode;
  committed : int;
  aborted : int;
  tps : float;
  p50_ms : float;
  p99_ms : float;
  cert_decisions_per_sec : float;
}

type run = {
  schema_version : int;
  seed : int;
  replicas : int;
  clients : int;
  warmup_ms : float;
  measure_ms : float;
  quick : bool;
  points : point list;
  sim_events : int;
  wall_s : float;
  sim_events_per_sec : float;
}

let schema_version = 1

(* The pinned client/update mix: 20 tables x 2,000 rows with 5 update
   types (25% updates — Fig. 4's interesting case, where the modes
   actually separate). Part of the baseline's identity: changing it
   requires a [schema_version] bump and a regenerated baseline. *)
let bench_params = { Workload.Microbench.tables = 20; rows = 2_000; update_types = 5 }

let run_mode ~config ~params ~clients ~warmup_ms ~measure_ms mode =
  let cluster =
    Core.Cluster.create ~config ~mode
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:clients ~first_sid:0
    (Workload.Microbench.workload params);
  let engine = Core.Cluster.engine cluster in
  let metrics = Core.Cluster.metrics cluster in
  (* [run_for] in two halves so the certifier decision counter (which is
     monotonic since creation) can be read at the measurement start. *)
  let start = Sim.Engine.now engine in
  Sim.Engine.run engine ~until:(start +. warmup_ms);
  Core.Metrics.reset_window metrics;
  Obs.Registry.reset (Core.Cluster.registry cluster);
  let decisions0 =
    let c, a = Core.Certifier.decisions (Core.Cluster.certifier cluster) in
    c + a
  in
  Sim.Engine.run engine ~until:(start +. warmup_ms +. measure_ms);
  let decisions1 =
    let c, a = Core.Certifier.decisions (Core.Cluster.certifier cluster) in
    c + a
  in
  let point =
    {
      mode;
      committed = Core.Metrics.committed metrics;
      aborted = Core.Metrics.aborted metrics;
      tps = Core.Metrics.throughput_tps metrics;
      p50_ms = Core.Metrics.percentile_response_ms metrics 50.0;
      p99_ms = Core.Metrics.percentile_response_ms metrics 99.0;
      cert_decisions_per_sec =
        float_of_int (decisions1 - decisions0) /. (measure_ms /. 1000.0);
    }
  in
  (point, Sim.Engine.executed engine)

let run ?(quick = false) ?(seed = Core.Config.default.Core.Config.seed) ?(jobs = 1) () =
  let warmup_ms, measure_ms = if quick then (200.0, 1_000.0) else (500.0, 3_000.0) in
  let replicas = 4 and clients = 40 in
  let config = { Core.Config.default with Core.Config.seed; replicas } in
  let params = bench_params in
  let wall0 = Unix.gettimeofday () in
  (* One self-contained simulation per mode; the deterministic ["bench"]
     object is identical whatever [jobs] is (points keep the
     [Consistency.all] order), only the ["wall"] numbers move. Committed
     baselines are generated at [jobs = 1]. *)
  let per_mode =
    Runner.map_jobs ~jobs
      (fun mode -> run_mode ~config ~params ~clients ~warmup_ms ~measure_ms mode)
      Core.Consistency.all
  in
  let points = List.map fst per_mode in
  let events = List.fold_left (fun acc (_, e) -> acc + e) 0 per_mode in
  let wall_s = Unix.gettimeofday () -. wall0 in
  {
    schema_version;
    seed;
    replicas;
    clients;
    warmup_ms;
    measure_ms;
    quick;
    points;
    sim_events = events;
    wall_s;
    sim_events_per_sec =
      (if wall_s > 0.0 then float_of_int events /. wall_s else 0.0);
  }

(* --- JSON ---------------------------------------------------------- *)

let point_json p =
  Obs.Json.Obj
    [
      ("mode", Obs.Json.Str (Core.Consistency.to_string p.mode));
      ("committed", Obs.Json.Num (float_of_int p.committed));
      ("aborted", Obs.Json.Num (float_of_int p.aborted));
      ("tps", Obs.Json.Num p.tps);
      ("p50_ms", Obs.Json.Num p.p50_ms);
      ("p99_ms", Obs.Json.Num p.p99_ms);
      ("cert_decisions_per_sec", Obs.Json.Num p.cert_decisions_per_sec);
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Num (float_of_int r.schema_version));
      ( "bench",
        Obs.Json.Obj
          [
            ("seed", Obs.Json.Num (float_of_int r.seed));
            ("replicas", Obs.Json.Num (float_of_int r.replicas));
            ("clients", Obs.Json.Num (float_of_int r.clients));
            ("warmup_ms", Obs.Json.Num r.warmup_ms);
            ("measure_ms", Obs.Json.Num r.measure_ms);
            ("quick", Obs.Json.Bool r.quick);
            ("points", Obs.Json.Arr (List.map point_json r.points));
          ] );
      ( "wall",
        Obs.Json.Obj
          [
            ("sim_events", Obs.Json.Num (float_of_int r.sim_events));
            ("wall_s", Obs.Json.Num r.wall_s);
            ("sim_events_per_sec", Obs.Json.Num r.sim_events_per_sec);
          ] );
    ]

let ( let* ) = Result.bind

let field name json =
  match Obs.Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let num name json =
  let* v = field name json in
  match Obs.Json.to_float v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "field %S is not a number" name)

let opt_num name json =
  match Obs.Json.member name json with
  | Some v -> Option.value (Obs.Json.to_float v) ~default:0.0
  | None -> 0.0

let point_of_json json =
  let* mode_v = field "mode" json in
  let* mode_s =
    match Obs.Json.to_str mode_v with
    | Some s -> Ok s
    | None -> Error "field \"mode\" is not a string"
  in
  let* mode = Core.Consistency.of_string mode_s in
  let* committed = num "committed" json in
  let* aborted = num "aborted" json in
  let* tps = num "tps" json in
  let* p50_ms = num "p50_ms" json in
  let* p99_ms = num "p99_ms" json in
  let* cert = num "cert_decisions_per_sec" json in
  Ok
    {
      mode;
      committed = int_of_float committed;
      aborted = int_of_float aborted;
      tps;
      p50_ms;
      p99_ms;
      cert_decisions_per_sec = cert;
    }

let of_json json =
  let* schema = num "schema_version" json in
  let* bench = field "bench" json in
  let* seed = num "seed" bench in
  let* replicas = num "replicas" bench in
  let* clients = num "clients" bench in
  let* warmup_ms = num "warmup_ms" bench in
  let* measure_ms = num "measure_ms" bench in
  let quick =
    match Obs.Json.member "quick" bench with Some (Obs.Json.Bool b) -> b | _ -> false
  in
  let* points_v = field "points" bench in
  let* points_l =
    match Obs.Json.to_list points_v with
    | Some l -> Ok l
    | None -> Error "field \"points\" is not an array"
  in
  let* points =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* p = point_of_json p in
        Ok (p :: acc))
      (Ok []) points_l
  in
  let wall = Option.value (Obs.Json.member "wall" json) ~default:(Obs.Json.Obj []) in
  Ok
    {
      schema_version = int_of_float schema;
      seed = int_of_float seed;
      replicas = int_of_float replicas;
      clients = int_of_float clients;
      warmup_ms;
      measure_ms;
      quick;
      points = List.rev points;
      sim_events = int_of_float (opt_num "sim_events" wall);
      wall_s = opt_num "wall_s" wall;
      sim_events_per_sec = opt_num "sim_events_per_sec" wall;
    }

let load ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
    let* json = Obs.Json.parse contents in
    of_json json

let save r ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string (to_json r));
      output_char oc '\n')

(* --- the regression gate ------------------------------------------- *)

let compare_runs ~baseline ~current ~threshold =
  let problems = ref [] in
  let flag fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if baseline.schema_version <> current.schema_version then
    flag "schema version %d != baseline %d" current.schema_version
      baseline.schema_version;
  if
    baseline.seed <> current.seed
    || baseline.replicas <> current.replicas
    || baseline.clients <> current.clients
    || baseline.warmup_ms <> current.warmup_ms
    || baseline.measure_ms <> current.measure_ms
  then
    flag
      "sweep parameters differ (seed/replicas/clients/warmup/measure: \
       %d/%d/%d/%.0f/%.0f vs baseline %d/%d/%d/%.0f/%.0f)"
      current.seed current.replicas current.clients current.warmup_ms
      current.measure_ms baseline.seed baseline.replicas baseline.clients
      baseline.warmup_ms baseline.measure_ms;
  List.iter
    (fun (b : point) ->
      let name = Core.Consistency.to_string b.mode in
      match List.find_opt (fun p -> p.mode = b.mode) current.points with
      | None -> flag "mode %s missing from current run" name
      | Some c ->
        (* lower-is-regression metrics *)
        let down metric bv cv =
          if bv > 0.0 && cv < bv *. (1.0 -. threshold) then
            flag "%s %s regressed %.1f%%: %.1f -> %.1f" name metric
              (100.0 *. (1.0 -. (cv /. bv)))
              bv cv
        in
        (* higher-is-regression metrics *)
        let up metric bv cv =
          if bv > 0.0 && cv > bv *. (1.0 +. threshold) then
            flag "%s %s regressed %.1f%%: %.2f -> %.2f" name metric
              (100.0 *. ((cv /. bv) -. 1.0))
              bv cv
        in
        down "TPS" b.tps c.tps;
        down "certifier decisions/sec" b.cert_decisions_per_sec
          c.cert_decisions_per_sec;
        up "p99 response" b.p99_ms c.p99_ms)
    baseline.points;
  List.rev !problems

let render r =
  let rows =
    List.map
      (fun p ->
        [
          Core.Consistency.to_string p.mode;
          string_of_int p.committed;
          string_of_int p.aborted;
          Report.fmt_f p.tps;
          Report.fmt_f p.p50_ms;
          Report.fmt_f p.p99_ms;
          Report.fmt_f p.cert_decisions_per_sec;
        ])
      r.points
  in
  Report.section
    (Printf.sprintf "bench sweep (seed %d, %d replicas, %d clients, %.0f+%.0fms)"
       r.seed r.replicas r.clients r.warmup_ms r.measure_ms)
  ^ "\n"
  ^ Report.table
      ~header:[ "mode"; "committed"; "aborted"; "tps"; "p50"; "p99"; "cert/s" ]
      rows
  ^ Printf.sprintf "wall: %d sim events in %.2fs (%.0f events/s)\n" r.sim_events
      r.wall_s r.sim_events_per_sec

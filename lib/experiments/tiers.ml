let log_src = Logs.Src.create "repro.tiers" ~doc:"Read-tier latency/staleness frontier"

module Log = (val Logs.src_log log_src)

type tier_row = {
  slug : string;
  committed : int;
  mean_ms : float;
  p99_ms : float;
  mean_staleness : float;
  max_staleness : float;
}

type point = {
  bound : int;
  tps : float;
  rows : tier_row list;
  violations : (string * int) list;
  ordered : bool;
  digest : string;
}

(* The mode-level battery plus every tier contract. Mode checkers only
   constrain Strong-class records, tier checkers only their own class, so
   running all of them on a mixed-tier log is exactly the right split. *)
let checkers =
  [
    ("first_committer_wins", Check.Runlog.first_committer_wins);
    ("strong_consistency", Check.Runlog.strong_consistency);
    ("tier_bounded_staleness", Check.Runlog.tier_bounded_staleness);
    ("tier_causal_ryw", Check.Runlog.tier_causal_ryw);
    ("tier_monotone_reads", Check.Runlog.tier_monotone_reads);
  ]

let default_params = { Workload.Microbench.tables = 8; rows = 200; update_types = 4 }

let mean_of t slug = Core.Metrics.tier_mean_response_ms t slug

let ordered_rows metrics =
  (* The headline claim: weaker tier, faster read. Compared on mean
     read response at equal load within one run. *)
  let m = mean_of metrics in
  m "eventual" < m "bounded"
  && m "bounded" < m "causal"
  && m "causal" < m "strong"

let run_point ~config ~params ~clients ~warmup_ms ~measure_ms ~bound =
  let tier = Core.Consistency.Bounded_staleness { versions = Some bound; ms = None } in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:clients ~first_sid:0
    (Workload.Microbench.tiered_workload ~bounded_tier:tier params);
  Core.Cluster.run_for cluster ~warmup_ms ~measure_ms;
  let metrics = Core.Cluster.metrics cluster in
  let rows =
    List.filter_map
      (fun slug ->
        let committed = Core.Metrics.tier_committed metrics slug in
        if committed = 0 then None
        else
          Some
            {
              slug;
              committed;
              mean_ms = Core.Metrics.tier_mean_response_ms metrics slug;
              p99_ms = Core.Metrics.tier_percentile_response_ms metrics slug 99.0;
              mean_staleness = Core.Metrics.tier_mean_staleness metrics slug;
              max_staleness = Core.Metrics.tier_max_staleness metrics slug;
            })
      Core.Consistency.all_tier_slugs
  in
  let records = Core.Cluster.records cluster in
  let violations =
    List.map
      (fun (name, check) ->
        let vs = check records in
        List.iteri
          (fun i v ->
            if i < 3 then
              Format.eprintf "[tiers k=%d] %s: %a@." bound name Check.Runlog.pp_violation
                v)
          vs;
        (name, List.length vs))
      checkers
  in
  {
    bound;
    tps = Core.Metrics.throughput_tps metrics;
    rows;
    violations;
    ordered = ordered_rows metrics;
    digest = Check.Runlog.digest records;
  }

let default_bounds = [ 0; 1; 2; 4; 8; 16; 32 ]

let run ?config ?(params = default_params) ?(clients = 24) ?(bounds = default_bounds)
    ?(seed = 42) ?(warmup_ms = 1_000.0) ?(measure_ms = 4_000.0) ?(jobs = 1) () =
  let config =
    match config with
    | Some c -> { c with Core.Config.seed; read_tiers = true; record_log = true }
    | None ->
      {
        Core.Config.default with
        Core.Config.seed;
        replicas = 4;
        read_tiers = true;
        record_log = true;
        (* Uniform replicas (no hiccup windows): with one replica
           periodically slowed, bounded reads filter it out by its lag
           and dodge its slow statements too, beating even eventual
           reads — a real effect, but it hides the pure cost of the
           floor wait the frontier is meant to show. Instead, apply is
           priced high enough that every replica runs a few versions
           behind the certifier, so each tier pays exactly its floor. *)
        hiccup_interval_ms = 0.0;
        ws_apply_base_ms = 0.1;
        ws_apply_row_ms = 0.04;
      }
  in
  (* Each frontier point is an independent cluster run; log after
     collection so the output order matches the bounds list whatever
     [jobs] is. *)
  let points =
    Runner.map_jobs ~jobs
      (fun bound -> run_point ~config ~params ~clients ~warmup_ms ~measure_ms ~bound)
      bounds
  in
  List.iter
    (fun p ->
      Log.info (fun m ->
          m "k=%-3d tps=%.0f ordered=%b violations=%d" p.bound p.tps p.ordered
            (List.fold_left (fun acc (_, n) -> acc + n) 0 p.violations)))
    points;
  points

let total_violations p = List.fold_left (fun acc (_, n) -> acc + n) 0 p.violations

let ok points =
  List.for_all (fun p -> total_violations p = 0) points
  (* The ordering claim needs a bound loose enough that bounded reads
     actually skip the version wait; tight bounds (k=0,1) legitimately
     price like strong reads. *)
  && List.exists (fun p -> p.bound >= 8 && p.ordered) points

let row_of p slug = List.find_opt (fun r -> r.slug = slug) p.rows

let render points =
  let header =
    "max_lag k"
    :: List.concat_map
         (fun slug -> [ slug ^ " ms"; slug ^ " p99" ])
         Core.Consistency.all_tier_slugs
    @ [ "bounded lag"; "eventual lag"; "TPS"; "ordered"; "viol" ]
  in
  let cell p slug f = match row_of p slug with Some r -> Report.fmt_f (f r) | None -> "-" in
  let rows =
    List.map
      (fun p ->
        (string_of_int p.bound
         :: List.concat_map
              (fun slug ->
                [ cell p slug (fun r -> r.mean_ms); cell p slug (fun r -> r.p99_ms) ])
              Core.Consistency.all_tier_slugs)
        @ [
            cell p "bounded" (fun r -> r.mean_staleness);
            cell p "eventual" (fun r -> r.mean_staleness);
            Report.fmt_f p.tps;
            (if p.ordered then "yes" else "no");
            string_of_int (total_violations p);
          ])
      points
  in
  let series =
    List.map
      (fun slug ->
        ( slug,
          List.filter_map
            (fun p ->
              Option.map (fun r -> (float_of_int p.bound, r.mean_ms)) (row_of p slug))
            points ))
      Core.Consistency.all_tier_slugs
  in
  Report.section
    "Read-tier frontier: read latency and served staleness vs declared max_lag"
  ^ "\n" ^ Report.table ~header rows ^ "\n"
  ^ Plot.chart ~series ~y_label:"read ms" ~x_label:"bounded-staleness max_lag (versions)"
      ()

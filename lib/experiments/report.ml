let fmt_f x =
  if Float.abs x >= 100.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 10.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.2f" x

let table ~header rows =
  let all = header :: rows in
  let columns = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value (List.nth_opt row c) ~default:"" in
           (* Right-align numbers, left-align the first column. *)
           if c = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
         widths)
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" ((render_row header :: rule :: List.map render_row rows) @ [ "" ])

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.sprintf "\n%s\n=== %s ===\n%s" bar title bar

(* ASCII sparkline: one level character per value, scaled to the series
   max (a flat series renders at the lowest level). *)
let spark_levels = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let top = List.fold_left Float.max 0.0 values in
    let levels = Array.length spark_levels in
    let glyph v =
      if top <= 0.0 || v <= 0.0 then spark_levels.(0)
      else
        let i = int_of_float (v /. top *. float_of_int (levels - 1)) in
        spark_levels.(Stdlib.max 1 (Stdlib.min (levels - 1) i))
    in
    String.init (List.length values) (fun i -> glyph (List.nth values i))

(* --- the run-health report -----------------------------------------

   Rendered from a closed Obs.Timeseries: one row per window with the
   headline throughput / latency / consistency columns, sparklines for
   the load-bearing series, and the whole-run latency distribution from
   the merged histograms. *)

let health ?(title = "run health") (ts : Obs.Timeseries.t) =
  let windows = Obs.Timeseries.windows ts in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (section title);
  Buffer.add_char buf '\n';
  if windows = [] then begin
    Buffer.add_string buf "(no windows recorded)\n";
    Buffer.contents buf
  end
  else begin
    let count w name =
      Option.value (List.assoc_opt name w.Obs.Timeseries.counters) ~default:0
    in
    let gauge w name =
      Option.value (Obs.Timeseries.gauge_value w name) ~default:0.0
    in
    let dist_p w name pick =
      match Obs.Timeseries.summary_of w name with
      | None -> 0.0
      | Some s -> pick s
    in
    let rows =
      List.map
        (fun w ->
          let commits = count w "txn.commit" + count w "txn.commit_ro" in
          [
            Printf.sprintf "%.0f-%.0f" w.Obs.Timeseries.start_ms
              w.Obs.Timeseries.end_ms;
            string_of_int commits;
            fmt_f (Obs.Timeseries.rate_per_sec w "txn.commit"
                  +. Obs.Timeseries.rate_per_sec w "txn.commit_ro");
            string_of_int (count w "txn.abort");
            fmt_f (dist_p w "response" (fun s -> s.Obs.Timeseries.p50));
            fmt_f (dist_p w "response" (fun s -> s.Obs.Timeseries.p95));
            fmt_f (dist_p w "response" (fun s -> s.Obs.Timeseries.p99));
            fmt_f (Obs.Timeseries.rate_per_sec w "certifier.decisions");
            string_of_int (count w "net.retransmits");
            fmt_f (gauge w "replicas.lag.max");
            fmt_f (gauge w "certifier.log_size");
            fmt_f (gauge w "certifier.log_base");
            fmt_f (gauge w "lb.session_floors");
            fmt_f (gauge w "certifier.epoch");
          ])
        windows
    in
    Buffer.add_string buf
      (table
         ~header:
           [
             "window(ms)"; "commits"; "tps"; "aborts"; "p50"; "p95"; "p99";
             "cert/s"; "retx"; "lag.max"; "log"; "log.base"; "floors"; "epoch";
           ]
         rows);
    let spark name read =
      let values = List.map read windows in
      if List.exists (fun v -> v > 0.0) values then
        Buffer.add_string buf
          (Printf.sprintf "%-12s |%s| peak %s\n" name (sparkline values)
             (fmt_f (List.fold_left Float.max 0.0 values)))
    in
    Buffer.add_char buf '\n';
    spark "tps" (fun w ->
        Obs.Timeseries.rate_per_sec w "txn.commit"
        +. Obs.Timeseries.rate_per_sec w "txn.commit_ro");
    spark "p99" (fun w -> dist_p w "response" (fun s -> s.Obs.Timeseries.p99));
    spark "lag.max" (fun w -> gauge w "replicas.lag.max");
    spark "aborts" (fun w -> float_of_int (count w "txn.abort"));
    spark "retransmits" (fun w -> float_of_int (count w "net.retransmits"));
    spark "faults" (fun w ->
        float_of_int
          (count w "fault.drops" + count w "fault.duplicates"
         + count w "fault.delays"));
    (match Obs.Timeseries.merged ts "response" with
    | Some h when not (Util.Histogram.Log.is_empty h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "\nwhole-run response: n=%d p50=%s p95=%s p99=%s max=%s (ms)\n"
           (Util.Histogram.Log.count h)
           (fmt_f (Util.Histogram.Log.percentile h 50.0))
           (fmt_f (Util.Histogram.Log.percentile h 95.0))
           (fmt_f (Util.Histogram.Log.percentile h 99.0))
           (fmt_f (Util.Histogram.Log.max_value h)))
    | Some _ | None -> ());
    Buffer.contents buf
  end

(** Batching sweep: the fig-3-style micro-benchmark run twice per point —
    once with the unbatched pipeline ([cert_batch = 1],
    [apply_parallelism = 1]) and once with {!Core.Config.batched}
    (group certification + conflict-aware parallel refresh apply) —
    reporting the throughput gain per consistency configuration as the
    update ratio sweeps 0–50%.

    See docs/TUNING.md for the knobs and EXPERIMENTS.md for recorded
    results. *)

type cell = { baseline : Runner.summary; batched : Runner.summary }

type point = {
  update_types : int;  (** of 40 transaction types *)
  cells : (Core.Consistency.mode * cell) list;
}

val speedup_pct : cell -> float
(** Batched over baseline throughput, as a percentage gain. *)

val default_modes : Core.Consistency.mode list
(** The three lazy configurations plus eager. *)

val run :
  ?config:Core.Config.t ->
  ?batched:(Core.Config.t -> Core.Config.t) ->
  ?params:Workload.Microbench.params ->
  ?clients:int ->
  ?modes:Core.Consistency.mode list ->
  ?update_points:int list ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  unit ->
  point list

val render : point list -> string

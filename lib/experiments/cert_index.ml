(* Host wall-clock sweep of the certification conflict check: Linear log
   scan vs Keyed index probe as the requesting snapshot falls behind.

   Unlike the rest of this library, this experiment measures *host* CPU,
   not simulated time: the conflict check consumes no virtual time (the
   cost model charges certify_row_ms per writeset row regardless of the
   data structure behind the decision), so the two index choices are
   event-identical in the simulator and differ only in how much real CPU
   each certification burns. That real cost is what bounds how fast the
   simulator itself — and a native implementation of the certifier —
   can decide. *)

let ws_of ~first_key ~rows =
  Storage.Writeset.of_entries
    (List.init rows (fun i ->
         {
           Storage.Writeset.ws_table = "bench";
           ws_key = [| Storage.Value.Int (first_key + i) |];
           ws_op = Storage.Writeset.Put [| Storage.Value.Int 0 |];
         }))

let build ?(config = Core.Config.default) ~index ~versions ~ws_rows () =
  let cfg = { config with Core.Config.cert_index = index; replicas = 1 } in
  let engine = Sim.Engine.create () in
  let rng = Util.Rng.create cfg.Core.Config.seed in
  let network =
    Sim.Network.create engine ~rng:(Util.Rng.split rng) ~base_ms:cfg.Core.Config.net_base_ms
      ~jitter_ms:cfg.Core.Config.net_jitter_ms
      ~bandwidth_mbps:cfg.Core.Config.net_bandwidth_mbps
  in
  let certifier =
    Core.Certifier.create engine cfg ~rng:(Util.Rng.split rng) ~network
      ~mode:Core.Consistency.Coarse
  in
  (* Commit [versions] disjoint writesets through the real protocol
     entry point; disjoint keys with an up-to-date snapshot never
     conflict, so every request lands and the log covers (0, versions]. *)
  Sim.Process.spawn engine (fun () ->
      for i = 0 to versions - 1 do
        let ws = ws_of ~first_key:(i * ws_rows) ~rows:ws_rows in
        match Core.Certifier.certify certifier ~origin:0 ~snapshot:i ~ws with
        | Core.Certifier.Commit _ -> ()
        | Core.Certifier.Abort | Core.Certifier.Overloaded
        | Core.Certifier.Expired ->
          assert false
      done);
  Sim.Engine.run engine;
  assert (Core.Certifier.version certifier = versions);
  certifier

let probe ~versions ~ws_rows =
  (* Keys no committed writeset ever touched: the worst case for the
     linear scan (no early exit — every log entry in the window is
     inspected) and for the index probe (every key misses). *)
  ws_of ~first_key:(versions * ws_rows) ~rows:ws_rows

type point = { staleness : int; linear_ns : float; keyed_ns : float }

let speedup p = if p.keyed_ns <= 0.0 then 0.0 else p.linear_ns /. p.keyed_ns

(* Self-calibrating timer: grow the batch until the sample is long
   enough to trust the clock, then report per-call nanoseconds. *)
let time_ns f =
  let rec go n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.05 && n < 4_000_000 then go (n * 4) else dt *. 1e9 /. float_of_int n
  in
  go 1

let default_stalenesses = [ 1; 10; 100; 1_000; 10_000 ]

let run ?(versions = 10_000) ?(ws_rows = 4) ?(stalenesses = default_stalenesses)
    ?(jobs = 1) () =
  (* The two fixtures (a 10k-version commit history each) build on
     separate domains under [jobs >= 2]; the timing loops below stay
     serial — concurrent timing would contend for cores and corrupt the
     per-call nanosecond numbers. *)
  let linear, keyed =
    match
      Runner.map_jobs ~jobs
        (fun index -> build ~index ~versions ~ws_rows ())
        [ Core.Config.Linear; Core.Config.Keyed ]
    with
    | [ l; k ] -> (l, k)
    | _ -> assert false
  in
  let clean = probe ~versions ~ws_rows in
  (* Differential sanity before timing: both certifiers must agree on a
     conflicting and a non-conflicting probe at every staleness. *)
  List.iter
    (fun s ->
      let snapshot = versions - s in
      let dirty = ws_of ~first_key:((versions - 1) * ws_rows) ~rows:ws_rows in
      assert (
        Core.Certifier.check_conflict linear ~snapshot ~ws:clean
        = Core.Certifier.check_conflict keyed ~snapshot ~ws:clean);
      assert (
        Core.Certifier.check_conflict linear ~snapshot ~ws:dirty
        = Core.Certifier.check_conflict keyed ~snapshot ~ws:dirty))
    stalenesses;
  List.map
    (fun s ->
      let snapshot = versions - s in
      {
        staleness = s;
        linear_ns =
          time_ns (fun () -> Core.Certifier.check_conflict linear ~snapshot ~ws:clean);
        keyed_ns =
          time_ns (fun () -> Core.Certifier.check_conflict keyed ~snapshot ~ws:clean);
      })
    stalenesses

let render points =
  let header = [ "staleness"; "linear ns"; "keyed ns"; "speedup" ] in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.staleness;
          Printf.sprintf "%.0f" p.linear_ns;
          Printf.sprintf "%.0f" p.keyed_ns;
          Printf.sprintf "%.1fx" (speedup p);
        ])
      points
  in
  let series =
    [
      ("linear", List.map (fun p -> (float_of_int p.staleness, p.linear_ns)) points);
      ("keyed", List.map (fun p -> (float_of_int p.staleness, p.keyed_ns)) points);
    ]
  in
  Report.section
    "Certification index: conflict-check host cost vs snapshot staleness (4-row \
     writesets, 10k-version log)"
  ^ "\n" ^ Report.table ~header rows ^ "\n"
  ^ Plot.chart ~series ~y_label:"ns per check" ~x_label:"versions behind" ()

(** Latency-vs-staleness frontier for mixed-consistency read tiers
    (docs/CONSISTENCY.md).

    One cluster per sweep point: coarse-grained write mode,
    [read_tiers = true], and a mixed workload whose reads split evenly
    across strong / bounded / causal / eventual. The sweep varies the
    [max_lag] (in versions) that bounded reads declare and reports, per
    tier, mean and p99 read response plus served staleness, then runs
    the full checker battery (mode-level on [Strong]-class records, the
    three tier contracts on their own classes) over the run log. *)

type tier_row = {
  slug : string;  (** {!Core.Consistency.tier_slug} *)
  committed : int;
  mean_ms : float;
  p99_ms : float;
  mean_staleness : float;  (** versions behind [V_system] at commit *)
  max_staleness : float;
}

type point = {
  bound : int;  (** bounded-staleness [max_lag] (versions) at this point *)
  tps : float;
  rows : tier_row list;  (** decreasing-strength tier order; empty tiers omitted *)
  violations : (string * int) list;
  ordered : bool;
      (** eventual < bounded < causal < strong mean read response held *)
  digest : string;  (** runlog digest — equal across reruns at one seed *)
}

val default_bounds : int list

val run :
  ?config:Core.Config.t ->
  ?params:Workload.Microbench.params ->
  ?clients:int ->
  ?bounds:int list ->
  ?seed:int ->
  ?warmup_ms:float ->
  ?measure_ms:float ->
  ?jobs:int ->
  unit ->
  point list
(** [read_tiers] and [record_log] are forced on in whatever config is
    supplied. Defaults: 4 replicas, 24 clients, 8 tables with 4 update
    types (a keep-up regime with frequent per-session writes, so causal
    floors stay current and the tier ordering is observable). [jobs]
    (default 1) runs the frontier points on that many domains; each
    point is an independent simulation, so the result list is identical
    whatever [jobs] is. *)

val total_violations : point -> int

val ok : point list -> bool
(** No contract violations anywhere, and the latency ordering
    eventual < bounded < causal < strong holds at some bound [>= 8]
    (tight bounds legitimately price like strong reads). *)

val render : point list -> string
(** Table plus latency-vs-bound chart. *)

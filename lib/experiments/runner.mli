(** Shared experiment driver: build a cluster, attach closed-loop
    clients, run warm-up + measurement, and summarize. *)

val map_jobs : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_jobs ~jobs f items] is [List.map f items] computed by [jobs]
    domains pulling items off a shared queue; results keep their item's
    position. Each call to [f] must be self-contained (simulations are:
    engine, RNG, and cluster all live inside the run) — [f] runs off the
    main domain when [jobs > 1]. [jobs <= 1] (the default) is exactly
    [List.map f items] on the calling domain. *)

type summary = {
  mode : Core.Consistency.mode;
  replicas : int;
  clients : int;
  tps : float;
  response_ms : float;
  stage_ms : float array;  (** mean per {!Core.Metrics.stage}, all txns *)
  stage_update_ms : float array;  (** mean per stage, update txns *)
  sync_delay_ms : float;  (** version (all) + global (updates) *)
  abort_rate : float;
  committed : int;
}

val stage_of_metrics : Core.Metrics.t -> summary_of:Core.Cluster.t -> summary
(** Snapshot a cluster's current metrics window into a summary. *)

val run_micro :
  ?config:Core.Config.t ->
  mode:Core.Consistency.mode ->
  params:Workload.Microbench.params ->
  clients:int ->
  warmup_ms:float ->
  measure_ms:float ->
  unit ->
  summary

val run_tpcw :
  ?config:Core.Config.t ->
  mode:Core.Consistency.mode ->
  params:Workload.Tpcw.params ->
  mix:Workload.Tpcw.mix ->
  clients:int ->
  warmup_ms:float ->
  measure_ms:float ->
  unit ->
  summary

(** {2 Multi-run statistics}

    The paper reports the average of 10 independent runs with deviation
    below 5%; {!replicate} provides the same methodology: run an
    experiment at [runs] different seeds and aggregate. *)

type aggregate = {
  runs : int;
  mean : summary;  (** throughput/response/stages averaged across runs *)
  tps_stddev : float;
  response_stddev_ms : float;
  tps_rel_dev : float;  (** stddev / mean, the paper's "deviation" *)
}

val replicate : runs:int -> base_seed:int -> (seed:int -> summary) -> aggregate
(** [replicate ~runs ~base_seed f] calls [f ~seed] with seeds
    [base_seed, base_seed+1, ...]. Requires [runs >= 1]. *)

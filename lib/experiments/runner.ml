(* [map_jobs ~jobs f items] = [List.map f items], computed by [jobs]
   domains. Each simulation is single-threaded and self-contained (its
   engine, RNG chain, and cluster state are all built inside [f]), so
   runs parallelize without sharing anything but the work queue; results
   land in their item's slot, preserving order. [jobs <= 1] takes the
   exact serial path — same closure, same order — so the parallel driver
   can never perturb a serial run's behavior. *)
let map_jobs ?(jobs = 1) f items =
  if jobs <= 1 then List.map f items
  else begin
    let arr = Array.of_list items in
    let n = Array.length arr in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (f arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned = min (jobs - 1) (max 0 (n - 1)) in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    Fun.protect
      ~finally:(fun () -> List.iter Domain.join domains)
      (fun () -> worker ());
    Array.to_list
      (Array.map (function Some x -> x | None -> assert false) out)
  end

type summary = {
  mode : Core.Consistency.mode;
  replicas : int;
  clients : int;
  tps : float;
  response_ms : float;
  stage_ms : float array;
  stage_update_ms : float array;
  sync_delay_ms : float;
  abort_rate : float;
  committed : int;
}

let stage_of_metrics metrics ~summary_of:cluster =
  let stage_ms =
    Array.of_list
      (List.map (fun s -> Core.Metrics.mean_stage_ms metrics s) Core.Metrics.stages)
  in
  let stage_update_ms =
    Array.of_list
      (List.map (fun s -> Core.Metrics.mean_stage_update_ms metrics s) Core.Metrics.stages)
  in
  {
    mode = Core.Cluster.mode cluster;
    replicas = (Core.Cluster.config cluster).Core.Config.replicas;
    clients = 0;
    tps = Core.Metrics.throughput_tps metrics;
    response_ms = Core.Metrics.mean_response_ms metrics;
    stage_ms;
    stage_update_ms;
    sync_delay_ms = Core.Metrics.sync_delay_ms metrics;
    abort_rate = Core.Metrics.abort_rate metrics;
    committed = Core.Metrics.committed metrics;
  }

let run_micro ?(config = Core.Config.default) ~mode ~params ~clients ~warmup_ms ~measure_ms
    () =
  let cluster =
    Core.Cluster.create ~config ~mode
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:clients ~first_sid:0
    (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms ~measure_ms;
  { (stage_of_metrics (Core.Cluster.metrics cluster) ~summary_of:cluster) with clients }

type aggregate = {
  runs : int;
  mean : summary;
  tps_stddev : float;
  response_stddev_ms : float;
  tps_rel_dev : float;
}

let replicate ~runs ~base_seed f =
  assert (runs >= 1);
  let summaries = List.init runs (fun i -> f ~seed:(base_seed + i)) in
  let n = float_of_int runs in
  let mean_of get = List.fold_left (fun acc s -> acc +. get s) 0.0 summaries /. n in
  let stddev_of get =
    if runs < 2 then 0.0
    else begin
      let m = mean_of get in
      sqrt
        (List.fold_left (fun acc s -> acc +. ((get s -. m) ** 2.0)) 0.0 summaries
        /. float_of_int (runs - 1))
    end
  in
  let first = List.hd summaries in
  let mean_stage i = mean_of (fun s -> s.stage_ms.(i)) in
  let mean_stage_u i = mean_of (fun s -> s.stage_update_ms.(i)) in
  let mean =
    {
      first with
      tps = mean_of (fun s -> s.tps);
      response_ms = mean_of (fun s -> s.response_ms);
      stage_ms = Array.init Core.Metrics.stage_count mean_stage;
      stage_update_ms = Array.init Core.Metrics.stage_count mean_stage_u;
      sync_delay_ms = mean_of (fun s -> s.sync_delay_ms);
      abort_rate = mean_of (fun s -> s.abort_rate);
      committed =
        int_of_float (mean_of (fun s -> float_of_int s.committed));
    }
  in
  let tps_stddev = stddev_of (fun s -> s.tps) in
  {
    runs;
    mean;
    tps_stddev;
    response_stddev_ms = stddev_of (fun s -> s.response_ms);
    tps_rel_dev = (if mean.tps > 0.0 then tps_stddev /. mean.tps else 0.0);
  }

let run_tpcw ?(config = Core.Config.tpcw) ~mode ~params ~mix ~clients ~warmup_ms
    ~measure_ms () =
  let cluster =
    Core.Cluster.create ~config ~mode ~schemas:Workload.Tpcw.schemas
      ~load:(Workload.Tpcw.load params)
      ()
  in
  for sid = 0 to clients - 1 do
    Core.Client.spawn cluster ~sid ~rng:(Core.Cluster.rng cluster)
      (Workload.Tpcw.workload params mix ~sid)
  done;
  Core.Cluster.run_for cluster ~warmup_ms ~measure_ms;
  { (stage_of_metrics (Core.Cluster.metrics cluster) ~summary_of:cluster) with clients }

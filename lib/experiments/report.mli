(** ASCII table rendering for experiment output. *)

val table : header:string list -> string list list -> string
(** Render rows under a header with aligned columns. *)

val fmt_f : float -> string
(** Compact float: "123", "12.3", "1.23". *)

val section : string -> string
(** A titled separator line. *)

val sparkline : float list -> string
(** One ASCII level character per value, scaled to the series maximum;
    [""] for an empty series. *)

val health : ?title:string -> Obs.Timeseries.t -> string
(** Render a run-health report from a (stopped and flushed) observatory
    time series: one table row per window (throughput, aborts, response
    percentiles, certifier decision rate, retransmissions, staleness and
    certifier-log gauges), sparklines for the headline series, and the
    whole-run response distribution from the merged histograms. *)

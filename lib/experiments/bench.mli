(** The committed bench baseline and its regression gate.

    [repro bench] runs a pinned-seed sweep — the paper's four
    consistency configurations over one microbenchmark client/update
    mix — and emits a JSON document (checked into the repo as
    [BENCH_<pr>.json]) with the headline metrics per configuration:
    committed TPS, p50/p99 response, certifier decisions per second.
    The simulation being deterministic, the ["bench"] object of two
    runs with the same seed is byte-identical; wall-clock throughput
    (simulated events per wall second) lives in a separate ["wall"]
    object that is excluded from comparisons.

    [repro bench --check FILE] re-runs the sweep and diffs it against
    the committed baseline, failing on any headline regression beyond
    the threshold (default 15%) — the CI gate. *)

type point = {
  mode : Core.Consistency.mode;
  committed : int;
  aborted : int;
  tps : float;
  p50_ms : float;
  p99_ms : float;
  cert_decisions_per_sec : float;
}

type run = {
  schema_version : int;
  seed : int;
  replicas : int;
  clients : int;
  warmup_ms : float;
  measure_ms : float;
  quick : bool;
  points : point list;
  (* wall-clock (non-deterministic; excluded from comparison) *)
  sim_events : int;
  wall_s : float;
  sim_events_per_sec : float;
}

val schema_version : int

val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> run
(** Execute the sweep: four consistency modes, 4 replicas, 40 clients
    on a pinned microbenchmark mix (20 tables x 2,000 rows, 25% update
    transaction types), warmup 500 ms / measure 3000 ms of virtual time
    ([~quick:true]: 200 / 1000). The mix is part of the baseline's
    identity: changing it requires a {!schema_version} bump and a
    regenerated baseline. [jobs] (default 1) runs the four mode
    simulations on that many domains; the deterministic ["bench"]
    object is unaffected, but the ["wall"] numbers then measure the
    parallel driver — committed baselines are generated at [jobs=1]. *)

val to_json : run -> Obs.Json.t
(** [{"schema_version", "bench": {...deterministic...}, "wall": {...}}];
    field order is fixed, so same-seed runs serialize byte-identically
    except under ["wall"]. *)

val of_json : Obs.Json.t -> (run, string) result
(** Inverse of {!to_json}; missing ["wall"] fields parse as 0. *)

val load : file:string -> (run, string) result

val save : run -> file:string -> unit

val compare_runs : baseline:run -> current:run -> threshold:float -> string list
(** Headline regressions of [current] against [baseline], one message
    per finding: TPS or certifier decision rate lower, or p99 higher,
    by more than [threshold] (a fraction, e.g. [0.15]); also flags
    sweep-shape mismatches (schema version, parameters, missing
    modes). Empty means the gate passes. *)

val render : run -> string
(** ASCII table of the sweep, one row per configuration. *)

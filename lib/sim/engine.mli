(** Discrete-event simulation core: a virtual clock and an event queue.

    Time is a [float] in {e milliseconds} of virtual time. Events
    scheduled for the same instant fire in scheduling order, making runs
    deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time in ms. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays
    are clamped to 0. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at [time] (clamped to [now t]). *)

val pending : t -> int
(** Number of queued events. *)

val executed : t -> int
(** Total events executed since creation (monotonic) — the denominator
    of the bench harness's simulated-events-per-wall-second metric. *)

val run : ?until:float -> t -> unit
(** Execute events in time order until the queue is empty, or until
    virtual time would exceed [until]. On return with [until], [now t]
    equals [until]. *)

val step : t -> bool
(** Execute the single next event; [false] if the queue was empty. *)

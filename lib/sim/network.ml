type t = {
  engine : Engine.t;
  rng : Util.Rng.t;
  base_ms : float;
  jitter_ms : float;
  bandwidth_mbps : float;
  rto_ms : float;
  mutable faults : Faults.t option;
  mutable messages : int;
  mutable bytes : int;
  mutable retransmits : int;
  (* per-(src, dst) wire-copy counters; untagged endpoints appear as
     [unspecified]. Keyed by a packed endpoint pair ([link_key]) so the
     per-message lookup hashes one int instead of allocating and
     polymorphically hashing a tuple. *)
  links : (int ref * int ref) Util.Tables.Itbl.t;
}

let create ?(rto_ms = 5.0) engine ~rng ~base_ms ~jitter_ms ~bandwidth_mbps =
  {
    engine;
    rng;
    base_ms;
    jitter_ms;
    bandwidth_mbps;
    rto_ms;
    faults = None;
    messages = 0;
    bytes = 0;
    retransmits = 0;
    links = Util.Tables.Itbl.create 64;
  }

let set_faults t faults = t.faults <- Some faults
let faults t = t.faults

let latency t ~size_bytes =
  let jitter = if t.jitter_ms > 0.0 then Util.Rng.float t.rng t.jitter_ms else 0.0 in
  let transmission =
    if t.bandwidth_mbps > 0.0 then
      (* bits / (Mbit/s) = microseconds; convert to ms. *)
      float_of_int (size_bytes * 8) /. (t.bandwidth_mbps *. 1000.0)
    else 0.0
  in
  t.base_ms +. jitter +. transmission

let unspecified = min_int

(* Endpoint ids are small (|id| < 2^30): replica indices from 0 and a
   handful of negative infrastructure nodes (certifier, standbys, LB,
   client). Taking the low 31 bits maps non-negatives to [0, 2^30) and
   negatives to (2^30, 2^31) injectively; [unspecified] gets the gap
   value 2^30 between the two ranges. Pack the pair into one int. *)
let[@inline] norm_endpoint i =
  if i = unspecified then 0x4000_0000 else i land 0x7fff_ffff

let[@inline] link_key ~src ~dst = (norm_endpoint src lsl 31) lor norm_endpoint dst

let record ?(src = unspecified) ?(dst = unspecified) t size_bytes =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + size_bytes;
  let key = link_key ~src ~dst in
  let msgs, bytes =
    match Util.Tables.Itbl.find_opt t.links key with
    | Some cell -> cell
    | None ->
      let cell = (ref 0, ref 0) in
      Util.Tables.Itbl.add t.links key cell;
      cell
  in
  incr msgs;
  bytes := !bytes + size_bytes

let link_messages t ~src ~dst =
  match Util.Tables.Itbl.find_opt t.links (link_key ~src ~dst) with
  | Some (m, _) -> !m
  | None -> 0

let link_bytes t ~src ~dst =
  match Util.Tables.Itbl.find_opt t.links (link_key ~src ~dst) with
  | Some (_, b) -> !b
  | None -> 0

let judge t ~src ~dst =
  match t.faults with None -> Faults.Deliver | Some f -> Faults.judge f ~src ~dst

let send ?(src = unspecified) ?(dst = unspecified) t ~size_bytes callback =
  match judge t ~src ~dst with
  | Faults.Deliver ->
      record ~src ~dst t size_bytes;
      Engine.schedule t.engine ~delay:(latency t ~size_bytes) callback
  | Faults.Drop _ ->
      (* The message went out on the wire (count it) but never arrives. *)
      record ~src ~dst t size_bytes
  | Faults.Duplicate ->
      record ~src ~dst t size_bytes;
      record ~src ~dst t size_bytes;
      Engine.schedule t.engine ~delay:(latency t ~size_bytes) callback;
      Engine.schedule t.engine ~delay:(latency t ~size_bytes) callback
  | Faults.Delay extra_ms ->
      record ~src ~dst t size_bytes;
      Engine.schedule t.engine ~delay:(latency t ~size_bytes +. extra_ms) callback

(* One round trip of a stop-and-wait exchange: returns [true] when the
   message got through, [false] when it was lost and the caller waited out
   the retransmission timer. *)
let attempt ?rto_ms t ~src ~dst ~size_bytes =
  let rto_ms = match rto_ms with Some r -> r | None -> t.rto_ms in
  match judge t ~src ~dst with
  | Faults.Deliver ->
      record ~src ~dst t size_bytes;
      Process.sleep t.engine (latency t ~size_bytes);
      true
  | Faults.Drop _ ->
      record ~src ~dst t size_bytes;
      Process.sleep t.engine rto_ms;
      false
  | Faults.Duplicate ->
      (* Extra copy on the wire; the receiver dedups, so the caller just
         pays for the first arrival. *)
      record ~src ~dst t size_bytes;
      record ~src ~dst t size_bytes;
      Process.sleep t.engine (latency t ~size_bytes);
      true
  | Faults.Delay extra_ms ->
      record ~src ~dst t size_bytes;
      Process.sleep t.engine (latency t ~size_bytes +. extra_ms);
      true

let transfer ?(src = unspecified) ?(dst = unspecified) ?rto_ms t ~size_bytes =
  let rec loop () =
    if not (attempt ?rto_ms t ~src ~dst ~size_bytes) then (
      t.retransmits <- t.retransmits + 1;
      loop ())
  in
  loop ()

let transfer_bounded ?(src = unspecified) ?(dst = unspecified) ?rto_ms t ~size_bytes
    ~max_tries =
  let rec loop tries =
    if attempt ?rto_ms t ~src ~dst ~size_bytes then Ok ()
    else if tries + 1 >= max_tries then Error `Timeout
    else (
      t.retransmits <- t.retransmits + 1;
      loop (tries + 1))
  in
  if max_tries <= 0 then Error `Timeout else loop 0

let messages_sent t = t.messages

let bytes_sent t = t.bytes

let retransmits t = t.retransmits

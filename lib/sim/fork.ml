let join engine bodies =
  match bodies with
  | [] -> ()
  | [ body ] -> body ()  (* no join needed; run on the caller's stack *)
  | bodies ->
    let remaining = ref (List.length bodies) in
    let done_ = Ivar.create engine in
    List.iter
      (fun body ->
        Process.spawn engine (fun () ->
            body ();
            decr remaining;
            if !remaining = 0 then Ivar.fill done_ ()))
      bodies;
    Ivar.read done_

(** Deterministic fault injection for the simulated network and hosts.

    A fault plan is consulted by {!Network.send}/{!Network.transfer} on
    every message: it can drop the message, duplicate it, or add a delay
    spike, per link ([src], [dst] node ids) or globally; scripted
    partitions cut whole link groups for a scheduled window; per-node
    slowdown windows model gray (slow-but-alive) hosts.

    Determinism: the plan draws from its {e own} {!Util.Rng.t}, never
    from the network's, and draws only when the relevant probability is
    non-zero — so a plan whose every spec is {!clean} consumes no random
    numbers and a run with it attached is bit-identical to a run without
    one. Same seed + same plan ⇒ same fault schedule.

    Node ids are plain ints chosen by the embedding (the cluster uses
    replica indices ≥ 0 and negative constants for client, load balancer
    and certifier — see {!Core.Config}). Messages sent without [src]/[dst]
    are subject only to the default spec, never to link rules or
    partitions. *)

type t

(** Per-link probabilistic fault spec. [delay_ms] is the extra latency
    added when a delay spike fires. *)
type spec = {
  drop : float;  (** P(message lost) *)
  duplicate : float;  (** P(message delivered twice) *)
  delay : float;  (** P(delay spike) *)
  delay_ms : float;  (** spike magnitude, added to the sampled latency *)
}

val clean : spec
(** All probabilities zero: no faults, no random draws. *)

val spec :
  ?drop:float -> ?duplicate:float -> ?delay:float -> ?delay_ms:float -> unit -> spec
(** [clean] with the given fields overridden. *)

type drop_reason = [ `Random | `Partition | `Script ]

type event =
  | Dropped of { src : int; dst : int; reason : drop_reason }
  | Duplicated of { src : int; dst : int }
  | Delayed of { src : int; dst : int; by_ms : float }

val any : int
(** Wildcard node id for link rules: [set_link ~src:any ~dst:3] applies
    to every tagged message addressed to node 3. *)

val create : ?seed:int -> Engine.t -> t
(** An empty plan (everything {!clean}). [seed] (default 0) drives the
    plan's private RNG. *)

val set_default : t -> spec -> unit
(** The spec applied to links without a more specific rule (including
    untagged messages). *)

val set_link : t -> src:int -> dst:int -> spec -> unit
(** Per-link override; [any] wildcards one side. Lookup order:
    [(src,dst)], [(src,any)], [(any,dst)], then the default spec. *)

val script_drop : t -> src:int -> dst:int -> count:int -> unit
(** Deterministically drop the next [count] messages on the exact link
    (consulted before partitions and probabilistic rules). *)

val partition :
  t -> ?symmetric:bool -> a:int list -> b:int list -> from_ms:float -> until_ms:float ->
  unit -> unit
(** Cut all links from group [a] to group [b] during
    [[from_ms, until_ms)]. [b = []] means "every node not in [a]".
    [symmetric] (default [true]) also cuts [b] to [a]; [false] gives a
    partial (one-directional) partition. [until_ms = infinity] never
    heals. *)

val partitioned : t -> src:int -> dst:int -> bool
(** Whether a message [src → dst] would currently be cut by a partition. *)

val slow : t -> node:int -> factor:float -> from_ms:float -> until_ms:float -> unit
(** Gray failure: multiply the node's service times by [factor] during
    the window (the embedding consults {!slowdown}). Overlapping windows
    compound. *)

val slowdown : t -> node:int -> float
(** The node's current service-time multiplier (1.0 outside any window). *)

val on_event : t -> (event -> unit) -> unit
(** Observer invoked synchronously for every injected fault (counters,
    trace instants). At most one; later calls replace it. *)

type verdict =
  | Deliver
  | Drop of drop_reason
  | Duplicate
  | Delay of float  (** extra ms on top of the sampled latency *)

val judge : t -> src:int -> dst:int -> verdict
(** Decide one message's fate (called by {!Network}): scripted drops,
    then partitions, then the link spec's probabilistic draws. Updates
    the counters and fires {!on_event}. *)

val drops : t -> int

val duplicates : t -> int

val delays : t -> int

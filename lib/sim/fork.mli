(** Structured fork/join for simulation processes.

    The caller forks one child process per body and blocks until every
    child has finished — the concurrency pattern behind parallel refresh
    application at the replicas. Children are ordinary {!Process}es: they
    may sleep, acquire {!Resource}s and block on primitives
    independently; the join completes at the virtual time the {e slowest}
    child finishes. *)

val join : Engine.t -> (unit -> unit) list -> unit
(** [join engine bodies] runs every body to completion before returning.

    All children start at the current virtual instant, in list order. A
    single body runs directly on the caller's stack (no process is
    spawned), so [join engine [ body ]] is equivalent to [body ()] — the
    degenerate case costs nothing. An empty list returns immediately.
    Must be called from within a process when [bodies] has two or more
    elements. An exception escaping a child aborts the whole simulation
    (as with {!Process.spawn}); the joining caller then never resumes. *)

(** Point-to-point network latency model.

    Message delay = [base] + uniform jitter + size / bandwidth. The
    cluster in the paper is a single Gigabit Ethernet switch, so one
    shared latency model covers every pair of hosts.

    A {!Faults} plan may be attached with {!set_faults}; every message
    then passes through {!Faults.judge} and can be dropped, duplicated
    or delayed. Messages carry optional [src]/[dst] node ids so the plan
    can target individual links; untagged messages only see the plan's
    default spec. Without a plan (or with an all-{!Faults.clean} plan)
    behaviour — including the RNG stream — is identical to the original
    exactly-once model.

    Accounting: [messages_sent]/[bytes_sent] count wire copies, i.e.
    offered load — a dropped message still counts (it was sent and then
    lost) and a duplicated message counts twice. [retransmits] counts
    re-sends performed by {!transfer}/{!transfer_bounded} after a lost
    attempt. *)

type t

val create :
  ?rto_ms:float ->
  Engine.t ->
  rng:Util.Rng.t ->
  base_ms:float ->
  jitter_ms:float ->
  bandwidth_mbps:float ->
  t
(** [rto_ms] (default 5.0) is the retransmission timeout used by
    {!transfer}/{!transfer_bounded} when a fault plan drops an attempt. *)

val set_faults : t -> Faults.t -> unit
(** Attach a fault plan; all subsequent traffic is subject to it. *)

val unspecified : int
(** The endpoint id an omitted [?src]/[?dst] defaults to: a sentinel
    that belongs to no fault-plan group, so untagged messages are never
    subject to link rules or partitions. *)

val faults : t -> Faults.t option

val latency : t -> size_bytes:int -> float
(** Sample the one-way delay for a message of the given size. *)

val send : ?src:int -> ?dst:int -> t -> size_bytes:int -> (unit -> unit) -> unit
(** Fire-and-forget delivery: run the callback after a sampled delay.
    Under a fault plan the message may be silently lost, delivered
    twice, or delayed — the caller gets no feedback. *)

val transfer : ?src:int -> ?dst:int -> ?rto_ms:float -> t -> size_bytes:int -> unit
(** Block the calling process for one sampled message delay. Under a
    fault plan this models a {e persistent} stop-and-wait exchange: each
    lost attempt costs one retransmission timeout and the transfer
    retries until it gets through (it only completes delivered, however
    long the partition lasts). *)

val transfer_bounded :
  ?src:int ->
  ?dst:int ->
  ?rto_ms:float ->
  t ->
  size_bytes:int ->
  max_tries:int ->
  (unit, [ `Timeout ]) result
(** Like {!transfer} but gives up after [max_tries] attempts, returning
    [Error `Timeout]. Use for request legs that have no side effect yet
    and can safely abort instead of waiting out a long partition. *)

val messages_sent : t -> int

val bytes_sent : t -> int

val link_messages : t -> src:int -> dst:int -> int
(** Wire copies recorded on the exact (src, dst) link — same offered-load
    semantics as {!messages_sent} (drops and duplicates count). Untagged
    endpoints are keyed as {!unspecified}. *)

val link_bytes : t -> src:int -> dst:int -> int
(** Bytes recorded on the exact (src, dst) link. *)

val retransmits : t -> int

type spec = { drop : float; duplicate : float; delay : float; delay_ms : float }

let clean = { drop = 0.0; duplicate = 0.0; delay = 0.0; delay_ms = 0.0 }

let spec ?(drop = 0.0) ?(duplicate = 0.0) ?(delay = 0.0) ?(delay_ms = 0.0) () =
  { drop; duplicate; delay; delay_ms }

type drop_reason = [ `Random | `Partition | `Script ]

type event =
  | Dropped of { src : int; dst : int; reason : drop_reason }
  | Duplicated of { src : int; dst : int }
  | Delayed of { src : int; dst : int; by_ms : float }

let any = min_int + 1

(* [b = []] means "everyone not in [a]". *)
type cut = {
  a : int list;
  b : int list;
  symmetric : bool;
  from_ms : float;
  until_ms : float;
}

type window = { node : int; factor : float; w_from : float; w_until : float }

type t = {
  engine : Engine.t;
  rng : Util.Rng.t;
  mutable default : spec;
  links : (int * int, spec) Hashtbl.t;
  scripted : (int * int, int ref) Hashtbl.t;
  mutable cuts : cut list;
  mutable windows : window list;
  mutable observer : (event -> unit) option;
  mutable drops : int;
  mutable duplicates : int;
  mutable delays : int;
}

let create ?(seed = 0) engine =
  {
    engine;
    rng = Util.Rng.create seed;
    default = clean;
    links = Hashtbl.create 16;
    scripted = Hashtbl.create 4;
    cuts = [];
    windows = [];
    observer = None;
    drops = 0;
    duplicates = 0;
    delays = 0;
  }

let set_default t spec = t.default <- spec
let set_link t ~src ~dst spec = Hashtbl.replace t.links (src, dst) spec

let script_drop t ~src ~dst ~count =
  match Hashtbl.find_opt t.scripted (src, dst) with
  | Some r -> r := !r + count
  | None -> Hashtbl.replace t.scripted (src, dst) (ref count)

let partition t ?(symmetric = true) ~a ~b ~from_ms ~until_ms () =
  t.cuts <- { a; b; symmetric; from_ms; until_ms } :: t.cuts

let slow t ~node ~factor ~from_ms ~until_ms =
  t.windows <- { node; factor; w_from = from_ms; w_until = until_ms } :: t.windows

let slowdown t ~node =
  let now = Engine.now t.engine in
  List.fold_left
    (fun acc w ->
      if w.node = node && now >= w.w_from && now < w.w_until then acc *. w.factor
      else acc)
    1.0 t.windows

let on_event t f = t.observer <- Some f

(* [Network.unspecified] (min_int) and the [any] wildcard are sentinels,
   not nodes: they belong to no group, so a message with an untagged
   endpoint is never cut by a partition — even by a [b = []] ("everyone
   else") group. *)
let in_group node group ~others =
  node > any
  && (match group with [] -> not (List.mem node others) | g -> List.mem node g)

let cut_active c now ~src ~dst =
  now >= c.from_ms && now < c.until_ms
  && ((in_group src c.a ~others:c.a && in_group dst c.b ~others:c.a)
     || (c.symmetric && in_group dst c.a ~others:c.a && in_group src c.b ~others:c.a))

let partitioned t ~src ~dst =
  let now = Engine.now t.engine in
  List.exists (fun c -> cut_active c now ~src ~dst) t.cuts

let find_spec t ~src ~dst =
  let lookup key = Hashtbl.find_opt t.links key in
  match lookup (src, dst) with
  | Some s -> s
  | None -> (
      match lookup (src, any) with
      | Some s -> s
      | None -> ( match lookup (any, dst) with Some s -> s | None -> t.default))

type verdict = Deliver | Drop of drop_reason | Duplicate | Delay of float

let emit t ev = match t.observer with Some f -> f ev | None -> ()

let note_drop t ~src ~dst reason =
  t.drops <- t.drops + 1;
  emit t (Dropped { src; dst; reason });
  Drop reason

let judge t ~src ~dst =
  match Hashtbl.find_opt t.scripted (src, dst) with
  | Some r when !r > 0 ->
      decr r;
      note_drop t ~src ~dst `Script
  | _ ->
      if partitioned t ~src ~dst then note_drop t ~src ~dst `Partition
      else
        let s = find_spec t ~src ~dst in
        if s.drop > 0.0 && Util.Rng.float t.rng 1.0 < s.drop then
          note_drop t ~src ~dst `Random
        else if s.duplicate > 0.0 && Util.Rng.float t.rng 1.0 < s.duplicate then (
          t.duplicates <- t.duplicates + 1;
          emit t (Duplicated { src; dst });
          Duplicate)
        else if s.delay > 0.0 && Util.Rng.float t.rng 1.0 < s.delay then (
          t.delays <- t.delays + 1;
          emit t (Delayed { src; dst; by_ms = s.delay_ms });
          Delay s.delay_ms)
        else Deliver

let drops t = t.drops
let duplicates t = t.duplicates
let delays t = t.delays

type t = {
  mutable clock : float;
  events : (unit -> unit) Util.Pqueue.t;
  mutable executed : int;
}

let create () = { clock = 0.0; events = Util.Pqueue.create (); executed = 0 }

let now t = t.clock

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  Util.Pqueue.push t.events (t.clock +. delay) f

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Util.Pqueue.push t.events time f

let pending t = Util.Pqueue.length t.events

let executed t = t.executed

(* The two run loops below are the simulator's innermost cycle: use the
   allocation-free queue accessors (min_prio/pop_exn), not peek/pop. *)

let step t =
  if Util.Pqueue.is_empty t.events then false
  else begin
    t.clock <- Util.Pqueue.min_prio t.events;
    t.executed <- t.executed + 1;
    let f = Util.Pqueue.pop_exn t.events in
    f ();
    true
  end

let run ?until t =
  match until with
  | None ->
    let rec loop () = if step t then loop () in
    loop ()
  | Some horizon ->
    let rec loop () =
      if
        (not (Util.Pqueue.is_empty t.events))
        && Util.Pqueue.min_prio t.events <= horizon
      then begin
        ignore (step t);
        loop ()
      end
      else t.clock <- horizon
    in
    loop ()

type t = {
  mutable clock : float;
  events : (unit -> unit) Util.Pqueue.t;
  mutable executed : int;
}

let create () = { clock = 0.0; events = Util.Pqueue.create (); executed = 0 }

let now t = t.clock

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  Util.Pqueue.push t.events (t.clock +. delay) f

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Util.Pqueue.push t.events time f

let pending t = Util.Pqueue.length t.events

let executed t = t.executed

let step t =
  match Util.Pqueue.pop t.events with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    f ();
    true

let run ?until t =
  match until with
  | None ->
    let rec loop () = if step t then loop () in
    loop ()
  | Some horizon ->
    let rec loop () =
      match Util.Pqueue.peek t.events with
      | Some (time, _) when time <= horizon ->
        ignore (step t);
        loop ()
      | Some _ | None -> t.clock <- horizon
    in
    loop ()

(** FIFO [k]-server resource (models CPUs, disks, NICs).

    Processes acquire a server, hold it for some virtual service time,
    and release it; waiters queue in FIFO order. {!utilization} reports
    busy-time so experiments can check for saturation. *)

type t

val create : Engine.t -> servers:int -> t
(** Requires [servers > 0]. *)

val acquire : t -> unit
(** Block the calling process until a server is free, then occupy it. *)

val release : t -> unit
(** Free one server; wakes the longest-waiting acquirer. *)

val use : t -> duration:float -> unit
(** [use t ~duration] = acquire, hold for [duration] ms of virtual time,
    release. Exception-safe is not a concern: simulation processes do not
    raise during service. *)

val busy : t -> int
(** Servers currently held. *)

val servers : t -> int
(** Total servers (the [create] argument), for telemetry probes that
    report occupancy as a fraction. *)

val queue_length : t -> int
(** Processes waiting to acquire. *)

val utilization : t -> float
(** Fraction of (servers x elapsed-time) spent busy since creation or
    the last {!reset_utilization}; 0 if no time has elapsed. *)

val reset_utilization : t -> unit
(** Restart the utilization accounting window (e.g. after warm-up). *)

type t = {
  engine : Engine.t;
  servers : int;
  mutable held : int;
  waiters : (unit -> unit) Queue.t;
  mutable busy_time : float;
  mutable window_start : float;
  mutable last_change : float;
}

(* Invariant: waiters are non-empty only when held = servers. Release
   hands a server directly to the oldest waiter (held is unchanged), so a
   concurrent acquire at the same instant cannot steal it. *)

let create engine ~servers =
  assert (servers > 0);
  let now = Engine.now engine in
  {
    engine;
    servers;
    held = 0;
    waiters = Queue.create ();
    busy_time = 0.0;
    window_start = now;
    last_change = now;
  }

let account t =
  let now = Engine.now t.engine in
  t.busy_time <- t.busy_time +. (float_of_int t.held *. (now -. t.last_change));
  t.last_change <- now

let acquire t =
  if t.held < t.servers then begin
    account t;
    t.held <- t.held + 1
  end
  else Process.suspend (fun resume -> Queue.add resume t.waiters)

let release t =
  account t;
  match Queue.take_opt t.waiters with
  | Some waiter ->
    (* Ownership transfers to the waiter; held stays constant. *)
    Engine.schedule t.engine ~delay:0.0 waiter
  | None ->
    t.held <- t.held - 1;
    assert (t.held >= 0)

let use t ~duration =
  acquire t;
  Process.sleep t.engine duration;
  release t

let busy t = t.held

let servers t = t.servers

let queue_length t = Queue.length t.waiters

let utilization t =
  account t;
  let elapsed = Engine.now t.engine -. t.window_start in
  if elapsed <= 0.0 then 0.0
  else t.busy_time /. (elapsed *. float_of_int t.servers)

let reset_utilization t =
  let now = Engine.now t.engine in
  t.busy_time <- 0.0;
  t.window_start <- now;
  t.last_change <- now

(** Execution-log consistency checks for the replicated system.

    The cluster records one {!record} per committed transaction. Because
    the prototype is a multiversion (GSI) system, consistency properties
    reduce to constraints between {e real-time} commit-acknowledgement
    order and {e snapshot versions}:

    - strong consistency: if Ti's commit was acknowledged to its client
      before Tj began, then Tj's snapshot includes Ti's commit version;
    - fine-grained strong consistency: the same, but only when Ti wrote
      at least one table in Tj's table-set (Theorem 2: the table-set is a
      superset of the data-set, so this still guarantees that Tj observes
      the latest committed state of all the data it accesses);
    - session consistency: the strong constraint restricted to pairs in
      the same session;
    - first-committer-wins (GSI): two committed update transactions with
      intersecting writesets must not have overlapping
      (snapshot, commit] version windows.

    Records additionally carry the {!tier} (read class) they were served
    under. The mode-level guarantees above constrain [Strong]-class
    records only — a read that explicitly requested a weaker class is
    judged by its own tier checker ({!tier_bounded_staleness},
    {!tier_causal_ryw}, {!tier_monotone_reads}) instead. *)

(** Read class a record was served under — a decoupled mirror of
    [Core.Consistency.read_tier] (this library judges logs; it does not
    depend on the protocol implementation). *)
type tier =
  | Strong
  | Bounded of {
      versions : int option;
      ms : float option;
    }
  | Causal
  | Eventual

val tier_string : tier -> string

type record = {
  tid : int;
  session : int;
  begin_time : float;  (** when the client issued the transaction *)
  ack_time : float;  (** when the client learned the commit outcome *)
  snapshot_version : int;  (** database version the txn read from *)
  commit_version : int option;  (** [None] for read-only transactions *)
  epoch : int;
      (** certifier epoch that released the decision (0 when no certifier
          failover ever happened) *)
  lb_epoch : int;
      (** load-balancer routing epoch that served the request (0 until an
          LB takeover ever happened) *)
  tier : tier;  (** read class served; [Strong] for every update *)
  table_set : string list;  (** declared tables the txn may access *)
  tables_written : string list;  (** tables in the writeset *)
  write_keys : (string * string) list;  (** (table, rendered key) written *)
  trace : int option;
      (** trace id of the transaction when the run was traced, so checker
          violations can be cross-referenced with exported trace spans *)
}

type violation = {
  first : record;
  second : record;
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

val strong_consistency : record list -> violation list
(** Empty iff the log is strongly consistent. *)

val fine_strong_consistency : record list -> violation list
(** Empty iff the log satisfies table-set-based strong consistency. *)

val session_consistency : record list -> violation list

val first_committer_wins : record list -> violation list

val bounded_staleness : k:int -> record list -> violation list
(** Relaxed-currency check: if Ti's commit was acknowledged before Tj
    began, Tj's snapshot trails Ti's commit version by at most [k].
    [bounded_staleness ~k:0] coincides with {!strong_consistency}. *)

val monotone_session_snapshots : record list -> violation list
(** Within a session, a later transaction never reads an older snapshot
    than an earlier one's observed commit — the "never goes back in
    time" session guarantee. *)

(** {2 Read-tier contracts (docs/CONSISTENCY.md)}

    Each checker constrains only records of its own tier; they are all
    trivially empty on a log with no tiered reads, so they can ride in
    every checker battery. *)

val tier_bounded_staleness : record list -> violation list
(** Every [Bounded]-tier read respected the bound {e it declared}: with
    [versions = Some k], its snapshot trails any previously-acked commit
    by at most [k] versions; with [ms = Some m], it includes every
    commit acked at least [m] virtual ms before the read began. *)

val tier_causal_ryw : record list -> violation list
(** Read-your-writes: a [Causal]-tier read observes every commit its own
    session had already been acknowledged for. *)

val tier_monotone_reads : record list -> violation list
(** Monotonic reads: a [Causal]-tier read never observes an older
    snapshot than any earlier acknowledged transaction of its session
    (whatever tier that one ran under). *)

val epoch_fencing : record list -> violation list
(** Commit versions are partitioned by certifier epoch: for any two
    epochs e < e', every version committed under e is strictly below
    every version committed under e'. A violation is split brain — a
    deposed primary released a decision past the promotion point of the
    epoch that superseded it. Trivially empty when every record carries
    epoch 0. *)

val election_safety : record list -> violation list
(** The certification log is a single history: no two committed
    transactions occupy the same commit version. Two records sharing a
    version is a divergent log entry — two primaries each released a
    decision for that slot, the failure a non-quorum-intersecting
    election permits. *)

val lb_floor_preservation : record list -> violation list
(** LB takeovers preserve handed-out guarantees: if Ti's commit was
    acked and a later [Causal] read of the same session was served under
    a {e newer} LB epoch, that read still observes Ti's commit. Causal
    is the one tier whose read-your-writes contract holds in every mode;
    [Strong] reads across a takeover are covered by the per-mode
    checkers, whose precedence pairs do not exempt cross-epoch pairs.
    Trivially empty when every record carries LB epoch 0. *)

(** Flat in-memory store of records. The cluster appends every committed
    transaction's record here during a measurement window; records are
    flattened into one growing byte buffer ({!Storage.Codec.Flat}) at
    append time, so a soak's worth of log costs the GC one large object
    instead of hundreds of thousands of small ones. [records] decodes
    them back, in append order. *)
module Sink : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] is the initial buffer size in bytes (doubles on demand). *)

  val length : t -> int
  (** Number of records appended since creation or the last [clear]. *)

  val clear : t -> unit

  val add : t -> record -> unit

  val records : t -> record list
  (** Decode all appended records, in append order. *)
end

val digest : record list -> string
(** Hex digest of the canonical rendering of the log — tid, session,
    begin/ack times (full float precision), snapshot and commit
    versions, table sets, written keys, and (when weaker than [Strong])
    the read tier; [trace] ids are excluded so the digest is invariant
    to whether tracing was on. Two runs with the same seed and fault
    plan must produce equal digests (the chaos harness's
    bit-reproducibility check). *)

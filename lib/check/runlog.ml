(* Mirror of Core.Consistency.read_tier, restated here so the checker
   library stays decoupled from the protocol implementation it judges. *)
type tier =
  | Strong
  | Bounded of {
      versions : int option;
      ms : float option;
    }
  | Causal
  | Eventual

let tier_string = function
  | Strong -> "strong"
  | Bounded { versions; ms } ->
    let v = match versions with Some k -> Printf.sprintf "v%d" k | None -> "" in
    let m = match ms with Some x -> Printf.sprintf "m%h" x | None -> "" in
    "bounded:" ^ v ^ m
  | Causal -> "causal"
  | Eventual -> "eventual"

type record = {
  tid : int;
  session : int;
  begin_time : float;
  ack_time : float;
  snapshot_version : int;
  commit_version : int option;
  epoch : int;  (* certifier epoch that released the decision *)
  lb_epoch : int;  (* LB routing epoch that served the request; 0 until a takeover *)
  tier : tier;  (* read class served; Strong for updates *)
  table_set : string list;
  tables_written : string list;
  write_keys : (string * string) list;
  trace : int option;
}

type violation = {
  first : record;
  second : record;
  reason : string;
}

(* Violations cite trace ids when the run was traced, so a checker hit
   can be looked up directly among the exported spans. *)
let pp_tid ppf r =
  match r.trace with
  | None -> Format.fprintf ppf "T%d" r.tid
  | Some trace -> Format.fprintf ppf "T%d(trace %d)" r.tid trace

let pp_violation ppf v =
  Format.fprintf ppf "%a[%.3f..%.3f e%d L%d] -> %a[%.3f..%.3f e%d L%d]: %s" pp_tid
    v.first v.first.begin_time v.first.ack_time v.first.epoch v.first.lb_epoch pp_tid
    v.second v.second.begin_time v.second.ack_time v.second.epoch v.second.lb_epoch
    v.reason

(* All pairs (ti, tj) such that ti's ack precedes tj's begin. Sorting by
   begin time lets us stop the inner scan early for long logs. *)
let precedence_pairs records ~relevant ~check =
  let by_begin = List.sort (fun a b -> compare a.begin_time b.begin_time) records in
  let arr = Array.of_list by_begin in
  let violations = ref [] in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    let ti = arr.(i) in
    match ti.commit_version with
    | None -> ()
    | Some vi ->
      for j = 0 to n - 1 do
        let tj = arr.(j) in
        if ti.tid <> tj.tid && ti.ack_time < tj.begin_time && relevant ti tj then
          match check vi ti tj with
          | None -> ()
          | Some reason -> violations := { first = ti; second = tj; reason } :: !violations
      done
  done;
  List.rev !violations

(* The mode guarantees below constrain transactions that asked for the
   mode's class: a record served under a weaker read tier is judged by
   its own tier checker instead, so [tj] is restricted to Strong. (Tier
   records never act as [ti]: they are read-only, hence uncommitted.) *)

let strong_consistency records =
  precedence_pairs records
    ~relevant:(fun _ tj -> tj.tier = Strong)
    ~check:(fun vi ti tj ->
      if tj.snapshot_version >= vi then None
      else
        Some
          (Printf.sprintf
             "T%d (commit v%d, acked %.3f) invisible to T%d (begin %.3f, snapshot v%d)"
             ti.tid vi ti.ack_time tj.tid tj.begin_time tj.snapshot_version))

let fine_strong_consistency records =
  let intersects a b = List.exists (fun x -> List.mem x b) a in
  precedence_pairs records
    ~relevant:(fun ti tj -> tj.tier = Strong && intersects ti.tables_written tj.table_set)
    ~check:(fun vi ti tj ->
      if tj.snapshot_version >= vi then None
      else
        Some
          (Printf.sprintf
             "T%d wrote tables in T%d's table-set at v%d but T%d read snapshot v%d" ti.tid
             tj.tid vi tj.tid tj.snapshot_version))

let session_consistency records =
  precedence_pairs records
    ~relevant:(fun ti tj -> tj.tier = Strong && ti.session = tj.session)
    ~check:(fun vi ti tj ->
      if tj.snapshot_version >= vi then None
      else
        Some
          (Printf.sprintf
             "session %d: T%d committed v%d before T%d began, but T%d read snapshot v%d"
             ti.session ti.tid vi tj.tid tj.tid tj.snapshot_version))

let first_committer_wins records =
  let updates =
    List.filter_map
      (fun r -> match r.commit_version with Some v -> Some (r, v) | None -> None)
      records
  in
  let conflict a b = List.exists (fun k -> List.mem k b.write_keys) a.write_keys in
  let rec pairs acc = function
    | [] -> List.rev acc
    | (ri, vi) :: rest ->
      let acc =
        List.fold_left
          (fun acc (rj, vj) ->
            (* Windows (snapshot, commit] overlap iff each commit falls
               after the other's snapshot. *)
            let overlap = vi > rj.snapshot_version && vj > ri.snapshot_version in
            if overlap && conflict ri rj then
              {
                first = ri;
                second = rj;
                reason =
                  Printf.sprintf
                    "write-write conflict between concurrent T%d (v%d..%d] and T%d (v%d..%d]"
                    ri.tid ri.snapshot_version vi rj.tid rj.snapshot_version vj;
              }
              :: acc
            else acc)
          acc rest
      in
      pairs acc rest
  in
  pairs [] updates

let bounded_staleness ~k records =
  precedence_pairs records
    ~relevant:(fun _ tj -> tj.tier = Strong)
    ~check:(fun vi ti tj ->
      if tj.snapshot_version >= vi - k then None
      else
        Some
          (Printf.sprintf
             "T%d read snapshot v%d, more than %d versions behind T%d's commit v%d"
             tj.tid tj.snapshot_version k ti.tid vi))

let monotone_session_snapshots records =
  let by_session = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let l = Option.value (Hashtbl.find_opt by_session r.session) ~default:[] in
      Hashtbl.replace by_session r.session (r :: l))
    records;
  let violations = ref [] in
  Hashtbl.iter
    (fun _ rs ->
      let ordered = List.sort (fun a b -> compare a.begin_time b.begin_time) rs in
      let rec walk = function
        | a :: (b :: _ as rest) ->
          (* Only constrain non-overlapping pairs: a acked before b began.
             A weaker-tier [b] is exempt here (eventual reads may go back
             in time; causal ones are judged by [tier_monotone_reads]). *)
          if
            b.tier = Strong && a.ack_time < b.begin_time
            && b.snapshot_version < a.snapshot_version
          then
            violations :=
              {
                first = a;
                second = b;
                reason =
                  Printf.sprintf "session snapshot went back in time: v%d then v%d"
                    a.snapshot_version b.snapshot_version;
              }
              :: !violations;
          walk rest
        | [ _ ] | [] -> ()
      in
      walk ordered)
    by_session;
  List.rev !violations

(* Epoch fencing: commit versions must be partitioned by epoch — for any
   two epochs e < e', every version committed under e lies strictly below
   every version committed under e'. A violation means a deposed
   primary's decision leaked past the fence (split brain): it released a
   version at or above the promotion point of an epoch that superseded
   it. *)
let epoch_fencing records =
  let updates =
    List.filter_map
      (fun r -> match r.commit_version with Some v -> Some (r, v) | None -> None)
      records
  in
  (* Representative extremes per epoch: highest committed version of the
     older epoch vs lowest of the newer. *)
  let by_epoch = Hashtbl.create 8 in
  List.iter
    (fun (r, v) ->
      match Hashtbl.find_opt by_epoch r.epoch with
      | None -> Hashtbl.add by_epoch r.epoch ((r, v), (r, v))
      | Some ((_, lo_v) as lo, ((_, hi_v) as hi)) ->
        let lo = if v < lo_v then (r, v) else lo in
        let hi = if v > hi_v then (r, v) else hi in
        Hashtbl.replace by_epoch r.epoch (lo, hi))
    updates;
  let epochs = Hashtbl.fold (fun e _ acc -> e :: acc) by_epoch [] |> List.sort compare in
  let rec walk acc = function
    | e :: (e' :: _ as rest) ->
      let _, (hi_r, hi_v) = Hashtbl.find by_epoch e in
      let (lo_r, lo_v), _ = Hashtbl.find by_epoch e' in
      let acc =
        if hi_v >= lo_v then
          {
            first = hi_r;
            second = lo_r;
            reason =
              Printf.sprintf
                "epoch fence breached: T%d committed v%d under epoch %d, but T%d \
                 committed v%d under later epoch %d"
                hi_r.tid hi_v e lo_r.tid lo_v e';
          }
          :: acc
        else acc
      in
      walk acc rest
    | [ _ ] | [] -> List.rev acc
  in
  walk [] epochs

(* Election safety: the certification log is a single history — no two
   committed transactions may occupy the same commit version. Two
   records sharing a version means two primaries each released their
   own decision for that slot (a divergent log entry), which is exactly
   what a non-quorum-intersecting election permits: a stale standby
   promotes without having acked the releases it now re-assigns. *)
let election_safety records =
  let updates =
    List.filter_map
      (fun r -> match r.commit_version with Some v -> Some (r, v) | None -> None)
      records
  in
  let by_version = Hashtbl.create 64 in
  let violations = ref [] in
  List.iter
    (fun (r, v) ->
      match Hashtbl.find_opt by_version v with
      | None -> Hashtbl.add by_version v r
      | Some prev ->
        violations :=
          {
            first = prev;
            second = r;
            reason =
              Printf.sprintf
                "divergent log entry: T%d (epoch %d) and T%d (epoch %d) both \
                 committed v%d"
                prev.tid prev.epoch r.tid r.epoch v;
          }
          :: !violations)
    updates;
  List.rev !violations

(* LB floor preservation: a takeover must not lose the guarantees the
   deposed balancer had already handed out. If Ti's commit was acked to
   its session and a later Causal read Tj of the same session was served
   by a newer LB epoch, Tj still sees Ti's commit — the successor
   reconstructed a conservative floor covering every previously
   acknowledged version. Causal is the one tier whose read-your-writes
   contract holds in every mode; Strong reads across a takeover are
   already constrained by the per-mode checkers above, whose precedence
   pairs do not exempt cross-epoch pairs. *)
let lb_floor_preservation records =
  precedence_pairs records
    ~relevant:(fun ti tj ->
      tj.lb_epoch > ti.lb_epoch && ti.session = tj.session && tj.tier = Causal)
    ~check:(fun vi ti tj ->
      if tj.snapshot_version >= vi then None
      else
        Some
          (Printf.sprintf
             "LB takeover dropped a floor: session %d had v%d acked (T%d, LB epoch \
              %d) but T%d read snapshot v%d after takeover (LB epoch %d)"
             ti.session vi ti.tid ti.lb_epoch tj.tid tj.snapshot_version tj.lb_epoch))

(* --- Read-tier contracts (docs/CONSISTENCY.md) ----------------------- *)

(* Bounded staleness, per record: a read declaring [versions = Some k]
   must see every commit acked before it began except the k freshest;
   one declaring [ms = Some m] must see every commit acked at least m
   virtual ms before it began. Unlike the mode-level [bounded_staleness],
   the bound comes from the record itself. *)
let tier_bounded_staleness records =
  precedence_pairs records
    ~relevant:(fun _ tj -> match tj.tier with Bounded _ -> true | _ -> false)
    ~check:(fun vi ti tj ->
      match tj.tier with
      | Bounded { versions; ms } ->
        let stale_v =
          match versions with Some k -> tj.snapshot_version < vi - k | None -> false
        in
        let stale_ms =
          match ms with
          | Some m -> ti.ack_time <= tj.begin_time -. m && tj.snapshot_version < vi
          | None -> false
        in
        if stale_v || stale_ms then
          Some
            (Printf.sprintf
               "bounded read T%d (%s) saw snapshot v%d, violating its bound against \
                T%d's commit v%d (acked %.3f, read began %.3f)"
               tj.tid (tier_string tj.tier) tj.snapshot_version ti.tid vi ti.ack_time
               tj.begin_time)
        else None
      | _ -> None)

(* Causal = read-your-writes: a causal read sees every commit its own
   session was already acknowledged for. *)
let tier_causal_ryw records =
  precedence_pairs records
    ~relevant:(fun ti tj -> tj.tier = Causal && ti.session = tj.session)
    ~check:(fun vi ti tj ->
      if tj.snapshot_version >= vi then None
      else
        Some
          (Printf.sprintf
             "causal read T%d missed its own session's write: session %d committed \
              v%d (T%d) before the read began, but it saw snapshot v%d"
             tj.tid tj.session vi ti.tid tj.snapshot_version))

(* Causal = monotonic reads: within a session, a causal read never
   observes an older snapshot than any earlier acknowledged transaction
   of the same session (whatever tier that one ran under). *)
let tier_monotone_reads records =
  let by_session = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let l = Option.value (Hashtbl.find_opt by_session r.session) ~default:[] in
      Hashtbl.replace by_session r.session (r :: l))
    records;
  let violations = ref [] in
  Hashtbl.iter
    (fun _ rs ->
      let ordered = List.sort (fun a b -> compare a.begin_time b.begin_time) rs in
      let rec walk = function
        | a :: (_ :: _ as rest) ->
          List.iter
            (fun b ->
              if
                b.tier = Causal && a.ack_time < b.begin_time
                && b.snapshot_version < a.snapshot_version
              then
                violations :=
                  {
                    first = a;
                    second = b;
                    reason =
                      Printf.sprintf
                        "causal read T%d went back in time: session %d had observed \
                         v%d (T%d), then read snapshot v%d"
                        b.tid b.session a.snapshot_version a.tid b.snapshot_version;
                  }
                  :: !violations)
            rest;
          walk rest
        | [ _ ] | [] -> ()
      in
      walk ordered)
    by_session;
  List.rev !violations

(* --- Flat record sink ------------------------------------------------ *)

(* A chaos soak commits hundreds of thousands of transactions per run;
   keeping each as a boxed [record] (two floats, four lists, two
   options) holds the whole window's worth of small heap objects live
   until the checker battery runs, and the GC walks them on every major
   slice. The sink flattens records into one growing [Bytes] buffer as
   they are recorded and materializes [record] values only when a
   checker asks. *)
module Sink = struct
  module Flat = Storage.Codec.Flat

  type t = {
    w : Flat.writer;
    mutable count : int;
  }

  let create ?(capacity = 1 lsl 16) () = { w = Flat.writer ~capacity (); count = 0 }

  let length t = t.count

  let clear t =
    Flat.clear t.w;
    t.count <- 0

  (* Option and tier tags. *)
  let tag_none = 0
  let tag_some = 1
  let tier_strong = 0
  let tier_bounded = 1
  let tier_causal = 2
  let tier_eventual = 3

  let put_int_opt w = function
    | None -> Flat.u8 w tag_none
    | Some x ->
      Flat.u8 w tag_some;
      Flat.int w x

  let put_float_opt w = function
    | None -> Flat.u8 w tag_none
    | Some x ->
      Flat.u8 w tag_some;
      Flat.float w x

  let put_strs w l =
    Flat.int w (List.length l);
    List.iter (Flat.str w) l

  let add t r =
    let w = t.w in
    Flat.int w r.tid;
    Flat.int w r.session;
    Flat.float w r.begin_time;
    Flat.float w r.ack_time;
    Flat.int w r.snapshot_version;
    put_int_opt w r.commit_version;
    Flat.int w r.epoch;
    Flat.int w r.lb_epoch;
    (match r.tier with
    | Strong -> Flat.u8 w tier_strong
    | Bounded { versions; ms } ->
      Flat.u8 w tier_bounded;
      put_int_opt w versions;
      put_float_opt w ms
    | Causal -> Flat.u8 w tier_causal
    | Eventual -> Flat.u8 w tier_eventual);
    put_strs w r.table_set;
    put_strs w r.tables_written;
    Flat.int w (List.length r.write_keys);
    List.iter
      (fun (table, key) ->
        Flat.str w table;
        Flat.str w key)
      r.write_keys;
    put_int_opt w r.trace;
    t.count <- t.count + 1

  let read_int_opt c =
    match Flat.read_u8 c with
    | 0 -> None
    | _ -> Some (Flat.read_int c)

  let read_float_opt c =
    match Flat.read_u8 c with
    | 0 -> None
    | _ -> Some (Flat.read_float c)

  let read_strs c = List.init (Flat.read_int c) (fun _ -> Flat.read_str c)

  let read_record c =
    let tid = Flat.read_int c in
    let session = Flat.read_int c in
    let begin_time = Flat.read_float c in
    let ack_time = Flat.read_float c in
    let snapshot_version = Flat.read_int c in
    let commit_version = read_int_opt c in
    let epoch = Flat.read_int c in
    let lb_epoch = Flat.read_int c in
    let tier =
      match Flat.read_u8 c with
      | 0 -> Strong
      | 1 ->
        let versions = read_int_opt c in
        let ms = read_float_opt c in
        Bounded { versions; ms }
      | 2 -> Causal
      | _ -> Eventual
    in
    let table_set = read_strs c in
    let tables_written = read_strs c in
    let write_keys =
      List.init (Flat.read_int c) (fun _ ->
          let table = Flat.read_str c in
          let key = Flat.read_str c in
          (table, key))
    in
    let trace = read_int_opt c in
    {
      tid;
      session;
      begin_time;
      ack_time;
      snapshot_version;
      commit_version;
      epoch;
      lb_epoch;
      tier;
      table_set;
      tables_written;
      write_keys;
      trace;
    }

  let records t =
    let c = Flat.cursor t.w in
    List.init t.count (fun _ -> read_record c)
end

let digest records =
  (* Canonical rendering of everything semantically meaningful in a
     record. [trace] is excluded: trace ids depend on whether tracing
     was enabled, not on what the cluster did. Floats are printed with
     full precision ([%h]) so two runs only digest equal when their
     virtual-time streams are bit-identical. *)
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%d|%h|%h|%d|%s|e%d%s|%s|%s|%s%s\n" r.tid r.session
           r.begin_time r.ack_time r.snapshot_version
           (match r.commit_version with None -> "ro" | Some v -> string_of_int v)
           r.epoch
           (* LB epoch rendered only after a takeover, so single-LB logs
              digest identically to logs predating LB failover. *)
           (if r.lb_epoch > 0 then Printf.sprintf "|L%d" r.lb_epoch else "")
           (String.concat "," r.table_set)
           (String.concat "," r.tables_written)
           (String.concat ","
              (List.map (fun (t, k) -> t ^ ":" ^ k) r.write_keys))
           (* Tier rendered only when weaker than Strong, so all-strong
              logs digest identically to logs predating read tiers. *)
           (match r.tier with Strong -> "" | t -> "|" ^ tier_string t)))
    records;
  Digest.to_hex (Digest.string (Buffer.contents buf))

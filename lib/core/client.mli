(** Client drivers: the paper's closed-loop RTE threads, plus an
    open-loop arrival process for overload experiments.

    A {e closed-loop} client owns a session and repeatedly thinks,
    generates a transaction from its workload function, submits it, and
    retries on abort (up to [max_retries] conflict retries, under the
    optional per-client retry budget — see docs/PROTOCOL.md, "Overload &
    admission control").

    An {e open-loop} client is an arrival process: transactions arrive
    at a configured rate whether or not earlier ones have completed, so
    offered load can exceed capacity — the regime where admission
    control, retry budgets and deadlines earn their keep. *)

type workload = {
  think_ms : Util.Rng.t -> float;  (** sampled think time before each txn *)
  next_request : Util.Rng.t -> Transaction.request;
}

(** Inter-arrival law of an open-loop generator. *)
type arrival =
  | Poisson  (** exponential gaps (memoryless arrivals) — the default *)
  | Fixed  (** a metronome: constant gaps at exactly the configured rate *)

val spawn : Cluster.t -> sid:int -> rng:Util.Rng.t -> workload -> unit
(** Start one closed-loop client process; it runs until the simulation
    stops. *)

val spawn_many : Cluster.t -> n:int -> first_sid:int -> workload -> unit
(** Start [n] closed-loop clients with distinct sessions and independent
    RNG streams split from the cluster RNG. *)

val open_loop :
  Cluster.t ->
  sid:int ->
  rng:Util.Rng.t ->
  ?arrival:arrival ->
  rate_tps:float ->
  workload ->
  unit
(** Start one open-loop arrival process offering [rate_tps] transactions
    per virtual second ([workload.think_ms] is ignored — the clock, not
    completion, paces arrivals). Each arrival is handled by its own
    process running the same abort-class-aware retry loop as the
    closed-loop driver; all handlers of one generator share its session
    and its retry budget. Raises [Invalid_argument] on a non-positive
    rate. *)

val open_loop_many :
  Cluster.t ->
  n:int ->
  first_sid:int ->
  ?arrival:arrival ->
  rate_tps:float ->
  workload ->
  unit
(** Start [n] open-loop generators with distinct sessions splitting the
    {e aggregate} [rate_tps] evenly between them. *)

val no_think : Util.Rng.t -> float
(** Zero think time: back-to-back submission (micro-benchmark). *)

val exp_think : mean_ms:float -> Util.Rng.t -> float
(** Negative-exponential think time (TPC-W). *)

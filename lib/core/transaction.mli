(** Client transaction requests.

    A request is an instance of a {e prepared transaction}: a profile
    identifier, the statically-known table-set (used by the fine-grained
    configuration), and the parameter-bound statements. *)

type request = {
  profile : string;  (** prepared-transaction identifier *)
  table_set : string list;  (** tables the transaction may access *)
  statements : Storage.Query.t list;
  tier : Consistency.read_tier;
      (** requested read class; [Strong] (the default) follows the
          cluster's write {!Consistency.mode}. Non-[Strong] tiers are
          only admissible for read-only requests — see
          {!tier_violation}. *)
}

type abort_reason =
  | Certification_conflict  (** certifier found a write-write conflict *)
  | Early_certification  (** conflict with a pending refresh writeset *)
  | Replica_failure  (** the executing replica crashed mid-flight *)
  | Timeout  (** a hardened message exchange exhausted its retransmission
          budget, or the replica never caught up to the start version
          within [Config.start_wait_timeout_ms] (lossy-network mode) *)
  | Overloaded of { retry_after_ms : float }
      (** shed by admission control before doing any work — the LB
          token bucket / concurrency limit, the apply-lag governor, or
          the bounded certifier backlog rejected the request
          (docs/PROTOCOL.md, "Overload & admission control").
          [retry_after_ms] is the server's hint for how long the client
          should wait before re-offering the work. *)
  | Statement_error of string  (** e.g. duplicate-key insert *)

type outcome =
  | Committed of {
      commit_version : int option;  (** [None] for read-only transactions *)
      snapshot : int;
      stages : float array;  (** indexed by {!Metrics.stage} *)
      response_ms : float;
    }
  | Aborted of {
      reason : abort_reason;
      response_ms : float;
    }

val make :
  profile:string ->
  ?table_set:string list ->
  ?tier:Consistency.read_tier ->
  Storage.Query.t list ->
  request
(** Build a request; the table-set defaults to the tables referenced by
    the statements (always a superset of the accessed data under our
    statement language), and the read tier defaults to
    {!Consistency.Strong}. *)

val updates_possible : request -> bool
(** Whether any statement may write. *)

val tier_violation : request -> string option
(** Read-class admission check, enforced at the replica boundary: a
    non-[Strong] tier combined with statements that may write is
    rejected (the replica aborts with [Statement_error] before
    executing anything). Returns the rejection message, or [None] if
    the request is admissible. *)

val pp_abort_reason : Format.formatter -> abort_reason -> unit

val abort_slug : abort_reason -> string
(** Short stable identifier for metrics breakdowns ("timeout",
    "certification", ...); collapses [Statement_error] payloads. *)

val abort_is_transient : abort_reason -> bool
(** Failure-class aborts ([Replica_failure], [Timeout], [Overloaded])
    are retried without consuming the client's [max_retries] budget —
    the conflict budget is reserved for certification losses. Transient
    retries are still capped by the per-client retry {e budget}
    ([Config.retry_budget]) when one is configured, and an [Overloaded]
    retry waits out the shed's [retry_after_ms] hint first. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** Experiment metrics: throughput and the paper's six-stage latency
    breakdown (§V.A).

    Read-only transactions have three stages (version, queries, commit);
    update transactions add certify, sync and — under the eager
    configuration — global. Recording only happens after
    {!reset_window}, so warm-up intervals are excluded. *)

type stage = Version | Queries | Certify | Sync | Commit | Global

val stage_index : stage -> int
val stage_count : int
val stage_name : stage -> string
val stages : stage list

type t

(** One finished transaction, as handed to the outcome observer: both
    commits and aborts flow through, with the stage-clock durations
    attached ([out_read_only] is [false] for aborts). *)
type outcome = {
  out_committed : bool;
  out_read_only : bool;
  out_response_ms : float;
  out_stages : float array;
  out_tier : string;
      (** the read tier served ({!Consistency.tier_slug}); "strong" for
          updates and aborts *)
  out_staleness : int;
      (** versions the served snapshot trailed [V_system] at response
          time; meaningful for read-only commits, 0 otherwise *)
}

(** A point-in-time consistency health snapshot, refreshed by the
    cluster's gauge pass and echoed by {!pp_summary}. *)
type health = {
  lag_max : float;  (** max over replicas of [v_system - v_local] *)
  cert_log : int;  (** certifier log length (entries kept) *)
  watermark_horizon : int;  (** watermark-GC horizon (log base version) *)
  epoch : int;  (** current certifier epoch *)
}

val create : Sim.Engine.t -> t

val set_observer : t -> (outcome -> unit) option -> unit
(** Install (or clear) the per-outcome observer. [None] — the default —
    costs nothing on the transaction path; the observatory installs a
    function that feeds its windowed counters and histograms. *)

val set_health : t -> lag_max:float -> cert_log:int -> watermark_horizon:int -> epoch:int -> unit

val health : t -> health option

val reset_window : t -> unit
(** Start (or restart) the measurement window; discards prior samples. *)

val record_commit :
  ?tier:string ->
  ?staleness:int ->
  t ->
  read_only:bool ->
  stages:float array ->
  response_ms:float ->
  unit
(** [tier] (default ["strong"]) and [staleness] feed the per-read-tier
    breakdown for read-only commits; both are ignored for updates. *)

val record_abort : ?slug:string -> t -> unit
(** [slug] (a {!Transaction.abort_slug}) feeds the per-reason abort
    breakdown. *)

val record_retry_exhausted : t -> unit

(** {2 Overload protection (docs/PROTOCOL.md, "Overload & admission
    control")}

    All four counters stay 0 unless an overload knob is enabled. *)

val record_shed : t -> unit
(** A request was refused with {!Transaction.Overloaded} (LB admission,
    apply-lag governor, or the bounded certifier backlog). *)

val record_retry_budget_exhausted : t -> unit
(** A client's retry token bucket ran dry and it gave the transaction
    up instead of retrying ([Config.retry_budget]). *)

val record_deadline_expired : t -> unit
(** A stage dropped a transaction whose [Config.deadline_ms] deadline
    had already passed. *)

val note_queue_depth : t -> int -> unit
(** Report an observed queue depth (certifier backlog, admitted
    in-flight); the window keeps the maximum. *)

val shed : t -> int

val retry_budget_exhausted : t -> int

val deadline_expired : t -> int

val max_queue_depth : t -> int
(** Largest queue depth reported this window; 0 when never reported. *)

(** {2 Pipeline batching}

    Group-certification and parallel-apply accounting. A {e cert batch}
    is one drain of the certifier's request queue (size ≥ 1); an
    {e apply group} is one run of consecutive refresh writesets a
    replica's sequencer installed together, partitioned into conflict
    lanes. With [cert_batch = 1] and [apply_parallelism = 1] every batch
    and group has size 1. *)

val note_cert_batch : t -> size:int -> unit

val note_apply_group : t -> size:int -> lanes:int -> unit

val cert_batches : t -> int

val mean_cert_batch : t -> float
(** Mean certification requests decided per batch; 0 when idle. *)

val apply_groups : t -> int

val mean_apply_group : t -> float
(** Mean writesets installed per apply group; 0 when idle. *)

val mean_apply_lanes : t -> float
(** Mean concurrent conflict lanes per apply group; 0 when idle. *)

(** {2 The per-transaction stage clock}

    One recorder per in-flight transaction drives both stage accounting
    and (when a {!Obs.Trace.t} is attached) per-stage trace spans — the
    aggregate breakdown and the trace are views of the same events.
    Stages are entered and exited strictly one at a time. *)

type txn

val txn_begin : ?obs:Obs.Trace.t -> ?sid:int -> name:string -> t -> txn
(** Start the clock (and, when tracing, the transaction's root span on
    the [Client sid] track). [name] labels the root span (the workload
    profile). *)

val txn_locate : txn -> replica:int -> unit
(** Route subsequent stage spans to the executing replica's track. Call
    after the load balancer picks the replica, before the first stage. *)

val stage_enter : ?at:float -> txn -> stage -> unit
(** Open a stage at the current virtual time, or retroactively at [at]. *)

val stage_exit : ?at:float -> txn -> stage -> unit
(** Close the open stage, accumulating its duration (and finishing its
    span). Raises [Invalid_argument] if [stage] is not the open one. *)

val txn_trace_id : txn -> int option
(** The allocated trace id; [None] when tracing is disabled. *)

val txn_root_span : txn -> Obs.Span.t option
(** The root span, to parent spans emitted by other components. *)

val txn_stages : txn -> float array
(** The per-stage durations accumulated so far (indexed by
    {!stage_index}); the array the outcome carries. *)

val txn_response_ms : txn -> float
(** Virtual time elapsed since {!txn_begin}. *)

val txn_commit :
  ?args:(string * string) list ->
  ?tier:string ->
  ?staleness:int ->
  txn ->
  read_only:bool ->
  unit
(** Close any open stage, record the commit (stages + response time) and
    finish the root span with an [outcome] arg. [tier]/[staleness] as in
    {!record_commit}. *)

val txn_abort : ?slug:string -> txn -> reason:string -> unit
(** Close any open stage, record the abort and finish the root span.
    [reason] is the human-readable form (span arg); [slug] the stable
    identifier for the per-reason breakdown. *)

(** {2 Fault accounting}

    Counters fed by the cluster's fault-plan observer and hardened
    message layer (docs/FAULTS.md); all zero in fault-free runs. *)

val note_fault : t -> [ `Drop | `Duplicate | `Delay ] -> unit

val note_retransmits : t -> int -> unit
(** Add newly observed retransmissions (the cluster polls monotonic
    network/certifier counters and reports deltas). *)

val note_suspect : t -> unit
(** The LB failure detector marked a replica suspect. *)

val note_failover : t -> unit
(** A replica was declared dead (routing failover), or reprovisioned. *)

val note_promotion : t -> outage_ms:float -> unit
(** A certifier standby promoted itself (or was promoted); [outage_ms]
    is the span since the deposed primary was last known good — the
    commit-outage window the failover closed. *)

val note_fenced : t -> unit
(** A stale-epoch certifier message (refresh batch, repair stream,
    replication push or decision) was rejected by an epoch fence. *)

val note_election : t -> unit
(** A suspecting standby started a vote round (won or not). *)

val note_vote_denial : t -> unit
(** A voter refused a candidate (log behind, stale target epoch, vote
    already granted elsewhere, or learner). *)

val note_lease_expiry : t -> unit
(** The voter liveness lease demoted an unresponsive voter to learner
    ([Config.voter_lease_ms]). *)

val note_lb_takeover : t -> unit
(** The standby load balancer deposed a silent active LB and took over
    routing ([Config.lb_standby]). *)

val promotions : t -> int

val fenced : t -> int

val elections : t -> int

val vote_denials : t -> int

val lease_expiries : t -> int

val lb_takeovers : t -> int

val outage_windows : t -> Util.Stats.t
(** Per-promotion commit-outage spans (ms). *)

val outage_max_ms : t -> float
(** Largest outage window closed by a promotion; 0 when none. *)

val fault_drops : t -> int

val fault_duplicates : t -> int

val fault_delays : t -> int

val retransmits : t -> int

val suspects : t -> int

val failovers : t -> int

(** {2 Reading results} *)

val window_ms : t -> float
(** Elapsed virtual time since the window started. *)

val committed : t -> int

val aborted : t -> int

val retry_exhausted : t -> int

val throughput_tps : t -> float
(** Committed transactions per (virtual) second in the window. *)

val mean_response_ms : t -> float

val percentile_response_ms : t -> float -> float

val mean_stage_ms : t -> stage -> float
(** Mean over {e all} committed transactions (stages a class does not
    have count as 0, matching the paper's stacked-bar convention). *)

val mean_stage_update_ms : t -> stage -> float
(** Mean over update transactions only. *)

val sync_delay_ms : t -> float
(** The paper's "synchronization delay": mean Version stage for lazy
    configurations plus mean Global stage (only Eager has one). *)

val abort_rate : t -> float
(** Aborts / (commits + aborts); 0 when idle. *)

val aborts_by_reason : t -> (string * int) list
(** Abort counts keyed by {!Transaction.abort_slug}, most frequent
    first; only aborts recorded with a slug appear. *)

(** {2 Per-read-tier breakdown (docs/CONSISTENCY.md)}

    Read-only commits, keyed by {!Consistency.tier_slug} — strong reads
    land under ["strong"], so the four classes are directly comparable
    within one run. Empty until a read commits. *)

val tier_slugs : t -> string list
(** Tiers with at least one read-only commit, sorted. *)

val tier_committed : t -> string -> int

val tier_mean_response_ms : t -> string -> float

val tier_percentile_response_ms : t -> string -> float -> float

val tier_mean_staleness : t -> string -> float
(** Mean versions the served snapshots trailed [V_system] at response. *)

val tier_max_staleness : t -> string -> float

val pp_summary : Format.formatter -> t -> unit

(** A database replica: proxy + standalone DBMS (§IV).

    The replica owns a full copy of the database, a CPU resource shared
    by query execution and refresh application, and a {e commit
    sequencer} that applies local commits and refresh transactions in
    the certifier's total order, advancing [V_local] one version at a
    time.

    The proxy responsibilities implemented here:
    - queueing refresh writesets and applying them in version order;
    - the synchronization start delay ({!await_version});
    - early certification (hidden-deadlock avoidance): an update
      statement conflicting with a pending refresh writeset aborts, and
      an arriving refresh writeset aborts conflicting active local
      transactions;
    - crash / recovery in the crash-recovery failure model. *)

type t

type local_commit = (float, Transaction.abort_reason) result
(** [Ok start] carries the virtual time at which the sequencer began the
    commit work, letting the caller split its wait into the paper's
    "sync" (waiting for predecessors) and "commit" (own commit) stages. *)

val create :
  ?obs:Obs.Trace.t -> ?metrics:Metrics.t -> Sim.Engine.t -> Config.t ->
  rng:Util.Rng.t -> id:int -> Storage.Database.t -> t
(** With [obs], the sequencer emits a [refresh.apply] span (component
    [Replica id]) for every remote writeset it applies, joining the
    committing transaction's trace when the refresh carried its id; a
    parallel apply group additionally emits a [refresh.apply_batch] span
    covering the fork/join. With [metrics], each group is recorded via
    {!Metrics.note_apply_group}. *)

val start : t -> unit
(** Spawn the commit-sequencer process. Call once, before the run. *)

val id : t -> int

val database : t -> Storage.Database.t

val cpu : t -> Sim.Resource.t

val v_local : t -> int

val is_crashed : t -> bool

(** {2 Transaction-side operations (called from a transaction process)} *)

val await_version : ?deadline:float -> t -> int -> (unit, Transaction.abort_reason) result
(** Block until [V_local >= v] (the synchronization start delay).
    Returns [Error Replica_failure] if the replica crashes meanwhile,
    and [Error Timeout] if [deadline] (absolute virtual time) passes
    first — the lossy-network guard against waiting on a version the
    replica may never receive. No deadline = wait forever (the
    exactly-once behaviour). *)

val begin_txn : t -> tid:int -> Storage.Txn.t
(** Start a local transaction on the current snapshot and register it
    for early certification. *)

val abort_requested : t -> tid:int -> bool
(** Whether a refresh writeset conflicted with this transaction. *)

val early_certify : t -> Storage.Txn.t -> bool
(** Check the transaction's current writeset against pending (received
    but unapplied) refresh writesets; [false] means conflict. *)

val finish_txn : t -> tid:int -> unit
(** Deregister from early certification (after commit or abort). *)

val exec_statement : t -> Storage.Txn.t -> Storage.Query.t -> Storage.Query.result
(** Execute one statement, charging CPU for its measured row work. *)

val commit_local : t -> version:int -> ws:Storage.Writeset.t -> local_commit Sim.Ivar.t
(** Enqueue this transaction's commit at its certified version; the
    ivar fills when the sequencer has committed it locally (or the
    replica crashed first). The wait is the paper's "sync" stage.
    Idempotent against the certifier's repair loop: if a repair resend
    already delivered (or applied) this version as a refresh, the slot
    is reclaimed (or the commit completes immediately) — the writesets
    are identical. *)

val commit_read_only : t -> Storage.Txn.t -> unit
(** Local read-only commit: cheap, no certification. *)

(** {2 Certifier-side operations} *)

val receive_refresh_batch :
  ?epoch:int -> t -> (int option * int * Storage.Writeset.t) list -> unit
(** Deliver one certifier batch of [(trace, version, writeset)] refresh
    transactions (called via the network; the {!Certifier.subscribe}
    callback). [epoch] (default 0) is the releasing certifier's epoch:
    batches from an epoch older than the highest seen are fenced —
    dropped whole and counted in {!fenced_refreshes} — so a deposed
    primary's stragglers cannot land versions from a dead history; a
    higher epoch is adopted. For each surviving writeset: aborts
    conflicting active local transactions (early certification) and
    queues it for the sequencer. Delivery is idempotent — versions are
    the sequence numbers, and any
    version already applied or already queued (including a pending local
    commit) is silently dropped, making duplicated batches and the
    certifier's repair resends safe. The whole batch is dropped while
    crashed. How the queued writesets are then applied — one at a time
    or as conflict-partitioned parallel groups — is governed by
    [Config.apply_parallelism]. *)

val receive_refresh :
  ?trace:int -> ?epoch:int -> t -> version:int -> ws:Storage.Writeset.t -> unit
(** [receive_refresh_batch] of the singleton [(trace, version, ws)].
    [trace] is the committing transaction's trace id, threaded into the
    apply span. *)

val cert_epoch : t -> int
(** Highest certifier epoch seen on any refresh batch. *)

val fenced_refreshes : t -> int
(** Stale-epoch refresh batches dropped by the epoch fence. *)

val set_on_commit : t -> (version:int -> unit) -> unit
(** Hook invoked after every local apply/commit (used for eager acks). *)

(** {2 Fault injection} *)

val set_faults : t -> Sim.Faults.t -> unit
(** Attach the cluster's fault plan: the replica consults
    {!Sim.Faults.slowdown} (keyed by its id) on every service time,
    modelling gray failure. Without slowdown windows this multiplies by
    1.0 — behaviour is unchanged. *)

val crash : t -> unit
(** Fail-stop: aborts all in-flight local work and stops applying
    refreshes. Durable state ([V_local] and the database) survives. *)

val recover : t -> missed:(int * Storage.Writeset.t) list -> unit
(** Rejoin with the writesets missed while down (from
    {!Certifier.writesets_from}); the sequencer resumes and drains
    them in order. *)

val checkpoint : t -> string
(** A binary checkpoint of the local database ({!Storage.Database.snapshot}),
    used as the state-transfer payload for replicas whose outage outlived
    the certifier's pruned log. *)

val state_transfer : t -> snapshot:string -> unit
(** Replace the local database with a peer's checkpoint. Only legal while
    crashed; follow with {!recover} for the residual log suffix. *)

(** {2 Introspection} *)

val active_local : t -> int
val pending_refresh : t -> int
val applied_refresh : t -> int

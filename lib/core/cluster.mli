(** The replicated database system: load balancer + certifier + replicas
    wired over a simulated network, with the full client transaction
    flow of §IV.

    {!submit} must be called from within a simulation process (see
    {!Sim.Process.spawn} or the {!Client} driver); it blocks for the
    virtual duration of the transaction and returns its outcome with the
    six-stage latency breakdown. *)

type t

val create :
  ?config:Config.t ->
  ?tracing:bool ->
  ?trace_capacity:int ->
  ?faults:(Sim.Engine.t -> Sim.Faults.t) ->
  mode:Consistency.mode ->
  schemas:Storage.Schema.t list ->
  load:(Storage.Database.t -> unit) ->
  unit ->
  t
(** Build a cluster: every replica gets the schemas and is populated by
    [load]. Spawns the per-replica sequencer processes and, if
    configured, the MVCC vacuum process. Raises [Invalid_argument] when
    the configuration fails {!Config.validate}.

    With [~tracing:true] (default [false]) the cluster owns an
    {!Obs.Trace.t} and every component emits spans into it; virtual
    timings are unaffected (see {!Obs.Trace}). [trace_capacity] bounds
    the span ring buffer (default 65536).

    [faults] builds a {!Sim.Faults} plan against the cluster's engine;
    the plan is attached to the network and to every component's
    service-time model (gray slowdowns), and every injected fault event
    is mirrored into {!metrics} and the {!registry}. The plan owns its
    own RNG, so attaching an all-{!Sim.Faults.clean} plan leaves the
    run's event stream bit-identical to no plan at all. Pair with
    [Config.reliable] (see {!Config.hardened}) so the protocol actually
    retransmits and detects failures under the plan. *)

val engine : t -> Sim.Engine.t
val config : t -> Config.t
val mode : t -> Consistency.mode
val metrics : t -> Metrics.t
val certifier : t -> Certifier.t
val load_balancer : t -> Load_balancer.t
(** The {e currently active} LB instance (see {!lb_active_index}). *)

val lb_instance : t -> int -> Load_balancer.t
(** LB instance [k] (0 = initial active, 1 = standby); test hook. *)

val lb_count : t -> int
(** 2 when [Config.lb_standby], else 1. *)

val lb_active_index : t -> int
(** Which instance clients currently route to. *)

val lb_epoch : t -> int
(** Routing epoch: 0 initially, bumped by every takeover. Commit records
    carry the epoch that dispatched them ({!Check.Runlog.record}). *)

val lb_is_crashed : t -> int -> bool

val lb_takeovers : t -> int
(** Times a standby LB deposed a silent active and took over routing. *)

val lb_fenced : t -> int
(** Stale-LB-epoch events rejected: state pushes from a deposed active,
    and response relays whose dispatching instance was deposed
    mid-flight. *)

val lb_cert_fenced : t -> int
(** {!Load_balancer.cert_fenced} summed over instances. *)

val replica : t -> int -> Replica.t
val rng : t -> Util.Rng.t
(** A generator split from the cluster seed, for workload use. *)

val network : t -> Sim.Network.t

val faults : t -> Sim.Faults.t option
(** The materialized fault plan, if the cluster was built with one. *)

val reprovisions : t -> int
(** Replicas re-seeded by checkpoint state transfer after the failure
    detector saw them return from beyond log repair. *)

(** {2 Observability} *)

val trace : t -> Obs.Trace.t option
(** The cluster's trace context; [Some] iff created with [~tracing:true]. *)

val registry : t -> Obs.Registry.t
(** Named counters (commits, read-only commits, aborts, exhausted
    retries) and gauges; always live — counters cost one increment. *)

val update_gauges : t -> unit
(** Refresh the registry's gauges (refresh-queue depths, active
    transactions, per-replica staleness, certifier log size / base /
    queue, session floors) from current state, and record the
    {!Metrics.health} snapshot. *)

val attach_probes : t -> Obs.Sampler.t -> unit
(** Register the standard probe set on a sampler: per-replica CPU
    (busy/queue/utilization), refresh queue, active transactions and LB
    in-flight count; certifier CPU and log size; [v_system]. The
    [v_system] probe also calls {!update_gauges} each tick. *)

val start_telemetry : ?interval_ms:float -> t -> Obs.Sampler.t
(** Convenience: create a sampler on the cluster engine, attach the
    standard probes and start it. *)

val start_observatory : ?window_ms:float -> t -> Obs.Timeseries.t
(** Start the run-health observatory: a windowed {!Obs.Timeseries}
    (window span from [window_ms], default [Config.obs_window_ms]) fed
    by three channels — the {!Metrics} outcome observer (commit /
    read-only commit / abort counts plus response-time and per-stage
    latency histograms), per-window deltas of monotonic sources
    (certifier decisions, retransmissions, fault injections, detector
    and HA events), and consistency gauges read at each window close
    (per-replica staleness [v_system - v_local] and its max, certifier
    log length and GC horizon, watermark minimum, session-floor count,
    epoch, standby lag, refresh backlog). The gauge pass also refreshes
    {!registry} gauges and the {!Metrics.health} snapshot. The
    observatory only reads state: an observed run executes the same
    events as a blind one (pinned by the determinism tests). *)

val stop_observatory : t -> Obs.Timeseries.t -> unit
(** Stop the observatory's window process, flush the final partial
    window and uninstall the outcome observer. *)

val submit : t -> sid:int -> Transaction.request -> Transaction.outcome
(** Run one transaction end to end. Records metrics and, when
    [record_log] is set, a {!Check.Runlog.record} for committed
    transactions. *)

(** {2 Run orchestration} *)

val run_for : t -> warmup_ms:float -> measure_ms:float -> unit
(** Advance virtual time by [warmup_ms], reset the metrics window (and
    discard any recorded log), then advance by [measure_ms]. *)

val records : t -> Check.Runlog.record list
(** Committed-transaction records collected in the current window
    (requires [record_log]). *)

val was_shed : t -> tid:int -> bool
(** Whether transaction [tid] was ever refused with
    {!Transaction.Overloaded} (LB admission, apply-lag governor, or the
    bounded certifier backlog). The chaos zombie-commit checker asserts
    no shed tid appears among {!records}. *)

val shed_count : t -> int
(** Distinct transactions shed so far (0 with overload knobs off). *)

(** {2 Fault injection} *)

val crash_replica : t -> int -> unit
(** Fail-stop the replica and remove it from routing and certification. *)

val recover_replica : t -> int -> unit
(** Bring the replica back: it replays the certifier log it missed (or,
    if the log was pruned past its outage, state-transfers a checkpoint
    from the freshest live peer first) and rejoins routing. *)

val crash_certifier : t -> unit
(** Fail-stop the certifier primary (requires [certifier_standbys > 0]).
    Update transactions queue until a standby is promoted — manually via
    {!failover_certifier}, or automatically by the standby failure
    detectors in reliable mode. *)

val failover_certifier : t -> unit
(** Manually promote the best eligible standby ({!Certifier.failover}). *)

val revive_certifier_node : t -> int -> unit
(** Bring a crashed certifier group member back
    ({!Certifier.revive_node}): a deposed ex-primary rejoins as a
    standby and is reconciled against the ruling epoch. *)

val crash_lb : t -> int -> unit
(** Fail-stop LB instance [k]: it stops pushing state, client requests
    routed to it time out, and response relays stall until the standby
    takes over. Raises [Invalid_argument] without [Config.lb_standby] —
    crashing the only LB would wedge the cluster forever. *)

val recover_lb : t -> int -> unit
(** Revive LB instance [k]. If it still believes itself active it
    resumes pushing and is fenced (then deposed) by the successor's
    higher epoch; otherwise it resumes as the standby. *)

type eager_state = {
  waiting_on : (int, unit) Hashtbl.t;  (* replica ids that have not acked *)
  done_ : unit Sim.Ivar.t;
}

(* A standby certifier: a synchronously maintained copy of the decision
   log (the certifier is deterministic, so the log IS the state — the
   state-machine replication approach of §IV). *)
type standby = {
  mutable sb_version : int;
  mutable sb_log : Storage.Writeset.t Util.Vec.t;
  mutable sb_log_base : int;
}

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  rng : Util.Rng.t;
  network : Sim.Network.t;
  mode : Consistency.mode;
  obs : Obs.Trace.t option;
  cpu : Sim.Resource.t;
  mutable version : int;
  mutable log : Storage.Writeset.t Util.Vec.t;  (* index i holds version log_base+i+1 *)
  mutable log_base : int;  (* all versions <= log_base have been pruned *)
  subscribers : (int, trace:int option -> version:int -> ws:Storage.Writeset.t -> unit)
    Hashtbl.t;
  live : (int, unit) Hashtbl.t;
  eager_pending : (int, eager_state) Hashtbl.t;  (* keyed by version *)
  standbys : standby array;
  mutable crashed : bool;
  revive : Sim.Condition.t;
  mutable failovers : int;
  mutable commits : int;
  mutable aborts : int;
}

type decision =
  | Commit of { version : int; global_commit : unit Sim.Ivar.t option }
  | Abort

let create ?obs engine cfg ~rng ~network ~mode =
  {
    engine;
    cfg;
    rng;
    network;
    mode;
    obs;
    cpu = Sim.Resource.create engine ~servers:1;
    version = 0;
    log = Util.Vec.create ();
    log_base = 0;
    subscribers = Hashtbl.create 16;
    live = Hashtbl.create 16;
    eager_pending = Hashtbl.create 64;
    standbys =
      Array.init cfg.Config.certifier_standbys (fun _ ->
          { sb_version = 0; sb_log = Util.Vec.create (); sb_log_base = 0 });
    crashed = false;
    revive = Sim.Condition.create engine;
    failovers = 0;
    commits = 0;
    aborts = 0;
  }

let subscribe t ~replica deliver =
  Hashtbl.replace t.subscribers replica deliver;
  Hashtbl.replace t.live replica ()

let version t = t.version

let cpu t = t.cpu

let log_size t = t.version - t.log_base

let service_time t base =
  if t.cfg.Config.service_jitter then base *. Util.Rng.exponential t.rng ~mean:1.0
  else base

let log_entry t v = Util.Vec.get t.log (v - t.log_base - 1)

let conflicts_since t ~snapshot ws =
  (* Scan committed writesets in (snapshot, version]. *)
  let rec scan v =
    if v <= snapshot then false
    else if Storage.Writeset.conflicts ws (log_entry t v) then true
    else scan (v - 1)
  in
  scan t.version

(* Synchronously replicate a freshly decided commit to every standby:
   one round trip to the slowest standby, while the state copy itself is
   deterministic replay of the same decision. *)
let replicate_to_standbys t v ws =
  if Array.length t.standbys > 0 then begin
    let size_bytes = Storage.Codec.writeset_bytes ws + 32 in
    let slowest =
      Array.fold_left
        (fun acc _ -> Float.max acc (2.0 *. Sim.Network.latency t.network ~size_bytes))
        0.0 t.standbys
    in
    Sim.Process.sleep t.engine slowest;
    Array.iter
      (fun sb ->
        assert (sb.sb_version = v - 1);
        Util.Vec.push sb.sb_log ws;
        sb.sb_version <- v)
      t.standbys
  end

let certify ?trace t ~origin ~snapshot ~ws =
  let rows = Storage.Writeset.cardinal ws in
  (* The service span covers outage queueing, CPU queueing and the
     certification work itself; [queue_ms] separates the wait. *)
  let span =
    match trace with
    | Some (trace_id, parent) ->
      Obs.Trace.start_opt t.obs ~trace_id ~parent ~component:Obs.Span.Certifier
        ~name:"certify"
        ~args:
          [
            ("origin", string_of_int origin);
            ("snapshot", string_of_int snapshot);
            ("rows", string_of_int rows);
          ]
        ()
    | None -> None
  in
  let arrival = Sim.Engine.now t.engine in
  (* During a certifier outage, requests queue until failover completes. *)
  Sim.Condition.await t.revive (fun () -> not t.crashed);
  Sim.Resource.acquire t.cpu;
  let queue_ms = Sim.Engine.now t.engine -. arrival in
  let finish_span decision_args =
    Obs.Trace.finish_opt t.obs span
      ~args:(decision_args @ [ ("queue_ms", Printf.sprintf "%.3f" queue_ms) ])
  in
  let cost =
    t.cfg.Config.certify_base_ms +. (float_of_int rows *. t.cfg.Config.certify_row_ms)
  in
  Sim.Process.sleep t.engine (service_time t cost);
  if snapshot < t.log_base || conflicts_since t ~snapshot ws then begin
    (* A snapshot older than the pruned log horizon cannot be checked and
       is conservatively aborted — in practice the horizon trails the
       slowest replica by [gc_window] versions, so this only hits
       pathologically old transactions. *)
    t.aborts <- t.aborts + 1;
    Sim.Resource.release t.cpu;
    finish_span [ ("decision", "abort") ];
    Abort
  end
  else begin
    t.version <- t.version + 1;
    let v = t.version in
    Util.Vec.push t.log ws;
    t.commits <- t.commits + 1;
    (* Durable decision before anyone learns about it: local log force
       plus synchronous replication to the standby certifiers. *)
    Sim.Process.sleep t.engine (service_time t t.cfg.Config.durability_ms);
    replicate_to_standbys t v ws;
    Sim.Resource.release t.cpu;
    finish_span [ ("decision", "commit"); ("version", string_of_int v) ];
    let size_bytes = Storage.Codec.writeset_bytes ws + 64 in
    (* The refresh carries the committing transaction's trace id so the
       remote applies land in the same trace. *)
    let trace_id = Option.map fst trace in
    Hashtbl.iter
      (fun replica deliver ->
        if replica <> origin && Hashtbl.mem t.live replica then
          Sim.Network.send t.network ~size_bytes (fun () ->
              deliver ~trace:trace_id ~version:v ~ws))
      t.subscribers;
    let global_commit =
      match t.mode with
      | Consistency.Eager ->
        let waiting_on = Hashtbl.create 8 in
        Hashtbl.iter (fun replica () -> Hashtbl.replace waiting_on replica ()) t.live;
        let done_ = Sim.Ivar.create t.engine in
        if Hashtbl.length waiting_on = 0 then Sim.Ivar.fill done_ ()
        else Hashtbl.replace t.eager_pending v { waiting_on; done_ };
        Some done_
      | Consistency.Coarse | Consistency.Fine | Consistency.Session
      | Consistency.Bounded _ -> None
    in
    Commit { version = v; global_commit }
  end

let ack t ~replica ~version =
  match Hashtbl.find_opt t.eager_pending version with
  | None -> ()
  | Some state ->
    Hashtbl.remove state.waiting_on replica;
    if Hashtbl.length state.waiting_on = 0 then begin
      Hashtbl.remove t.eager_pending version;
      Sim.Ivar.fill state.done_ ()
    end

let log_base t = t.log_base

let writesets_from t from =
  if from < t.log_base then None
  else begin
    let rec build v acc =
      if v <= from then acc else build (v - 1) ((v, log_entry t v) :: acc)
    in
    Some (build t.version [])
  end

let prune t ~keep_after =
  (* Keep versions > keep_after, on the primary and every standby. *)
  if keep_after > t.log_base then begin
    let keep_after = min keep_after t.version in
    let fresh = Util.Vec.create () in
    for v = keep_after + 1 to t.version do
      Util.Vec.push fresh (log_entry t v)
    done;
    t.log <- fresh;
    t.log_base <- keep_after;
    Array.iter
      (fun sb ->
        if keep_after > sb.sb_log_base && sb.sb_version >= keep_after then begin
          let fresh = Util.Vec.create () in
          for v = keep_after + 1 to sb.sb_version do
            Util.Vec.push fresh (Util.Vec.get sb.sb_log (v - sb.sb_log_base - 1))
          done;
          sb.sb_log <- fresh;
          sb.sb_log_base <- keep_after
        end)
      t.standbys
  end

let crash t =
  if Array.length t.standbys = 0 then
    invalid_arg "Certifier.crash: no standby configured (the decision log would be lost)";
  t.crashed <- true

let is_crashed t = t.crashed

let failover t =
  if not t.crashed then invalid_arg "Certifier.failover: certifier is running";
  (* Promote standby 0: its log is a synchronous copy, so no committed
     decision is lost (§IV: durability of decisions). *)
  let sb = t.standbys.(0) in
  assert (sb.sb_version = t.version);  (* synchronous replication invariant *)
  t.failovers <- t.failovers + 1;
  t.crashed <- false;
  Sim.Condition.broadcast t.revive

let failovers t = t.failovers

let mark_down t ~replica =
  Hashtbl.remove t.live replica;
  (* Pending eager transactions stop waiting for the dead replica. *)
  let completed = ref [] in
  Hashtbl.iter
    (fun v state ->
      Hashtbl.remove state.waiting_on replica;
      if Hashtbl.length state.waiting_on = 0 then completed := (v, state) :: !completed)
    t.eager_pending;
  List.iter
    (fun (v, state) ->
      Hashtbl.remove t.eager_pending v;
      Sim.Ivar.fill state.done_ ())
    !completed

let mark_up t ~replica =
  if Hashtbl.mem t.subscribers replica then Hashtbl.replace t.live replica ()

let decisions t = (t.commits, t.aborts)

(* Int-keyed monomorphic tables: every map in here is keyed by a
   replica id or a commit version. *)
module Itbl = Util.Tables.Itbl

type eager_state = {
  waiting_on : unit Itbl.t;  (* replica ids that have not acked *)
  done_ : unit Sim.Ivar.t;
}

(* One member of the certifier group: the primary plus
   [Config.certifier_standbys] standbys, each holding its own copy of
   the decision log (the certifier is deterministic, so the log IS the
   state — the state-machine replication approach of §IV). Member 0 is
   the initial primary; any member can hold the primary role after a
   failover. *)
type cnode = {
  cn_index : int;
  cn_net : int;  (* network endpoint id ([Config.node_cert_standby]) *)
  mutable cn_version : int;
  mutable cn_log : Storage.Writeset.t Util.Vec.t;  (* index i = version cn_log_base+i+1 *)
  mutable cn_log_base : int;
  mutable cn_epoch : int;  (* highest epoch this member has adopted *)
  mutable cn_crashed : bool;
  (* Highest contiguous log position this member has acknowledged to a
     primary (appends are contiguity-checked, so acked version v implies
     the member holds every version <= v). *)
  mutable cn_acked : int;
  (* Learner/voter switch: a member that just revived or was deposed is
     not caught up; it neither gates the ack quorum nor is eligible for
     promotion until replication brings it back to the log head. *)
  mutable cn_caught_up : bool;
  (* Standby-side failure detection: when this member last heard the
     primary answer a heartbeat. *)
  mutable cn_last_heard : float;
  (* Election state (docs/PROTOCOL.md, "Control plane"): the highest
     epoch this member granted a vote for, and to whom. One vote per
     target epoch — re-granted only to the same candidate (Raft). *)
  mutable cn_vote_epoch : int;
  mutable cn_vote_for : int;
  (* Primary-side voter lease: when this member last acknowledged a
     replication push to a primary. A voter silent beyond
     [Config.voter_lease_ms] while decisions are outstanding is demoted
     to learner so it stops gating the ack quorum. *)
  mutable cn_last_ack : float;
}

type decision =
  | Commit of { version : int; epoch : int; global_commit : unit Sim.Ivar.t option }
  | Abort
  | Overloaded
  | Expired

(* One queued certification request. Requests enter [pending] in the same
   order their processes queue on the CPU (there is no suspension point
   between the two), so the queue head always belongs to the next waiter
   to acquire — the invariant group certification relies on. *)
type request = {
  req_origin : int;
  req_snapshot : int;
  req_ws : Storage.Writeset.t;
  req_trace : (int * Obs.Span.t option) option;
  req_span : Obs.Span.t option;
  req_arrival : float;
  req_deadline : float;  (* virtual-time drop-dead point; infinity = none *)
  req_decided : decision Sim.Ivar.t;
}

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  rng : Util.Rng.t;
  network : Sim.Network.t;
  mode : Consistency.mode;
  obs : Obs.Trace.t option;
  metrics : Metrics.t option;
  cpu : Sim.Resource.t;
  pending : request Queue.t;  (* undecided requests, CPU-queue order *)
  nodes : cnode array;  (* member 0 first; length certifier_standbys + 1 *)
  mutable primary : int;  (* index of the member currently holding the role *)
  mutable epoch : int;  (* the ruling epoch = current primary's epoch *)
  mutable epoch_base : int;  (* log head of the current primary at its promotion *)
  (* (epoch, base) for every promotion, newest first: a rejoining member
     reconciles by truncating to the base of the first epoch after its
     own (everything beyond it belongs to a dead history). *)
  mutable epoch_starts : (int * int) list;
  (* The certification index: interned conflict id -> last committed
     version writing that record. Maintained only under [Config.Keyed];
     covers exactly the retained log of the current primary. Keys are
     dense ints from [intern] (shared with the whole replication group),
     so a probe neither allocates nor hashes strings. *)
  index : int Util.Tables.Itbl.t;
  intern : Storage.Intern.t;
  (* Highest version each subscribed replica reported applied — the
     piggybacked V_local watermarks driving log truncation ({!gc}). *)
  watermarks : int Itbl.t;
  (* Virtual time we last heard anything from each replica (request,
     ack, heartbeat, subscription) — drives eviction of corpses. *)
  last_heard : float Itbl.t;
  (* Replicas whose watermark entry was evicted; they must state-transfer
     on rejoin (the log may have been truncated past their position). *)
  evicted : unit Itbl.t;
  (* Last watermark the repair loop saw per replica: a lagging replica is
     only re-sent the un-acked suffix when it made no progress since the
     previous tick (progress means delivery is working). *)
  repair_seen : int Itbl.t;
  subscribers :
    (epoch:int -> (int option * int * Storage.Writeset.t) list -> unit) Itbl.t;
  live : unit Itbl.t;
  eager_pending : eager_state Itbl.t;  (* keyed by version *)
  revive : Sim.Condition.t;  (* outage gate: primary crashed -> promoted *)
  repl_wake : Sim.Condition.t;  (* kicks the per-standby replication pushers *)
  repl_done : Sim.Condition.t;  (* standby acks arrived / promotion happened *)
  mutable failovers : int;
  mutable promotions : int;  (* automatic (detection-driven) promotions *)
  mutable fenced : int;  (* stale-epoch messages/decisions rejected *)
  mutable elections : int;  (* vote rounds started *)
  mutable vote_denials : int;  (* votes refused (log behind, stale target) *)
  mutable lease_expiries : int;  (* voters demoted to learner by the lease *)
  mutable commits : int;
  mutable aborts : int;
  mutable shed : int;  (* refused by the bounded backlog (cert_queue_bound) *)
  mutable expired : int;  (* dropped with their deadline already passed *)
  mutable retransmits : int;
  mutable evictions : int;
  mutable faults : Sim.Faults.t option;  (* gray-failure slowdown windows *)
}

let node t k = t.nodes.(k)

let primary_node t = t.nodes.(t.primary)

let version t = (primary_node t).cn_version

let log_base t = (primary_node t).cn_log_base

let cpu t = t.cpu

let log_size t = version t - log_base t

let group_size t = Array.length t.nodes

let primary_index t = t.primary

let primary_net t = (primary_node t).cn_net

let current_epoch t = t.epoch

let epoch_base t = t.epoch_base

let node_version t k = (node t k).cn_version

let node_epoch t k = (node t k).cn_epoch

let node_crashed t k = (node t k).cn_crashed

let node_acked t k = (node t k).cn_acked

let set_faults t faults = t.faults <- Some faults

let fenced t = t.fenced

let promotions t = t.promotions

let elections t = t.elections

let vote_denials t = t.vote_denials

let lease_expiries t = t.lease_expiries

let shed t = t.shed

let expired t = t.expired

let backlog t = Queue.length t.pending

(* Replication lag of the slowest non-crashed standby behind the
   primary's log head (0 with no standbys). *)
let standby_lag t =
  let p = primary_node t in
  Array.fold_left
    (fun acc n ->
      if n.cn_index <> t.primary && not n.cn_crashed then
        max acc (p.cn_version - n.cn_acked)
      else acc)
    0 t.nodes

(* Retained log of one member, ascending (version, writeset) — the chaos
   harness scans these for decision divergence across the group. *)
let node_log t k =
  let n = node t k in
  let rec build v acc =
    if v <= n.cn_log_base then acc
    else build (v - 1) ((v, Util.Vec.get n.cn_log (v - n.cn_log_base - 1)) :: acc)
  in
  build n.cn_version []

let note_heard t replica =
  Itbl.replace t.last_heard replica (Sim.Engine.now t.engine)

let subscribe t ~replica deliver =
  Itbl.replace t.subscribers replica deliver;
  Itbl.replace t.live replica ();
  note_heard t replica;
  if not (Itbl.mem t.watermarks replica) then Itbl.replace t.watermarks replica 0

let service_time t base =
  let base =
    if t.cfg.Config.service_jitter then base *. Util.Rng.exponential t.rng ~mean:1.0
    else base
  in
  match t.faults with
  | None -> base
  | Some f -> base *. Sim.Faults.slowdown f ~node:(primary_net t)

let log_entry_of n v = Util.Vec.get n.cn_log (v - n.cn_log_base - 1)

(* The first-committer-wins check over (snapshot, version]. Both
   implementations return the same decision (pinned by golden and
   differential tests); [Keyed] is O(|writeset|) regardless of how far
   the snapshot lags, [Linear] is O(versions-behind × |writeset|).
   Because commits update log and index incrementally as a batch is
   certified, the check also catches intra-batch write-write conflicts:
   the later arrival sees the earlier member's freshly committed
   writeset and aborts, exactly as if the two had certified back to
   back. *)
let conflicts_since t ~snapshot ws =
  match t.cfg.Config.cert_index with
  | Config.Keyed ->
    (* Index invariant: for every conflict key written by a retained log
       entry, [index] holds the *highest* committing version; a conflict
       exists iff some key of [ws] was last written after [snapshot].
       Entries at or below [snapshot] cannot conflict, and versions ≤
       log_base are pruned from the index only after the abort guard in
       [process_batch] has rejected snapshots below log_base. Writesets
       built by this replication group carry their ids ([cids] returns
       the cached array); foreign writesets are resolved through this
       group's intern table on the way in. *)
    let kids = Storage.Writeset.cids ws ~intern:t.intern in
    let n = Array.length kids in
    let rec probe i =
      if i >= n then false
      else
        match Util.Tables.Itbl.find_opt t.index kids.(i) with
        | Some v when v > snapshot -> true
        | _ -> probe (i + 1)
    in
    probe 0
  | Config.Linear ->
    let p = primary_node t in
    let rec scan v =
      if v <= snapshot then false
      else if Storage.Writeset.conflicts ws (log_entry_of p v) then true
      else scan (v - 1)
    in
    scan p.cn_version

let check_conflict t ~snapshot ~ws = conflicts_since t ~snapshot ws

(* Record a freshly committed writeset in the certification index. *)
let index_commit t ws version =
  if t.cfg.Config.cert_index = Config.Keyed then
    Array.iter
      (fun kid -> Util.Tables.Itbl.replace t.index kid version)
      (Storage.Writeset.cids ws ~intern:t.intern)

(* Rebuild the index from a log segment (standby promotion): ascending
   replay leaves the highest writer per key, restoring the invariant. *)
let rebuild_index t ~base ~upto entry =
  Util.Tables.Itbl.reset t.index;
  if t.cfg.Config.cert_index = Config.Keyed then
    for v = base + 1 to upto do
      Array.iter
        (fun kid -> Util.Tables.Itbl.replace t.index kid v)
        (Storage.Writeset.cids (entry v) ~intern:t.intern)
    done

let index_size t = Util.Tables.Itbl.length t.index

let intern t = t.intern

(* --- Applied-version watermarks ------------------------------------

   Replicas piggyback their applied V_local on certification requests
   and on the per-version commit acks ({!ack}); the certifier keeps the
   highest value seen per replica. The minimum over *live* replicas is
   the principled truncation horizon: every live replica has applied
   everything at or below it, so only a slack for in-flight snapshots
   need be retained ({!gc}). The minimum over *all* subscribed replicas
   (crashed ones freeze their watermark, and V_local is durable across
   replica crashes) is a permanent lower bound on every replica's
   applied version — the load balancer uses it to drop session-version
   entries that can no longer cause a wait. *)

(* Watermarks are cumulative acknowledgements: a replica reporting
   applied version [v] has applied every version <= v, so any eager
   transaction still waiting on that replica for a version <= v is
   acknowledged too. Over the exactly-once network the sweep never finds
   anything (per-version acks arrive in order, before any watermark can
   overtake them); under message loss it is what lets a later heartbeat
   stand in for a lost ack instead of wedging the eager commit. *)
let sweep_eager t ~replica ~upto =
  if Itbl.length t.eager_pending > 0 then begin
    let completed = ref [] in
    Itbl.iter
      (fun v state ->
        if v <= upto && Itbl.mem state.waiting_on replica then begin
          Itbl.remove state.waiting_on replica;
          if Itbl.length state.waiting_on = 0 then completed := (v, state) :: !completed
        end)
      t.eager_pending;
    List.iter
      (fun (v, state) ->
        Itbl.remove t.eager_pending v;
        Sim.Ivar.fill state.done_ ())
      (List.sort compare !completed)
  end

let observe_applied t ~replica ~version =
  note_heard t replica;
  (match Itbl.find_opt t.watermarks replica with
  | Some w when w >= version -> ()
  | Some _ | None -> Itbl.replace t.watermarks replica version);
  sweep_eager t ~replica ~upto:version

let heartbeat t ~replica ~applied = observe_applied t ~replica ~version:applied

let watermark t ~replica = Option.value (Itbl.find_opt t.watermarks replica) ~default:0

let min_live_watermark t =
  if Itbl.length t.live = 0 then None
  else
    Some (Itbl.fold (fun replica () acc -> min acc (watermark t ~replica)) t.live max_int)

let min_watermark t =
  if Itbl.length t.watermarks = 0 then 0
  else Itbl.fold (fun _ w acc -> min acc w) t.watermarks max_int

(* --- Group replication, epochs and failover -------------------------

   Every commit decision travels to each standby as an addressed,
   fault-injectable network message and is only released to the
   originating replica once [Config.standby_ack_quorum] standbys have
   acknowledged their copy. Promotion bumps the epoch; every
   certifier-originated message (replication pushes, refresh batches,
   repair streams, decisions) carries the epoch of the primary that
   produced it and is fenced — dropped and counted — when it arrives
   from a dead epoch. A deposed primary reconciles by truncating its log
   to the promotion point of the epoch that superseded it and rejoins
   the group as a standby. *)

let note_fenced t =
  t.fenced <- t.fenced + 1;
  match t.metrics with Some m -> Metrics.note_fenced m | None -> ()

(* The log position a member on [from_epoch] must truncate to before
   adopting a later epoch: the base of the first promotion after its
   epoch (everything it logged beyond that point belongs to a history
   that lost). *)
let reconcile_base t ~from_epoch =
  List.fold_left
    (fun acc (e, base) -> if e > from_epoch then min acc base else acc)
    max_int t.epoch_starts

let truncate_node n ~upto =
  if n.cn_version > upto then begin
    let keep = max upto n.cn_log_base in
    let fresh = Util.Vec.create () in
    for v = n.cn_log_base + 1 to keep do
      Util.Vec.push fresh (log_entry_of n v)
    done;
    n.cn_log <- fresh;
    n.cn_version <- keep;
    n.cn_acked <- min n.cn_acked keep
  end

(* Adopt a newer epoch: log reconciliation (truncate the dead-history
   tail), then mark the member a learner until replication catches it
   back up to the ruling log head. *)
let adopt_epoch t n ~epoch =
  if epoch > n.cn_epoch then begin
    truncate_node n ~upto:(reconcile_base t ~from_epoch:n.cn_epoch);
    n.cn_epoch <- epoch;
    (* Caught up means at the ruling log HEAD, not merely at the epoch
       base: the base only bounds what the previous epoch released, so a
       member reconciled down to it may still trail the release point by
       an arbitrary margin. Granting it voter and candidate rights there
       would let it win a later election with a stale log and re-assign
       versions the ruling primary already released. *)
    n.cn_caught_up <- epoch = t.epoch && n.cn_version >= (primary_node t).cn_version
  end

(* Voter set for the ack quorum and for promotion: non-crashed members
   of the ruling epoch that are caught up to the log head. *)
let eligible_standby t n =
  n.cn_index <> t.primary && (not n.cn_crashed) && n.cn_epoch = t.epoch && n.cn_caught_up

let quorum_met t ~target =
  let eligible = ref 0 and acked = ref 0 in
  Array.iter
    (fun n ->
      if eligible_standby t n then begin
        incr eligible;
        if n.cn_acked >= target then incr acked
      end)
    t.nodes;
  let need =
    if t.cfg.Config.standby_ack_quorum <= 0 then !eligible
    else min !eligible t.cfg.Config.standby_ack_quorum
  in
  !acked >= need

(* Promote member [k]: bump the epoch, adopt its log as the ruling
   history, rebuild the certification index from it, and wake every
   queued certification request. The promotion point ([epoch_base])
   fences the deposed primary: decisions it assigned beyond it are
   rejected everywhere and truncated at reconciliation. *)
let promote ?(auto = false) t k =
  let np = t.nodes.(k) in
  assert (not np.cn_crashed);
  let now = Sim.Engine.now t.engine in
  let outage_ms = now -. np.cn_last_heard in
  let epoch = 1 + Array.fold_left (fun acc n -> max acc n.cn_epoch) t.epoch t.nodes in
  np.cn_epoch <- epoch;
  np.cn_acked <- np.cn_version;
  np.cn_caught_up <- true;
  t.epoch <- epoch;
  t.epoch_base <- np.cn_version;
  t.epoch_starts <- (epoch, np.cn_version) :: t.epoch_starts;
  t.primary <- k;
  (* Every other member must reconcile against the new history before it
     votes again; pushes and heartbeat pongs carry the epoch to them. *)
  Array.iter (fun n -> if n.cn_index <> k then n.cn_caught_up <- false) t.nodes;
  (* Grace period for the other detectors (and the voter lease): a fresh
     promotion is contact. *)
  Array.iter
    (fun n ->
      n.cn_last_heard <- now;
      n.cn_last_ack <- now)
    t.nodes;
  rebuild_index t ~base:np.cn_log_base ~upto:np.cn_version (fun v -> log_entry_of np v);
  Itbl.reset t.repair_seen;
  t.failovers <- t.failovers + 1;
  if auto then begin
    t.promotions <- t.promotions + 1;
    match t.metrics with
    | Some m -> Metrics.note_promotion m ~outage_ms
    | None -> ()
  end;
  Sim.Condition.broadcast t.revive;
  Sim.Condition.broadcast t.repl_done;
  Sim.Condition.broadcast t.repl_wake

(* The per-member replication pusher: whenever the ruling primary's log
   is ahead of this member's acknowledged position, capture the missing
   suffix, ship it as an addressed stop-and-wait transfer (retransmitted
   by the network layer under loss, blocked by partitions), append it —
   contiguity-checked and epoch-fenced — at the member, and return an
   acknowledgement carrying the member's log head. A member whose gap
   reaches below the primary's pruned log horizon is reprovisioned with
   a full snapshot of the retained log instead. *)
let pusher t k =
  let sb = t.nodes.(k) in
  let rec loop () =
    Sim.Condition.await t.repl_wake (fun () ->
        t.primary <> k
        && (not sb.cn_crashed)
        && (not (primary_node t).cn_crashed)
        && ((primary_node t).cn_version > sb.cn_acked || sb.cn_epoch < t.epoch));
    let p = primary_node t in
    let push_epoch = p.cn_epoch in
    let target = p.cn_version in
    (* Capture the payload at send time: the log may be pruned, extended
       or even superseded while the message is in flight. *)
    let snapshot_base, payload =
      if sb.cn_acked < p.cn_log_base then begin
        (* Below the pruned horizon: full state transfer of the retained
           log (base marker + entries). *)
        let rec build v acc =
          if v <= p.cn_log_base then acc else build (v - 1) ((v, log_entry_of p v) :: acc)
        in
        (Some p.cn_log_base, build target [])
      end
      else
        let rec build v acc =
          if v <= sb.cn_acked then acc else build (v - 1) ((v, log_entry_of p v) :: acc)
        in
        (None, build target [])
    in
    let size_bytes =
      List.fold_left
        (fun acc (_, ws) -> acc + Storage.Codec.writeset_bytes ws)
        0 payload
      + 32
    in
    (* Data leg: persistent stop-and-wait — each lost attempt costs one
       retransmission timeout; a partition blocks the pusher until it
       heals (durability cannot be faked past a cut). *)
    Sim.Network.transfer t.network ~src:p.cn_net ~dst:sb.cn_net ~size_bytes;
    if not sb.cn_crashed then begin
      if push_epoch < sb.cn_epoch then
        (* A deposed primary's late replication push: fenced. *)
        note_fenced t
      else begin
        adopt_epoch t sb ~epoch:push_epoch;
        (* Replication traffic from the ruling primary is proof of life:
           restart the suspicion window so a member that just finished
           reconciling cannot fire on silence accumulated while it was
           still an ineligible learner. *)
        if push_epoch = t.epoch then sb.cn_last_heard <- Sim.Engine.now t.engine;
        (match snapshot_base with
        | Some base when base > sb.cn_version ->
          (* Snapshot install: replace the member's log wholesale. *)
          sb.cn_log <- Util.Vec.create ();
          sb.cn_log_base <- base;
          sb.cn_version <- base;
          sb.cn_acked <- min sb.cn_acked base
        | Some _ | None -> ());
        List.iter
          (fun (v, ws) ->
            if v = sb.cn_version + 1 then begin
              Util.Vec.push sb.cn_log ws;
              sb.cn_version <- v
            end)
          payload
      end;
      (* Ack leg: carries the member's log head and epoch back to the
         sender — also how a deposed primary first learns it lost. *)
      let acked = sb.cn_version and acked_epoch = sb.cn_epoch in
      Sim.Network.transfer t.network ~src:sb.cn_net ~dst:p.cn_net ~size_bytes:24;
      if not p.cn_crashed then begin
        if acked_epoch > p.cn_epoch then adopt_epoch t p ~epoch:acked_epoch;
        (* Apply the ack only if the member is still in the epoch that
           produced it: a reconciliation while the ack was in flight
           truncated the very entries it covers, and replaying the stale
           position would claim durability for log the member no longer
           holds. Within one epoch the assignment is absolute and
           self-correcting (the head can legitimately move backwards). *)
        if acked_epoch = sb.cn_epoch then begin
          sb.cn_acked <- acked;
          (* Any ack renews the voter lease; reaching the ruling head
             (re-)admits a learner to the voter set — the lease demotion
             heals itself through the ordinary catch-up path. *)
          sb.cn_last_ack <- Sim.Engine.now t.engine;
          if sb.cn_epoch = t.epoch && sb.cn_acked >= (primary_node t).cn_version then
            sb.cn_caught_up <- true
        end;
        Sim.Condition.broadcast t.repl_done
      end
    end;
    loop ()
  in
  loop ()

(* --- Quorum-intersecting elections ----------------------------------

   Promotion is decided by an explicit vote round, not by the suspecting
   standby alone (docs/PROTOCOL.md, "Control plane"). A candidate needs

     max( |voters| / 2 + 1,                          Raft majority
          standby_voters - ack_quorum + 1 )          quorum intersection

   votes for a bumped target epoch, where the voters are the caught-up
   members of the ruling epoch (learners excluded; the crashed primary
   still counts in the denominators — it just cannot grant, which only
   raises the bar). A voter refuses any candidate whose log head is
   behind its own, and grants at most one candidate per target epoch.

   Safety: a released version [v] was acknowledged by at least
   [ack_quorum] caught-up standbys before release ({!quorum_met}), and
   any member that became caught up later first acked the full log
   through [v]. A winning candidate collected grants from at least
   [standby_voters - ack_quorum + 1] standby voters, a set that
   intersects every [ack_quorum]-sized holder set — so some granting
   voter holds [v], and its grant proves the candidate's head is at
   least [v]. {!promote} then re-derives the epoch base from that head:
   no released version can be re-assigned, under any
   [Config.standby_ack_quorum]. The majority requirement additionally
   makes concurrent candidates for one target epoch mutually exclusive.

   Liveness: the old rank stagger survives as a {e candidacy} stagger —
   the best-replicated standby starts (and normally wins) the first
   round uncontested; a loser's next monitor tick simply runs a fresh
   round at a higher target. *)

let voting_member t n = n.cn_epoch = t.epoch && n.cn_caught_up

let votes_needed t =
  let voters = ref 0 and standby_voters = ref 0 in
  Array.iter
    (fun n ->
      if voting_member t n then begin
        incr voters;
        if n.cn_index <> t.primary then incr standby_voters
      end)
    t.nodes;
  let majority = (!voters / 2) + 1 in
  let q = t.cfg.Config.standby_ack_quorum in
  let q_eff = if q <= 0 then !standby_voters else min q !standby_voters in
  max majority (!standby_voters - q_eff + 1)

let note_vote_denial t =
  t.vote_denials <- t.vote_denials + 1;
  match t.metrics with Some m -> Metrics.note_vote_denial m | None -> ()

(* One vote round run by suspecting standby [k]. Ballots travel as
   fire-and-forget messages (a partitioned or crashed voter simply never
   answers); the candidate sleeps the election timeout, tallies, and
   promotes only if the grant set suffices {e and} the world did not
   move on — a revived primary, an adopted newer epoch or a concurrent
   winner all cancel the round. *)
let run_election t k =
  let sb = t.nodes.(k) in
  let pi = t.primary in
  (* The ballot must exceed not only every epoch but every ballot any
     member has voted in: a retry after a split or failed round gets a
     strictly fresher target, so stale self-votes can never pin the
     group at an unwinnable ballot. *)
  let target =
    1
    + Array.fold_left
        (fun acc n -> max acc (max n.cn_epoch n.cn_vote_epoch))
        t.epoch t.nodes
  in
  let my_version = sb.cn_version in
  t.elections <- t.elections + 1;
  (match t.metrics with Some m -> Metrics.note_election m | None -> ());
  (* The candidate votes for itself (and thereby refuses any concurrent
     candidate for the same target). *)
  sb.cn_vote_epoch <- target;
  sb.cn_vote_for <- k;
  let votes = ref 1 in
  Array.iter
    (fun m ->
      if m.cn_index <> k then
        Sim.Network.send t.network ~src:sb.cn_net ~dst:m.cn_net ~size_bytes:24 (fun () ->
            if not m.cn_crashed then begin
              let grant =
                voting_member t m && target > t.epoch
                && (target > m.cn_vote_epoch
                   || (target = m.cn_vote_epoch && m.cn_vote_for = k))
                && my_version >= m.cn_version
              in
              if grant then begin
                m.cn_vote_epoch <- target;
                m.cn_vote_for <- k;
                Sim.Network.send t.network ~src:m.cn_net ~dst:sb.cn_net ~size_bytes:16
                  (fun () -> if not sb.cn_crashed then incr votes)
              end
              else note_vote_denial t
            end))
    t.nodes;
  Sim.Process.sleep t.engine t.cfg.Config.cert_election_timeout_ms;
  if
    !votes >= votes_needed t
    && t.epoch < target && t.primary = pi
    && (not sb.cn_crashed)
    && sb.cn_epoch = t.epoch && sb.cn_caught_up
    && (t.nodes.(pi).cn_crashed
       || Sim.Engine.now t.engine -. sb.cn_last_heard > t.cfg.Config.cert_suspect_after_ms)
  then promote ~auto:true t k

(* The standby-side failure detector: ping the primary every
   [cert_heartbeat_ms]; the pong carries the primary's epoch. After
   [cert_suspect_after_ms] of silence plus a per-rank candidacy backoff
   (best replicated log first, index breaking ties), the standby starts
   a vote round. Only caught-up members of the ruling epoch are
   candidates: a member that has not reconciled could resurrect a dead
   history. *)
let promotion_rank t k =
  let sk = t.nodes.(k) in
  let r = ref 0 in
  Array.iter
    (fun n ->
      if
        n.cn_index <> k && eligible_standby t n
        && (n.cn_version > sk.cn_version
           || (n.cn_version = sk.cn_version && n.cn_index < k))
      then incr r)
    t.nodes;
  !r

let monitor t k =
  let sb = t.nodes.(k) in
  let rec loop () =
    Sim.Process.sleep t.engine t.cfg.Config.cert_heartbeat_ms;
    if t.primary = k || sb.cn_crashed then
      (* A primary does not monitor itself; a crashed member is blind.
         Keep the clock fresh so a later role change starts a new
         suspicion window instead of inheriting ancient silence. *)
      sb.cn_last_heard <- Sim.Engine.now t.engine
    else begin
      let pi = t.primary in
      let p = t.nodes.(pi) in
      Sim.Network.send t.network ~src:sb.cn_net ~dst:p.cn_net ~size_bytes:16 (fun () ->
          if not p.cn_crashed then begin
            let pong_epoch = p.cn_epoch in
            Sim.Network.send t.network ~src:p.cn_net ~dst:sb.cn_net ~size_bytes:16
              (fun () ->
                if not sb.cn_crashed then begin
                  sb.cn_last_heard <- Sim.Engine.now t.engine;
                  if pong_epoch > sb.cn_epoch then adopt_epoch t sb ~epoch:pong_epoch
                end)
          end);
      let now = Sim.Engine.now t.engine in
      let silence = now -. sb.cn_last_heard in
      let deadline =
        t.cfg.Config.cert_suspect_after_ms
        +. (float_of_int (promotion_rank t k) *. t.cfg.Config.promotion_backoff_ms)
      in
      if
        silence > deadline && t.primary = pi
        && (not sb.cn_crashed)
        && sb.cn_epoch = t.epoch && sb.cn_caught_up
      then run_election t k
    end;
    loop ()
  in
  loop ()

(* Primary-side voter lease (docs/PROTOCOL.md, "Control plane"): a voter
   that has stopped acknowledging replication while the primary has
   decisions outstanding is demoted to learner after
   [Config.voter_lease_ms] of ack silence, so a partitioned-but-alive
   voter stalls a [standby_ack_quorum = all] commit for at most one
   lease window instead of forever. Demotion shrinks durability breadth,
   never safety: {!votes_needed} is computed over the voter set as it
   stands, and the demoted member re-enters it through the ordinary
   learner catch-up path (its next ack run reaching the log head). *)
let lease_loop t =
  let lease = t.cfg.Config.voter_lease_ms in
  let rec loop () =
    Sim.Process.sleep t.engine (lease /. 4.0);
    let p = primary_node t in
    if not p.cn_crashed then begin
      let now = Sim.Engine.now t.engine in
      Array.iter
        (fun n ->
          if eligible_standby t n && n.cn_acked < p.cn_version
             && now -. n.cn_last_ack > lease
          then begin
            n.cn_caught_up <- false;
            t.lease_expiries <- t.lease_expiries + 1;
            (match t.metrics with Some m -> Metrics.note_lease_expiry m | None -> ());
            (* The quorum wait recomputes its need over the shrunken
               voter set: this is what unblocks the stalled release. *)
            Sim.Condition.broadcast t.repl_done
          end)
        t.nodes
    end;
    loop ()
  in
  loop ()

let create ?obs ?metrics ?intern engine cfg ~rng ~network ~mode =
  let t =
    {
      engine;
      cfg;
      rng;
      network;
      mode;
      obs;
      metrics;
      cpu = Sim.Resource.create engine ~servers:1;
      pending = Queue.create ();
      nodes =
        Array.init
          (cfg.Config.certifier_standbys + 1)
          (fun k ->
            {
              cn_index = k;
              cn_net = Config.node_cert_standby k;
              cn_version = 0;
              cn_log = Util.Vec.create ();
              cn_log_base = 0;
              cn_epoch = 0;
              cn_crashed = false;
              cn_acked = 0;
              cn_caught_up = true;
              cn_last_heard = Sim.Engine.now engine;
              cn_vote_epoch = 0;
              cn_vote_for = -1;
              cn_last_ack = Sim.Engine.now engine;
            });
      primary = 0;
      epoch = 0;
      epoch_base = 0;
      epoch_starts = [];
      index = Util.Tables.Itbl.create 4096;
      intern = (match intern with Some it -> it | None -> Storage.Intern.create ());
      watermarks = Itbl.create 16;
      last_heard = Itbl.create 16;
      evicted = Itbl.create 4;
      repair_seen = Itbl.create 16;
      subscribers = Itbl.create 16;
      live = Itbl.create 16;
      eager_pending = Itbl.create 64;
      revive = Sim.Condition.create engine;
      repl_wake = Sim.Condition.create engine;
      repl_done = Sim.Condition.create engine;
      failovers = 0;
      promotions = 0;
      fenced = 0;
      elections = 0;
      vote_denials = 0;
      lease_expiries = 0;
      commits = 0;
      aborts = 0;
      shed = 0;
      expired = 0;
      retransmits = 0;
      evictions = 0;
      faults = None;
    }
  in
  (* With no standbys nothing below spawns: zero extra processes, zero
     extra events, zero extra random draws — runs with
     [certifier_standbys = 0] are event-identical to the single-node
     certifier (pinned by the golden tests). *)
  if Array.length t.nodes > 1 then begin
    for k = 0 to Array.length t.nodes - 1 do
      Sim.Process.spawn engine (fun () -> pusher t k)
    done;
    if cfg.Config.reliable && cfg.Config.cert_heartbeat_ms > 0.0 then
      for k = 0 to Array.length t.nodes - 1 do
        Sim.Process.spawn engine (fun () -> monitor t k)
      done;
    if cfg.Config.reliable && cfg.Config.voter_lease_ms > 0.0 then
      Sim.Process.spawn engine (fun () -> lease_loop t)
  end;
  t

(* Quorum-gated durability: a batch's decisions are released only once
   the required number of caught-up standbys hold them. The wait also
   wakes on promotion, so a deposed primary's batch is not stuck behind
   acks that will never come — its decisions are then fenced or
   reconciled below. *)
let await_standby_quorum t ~me ~target =
  if Array.length t.nodes > 1 then begin
    Sim.Condition.broadcast t.repl_wake;
    Sim.Condition.await t.repl_done (fun () -> t.primary <> me || quorum_met t ~target)
  end

(* Certify one drained batch while holding the CPU. Members are processed
   in arrival order; the writeset log grows incrementally so later
   members are checked against earlier ones. The first member pays the
   fixed certification cost, subsequent members only their per-row scan
   (the single pass over the log is shared). Durability — the log force
   and the standby ack quorum — is paid once for the whole batch, after
   which one refresh message per replica carries every commit the
   replica did not originate. *)
let process_batch t batch =
  let batch_start = Sim.Engine.now t.engine in
  (match t.metrics with
  | Some m -> Metrics.note_cert_batch m ~size:(List.length batch)
  | None -> ());
  let me = t.primary in
  let p = t.nodes.(me) in
  let results =
    List.mapi
      (fun i r ->
        let rows = Storage.Writeset.cardinal r.req_ws in
        let cost =
          (if i = 0 then t.cfg.Config.certify_base_ms else 0.0)
          +. (float_of_int rows *. t.cfg.Config.certify_row_ms)
        in
        Sim.Process.sleep t.engine (service_time t cost);
        if r.req_snapshot < p.cn_log_base || conflicts_since t ~snapshot:r.req_snapshot r.req_ws
        then begin
          (* A snapshot older than the pruned log horizon cannot be
             checked and is conservatively aborted — in practice the
             horizon trails the slowest replica by [gc_window] versions,
             so this only hits pathologically old transactions. *)
          t.aborts <- t.aborts + 1;
          (r, None)
        end
        else begin
          p.cn_version <- p.cn_version + 1;
          Util.Vec.push p.cn_log r.req_ws;
          (* The index belongs to the ruling primary: a member deposed
             mid-batch keeps assigning versions on its own (doomed) log
             but must not pollute the rebuilt index. *)
          if t.primary = me then index_commit t r.req_ws p.cn_version;
          t.commits <- t.commits + 1;
          (r, Some p.cn_version)
        end)
      batch
  in
  let committed = List.filter_map (fun (r, v) -> Option.map (fun v -> (r, v)) v) results in
  (* Durable decisions before anyone learns about them: one log force
     plus the standby ack quorum per batch. *)
  if committed <> [] then begin
    Sim.Process.sleep t.engine (service_time t t.cfg.Config.durability_ms);
    await_standby_quorum t ~me ~target:p.cn_version
  end;
  Sim.Resource.release t.cpu;
  (match t.obs with
  | None -> ()
  | Some _ ->
    List.iter
      (fun (r, v) ->
        let queue_ms = batch_start -. r.req_arrival in
        let decision_args =
          match v with
          | None -> [ ("decision", "abort") ]
          | Some v -> [ ("decision", "commit"); ("version", string_of_int v) ]
        in
        Obs.Trace.finish_opt t.obs r.req_span
          ~args:(decision_args @ [ ("queue_ms", Printf.sprintf "%.3f" queue_ms) ]))
      results);
  (* Epoch fence on release: if a promotion happened while the batch was
     waiting on its quorum, only the members that made it into the new
     primary's history (version <= promotion point) are released as
     commits; the rest died with the old epoch and are aborted (and
     truncated from the deposed log at reconciliation). *)
  let deposed = t.primary <> me in
  let survives v = (not deposed) || v <= t.epoch_base in
  (* One refresh batch message per replica; each commit is withheld from
     its own origin (the origin installed the writeset locally at commit
     time). The refresh carries each committing transaction's trace id
     and the ruling epoch, so the remote applies land in the same trace
     and stale-epoch stragglers can be fenced at the replica. *)
  let refreshable = List.filter (fun (_, v) -> survives v) committed in
  if refreshable <> [] then begin
    let refresh_epoch = t.epoch and refresh_src = primary_net t in
    Itbl.iter
      (fun replica deliver ->
        if Itbl.mem t.live replica then begin
          let items =
            List.filter_map
              (fun (r, v) ->
                if r.req_origin <> replica then
                  Some (Option.map fst r.req_trace, v, r.req_ws)
                else None)
              refreshable
          in
          if items <> [] then begin
            let size_bytes =
              List.fold_left
                (fun acc (_, _, ws) -> acc + Storage.Codec.writeset_bytes ws)
                0 items
              + 64
            in
            Sim.Network.send t.network ~src:refresh_src ~dst:replica ~size_bytes
              (fun () -> deliver ~epoch:refresh_epoch items)
          end
        end)
      t.subscribers
  end;
  List.iter
    (fun (r, v) ->
      let decision =
        match v with
        | None -> Abort
        | Some v when not (survives v) ->
          (* Fenced: the decision was assigned by a deposed primary and
             never reached the quorum — it is not in the surviving
             history, so the client must retry against the new one. *)
          note_fenced t;
          t.commits <- t.commits - 1;
          t.aborts <- t.aborts + 1;
          Abort
        | Some v ->
          let global_commit =
            match t.mode with
            | Consistency.Eager ->
              let waiting_on = Itbl.create 8 in
              Itbl.iter (fun replica () -> Itbl.replace waiting_on replica ()) t.live;
              let done_ = Sim.Ivar.create t.engine in
              if Itbl.length waiting_on = 0 then Sim.Ivar.fill done_ ()
              else Itbl.replace t.eager_pending v { waiting_on; done_ };
              Some done_
            | Consistency.Coarse | Consistency.Fine | Consistency.Session
            | Consistency.Bounded _ -> None
          in
          Commit { version = v; epoch = t.epoch; global_commit }
      in
      Sim.Ivar.fill r.req_decided decision)
    results

let certify ?trace ?applied ?(deadline = infinity) t ~origin ~snapshot ~ws =
  let rows = Storage.Writeset.cardinal ws in
  (* Watermark piggyback: the origin's applied V_local rides on the
     certification request (no extra message, no virtual time). *)
  (match applied with
  | Some version -> observe_applied t ~replica:origin ~version
  | None -> ());
  (* Bounded backlog (Config.cert_queue_bound): a request arriving at a
     full pending queue is refused on the spot — no CPU queueing, no log
     work, no virtual time — so the backlog (and the latency it would
     add to every admitted request) stays bounded. Expired work is
     likewise dropped before it queues. Both answers happen strictly
     before any decision is made for the request, so a refused
     transaction can never also commit. *)
  let bound = t.cfg.Config.cert_queue_bound in
  if bound > 0 && Queue.length t.pending >= bound then begin
    t.shed <- t.shed + 1;
    Overloaded
  end
  else if Sim.Engine.now t.engine > deadline then begin
    t.expired <- t.expired + 1;
    Expired
  end
  else begin
  (* The service span covers outage queueing, CPU queueing and the
     certification work itself; [queue_ms] separates the wait. *)
  let span =
    match trace with
    | Some (trace_id, parent) ->
      Obs.Trace.start_opt t.obs ~trace_id ~parent ~component:Obs.Span.Certifier
        ~name:"certify"
        ~args:
          [
            ("origin", string_of_int origin);
            ("snapshot", string_of_int snapshot);
            ("rows", string_of_int rows);
            ("cert.index", Config.cert_index_name t.cfg.Config.cert_index);
          ]
        ()
    | None -> None
  in
  let arrival = Sim.Engine.now t.engine in
  (* During a certifier outage, requests queue until failover completes.
     The revive broadcast wakes the waiters in arrival order, so the
     queue drains into [pending] exactly as it formed. *)
  Sim.Condition.await t.revive (fun () -> not (primary_node t).cn_crashed);
  let request =
    {
      req_origin = origin;
      req_snapshot = snapshot;
      req_ws = ws;
      req_trace = trace;
      req_span = span;
      req_arrival = arrival;
      req_deadline = deadline;
      req_decided = Sim.Ivar.create t.engine;
    }
  in
  Queue.add request t.pending;
  (if bound > 0 then
     match t.metrics with
     | Some m -> Metrics.note_queue_depth m (Queue.length t.pending)
     | None -> ());
  Sim.Resource.acquire t.cpu;
  (* Group commit: the first undecided waiter to win the CPU is the
     leader; it drains up to [cert_batch] queued requests (its own is at
     the queue head) and decides them in one pass. Members wake from the
     CPU queue to find their decision already made and just hand the CPU
     on. With [cert_batch = 1] the leader drains exactly itself and the
     event sequence is identical to unbatched certification. *)
  if Sim.Ivar.is_filled request.req_decided then Sim.Resource.release t.cpu
  else begin
    let cap = max 1 t.cfg.Config.cert_batch in
    (* The leader's own request is at the queue head: [pending] order is
       CPU-queue order, and every request ahead of this one was drained
       (and decided) by an earlier leader. *)
    let head = Queue.pop t.pending in
    assert (head == request);
    let rec drain acc n =
      if n >= cap || Queue.is_empty t.pending then List.rev acc
      else drain (Queue.pop t.pending :: acc) (n + 1)
    in
    let batch = drain [ head ] 1 in
    (* Deadline propagation: a drained request whose deadline has passed
       while it queued is answered [Expired] here — before the conflict
       check, so it can never also commit — and drops out of the batch
       rather than consuming certification work. *)
    let now = Sim.Engine.now t.engine in
    let live, dead =
      List.partition (fun r -> r.req_deadline >= now) batch
    in
    List.iter
      (fun r ->
        t.expired <- t.expired + 1;
        Obs.Trace.finish_opt t.obs r.req_span
          ~args:[ ("decision", "expired") ];
        Sim.Ivar.fill r.req_decided Expired)
      dead;
    (match live with
    | [] -> Sim.Resource.release t.cpu
    | live -> process_batch t live)
  end;
  Sim.Ivar.read request.req_decided
  end

let ack t ~replica ~version =
  observe_applied t ~replica ~version;
  match Itbl.find_opt t.eager_pending version with
  | None -> ()
  | Some state ->
    Itbl.remove state.waiting_on replica;
    if Itbl.length state.waiting_on = 0 then begin
      Itbl.remove t.eager_pending version;
      Sim.Ivar.fill state.done_ ()
    end

let writesets_from t from =
  let p = primary_node t in
  if from < p.cn_log_base then None
  else begin
    let rec build v acc =
      if v <= from then acc else build (v - 1) ((v, log_entry_of p v) :: acc)
    in
    Some (build p.cn_version [])
  end

let prune t ~keep_after =
  (* Keep versions > keep_after, on every member. The horizon is clamped
     to the slowest non-crashed member's log head so a lagging standby
     can always be caught up from the retained log; a crashed member
     does not pin the horizon (it is reprovisioned by snapshot transfer
     on revival). *)
  let p = primary_node t in
  let keep_after =
    Array.fold_left
      (fun acc n -> if n.cn_crashed then acc else min acc n.cn_version)
      (min keep_after p.cn_version)
      t.nodes
  in
  if keep_after > p.cn_log_base then begin
    Array.iter
      (fun n ->
        if keep_after > n.cn_log_base && n.cn_version >= keep_after then begin
          let fresh = Util.Vec.create () in
          for v = keep_after + 1 to n.cn_version do
            Util.Vec.push fresh (log_entry_of n v)
          done;
          n.cn_log <- fresh;
          n.cn_log_base <- keep_after
        end)
      t.nodes;
    (* Index entries at or below the new horizon can never certify a
       conflict again: any request with snapshot < log_base is
       conservatively aborted before the check, and for snapshot ≥
       log_base ≥ v the comparison v > snapshot is false. *)
    Util.Tables.Itbl.filter_map_inplace
      (fun _ v -> if v <= keep_after then None else Some v)
      t.index
  end

(* Evict replicas that are down AND silent beyond [evict_after_ms] from
   the watermark table: a corpse's frozen watermark would otherwise pin
   [min_watermark] (session pruning) forever, and — were it still in the
   live set — the GC floor too. An evicted replica's position in the
   refresh stream is forgotten, so it must state-transfer on rejoin
   ({!needs_state_transfer}). Only non-live replicas are candidates: a
   live replica is heard from (heartbeats, acks, requests) and never
   goes silent for that long. *)
let evict_dead t =
  let horizon = t.cfg.Config.evict_after_ms in
  if horizon > 0.0 then begin
    let now = Sim.Engine.now t.engine in
    let victims =
      Itbl.fold
        (fun replica _w acc ->
          let heard = Option.value (Itbl.find_opt t.last_heard replica) ~default:0.0 in
          if (not (Itbl.mem t.live replica)) && now -. heard > horizon then
            replica :: acc
          else acc)
        t.watermarks []
    in
    List.iter
      (fun replica ->
        Itbl.remove t.watermarks replica;
        Itbl.replace t.evicted replica ();
        t.evictions <- t.evictions + 1)
      victims
  end

let needs_state_transfer t ~replica = Itbl.mem t.evicted replica

let evictions t = t.evictions

let gc t =
  (* Watermark-driven truncation: every live replica has applied
     everything ≤ the minimum watermark, so only [watermark_slack]
     versions below it are retained for in-flight stale snapshots.
     No live replicas (or none heard from) ⇒ no truncation. *)
  evict_dead t;
  match min_live_watermark t with
  | None -> ()
  | Some m -> prune t ~keep_after:(max 0 (m - t.cfg.Config.watermark_slack))

let crash t =
  if Array.length t.nodes = 1 then
    invalid_arg "Certifier.crash: no standby configured (the decision log would be lost)";
  (primary_node t).cn_crashed <- true

let is_crashed t = (primary_node t).cn_crashed

let revive_node t k =
  let n = t.nodes.(k) in
  if n.cn_crashed then begin
    n.cn_crashed <- false;
    n.cn_last_heard <- Sim.Engine.now t.engine;
    n.cn_last_ack <- Sim.Engine.now t.engine;
    if t.primary = k then
      (* The primary came back without a failover: resume the queue. *)
      Sim.Condition.broadcast t.revive
    else begin
      (* Rejoin as a standby: replication reconciles and catches it up. *)
      n.cn_caught_up <- false;
      Sim.Condition.broadcast t.repl_wake
    end
  end

let failover t =
  if not (is_crashed t) then invalid_arg "Certifier.failover: certifier is running";
  (* Promote the best standby: ruling-epoch members first (no released
     decision is lost — the ack quorum put every released decision on
     their logs), then highest replicated log, member index breaking
     ties. With no ruling-epoch member left, fall back to a stale-epoch
     member — reconciled against the current history first; decisions
     released while it was out of contact may be lost, which is the
     operator's explicit call (the automatic path never does this). The
     certification index is volatile soft state derived from the log —
     the promoted member rebuilds it from its replicated log copy, so
     recovery needs nothing beyond the state-machine replication already
     in place. *)
  let better n b =
    n.cn_epoch > b.cn_epoch
    || (n.cn_epoch = b.cn_epoch
       && (n.cn_version > b.cn_version
          || (n.cn_version = b.cn_version && n.cn_index < b.cn_index)))
  in
  let best = ref (-1) in
  Array.iter
    (fun n ->
      if n.cn_index <> t.primary && not n.cn_crashed then
        if !best < 0 || better n t.nodes.(!best) then best := n.cn_index)
    t.nodes;
  if !best < 0 then invalid_arg "Certifier.failover: no eligible standby";
  let n = t.nodes.(!best) in
  if n.cn_epoch < t.epoch then adopt_epoch t n ~epoch:t.epoch;
  promote t !best

let failovers t = t.failovers

let mark_down t ~replica =
  Itbl.remove t.live replica;
  (* Pending eager transactions stop waiting for the dead replica. *)
  let completed = ref [] in
  Itbl.iter
    (fun v state ->
      Itbl.remove state.waiting_on replica;
      if Itbl.length state.waiting_on = 0 then completed := (v, state) :: !completed)
    t.eager_pending;
  List.iter
    (fun (v, state) ->
      Itbl.remove t.eager_pending v;
      Sim.Ivar.fill state.done_ ())
    !completed

let mark_up ?applied t ~replica =
  if Itbl.mem t.subscribers replica then begin
    Itbl.replace t.live replica ();
    note_heard t replica;
    if Itbl.mem t.evicted replica then begin
      (* Rejoin after eviction: the replica re-enters the watermark table
         at its state-transferred applied version. Re-entering at 0 —
         the old behaviour — pinned the GC floor at the log base until
         the replica's next heartbeat happened to arrive. *)
      Itbl.remove t.evicted replica;
      Itbl.replace t.watermarks replica (Option.value applied ~default:0)
    end;
    match applied with
    | Some version -> observe_applied t ~replica ~version
    | None -> ()
  end

let is_marked_live t ~replica = Itbl.mem t.live replica

(* --- Refresh repair (reliable mode) ---------------------------------

   Refresh messages are fire-and-forget; under a lossy network a replica
   can lose a batch and wedge (its sequencer waits forever for the
   missing version). The repair tick detects stalled subscribers — live,
   behind the log head, and no watermark progress since the previous
   tick — and re-sends their un-acked log suffix. Receivers dedup by
   version, so over-delivery is harmless ({!Replica.receive_refresh_batch}).
   Repair streams carry the ruling epoch and originate from the current
   primary's endpoint, so a deposed primary's stragglers are fenced. *)

let repair_resend_cap = 64
let repair_catchup_cap = 256

let repair_tick t =
  if not (is_crashed t) then begin
    let p = primary_node t in
    let repair_epoch = t.epoch in
    Itbl.iter
      (fun replica deliver ->
        if Itbl.mem t.live replica then begin
          let w = watermark t ~replica in
          let stalled = Itbl.find_opt t.repair_seen replica = Some w in
          Itbl.replace t.repair_seen replica w;
          (* A replica more than one batch behind can never be healed by
             the live refresh stream (broadcasts only cover new versions),
             so stream its suffix on every tick instead of waiting for the
             watermark to stall, and in bigger batches. *)
          let deep = p.cn_version - w > repair_resend_cap in
          if (stalled || deep) && w < p.cn_version && w >= p.cn_log_base then
            match writesets_from t w with
            | None -> ()
            | Some items ->
              let rec take n = function
                | x :: rest when n > 0 -> x :: take (n - 1) rest
                | _ -> []
              in
              let items =
                take (if deep then repair_catchup_cap else repair_resend_cap) items
                |> List.map (fun (v, ws) -> (None, v, ws))
              in
              let size_bytes =
                List.fold_left
                  (fun acc (_, _, ws) -> acc + Storage.Codec.writeset_bytes ws)
                  0 items
                + 64
              in
              t.retransmits <- t.retransmits + 1;
              Sim.Network.send t.network ~src:p.cn_net ~dst:replica ~size_bytes
                (fun () -> deliver ~epoch:repair_epoch items)
        end)
      t.subscribers
  end

let retransmits t = t.retransmits

let decisions t = (t.commits, t.aborts)

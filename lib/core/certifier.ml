type eager_state = {
  waiting_on : (int, unit) Hashtbl.t;  (* replica ids that have not acked *)
  done_ : unit Sim.Ivar.t;
}

(* A standby certifier: a synchronously maintained copy of the decision
   log (the certifier is deterministic, so the log IS the state — the
   state-machine replication approach of §IV). *)
type standby = {
  mutable sb_version : int;
  mutable sb_log : Storage.Writeset.t Util.Vec.t;
  mutable sb_log_base : int;
}

type decision =
  | Commit of { version : int; global_commit : unit Sim.Ivar.t option }
  | Abort

(* One queued certification request. Requests enter [pending] in the same
   order their processes queue on the CPU (there is no suspension point
   between the two), so the queue head always belongs to the next waiter
   to acquire — the invariant group certification relies on. *)
type request = {
  req_origin : int;
  req_snapshot : int;
  req_ws : Storage.Writeset.t;
  req_trace : (int * Obs.Span.t option) option;
  req_span : Obs.Span.t option;
  req_arrival : float;
  req_decided : decision Sim.Ivar.t;
}

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  rng : Util.Rng.t;
  network : Sim.Network.t;
  mode : Consistency.mode;
  obs : Obs.Trace.t option;
  metrics : Metrics.t option;
  cpu : Sim.Resource.t;
  pending : request Queue.t;  (* undecided requests, CPU-queue order *)
  mutable version : int;
  mutable log : Storage.Writeset.t Util.Vec.t;  (* index i holds version log_base+i+1 *)
  mutable log_base : int;  (* all versions <= log_base have been pruned *)
  (* The certification index: (table, key) -> last committed version
     writing that record. Maintained only under [Config.Keyed]; covers
     exactly the retained log, i.e. every entry's version is in
     (log_base, version]. *)
  index : (string * Storage.Value.t array, int) Hashtbl.t;
  (* Highest version each subscribed replica reported applied — the
     piggybacked V_local watermarks driving log truncation ({!gc}). *)
  watermarks : (int, int) Hashtbl.t;
  (* Virtual time we last heard anything from each replica (request,
     ack, heartbeat, subscription) — drives eviction of corpses. *)
  last_heard : (int, float) Hashtbl.t;
  (* Replicas whose watermark entry was evicted; they must state-transfer
     on rejoin (the log may have been truncated past their position). *)
  evicted : (int, unit) Hashtbl.t;
  (* Last watermark the repair loop saw per replica: a lagging replica is
     only re-sent the un-acked suffix when it made no progress since the
     previous tick (progress means delivery is working). *)
  repair_seen : (int, int) Hashtbl.t;
  subscribers : (int, (int option * int * Storage.Writeset.t) list -> unit) Hashtbl.t;
  live : (int, unit) Hashtbl.t;
  eager_pending : (int, eager_state) Hashtbl.t;  (* keyed by version *)
  standbys : standby array;
  mutable crashed : bool;
  revive : Sim.Condition.t;
  mutable failovers : int;
  mutable commits : int;
  mutable aborts : int;
  mutable retransmits : int;
  mutable evictions : int;
  mutable faults : Sim.Faults.t option;  (* gray-failure slowdown windows *)
}

let create ?obs ?metrics engine cfg ~rng ~network ~mode =
  {
    engine;
    cfg;
    rng;
    network;
    mode;
    obs;
    metrics;
    cpu = Sim.Resource.create engine ~servers:1;
    pending = Queue.create ();
    version = 0;
    log = Util.Vec.create ();
    log_base = 0;
    index = Hashtbl.create 4096;
    watermarks = Hashtbl.create 16;
    last_heard = Hashtbl.create 16;
    evicted = Hashtbl.create 4;
    repair_seen = Hashtbl.create 16;
    subscribers = Hashtbl.create 16;
    live = Hashtbl.create 16;
    eager_pending = Hashtbl.create 64;
    standbys =
      Array.init cfg.Config.certifier_standbys (fun _ ->
          { sb_version = 0; sb_log = Util.Vec.create (); sb_log_base = 0 });
    crashed = false;
    revive = Sim.Condition.create engine;
    failovers = 0;
    commits = 0;
    aborts = 0;
    retransmits = 0;
    evictions = 0;
    faults = None;
  }

let note_heard t replica =
  Hashtbl.replace t.last_heard replica (Sim.Engine.now t.engine)

let subscribe t ~replica deliver =
  Hashtbl.replace t.subscribers replica deliver;
  Hashtbl.replace t.live replica ();
  note_heard t replica;
  if not (Hashtbl.mem t.watermarks replica) then Hashtbl.replace t.watermarks replica 0

let version t = t.version

let cpu t = t.cpu

let log_size t = t.version - t.log_base

let set_faults t faults = t.faults <- Some faults

let service_time t base =
  let base =
    if t.cfg.Config.service_jitter then base *. Util.Rng.exponential t.rng ~mean:1.0
    else base
  in
  match t.faults with
  | None -> base
  | Some f -> base *. Sim.Faults.slowdown f ~node:Config.node_certifier

let log_entry t v = Util.Vec.get t.log (v - t.log_base - 1)

(* The first-committer-wins check over (snapshot, version]. Both
   implementations return the same decision (pinned by golden and
   differential tests); [Keyed] is O(|writeset|) regardless of how far
   the snapshot lags, [Linear] is O(versions-behind × |writeset|).
   Because commits update log and index incrementally as a batch is
   certified, the check also catches intra-batch write-write conflicts:
   the later arrival sees the earlier member's freshly committed
   writeset and aborts, exactly as if the two had certified back to
   back. *)
let conflicts_since t ~snapshot ws =
  match t.cfg.Config.cert_index with
  | Config.Keyed ->
    (* Index invariant: for every (table, key) written by a retained log
       entry, [index] holds the *highest* committing version; a conflict
       exists iff some key of [ws] was last written after [snapshot].
       Entries at or below [snapshot] cannot conflict, and versions ≤
       log_base are pruned from the index only after the abort guard in
       [process_batch] has rejected snapshots below log_base. *)
    List.exists
      (fun e ->
        match
          Hashtbl.find_opt t.index (e.Storage.Writeset.ws_table, e.Storage.Writeset.ws_key)
        with
        | Some v -> v > snapshot
        | None -> false)
      (Storage.Writeset.entries ws)
  | Config.Linear ->
    let rec scan v =
      if v <= snapshot then false
      else if Storage.Writeset.conflicts ws (log_entry t v) then true
      else scan (v - 1)
    in
    scan t.version

let check_conflict t ~snapshot ~ws = conflicts_since t ~snapshot ws

(* Record a freshly committed writeset in the certification index. *)
let index_commit t ws version =
  if t.cfg.Config.cert_index = Config.Keyed then
    List.iter
      (fun e ->
        Hashtbl.replace t.index (e.Storage.Writeset.ws_table, e.Storage.Writeset.ws_key)
          version)
      (Storage.Writeset.entries ws)

(* Rebuild the index from a log segment (standby promotion): ascending
   replay leaves the highest writer per key, restoring the invariant. *)
let rebuild_index t ~base ~upto entry =
  Hashtbl.reset t.index;
  if t.cfg.Config.cert_index = Config.Keyed then
    for v = base + 1 to upto do
      List.iter
        (fun e ->
          Hashtbl.replace t.index (e.Storage.Writeset.ws_table, e.Storage.Writeset.ws_key) v)
        (Storage.Writeset.entries (entry v))
    done

let index_size t = Hashtbl.length t.index

(* --- Applied-version watermarks ------------------------------------

   Replicas piggyback their applied V_local on certification requests
   and on the per-version commit acks ({!ack}); the certifier keeps the
   highest value seen per replica. The minimum over *live* replicas is
   the principled truncation horizon: every live replica has applied
   everything at or below it, so only a slack for in-flight snapshots
   need be retained ({!gc}). The minimum over *all* subscribed replicas
   (crashed ones freeze their watermark, and V_local is durable across
   replica crashes) is a permanent lower bound on every replica's
   applied version — the load balancer uses it to drop session-version
   entries that can no longer cause a wait. *)

(* Watermarks are cumulative acknowledgements: a replica reporting
   applied version [v] has applied every version <= v, so any eager
   transaction still waiting on that replica for a version <= v is
   acknowledged too. Over the exactly-once network the sweep never finds
   anything (per-version acks arrive in order, before any watermark can
   overtake them); under message loss it is what lets a later heartbeat
   stand in for a lost ack instead of wedging the eager commit. *)
let sweep_eager t ~replica ~upto =
  if Hashtbl.length t.eager_pending > 0 then begin
    let completed = ref [] in
    Hashtbl.iter
      (fun v state ->
        if v <= upto && Hashtbl.mem state.waiting_on replica then begin
          Hashtbl.remove state.waiting_on replica;
          if Hashtbl.length state.waiting_on = 0 then completed := (v, state) :: !completed
        end)
      t.eager_pending;
    List.iter
      (fun (v, state) ->
        Hashtbl.remove t.eager_pending v;
        Sim.Ivar.fill state.done_ ())
      (List.sort compare !completed)
  end

let observe_applied t ~replica ~version =
  note_heard t replica;
  (match Hashtbl.find_opt t.watermarks replica with
  | Some w when w >= version -> ()
  | Some _ | None -> Hashtbl.replace t.watermarks replica version);
  sweep_eager t ~replica ~upto:version

let heartbeat t ~replica ~applied = observe_applied t ~replica ~version:applied

let watermark t ~replica = Option.value (Hashtbl.find_opt t.watermarks replica) ~default:0

let min_live_watermark t =
  if Hashtbl.length t.live = 0 then None
  else
    Some (Hashtbl.fold (fun replica () acc -> min acc (watermark t ~replica)) t.live max_int)

let min_watermark t =
  if Hashtbl.length t.watermarks = 0 then 0
  else Hashtbl.fold (fun _ w acc -> min acc w) t.watermarks max_int

(* Synchronously replicate freshly decided commits to every standby: one
   round trip carrying the whole batch, while the state copy itself is
   deterministic replay of the same decisions. *)
let replicate_to_standbys t committed =
  if Array.length t.standbys > 0 then begin
    let size_bytes =
      List.fold_left
        (fun acc (r, _) -> acc + Storage.Codec.writeset_bytes r.req_ws)
        0 committed
      + 32
    in
    let slowest =
      Array.fold_left
        (fun acc _ -> Float.max acc (2.0 *. Sim.Network.latency t.network ~size_bytes))
        0.0 t.standbys
    in
    Sim.Process.sleep t.engine slowest;
    Array.iter
      (fun sb ->
        List.iter
          (fun (r, v) ->
            assert (sb.sb_version = v - 1);
            Util.Vec.push sb.sb_log r.req_ws;
            sb.sb_version <- v)
          committed)
      t.standbys
  end

(* Certify one drained batch while holding the CPU. Members are processed
   in arrival order; the writeset log grows incrementally so later
   members are checked against earlier ones. The first member pays the
   fixed certification cost, subsequent members only their per-row scan
   (the single pass over the log is shared). Durability — the log force
   and the standby round trip — is paid once for the whole batch, after
   which one refresh message per replica carries every commit the
   replica did not originate. *)
let process_batch t batch =
  let batch_start = Sim.Engine.now t.engine in
  (match t.metrics with
  | Some m -> Metrics.note_cert_batch m ~size:(List.length batch)
  | None -> ());
  let results =
    List.mapi
      (fun i r ->
        let rows = Storage.Writeset.cardinal r.req_ws in
        let cost =
          (if i = 0 then t.cfg.Config.certify_base_ms else 0.0)
          +. (float_of_int rows *. t.cfg.Config.certify_row_ms)
        in
        Sim.Process.sleep t.engine (service_time t cost);
        if r.req_snapshot < t.log_base || conflicts_since t ~snapshot:r.req_snapshot r.req_ws
        then begin
          (* A snapshot older than the pruned log horizon cannot be
             checked and is conservatively aborted — in practice the
             horizon trails the slowest replica by [gc_window] versions,
             so this only hits pathologically old transactions. *)
          t.aborts <- t.aborts + 1;
          (r, None)
        end
        else begin
          t.version <- t.version + 1;
          Util.Vec.push t.log r.req_ws;
          index_commit t r.req_ws t.version;
          t.commits <- t.commits + 1;
          (r, Some t.version)
        end)
      batch
  in
  let committed = List.filter_map (fun (r, v) -> Option.map (fun v -> (r, v)) v) results in
  (* Durable decisions before anyone learns about them: one log force
     plus one synchronous standby round trip per batch. *)
  if committed <> [] then begin
    Sim.Process.sleep t.engine (service_time t t.cfg.Config.durability_ms);
    replicate_to_standbys t committed
  end;
  Sim.Resource.release t.cpu;
  List.iter
    (fun (r, v) ->
      let queue_ms = batch_start -. r.req_arrival in
      let decision_args =
        match v with
        | None -> [ ("decision", "abort") ]
        | Some v -> [ ("decision", "commit"); ("version", string_of_int v) ]
      in
      Obs.Trace.finish_opt t.obs r.req_span
        ~args:(decision_args @ [ ("queue_ms", Printf.sprintf "%.3f" queue_ms) ]))
    results;
  (* One refresh batch message per replica; each commit is withheld from
     its own origin (the origin installed the writeset locally at commit
     time). The refresh carries each committing transaction's trace id
     so the remote applies land in the same trace. *)
  if committed <> [] then
    Hashtbl.iter
      (fun replica deliver ->
        if Hashtbl.mem t.live replica then begin
          let items =
            List.filter_map
              (fun (r, v) ->
                if r.req_origin <> replica then
                  Some (Option.map fst r.req_trace, v, r.req_ws)
                else None)
              committed
          in
          if items <> [] then begin
            let size_bytes =
              List.fold_left
                (fun acc (_, _, ws) -> acc + Storage.Codec.writeset_bytes ws)
                0 items
              + 64
            in
            Sim.Network.send t.network ~src:Config.node_certifier ~dst:replica
              ~size_bytes (fun () -> deliver items)
          end
        end)
      t.subscribers;
  List.iter
    (fun (r, v) ->
      let decision =
        match v with
        | None -> Abort
        | Some v ->
          let global_commit =
            match t.mode with
            | Consistency.Eager ->
              let waiting_on = Hashtbl.create 8 in
              Hashtbl.iter (fun replica () -> Hashtbl.replace waiting_on replica ()) t.live;
              let done_ = Sim.Ivar.create t.engine in
              if Hashtbl.length waiting_on = 0 then Sim.Ivar.fill done_ ()
              else Hashtbl.replace t.eager_pending v { waiting_on; done_ };
              Some done_
            | Consistency.Coarse | Consistency.Fine | Consistency.Session
            | Consistency.Bounded _ -> None
          in
          Commit { version = v; global_commit }
      in
      Sim.Ivar.fill r.req_decided decision)
    results

let certify ?trace ?applied t ~origin ~snapshot ~ws =
  let rows = Storage.Writeset.cardinal ws in
  (* Watermark piggyback: the origin's applied V_local rides on the
     certification request (no extra message, no virtual time). *)
  (match applied with
  | Some version -> observe_applied t ~replica:origin ~version
  | None -> ());
  (* The service span covers outage queueing, CPU queueing and the
     certification work itself; [queue_ms] separates the wait. *)
  let span =
    match trace with
    | Some (trace_id, parent) ->
      Obs.Trace.start_opt t.obs ~trace_id ~parent ~component:Obs.Span.Certifier
        ~name:"certify"
        ~args:
          [
            ("origin", string_of_int origin);
            ("snapshot", string_of_int snapshot);
            ("rows", string_of_int rows);
            ("cert.index", Config.cert_index_name t.cfg.Config.cert_index);
          ]
        ()
    | None -> None
  in
  let arrival = Sim.Engine.now t.engine in
  (* During a certifier outage, requests queue until failover completes. *)
  Sim.Condition.await t.revive (fun () -> not t.crashed);
  let request =
    {
      req_origin = origin;
      req_snapshot = snapshot;
      req_ws = ws;
      req_trace = trace;
      req_span = span;
      req_arrival = arrival;
      req_decided = Sim.Ivar.create t.engine;
    }
  in
  Queue.add request t.pending;
  Sim.Resource.acquire t.cpu;
  (* Group commit: the first undecided waiter to win the CPU is the
     leader; it drains up to [cert_batch] queued requests (its own is at
     the queue head) and decides them in one pass. Members wake from the
     CPU queue to find their decision already made and just hand the CPU
     on. With [cert_batch = 1] the leader drains exactly itself and the
     event sequence is identical to unbatched certification. *)
  if Sim.Ivar.is_filled request.req_decided then Sim.Resource.release t.cpu
  else begin
    let cap = max 1 t.cfg.Config.cert_batch in
    (* The leader's own request is at the queue head: [pending] order is
       CPU-queue order, and every request ahead of this one was drained
       (and decided) by an earlier leader. *)
    let head = Queue.pop t.pending in
    assert (head == request);
    let rec drain acc n =
      if n >= cap || Queue.is_empty t.pending then List.rev acc
      else drain (Queue.pop t.pending :: acc) (n + 1)
    in
    process_batch t (drain [ head ] 1)
  end;
  Sim.Ivar.read request.req_decided

let ack t ~replica ~version =
  observe_applied t ~replica ~version;
  match Hashtbl.find_opt t.eager_pending version with
  | None -> ()
  | Some state ->
    Hashtbl.remove state.waiting_on replica;
    if Hashtbl.length state.waiting_on = 0 then begin
      Hashtbl.remove t.eager_pending version;
      Sim.Ivar.fill state.done_ ()
    end

let log_base t = t.log_base

let writesets_from t from =
  if from < t.log_base then None
  else begin
    let rec build v acc =
      if v <= from then acc else build (v - 1) ((v, log_entry t v) :: acc)
    in
    Some (build t.version [])
  end

let prune t ~keep_after =
  (* Keep versions > keep_after, on the primary and every standby. *)
  if keep_after > t.log_base then begin
    let keep_after = min keep_after t.version in
    let fresh = Util.Vec.create () in
    for v = keep_after + 1 to t.version do
      Util.Vec.push fresh (log_entry t v)
    done;
    t.log <- fresh;
    t.log_base <- keep_after;
    (* Index entries at or below the new horizon can never certify a
       conflict again: any request with snapshot < log_base is
       conservatively aborted before the check, and for snapshot ≥
       log_base ≥ v the comparison v > snapshot is false. *)
    Hashtbl.filter_map_inplace
      (fun _ v -> if v <= keep_after then None else Some v)
      t.index;
    Array.iter
      (fun sb ->
        if keep_after > sb.sb_log_base && sb.sb_version >= keep_after then begin
          let fresh = Util.Vec.create () in
          for v = keep_after + 1 to sb.sb_version do
            Util.Vec.push fresh (Util.Vec.get sb.sb_log (v - sb.sb_log_base - 1))
          done;
          sb.sb_log <- fresh;
          sb.sb_log_base <- keep_after
        end)
      t.standbys
  end

(* Evict replicas that are down AND silent beyond [evict_after_ms] from
   the watermark table: a corpse's frozen watermark would otherwise pin
   [min_watermark] (session pruning) forever, and — were it still in the
   live set — the GC floor too. An evicted replica's position in the
   refresh stream is forgotten, so it must state-transfer on rejoin
   ({!needs_state_transfer}). Only non-live replicas are candidates: a
   live replica is heard from (heartbeats, acks, requests) and never
   goes silent for that long. *)
let evict_dead t =
  let horizon = t.cfg.Config.evict_after_ms in
  if horizon > 0.0 then begin
    let now = Sim.Engine.now t.engine in
    let victims =
      Hashtbl.fold
        (fun replica _w acc ->
          let heard = Option.value (Hashtbl.find_opt t.last_heard replica) ~default:0.0 in
          if (not (Hashtbl.mem t.live replica)) && now -. heard > horizon then
            replica :: acc
          else acc)
        t.watermarks []
    in
    List.iter
      (fun replica ->
        Hashtbl.remove t.watermarks replica;
        Hashtbl.replace t.evicted replica ();
        t.evictions <- t.evictions + 1)
      victims
  end

let needs_state_transfer t ~replica = Hashtbl.mem t.evicted replica

let evictions t = t.evictions

let gc t =
  (* Watermark-driven truncation: every live replica has applied
     everything ≤ the minimum watermark, so only [watermark_slack]
     versions below it are retained for in-flight stale snapshots.
     No live replicas (or none heard from) ⇒ no truncation. *)
  evict_dead t;
  match min_live_watermark t with
  | None -> ()
  | Some m -> prune t ~keep_after:(max 0 (m - t.cfg.Config.watermark_slack))

let crash t =
  if Array.length t.standbys = 0 then
    invalid_arg "Certifier.crash: no standby configured (the decision log would be lost)";
  t.crashed <- true

let is_crashed t = t.crashed

let failover t =
  if not t.crashed then invalid_arg "Certifier.failover: certifier is running";
  (* Promote standby 0: its log is a synchronous copy, so no committed
     decision is lost (§IV: durability of decisions). The certification
     index is volatile soft state derived from the log — the promoted
     standby rebuilds it from its replicated log copy, so recovery needs
     nothing beyond the state-machine replication already in place. *)
  let sb = t.standbys.(0) in
  assert (sb.sb_version = t.version);  (* synchronous replication invariant *)
  rebuild_index t ~base:sb.sb_log_base ~upto:sb.sb_version (fun v ->
      Util.Vec.get sb.sb_log (v - sb.sb_log_base - 1));
  t.failovers <- t.failovers + 1;
  t.crashed <- false;
  Sim.Condition.broadcast t.revive

let failovers t = t.failovers

let mark_down t ~replica =
  Hashtbl.remove t.live replica;
  (* Pending eager transactions stop waiting for the dead replica. *)
  let completed = ref [] in
  Hashtbl.iter
    (fun v state ->
      Hashtbl.remove state.waiting_on replica;
      if Hashtbl.length state.waiting_on = 0 then completed := (v, state) :: !completed)
    t.eager_pending;
  List.iter
    (fun (v, state) ->
      Hashtbl.remove t.eager_pending v;
      Sim.Ivar.fill state.done_ ())
    !completed

let mark_up ?applied t ~replica =
  if Hashtbl.mem t.subscribers replica then begin
    Hashtbl.replace t.live replica ();
    note_heard t replica;
    if Hashtbl.mem t.evicted replica then begin
      (* Rejoin after eviction: the replica re-enters the watermark table
         at its (state-transferred) applied version. *)
      Hashtbl.remove t.evicted replica;
      Hashtbl.replace t.watermarks replica 0
    end;
    match applied with
    | Some version -> observe_applied t ~replica ~version
    | None -> ()
  end

let is_marked_live t ~replica = Hashtbl.mem t.live replica

(* --- Refresh repair (reliable mode) ---------------------------------

   Refresh messages are fire-and-forget; under a lossy network a replica
   can lose a batch and wedge (its sequencer waits forever for the
   missing version). The repair tick detects stalled subscribers — live,
   behind the log head, and no watermark progress since the previous
   tick — and re-sends their un-acked log suffix. Receivers dedup by
   version, so over-delivery is harmless ({!Replica.receive_refresh_batch}). *)

let repair_resend_cap = 64
let repair_catchup_cap = 256

let repair_tick t =
  if not t.crashed then
    Hashtbl.iter
      (fun replica deliver ->
        if Hashtbl.mem t.live replica then begin
          let w = watermark t ~replica in
          let stalled = Hashtbl.find_opt t.repair_seen replica = Some w in
          Hashtbl.replace t.repair_seen replica w;
          (* A replica more than one batch behind can never be healed by
             the live refresh stream (broadcasts only cover new versions),
             so stream its suffix on every tick instead of waiting for the
             watermark to stall, and in bigger batches. *)
          let deep = t.version - w > repair_resend_cap in
          if (stalled || deep) && w < t.version && w >= t.log_base then
            match writesets_from t w with
            | None -> ()
            | Some items ->
              let rec take n = function
                | x :: rest when n > 0 -> x :: take (n - 1) rest
                | _ -> []
              in
              let items =
                take (if deep then repair_catchup_cap else repair_resend_cap) items
                |> List.map (fun (v, ws) -> (None, v, ws))
              in
              let size_bytes =
                List.fold_left
                  (fun acc (_, _, ws) -> acc + Storage.Codec.writeset_bytes ws)
                  0 items
                + 64
              in
              t.retransmits <- t.retransmits + 1;
              Sim.Network.send t.network ~src:Config.node_certifier ~dst:replica
                ~size_bytes (fun () -> deliver items)
        end)
      t.subscribers

let retransmits t = t.retransmits

let decisions t = (t.commits, t.aborts)

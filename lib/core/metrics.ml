module Stbl = Util.Tables.Stbl

type stage = Version | Queries | Certify | Sync | Commit | Global

let stage_index = function
  | Version -> 0
  | Queries -> 1
  | Certify -> 2
  | Sync -> 3
  | Commit -> 4
  | Global -> 5

let stage_count = 6

let stage_name = function
  | Version -> "version"
  | Queries -> "queries"
  | Certify -> "certify"
  | Sync -> "sync"
  | Commit -> "commit"
  | Global -> "global"

let stages = [ Version; Queries; Certify; Sync; Commit; Global ]

type t = {
  engine : Sim.Engine.t;
  mutable window_start : float;
  mutable committed : int;
  mutable updates : int;
  mutable aborted : int;
  mutable retry_exhausted : int;
  (* overload protection (docs/PROTOCOL.md, "Overload & admission
     control") *)
  mutable shed : int;
  mutable retry_budget_exhausted : int;
  mutable deadline_expired : int;
  mutable max_queue_depth : int;
  response : Util.Stats.t;
  stage_sums : float array;  (* over all committed txns *)
  stage_sums_update : float array;  (* over update txns only *)
  (* pipeline batching: certifier group sizes and replica apply groups *)
  mutable cert_batches : int;
  mutable cert_batched_txns : int;
  mutable apply_groups : int;
  mutable apply_group_txns : int;
  mutable apply_group_lanes : int;
  (* per-reason abort breakdown (keys are Transaction.abort_slug values) *)
  aborts_by_reason : int Stbl.t;
  (* fault-injection and hardened-layer counters *)
  mutable fault_drops : int;
  mutable fault_duplicates : int;
  mutable fault_delays : int;
  mutable retransmits : int;
  mutable suspects : int;
  mutable failovers : int;
  (* certifier high availability *)
  mutable promotions : int;
  mutable fenced : int;
  outage_windows : Util.Stats.t;  (* commit-outage span per promotion, ms *)
  (* consensus-grade control plane *)
  mutable elections : int;
  mutable vote_denials : int;
  mutable lease_expiries : int;
  mutable lb_takeovers : int;
  (* per-read-tier breakdown (docs/CONSISTENCY.md): keyed by
     Consistency.tier_slug; populated only for read-only commits, so it
     stays empty in runs that never commit a read *)
  tiers : tier_stat Stbl.t;
  (* per-outcome observer (the run-health observatory); None = zero cost *)
  mutable observer : (outcome -> unit) option;
  (* consistency health gauges, refreshed by the cluster's gauge pass *)
  mutable health : health option;
}

and tier_stat = {
  mutable tier_n : int;
  tier_response : Util.Stats.t;
  tier_staleness : Util.Stats.t;  (* V_system - snapshot at response *)
}

and outcome = {
  out_committed : bool;
  out_read_only : bool;
  out_response_ms : float;
  out_stages : float array;
  out_tier : string;  (* Consistency.tier_slug; "strong" for updates *)
  out_staleness : int;  (* versions behind V_system at response; reads only *)
}

and health = {
  lag_max : float;
  cert_log : int;
  watermark_horizon : int;
  epoch : int;
}

let create engine =
  {
    engine;
    window_start = Sim.Engine.now engine;
    committed = 0;
    updates = 0;
    aborted = 0;
    retry_exhausted = 0;
    shed = 0;
    retry_budget_exhausted = 0;
    deadline_expired = 0;
    max_queue_depth = 0;
    response = Util.Stats.create ();
    stage_sums = Array.make stage_count 0.0;
    stage_sums_update = Array.make stage_count 0.0;
    cert_batches = 0;
    cert_batched_txns = 0;
    apply_groups = 0;
    apply_group_txns = 0;
    apply_group_lanes = 0;
    aborts_by_reason = Stbl.create 8;
    fault_drops = 0;
    fault_duplicates = 0;
    fault_delays = 0;
    retransmits = 0;
    suspects = 0;
    failovers = 0;
    promotions = 0;
    fenced = 0;
    outage_windows = Util.Stats.create ();
    elections = 0;
    vote_denials = 0;
    lease_expiries = 0;
    lb_takeovers = 0;
    tiers = Stbl.create 4;
    observer = None;
    health = None;
  }

let set_observer t obs = t.observer <- obs

let set_health t ~lag_max ~cert_log ~watermark_horizon ~epoch =
  t.health <- Some { lag_max; cert_log; watermark_horizon; epoch }

let health t = t.health

let reset_window t =
  t.window_start <- Sim.Engine.now t.engine;
  t.committed <- 0;
  t.updates <- 0;
  t.aborted <- 0;
  t.retry_exhausted <- 0;
  t.shed <- 0;
  t.retry_budget_exhausted <- 0;
  t.deadline_expired <- 0;
  t.max_queue_depth <- 0;
  Util.Stats.clear t.response;
  Array.fill t.stage_sums 0 stage_count 0.0;
  Array.fill t.stage_sums_update 0 stage_count 0.0;
  t.cert_batches <- 0;
  t.cert_batched_txns <- 0;
  t.apply_groups <- 0;
  t.apply_group_txns <- 0;
  t.apply_group_lanes <- 0;
  Stbl.reset t.aborts_by_reason;
  t.fault_drops <- 0;
  t.fault_duplicates <- 0;
  t.fault_delays <- 0;
  t.retransmits <- 0;
  t.suspects <- 0;
  t.failovers <- 0;
  t.promotions <- 0;
  t.fenced <- 0;
  Util.Stats.clear t.outage_windows;
  t.elections <- 0;
  t.vote_denials <- 0;
  t.lease_expiries <- 0;
  t.lb_takeovers <- 0;
  Stbl.reset t.tiers

let note_cert_batch t ~size =
  t.cert_batches <- t.cert_batches + 1;
  t.cert_batched_txns <- t.cert_batched_txns + size

let note_apply_group t ~size ~lanes =
  t.apply_groups <- t.apply_groups + 1;
  t.apply_group_txns <- t.apply_group_txns + size;
  t.apply_group_lanes <- t.apply_group_lanes + lanes

let cert_batches t = t.cert_batches

let mean_cert_batch t =
  if t.cert_batches = 0 then 0.0
  else float_of_int t.cert_batched_txns /. float_of_int t.cert_batches

let apply_groups t = t.apply_groups

let mean_apply_group t =
  if t.apply_groups = 0 then 0.0
  else float_of_int t.apply_group_txns /. float_of_int t.apply_groups

let mean_apply_lanes t =
  if t.apply_groups = 0 then 0.0
  else float_of_int t.apply_group_lanes /. float_of_int t.apply_groups

(* --- The per-transaction stage clock -------------------------------

   One recorder drives both consumers of stage timing: the aggregate
   stage sums above and, when tracing is enabled, per-stage trace spans.
   [Cluster.submit] marks stage transitions once; there is no parallel
   bookkeeping channel. *)

type txn = {
  m : t;
  obs : Obs.Trace.t option;
  trace_id : int option;
  root : Obs.Span.t option;
  begin_time : float;
  values : float array;
  mutable component : Obs.Span.component;
  (* The open stage, flattened into parallel fields: stage transitions
     run six times per transaction, and a boxed (stage, start, span)
     tuple per transition was measurable allocator traffic. *)
  mutable open_stage : stage option;
  mutable open_start : float;
  mutable open_span : Obs.Span.t option;
}

let txn_begin ?obs ?(sid = 0) ~name t =
  let trace_id = Option.map Obs.Trace.next_trace_id obs in
  let root =
    match (obs, trace_id) with
    | Some tr, Some id ->
      Some
        (Obs.Trace.start tr ~trace_id:id ~component:(Obs.Span.Client sid) ~name
           ~args:[ ("session", string_of_int sid) ]
           ())
    | _ -> None
  in
  {
    m = t;
    obs;
    trace_id;
    root;
    begin_time = Sim.Engine.now t.engine;
    values = Array.make stage_count 0.0;
    component = Obs.Span.Client sid;
    open_stage = None;
    open_start = 0.0;
    open_span = None;
  }

let txn_trace_id txn = txn.trace_id

let txn_root_span txn = txn.root

let txn_stages txn = txn.values

let txn_locate txn ~replica = txn.component <- Obs.Span.Replica replica

let now_of txn = Sim.Engine.now txn.m.engine

let txn_response_ms txn = now_of txn -. txn.begin_time

let stage_enter ?at txn stage =
  assert (txn.open_stage = None);
  let start = match at with Some time -> time | None -> now_of txn in
  let span =
    match (txn.obs, txn.trace_id) with
    | Some tr, Some trace_id ->
      Some
        (Obs.Trace.start tr ~trace_id ?parent:txn.root ~at:start
           ~component:txn.component ~name:(stage_name stage) ())
    | _ -> None
  in
  txn.open_stage <- Some stage;
  txn.open_start <- start;
  txn.open_span <- span

let stage_exit ?at txn stage =
  match txn.open_stage with
  | None -> invalid_arg "Metrics.stage_exit: no open stage"
  | Some open_stage ->
    if open_stage <> stage then invalid_arg "Metrics.stage_exit: stage mismatch";
    let stop = match at with Some time -> time | None -> now_of txn in
    txn.values.(stage_index stage) <-
      txn.values.(stage_index stage) +. (stop -. txn.open_start);
    (match (txn.obs, txn.open_span) with
    | Some tr, Some span -> Obs.Trace.finish tr ~at:stop span
    | _ -> ());
    txn.open_stage <- None;
    txn.open_span <- None

let close_open_stage txn =
  match txn.open_stage with
  | Some stage -> stage_exit txn stage
  | None -> ()

let tier_stat t slug =
  match Stbl.find_opt t.tiers slug with
  | Some s -> s
  | None ->
    let s =
      { tier_n = 0; tier_response = Util.Stats.create (); tier_staleness = Util.Stats.create () }
    in
    Stbl.replace t.tiers slug s;
    s

let record_commit ?(tier = "strong") ?(staleness = 0) t ~read_only ~stages ~response_ms =
  t.committed <- t.committed + 1;
  Util.Stats.add t.response response_ms;
  Array.iteri (fun i v -> t.stage_sums.(i) <- t.stage_sums.(i) +. v) stages;
  if not read_only then begin
    t.updates <- t.updates + 1;
    Array.iteri (fun i v -> t.stage_sums_update.(i) <- t.stage_sums_update.(i) +. v) stages
  end
  else begin
    let s = tier_stat t tier in
    s.tier_n <- s.tier_n + 1;
    Util.Stats.add s.tier_response response_ms;
    Util.Stats.add s.tier_staleness (float_of_int staleness)
  end

let record_abort ?slug t =
  t.aborted <- t.aborted + 1;
  match slug with
  | None -> ()
  | Some slug ->
    let n = Option.value ~default:0 (Stbl.find_opt t.aborts_by_reason slug) in
    Stbl.replace t.aborts_by_reason slug (n + 1)

let aborts_by_reason t =
  Stbl.fold (fun k v acc -> (k, v) :: acc) t.aborts_by_reason []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare (b : int) a with 0 -> compare ka kb | c -> c)

let note_fault t kind =
  match kind with
  | `Drop -> t.fault_drops <- t.fault_drops + 1
  | `Duplicate -> t.fault_duplicates <- t.fault_duplicates + 1
  | `Delay -> t.fault_delays <- t.fault_delays + 1

let note_retransmits t n = t.retransmits <- t.retransmits + n

let note_suspect t = t.suspects <- t.suspects + 1

let note_failover t = t.failovers <- t.failovers + 1

let note_promotion t ~outage_ms =
  t.promotions <- t.promotions + 1;
  Util.Stats.add t.outage_windows outage_ms

let note_fenced t = t.fenced <- t.fenced + 1

let note_election t = t.elections <- t.elections + 1

let note_vote_denial t = t.vote_denials <- t.vote_denials + 1

let note_lease_expiry t = t.lease_expiries <- t.lease_expiries + 1

let note_lb_takeover t = t.lb_takeovers <- t.lb_takeovers + 1

let promotions t = t.promotions
let fenced t = t.fenced
let elections t = t.elections
let vote_denials t = t.vote_denials
let lease_expiries t = t.lease_expiries
let lb_takeovers t = t.lb_takeovers
let outage_windows t = t.outage_windows
let outage_max_ms t = Util.Stats.max_value t.outage_windows

let fault_drops t = t.fault_drops
let fault_duplicates t = t.fault_duplicates
let fault_delays t = t.fault_delays
let retransmits t = t.retransmits
let suspects t = t.suspects
let failovers t = t.failovers

let notify ?(tier = "strong") ?(staleness = 0) txn ~committed ~read_only =
  match txn.m.observer with
  | None -> ()
  | Some f ->
    f
      {
        out_committed = committed;
        out_read_only = read_only;
        out_response_ms = txn_response_ms txn;
        out_stages = txn.values;
        out_tier = tier;
        out_staleness = staleness;
      }

let txn_commit ?(args = []) ?(tier = "strong") ?(staleness = 0) txn ~read_only =
  close_open_stage txn;
  record_commit txn.m ~tier ~staleness ~read_only ~stages:txn.values
    ~response_ms:(txn_response_ms txn);
  notify txn ~tier ~staleness ~committed:true ~read_only;
  match (txn.obs, txn.root) with
  | Some tr, Some root ->
    Obs.Trace.finish tr root
      ~args:(("outcome", if read_only then "committed_ro" else "committed") :: args)
  | _ -> ()

let txn_abort ?slug txn ~reason =
  close_open_stage txn;
  record_abort ?slug txn.m;
  notify txn ~committed:false ~read_only:false;
  match (txn.obs, txn.root) with
  | Some tr, Some root ->
    Obs.Trace.finish tr root ~args:[ ("outcome", "aborted"); ("reason", reason) ]
  | _ -> ()

let record_retry_exhausted t = t.retry_exhausted <- t.retry_exhausted + 1

let record_shed t = t.shed <- t.shed + 1

let record_retry_budget_exhausted t =
  t.retry_budget_exhausted <- t.retry_budget_exhausted + 1

let record_deadline_expired t = t.deadline_expired <- t.deadline_expired + 1

let note_queue_depth t depth =
  if depth > t.max_queue_depth then t.max_queue_depth <- depth

let shed t = t.shed

let retry_budget_exhausted t = t.retry_budget_exhausted

let deadline_expired t = t.deadline_expired

let max_queue_depth t = t.max_queue_depth

let window_ms t = Sim.Engine.now t.engine -. t.window_start

let committed t = t.committed

let aborted t = t.aborted

let retry_exhausted t = t.retry_exhausted

let throughput_tps t =
  let ms = window_ms t in
  if ms <= 0.0 then 0.0 else float_of_int t.committed /. (ms /. 1000.0)

let mean_response_ms t = Util.Stats.mean t.response

let percentile_response_ms t p = Util.Stats.percentile t.response p

let mean_stage_ms t stage =
  if t.committed = 0 then 0.0
  else t.stage_sums.(stage_index stage) /. float_of_int t.committed

let mean_stage_update_ms t stage =
  if t.updates = 0 then 0.0
  else t.stage_sums_update.(stage_index stage) /. float_of_int t.updates

let sync_delay_ms t = mean_stage_ms t Version +. mean_stage_update_ms t Global

let abort_rate t =
  let total = t.committed + t.aborted in
  if total = 0 then 0.0 else float_of_int t.aborted /. float_of_int total

(* --- Per-read-tier breakdown ---------------------------------------- *)

let tier_slugs t =
  Stbl.fold (fun k _ acc -> k :: acc) t.tiers [] |> List.sort compare

let tier_committed t slug =
  match Stbl.find_opt t.tiers slug with Some s -> s.tier_n | None -> 0

let tier_mean_response_ms t slug =
  match Stbl.find_opt t.tiers slug with
  | Some s -> Util.Stats.mean s.tier_response
  | None -> 0.0

let tier_percentile_response_ms t slug p =
  match Stbl.find_opt t.tiers slug with
  | Some s -> Util.Stats.percentile s.tier_response p
  | None -> 0.0

let tier_mean_staleness t slug =
  match Stbl.find_opt t.tiers slug with
  | Some s -> Util.Stats.mean s.tier_staleness
  | None -> 0.0

let tier_max_staleness t slug =
  match Stbl.find_opt t.tiers slug with
  | Some s -> Util.Stats.max_value s.tier_staleness
  | None -> 0.0

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>window %.0fms: %d committed (%.1f TPS), %d aborted (%.1f%%), %d gave up@,\
     response mean %.2fms p50 %.2fms p99 %.2fms@,"
    (window_ms t) t.committed (throughput_tps t) t.aborted (100.0 *. abort_rate t)
    t.retry_exhausted (mean_response_ms t) (percentile_response_ms t 50.0)
    (percentile_response_ms t 99.0);
  List.iter
    (fun s -> Format.fprintf ppf "%8s %.3fms@," (stage_name s) (mean_stage_ms t s))
    stages;
  (match aborts_by_reason t with
  | [] -> ()
  | reasons ->
    Format.fprintf ppf "aborts:";
    List.iter (fun (slug, n) -> Format.fprintf ppf " %s=%d" slug n) reasons;
    Format.fprintf ppf "@,");
  if
    t.fault_drops + t.fault_duplicates + t.fault_delays + t.retransmits + t.suspects
    + t.failovers
    > 0
  then
    Format.fprintf ppf
      "faults: drops=%d dups=%d delays=%d retransmits=%d suspects=%d failovers=%d@,"
      t.fault_drops t.fault_duplicates t.fault_delays t.retransmits t.suspects
      t.failovers;
  if t.promotions + t.fenced > 0 then
    Format.fprintf ppf
      "certifier HA: promotions=%d fenced=%d outage mean=%.1fms max=%.1fms@,"
      t.promotions t.fenced
      (Util.Stats.mean t.outage_windows)
      (Util.Stats.max_value t.outage_windows);
  if t.elections + t.vote_denials + t.lease_expiries + t.lb_takeovers > 0 then
    Format.fprintf ppf
      "control plane: elections=%d vote_denials=%d lease_expiries=%d lb_takeovers=%d@,"
      t.elections t.vote_denials t.lease_expiries t.lb_takeovers;
  if t.shed + t.retry_budget_exhausted + t.deadline_expired + t.max_queue_depth > 0 then
    Format.fprintf ppf
      "overload: shed=%d retry_budget_exhausted=%d deadline_expired=%d max_queue=%d@,"
      t.shed t.retry_budget_exhausted t.deadline_expired t.max_queue_depth;
  (* The tier table always carries read-only commits under "strong";
     print the breakdown only once a weaker class shows up, so runs
     without tiered traffic keep the classic summary. *)
  if List.exists (fun slug -> slug <> "strong") (tier_slugs t) then
    List.iter
      (fun slug ->
        Format.fprintf ppf
          "tier %-8s %6d reads, response mean %.2fms p95 %.2fms, staleness mean %.1f max %.0f@,"
          slug (tier_committed t slug) (tier_mean_response_ms t slug)
          (tier_percentile_response_ms t slug 95.0)
          (tier_mean_staleness t slug) (tier_max_staleness t slug))
      (tier_slugs t);
  (match t.health with
  | None -> ()
  | Some h ->
    Format.fprintf ppf
      "health: lag.max=%.0f cert.log=%d watermark.horizon=%d epoch=%d@," h.lag_max
      h.cert_log h.watermark_horizon h.epoch);
  Format.fprintf ppf "@]"

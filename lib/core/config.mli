(** Load-balancer routing policies (the paper uses least-active; the
    others exist for the ablation benchmarks). *)
type routing =
  | Least_active
  | Round_robin
  | Random_replica
  | Session_affinity
      (** pin each session to a replica (hash of the session id);
          falls back to least-active when the pinned replica is down *)

(** How the certifier evaluates the first-committer-wins check (see
    docs/PROTOCOL.md, "Certification index and watermark GC"). Both
    implementations produce exactly the same commit/abort decisions and
    version assignments — the choice only moves host (wall-clock) work,
    never virtual time. *)
type cert_index =
  | Linear
      (** scan the writeset log over (snapshot, V]: O(versions-behind ×
          |writeset|) per request. The paper's formulation; retained as
          the differential-testing oracle for [Keyed]. *)
  | Keyed
      (** probe a hash index [(table, key) → last committed version]:
          O(|writeset|) per request regardless of snapshot age. *)

val cert_index_name : cert_index -> string

(** Cluster and cost-model parameters.

    All times are milliseconds of virtual time. Service times are scaled
    by an exponential(1) factor when [service_jitter] is set, giving
    M/M/k-style queueing variance — the source of the "slowest replica"
    effect that penalizes the eager configuration. *)

type t = {
  seed : int;
  replicas : int;
  cpus_per_replica : int;
  (* network *)
  net_base_ms : float;
  net_jitter_ms : float;
  net_bandwidth_mbps : float;
  (* load balancer *)
  lb_ms : float;  (** per-message processing *)
  (* statement execution on a replica *)
  stmt_base_ms : float;  (** fixed per-statement overhead *)
  row_scan_ms : float;  (** per row examined *)
  row_read_ms : float;  (** per row returned *)
  row_write_ms : float;  (** per row buffered for write *)
  (* commit processing *)
  ro_commit_ms : float;  (** read-only local commit *)
  commit_ms : float;  (** update local commit *)
  ws_apply_base_ms : float;  (** refresh transaction fixed cost *)
  ws_apply_row_ms : float;  (** refresh cost per writeset row *)
  (* certifier *)
  certify_base_ms : float;
  certify_row_ms : float;  (** per writeset row conflict-checked *)
  durability_ms : float;  (** forcing the certifier log *)
  cert_batch : int;
      (** group certification: the maximum number of queued certification
          requests decided in one batch. The certifier drains its backlog
          (up to this cap) each time its CPU frees up, certifies the
          batch in one pass over the writeset log — intra-batch
          write-write conflicts abort the later arrival — assigns a
          contiguous version range, forces the log {e once} per batch,
          replicates to the standbys in one round trip and propagates one
          refresh batch message per replica. 1 (the default) reproduces
          unbatched certification exactly: every event, sleep and random
          draw is the same as before batching existed. *)
  cert_index : cert_index;
      (** conflict-check implementation; {!Keyed} (the default) and
          {!Linear} are decision-identical (pinned by golden and
          property tests), so this knob only trades host CPU. *)
  certifier_standbys : int;
      (** replicas of the certifier state machine (§IV fault-tolerance).
          Each commit decision is synchronously replicated to every
          standby before the originating replica learns it, adding one
          network round trip; a standby can then take over after a
          certifier crash with no lost decisions. 0 = single certifier. *)
  standby_ack_quorum : int;
      (** standby acknowledgements a commit batch waits for before its
          decisions are released (docs/PROTOCOL.md, "Certifier HA").
          [<= 0] (the default) means {e all} standbys. Any setting is
          safe: elections intersect the write quorum (a candidate needs
          votes from enough voters that at least one holds every
          released decision — see docs/PROTOCOL.md, "Control plane"),
          so smaller quorums trade durability breadth for release
          latency without risking a released decision. Clamped to the
          number of live standbys. *)
  cert_heartbeat_ms : float;
      (** certifier-group heartbeat period: each standby pings the
          primary and the pong carries the primary's epoch and log head.
          Active only under [reliable] with [certifier_standbys > 0];
          0 disables automatic failover (manual {!Certifier.failover}
          still works). *)
  cert_suspect_after_ms : float;
      (** silence from the primary before a standby suspects it and arms
          promotion *)
  promotion_backoff_ms : float;
      (** per-rank {e candidacy} stagger: the standby with the [n]-th
          best (highest) replicated log waits [n * promotion_backoff_ms]
          beyond the suspicion timeout before starting a vote round, so
          the best-replicated standby usually runs (and wins) the first
          election uncontested. Purely a liveness optimisation — safety
          comes from the vote rule, not the stagger. *)
  apply_parallelism : int;
      (** conflict-aware parallel refresh application: the maximum number
          of concurrent apply lanes a replica's commit sequencer forks
          for a run of consecutive queued refresh writesets. The run is
          partitioned by conflict key ({!Storage.Writeset.keys}):
          writesets sharing a key stay in one lane and apply in version
          order; disjoint lanes apply concurrently on the replica CPUs.
          [V_local] is published only when the whole run is installed, so
          snapshot semantics and the version arithmetic of Table I are
          unchanged. 1 (the default) keeps the strictly serial
          one-version-at-a-time sequencer, bit-identical to the
          pre-batching behaviour. *)
  (* transient replica slowdowns (checkpoints, cache misses, OS noise):
     each replica independently enters a slow window in which its service
     times are multiplied by [hiccup_factor]. The eager configuration is
     exposed to the slowest replica on every commit round; lazy
     configurations mostly absorb these windows. *)
  hiccup_interval_ms : float;  (** mean time between windows; 0 disables *)
  hiccup_duration_ms : float;  (** mean window length *)
  hiccup_factor : float;  (** service-time multiplier while slow *)
  (* behaviour *)
  service_jitter : bool;
  early_certification : bool;
      (** check update statements against pending refresh writesets and
          abort on conflict before reaching the certifier (§IV, hidden
          deadlock avoidance). Off = conflicts surface at certification. *)
  routing : routing;
  max_retries : int;  (** client-side retries after an abort *)
  record_log : bool;  (** keep per-transaction {!Check.Runlog.record}s *)
  gc_interval_ms : float;  (** MVCC vacuum period; 0 disables *)
  gc_window : int;
      (** versions each replica's MVCC vacuum keeps behind its own
          applied version (bounds snapshot age for live readers) *)
  watermark_slack : int;
      (** versions the certifier retains below the minimum live-replica
          applied watermark when truncating its log and key index
          ({!Certifier.gc}); the slack keeps certification of
          slightly-stale snapshots checkable and bounds how soon a
          briefly-lagging replica is forced into state transfer *)
  (* fault tolerance under a lossy network (docs/FAULTS.md). Every knob
     below defaults so that behaviour without a fault plan is
     event-identical to the exactly-once protocol. *)
  retry_backoff_ms : float;
      (** client retry backoff base: after the [n]-th abort the client
          sleeps [base * 2^n] ms (capped at [retry_backoff_max_ms]) with
          ±50% jitter before retrying. 0 (the default) retries
          immediately and draws no random numbers, preserving golden
          behaviour. *)
  retry_backoff_max_ms : float;  (** backoff cap *)
  reliable : bool;
      (** master switch for the hardened message layer: sequence-numbered
          idempotent refresh delivery with certifier repair
          (retransmission of the un-acked suffix), applied-watermark acks
          and heartbeats carried over the (lossy) network, the
          load-balancer failure detector, and bounded retransmission with
          timeout aborts on the request legs of a transaction. Off (the
          default), none of that machinery sends a single message. *)
  rto_ms : float;
      (** retransmission timeout of the stop-and-wait message exchanges *)
  max_retransmits : int;
      (** attempts before a request leg gives up with a {!Transaction.Timeout}
          abort (response legs retransmit until healed — they carry
          decisions that must not be lost) *)
  retransmit_ms : float;
      (** certifier repair interval: how often it rescans per-replica
          applied watermarks and re-sends the un-acked refresh suffix to
          replicas that made no progress; 0 disables *)
  heartbeat_ms : float;
      (** replica heartbeat period (to LB and certifier, piggybacking the
          applied version); 0 disables *)
  suspect_after_ms : float;
      (** LB failure detector: silence before a replica is marked suspect
          (deprioritized for routing; un-suspected on any contact) *)
  dead_after_ms : float;
      (** silence before the detector declares a replica dead: the LB
          stops routing to it and the certifier removes it from the live
          set (its watermark no longer gates eager commit or log GC) *)
  evict_after_ms : float;
      (** silence before the certifier evicts a dead replica's watermark
          entirely so log/index GC cannot stall behind a corpse; an
          evicted replica must state-transfer on rejoin; 0 disables *)
  start_wait_timeout_ms : float;
      (** bound on waiting for a replica to catch up to a transaction's
          start version; on expiry the transaction aborts with
          {!Transaction.Timeout} and the client retries elsewhere.
          0 (the default) waits forever. *)
  (* run-health observatory (docs/OBSERVABILITY.md). Both knobs are
     read only when the observatory is started; a run without one does
     not allocate a single observatory object. *)
  obs_window_ms : float;
      (** time-series window span in virtual ms ({!Obs.Timeseries});
          every windowed rate, latency summary and health gauge is
          aggregated per window of this size *)
  obs_hist_buckets_per_decade : int;
      (** resolution of the observatory's log-bucketed latency
          histograms ({!Util.Histogram.Log}): relative quantile error is
          bounded by [10^(1/(2n)) - 1] (~2.9% at the default 40) *)
  (* mixed-consistency read tiers (docs/CONSISTENCY.md). Off by
     default: with [read_tiers = false] every request runs under the
     cluster's write mode and the tier machinery allocates nothing —
     runs are bit-identical to a build without it. *)
  read_tiers : bool;
      (** accept non-[Strong] {!Consistency.read_tier} requests: the
          load balancer tracks per-replica applied watermarks and a
          [V_system] history for ms-bounds, routes tiered reads by
          staleness instead of the version oracle, widens session-floor
          maintenance to all modes (causal reads need it outside
          [Session] mode), and the observatory exports per-tier
          channels. Off, a non-[Strong] request is still honoured but
          routed like any other — enable this to get the contracts. *)
  tier_history_ms : float;
      (** how much [V_system] history (time, version) the load balancer
          retains for resolving [Bounded_staleness ms] floors; bounds
          admissible ms-staleness requests (older cutoffs round {e up}
          to the oldest retained version — conservative, never violating
          the bound) *)
  (* consensus-grade control plane (docs/PROTOCOL.md, "Control plane").
     All three knob groups default so that control-plane-off runs are
     event-identical to builds without them: elections only replace the
     (reliable-mode) self-promotion path that already existed, the voter
     lease is off at 0, and the standby LB is off. *)
  cert_election_timeout_ms : float;
      (** how long a candidate collects votes before tallying: a
          suspicion-armed standby requests votes from every group
          member, sleeps this long, and promotes only if it gathered a
          quorum-intersecting majority (see docs/PROTOCOL.md). Must be
          > 0 when [certifier_standbys > 0]. *)
  voter_lease_ms : float;
      (** voter liveness lease: a standby that has not acknowledged
          replication for this long while the primary has decisions
          outstanding is demoted to learner and leaves the ack quorum,
          bounding the [standby_ack_quorum = all] commit stall under a
          partitioned-but-alive voter to one lease window. The demoted
          member is re-admitted by the existing learner→voter
          reconciliation path as soon as its acks catch back up.
          0 (the default) disables demotion — a partitioned voter then
          stalls quorum=all commits until it heals. *)
  lb_standby : bool;
      (** run a standby load balancer ({!node_lb_standby}): the active
          LB pushes its routing state ([V_system], certifier epoch,
          session floors, applied watermarks, tier-history base) to the
          standby every [lb_repl_ms]; the standby takes over after
          [lb_suspect_after_ms] of push silence, conservatively
          reconstructing floors from live replicas so read-your-writes
          and bounded-staleness guarantees survive the takeover. The
          deposed LB is fenced by the LB epoch. Off (the default) the
          cluster runs the classic singleton LB and allocates none of
          this. *)
  lb_repl_ms : float;  (** LB state-push (and heartbeat) period *)
  lb_suspect_after_ms : float;
      (** push silence before the standby LB deposes the active one and
          takes over; must exceed [lb_repl_ms] *)
  (* overload protection (docs/PROTOCOL.md, "Overload & admission
     control"). Every knob defaults {e off}: an unprotected run draws no
     extra random numbers and schedules no extra events, so it is
     bit-identical to a build without the overload machinery. Rejected
     work aborts with {!Transaction.Overloaded} before consuming any
     replica or certifier resources. *)
  admission_limit : int;
      (** load-balancer concurrency cap: maximum transactions admitted
          and not yet answered. At the cap every new arrival is shed;
          {e strong} (potentially-writing) requests are shed earlier —
          from 7/8 of the cap — so weak-tier reads degrade last
          (priority shedding). 0 (the default) = unbounded. *)
  admission_rate_tps : float;
      (** token-bucket admission rate at the load balancer, in admitted
          transactions per virtual second; refilled lazily on arrival
          (no timer events). Weak-tier reads need 1 token; strong
          requests are shed while the bucket holds less than 1 +
          [admission_burst / 4] tokens, reserving headroom for reads.
          0 (the default) disables the bucket. *)
  admission_burst : float;
      (** token-bucket capacity (maximum burst admitted at line rate);
          must be >= 1 when [admission_rate_tps > 0] *)
  cert_queue_bound : int;
      (** bound on the certifier's pending-request backlog: a
          certification request arriving when this many are already
          queued is refused ([Transaction.Overloaded]) without touching
          the certifier CPU or log. 0 (the default) = unbounded. *)
  apply_lag_gap : int;
      (** apply-lag governor: writes are refused at admission while the
          minimum live-replica applied watermark trails the system
          version by more than this many versions — back-pressure that
          keeps refresh queues from growing without bound while reads
          (which need no certification) continue. Must stay below
          [watermark_slack]. 0 (the default) disables the governor. *)
  shed_retry_after_ms : float;
      (** base retry-after hint carried on [Transaction.Overloaded]
          aborts; the apply-lag governor scales it by how far the lag
          exceeds the gap *)
  retry_budget : float;
      (** per-client retry token bucket capacity: every retry (conflict
          {e and} transient) spends one token; a client with an empty
          bucket gives the transaction up instead of retrying, capping
          aggregate retry amplification during overload. Refills at
          [retry_budget_per_s]. 0 (the default) = unlimited retries
          (PR 4 behaviour). *)
  retry_budget_per_s : float;
      (** retry tokens returned per virtual second (lazy refill — no
          timer events); must be > 0 when [retry_budget > 0] *)
  deadline_ms : float;
      (** per-attempt client deadline carried on every request: each
          stage (start-version wait, execution, certification) drops the
          work as soon as the deadline has passed instead of processing
          it, aborting with {!Transaction.Timeout} and counting
          [deadline_expired]. Deadlines are only checked {e before} the
          certifier decides, so an expired transaction can never be
          silently committed. 0 (the default) = no deadline. *)
}

(** {2 Fault-plan node ids}

    Node ids used to tag cluster traffic for {!Sim.Faults} link rules
    and partitions: replicas are their index ([0 .. replicas-1]); the
    singleton roles get fixed negative ids. *)

val node_client : int

val node_lb : int

val node_certifier : int

val node_cert_standby : int -> int
(** Network id of certifier-group member [k]: member 0 (the initial
    primary) is {!node_certifier}; standby [k >= 1] gets its own fixed
    negative id so fault plans can cut it off individually. *)

val node_lb_standby : int
(** Network id of the standby load balancer ([lb_standby = true]), so
    fault plans can crash or partition either LB instance on its own. *)

val default : t
(** 8 replicas, 2 CPUs each, LAN latencies, service times calibrated so
    that the replica CPUs (not the certifier) are the bottleneck. *)

val tpcw : t
(** {!default} with statement/commit/apply costs scaled to 2008-era
    complex-query executions (several ms per statement), so that the
    paper's client populations saturate the replicas. The refresh-apply
    cost is ~0.3–0.4x of full execution, which reproduces the paper's
    7x / 5x / 3x scaling for the browsing / shopping / ordering mixes
    (adding replicas adds refresh work proportional to the update
    fraction). *)

val batched : t -> t
(** The batched-pipeline variant of a configuration: [cert_batch = 8]
    and [apply_parallelism = cpus_per_replica]. Used by the batched
    experiment sweeps ([repro batch]); see docs/TUNING.md for the
    measured effect of each knob. *)

val hardened : t -> t
(** The fault-tolerant variant of a configuration: [reliable = true],
    [start_wait_timeout_ms = 300], [retry_backoff_ms = 0.5]. This is the
    configuration the chaos harness ([repro chaos]) runs under; see
    docs/FAULTS.md. *)

val validate : t -> (unit, string) result
(** Reject nonsensical settings with a human-readable reason instead of
    silently clamping or failing at runtime: an ack quorum larger than
    the standby count (no commit could ever release), zero or negative
    lease/heartbeat/election intervals, a standby-LB suspicion window
    that does not exceed the push period. {!Cluster.create} runs this
    and raises [Invalid_argument] on [Error]; the CLI surfaces the
    message as a clean usage error. *)

val pp : Format.formatter -> t -> unit

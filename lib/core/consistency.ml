type mode =
  | Eager
  | Coarse
  | Fine
  | Session
  | Bounded of int

let all = [ Eager; Coarse; Fine; Session ]

let is_strong = function
  | Eager | Coarse | Fine -> true
  | Session -> false
  | Bounded k -> k = 0

let to_string = function
  | Eager -> "eager"
  | Coarse -> "coarse"
  | Fine -> "fine"
  | Session -> "session"
  | Bounded k -> Printf.sprintf "bounded:%d" k

let of_string s =
  match String.lowercase_ascii s with
  | "eager" | "esc" -> Ok Eager
  | "coarse" | "lsc" -> Ok Coarse
  | "fine" | "lfc" -> Ok Fine
  | "session" | "sc" -> Ok Session
  | other -> (
    match String.index_opt other ':' with
    | Some i when String.sub other 0 i = "bounded" -> (
      let rest = String.sub other (i + 1) (String.length other - i - 1) in
      match int_of_string_opt rest with
      | Some k when k >= 0 -> Ok (Bounded k)
      | Some _ | None -> Error (Printf.sprintf "bad staleness bound in %S" s))
    | Some _ | None -> Error (Printf.sprintf "unknown consistency mode %S" s))

let pp ppf mode = Format.pp_print_string ppf (to_string mode)

type read_tier =
  | Strong
  | Bounded_staleness of {
      versions : int option;
      ms : float option;
    }
  | Causal
  | Eventual

let tier_slug = function
  | Strong -> "strong"
  | Bounded_staleness _ -> "bounded"
  | Causal -> "causal"
  | Eventual -> "eventual"

let all_tier_slugs = [ "strong"; "bounded"; "causal"; "eventual" ]

let tier_to_string = function
  | Strong -> "strong"
  | Bounded_staleness { versions; ms } -> (
    match (versions, ms) with
    | Some k, None -> Printf.sprintf "bounded:%d" k
    | None, Some m -> Printf.sprintf "bounded:%gms" m
    | Some k, Some m -> Printf.sprintf "bounded:%d,%gms" k m
    | None, None -> "bounded")
  | Causal -> "causal"
  | Eventual -> "eventual"

let tier_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let parse_bound rest =
    (* "K", "Mms", or "K,Mms" *)
    let parse_one part =
      let n = String.length part in
      if n > 2 && String.sub part (n - 2) 2 = "ms" then
        match float_of_string_opt (String.sub part 0 (n - 2)) with
        | Some m when m >= 0.0 -> Ok (`Ms m)
        | Some _ | None -> Error (Printf.sprintf "bad ms bound in %S" s)
      else
        match int_of_string_opt part with
        | Some k when k >= 0 -> Ok (`Versions k)
        | Some _ | None -> Error (Printf.sprintf "bad version bound in %S" s)
    in
    let parts = String.split_on_char ',' rest in
    let rec fold versions ms = function
      | [] -> (
        match (versions, ms) with
        | None, None -> Error (Printf.sprintf "empty staleness bound in %S" s)
        | _ -> Ok (Bounded_staleness { versions; ms }))
      | p :: tl -> (
        match parse_one p with
        | Ok (`Versions k) -> fold (Some k) ms tl
        | Ok (`Ms m) -> fold versions (Some m) tl
        | Error e -> Error e)
    in
    fold None None parts
  in
  match s with
  | "strong" -> Ok Strong
  | "causal" -> Ok Causal
  | "eventual" -> Ok Eventual
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "bounded" ->
      parse_bound (String.sub s (i + 1) (String.length s - i - 1))
    | Some _ | None -> Error (Printf.sprintf "unknown read tier %S" s))

let pp_tier ppf t = Format.pp_print_string ppf (tier_to_string t)

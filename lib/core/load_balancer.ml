type t = {
  cfg : Config.t;
  mode : Consistency.mode;
  rng : Util.Rng.t;
  active : int array;
  live : bool array;
  mutable next_rr : int;
  mutable v_system : int;
  table_versions : (string, int) Hashtbl.t;
  session_versions : (int, int) Hashtbl.t;
}

let create ?rng cfg ~mode =
  {
    cfg;
    mode;
    rng = (match rng with Some r -> r | None -> Util.Rng.create cfg.Config.seed);
    active = Array.make cfg.Config.replicas 0;
    live = Array.make cfg.Config.replicas true;
    next_rr = 0;
    v_system = 0;
    table_versions = Hashtbl.create 64;
    session_versions = Hashtbl.create 256;
  }

let mode t = t.mode

let least_active t =
  let best = ref (-1) in
  for i = 0 to Array.length t.active - 1 do
    if t.live.(i) && (!best < 0 || t.active.(i) < t.active.(!best)) then best := i
  done;
  !best

let round_robin t =
  let n = Array.length t.active in
  let rec probe tries =
    if tries >= n then -1
    else begin
      let i = t.next_rr mod n in
      t.next_rr <- t.next_rr + 1;
      if t.live.(i) then i else probe (tries + 1)
    end
  in
  probe 0

let random_replica t =
  let n = Array.length t.active in
  let rec probe tries =
    if tries >= 4 * n then least_active t  (* all-dead guard handled below *)
    else begin
      let i = Util.Rng.int t.rng n in
      if t.live.(i) then i else probe (tries + 1)
    end
  in
  probe 0

let choose_replica t ~sid =
  let chosen =
    match t.cfg.Config.routing with
    | Config.Least_active -> least_active t
    | Config.Round_robin -> round_robin t
    | Config.Random_replica -> random_replica t
    | Config.Session_affinity ->
      let n = Array.length t.active in
      let pinned = ((sid * 2654435761) lxor (sid lsr 5)) land max_int mod n in
      if t.live.(pinned) then pinned else least_active t
  in
  if chosen < 0 then failwith "Load_balancer.choose_replica: no live replica";
  chosen

let note_dispatch t ~replica = t.active.(replica) <- t.active.(replica) + 1

let note_complete t ~replica =
  t.active.(replica) <- t.active.(replica) - 1;
  assert (t.active.(replica) >= 0)

let active t ~replica = t.active.(replica)

let set_live t ~replica flag = t.live.(replica) <- flag

let is_live t ~replica = t.live.(replica)

let table_version t name = Option.value (Hashtbl.find_opt t.table_versions name) ~default:0

let session_version t ~sid = Option.value (Hashtbl.find_opt t.session_versions sid) ~default:0

let start_version t ~sid ~table_set =
  match t.mode with
  | Consistency.Eager -> 0
  | Consistency.Coarse -> t.v_system
  | Consistency.Fine ->
    List.fold_left (fun acc table -> max acc (table_version t table)) 0 table_set
  | Consistency.Session -> session_version t ~sid
  | Consistency.Bounded k -> max 0 (t.v_system - k)

let note_commit_ack t ~sid ~version ~tables_written =
  if version > t.v_system then t.v_system <- version;
  List.iter
    (fun table ->
      if version > table_version t table then Hashtbl.replace t.table_versions table version)
    tables_written;
  if version > session_version t ~sid then Hashtbl.replace t.session_versions sid version

let v_system t = t.v_system

let session_count t = Hashtbl.length t.session_versions

let prune_sessions t ~applied_min =
  (* An entry <= the cluster-wide minimum applied version buys nothing:
     every replica already satisfies the wait it would impose, and
     [session_version]'s default of 0 gives the same answer once the
     entry is gone. Dropping it re-bounds the table to the set of
     sessions that committed above the watermark. *)
  Hashtbl.filter_map_inplace
    (fun _sid version -> if version <= applied_min then None else Some version)
    t.session_versions

type status = Alive | Suspect | Dead

type t = {
  cfg : Config.t;
  mode : Consistency.mode;
  rng : Util.Rng.t;
  active : int array;
  live : bool array;
  (* heartbeat failure detector (docs/FAULTS.md): [health] overlays the
     manual [live] switch and only ever changes via [note_contact] /
     [sweep], so it stays all-[Alive] — and invisible — unless the
     cluster runs the detector. *)
  health : status array;
  last_contact : float array;
  mutable suspect_events : int;
  mutable failover_events : int;
  mutable next_rr : int;
  mutable v_system : int;
  mutable cert_epoch : int;  (* highest certifier epoch seen on an ack *)
  mutable cert_fenced : int;  (* acks observed carrying a stale epoch *)
  table_versions : int Util.Tables.Stbl.t;
  session_versions : int Util.Tables.Itbl.t;
  (* read tiers (docs/CONSISTENCY.md): last applied version each replica
     reported (piggybacked on responses and heartbeats — a lower bound
     on its true progress), and, when [read_tiers] is on, a newest-first
     [V_system] history for resolving ms-staleness floors. [vs_base] is
     the newest version pruned out of the history: any cutoff older than
     the retained window resolves to it, rounding the floor up. *)
  applied : int array;
  mutable vs_history : (float * int) list;
  mutable vs_len : int;
  mutable vs_base : int;
  (* LB failover (docs/PROTOCOL.md, "Control plane"): floor installed by
     a takeover. Session floors replicated to a standby may lag the
     active LB by up to one push period, so a fresh active conservatively
     raises {e every} session's floor to the reconstructed system floor —
     read-your-writes survives the lost tail. 0 (never taken over) is
     invisible: [max 0 v = v]. *)
  mutable floor_min : int;
  (* overload admission (docs/PROTOCOL.md, "Overload & admission
     control"): transactions admitted and not yet answered, plus the
     lazily-refilled admission token bucket. Per-instance, like the
     active counts — a fresh active after a takeover starts empty. *)
  mutable admitted : int;
  mutable adm_tokens : float;
  mutable adm_last_ms : float;
}

let create ?rng cfg ~mode =
  {
    cfg;
    mode;
    rng = (match rng with Some r -> r | None -> Util.Rng.create cfg.Config.seed);
    active = Array.make cfg.Config.replicas 0;
    live = Array.make cfg.Config.replicas true;
    health = Array.make cfg.Config.replicas Alive;
    last_contact = Array.make cfg.Config.replicas 0.0;
    suspect_events = 0;
    failover_events = 0;
    next_rr = 0;
    v_system = 0;
    cert_epoch = 0;
    cert_fenced = 0;
    table_versions = Util.Tables.Stbl.create 64;
    session_versions = Util.Tables.Itbl.create 256;
    applied = Array.make cfg.Config.replicas 0;
    vs_history = [];
    vs_len = 0;
    vs_base = 0;
    floor_min = 0;
    admitted = 0;
    adm_tokens = cfg.Config.admission_burst;
    adm_last_ms = 0.0;
  }

let mode t = t.mode

let least_active t ok =
  let best = ref (-1) in
  for i = 0 to Array.length t.active - 1 do
    if ok i && (!best < 0 || t.active.(i) < t.active.(!best)) then best := i
  done;
  !best

let round_robin t ok =
  let n = Array.length t.active in
  let rec probe tries =
    if tries >= n then -1
    else begin
      let i = t.next_rr mod n in
      t.next_rr <- t.next_rr + 1;
      if ok i then i else probe (tries + 1)
    end
  in
  probe 0

let random_replica t ok =
  let n = Array.length t.active in
  let rec probe tries =
    if tries >= 4 * n then least_active t ok  (* all-dead guard handled below *)
    else begin
      let i = Util.Rng.int t.rng n in
      if ok i then i else probe (tries + 1)
    end
  in
  probe 0

let pick t ~sid ok =
  match t.cfg.Config.routing with
  | Config.Least_active -> least_active t ok
  | Config.Round_robin -> round_robin t ok
  | Config.Random_replica -> random_replica t ok
  | Config.Session_affinity ->
    let n = Array.length t.active in
    let pinned = ((sid * 2654435761) lxor (sid lsr 5)) land max_int mod n in
    if ok pinned then pinned else least_active t ok

let choose_replica t ~sid =
  (* Route around detector state in tiers: prefer replicas the detector
     trusts, fall back to suspects, and only then to detector-dead (the
     detector can be wrong — e.g. a partition local to the LB — but the
     manual [live] switch cannot). In a run without the detector every
     replica is [Alive] and the first tier reproduces the original
     routing exactly. *)
  let healthy i = t.live.(i) && t.health.(i) = Alive in
  let not_dead i = t.live.(i) && t.health.(i) <> Dead in
  let any_live i = t.live.(i) in
  let chosen =
    let c = pick t ~sid healthy in
    if c >= 0 then c
    else
      let c = pick t ~sid not_dead in
      if c >= 0 then c else pick t ~sid any_live
  in
  if chosen < 0 then failwith "Load_balancer.choose_replica: no live replica";
  chosen

(* --- Failure detector ----------------------------------------------- *)

let note_contact t ~replica ~now =
  if now > t.last_contact.(replica) then t.last_contact.(replica) <- now;
  t.health.(replica) <- Alive

let sweep t ~now =
  let suspect_after = t.cfg.Config.suspect_after_ms in
  let dead_after = t.cfg.Config.dead_after_ms in
  for i = 0 to Array.length t.health - 1 do
    let silence = now -. t.last_contact.(i) in
    if dead_after > 0.0 && silence >= dead_after then begin
      if t.health.(i) <> Dead then begin
        t.failover_events <- t.failover_events + 1;
        t.health.(i) <- Dead
      end
    end
    else if suspect_after > 0.0 && silence >= suspect_after then begin
      if t.health.(i) = Alive then begin
        t.suspect_events <- t.suspect_events + 1;
        t.health.(i) <- Suspect
      end
    end
  done

let health t ~replica = t.health.(replica)

let suspect_events t = t.suspect_events

let failover_events t = t.failover_events

let note_dispatch t ~replica = t.active.(replica) <- t.active.(replica) + 1

let note_complete t ~replica =
  t.active.(replica) <- t.active.(replica) - 1;
  assert (t.active.(replica) >= 0)

let active t ~replica = t.active.(replica)

let set_live t ~replica flag = t.live.(replica) <- flag

let is_live t ~replica = t.live.(replica)

(* [floor_min] bounds every table from below, not just sessions: the
   push-period tail lost in a takeover could have written any table, so
   a fresh active must assume each table was written at the
   reconstructed floor until it observes a newer ack. *)
let table_version t name =
  max t.floor_min
    (Option.value (Util.Tables.Stbl.find_opt t.table_versions name) ~default:0)

let session_version t ~sid =
  max t.floor_min
    (Option.value (Util.Tables.Itbl.find_opt t.session_versions sid) ~default:0)

let start_version t ~sid ~table_set =
  match t.mode with
  | Consistency.Eager -> 0
  | Consistency.Coarse -> t.v_system
  | Consistency.Fine ->
    List.fold_left (fun acc table -> max acc (table_version t table)) 0 table_set
  | Consistency.Session -> session_version t ~sid
  | Consistency.Bounded k -> max 0 (t.v_system - k)

(* --- Read-tier state (docs/CONSISTENCY.md) --------------------------- *)

let note_applied t ~replica ~version =
  if version > t.applied.(replica) then t.applied.(replica) <- version

let applied_version t ~replica = t.applied.(replica)

(* Prune [vs_history] entries older than the retention window. Runs
   every 1024 appends so the per-commit cost is amortized O(1); the
   newest pruned version becomes [vs_base]. *)
let prune_history t ~now =
  let cutoff = now -. t.cfg.Config.tier_history_ms in
  let rec keep n = function
    | [] -> (n, [])
    | (tau, v) :: tl ->
      if tau >= cutoff then
        let n', kept = keep (n + 1) tl in
        (n', (tau, v) :: kept)
      else begin
        (* newest-first: everything from here on is older — drop it all *)
        if v > t.vs_base then t.vs_base <- v;
        (n, [])
      end
  in
  let n, kept = keep 0 t.vs_history in
  t.vs_len <- n;
  t.vs_history <- kept

let note_history t ~now ~version =
  t.vs_history <- (now, version) :: t.vs_history;
  t.vs_len <- t.vs_len + 1;
  if t.vs_len land 1023 = 0 then prune_history t ~now

(* [V_system] as of [now - ms]: the newest history entry at or before
   the cutoff, or [vs_base] when the cutoff predates the retained
   window (conservative — a higher floor than strictly required). *)
let floor_at_ms t ~ms ~now =
  let cutoff = now -. ms in
  let rec find = function
    | [] -> t.vs_base
    | (tau, v) :: tl -> if tau <= cutoff then v else find tl
  in
  find t.vs_history

let note_commit_ack ?(epoch = 0) ?now t ~sid ~version ~tables_written =
  (* Epoch bookkeeping only: a commit released under an older epoch is
     still a valid decision of the surviving history (the certifier
     fences non-surviving decisions itself), so its version MUST still
     advance [V_system] — ignoring it would hand out staler start
     versions and weaken the consistency guarantee, not strengthen it.
     The counters surface how much cross-epoch traffic the LB relays. *)
  if epoch > t.cert_epoch then t.cert_epoch <- epoch
  else if epoch < t.cert_epoch then t.cert_fenced <- t.cert_fenced + 1;
  if version > t.v_system then begin
    t.v_system <- version;
    match now with
    | Some now when t.cfg.Config.read_tiers -> note_history t ~now ~version
    | _ -> ()
  end;
  List.iter
    (fun table ->
      if version > table_version t table then
        Util.Tables.Stbl.replace t.table_versions table version)
    tables_written;
  if version > session_version t ~sid then
    Util.Tables.Itbl.replace t.session_versions sid version

let note_snapshot_ack t ~sid ~snapshot =
  (* Monotone-reads floor: only session mode consults the session table
     for start versions, so only session mode pays for the entry —
     unless read tiers are on, where causal reads in any mode derive
     their floor from it. *)
  if
    (t.mode = Consistency.Session || t.cfg.Config.read_tiers)
    && snapshot > session_version t ~sid
  then Util.Tables.Itbl.replace t.session_versions sid snapshot

let v_system t = t.v_system

let cert_epoch t = t.cert_epoch

let cert_fenced t = t.cert_fenced

let session_count t = Util.Tables.Itbl.length t.session_versions

let prune_sessions t ~applied_min =
  (* An entry <= the cluster-wide minimum applied version buys nothing:
     every replica already satisfies the wait it would impose, and
     [session_version]'s default of 0 gives the same answer once the
     entry is gone. Dropping it re-bounds the table to the set of
     sessions that committed above the watermark. *)
  Util.Tables.Itbl.filter_map_inplace
    (fun _sid version -> if version <= applied_min then None else Some version)
    t.session_versions

(* --- Tier routing ---------------------------------------------------- *)

let tier_floor t ~sid ~tier ~now =
  match tier with
  | Consistency.Strong ->
    invalid_arg "Load_balancer.tier_floor: Strong follows the mode's start_version"
  | Consistency.Eventual -> 0
  | Consistency.Causal -> session_version t ~sid
  | Consistency.Bounded_staleness { versions; ms } ->
    let fv = match versions with Some k -> max 0 (t.v_system - k) | None -> 0 in
    let fm = match ms with Some m -> floor_at_ms t ~ms:m ~now | None -> 0 in
    max fv fm

let most_caught_up t ok =
  let best = ref (-1) in
  for i = 0 to Array.length t.active - 1 do
    if ok i && (!best < 0 || t.applied.(i) > t.applied.(!best)) then best := i
  done;
  !best

let route_read t ~sid ~tier ~now =
  let floor = tier_floor t ~sid ~tier ~now in
  let healthy i = t.live.(i) && t.health.(i) = Alive in
  let not_dead i = t.live.(i) && t.health.(i) <> Dead in
  let any_live i = t.live.(i) in
  let chosen =
    if floor = 0 then
      (* No floor to satisfy (eventual, or causal/bounded with nothing
         committed): the classic health-tiered policy pick — the policy
         already embodies "fastest replica" (least outstanding work). *)
      let c = pick t ~sid healthy in
      if c >= 0 then c
      else
        let c = pick t ~sid not_dead in
        if c >= 0 then c else pick t ~sid any_live
    else
      (* Prefer replicas whose known applied watermark already satisfies
         the floor — the read starts there without waiting. If none
         qualifies, send it to the most-caught-up live replica (ties to
         the lowest id — deterministic, no RNG draw): the floor still
         travels with the request, and [Replica.await_version] holds the
         read until the replica reaches it, so the bound is never
         violated, only served later. *)
      let satisfied i = healthy i && t.applied.(i) >= floor in
      let c = pick t ~sid satisfied in
      if c >= 0 then c
      else
        let c = most_caught_up t healthy in
        if c >= 0 then c
        else
          let c = most_caught_up t not_dead in
          if c >= 0 then c else most_caught_up t any_live
  in
  if chosen < 0 then failwith "Load_balancer.route_read: no live replica";
  (chosen, floor)

(* --- LB state replication (docs/PROTOCOL.md, "Control plane") --------

   The routing state worth surviving a takeover is tiny and monotone:
   [V_system], the certifier epoch, per-table and per-session version
   floors, per-replica applied watermarks and the tier-history base.
   The active LB snapshots it every [Config.lb_repl_ms] and pushes it to
   the standby, which max-merges — replays and reordering are harmless,
   so the push can ride the lossy fire-and-forget network. Everything
   deliberately NOT replicated (active counts, detector state, the
   [V_system] history list) is either per-instance by nature or rebuilt
   conservatively: the fresh active re-learns contacts and watermarks
   from traffic, and ms-staleness floors resolve to [vs_base] — rounded
   up, never violating a bound. *)

type state = {
  st_v_system : int;
  st_cert_epoch : int;
  st_tables : (string * int) list;
  st_sessions : (int * int) list;
  st_applied : int array;
  st_vs_base : int;
  st_floor_min : int;
}

let capture t =
  {
    st_v_system = t.v_system;
    st_cert_epoch = t.cert_epoch;
    st_tables = Util.Tables.Stbl.fold (fun k v acc -> (k, v) :: acc) t.table_versions [];
    st_sessions =
      Util.Tables.Itbl.fold (fun k v acc -> (k, v) :: acc) t.session_versions [];
    st_applied = Array.copy t.applied;
    st_vs_base = max t.vs_base t.floor_min;
    st_floor_min = t.floor_min;
  }

let state_bytes st =
  64
  + (12 * List.length st.st_tables)
  + (8 * List.length st.st_sessions)
  + (4 * Array.length st.st_applied)

let absorb t st =
  if st.st_v_system > t.v_system then t.v_system <- st.st_v_system;
  if st.st_cert_epoch > t.cert_epoch then t.cert_epoch <- st.st_cert_epoch;
  List.iter
    (fun (table, v) ->
      if v > table_version t table then Util.Tables.Stbl.replace t.table_versions table v)
    st.st_tables;
  List.iter
    (fun (sid, v) ->
      if v > Option.value (Util.Tables.Itbl.find_opt t.session_versions sid) ~default:0
      then Util.Tables.Itbl.replace t.session_versions sid v)
    st.st_sessions;
  Array.iteri
    (fun i v -> if i < Array.length t.applied && v > t.applied.(i) then t.applied.(i) <- v)
    st.st_applied;
  if st.st_vs_base > t.vs_base then t.vs_base <- st.st_vs_base;
  if st.st_floor_min > t.floor_min then t.floor_min <- st.st_floor_min

(* Takeover: install the conservative floor the cluster reconstructed
   (replicated [V_system] ∨ live-replica probe maxima). Raising
   [floor_min] lifts every session floor at once; raising [vs_base]
   makes ms-staleness cutoffs that predate this instance's (empty)
   history resolve at or above the floor. *)
let note_takeover t ~floor =
  if floor > t.v_system then t.v_system <- floor;
  if floor > t.vs_base then t.vs_base <- floor;
  if floor > t.floor_min then t.floor_min <- floor

let floor_min t = t.floor_min

(* --- Overload admission (docs/PROTOCOL.md, "Overload & admission
   control") -----------------------------------------------------------

   Two independent gates, both off by default. The concurrency cap
   bounds admitted-but-unanswered transactions; the token bucket bounds
   the admission *rate*. Priority shedding: a strong (potentially
   writing) request needs more headroom than a weak-tier read at both
   gates, so under pressure strong writes are shed first and weak reads
   degrade last. Everything is arithmetic on arrival — no timer events,
   no RNG — so admission-off runs are untouched and admission-on runs
   stay deterministic. *)

let admission_on (cfg : Config.t) =
  cfg.Config.admission_limit > 0 || cfg.Config.admission_rate_tps > 0.0

let admit t ~now ~strong =
  let cfg = t.cfg in
  let limit = cfg.Config.admission_limit in
  let cap =
    if limit <= 0 then max_int
    else if strong then max 1 (limit * 7 / 8)
    else limit
  in
  if t.admitted >= cap then Error cfg.Config.shed_retry_after_ms
  else begin
    let rate = cfg.Config.admission_rate_tps in
    if rate <= 0.0 then begin
      t.admitted <- t.admitted + 1;
      Ok ()
    end
    else begin
      let burst = cfg.Config.admission_burst in
      t.adm_tokens <-
        Float.min burst (t.adm_tokens +. ((now -. t.adm_last_ms) /. 1000.0 *. rate));
      t.adm_last_ms <- now;
      (* Strong requests leave a quarter-burst of tokens in reserve for
         reads (capped so a tiny burst still admits writes when full). *)
      let need = if strong then Float.min burst (1.0 +. (burst /. 4.0)) else 1.0 in
      if t.adm_tokens >= need then begin
        t.adm_tokens <- t.adm_tokens -. 1.0;
        t.admitted <- t.admitted + 1;
        Ok ()
      end
      else
        Error
          (Float.max cfg.Config.shed_retry_after_ms
             ((need -. t.adm_tokens) /. rate *. 1000.0))
    end
  end

let release t =
  t.admitted <- t.admitted - 1;
  assert (t.admitted >= 0)

let admitted t = t.admitted

type request = {
  profile : string;
  table_set : string list;
  statements : Storage.Query.t list;
  tier : Consistency.read_tier;
}

type abort_reason =
  | Certification_conflict
  | Early_certification
  | Replica_failure
  | Timeout
  | Overloaded of { retry_after_ms : float }
  | Statement_error of string

type outcome =
  | Committed of {
      commit_version : int option;
      snapshot : int;
      stages : float array;
      response_ms : float;
    }
  | Aborted of {
      reason : abort_reason;
      response_ms : float;
    }

let make ~profile ?table_set ?(tier = Consistency.Strong) statements =
  let table_set =
    match table_set with Some ts -> ts | None -> Storage.Query.table_set statements
  in
  { profile; table_set; statements; tier }

let updates_possible r = List.exists Storage.Query.is_update r.statements

(* Read-class admission: the weaker tiers are contracts about *reads*;
   a request that may write must run under the cluster's write mode. *)
let tier_violation r =
  match r.tier with
  | Consistency.Strong -> None
  | t when updates_possible r ->
    Some
      (Printf.sprintf "read tier %s admits no update statements"
         (Consistency.tier_to_string t))
  | _ -> None

let pp_abort_reason ppf = function
  | Certification_conflict -> Format.pp_print_string ppf "certification conflict"
  | Early_certification -> Format.pp_print_string ppf "early certification conflict"
  | Replica_failure -> Format.pp_print_string ppf "replica failure"
  | Timeout -> Format.pp_print_string ppf "timeout"
  | Overloaded { retry_after_ms } ->
    Format.fprintf ppf "overloaded (retry after %.1fms)" retry_after_ms
  | Statement_error msg -> Format.fprintf ppf "statement error: %s" msg

let abort_slug = function
  | Certification_conflict -> "certification"
  | Early_certification -> "early_certification"
  | Replica_failure -> "replica_failure"
  | Timeout -> "timeout"
  | Overloaded _ -> "overloaded"
  | Statement_error _ -> "statement_error"

(* Conflict-class aborts (certification) are the transaction's own fault
   and consume the client's retry budget; failure-class aborts are the
   cluster's fault and are retried until the cluster heals. Overload
   sheds are also no fault of the transaction — but unlike the failure
   class they are throttled by the retry-after hint and the client's
   retry *budget* (Config.retry_budget), never by max_retries. *)
let abort_is_transient = function
  | Replica_failure | Timeout | Overloaded _ -> true
  | Certification_conflict | Early_certification | Statement_error _ -> false

let pp_outcome ppf = function
  | Committed { commit_version; snapshot; response_ms; _ } ->
    Format.fprintf ppf "committed%s (snapshot v%d, %.2fms)"
      (match commit_version with Some v -> Printf.sprintf " at v%d" v | None -> " read-only")
      snapshot response_ms
  | Aborted { reason; response_ms } ->
    Format.fprintf ppf "aborted: %a (%.2fms)" pp_abort_reason reason response_ms

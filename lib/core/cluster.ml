let log_src =
  Logs.Src.create "repro.cluster" ~doc:"Transaction flow through the replicated cluster"

module Log = (val Logs.src_log log_src)

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  rng : Util.Rng.t;
  network : Sim.Network.t;
  certifier : Certifier.t;
  lb : Load_balancer.t;
  replicas : Replica.t array;
  metrics : Metrics.t;
  obs : Obs.Trace.t option;
  registry : Obs.Registry.t;
  c_commit : Obs.Registry.counter;
  c_commit_ro : Obs.Registry.counter;
  c_abort : Obs.Registry.counter;
  mutable next_tid : int;
  mutable log : Check.Runlog.record list;  (* reversed *)
}

let request_bytes (req : Transaction.request) =
  (* A rough wire estimate: statements travel as prepared-statement ids
     plus parameters. *)
  64 + (List.length req.Transaction.statements * 48)

let create ?(config = Config.default) ?(tracing = false) ?(trace_capacity = 65_536)
    ~mode ~schemas ~load () =
  let engine = Sim.Engine.create () in
  (* The cluster owns the engine, so it also owns the trace context. *)
  let obs = if tracing then Some (Obs.Trace.create ~capacity:trace_capacity engine) else None in
  let rng = Util.Rng.create config.Config.seed in
  let metrics = Metrics.create engine in
  let network =
    Sim.Network.create engine ~rng:(Util.Rng.split rng) ~base_ms:config.Config.net_base_ms
      ~jitter_ms:config.Config.net_jitter_ms ~bandwidth_mbps:config.Config.net_bandwidth_mbps
  in
  let certifier =
    Certifier.create ?obs ~metrics engine config ~rng:(Util.Rng.split rng) ~network ~mode
  in
  let lb = Load_balancer.create ~rng:(Util.Rng.split rng) config ~mode in
  let replicas =
    Array.init config.Config.replicas (fun id ->
        let db = Storage.Database.create () in
        List.iter (fun schema -> ignore (Storage.Database.create_table db schema)) schemas;
        load db;
        Replica.create ?obs ~metrics engine config ~rng:(Util.Rng.split rng) ~id db)
  in
  let registry = Obs.Registry.create () in
  let t =
    {
      engine;
      cfg = config;
      rng;
      network;
      certifier;
      lb;
      replicas;
      metrics;
      obs;
      registry;
      c_commit = Obs.Registry.counter registry "txn.commit";
      c_commit_ro = Obs.Registry.counter registry "txn.commit_read_only";
      c_abort = Obs.Registry.counter registry "txn.abort";
      next_tid = 0;
      log = [];
    }
  in
  Array.iter
    (fun replica ->
      let id = Replica.id replica in
      Certifier.subscribe certifier ~replica:id (fun batch ->
          Replica.receive_refresh_batch replica batch);
      Replica.set_on_commit replica (fun ~version ->
          Certifier.ack certifier ~replica:id ~version);
      Replica.start replica)
    replicas;
  if config.Config.gc_interval_ms > 0.0 then
    Sim.Process.spawn engine (fun () ->
        let rec loop () =
          Sim.Process.sleep engine config.Config.gc_interval_ms;
          (* Vacuum each replica behind its own applied version: any live
             snapshot there is at most gc_window versions old. *)
          Array.iter
            (fun r ->
              let keep_after = max 0 (Replica.v_local r - config.Config.gc_window) in
              ignore (Storage.Database.gc (Replica.database r) ~keep_after))
            replicas;
          (* Truncate certifier log + index behind the slowest live
             replica's applied watermark (piggybacked on cert/ack
             traffic — no omniscient peek at replica state); a replica
             that stays down longer than the slack recovers by state
             transfer instead of log replay. *)
          Certifier.gc certifier;
          (* The all-replica minimum watermark (crashed included) is a
             permanent floor on applied versions: session-version
             entries at or below it impose no wait and can go. *)
          Load_balancer.prune_sessions lb
            ~applied_min:(Certifier.min_watermark certifier);
          loop ()
        in
        loop ());
  t

let engine t = t.engine
let config t = t.cfg
let mode t = Load_balancer.mode t.lb
let metrics t = t.metrics
let certifier t = t.certifier
let load_balancer t = t.lb
let replica t i = t.replicas.(i)
let rng t = Util.Rng.split t.rng
let trace t = t.obs
let registry t = t.registry

(* --- telemetry ----------------------------------------------------- *)

let update_gauges t =
  let refresh_total = ref 0 in
  Array.iteri
    (fun i r ->
      let pending = Replica.pending_refresh r in
      refresh_total := !refresh_total + pending;
      let name key = Printf.sprintf "replica%d.%s" i key in
      Obs.Registry.set (Obs.Registry.gauge t.registry (name "refresh_queue"))
        (float_of_int pending);
      Obs.Registry.set (Obs.Registry.gauge t.registry (name "active_txns"))
        (float_of_int (Replica.active_local r));
      Obs.Registry.set (Obs.Registry.gauge t.registry (name "v_local"))
        (float_of_int (Replica.v_local r));
      Obs.Registry.set (Obs.Registry.gauge t.registry (name "watermark"))
        (float_of_int (Certifier.watermark t.certifier ~replica:i)))
    t.replicas;
  Obs.Registry.set (Obs.Registry.gauge t.registry "refresh_queue.total")
    (float_of_int !refresh_total);
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.log_size")
    (float_of_int (Certifier.log_size t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.queue")
    (float_of_int (Sim.Resource.queue_length (Certifier.cpu t.certifier)));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.watermark.min")
    (float_of_int (Certifier.min_watermark t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.index_size")
    (float_of_int (Certifier.index_size t.certifier))

let attach_probes t sampler =
  Array.iteri
    (fun i r ->
      let name key = Printf.sprintf "replica%d.%s" i key in
      Obs.Sampler.add_resource sampler ~name:(name "cpu") (Replica.cpu r);
      Obs.Sampler.add sampler ~name:(name "refresh_queue") (fun () ->
          float_of_int (Replica.pending_refresh r));
      Obs.Sampler.add sampler ~name:(name "active_txns") (fun () ->
          float_of_int (Replica.active_local r));
      Obs.Sampler.add sampler ~name:(name "lb_active") (fun () ->
          float_of_int (Load_balancer.active t.lb ~replica:i)))
    t.replicas;
  Obs.Sampler.add_resource sampler ~name:"certifier.cpu" (Certifier.cpu t.certifier);
  Obs.Sampler.add sampler ~name:"certifier.log_size" (fun () ->
      float_of_int (Certifier.log_size t.certifier));
  Obs.Sampler.add sampler ~name:"certifier.watermark.min" (fun () ->
      float_of_int (Certifier.min_watermark t.certifier));
  Obs.Sampler.add sampler ~name:"certifier.index_size" (fun () ->
      float_of_int (Certifier.index_size t.certifier));
  (* Keep the registry's gauges fresh on the same cadence. *)
  Obs.Sampler.add sampler ~name:"v_system" (fun () ->
      update_gauges t;
      float_of_int (Load_balancer.v_system t.lb))

let start_telemetry ?interval_ms t =
  let sampler = Obs.Sampler.create ?interval_ms t.engine in
  attach_probes t sampler;
  Obs.Sampler.start sampler;
  sampler

let render_key key =
  String.concat "," (List.map Storage.Value.to_string (Array.to_list key))

let record_commit t ~tid ~sid ~begin_time ~snapshot ~commit_version ~table_set ~ws ~trace =
  if t.cfg.Config.record_log then begin
    let entries = Storage.Writeset.entries ws in
    let record =
      {
        Check.Runlog.tid;
        session = sid;
        begin_time;
        ack_time = Sim.Engine.now t.engine;
        snapshot_version = snapshot;
        commit_version;
        table_set;
        tables_written = Storage.Writeset.tables ws;
        write_keys =
          List.map
            (fun e -> (e.Storage.Writeset.ws_table, render_key e.Storage.Writeset.ws_key))
            entries;
        trace;
      }
    in
    t.log <- record :: t.log
  end

(* Response path shared by every outcome: replica -> LB -> client, with
   the LB's bookkeeping in between. *)
let respond t ~replica_id ~ack_bytes ~on_lb =
  Sim.Network.transfer t.network ~size_bytes:ack_bytes;
  Sim.Process.sleep t.engine t.cfg.Config.lb_ms;
  Load_balancer.note_complete t.lb ~replica:replica_id;
  on_lb ();
  Sim.Network.transfer t.network ~size_bytes:ack_bytes

let submit t ~sid (req : Transaction.request) =
  let begin_time = Sim.Engine.now t.engine in
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  (* The stage clock: feeds both the aggregate breakdown and, when the
     cluster was created with [~tracing:true], the transaction's spans. *)
  let mtxn = Metrics.txn_begin ?obs:t.obs ~sid ~name:req.Transaction.profile t.metrics in
  (* Client -> load balancer. *)
  Sim.Network.transfer t.network ~size_bytes:(request_bytes req);
  Sim.Process.sleep t.engine t.cfg.Config.lb_ms;
  let replica_id = Load_balancer.choose_replica t.lb ~sid in
  let replica = t.replicas.(replica_id) in
  let v_start = Load_balancer.start_version t.lb ~sid ~table_set:req.Transaction.table_set in
  Load_balancer.note_dispatch t.lb ~replica:replica_id;
  (match Metrics.txn_trace_id mtxn with
  | None -> ()
  | Some trace_id ->
    Obs.Trace.instant_opt t.obs ~trace_id ~component:Obs.Span.Load_balancer ~name:"route"
      ~args:[ ("replica", string_of_int replica_id); ("v_start", string_of_int v_start) ]
      ());
  Metrics.txn_locate mtxn ~replica:replica_id;
  (* Load balancer -> replica. *)
  Sim.Network.transfer t.network ~size_bytes:(request_bytes req);
  let now () = Sim.Engine.now t.engine in
  Log.debug (fun m ->
      m "[%.3f] T%d (session %d, %s) -> replica %d, start version %d" begin_time tid sid
        req.Transaction.profile replica_id v_start);
  let abort ?(finish = true) reason =
    if finish then Replica.finish_txn replica ~tid;
    respond t ~replica_id ~ack_bytes:32 ~on_lb:(fun () -> ());
    Metrics.txn_abort mtxn
      ~reason:(Format.asprintf "%a" Transaction.pp_abort_reason reason);
    Obs.Registry.incr t.c_abort;
    Log.debug (fun m ->
        m "[%.3f] T%d aborted: %a" (now ()) tid Transaction.pp_abort_reason reason);
    Transaction.Aborted { reason; response_ms = now () -. begin_time }
  in
  (* Stage: version — the synchronization start delay. *)
  Metrics.stage_enter mtxn Metrics.Version;
  match Replica.await_version replica v_start with
  | Error reason -> abort ~finish:false reason
  | Ok () -> (
    Metrics.stage_exit mtxn Metrics.Version;
    let txn = Replica.begin_txn replica ~tid in
    let snapshot = Storage.Txn.snapshot txn in
    (* Stage: queries. *)
    Metrics.stage_enter mtxn Metrics.Queries;
    let rec run_statements = function
      | [] -> Ok ()
      | stmt :: rest ->
        if Replica.abort_requested replica ~tid then Error Transaction.Early_certification
        else if Replica.is_crashed replica then Error Transaction.Replica_failure
        else begin
          match Replica.exec_statement replica txn stmt with
          | Storage.Query.Error msg -> Error (Transaction.Statement_error msg)
          | Storage.Query.Rows _ | Storage.Query.Affected _ ->
            if Storage.Query.is_update stmt && not (Replica.early_certify replica txn) then
              Error Transaction.Early_certification
            else run_statements rest
        end
    in
    let statement_result = run_statements req.Transaction.statements in
    match statement_result with
    | Error reason -> abort reason
    | Ok () -> (
      Metrics.stage_exit mtxn Metrics.Queries;
      let ws = Storage.Txn.writeset txn in
      if Storage.Writeset.is_empty ws then begin
        (* Read-only: commit locally, no certification. *)
        Metrics.stage_enter mtxn Metrics.Commit;
        Replica.commit_read_only replica txn;
        Metrics.stage_exit mtxn Metrics.Commit;
        Replica.finish_txn replica ~tid;
        respond t ~replica_id ~ack_bytes:64 ~on_lb:(fun () -> ());
        let response_ms = now () -. begin_time in
        let stages = Metrics.txn_stages mtxn in
        Metrics.txn_commit mtxn ~read_only:true;
        Obs.Registry.incr t.c_commit_ro;
        record_commit t ~tid ~sid ~begin_time ~snapshot ~commit_version:None
          ~table_set:req.Transaction.table_set ~ws ~trace:(Metrics.txn_trace_id mtxn);
        Transaction.Committed { commit_version = None; snapshot; stages; response_ms }
      end
      else begin
        (* Stage: certify — round trip to the certifier. *)
        Metrics.stage_enter mtxn Metrics.Certify;
        let ws_bytes = Storage.Codec.writeset_bytes ws + 64 in
        Sim.Network.transfer t.network ~size_bytes:ws_bytes;
        let trace =
          Option.map
            (fun id -> (id, Metrics.txn_root_span mtxn))
            (Metrics.txn_trace_id mtxn)
        in
        let decision =
          Certifier.certify ?trace ~applied:(Replica.v_local replica) t.certifier
            ~origin:replica_id ~snapshot ~ws
        in
        Sim.Network.transfer t.network ~size_bytes:32;
        Metrics.stage_exit mtxn Metrics.Certify;
        match decision with
        | Certifier.Abort -> abort Transaction.Certification_conflict
        | Certifier.Commit { version; global_commit } -> (
          (* Stages: sync (wait for predecessors) then commit; the
             sequencer reports when the commit work began, splitting the
             wait retroactively. *)
          Metrics.stage_enter mtxn Metrics.Sync;
          let done_ = Replica.commit_local replica ~version ~ws in
          match Sim.Ivar.read done_ with
          | Error reason -> abort ~finish:false reason
          | Ok commit_work_start ->
            Metrics.stage_exit ~at:commit_work_start mtxn Metrics.Sync;
            Metrics.stage_enter ~at:commit_work_start mtxn Metrics.Commit;
            Metrics.stage_exit mtxn Metrics.Commit;
            Replica.finish_txn replica ~tid;
            (* Stage: global — eager only. *)
            (match global_commit with
            | None -> ()
            | Some ivar ->
              Metrics.stage_enter mtxn Metrics.Global;
              Sim.Ivar.read ivar;
              Metrics.stage_exit mtxn Metrics.Global);
            respond t ~replica_id ~ack_bytes:64 ~on_lb:(fun () ->
                Load_balancer.note_commit_ack t.lb ~sid ~version
                  ~tables_written:(Storage.Writeset.tables ws));
            let response_ms = now () -. begin_time in
            let stages = Metrics.txn_stages mtxn in
            Metrics.txn_commit mtxn ~read_only:false
              ~args:[ ("version", string_of_int version) ];
            Obs.Registry.incr t.c_commit;
            record_commit t ~tid ~sid ~begin_time ~snapshot ~commit_version:(Some version)
              ~table_set:req.Transaction.table_set ~ws
              ~trace:(Metrics.txn_trace_id mtxn);
            Log.debug (fun m ->
                m "[%.3f] T%d committed at v%d (snapshot v%d, %.2fms)" (now ()) tid
                  version snapshot response_ms);
            Transaction.Committed
              { commit_version = Some version; snapshot; stages; response_ms })
      end))

let run_for t ~warmup_ms ~measure_ms =
  let start = Sim.Engine.now t.engine in
  Sim.Engine.run t.engine ~until:(start +. warmup_ms);
  Metrics.reset_window t.metrics;
  Obs.Registry.reset t.registry;
  t.log <- [];
  Sim.Engine.run t.engine ~until:(start +. warmup_ms +. measure_ms)

let records t = List.rev t.log

let crash_replica t i =
  Load_balancer.set_live t.lb ~replica:i false;
  Certifier.mark_down t.certifier ~replica:i;
  Replica.crash t.replicas.(i)

let recover_replica t i =
  let r = t.replicas.(i) in
  (match Certifier.writesets_from t.certifier (Replica.v_local r) with
  | Some missed -> Replica.recover r ~missed
  | None ->
    (* The outage outlived the certifier's pruned log: state-transfer a
       checkpoint from the freshest live peer, then replay the residual
       log suffix. *)
    let donor =
      Array.fold_left
        (fun best candidate ->
          let id = Replica.id candidate in
          if id <> i && Load_balancer.is_live t.lb ~replica:id then
            match best with
            | Some b when Replica.v_local b >= Replica.v_local candidate -> best
            | Some _ | None -> Some candidate
          else best)
        None t.replicas
    in
    (match donor with
    | None -> failwith "Cluster.recover_replica: no live donor for state transfer"
    | Some donor ->
      Replica.state_transfer r ~snapshot:(Replica.checkpoint donor);
      let missed =
        Option.value
          (Certifier.writesets_from t.certifier (Replica.v_local r))
          ~default:[]
      in
      Replica.recover r ~missed));
  Certifier.mark_up t.certifier ~replica:i;
  Load_balancer.set_live t.lb ~replica:i true

let crash_certifier t = Certifier.crash t.certifier

let failover_certifier t = Certifier.failover t.certifier

let log_src =
  Logs.Src.create "repro.cluster" ~doc:"Transaction flow through the replicated cluster"

module Log = (val Logs.src_log log_src)


type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  rng : Util.Rng.t;
  network : Sim.Network.t;
  faults : Sim.Faults.t option;
  certifier : Certifier.t;
  lbs : Load_balancer.t array;
      (* instance 0 is the initially active LB; instance 1 (present only
         under [Config.lb_standby]) is the hot standby *)
  mutable lb_active : int;  (* instance clients currently route to *)
  mutable lb_epoch : int;  (* routing epoch; bumped by every takeover *)
  lb_crashed : bool array;
  lb_self_active : bool array;  (* each instance's own belief about its role *)
  lb_self_epoch : int array;  (* highest routing epoch each instance knows *)
  lb_heard : float array;  (* per instance: when it last received a state push *)
  mutable lb_takeovers : int;
  mutable lb_fenced : int;  (* stale-LB-epoch pushes and relays rejected *)
  replicas : Replica.t array;
  metrics : Metrics.t;
  obs : Obs.Trace.t option;
  registry : Obs.Registry.t;
  c_commit : Obs.Registry.counter;
  c_commit_ro : Obs.Registry.counter;
  c_abort : Obs.Registry.counter;
  c_shed : Obs.Registry.counter;
  c_deadline : Obs.Registry.counter;
  shed_tids : (int, unit) Hashtbl.t;
      (* every tid refused with [Transaction.Overloaded] — the chaos
         zombie-commit checker asserts none of them appears in the
         commit log; empty unless an overload knob is on *)
  mutable next_tid : int;
  log : Check.Runlog.Sink.t;  (* flat append-order store of commit records *)
  (* monotonic-counter cursors for mirroring deltas into Metrics *)
  mutable seen_net_retransmits : int;
  mutable seen_cert_retransmits : int;
  mutable seen_suspects : int;
  mutable seen_failovers : int;
  mutable reprovisions : int;
}

let request_bytes (req : Transaction.request) =
  (* A rough wire estimate: statements travel as prepared-statement ids
     plus parameters. *)
  64 + (List.length req.Transaction.statements * 48)

let active_lb t = t.lbs.(t.lb_active)

(* Network endpoint of LB instance [k]. *)
let lb_node k = if k = 0 then Config.node_lb else Config.node_lb_standby

(* Ground-truth replica liveness (crash/recover) is fed to every LB
   instance: the standby must not take over with a stale live-set. *)
let each_lb t f = Array.iter f t.lbs

let lb_sum t f = Array.fold_left (fun acc lb -> acc + f lb) 0 t.lbs

let crash_replica t i =
  each_lb t (fun lb -> Load_balancer.set_live lb ~replica:i false);
  Certifier.mark_down t.certifier ~replica:i;
  Replica.crash t.replicas.(i)

let recover_replica t i =
  let r = t.replicas.(i) in
  (* A replica evicted from the certifier's watermark table lost its
     position in the refresh stream: rejoin is forced through state
     transfer even if the log happens to retain its suffix. *)
  let replay =
    if Certifier.needs_state_transfer t.certifier ~replica:i then None
    else Certifier.writesets_from t.certifier (Replica.v_local r)
  in
  (match replay with
  | Some missed -> Replica.recover r ~missed
  | None ->
    (* The outage outlived the certifier's pruned log: state-transfer a
       checkpoint from the freshest live peer, then replay the residual
       log suffix. *)
    let donor =
      Array.fold_left
        (fun best candidate ->
          let id = Replica.id candidate in
          if id <> i && Load_balancer.is_live (active_lb t) ~replica:id then
            match best with
            | Some b when Replica.v_local b >= Replica.v_local candidate -> best
            | Some _ | None -> Some candidate
          else best)
        None t.replicas
    in
    (match donor with
    | None -> failwith "Cluster.recover_replica: no live donor for state transfer"
    | Some donor ->
      Replica.state_transfer r ~snapshot:(Replica.checkpoint donor);
      let missed =
        Option.value
          (Certifier.writesets_from t.certifier (Replica.v_local r))
          ~default:[]
      in
      Replica.recover r ~missed));
  Certifier.mark_up ~applied:(Replica.v_local r) t.certifier ~replica:i;
  (* Manual recovery counts as contact: without it the detector's next
     sweep would still see [Dead] and mark the replica down again. *)
  each_lb t (fun lb ->
      Load_balancer.note_contact lb ~replica:i ~now:(Sim.Engine.now t.engine));
  if t.cfg.Config.reliable then
    (* [Replica.recover] only enqueues the missed suffix; the sequencer
       applies it over virtual time. Routing to the replica before it
       catches up would serve stale snapshots (fatal in eager mode, where
       clients don't wait on a start version), so publish it to the LB
       only once it reaches the certifier's version as of now. New
       commits already wait on it — [mark_up] above re-added it to the
       ack set — so the target is a fixed post. *)
    let target = Certifier.version t.certifier in
    Sim.Process.spawn t.engine (fun () ->
        (match Replica.await_version r target with Ok () | Error _ -> ());
        if not (Replica.is_crashed r) then
          each_lb t (fun lb ->
              Load_balancer.set_live lb ~replica:i true;
              Load_balancer.note_contact lb ~replica:i ~now:(Sim.Engine.now t.engine)))
  else each_lb t (fun lb -> Load_balancer.set_live lb ~replica:i true)

let crash_certifier t = Certifier.crash t.certifier

let failover_certifier t = Certifier.failover t.certifier

let revive_certifier_node t k = Certifier.revive_node t.certifier k

let crash_lb t k =
  if Array.length t.lbs < 2 then
    invalid_arg "Cluster.crash_lb: no standby LB configured (Config.lb_standby)";
  t.lb_crashed.(k) <- true

let recover_lb t k =
  t.lb_crashed.(k) <- false;
  (* Revival grace: restart the suspicion clock so the instance judges
     its peer from fresh silence, not from the outage it slept through. *)
  t.lb_heard.(k) <- Sim.Engine.now t.engine

let create ?(config = Config.default) ?(tracing = false) ?(trace_capacity = 65_536)
    ?faults ~mode ~schemas ~load () =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cluster.create: " ^ msg));
  let engine = Sim.Engine.create () in
  (* The cluster owns the engine, so it also owns the trace context. *)
  let obs = if tracing then Some (Obs.Trace.create ~capacity:trace_capacity engine) else None in
  let rng = Util.Rng.create config.Config.seed in
  let metrics = Metrics.create engine in
  let network =
    Sim.Network.create engine ~rto_ms:config.Config.rto_ms ~rng:(Util.Rng.split rng)
      ~base_ms:config.Config.net_base_ms ~jitter_ms:config.Config.net_jitter_ms
      ~bandwidth_mbps:config.Config.net_bandwidth_mbps
  in
  (* The fault plan owns its own RNG (seeded independently of the cluster
     RNG chain), so attaching an all-clean plan perturbs nothing. *)
  let faults = Option.map (fun build -> (build engine : Sim.Faults.t)) faults in
  (match faults with Some f -> Sim.Network.set_faults network f | None -> ());
  (* One intern table per replication group: every replica database and
     the certifier resolve conflict keys through the same id space, so
     writesets built on any replica carry ids the certifier's index can
     probe directly. *)
  let intern = Storage.Intern.create () in
  let certifier =
    Certifier.create ?obs ~metrics ~intern engine config ~rng:(Util.Rng.split rng)
      ~network ~mode
  in
  let lb0 = Load_balancer.create ~rng:(Util.Rng.split rng) config ~mode in
  let lbs =
    (* The standby instance draws its RNG after the active's, so a run
       without [lb_standby] consumes exactly the classic seed chain. *)
    if config.Config.lb_standby then
      [| lb0; Load_balancer.create ~rng:(Util.Rng.split rng) config ~mode |]
    else [| lb0 |]
  in
  let replicas =
    Array.init config.Config.replicas (fun id ->
        let db = Storage.Database.create ~intern () in
        List.iter (fun schema -> ignore (Storage.Database.create_table db schema)) schemas;
        load db;
        Replica.create ?obs ~metrics engine config ~rng:(Util.Rng.split rng) ~id db)
  in
  let registry = Obs.Registry.create () in
  (match faults with
  | None -> ()
  | Some f ->
    Certifier.set_faults certifier f;
    Array.iter (fun r -> Replica.set_faults r f) replicas;
    (* Every injected fault becomes a metric and a registry counter. *)
    Sim.Faults.on_event f (fun ev ->
        let kind, name =
          match ev with
          | Sim.Faults.Dropped _ -> (`Drop, "fault.drop")
          | Sim.Faults.Duplicated _ -> (`Duplicate, "fault.duplicate")
          | Sim.Faults.Delayed _ -> (`Delay, "fault.delay")
        in
        Metrics.note_fault metrics kind;
        Obs.Registry.incr (Obs.Registry.counter registry name)));
  let t =
    {
      engine;
      cfg = config;
      rng;
      network;
      faults;
      certifier;
      lbs;
      lb_active = 0;
      lb_epoch = 0;
      lb_crashed = Array.make (Array.length lbs) false;
      lb_self_active = Array.init (Array.length lbs) (fun k -> k = 0);
      lb_self_epoch = Array.make (Array.length lbs) 0;
      lb_heard = Array.make (Array.length lbs) 0.0;
      lb_takeovers = 0;
      lb_fenced = 0;
      replicas;
      metrics;
      obs;
      registry;
      c_commit = Obs.Registry.counter registry "txn.commit";
      c_commit_ro = Obs.Registry.counter registry "txn.commit_read_only";
      c_abort = Obs.Registry.counter registry "txn.abort";
      c_shed = Obs.Registry.counter registry "txn.shed";
      c_deadline = Obs.Registry.counter registry "txn.deadline_expired";
      shed_tids = Hashtbl.create 64;
      next_tid = 0;
      log = Check.Runlog.Sink.create ();
      seen_net_retransmits = 0;
      seen_cert_retransmits = 0;
      seen_suspects = 0;
      seen_failovers = 0;
      reprovisions = 0;
    }
  in
  Array.iter
    (fun replica ->
      let id = Replica.id replica in
      Certifier.subscribe certifier ~replica:id (fun ~epoch batch ->
          Replica.receive_refresh_batch ~epoch replica batch);
      Replica.set_on_commit replica (fun ~version ->
          if config.Config.reliable then
            (* The commit ack rides the (lossy) network to whichever
               group member currently holds the primary role; a lost ack
               is eventually covered by a heartbeat's cumulative
               watermark. *)
            Sim.Network.send network ~src:id ~dst:(Certifier.primary_net certifier)
              ~size_bytes:24 (fun () -> Certifier.ack certifier ~replica:id ~version)
          else Certifier.ack certifier ~replica:id ~version);
      Replica.start replica)
    replicas;
  if config.Config.gc_interval_ms > 0.0 then
    Sim.Process.spawn engine (fun () ->
        let rec loop () =
          Sim.Process.sleep engine config.Config.gc_interval_ms;
          (* Vacuum each replica behind its own applied version: any live
             snapshot there is at most gc_window versions old. *)
          Array.iter
            (fun r ->
              let keep_after = max 0 (Replica.v_local r - config.Config.gc_window) in
              ignore (Storage.Database.gc (Replica.database r) ~keep_after))
            replicas;
          (* Truncate certifier log + index behind the slowest live
             replica's applied watermark (piggybacked on cert/ack
             traffic — no omniscient peek at replica state); a replica
             that stays down longer than the slack recovers by state
             transfer instead of log replay. *)
          Certifier.gc certifier;
          (* The all-replica minimum watermark (crashed included) is a
             permanent floor on applied versions: session-version
             entries at or below it impose no wait and can go — on the
             standby too, which mirrors them via state pushes. *)
          Array.iter
            (fun lb ->
              Load_balancer.prune_sessions lb
                ~applied_min:(Certifier.min_watermark certifier))
            lbs;
          loop ()
        in
        loop ());
  if config.Config.reliable then begin
    (* Replica heartbeats: liveness + cumulative applied watermark, to
       both the failure detector (LB) and the certifier, over the lossy
       network — a lost heartbeat is just silence until the next one. *)
    if config.Config.heartbeat_ms > 0.0 then
      Array.iter
        (fun r ->
          let id = Replica.id r in
          Sim.Process.spawn engine (fun () ->
              let rec loop () =
                Sim.Process.sleep engine config.Config.heartbeat_ms;
                if not (Replica.is_crashed r) then begin
                  let v = Replica.v_local r in
                  (* Addressed to whichever instance holds the routing
                     role when the heartbeat leaves; applied to whichever
                     holds it when it lands (both truthful piggybacks). *)
                  Sim.Network.send network ~src:id ~dst:(lb_node t.lb_active)
                    ~size_bytes:16
                    (fun () ->
                      let lb = active_lb t in
                      Load_balancer.note_contact lb ~replica:id
                        ~now:(Sim.Engine.now engine);
                      (* The heartbeat carries the applied watermark as of
                         send time — same payload the certifier gets, so
                         the 16-byte message covers both piggybacks. *)
                      Load_balancer.note_applied lb ~replica:id ~version:v);
                  Sim.Network.send network ~src:id
                    ~dst:(Certifier.primary_net certifier) ~size_bytes:16 (fun () ->
                      Certifier.heartbeat certifier ~replica:id ~applied:v)
                end;
                loop ()
              in
              loop ()))
        replicas;
    (* Failure-detector sweep + certifier live-set reconciliation. *)
    Sim.Process.spawn engine (fun () ->
        let interval = Float.max 1.0 (config.Config.suspect_after_ms /. 4.0) in
        let rec loop () =
          Sim.Process.sleep engine interval;
          let now = Sim.Engine.now engine in
          let lb = active_lb t in
          Load_balancer.sweep lb ~now;
          (* Mirror detector transitions into metrics/registry. Summed
             over instances so the cursors stay monotone across an LB
             takeover. *)
          let suspects = lb_sum t Load_balancer.suspect_events in
          for _ = t.seen_suspects + 1 to suspects do
            Metrics.note_suspect metrics;
            Obs.Registry.incr (Obs.Registry.counter registry "detector.suspect")
          done;
          t.seen_suspects <- suspects;
          let failovers = lb_sum t Load_balancer.failover_events in
          for _ = t.seen_failovers + 1 to failovers do
            Metrics.note_failover metrics;
            Obs.Registry.incr (Obs.Registry.counter registry "detector.dead")
          done;
          t.seen_failovers <- failovers;
          (* Mirror retransmission work (stop-and-wait re-sends plus the
             certifier's refresh repair) as deltas. *)
          let net_retx = Sim.Network.retransmits network in
          Metrics.note_retransmits metrics (net_retx - t.seen_net_retransmits);
          t.seen_net_retransmits <- net_retx;
          let cert_retx = Certifier.retransmits certifier in
          Metrics.note_retransmits metrics (cert_retx - t.seen_cert_retransmits);
          t.seen_cert_retransmits <- cert_retx;
          Array.iter
            (fun r ->
              let id = Replica.id r in
              match Load_balancer.health lb ~replica:id with
              | Load_balancer.Dead ->
                if Certifier.is_marked_live certifier ~replica:id then
                  (* Stop gating eager commit and log GC on a corpse; a
                     wrongly-declared death heals on next contact. *)
                  Certifier.mark_down certifier ~replica:id
              | Load_balancer.Suspect -> ()
              | Load_balancer.Alive ->
                if
                  (not (Replica.is_crashed r))
                  && Load_balancer.is_live lb ~replica:id
                  && not (Certifier.is_marked_live certifier ~replica:id)
                then
                  if
                    Certifier.needs_state_transfer certifier ~replica:id
                    || Certifier.log_base certifier > Replica.v_local r
                  then begin
                    (* Back in contact but beyond log repair (evicted, or
                       the log was truncated past its position):
                       reprovision via checkpoint state transfer. *)
                    t.reprovisions <- t.reprovisions + 1;
                    Metrics.note_failover metrics;
                    Obs.Registry.incr
                      (Obs.Registry.counter registry "detector.reprovision");
                    crash_replica t id;
                    recover_replica t id
                  end
                  else
                    (* Plain rejoin: repair resends the missing suffix. *)
                    Certifier.mark_up ~applied:(Replica.v_local r) certifier
                      ~replica:id)
            replicas;
          loop ()
        in
        loop ());
    (* Certifier refresh repair: re-send un-acked suffixes to stalled
       replicas (delivery is idempotent at the receiver). *)
    if config.Config.retransmit_ms > 0.0 then
      Sim.Process.spawn engine (fun () ->
          let rec loop () =
            Sim.Process.sleep engine config.Config.retransmit_ms;
            Certifier.repair_tick certifier;
            loop ()
          in
          loop ())
  end;
  if Array.length lbs > 1 then begin
    (* --- LB state replication and takeover (docs/PROTOCOL.md, "Control
       plane"). The instance that believes itself active pushes a
       snapshot of its routing state every [lb_repl_ms] over the lossy
       network; the push doubles as the liveness heartbeat. A standby
       that hears nothing for [lb_suspect_after_ms] promotes itself: it
       bumps the routing epoch, reconstructs a conservative version
       floor by probing live replicas and the certifier, and only then
       starts taking client traffic. A deposed instance that keeps
       pushing is fenced by the epoch at every receiver, and learns of
       its own deposition from the successor's higher-epoch pushes. *)
    let reconstruct_floor k =
      (* The replicated [V_system] covers everything the deposed LB
         acked at least one push period ago; probing live replicas
         (applied versions) and the certifier (released head) covers
         the final window, because every client-acked commit was
         applied at its origin replica before the ack left. An
         unreachable node forfeits its probe after the bounded
         retransmission budget — takeover must not block on the very
         failure it is healing. *)
      let floor = ref (Load_balancer.v_system lbs.(k)) in
      let tries = Stdlib.max 1 config.Config.max_retransmits in
      let probe ~dst read =
        match
          Sim.Network.transfer_bounded network ~src:(lb_node k) ~dst ~size_bytes:16
            ~max_tries:tries
        with
        | Error `Timeout -> ()
        | Ok () -> (
          let v = read () in
          match
            Sim.Network.transfer_bounded network ~src:dst ~dst:(lb_node k)
              ~size_bytes:16 ~max_tries:tries
          with
          | Ok () -> if v > !floor then floor := v
          | Error `Timeout -> ())
      in
      Array.iter
        (fun r ->
          if not (Replica.is_crashed r) then
            probe ~dst:(Replica.id r) (fun () -> Replica.v_local r))
        replicas;
      if not (Certifier.is_crashed certifier) then
        probe
          ~dst:(Certifier.primary_net certifier)
          (fun () -> Certifier.version certifier);
      !floor
    in
    Array.iteri
      (fun k _ ->
        let other = 1 - k in
        (* State push (runs in the active role only). *)
        Sim.Process.spawn engine (fun () ->
            let rec loop () =
              Sim.Process.sleep engine config.Config.lb_repl_ms;
              if t.lb_self_active.(k) && not t.lb_crashed.(k) then begin
                let st = Load_balancer.capture lbs.(k) in
                let push_epoch = t.lb_self_epoch.(k) in
                Sim.Network.send network ~src:(lb_node k) ~dst:(lb_node other)
                  ~size_bytes:(Load_balancer.state_bytes st + 16)
                  (fun () ->
                    if not t.lb_crashed.(other) then
                      if push_epoch < t.lb_self_epoch.(other) then
                        (* A deposed active that has not yet learned of
                           the takeover: fence the push. *)
                        t.lb_fenced <- t.lb_fenced + 1
                      else begin
                        (* The sender claims the active role at our
                           epoch or later: we are the standby. *)
                        t.lb_self_active.(other) <- false;
                        t.lb_self_epoch.(other) <- push_epoch;
                        Load_balancer.absorb lbs.(other) st;
                        t.lb_heard.(other) <- Sim.Engine.now engine
                      end)
              end;
              loop ()
            in
            loop ());
        (* Takeover monitor (runs in the standby role only). *)
        Sim.Process.spawn engine (fun () ->
            let rec loop () =
              Sim.Process.sleep engine config.Config.lb_repl_ms;
              let now = Sim.Engine.now engine in
              if
                (not t.lb_self_active.(k))
                && (not t.lb_crashed.(k))
                && now -. t.lb_heard.(k) > config.Config.lb_suspect_after_ms
              then begin
                let epoch =
                  1
                  + Stdlib.max t.lb_epoch
                      (Stdlib.max t.lb_self_epoch.(0) t.lb_self_epoch.(1))
                in
                t.lb_self_epoch.(k) <- epoch;
                t.lb_self_active.(k) <- true;
                (* Detector grace: the standby never received contacts
                   directly, so seed last-contact now or its first sweep
                   would declare every replica dead at once. *)
                Array.iter
                  (fun r ->
                    Load_balancer.note_contact lbs.(k) ~replica:(Replica.id r) ~now)
                  replicas;
                let floor = reconstruct_floor k in
                Load_balancer.note_takeover lbs.(k) ~floor;
                (* Routing flips last: clients only reach the successor
                   once its floors are installed. *)
                t.lb_epoch <- epoch;
                t.lb_active <- k;
                t.lb_takeovers <- t.lb_takeovers + 1;
                Metrics.note_lb_takeover metrics;
                Obs.Registry.incr (Obs.Registry.counter registry "lb.takeover");
                Log.info (fun m ->
                    m "[%.3f] LB instance %d took over routing (epoch %d, floor v%d)"
                      (Sim.Engine.now engine) k epoch floor);
                t.lb_heard.(k) <- Sim.Engine.now engine
              end;
              loop ()
            in
            loop ()))
      lbs
  end;
  t

let engine t = t.engine
let config t = t.cfg
let mode t = Load_balancer.mode (active_lb t)
let metrics t = t.metrics
let certifier t = t.certifier
let load_balancer t = active_lb t
let lb_instance t k = t.lbs.(k)
let lb_count t = Array.length t.lbs
let lb_active_index t = t.lb_active
let lb_epoch t = t.lb_epoch
let lb_is_crashed t k = t.lb_crashed.(k)
let lb_takeovers t = t.lb_takeovers
let lb_fenced t = t.lb_fenced
let lb_cert_fenced t = lb_sum t Load_balancer.cert_fenced
let replica t i = t.replicas.(i)
let rng t = Util.Rng.split t.rng
let trace t = t.obs
let registry t = t.registry
let network t = t.network
let faults t = t.faults
let reprovisions t = t.reprovisions

(* --- telemetry ----------------------------------------------------- *)

(* Staleness of replica [r] as the version oracle sees it: how many
   committed versions [v_system] is ahead of the replica's applied
   [v_local]. The observatory's headline consistency gauge. *)
let replica_lag t r =
  Stdlib.max 0 (Load_balancer.v_system (active_lb t) - Replica.v_local r)

let max_lag t =
  Array.fold_left (fun acc r -> Stdlib.max acc (replica_lag t r)) 0 t.replicas

let update_gauges t =
  let refresh_total = ref 0 in
  Array.iteri
    (fun i r ->
      let pending = Replica.pending_refresh r in
      refresh_total := !refresh_total + pending;
      let name key = Printf.sprintf "replica%d.%s" i key in
      Obs.Registry.set (Obs.Registry.gauge t.registry (name "refresh_queue"))
        (float_of_int pending);
      Obs.Registry.set (Obs.Registry.gauge t.registry (name "active_txns"))
        (float_of_int (Replica.active_local r));
      Obs.Registry.set (Obs.Registry.gauge t.registry (name "v_local"))
        (float_of_int (Replica.v_local r));
      Obs.Registry.set (Obs.Registry.gauge t.registry (name "lag"))
        (float_of_int (replica_lag t r));
      Obs.Registry.set (Obs.Registry.gauge t.registry (name "watermark"))
        (float_of_int (Certifier.watermark t.certifier ~replica:i)))
    t.replicas;
  Obs.Registry.set (Obs.Registry.gauge t.registry "refresh_queue.total")
    (float_of_int !refresh_total);
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "replicas.lag.max")
    (float_of_int (max_lag t));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.log_base")
    (float_of_int (Certifier.log_base t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "lb.session_floors")
    (float_of_int (Load_balancer.session_count (active_lb t)));
  Metrics.set_health t.metrics
    ~lag_max:(float_of_int (max_lag t))
    ~cert_log:(Certifier.log_size t.certifier)
    ~watermark_horizon:(Certifier.log_base t.certifier)
    ~epoch:(Certifier.current_epoch t.certifier);
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.log_size")
    (float_of_int (Certifier.log_size t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.queue")
    (float_of_int (Sim.Resource.queue_length (Certifier.cpu t.certifier)));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.watermark.min")
    (float_of_int (Certifier.min_watermark t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.index_size")
    (float_of_int (Certifier.index_size t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "net.retransmits")
    (float_of_int (Sim.Network.retransmits t.network));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.retransmits")
    (float_of_int (Certifier.retransmits t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.evictions")
    (float_of_int (Certifier.evictions t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.epoch")
    (float_of_int (Certifier.current_epoch t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.fenced")
    (float_of_int (Certifier.fenced t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.promotions")
    (float_of_int (Certifier.promotions t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.standby_lag")
    (float_of_int (Certifier.standby_lag t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.elections")
    (float_of_int (Certifier.elections t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.vote_denials")
    (float_of_int (Certifier.vote_denials t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.lease_expiries")
    (float_of_int (Certifier.lease_expiries t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "lb.cert_fenced")
    (float_of_int (lb_cert_fenced t));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "lb.suspects")
    (float_of_int (lb_sum t Load_balancer.suspect_events));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "lb.failovers")
    (float_of_int (lb_sum t Load_balancer.failover_events));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "lb.takeovers")
    (float_of_int t.lb_takeovers);
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "lb.epoch")
    (float_of_int t.lb_epoch);
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "lb.fenced")
    (float_of_int t.lb_fenced);
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.backlog")
    (float_of_int (Certifier.backlog t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.shed")
    (float_of_int (Certifier.shed t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "certifier.expired")
    (float_of_int (Certifier.expired t.certifier));
  Obs.Registry.set
    (Obs.Registry.gauge t.registry "lb.admitted")
    (float_of_int (Load_balancer.admitted (active_lb t)));
  match t.faults with
  | None -> ()
  | Some f ->
    Obs.Registry.set
      (Obs.Registry.gauge t.registry "faults.drops")
      (float_of_int (Sim.Faults.drops f));
    Obs.Registry.set
      (Obs.Registry.gauge t.registry "faults.duplicates")
      (float_of_int (Sim.Faults.duplicates f));
    Obs.Registry.set
      (Obs.Registry.gauge t.registry "faults.delays")
      (float_of_int (Sim.Faults.delays f))

let attach_probes t sampler =
  Array.iteri
    (fun i r ->
      let name key = Printf.sprintf "replica%d.%s" i key in
      Obs.Sampler.add_resource sampler ~name:(name "cpu") (Replica.cpu r);
      Obs.Sampler.add sampler ~name:(name "refresh_queue") (fun () ->
          float_of_int (Replica.pending_refresh r));
      Obs.Sampler.add sampler ~name:(name "active_txns") (fun () ->
          float_of_int (Replica.active_local r));
      Obs.Sampler.add sampler ~name:(name "lag") (fun () ->
          float_of_int (replica_lag t r));
      Obs.Sampler.add sampler ~name:(name "lb_active") (fun () ->
          float_of_int (Load_balancer.active (active_lb t) ~replica:i)))
    t.replicas;
  Obs.Sampler.add sampler ~name:"replicas.lag.max" (fun () ->
      float_of_int (max_lag t));
  Obs.Sampler.add_resource sampler ~name:"certifier.cpu" (Certifier.cpu t.certifier);
  Obs.Sampler.add sampler ~name:"certifier.log_size" (fun () ->
      float_of_int (Certifier.log_size t.certifier));
  Obs.Sampler.add sampler ~name:"certifier.log_base" (fun () ->
      float_of_int (Certifier.log_base t.certifier));
  Obs.Sampler.add sampler ~name:"lb.session_floors" (fun () ->
      float_of_int (Load_balancer.session_count (active_lb t)));
  Obs.Sampler.add sampler ~name:"certifier.watermark.min" (fun () ->
      float_of_int (Certifier.min_watermark t.certifier));
  Obs.Sampler.add sampler ~name:"certifier.index_size" (fun () ->
      float_of_int (Certifier.index_size t.certifier));
  Obs.Sampler.add sampler ~name:"certifier.epoch" (fun () ->
      float_of_int (Certifier.current_epoch t.certifier));
  Obs.Sampler.add sampler ~name:"certifier.standby_lag" (fun () ->
      float_of_int (Certifier.standby_lag t.certifier));
  Obs.Sampler.add sampler ~name:"net.retransmits" (fun () ->
      float_of_int (Sim.Network.retransmits t.network));
  (* Overload channels: backlog depth, admitted in-flight and the shed /
     deadline counters — flat zero lines unless an overload knob is on. *)
  Obs.Sampler.add sampler ~name:"certifier.backlog" (fun () ->
      float_of_int (Certifier.backlog t.certifier));
  Obs.Sampler.add sampler ~name:"lb.admitted" (fun () ->
      float_of_int (Load_balancer.admitted (active_lb t)));
  Obs.Sampler.add sampler ~name:"txn.shed" (fun () ->
      float_of_int (Metrics.shed t.metrics));
  Obs.Sampler.add sampler ~name:"txn.deadline_expired" (fun () ->
      float_of_int (Metrics.deadline_expired t.metrics));
  (match t.faults with
  | None -> ()
  | Some f ->
    Obs.Sampler.add sampler ~name:"faults.drops" (fun () ->
        float_of_int (Sim.Faults.drops f)));
  (* Keep the registry's gauges fresh on the same cadence. *)
  Obs.Sampler.add sampler ~name:"v_system" (fun () ->
      update_gauges t;
      float_of_int (Load_balancer.v_system (active_lb t)))

let start_telemetry ?interval_ms t =
  let sampler = Obs.Sampler.create ?interval_ms t.engine in
  attach_probes t sampler;
  Obs.Sampler.start sampler;
  sampler

(* --- the run-health observatory ------------------------------------

   Windowed time series over the whole cluster: transaction outcomes
   stream in through the Metrics outcome observer; rate counters over
   monotonic sources (certifier decisions, retransmissions, faults,
   detector and HA events) are mirrored as deltas at each window close;
   consistency gauges (staleness, GC horizon, session floors, epoch)
   are read at the same instant. Everything here only reads simulation
   state — no RNG draw, no protocol event — so an observed run is
   bit-identical to a blind one. *)

let start_observatory ?window_ms t =
  let window_ms = Option.value window_ms ~default:t.cfg.Config.obs_window_ms in
  let ts =
    Obs.Timeseries.create ~window_ms
      ~buckets_per_decade:t.cfg.Config.obs_hist_buckets_per_decade t.engine
  in
  (* Outcome stream -> windowed counters + latency distributions. *)
  let c_commit = Obs.Timeseries.counter ts "txn.commit" in
  let c_commit_ro = Obs.Timeseries.counter ts "txn.commit_ro" in
  let c_abort = Obs.Timeseries.counter ts "txn.abort" in
  let d_response = Obs.Timeseries.dist ts "response" in
  let d_stages =
    List.map
      (fun s -> (Metrics.stage_index s, Obs.Timeseries.dist ts ("stage." ^ Metrics.stage_name s)))
      Metrics.stages
  in
  (* Per-read-tier channels (docs/CONSISTENCY.md): commit rate, response
     and served staleness per class. Only materialized when read tiers
     are on, so the exported series of a classic run are unchanged. *)
  let tier_channels =
    if t.cfg.Config.read_tiers then
      List.map
        (fun slug ->
          ( slug,
            Obs.Timeseries.counter ts ("tier." ^ slug ^ ".commit"),
            Obs.Timeseries.dist ts ("tier." ^ slug ^ ".response"),
            Obs.Timeseries.dist ts ("tier." ^ slug ^ ".staleness") ))
        Consistency.all_tier_slugs
    else []
  in
  Metrics.set_observer t.metrics
    (Some
       (fun (o : Metrics.outcome) ->
         if o.Metrics.out_committed then begin
           Obs.Timeseries.bump (if o.Metrics.out_read_only then c_commit_ro else c_commit);
           Obs.Timeseries.observe d_response o.Metrics.out_response_ms;
           List.iter
             (fun (i, d) ->
               let v = o.Metrics.out_stages.(i) in
               if v > 0.0 then Obs.Timeseries.observe d v)
             d_stages;
           if o.Metrics.out_read_only then
             List.iter
               (fun (slug, c, d_resp, d_stale) ->
                 if slug = o.Metrics.out_tier then begin
                   Obs.Timeseries.bump c;
                   Obs.Timeseries.observe d_resp o.Metrics.out_response_ms;
                   Obs.Timeseries.observe d_stale (float_of_int o.Metrics.out_staleness)
                 end)
               tier_channels
         end
         else Obs.Timeseries.bump c_abort));
  (* Monotonic sources -> per-window deltas, mirrored at window close. *)
  let delta name read =
    let c = Obs.Timeseries.counter ts name in
    let seen = ref (read ()) in
    fun () ->
      let v = read () in
      Obs.Timeseries.bump c ~by:(v - !seen);
      seen := v
  in
  let mirrors =
    [
      delta "certifier.decisions" (fun () ->
          let commits, aborts = Certifier.decisions t.certifier in
          commits + aborts);
      delta "net.retransmits" (fun () ->
          Sim.Network.retransmits t.network + Certifier.retransmits t.certifier);
      delta "detector.suspect" (fun () -> lb_sum t Load_balancer.suspect_events);
      delta "detector.dead" (fun () -> lb_sum t Load_balancer.failover_events);
      delta "certifier.promotions" (fun () -> Certifier.promotions t.certifier);
      delta "certifier.fenced" (fun () -> Certifier.fenced t.certifier);
      delta "certifier.elections" (fun () -> Certifier.elections t.certifier);
      delta "certifier.vote_denials" (fun () -> Certifier.vote_denials t.certifier);
      delta "certifier.lease_expiries" (fun () ->
          Certifier.lease_expiries t.certifier);
      delta "lb.takeovers" (fun () -> t.lb_takeovers);
      (* Overload-protection channels (docs/PROTOCOL.md, "Overload &
         admission control"): zero-rate (and absent from rendered
         reports) unless a protection knob is on and actually fires. *)
      delta "txn.shed" (fun () -> Metrics.shed t.metrics);
      delta "txn.deadline_expired" (fun () -> Metrics.deadline_expired t.metrics);
      delta "txn.retry_budget_exhausted" (fun () ->
          Metrics.retry_budget_exhausted t.metrics);
    ]
    @
    match t.faults with
    | None -> []
    | Some f ->
      [
        delta "fault.drops" (fun () -> Sim.Faults.drops f);
        delta "fault.duplicates" (fun () -> Sim.Faults.duplicates f);
        delta "fault.delays" (fun () -> Sim.Faults.delays f);
      ]
  in
  Obs.Timeseries.add_pre_close ts (fun () -> List.iter (fun m -> m ()) mirrors);
  (* Consistency gauges, sampled at window close (also refreshes the
     registry gauges and the Metrics health snapshot). *)
  Obs.Timeseries.add_probe ts ~name:"v_system" (fun () ->
      update_gauges t;
      float_of_int (Load_balancer.v_system (active_lb t)));
  Array.iteri
    (fun i r ->
      Obs.Timeseries.add_probe ts
        ~name:(Printf.sprintf "replica%d.lag" i)
        (fun () -> float_of_int (replica_lag t r)))
    t.replicas;
  Obs.Timeseries.add_probe ts ~name:"replicas.lag.max" (fun () ->
      float_of_int (max_lag t));
  Obs.Timeseries.add_probe ts ~name:"certifier.log_size" (fun () ->
      float_of_int (Certifier.log_size t.certifier));
  Obs.Timeseries.add_probe ts ~name:"certifier.log_base" (fun () ->
      float_of_int (Certifier.log_base t.certifier));
  Obs.Timeseries.add_probe ts ~name:"certifier.watermark.min" (fun () ->
      float_of_int (Certifier.min_watermark t.certifier));
  Obs.Timeseries.add_probe ts ~name:"certifier.epoch" (fun () ->
      float_of_int (Certifier.current_epoch t.certifier));
  Obs.Timeseries.add_probe ts ~name:"certifier.standby_lag" (fun () ->
      float_of_int (Certifier.standby_lag t.certifier));
  Obs.Timeseries.add_probe ts ~name:"lb.session_floors" (fun () ->
      float_of_int (Load_balancer.session_count (active_lb t)));
  Obs.Timeseries.add_probe ts ~name:"certifier.backlog" (fun () ->
      float_of_int (Certifier.backlog t.certifier));
  Obs.Timeseries.add_probe ts ~name:"lb.admitted" (fun () ->
      float_of_int (Load_balancer.admitted (active_lb t)));
  Obs.Timeseries.add_probe ts ~name:"refresh_queue.total" (fun () ->
      Array.fold_left
        (fun acc r -> acc +. float_of_int (Replica.pending_refresh r))
        0.0 t.replicas);
  Obs.Timeseries.start ts;
  ts

let stop_observatory t ts =
  Obs.Timeseries.stop ts;
  Obs.Timeseries.flush ts;
  Metrics.set_observer t.metrics None

let render_key key =
  String.concat "," (List.map Storage.Value.to_string (Array.to_list key))

(* The checker library mirrors the tier type rather than depending on
   this one; translate at the recording boundary. *)
let runlog_tier = function
  | Consistency.Strong -> Check.Runlog.Strong
  | Consistency.Bounded_staleness { versions; ms } -> Check.Runlog.Bounded { versions; ms }
  | Consistency.Causal -> Check.Runlog.Causal
  | Consistency.Eventual -> Check.Runlog.Eventual

let record_commit t ~tid ~sid ~begin_time ~snapshot ~commit_version ~epoch ~lb_epoch
    ~tier ~table_set ~ws ~trace =
  if t.cfg.Config.record_log then begin
    let entries = Storage.Writeset.entries ws in
    let record =
      {
        Check.Runlog.tid;
        session = sid;
        begin_time;
        ack_time = Sim.Engine.now t.engine;
        snapshot_version = snapshot;
        commit_version;
        epoch;
        lb_epoch;
        tier = runlog_tier tier;
        table_set;
        tables_written = Storage.Writeset.tables ws;
        write_keys =
          List.map
            (fun e -> (e.Storage.Writeset.ws_table, render_key e.Storage.Writeset.ws_key))
            entries;
        trace;
      }
    in
    Check.Runlog.Sink.add t.log record
  end

(* An LB outage stalls response relays until the standby takes over or
   the instance revives — response legs are persistent, so they wait
   rather than time out. Never entered without [Config.lb_standby]
   (nothing ever crashes the only LB). *)
let await_routable t =
  let rec wait () =
    if t.lb_crashed.(t.lb_active) then begin
      Sim.Process.sleep t.engine (Float.max 1.0 t.cfg.Config.lb_repl_ms);
      wait ()
    end
  in
  wait ()

(* Response path shared by every outcome: replica -> LB -> client, with
   the LB's bookkeeping in between. [route_lb] is the instance that
   dispatched the transaction — its active-count must be balanced even
   if routing moved on — while floors and freshness go to whichever
   instance is authoritative when the response relays, so guarantees
   handed out after a takeover live where the next request looks. *)
let respond t ~route_lb ~route_epoch ~replica_id ~ack_bytes ~on_lb =
  (* The response implicitly reports the replica's applied version as of
     send time — free freshness information for the staleness router. *)
  let applied = Replica.v_local t.replicas.(replica_id) in
  (* Response legs are persistent transfers: once the replica holds a
     decision the client-visible outcome must eventually arrive, or a
     committed write would be reported lost. *)
  await_routable t;
  Sim.Network.transfer t.network ~src:replica_id ~dst:(lb_node t.lb_active)
    ~size_bytes:ack_bytes;
  Sim.Process.sleep t.engine t.cfg.Config.lb_ms;
  await_routable t;
  let lb = active_lb t in
  if t.cfg.Config.reliable then
    Load_balancer.note_contact lb ~replica:replica_id
      ~now:(Sim.Engine.now t.engine);
  Load_balancer.note_applied lb ~replica:replica_id ~version:applied;
  Load_balancer.note_complete route_lb ~replica:replica_id;
  if route_epoch < t.lb_epoch then
    (* The dispatching LB was deposed while the transaction ran; the
       relay is re-stamped by the successor. *)
    t.lb_fenced <- t.lb_fenced + 1;
  on_lb lb;
  Sim.Network.transfer t.network ~src:(lb_node t.lb_active) ~dst:Config.node_client
    ~size_bytes:ack_bytes

let submit t ~sid (req : Transaction.request) =
  let begin_time = Sim.Engine.now t.engine in
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  (* Deadline propagation (docs/PROTOCOL.md, "Overload & admission
     control"): the client's drop-dead point rides with the transaction;
     the version wait, the certify hand-off and the certifier itself all
     drop work past it — always strictly before a commit decision, so an
     expired transaction can never commit. [infinity] when off. *)
  let txn_deadline =
    if t.cfg.Config.deadline_ms > 0.0 then
      begin_time +. t.cfg.Config.deadline_ms
    else infinity
  in
  (* The stage clock: feeds both the aggregate breakdown and, when the
     cluster was created with [~tracing:true], the transaction's spans. *)
  let mtxn = Metrics.txn_begin ?obs:t.obs ~sid ~name:req.Transaction.profile t.metrics in
  let now () = Sim.Engine.now t.engine in
  (* Request legs carry no server-side side effect yet, so they may give
     up after a bounded number of retransmissions and surface a Timeout
     abort (the client retries with backoff). Without [reliable] the leg
     is the classic single exactly-once transfer. *)
  let leg_req ~src ~dst ~size_bytes =
    if t.cfg.Config.reliable then
      Sim.Network.transfer_bounded t.network ~src ~dst ~size_bytes
        ~max_tries:t.cfg.Config.max_retransmits
    else begin
      Sim.Network.transfer t.network ~src ~dst ~size_bytes;
      Ok ()
    end
  in
  let abort_unrouted reason =
    Metrics.txn_abort mtxn
      ~slug:(Transaction.abort_slug reason)
      ~reason:(Format.asprintf "%a" Transaction.pp_abort_reason reason);
    Obs.Registry.incr t.c_abort;
    Log.debug (fun m ->
        m "[%.3f] T%d aborted before dispatch: %a" (now ()) tid
          Transaction.pp_abort_reason reason);
    Transaction.Aborted { reason; response_ms = now () -. begin_time }
  in
  (* A crashed active LB answers nothing: the client burns its
     retransmission budget and times out (the standby's takeover flips
     routing for later requests). Checked before and after the leg —
     the instance may die while the request is in flight. *)
  let lb_down () = Array.length t.lbs > 1 && t.lb_crashed.(t.lb_active) in
  let abort_lb_down () =
    Sim.Process.sleep t.engine
      (t.cfg.Config.rto_ms *. float_of_int (Stdlib.max 1 t.cfg.Config.max_retransmits));
    abort_unrouted Transaction.Timeout
  in
  (* Client -> load balancer. *)
  if lb_down () then abort_lb_down ()
  else
  match
    leg_req ~src:Config.node_client ~dst:(lb_node t.lb_active)
      ~size_bytes:(request_bytes req)
  with
  | Error `Timeout -> abort_unrouted Transaction.Timeout
  | Ok () ->
  if lb_down () then abort_lb_down ()
  else begin
  Sim.Process.sleep t.engine t.cfg.Config.lb_ms;
  (* The dispatching instance and routing epoch are pinned here: the
     active-count must be balanced on this instance even if a takeover
     happens mid-flight, and the commit record carries the epoch so the
     floor-preservation checker can see across takeovers. *)
  let route_li = t.lb_active in
  let route_lb = t.lbs.(route_li) in
  let route_epoch = t.lb_epoch in
  (* Admission control: the LB refuses work it cannot afford before any
     replica is engaged — the refusal is answered straight back to the
     client with a retry-after hint, and the tid is remembered so the
     zombie-commit checker can prove a shed transaction never commits.
     All gates are off by default (see Config). *)
  let shed_abort retry_after_ms =
    Metrics.record_shed t.metrics;
    Obs.Registry.incr t.c_shed;
    Hashtbl.replace t.shed_tids tid ();
    Sim.Network.transfer t.network ~src:(lb_node route_li) ~dst:Config.node_client
      ~size_bytes:32;
    let reason = Transaction.Overloaded { retry_after_ms } in
    Metrics.txn_abort mtxn
      ~slug:(Transaction.abort_slug reason)
      ~reason:(Format.asprintf "%a" Transaction.pp_abort_reason reason);
    Transaction.Aborted { reason; response_ms = now () -. begin_time }
  in
  let strong = req.Transaction.tier = Consistency.Strong in
  let writes =
    List.exists Storage.Query.is_update req.Transaction.statements
  in
  (* Apply-lag governor: when the slowest live replica's applied
     watermark trails [V_system] by more than [apply_lag_gap] versions,
     new writes are refused — admitting them would only stretch the
     refresh backlog (and every tiered read's staleness) further. Reads
     stay admitted: they don't grow the backlog. *)
  if
    t.cfg.Config.apply_lag_gap > 0 && writes
    &&
    match Certifier.min_live_watermark t.certifier with
    | None -> false
    | Some w -> Certifier.version t.certifier - w > t.cfg.Config.apply_lag_gap
  then shed_abort t.cfg.Config.shed_retry_after_ms
  else begin
    let admission =
      if Load_balancer.admission_on t.cfg then
        match Load_balancer.admit route_lb ~now:(now ()) ~strong with
        | Ok () -> `Admitted
        | Error retry_after_ms -> `Shed retry_after_ms
      else `Off
    in
    match admission with
    | `Shed retry_after_ms -> shed_abort retry_after_ms
    | (`Admitted | `Off) as adm ->
      (if adm = `Admitted then
         Metrics.note_queue_depth t.metrics (Load_balancer.admitted route_lb));
      let release () =
        if adm = `Admitted then Load_balancer.release route_lb
      in
      Fun.protect ~finally:release @@ fun () ->
  (* Strong requests take the mode's version oracle; with read tiers
     enabled, a weaker read class is routed by staleness instead — the
     floor comes from the tier, the replica from its applied watermark.
     With tiers disabled the branch below is never entered for the
     default [Strong] tier, keeping this path byte-identical. *)
  let replica_id, v_start =
    if t.cfg.Config.read_tiers && req.Transaction.tier <> Consistency.Strong then
      Load_balancer.route_read route_lb ~sid ~tier:req.Transaction.tier ~now:(now ())
    else
      ( Load_balancer.choose_replica route_lb ~sid,
        Load_balancer.start_version route_lb ~sid
          ~table_set:req.Transaction.table_set )
  in
  let replica = t.replicas.(replica_id) in
  Load_balancer.note_dispatch route_lb ~replica:replica_id;
  (match Metrics.txn_trace_id mtxn with
  | None -> ()
  | Some trace_id ->
    Obs.Trace.instant_opt t.obs ~trace_id ~component:Obs.Span.Load_balancer ~name:"route"
      ~args:[ ("replica", string_of_int replica_id); ("v_start", string_of_int v_start) ]
      ());
  Metrics.txn_locate mtxn ~replica:replica_id;
  (* Load balancer -> replica. *)
  match
    leg_req ~src:(lb_node route_li) ~dst:replica_id ~size_bytes:(request_bytes req)
  with
  | Error `Timeout ->
    (* The replica never saw the request; undo the dispatch count and
       answer the client directly from the LB. *)
    Load_balancer.note_complete route_lb ~replica:replica_id;
    Sim.Network.transfer t.network ~src:(lb_node route_li) ~dst:Config.node_client
      ~size_bytes:32;
    abort_unrouted Transaction.Timeout
  | Ok () ->
  Log.debug (fun m ->
      m "[%.3f] T%d (session %d, %s) -> replica %d, start version %d" begin_time tid sid
        req.Transaction.profile replica_id v_start);
  let abort ?(finish = true) reason =
    if finish then Replica.finish_txn replica ~tid;
    respond t ~route_lb ~route_epoch ~replica_id ~ack_bytes:32 ~on_lb:(fun _ -> ());
    Metrics.txn_abort mtxn
      ~slug:(Transaction.abort_slug reason)
      ~reason:(Format.asprintf "%a" Transaction.pp_abort_reason reason);
    Obs.Registry.incr t.c_abort;
    Log.debug (fun m ->
        m "[%.3f] T%d aborted: %a" (now ()) tid Transaction.pp_abort_reason reason);
    Transaction.Aborted { reason; response_ms = now () -. begin_time }
  in
  (* Replica-side read-class admission: a weaker tier carrying update
     statements is a contract violation, rejected before any execution
     (a permanent abort — the client will not retry it). *)
  match Transaction.tier_violation req with
  | Some msg -> abort ~finish:false (Transaction.Statement_error msg)
  | None ->
  (* Stage: version — the synchronization start delay. *)
  Metrics.stage_enter mtxn Metrics.Version;
  let deadline =
    (* The start wait gives up at the earlier of the bounded-wait
       timeout and the transaction's own deadline. *)
    let start_wait =
      if t.cfg.Config.start_wait_timeout_ms > 0.0 then
        now () +. t.cfg.Config.start_wait_timeout_ms
      else infinity
    in
    let d = Float.min start_wait txn_deadline in
    if d = infinity then None else Some d
  in
  match Replica.await_version ?deadline replica v_start with
  | Error reason ->
    if now () >= txn_deadline then begin
      Metrics.record_deadline_expired t.metrics;
      Obs.Registry.incr t.c_deadline
    end;
    abort ~finish:false reason
  | Ok () -> (
    Metrics.stage_exit mtxn Metrics.Version;
    let txn = Replica.begin_txn replica ~tid in
    let snapshot = Storage.Txn.snapshot txn in
    (* Stage: queries. *)
    Metrics.stage_enter mtxn Metrics.Queries;
    let rec run_statements = function
      | [] -> Ok ()
      | stmt :: rest ->
        if Replica.abort_requested replica ~tid then Error Transaction.Early_certification
        else if Replica.is_crashed replica then Error Transaction.Replica_failure
        else begin
          match Replica.exec_statement replica txn stmt with
          | Storage.Query.Error msg -> Error (Transaction.Statement_error msg)
          | Storage.Query.Rows _ | Storage.Query.Affected _ ->
            if Storage.Query.is_update stmt && not (Replica.early_certify replica txn) then
              Error Transaction.Early_certification
            else run_statements rest
        end
    in
    let statement_result = run_statements req.Transaction.statements in
    match statement_result with
    | Error reason -> abort reason
    | Ok () -> (
      Metrics.stage_exit mtxn Metrics.Queries;
      let ws = Storage.Txn.writeset txn in
      if Storage.Writeset.is_empty ws then begin
        (* Read-only: commit locally, no certification. *)
        Metrics.stage_enter mtxn Metrics.Commit;
        Replica.commit_read_only replica txn;
        Metrics.stage_exit mtxn Metrics.Commit;
        Replica.finish_txn replica ~tid;
        respond t ~route_lb ~route_epoch ~replica_id ~ack_bytes:64 ~on_lb:(fun lb ->
            Load_balancer.note_snapshot_ack lb ~sid ~snapshot);
        let response_ms = now () -. begin_time in
        let stages = Metrics.txn_stages mtxn in
        (* Served staleness: versions the snapshot trails V_system at
           response time — the read tiers' quality-of-service number. *)
        let staleness =
          Stdlib.max 0 (Load_balancer.v_system (active_lb t) - snapshot)
        in
        Metrics.txn_commit mtxn ~read_only:true
          ~tier:(Consistency.tier_slug req.Transaction.tier)
          ~staleness;
        Obs.Registry.incr t.c_commit_ro;
        record_commit t ~tid ~sid ~begin_time ~snapshot ~commit_version:None
          ~epoch:(Certifier.current_epoch t.certifier)
          ~lb_epoch:route_epoch ~tier:req.Transaction.tier
          ~table_set:req.Transaction.table_set ~ws
          ~trace:(Metrics.txn_trace_id mtxn);
        Transaction.Committed { commit_version = None; snapshot; stages; response_ms }
      end
      else if now () > txn_deadline then begin
        (* The deadline passed while statements ran: drop the update
           before it ever reaches the certifier. *)
        Metrics.record_deadline_expired t.metrics;
        Obs.Registry.incr t.c_deadline;
        abort Transaction.Timeout
      end
      else begin
        (* Stage: certify — round trip to whichever group member holds
           the primary role when the request leaves. *)
        Metrics.stage_enter mtxn Metrics.Certify;
        let ws_bytes = Storage.Codec.writeset_bytes ws + 64 in
        match
          leg_req ~src:replica_id
            ~dst:(Certifier.primary_net t.certifier)
            ~size_bytes:ws_bytes
        with
        | Error `Timeout -> abort Transaction.Timeout
        | Ok () ->
        let trace =
          Option.map
            (fun id -> (id, Metrics.txn_root_span mtxn))
            (Metrics.txn_trace_id mtxn)
        in
        let decision =
          Certifier.certify ?trace ~applied:(Replica.v_local replica)
            ~deadline:txn_deadline t.certifier ~origin:replica_id ~snapshot ~ws
        in
        (* The decision leg is persistent: once certified, the outcome
           is durable at the certifier group and must reach the replica.
           It originates at the member that currently holds the role —
           after a failover the new primary answers for surviving
           decisions of older epochs. *)
        Sim.Network.transfer t.network
          ~src:(Certifier.primary_net t.certifier)
          ~dst:replica_id ~size_bytes:32;
        Metrics.stage_exit mtxn Metrics.Certify;
        match decision with
        | Certifier.Abort -> abort Transaction.Certification_conflict
        | Certifier.Overloaded ->
          (* Refused by the bounded certifier backlog: surfaced to the
             client exactly like an LB shed, with the same hint. *)
          Metrics.record_shed t.metrics;
          Obs.Registry.incr t.c_shed;
          Hashtbl.replace t.shed_tids tid ();
          abort
            (Transaction.Overloaded
               { retry_after_ms = t.cfg.Config.shed_retry_after_ms })
        | Certifier.Expired ->
          (* Its deadline passed while it queued at the certifier. *)
          Metrics.record_deadline_expired t.metrics;
          Obs.Registry.incr t.c_deadline;
          abort Transaction.Timeout
        | Certifier.Commit { version; epoch; global_commit = _ }
          when
            epoch < Certifier.current_epoch t.certifier
            && version > Certifier.epoch_base t.certifier ->
          (* Defensive replica-side fence: a commit stamped by a deposed
             primary for a version past the promotion point is not part
             of the surviving history. The certifier normally converts
             these to aborts itself, so this arm is belt-and-braces. *)
          Metrics.note_fenced t.metrics;
          abort Transaction.Certification_conflict
        | Certifier.Commit { version; epoch; global_commit } -> (
          (* Stages: sync (wait for predecessors) then commit; the
             sequencer reports when the commit work began, splitting the
             wait retroactively. *)
          Metrics.stage_enter mtxn Metrics.Sync;
          let done_ = Replica.commit_local replica ~version ~ws in
          match Sim.Ivar.read done_ with
          | Error reason -> abort ~finish:false reason
          | Ok commit_work_start ->
            Metrics.stage_exit ~at:commit_work_start mtxn Metrics.Sync;
            Metrics.stage_enter ~at:commit_work_start mtxn Metrics.Commit;
            Metrics.stage_exit mtxn Metrics.Commit;
            Replica.finish_txn replica ~tid;
            (* Stage: global — eager only. *)
            (match global_commit with
            | None -> ()
            | Some ivar ->
              Metrics.stage_enter mtxn Metrics.Global;
              Sim.Ivar.read ivar;
              Metrics.stage_exit mtxn Metrics.Global);
            respond t ~route_lb ~route_epoch ~replica_id ~ack_bytes:64
              ~on_lb:(fun lb ->
                Load_balancer.note_commit_ack ~epoch ~now:(now ()) lb ~sid ~version
                  ~tables_written:(Storage.Writeset.tables ws));
            let response_ms = now () -. begin_time in
            let stages = Metrics.txn_stages mtxn in
            Metrics.txn_commit mtxn ~read_only:false
              ~args:[ ("version", string_of_int version) ];
            Obs.Registry.incr t.c_commit;
            record_commit t ~tid ~sid ~begin_time ~snapshot ~commit_version:(Some version)
              ~epoch ~lb_epoch:route_epoch ~tier:Consistency.Strong
              ~table_set:req.Transaction.table_set ~ws
              ~trace:(Metrics.txn_trace_id mtxn);
            Log.debug (fun m ->
                m "[%.3f] T%d committed at v%d (snapshot v%d, %.2fms)" (now ()) tid
                  version snapshot response_ms);
            Transaction.Committed
              { commit_version = Some version; snapshot; stages; response_ms })
      end))
  end
  end

let run_for t ~warmup_ms ~measure_ms =
  let start = Sim.Engine.now t.engine in
  Sim.Engine.run t.engine ~until:(start +. warmup_ms);
  Metrics.reset_window t.metrics;
  Obs.Registry.reset t.registry;
  Check.Runlog.Sink.clear t.log;
  Sim.Engine.run t.engine ~until:(start +. warmup_ms +. measure_ms)

let records t = Check.Runlog.Sink.records t.log

let was_shed t ~tid = Hashtbl.mem t.shed_tids tid

let shed_count t = Hashtbl.length t.shed_tids


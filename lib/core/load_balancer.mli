(** The load balancer (§IV): client-facing router and version oracle.

    Routing picks the live replica with the fewest active transactions.
    Version accounting implements each consistency configuration's
    start-version rule:

    - [Coarse]: tag with [V_system], the version of the latest update
      transaction committed {e and acknowledged} through this balancer;
    - [Fine]: tag with the max table version [V_t] over the
      transaction's table-set (Table I of the paper);
    - [Session]: tag with the session's last acknowledged version;
    - [Eager]: tag 0 — replicas are already up to date when clients
      learn about commits.

    With {!Config.read_tiers} enabled the balancer additionally acts as
    a {e staleness router} for read-only requests carrying a
    non-[Strong] {!Consistency.read_tier}: it tracks every replica's
    last reported applied version ({!note_applied}, fed by response and
    heartbeat piggybacks) plus a bounded [V_system] history for
    ms-staleness floors, and {!route_read} picks a replica already at
    the request's floor — falling back to the most-caught-up one, where
    the floor is enforced by the replica's start wait, so a staleness
    contract is never violated, only served slower. *)

type t

(** Failure-detector verdict for a replica (see docs/FAULTS.md). The
    detector is passive state: it only changes when the cluster feeds it
    contacts ({!note_contact}) and runs {!sweep}; otherwise every
    replica stays [Alive] and routing is exactly the classic
    live-replica policy. *)
type status = Alive | Suspect | Dead

val create : ?rng:Util.Rng.t -> Config.t -> mode:Consistency.mode -> t
(** The RNG is used only by the [Random_replica] routing policy. *)

val mode : t -> Consistency.mode

(** {2 Routing} *)

val choose_replica : t -> sid:int -> int
(** Pick a live replica per the configured routing policy (the paper's
    system uses least-active; the session id only matters for the
    session-affinity policy), preferring detector-[Alive] replicas, then
    suspects, then detector-dead-but-manually-live ones. Raises
    [Failure] if none is live. *)

val note_dispatch : t -> replica:int -> unit

val note_complete : t -> replica:int -> unit

val active : t -> replica:int -> int

val set_live : t -> replica:int -> bool -> unit

val is_live : t -> replica:int -> bool

(** {2 Failure detector} *)

val note_contact : t -> replica:int -> now:float -> unit
(** Any message from the replica (heartbeat or transaction response):
    refreshes its last-contact time and clears Suspect/Dead back to
    [Alive] — contact always un-suspects. *)

val sweep : t -> now:float -> unit
(** Re-evaluate every replica against [Config.suspect_after_ms] /
    [dead_after_ms] of silence, transitioning Alive → Suspect → Dead
    (never back — only {!note_contact} resurrects). *)

val health : t -> replica:int -> status

val suspect_events : t -> int
(** Alive → Suspect transitions observed (monotonic). *)

val failover_events : t -> int
(** Transitions into [Dead] observed (monotonic). *)

(** {2 Version accounting} *)

val start_version : t -> sid:int -> table_set:string list -> int
(** The version the executing replica must reach before the transaction
    may start, per the balancer's consistency mode. *)

val note_commit_ack :
  ?epoch:int ->
  ?now:float ->
  t ->
  sid:int ->
  version:int ->
  tables_written:string list ->
  unit
(** Called when relaying a successful update-commit response to the
    client: updates [V_system], the written tables' [V_t], and the
    session version. [epoch] (default 0) is the certifier epoch that
    released the decision: a higher epoch is adopted, a stale one is
    counted ({!cert_fenced}) — but the version is applied either way,
    because a released decision belongs to the surviving history
    whatever epoch stamped it; refusing it would only weaken start
    versions. [now] (virtual time) timestamps the [V_system] advance in
    the staleness history when {!Config.read_tiers} is on; omitting it
    (or running with tiers off) records nothing. *)

val cert_epoch : t -> int
(** Highest certifier epoch seen on any commit ack. *)

val cert_fenced : t -> int
(** Commit acks relayed that carried a stale certifier epoch. *)

val note_snapshot_ack : t -> sid:int -> snapshot:int -> unit
(** Called when relaying a read-only commit in session mode: raises the
    session's version floor to the snapshot the client just observed, so
    its next transaction never reads an older one (monotone reads even
    when routed to a laggard replica). A no-op in the other modes — they
    either guarantee it structurally or don't promise it — unless
    {!Config.read_tiers} is on, where the floor is maintained in every
    mode because causal reads consult it. *)

val v_system : t -> int

val table_version : t -> string -> int

val session_version : t -> sid:int -> int

val prune_sessions : t -> applied_min:int -> unit
(** Drop session-version entries [<= applied_min], the cluster-wide
    minimum applied watermark ({!Certifier.min_watermark}). Safe because
    every replica has already applied those versions — the wait such an
    entry would impose is trivially satisfied, and a pruned session
    falls back to {!session_version}'s default of 0, which imposes the
    same (no) wait. Bounds [session_versions] growth under session-id
    churn: the table tracks only sessions that committed above the
    watermark, instead of every session ever seen. *)

val session_count : t -> int
(** Number of tracked session-version entries (test/telemetry hook for
    the {!prune_sessions} bound). *)

(** {2 Read-tier routing (docs/CONSISTENCY.md)} *)

val note_applied : t -> replica:int -> version:int -> unit
(** Record a replica's reported applied version (monotone). Fed by the
    cluster from transaction-response and heartbeat piggybacks, so the
    balancer's view is a lower bound on the replica's true progress —
    staleness-aware routing can only over-wait, never under-wait. *)

val applied_version : t -> replica:int -> int
(** Last applied version reported by the replica (0 until heard from). *)

val tier_floor : t -> sid:int -> tier:Consistency.read_tier -> now:float -> int
(** The snapshot floor a tiered read must reach: 0 for [Eventual], the
    session's floor for [Causal], and [max] of the version-lag and
    ms-lag floors for [Bounded_staleness] (an ms cutoff older than the
    retained {!Config.tier_history_ms} window resolves conservatively
    to the newest pruned version). Raises [Invalid_argument] for
    [Strong] — strong reads take the mode's {!start_version}. *)

(** {2 LB state replication and takeover (docs/PROTOCOL.md, "Control
    plane")}

    The routing state worth surviving a takeover — [V_system], certifier
    epoch, table/session floors, applied watermarks, tier-history base —
    is snapshotted by the active LB and max-merged by the standby, so
    pushes tolerate loss, duplication and reordering. The cluster owns
    the processes; this module only moves state. *)

type state
(** One replication snapshot. *)

val capture : t -> state

val state_bytes : state -> int
(** Wire size of a snapshot (for the simulated network). *)

val absorb : t -> state -> unit
(** Max-merge a snapshot into this instance: versions and floors only
    ever go up, so stale or duplicated pushes are no-ops. *)

val note_takeover : t -> floor:int -> unit
(** Install the takeover floor on a freshly promoted active LB:
    [V_system], the tier-history base and {!floor_min} are raised to
    [floor] — the max of the replicated [V_system] and the live
    replicas' probed commit points — so every guarantee the deposed LB
    had handed out (session floors included, which may lag replication
    by one push period) is covered conservatively. *)

val floor_min : t -> int
(** The takeover floor below which no session floor ever resolves
    (0 until a takeover happens). {!session_version} already applies
    it. *)

(** {2 Overload admission (docs/PROTOCOL.md, "Overload & admission
    control")}

    Two gates, both off by default: the [Config.admission_limit]
    concurrency cap and the [Config.admission_rate_tps] token bucket
    (refilled lazily on arrival — no timer events, no RNG draws).
    Priority shedding: a {e strong} (potentially-writing) request is
    capped at 7/8 of the concurrency limit and must leave a
    quarter-burst of tokens in reserve, so under pressure strong writes
    shed first and weak-tier reads degrade last. *)

val admission_on : Config.t -> bool
(** Whether either admission gate is configured — the cluster only
    calls {!admit}/{!release} (and counts admitted work) when true. *)

val admit : t -> now:float -> strong:bool -> (unit, float) result
(** Try to admit one transaction at virtual time [now]. [Ok ()] admits
    it (the caller must eventually {!release}); [Error retry_after_ms]
    sheds it with the hint the client should wait before re-offering
    ([Config.shed_retry_after_ms], or the bucket's time-to-token when
    that is longer). *)

val release : t -> unit
(** The admitted transaction was answered (committed {e or} aborted). *)

val admitted : t -> int
(** Transactions currently admitted and not yet answered. *)

val route_read : t -> sid:int -> tier:Consistency.read_tier -> now:float -> int * int
(** Route a read-only request of the given tier: returns
    [(replica, floor)]. Prefers live+healthy replicas whose known
    applied watermark already satisfies {!tier_floor} (picked by the
    configured routing policy among the qualifying set); when none
    qualifies, deterministically picks the most-caught-up replica
    (health-tiered, ties to the lowest id) — the returned floor must
    still be enforced by the replica's start wait, so the contract
    holds either way. [Eventual] reads carry no floor and take the
    plain policy pick — the routing policy already embodies "fastest
    replica" (least outstanding work). Raises [Failure] if no replica
    is live. *)

(** The certifier (§IV): the single component that decides commits.

    It (a) certifies update transactions against GSI's
    first-committer-wins rule, (b) assigns the total commit order by
    handing out the database version counter [V_commit], (c) makes
    decisions durable (modelled as a log-force service time plus a
    standby acknowledgement quorum), and (d) forwards each committed
    writeset to the other replicas as a refresh transaction. For the
    eager configuration it additionally counts per-transaction commit
    acknowledgements and reports global commit.

    Certification runs on a single-server CPU resource, so decisions are
    totally ordered. The writeset log is retained (indexed by version),
    which doubles as the recovery log replicas replay after a crash.

    {b Certification index} (docs/PROTOCOL.md, "Certification index and
    watermark GC"): under [Config.Keyed] (the default) the certifier
    maintains a hash index [(table, key) → last committed version] and
    decides the first-committer-wins check by probing the request's
    writeset keys — O(|writeset|) however stale the snapshot — instead
    of scanning the log over (snapshot, V]. [Config.Linear] keeps the
    scan as a differential-testing oracle; the two are decision- and
    event-identical, so the knob only moves host CPU. The index is soft
    state: pruned with the log, rebuilt from the promoted standby's log
    copy on {!failover}.

    {b Applied watermarks}: replicas piggyback their applied [V_local]
    on certification requests ([?applied]) and per-version acks
    ({!ack}); {!gc} truncates log and index below
    [min(live watermarks) - Config.watermark_slack], replacing blind
    fixed-window pruning with a rule that tracks what replicas still
    need.

    {b Group certification} (docs/PROTOCOL.md, "Batched certification
    and refresh"): when requests queue faster than they are decided, the
    first waiter to win the CPU becomes the {e leader} and drains up to
    [Config.cert_batch] queued requests, certifying them in one pass in
    arrival order. Intra-batch write-write conflicts abort the later
    arrival; the batch is assigned a contiguous version range, forced to
    the log once, replicated to the standbys before release, and
    propagated as one refresh batch message per replica. With
    [cert_batch = 1] every batch is a singleton and the event sequence —
    sleeps, random draws, message sizes — is identical to unbatched
    certification.

    {b Certifier high availability} (docs/PROTOCOL.md, "Certifier HA"):
    with [certifier_standbys > 0] the certifier is a {e group} of
    members, each with its own network endpoint
    ([Config.node_cert_standby]) and log copy. Commit decisions travel
    to the standbys as addressed, fault-injectable stop-and-wait
    transfers and are released only after [Config.standby_ack_quorum]
    caught-up standbys acknowledged them. In reliable mode standbys run
    a heartbeat failure detector against the primary; after
    [Config.cert_suspect_after_ms] of silence (plus a best-replicated-
    log-first candidacy stagger) the suspecting standby runs a
    {e quorum-intersecting election} (docs/PROTOCOL.md, "Control
    plane"): it must collect votes from a Raft-style majority of the
    caught-up voters that also intersects every
    [standby_ack_quorum]-sized ack set, and voters refuse candidates
    whose log head is behind their own — so no released decision can be
    re-assigned under {e any} quorum setting. Promotion bumps the
    {e epoch}; every certifier-originated message carries it and
    stale-epoch traffic is fenced, so a deposed but alive primary
    cannot commit behind the group's back and rejoins as a standby via
    log reconciliation (truncate to the promotion point, re-replicate
    forward). With [Config.voter_lease_ms > 0] a voter whose acks go
    silent while decisions are outstanding is demoted to learner after
    one lease window, bounding the quorum=all stall a
    partitioned-but-alive voter can cause. *)

type t

type decision =
  | Commit of { version : int; epoch : int; global_commit : unit Sim.Ivar.t option }
      (** [epoch] is the certifier epoch that released the decision (0
          until a failover ever happens). [global_commit] is present
          only under {!Consistency.Eager}: it fills once every live
          replica has committed the transaction. *)
  | Abort
  | Overloaded
      (** Refused at arrival by the bounded backlog
          ([Config.cert_queue_bound]) — no queueing, no log work, no
          virtual time consumed, and therefore never also committed. *)
  | Expired
      (** Dropped because the request's [?deadline] had passed — either
          on arrival or after queueing, but always strictly before the
          conflict check, so an expired transaction never commits. *)

val create :
  ?obs:Obs.Trace.t -> ?metrics:Metrics.t -> ?intern:Storage.Intern.t -> Sim.Engine.t ->
  Config.t -> rng:Util.Rng.t -> network:Sim.Network.t -> mode:Consistency.mode -> t
(** [?intern] shares the replication group's conflict-key intern table
    (see {!Storage.Intern}): the keyed certification index is keyed by
    its dense ids, so writesets built against the same table certify
    without allocating or hashing strings. Defaults to a private table —
    foreign writesets are then resolved through it on arrival, which is
    always correct, just slower.

    With [obs], every certification request emits a service span
    (component {!Obs.Span.Certifier}) carrying origin, snapshot, queue
    wait and the decision. With [metrics], each batch is recorded via
    {!Metrics.note_cert_batch}. With [certifier_standbys > 0] this also
    spawns the per-standby replication pushers, and — in reliable mode
    with [cert_heartbeat_ms > 0] — the standby failure detectors; with
    no standbys neither exists and runs are event-identical to the
    single-node certifier. *)

val subscribe :
  t -> replica:int ->
  (epoch:int -> (int option * int * Storage.Writeset.t) list -> unit) -> unit
(** Register a replica's refresh-delivery callback (invoked after a
    sampled network delay). Subscribing marks the replica live. The
    callback receives the releasing certifier's epoch and one batch of
    [(trace, version, writeset)] refresh transactions in ascending
    version order — a singleton list when [cert_batch = 1]. [trace] is
    the committing transaction's trace id when the run is traced. *)

val version : t -> int
(** Current [V_commit] (of the current primary). *)

val cpu : t -> Sim.Resource.t
(** The single-server certification CPU (for telemetry probes: its queue
    length is the certifier backlog). *)

val log_size : t -> int
(** Retained log entries ([version - log_base]) on the current primary. *)

val certify :
  ?trace:int * Obs.Span.t option ->
  ?applied:int ->
  ?deadline:float ->
  t -> origin:int -> snapshot:int -> ws:Storage.Writeset.t -> decision
(** Certify an update transaction. Blocks the calling process for the
    certifier service time. Must be called from within a process.
    [trace] is the caller's (trace id, parent span) for the service
    span; ignored when the certifier has no {!Obs.Trace.t}. [applied]
    piggybacks the origin replica's applied [V_local] (watermark
    accounting; costs no virtual time). [deadline] (virtual time,
    default none) is the request's drop-dead point: past it the request
    is answered [Expired] instead of being certified — checked on
    arrival and again when a batch leader drains it, never after a
    decision. *)

val ack : t -> replica:int -> version:int -> unit
(** A replica committed (applied) the given version: advances the
    replica's applied watermark, and under the eager configuration
    counts towards global commit. Watermarks are cumulative: reporting
    version [v] also acknowledges every pending eager wait [<= v] held
    by that replica, so a later report can stand in for a lost ack. *)

val heartbeat : t -> replica:int -> applied:int -> unit
(** Liveness + watermark report carried by the replica heartbeat
    (reliable mode): refreshes the replica's last-heard time and feeds
    the same cumulative watermark accounting as {!ack}. *)

val check_conflict : t -> snapshot:int -> ws:Storage.Writeset.t -> bool
(** The raw first-committer-wins decision over [(snapshot, version]],
    per the configured [Config.cert_index]. Consumes no virtual time and
    takes no CPU — exposed for the Bechamel micro-benches and the
    Linear/Keyed differential tests; {!certify} is the protocol entry
    point. Requires [snapshot >= log_base]. *)

val index_size : t -> int
(** Distinct (table, key) entries in the certification index (0 under
    [Config.Linear]). *)

val intern : t -> Storage.Intern.t
(** The conflict-key intern table the certification index is keyed by.
    Writesets built with it ({!Storage.Writeset.of_entries} [?intern])
    certify on the cached-id fast path. *)

(** {2 Applied watermarks and log truncation} *)

val watermark : t -> replica:int -> int
(** Highest version the replica has reported applied (0 before any
    report). *)

val min_watermark : t -> int
(** Minimum watermark over {e all} subscribed replicas, crashed ones
    included (their watermark freezes; [V_local] is durable, so this
    never overstates what a replica has applied). A permanent lower
    bound on every replica's applied version — what
    {!Load_balancer.prune_sessions} keys off. *)

val min_live_watermark : t -> int option
(** Minimum watermark over the {e live} replicas only; [None] when none
    is live. What the GC floor and the cluster's apply-lag governor
    ([Config.apply_lag_gap]) key off. *)

val gc : t -> unit
(** Evict watermark entries of replicas that are down and silent beyond
    [Config.evict_after_ms] (so a corpse cannot pin {!min_watermark} or
    — once marked down — the GC floor forever; see
    {!needs_state_transfer}), then truncate log and index below
    [min(live watermarks) - Config.watermark_slack]. No-op when no
    replica is live. *)

val needs_state_transfer : t -> replica:int -> bool
(** Whether the replica was evicted while down: its position in the
    refresh stream is forgotten and it must rejoin via state transfer
    (its log suffix may be gone). Cleared by {!mark_up}. *)

val evictions : t -> int
(** Watermark evictions performed (monotonic). *)

val writesets_from : t -> int -> (int * Storage.Writeset.t) list option
(** [(v, ws)] for all committed versions > the argument, ascending: the
    recovery replay stream. [None] if the requested suffix reaches below
    the pruned log horizon — the recovering replica then needs a state
    transfer instead. *)

val log_base : t -> int
(** Highest pruned version; the log covers (log_base, version]. *)

val prune : t -> keep_after:int -> unit
(** Discard log entries [<= keep_after], on every group member (bounded
    memory; the cluster prunes behind the slowest replica). The horizon
    is additionally clamped to the slowest non-crashed member's log head
    so a lagging standby can always catch up from the retained log.
    Transactions whose snapshot falls below the horizon are
    conservatively aborted at certification. *)

val mark_down : t -> replica:int -> unit
(** Remove a replica from the live set; pending eager transactions stop
    waiting for it, and it receives no further refresh writesets. *)

val mark_up : ?applied:int -> t -> replica:int -> unit
(** Return a replica to the live set. [applied] reports its recovered
    [V_local] (after catch-up or state transfer), re-seeding its
    watermark — an evicted replica re-enters the table at that version
    (not 0), so the GC floor resumes immediately. *)

val is_marked_live : t -> replica:int -> bool

val repair_tick : t -> unit
(** One pass of the refresh-repair loop (reliable mode): for every live
    subscriber whose applied watermark lags the log head {e and} made no
    progress since the previous tick, re-send (up to a cap) its un-acked
    log suffix as a refresh batch. Receivers dedup by version, so
    over-delivery is harmless; delivery still traverses the (lossy)
    network. Repair streams originate from the current primary's
    endpoint and carry the ruling epoch. *)

val retransmits : t -> int
(** Repair re-sends performed (monotonic). *)

val decisions : t -> int * int
(** (commits, aborts) decided since creation. *)

(** {2 Certifier replication and failover (state-machine approach, §IV)}

    With [certifier_standbys > 0] every commit decision is replicated
    over the network to the standby logs before the originating replica
    learns it, so a crash loses no released decision and promotion
    recovers immediately. While no primary is available, new
    certification requests queue in arrival order and resume after
    promotion; read-only transactions are unaffected. *)

val crash : t -> unit
(** Fail-stop the current primary. Raises [Invalid_argument] when no
    standby is configured. *)

val is_crashed : t -> bool
(** Whether the member currently holding the primary role is crashed
    (i.e. the group has no acting primary). *)

val failover : t -> unit
(** Manually promote the best eligible standby — highest replicated log
    first, member index breaking ties — and resume queued certification
    requests. Raises [Invalid_argument] if the primary is running or no
    eligible standby exists. The automatic path (reliable mode) instead
    runs a quorum-intersecting vote round from the standby failure
    detectors and promotes only an elected candidate. *)

val failovers : t -> int
(** Number of promotions performed (manual + automatic). *)

val promotions : t -> int
(** Automatic (detection-driven) promotions only. *)

val fenced : t -> int
(** Stale-epoch messages and decisions rejected by an epoch fence. *)

val elections : t -> int
(** Vote rounds started by suspecting standbys (not all of them won —
    compare {!promotions}). *)

val vote_denials : t -> int
(** Votes refused by a voter: candidate's log behind the voter's, stale
    target epoch, already voted for another candidate this epoch, or
    the voter is a learner. *)

val lease_expiries : t -> int
(** Voters demoted to learner by the liveness lease
    ([Config.voter_lease_ms]) after their acks went silent with
    decisions outstanding. Re-admission (catching back up to the log
    head) is not counted separately. *)

(** {2 Overload protection (docs/PROTOCOL.md, "Overload & admission
    control")} *)

val shed : t -> int
(** Requests refused [Overloaded] by the bounded backlog (monotonic;
    0 unless [Config.cert_queue_bound > 0]). *)

val expired : t -> int
(** Requests answered [Expired] because their deadline passed
    (monotonic; 0 unless callers pass [?deadline]). *)

val backlog : t -> int
(** Current pending-request queue length (telemetry probe). *)

(** {2 Group introspection (telemetry, chaos checkers)} *)

val group_size : t -> int
(** Members in the certifier group ([certifier_standbys + 1]). *)

val primary_index : t -> int
(** Member index currently holding the primary role. *)

val primary_net : t -> int
(** Network endpoint id of the current primary — the [src] of decisions
    and refresh batches, the [dst] of certification requests. *)

val current_epoch : t -> int

val epoch_base : t -> int
(** Log head of the current primary at its promotion: decisions beyond
    it from earlier epochs are fenced; decisions at or below it
    survived into the ruling history. *)

val node_version : t -> int -> int
(** Log head of member [k]. *)

val node_epoch : t -> int -> int

val node_crashed : t -> int -> bool

val node_acked : t -> int -> int
(** Highest log position member [k] has acknowledged to a primary. *)

val node_log : t -> int -> (int * Storage.Writeset.t) list
(** Member [k]'s retained log, ascending [(version, writeset)] — the
    chaos harness compares these across members for decision
    divergence. *)

val standby_lag : t -> int
(** Versions the slowest non-crashed standby's acknowledged position
    trails the primary's log head; 0 with no standbys. *)

val revive_node : t -> int -> unit
(** Bring a crashed member back. A revived primary (no promotion
    happened meanwhile) resumes the queue; a revived ex-primary or
    standby rejoins as a learner and is reconciled and caught up by
    replication before it votes or becomes promotable again. *)

val set_faults : t -> Sim.Faults.t -> unit
(** Attach the cluster's fault plan: the certifier consults
    {!Sim.Faults.slowdown} (keyed by the current primary's endpoint) on
    every service time, modelling gray failure of the certifier host. *)

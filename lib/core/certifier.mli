(** The certifier (§IV): the single component that decides commits.

    It (a) certifies update transactions against GSI's
    first-committer-wins rule, (b) assigns the total commit order by
    handing out the database version counter [V_commit], (c) makes
    decisions durable (modelled as a log-force service time), and (d)
    forwards each committed writeset to the other replicas as a refresh
    transaction. For the eager configuration it additionally counts
    per-transaction commit acknowledgements and reports global commit.

    Certification runs on a single-server CPU resource, so decisions are
    totally ordered. The writeset log is retained (indexed by version),
    which doubles as the recovery log replicas replay after a crash.

    {b Certification index} (docs/PROTOCOL.md, "Certification index and
    watermark GC"): under [Config.Keyed] (the default) the certifier
    maintains a hash index [(table, key) → last committed version] and
    decides the first-committer-wins check by probing the request's
    writeset keys — O(|writeset|) however stale the snapshot — instead
    of scanning the log over (snapshot, V]. [Config.Linear] keeps the
    scan as a differential-testing oracle; the two are decision- and
    event-identical, so the knob only moves host CPU. The index is soft
    state: pruned with the log, rebuilt from the promoted standby's log
    copy on {!failover}.

    {b Applied watermarks}: replicas piggyback their applied [V_local]
    on certification requests ([?applied]) and per-version acks
    ({!ack}); {!gc} truncates log and index below
    [min(live watermarks) - Config.watermark_slack], replacing blind
    fixed-window pruning with a rule that tracks what replicas still
    need.

    {b Group certification} (docs/PROTOCOL.md, "Batched certification
    and refresh"): when requests queue faster than they are decided, the
    first waiter to win the CPU becomes the {e leader} and drains up to
    [Config.cert_batch] queued requests, certifying them in one pass in
    arrival order. Intra-batch write-write conflicts abort the later
    arrival; the batch is assigned a contiguous version range, forced to
    the log once, replicated to the standbys in one round trip, and
    propagated as one refresh batch message per replica. With
    [cert_batch = 1] every batch is a singleton and the event sequence —
    sleeps, random draws, message sizes — is identical to unbatched
    certification. *)

type t

type decision =
  | Commit of { version : int; global_commit : unit Sim.Ivar.t option }
      (** [global_commit] is present only under {!Consistency.Eager}: it
          fills once every live replica has committed the transaction. *)
  | Abort

val create :
  ?obs:Obs.Trace.t -> ?metrics:Metrics.t -> Sim.Engine.t -> Config.t ->
  rng:Util.Rng.t -> network:Sim.Network.t -> mode:Consistency.mode -> t
(** With [obs], every certification request emits a service span
    (component {!Obs.Span.Certifier}) carrying origin, snapshot, queue
    wait and the decision. With [metrics], each batch is recorded via
    {!Metrics.note_cert_batch}. *)

val subscribe :
  t -> replica:int ->
  ((int option * int * Storage.Writeset.t) list -> unit) -> unit
(** Register a replica's refresh-delivery callback (invoked after a
    sampled network delay). Subscribing marks the replica live. The
    callback receives one batch of [(trace, version, writeset)] refresh
    transactions in ascending version order — a singleton list when
    [cert_batch = 1]. [trace] is the committing transaction's trace id
    when the run is traced. *)

val version : t -> int
(** Current [V_commit]. *)

val cpu : t -> Sim.Resource.t
(** The single-server certification CPU (for telemetry probes: its queue
    length is the certifier backlog). *)

val log_size : t -> int
(** Retained log entries ([version - log_base]). *)

val certify :
  ?trace:int * Obs.Span.t option ->
  ?applied:int ->
  t -> origin:int -> snapshot:int -> ws:Storage.Writeset.t -> decision
(** Certify an update transaction. Blocks the calling process for the
    certifier service time. Must be called from within a process.
    [trace] is the caller's (trace id, parent span) for the service
    span; ignored when the certifier has no {!Obs.Trace.t}. [applied]
    piggybacks the origin replica's applied [V_local] (watermark
    accounting; costs no virtual time). *)

val ack : t -> replica:int -> version:int -> unit
(** A replica committed (applied) the given version: advances the
    replica's applied watermark, and under the eager configuration
    counts towards global commit. Watermarks are cumulative: reporting
    version [v] also acknowledges every pending eager wait [<= v] held
    by that replica, so a later report can stand in for a lost ack. *)

val heartbeat : t -> replica:int -> applied:int -> unit
(** Liveness + watermark report carried by the replica heartbeat
    (reliable mode): refreshes the replica's last-heard time and feeds
    the same cumulative watermark accounting as {!ack}. *)

val check_conflict : t -> snapshot:int -> ws:Storage.Writeset.t -> bool
(** The raw first-committer-wins decision over [(snapshot, version]],
    per the configured [Config.cert_index]. Consumes no virtual time and
    takes no CPU — exposed for the Bechamel micro-benches and the
    Linear/Keyed differential tests; {!certify} is the protocol entry
    point. Requires [snapshot >= log_base]. *)

val index_size : t -> int
(** Distinct (table, key) entries in the certification index (0 under
    [Config.Linear]). *)

(** {2 Applied watermarks and log truncation} *)

val watermark : t -> replica:int -> int
(** Highest version the replica has reported applied (0 before any
    report). *)

val min_watermark : t -> int
(** Minimum watermark over {e all} subscribed replicas, crashed ones
    included (their watermark freezes; [V_local] is durable, so this
    never overstates what a replica has applied). A permanent lower
    bound on every replica's applied version — what
    {!Load_balancer.prune_sessions} keys off. *)

val gc : t -> unit
(** Evict watermark entries of replicas that are down and silent beyond
    [Config.evict_after_ms] (so a corpse cannot pin {!min_watermark} or
    — once marked down — the GC floor forever; see
    {!needs_state_transfer}), then truncate log and index below
    [min(live watermarks) - Config.watermark_slack]. No-op when no
    replica is live. *)

val needs_state_transfer : t -> replica:int -> bool
(** Whether the replica was evicted while down: its position in the
    refresh stream is forgotten and it must rejoin via state transfer
    (its log suffix may be gone). Cleared by {!mark_up}. *)

val evictions : t -> int
(** Watermark evictions performed (monotonic). *)

val writesets_from : t -> int -> (int * Storage.Writeset.t) list option
(** [(v, ws)] for all committed versions > the argument, ascending: the
    recovery replay stream. [None] if the requested suffix reaches below
    the pruned log horizon — the recovering replica then needs a state
    transfer instead. *)

val log_base : t -> int
(** Highest pruned version; the log covers (log_base, version]. *)

val prune : t -> keep_after:int -> unit
(** Discard log entries [<= keep_after] (bounded-memory operation; the
    cluster prunes behind the slowest replica). Transactions whose
    snapshot falls below the horizon are conservatively aborted at
    certification. *)

val mark_down : t -> replica:int -> unit
(** Remove a replica from the live set; pending eager transactions stop
    waiting for it, and it receives no further refresh writesets. *)

val mark_up : ?applied:int -> t -> replica:int -> unit
(** Return a replica to the live set. [applied] reports its recovered
    [V_local] (after catch-up or state transfer), re-seeding its
    watermark — an evicted replica re-enters the table here. *)

val is_marked_live : t -> replica:int -> bool

val repair_tick : t -> unit
(** One pass of the refresh-repair loop (reliable mode): for every live
    subscriber whose applied watermark lags the log head {e and} made no
    progress since the previous tick, re-send (up to a cap) its un-acked
    log suffix as a refresh batch. Receivers dedup by version, so
    over-delivery is harmless; delivery still traverses the (lossy)
    network. *)

val retransmits : t -> int
(** Repair re-sends performed (monotonic). *)

val decisions : t -> int * int
(** (commits, aborts) decided since creation. *)

(** {2 Certifier replication (state-machine approach, §IV)}

    With [certifier_standbys > 0] every commit decision is synchronously
    copied to the standby logs before the originating replica learns it,
    so a crash loses no decision and {!failover} promotes a standby
    immediately. While crashed, new certification requests queue and
    resume after failover; read-only transactions are unaffected. *)

val crash : t -> unit
(** Fail-stop the primary certifier. Raises [Invalid_argument] when no
    standby is configured. *)

val is_crashed : t -> bool

val failover : t -> unit
(** Promote a standby and resume queued certification requests. *)

val failovers : t -> int
(** Number of failovers performed. *)

val set_faults : t -> Sim.Faults.t -> unit
(** Attach the cluster's fault plan: the certifier consults
    {!Sim.Faults.slowdown} (keyed by [Config.node_certifier]) on every
    service time, modelling gray failure of the certifier host. *)

type workload = {
  think_ms : Util.Rng.t -> float;
  next_request : Util.Rng.t -> Transaction.request;
}

let spawn cluster ~sid ~rng workload =
  let engine = Cluster.engine cluster in
  let cfg = Cluster.config cluster in
  Sim.Process.spawn engine (fun () ->
      let rec loop () =
        let think = workload.think_ms rng in
        if think > 0.0 then Sim.Process.sleep engine think;
        let request = workload.next_request rng in
        let give_up () =
          Metrics.record_retry_exhausted (Cluster.metrics cluster);
          Obs.Registry.incr
            (Obs.Registry.counter (Cluster.registry cluster) "txn.retry_exhausted")
        in
        let rec attempt tries =
          match Cluster.submit cluster ~sid request with
          | Transaction.Committed _ -> ()
          | Transaction.Aborted { reason = Transaction.Statement_error _; _ } ->
            (* A logic error in the workload; retrying cannot help. *)
            give_up ()
          | Transaction.Aborted _ ->
            if tries < cfg.Config.max_retries then attempt (tries + 1) else give_up ()
        in
        attempt 0;
        loop ()
      in
      loop ())

let spawn_many cluster ~n ~first_sid workload =
  for i = 0 to n - 1 do
    spawn cluster ~sid:(first_sid + i) ~rng:(Cluster.rng cluster) workload
  done

let no_think _rng = 0.0

let exp_think ~mean_ms rng = Util.Rng.exponential rng ~mean:mean_ms

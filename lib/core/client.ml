type workload = {
  think_ms : Util.Rng.t -> float;
  next_request : Util.Rng.t -> Transaction.request;
}

type arrival =
  | Poisson
  | Fixed

(* Per-client retry budget (Config.retry_budget): a token bucket over
   virtual time, refilled lazily at spend points so it schedules no
   events of its own. [None] (budget off) touches nothing — the retry
   loop is bit-identical to the pre-budget behaviour. *)
type budget = {
  mutable tokens : float;
  mutable last_ms : float;
}

let budget_of_config (cfg : Config.t) now =
  if cfg.Config.retry_budget > 0.0 then
    Some { tokens = cfg.Config.retry_budget; last_ms = now }
  else None

let budget_take (cfg : Config.t) engine = function
  | None -> true
  | Some b ->
    let now = Sim.Engine.now engine in
    b.tokens <-
      Float.min cfg.Config.retry_budget
        (b.tokens +. ((now -. b.last_ms) /. 1000.0 *. cfg.Config.retry_budget_per_s));
    b.last_ms <- now;
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      true
    end
    else false

(* One business action: submit, retry per the abort class, and give up
   cleanly when out of budget. Shared by the closed-loop driver and the
   open-loop per-arrival handlers. *)
let run_transaction cluster ~sid ~rng ~budget request =
  let engine = Cluster.engine cluster in
  let cfg = Cluster.config cluster in
  let give_up () =
    Metrics.record_retry_exhausted (Cluster.metrics cluster);
    Obs.Registry.incr
      (Obs.Registry.counter (Cluster.registry cluster) "txn.retry_exhausted")
  in
  let give_up_budget () =
    Metrics.record_retry_budget_exhausted (Cluster.metrics cluster);
    Obs.Registry.incr
      (Obs.Registry.counter (Cluster.registry cluster) "txn.retry_budget_exhausted")
  in
  (* Capped jittered exponential backoff before retry number
     [tries] (1-based). With the base at 0 (the default) there is
     no sleep and no RNG draw — the retry loop is event-identical
     to the original immediate-retry behaviour. *)
  let backoff tries =
    let base = cfg.Config.retry_backoff_ms in
    if base > 0.0 then begin
      let cap = Float.max base cfg.Config.retry_backoff_max_ms in
      let d = Float.min cap (base *. (2.0 ** float_of_int (tries - 1))) in
      (* ±50% jitter decorrelates colliding retries. *)
      let jittered = d *. (0.5 +. Util.Rng.float rng 1.0) in
      Sim.Process.sleep engine jittered
    end
  in
  (* Abort-reason-aware give-up: certification losses consume the
     retry budget (the workload is conflicting with itself —
     backing off and eventually giving up sheds contention);
     failure-class aborts (replica crash, timeout) are the
     cluster's fault and retry — with backoff — until the cluster
     heals, so committed work is never abandoned to a transient
     outage. Statement errors are permanent and never retried.
     Overload sheds wait out the server's retry-after hint instead
     of the backoff curve. Every retry additionally spends one
     retry-budget token when a budget is configured; an empty
     bucket gives the transaction up rather than amplifying the
     very overload being shed. *)
  (* [tries] is the conflict budget; [total] counts every retry and
     drives the backoff exponent (so repeated transient failures
     still back off exponentially). *)
  let rec attempt ~tries ~total =
    match Cluster.submit cluster ~sid request with
    | Transaction.Committed _ -> ()
    | Transaction.Aborted { reason = Transaction.Statement_error _; _ } ->
      (* A logic error in the workload; retrying cannot help. *)
      give_up ()
    | Transaction.Aborted { reason = Transaction.Overloaded { retry_after_ms }; _ } ->
      if budget_take cfg engine budget then begin
        (* The hint is deterministic on purpose: overload runs stay
           reproducible, and decorrelation comes from each client's
           own position in virtual time. *)
        Sim.Process.sleep engine retry_after_ms;
        attempt ~tries ~total:(total + 1)
      end
      else give_up_budget ()
    | Transaction.Aborted { reason; _ } when Transaction.abort_is_transient reason ->
      if budget_take cfg engine budget then begin
        backoff (total + 1);
        attempt ~tries ~total:(total + 1)
      end
      else give_up_budget ()
    | Transaction.Aborted _ ->
      if tries < cfg.Config.max_retries then begin
        if budget_take cfg engine budget then begin
          backoff (total + 1);
          attempt ~tries:(tries + 1) ~total:(total + 1)
        end
        else give_up_budget ()
      end
      else give_up ()
  in
  attempt ~tries:0 ~total:0

let spawn cluster ~sid ~rng workload =
  let engine = Cluster.engine cluster in
  let cfg = Cluster.config cluster in
  Sim.Process.spawn engine (fun () ->
      let budget = budget_of_config cfg (Sim.Engine.now engine) in
      let rec loop () =
        let think = workload.think_ms rng in
        if think > 0.0 then Sim.Process.sleep engine think;
        let request = workload.next_request rng in
        run_transaction cluster ~sid ~rng ~budget request;
        loop ()
      in
      loop ())

let spawn_many cluster ~n ~first_sid workload =
  for i = 0 to n - 1 do
    spawn cluster ~sid:(first_sid + i) ~rng:(Cluster.rng cluster) workload
  done

let open_loop cluster ~sid ~rng ?(arrival = Poisson) ~rate_tps workload =
  if rate_tps <= 0.0 then invalid_arg "Client.open_loop: rate_tps must be > 0";
  let engine = Cluster.engine cluster in
  let cfg = Cluster.config cluster in
  let mean_gap_ms = 1000.0 /. rate_tps in
  Sim.Process.spawn engine (fun () ->
      (* One budget per arrival process: all of its in-flight handlers
         share the bucket, so the generator's aggregate retry traffic —
         not each transaction's — is what the budget caps. *)
      let budget = budget_of_config cfg (Sim.Engine.now engine) in
      let rec loop () =
        let gap =
          match arrival with
          | Poisson -> Util.Rng.exponential rng ~mean:mean_gap_ms
          | Fixed -> mean_gap_ms
        in
        Sim.Process.sleep engine gap;
        let request = workload.next_request rng in
        (* Fire-and-forget handler: the next arrival is scheduled by the
           clock, never by this transaction's completion — offered load
           does not self-throttle when the system slows down. *)
        Sim.Process.spawn engine (fun () ->
            run_transaction cluster ~sid ~rng ~budget request);
        loop ()
      in
      loop ())

let open_loop_many cluster ~n ~first_sid ?arrival ~rate_tps workload =
  for i = 0 to n - 1 do
    open_loop cluster ~sid:(first_sid + i)
      ~rng:(Cluster.rng cluster)
      ?arrival ~rate_tps:(rate_tps /. float_of_int n) workload
  done

let no_think _rng = 0.0

let exp_think ~mean_ms rng = Util.Rng.exponential rng ~mean:mean_ms

type workload = {
  think_ms : Util.Rng.t -> float;
  next_request : Util.Rng.t -> Transaction.request;
}

let spawn cluster ~sid ~rng workload =
  let engine = Cluster.engine cluster in
  let cfg = Cluster.config cluster in
  Sim.Process.spawn engine (fun () ->
      let rec loop () =
        let think = workload.think_ms rng in
        if think > 0.0 then Sim.Process.sleep engine think;
        let request = workload.next_request rng in
        let give_up () =
          Metrics.record_retry_exhausted (Cluster.metrics cluster);
          Obs.Registry.incr
            (Obs.Registry.counter (Cluster.registry cluster) "txn.retry_exhausted")
        in
        (* Capped jittered exponential backoff before retry number
           [tries] (1-based). With the base at 0 (the default) there is
           no sleep and no RNG draw — the retry loop is event-identical
           to the original immediate-retry behaviour. *)
        let backoff tries =
          let base = cfg.Config.retry_backoff_ms in
          if base > 0.0 then begin
            let cap = Float.max base cfg.Config.retry_backoff_max_ms in
            let d = Float.min cap (base *. (2.0 ** float_of_int (tries - 1))) in
            (* ±50% jitter decorrelates colliding retries. *)
            let jittered = d *. (0.5 +. Util.Rng.float rng 1.0) in
            Sim.Process.sleep engine jittered
          end
        in
        (* Abort-reason-aware give-up: certification losses consume the
           retry budget (the workload is conflicting with itself —
           backing off and eventually giving up sheds contention);
           failure-class aborts (replica crash, timeout) are the
           cluster's fault and retry — with backoff — until the cluster
           heals, so committed work is never abandoned to a transient
           outage. Statement errors are permanent and never retried. *)
        (* [tries] is the conflict budget; [total] counts every retry and
           drives the backoff exponent (so repeated transient failures
           still back off exponentially). *)
        let rec attempt ~tries ~total =
          match Cluster.submit cluster ~sid request with
          | Transaction.Committed _ -> ()
          | Transaction.Aborted { reason = Transaction.Statement_error _; _ } ->
            (* A logic error in the workload; retrying cannot help. *)
            give_up ()
          | Transaction.Aborted { reason; _ } when Transaction.abort_is_transient reason ->
            backoff (total + 1);
            attempt ~tries ~total:(total + 1)
          | Transaction.Aborted _ ->
            if tries < cfg.Config.max_retries then begin
              backoff (total + 1);
              attempt ~tries:(tries + 1) ~total:(total + 1)
            end
            else give_up ()
        in
        attempt ~tries:0 ~total:0;
        loop ()
      in
      loop ())

let spawn_many cluster ~n ~first_sid workload =
  for i = 0 to n - 1 do
    spawn cluster ~sid:(first_sid + i) ~rng:(Cluster.rng cluster) workload
  done

let no_think _rng = 0.0

let exp_think ~mean_ms rng = Util.Rng.exponential rng ~mean:mean_ms

type local_commit = (float, Transaction.abort_reason) result

type slot =
  | Refresh of { ws : Storage.Writeset.t; trace : int option }
  | Local of { ws : Storage.Writeset.t; done_ : local_commit Sim.Ivar.t }

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  rng : Util.Rng.t;
  obs : Obs.Trace.t option;
  id : int;
  mutable db : Storage.Database.t;
  cpu : Sim.Resource.t;
  version_changed : Sim.Condition.t;  (* broadcast when V_local advances or on crash *)
  slot_arrived : Sim.Condition.t;
  slots : (int, slot) Hashtbl.t;  (* version -> pending ordered-commit work *)
  active : (int, Storage.Txn.t * bool ref) Hashtbl.t;  (* tid -> txn, abort flag *)
  mutable crashed : bool;
  mutable slow_until : float;  (* hiccup window end; service times inflate until then *)
  mutable on_commit : (version:int -> unit) option;
  mutable applied_refresh : int;
}

let create ?obs engine cfg ~rng ~id db =
  {
    engine;
    cfg;
    rng;
    obs;
    id;
    db;
    cpu = Sim.Resource.create engine ~servers:cfg.Config.cpus_per_replica;
    version_changed = Sim.Condition.create engine;
    slot_arrived = Sim.Condition.create engine;
    slots = Hashtbl.create 64;
    active = Hashtbl.create 64;
    crashed = false;
    slow_until = neg_infinity;
    on_commit = None;
    applied_refresh = 0;
  }

let id t = t.id

let database t = t.db

let cpu t = t.cpu

let v_local t = Storage.Database.version t.db

let is_crashed t = t.crashed

let service_time t base =
  let base =
    if t.cfg.Config.service_jitter then base *. Util.Rng.exponential t.rng ~mean:1.0
    else base
  in
  if Sim.Engine.now t.engine < t.slow_until then base *. t.cfg.Config.hiccup_factor
  else base

(* Transient slowdown injector: independent per replica. *)
let hiccups t () =
  let rec loop () =
    Sim.Process.sleep t.engine
      (Util.Rng.exponential t.rng ~mean:t.cfg.Config.hiccup_interval_ms);
    let duration = Util.Rng.exponential t.rng ~mean:t.cfg.Config.hiccup_duration_ms in
    t.slow_until <- Sim.Engine.now t.engine +. duration;
    loop ()
  in
  loop ()

let notify_commit t ~version =
  match t.on_commit with None -> () | Some f -> f ~version

(* The commit sequencer: one process per replica that consumes slots in
   strict version order, interleaving refresh transactions with local
   commits exactly as the certifier ordered them. *)
let sequencer t () =
  let rec loop () =
    let next () = v_local t + 1 in
    Sim.Condition.await t.slot_arrived (fun () ->
        (not t.crashed) && Hashtbl.mem t.slots (next ()));
    let v = next () in
    (match Hashtbl.find_opt t.slots v with
    | None -> ()  (* crashed and cleaned up while waking; re-loop *)
    | Some (Refresh { ws; trace }) ->
      Hashtbl.remove t.slots v;
      let rows = Storage.Writeset.cardinal ws in
      (* The refresh-apply span joins the committing transaction's trace
         when the certifier forwarded its id; recovery replays (which
         have no originating trace) fall back to the commit version. *)
      let span =
        Obs.Trace.start_opt t.obs
          ~trace_id:(Option.value trace ~default:v)
          ~component:(Obs.Span.Replica t.id) ~name:"refresh.apply"
          ~args:
            [
              ("version", string_of_int v);
              ("rows", string_of_int rows);
              ("backlog", string_of_int (Hashtbl.length t.slots));
            ]
          ()
      in
      let cost =
        t.cfg.Config.ws_apply_base_ms
        +. (float_of_int rows *. t.cfg.Config.ws_apply_row_ms)
      in
      Sim.Resource.use t.cpu ~duration:(service_time t cost);
      Storage.Database.apply t.db ws ~version:v;
      t.applied_refresh <- t.applied_refresh + 1;
      Obs.Trace.finish_opt t.obs span;
      Sim.Condition.broadcast t.version_changed;
      notify_commit t ~version:v
    | Some (Local { ws; done_ }) ->
      Hashtbl.remove t.slots v;
      let commit_start = Sim.Engine.now t.engine in
      Sim.Resource.use t.cpu ~duration:(service_time t t.cfg.Config.commit_ms);
      Storage.Database.apply t.db ws ~version:v;
      Sim.Condition.broadcast t.version_changed;
      notify_commit t ~version:v;
      Sim.Ivar.fill done_ (Ok commit_start));
    loop ()
  in
  loop ()

let start t =
  Sim.Process.spawn t.engine (sequencer t);
  if t.cfg.Config.hiccup_interval_ms > 0.0 then Sim.Process.spawn t.engine (hiccups t)

let await_version t v =
  Sim.Condition.await t.version_changed (fun () -> t.crashed || v_local t >= v);
  if t.crashed then Error Transaction.Replica_failure else Ok ()

let begin_txn t ~tid =
  let txn = Storage.Txn.begin_ t.db in
  Hashtbl.replace t.active tid (txn, ref false);
  txn

let abort_requested t ~tid =
  match Hashtbl.find_opt t.active tid with
  | Some (_, flag) -> !flag
  | None -> false

let pending_refresh_writesets t =
  Hashtbl.fold
    (fun _ slot acc -> match slot with Refresh { ws; _ } -> ws :: acc | Local _ -> acc)
    t.slots []

let early_certify t txn =
  (not t.cfg.Config.early_certification)
  ||
  let ws = Storage.Txn.writeset txn in
  not
    (List.exists
       (fun pending -> Storage.Writeset.conflicts ws pending)
       (pending_refresh_writesets t))

let finish_txn t ~tid = Hashtbl.remove t.active tid

let exec_statement t txn stmt =
  Sim.Resource.acquire t.cpu;
  let result, cost = Storage.Query.exec txn stmt in
  let work =
    t.cfg.Config.stmt_base_ms
    +. (float_of_int cost.Storage.Txn.rows_scanned *. t.cfg.Config.row_scan_ms)
    +. (float_of_int cost.Storage.Txn.rows_read *. t.cfg.Config.row_read_ms)
    +. (float_of_int cost.Storage.Txn.rows_written *. t.cfg.Config.row_write_ms)
  in
  Sim.Process.sleep t.engine (service_time t work);
  Sim.Resource.release t.cpu;
  result

let commit_local t ~version ~ws =
  let done_ = Sim.Ivar.create t.engine in
  if t.crashed then Sim.Ivar.fill done_ (Error Transaction.Replica_failure)
  else begin
    Hashtbl.replace t.slots version (Local { ws; done_ });
    Sim.Condition.broadcast t.slot_arrived
  end;
  done_

let commit_read_only t _txn =
  Sim.Resource.use t.cpu ~duration:(service_time t t.cfg.Config.ro_commit_ms)

let receive_refresh ?trace t ~version ~ws =
  if not t.crashed then begin
    (* Early certification: abort active local transactions whose partial
       writesets conflict with the incoming refresh writeset. *)
    if t.cfg.Config.early_certification then
      Hashtbl.iter
        (fun _ (txn, flag) ->
          if (not !flag) && Storage.Writeset.conflicts (Storage.Txn.writeset txn) ws then
            flag := true)
        t.active;
    Hashtbl.replace t.slots version (Refresh { ws; trace });
    Sim.Condition.broadcast t.slot_arrived
  end

let set_on_commit t f = t.on_commit <- Some f

let crash t =
  t.crashed <- true;
  (* Abort in-flight local transactions. *)
  Hashtbl.iter (fun _ (_, flag) -> flag := true) t.active;
  Hashtbl.reset t.active;
  (* Fail local commits waiting for their sync turn; drop queued
     refreshes — recovery will replay them from the certifier log. *)
  let locals =
    Hashtbl.fold
      (fun _ slot acc ->
        match slot with Local { done_; _ } -> done_ :: acc | Refresh _ -> acc)
      t.slots []
  in
  Hashtbl.reset t.slots;
  List.iter (fun done_ -> Sim.Ivar.fill done_ (Error Transaction.Replica_failure)) locals;
  (* Wake waiters so they observe the crash. *)
  Sim.Condition.broadcast t.version_changed;
  Sim.Condition.broadcast t.slot_arrived

let checkpoint t = Storage.Database.snapshot t.db

let state_transfer t ~snapshot =
  if not t.crashed then invalid_arg "Replica.state_transfer: replica is running";
  t.db <- Storage.Database.of_snapshot snapshot

let recover t ~missed =
  List.iter
    (fun (version, ws) ->
      if version > v_local t then
        Hashtbl.replace t.slots version (Refresh { ws; trace = None }))
    missed;
  t.crashed <- false;
  Sim.Condition.broadcast t.slot_arrived

let active_local t = Hashtbl.length t.active

let pending_refresh t = List.length (pending_refresh_writesets t)

let applied_refresh t = t.applied_refresh

(* All replica-side maps are keyed by ints (commit versions, txn ids,
   interned conflict ids) — use the monomorphic table. *)
module Itbl = Util.Tables.Itbl

type local_commit = (float, Transaction.abort_reason) result

type slot =
  | Refresh of { ws : Storage.Writeset.t; trace : int option }
  | Local of { ws : Storage.Writeset.t; done_ : local_commit Sim.Ivar.t }

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  rng : Util.Rng.t;
  obs : Obs.Trace.t option;
  metrics : Metrics.t option;
  id : int;
  mutable db : Storage.Database.t;
  cpu : Sim.Resource.t;
  version_changed : Sim.Condition.t;  (* broadcast when V_local advances or on crash *)
  slot_arrived : Sim.Condition.t;
  slots : slot Itbl.t;  (* version -> pending ordered-commit work *)
  active : (Storage.Txn.t * bool ref) Itbl.t;  (* tid -> txn, abort flag *)
  mutable crashed : bool;
  mutable epoch : int;  (* bumped on crash: cancels in-flight apply lanes *)
  mutable cert_epoch : int;  (* highest certifier epoch seen on a refresh *)
  mutable fenced_refreshes : int;  (* stale-epoch refresh batches dropped *)
  mutable applying : Storage.Writeset.t list;
      (* writesets of the parallel apply group in flight (removed from
         [slots] but not yet published) — still visible to early
         certification; always [] under the serial sequencer *)
  pending_keys : int Util.Tables.Itbl.t;
      (* conflict-key refcounts over the pending refresh writesets
         ([slots]' Refresh entries plus [applying]) — the certifier's
         index shape reused so early certification probes its statement
         keys instead of scanning every pending writeset. Keyed by the
         group's interned conflict ids (the database's intern table). *)
  mutable slow_until : float;  (* hiccup window end; service times inflate until then *)
  mutable faults : Sim.Faults.t option;  (* gray-failure slowdown windows *)
  mutable on_commit : (version:int -> unit) option;
  mutable applied_refresh : int;
}

let create ?obs ?metrics engine cfg ~rng ~id db =
  {
    engine;
    cfg;
    rng;
    obs;
    metrics;
    id;
    db;
    cpu = Sim.Resource.create engine ~servers:cfg.Config.cpus_per_replica;
    version_changed = Sim.Condition.create engine;
    slot_arrived = Sim.Condition.create engine;
    slots = Itbl.create 64;
    active = Itbl.create 64;
    crashed = false;
    epoch = 0;
    cert_epoch = 0;
    fenced_refreshes = 0;
    applying = [];
    pending_keys = Util.Tables.Itbl.create 256;
    slow_until = neg_infinity;
    faults = None;
    on_commit = None;
    applied_refresh = 0;
  }

let id t = t.id

let database t = t.db

let cpu t = t.cpu

let v_local t = Storage.Database.version t.db

let is_crashed t = t.crashed

let set_faults t faults = t.faults <- Some faults

let service_time t base =
  let base =
    if t.cfg.Config.service_jitter then base *. Util.Rng.exponential t.rng ~mean:1.0
    else base
  in
  let base =
    if Sim.Engine.now t.engine < t.slow_until then base *. t.cfg.Config.hiccup_factor
    else base
  in
  match t.faults with
  | None -> base
  | Some f -> base *. Sim.Faults.slowdown f ~node:t.id

(* Transient slowdown injector: independent per replica. *)
let hiccups t () =
  let rec loop () =
    Sim.Process.sleep t.engine
      (Util.Rng.exponential t.rng ~mean:t.cfg.Config.hiccup_interval_ms);
    let duration = Util.Rng.exponential t.rng ~mean:t.cfg.Config.hiccup_duration_ms in
    t.slow_until <- Sim.Engine.now t.engine +. duration;
    loop ()
  in
  loop ()

let notify_commit t ~version =
  match t.on_commit with None -> () | Some f -> f ~version

(* Pending-key refcounts. Invariant: [pending_keys] is the multiset of
   conflict keys over exactly the writesets [pending_refresh_writesets]
   returns — added when a refresh writeset is queued, kept while a
   parallel group holds it in [applying], removed when it leaves the
   pending set (applied serially, published, or dropped by a crash). *)
let add_pending_keys t ws =
  let intern = Storage.Database.intern t.db in
  Array.iter
    (fun kid ->
      Util.Tables.Itbl.replace t.pending_keys kid
        (1 + Option.value (Util.Tables.Itbl.find_opt t.pending_keys kid) ~default:0))
    (Storage.Writeset.cids ws ~intern)

let remove_pending_keys t ws =
  let intern = Storage.Database.intern t.db in
  Array.iter
    (fun kid ->
      match Util.Tables.Itbl.find_opt t.pending_keys kid with
      | Some 1 -> Util.Tables.Itbl.remove t.pending_keys kid
      | Some n when n > 1 -> Util.Tables.Itbl.replace t.pending_keys kid (n - 1)
      | Some _ | None -> assert false (* refcount out of sync with the pending set *))
    (Storage.Writeset.cids ws ~intern)

(* --- Conflict-aware parallel refresh application ---------------------

   A run of consecutive queued refresh writesets is partitioned into
   {e lanes} — connected components of the graph whose edges join
   writesets sharing a conflict key ({!Storage.Writeset.keys}). Lanes
   are disjoint by construction, so they install concurrently on the
   replica CPUs; within a lane, version order is preserved (the per-key
   MVCC chains require ascending installs). [V_local] is published only
   when the whole run is installed, so no snapshot can observe a gap. *)

(* [partition_lanes ~intern items] groups [(version, trace, ws)] items
   (ascending versions) into conflict lanes, each ascending, in
   first-appearance order. Union-find over item indices, keyed by the
   interned conflict id. *)
let partition_lanes ~intern items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  let key_owner = Util.Tables.Itbl.create 64 in
  Array.iteri
    (fun i (_, _, ws) ->
      Array.iter
        (fun kid ->
          match Util.Tables.Itbl.find_opt key_owner kid with
          | Some j -> union i j
          | None -> Util.Tables.Itbl.add key_owner kid i)
        (Storage.Writeset.cids ws ~intern))
    arr;
  let lanes = Itbl.create 8 in
  let roots = ref [] in
  Array.iteri
    (fun i item ->
      let r = find i in
      match Itbl.find_opt lanes r with
      | Some acc -> acc := item :: !acc
      | None ->
        Itbl.add lanes r (ref [ item ]);
        roots := r :: !roots)
    arr;
  List.rev_map (fun r -> List.rev !(Itbl.find lanes r)) !roots

(* Cap the lane count at [p] by folding surplus lanes together
   round-robin. Folded lanes have disjoint conflict keys, so only the
   per-key (within-lane) order matters; re-sorting the merged lane by
   version keeps it and is deterministic. *)
let bucketize p lanes =
  if List.length lanes <= p then lanes
  else begin
    let buckets = Array.make p [] in
    List.iteri (fun i lane -> buckets.(i mod p) <- lane :: buckets.(i mod p)) lanes;
    Array.to_list buckets
    |> List.map (fun reversed ->
           List.concat (List.rev reversed)
           |> List.sort (fun (v1, _, _) (v2, _, _) -> compare v1 v2))
  end

(* One lane: install each writeset unpublished, in version order. The
   captured [epoch] cancels the lane if the replica crashes mid-group —
   recovery replays the group from the certifier log (installs are
   redo-idempotent, so partially installed writesets are safe). *)
let apply_lane t ~epoch ~lane_id lane () =
  List.iter
    (fun (v, trace, ws) ->
      if t.epoch = epoch && not t.crashed then begin
        let rows = Storage.Writeset.cardinal ws in
        (* Build the span args only when tracing is live: this runs per
           applied writeset, and the formatting is pure overhead on
           untraced runs. *)
        let span =
          match t.obs with
          | None -> None
          | Some _ ->
            Obs.Trace.start_opt t.obs
              ~trace_id:(Option.value trace ~default:v)
              ~component:(Obs.Span.Replica t.id) ~name:"refresh.apply"
              ~args:
                [
                  ("version", string_of_int v);
                  ("rows", string_of_int rows);
                  ("lane", string_of_int lane_id);
                ]
              ()
        in
        let cost =
          t.cfg.Config.ws_apply_base_ms
          +. (float_of_int rows *. t.cfg.Config.ws_apply_row_ms)
        in
        Sim.Resource.use t.cpu ~duration:(service_time t cost);
        if t.epoch = epoch then begin
          Storage.Database.apply_unpublished t.db ws ~version:v;
          t.applied_refresh <- t.applied_refresh + 1
        end;
        Obs.Trace.finish_opt t.obs span
      end)
    lane

(* Apply a run of consecutive refresh writesets starting at [first] as
   one group: fork the conflict lanes, join, publish once. *)
let apply_refresh_group t ~first run =
  let p = t.cfg.Config.apply_parallelism in
  let last = first + List.length run - 1 in
  t.applying <- List.map (fun (_, _, ws) -> ws) run;
  let lanes =
    bucketize p (partition_lanes ~intern:(Storage.Database.intern t.db) run)
  in
  (match t.metrics with
  | Some m -> Metrics.note_apply_group m ~size:(List.length run) ~lanes:(List.length lanes)
  | None -> ());
  let group_span =
    match t.obs with
    | None -> None
    | Some _ ->
      Obs.Trace.start_opt t.obs
        ~trace_id:(match run with (_, Some trace, _) :: _ -> trace | _ -> first)
        ~component:(Obs.Span.Replica t.id) ~name:"refresh.apply_batch"
        ~args:
          [
            ("versions", Printf.sprintf "%d..%d" first last);
            ("count", string_of_int (List.length run));
            ("lanes", string_of_int (List.length lanes));
            ("backlog", string_of_int (Itbl.length t.slots));
          ]
        ()
  in
  let epoch = t.epoch in
  Sim.Fork.join t.engine
    (List.mapi (fun lane_id lane -> apply_lane t ~epoch ~lane_id lane) lanes);
  Obs.Trace.finish_opt t.obs group_span;
  t.applying <- [];
  if t.epoch = epoch && not t.crashed then begin
    (* The group's writesets leave the pending set at publication; a
       crash mid-group resets [pending_keys] wholesale instead. *)
    List.iter (fun (_, _, ws) -> remove_pending_keys t ws) run;
    Storage.Database.publish t.db ~version:last;
    (* Settle slots re-queued at published versions while the group was
       in flight: recovery or a duplicated delivery leaves a stale
       Refresh (drop it and its pending keys), and a repair resend racing
       commit_local leaves a Local slot — its version just published, so
       the commit succeeded; fill its ivar or the submitter wedges (the
       sequencer never revisits a published version). *)
    for v = first to last do
      (match Itbl.find_opt t.slots v with
      | Some (Refresh { ws; _ }) -> remove_pending_keys t ws
      | Some (Local { done_; _ }) ->
        Sim.Ivar.fill done_ (Ok (Sim.Engine.now t.engine))
      | None -> ());
      Itbl.remove t.slots v
    done;
    Sim.Condition.broadcast t.version_changed;
    for v = first to last do
      notify_commit t ~version:v
    done
  end

(* The commit sequencer: one process per replica that consumes slots in
   strict version order, interleaving refresh transactions with local
   commits exactly as the certifier ordered them. With
   [apply_parallelism > 1] a run of consecutive refresh slots is drained
   and applied as one parallel group; [apply_parallelism = 1] keeps the
   serial one-version-at-a-time path, bit-identical to the pre-batching
   sequencer. *)
let sequencer t () =
  let parallelism = t.cfg.Config.apply_parallelism in
  (* Bound the group so readers waiting on [V_local] are not starved by
     an arbitrarily long backlog drained into one publish. *)
  let max_run = 4 * max 1 parallelism in
  let rec loop () =
    let next () = v_local t + 1 in
    Sim.Condition.await t.slot_arrived (fun () ->
        (not t.crashed) && Itbl.mem t.slots (next ()));
    let v = next () in
    (match Itbl.find_opt t.slots v with
    | None -> ()  (* crashed and cleaned up while waking; re-loop *)
    | Some (Refresh _) when parallelism > 1 ->
      let rec collect v acc n =
        if n >= max_run then List.rev acc
        else
          match Itbl.find_opt t.slots v with
          | Some (Refresh { ws; trace }) ->
            Itbl.remove t.slots v;
            collect (v + 1) ((v, trace, ws) :: acc) (n + 1)
          | Some (Local _) | None -> List.rev acc
      in
      let run = collect v [] 0 in
      apply_refresh_group t ~first:v run
    | Some (Refresh { ws; trace }) ->
      Itbl.remove t.slots v;
      remove_pending_keys t ws;
      let rows = Storage.Writeset.cardinal ws in
      (* The refresh-apply span joins the committing transaction's trace
         when the certifier forwarded its id; recovery replays (which
         have no originating trace) fall back to the commit version. *)
      let span =
        match t.obs with
        | None -> None
        | Some _ ->
          Obs.Trace.start_opt t.obs
            ~trace_id:(Option.value trace ~default:v)
            ~component:(Obs.Span.Replica t.id) ~name:"refresh.apply"
            ~args:
              [
                ("version", string_of_int v);
                ("rows", string_of_int rows);
                ("backlog", string_of_int (Itbl.length t.slots));
              ]
            ()
      in
      let cost =
        t.cfg.Config.ws_apply_base_ms
        +. (float_of_int rows *. t.cfg.Config.ws_apply_row_ms)
      in
      Sim.Resource.use t.cpu ~duration:(service_time t cost);
      Storage.Database.apply t.db ws ~version:v;
      t.applied_refresh <- t.applied_refresh + 1;
      (* Settle a slot re-queued at [v] while the apply held the CPU: a
         duplicated delivery leaves a stale Refresh (drop it and its
         pending keys), and a repair resend racing commit_local leaves a
         Local slot — [v] is now applied, so the commit succeeded; fill
         its ivar or the submitter wedges (this sequencer never revisits
         a published version). *)
      (match Itbl.find_opt t.slots v with
      | Some (Refresh { ws = rws; _ }) ->
        remove_pending_keys t rws;
        Itbl.remove t.slots v
      | Some (Local { done_; _ }) ->
        Itbl.remove t.slots v;
        Sim.Ivar.fill done_ (Ok (Sim.Engine.now t.engine))
      | None -> ());
      Obs.Trace.finish_opt t.obs span;
      Sim.Condition.broadcast t.version_changed;
      notify_commit t ~version:v
    | Some (Local { ws; done_ }) ->
      Itbl.remove t.slots v;
      let commit_start = Sim.Engine.now t.engine in
      Sim.Resource.use t.cpu ~duration:(service_time t t.cfg.Config.commit_ms);
      Storage.Database.apply t.db ws ~version:v;
      (* A repair resend can re-queue [v] as a Refresh while the commit
         held the CPU; it is now applied, so drop the stale slot and its
         pending keys. *)
      (match Itbl.find_opt t.slots v with
      | Some (Refresh { ws = rws; _ }) ->
        remove_pending_keys t rws;
        Itbl.remove t.slots v
      | Some (Local _) | None -> ());
      Sim.Condition.broadcast t.version_changed;
      notify_commit t ~version:v;
      Sim.Ivar.fill done_ (Ok commit_start));
    loop ()
  in
  loop ()

let start t =
  Sim.Process.spawn t.engine (sequencer t);
  if t.cfg.Config.hiccup_interval_ms > 0.0 then Sim.Process.spawn t.engine (hiccups t)

let await_version ?deadline t v =
  let expired () =
    match deadline with Some d -> Sim.Engine.now t.engine >= d | None -> false
  in
  (* A waiter with a deadline needs a wakeup at the deadline even if no
     version ever arrives; the scheduled broadcast is spurious for other
     waiters (they re-check their predicate and re-suspend). *)
  (match deadline with
  | Some d when (not t.crashed) && v_local t < v ->
    Sim.Engine.schedule t.engine ~delay:(Float.max 0.0 (d -. Sim.Engine.now t.engine))
      (fun () -> Sim.Condition.broadcast t.version_changed)
  | _ -> ());
  Sim.Condition.await t.version_changed (fun () ->
      t.crashed || v_local t >= v || expired ());
  if t.crashed then Error Transaction.Replica_failure
  else if v_local t >= v then Ok ()
  else Error Transaction.Timeout

let begin_txn t ~tid =
  let txn = Storage.Txn.begin_ t.db in
  Itbl.replace t.active tid (txn, ref false);
  txn

let abort_requested t ~tid =
  match Itbl.find_opt t.active tid with
  | Some (_, flag) -> !flag
  | None -> false

let pending_refresh_writesets t =
  Itbl.fold
    (fun _ slot acc -> match slot with Refresh { ws; _ } -> ws :: acc | Local _ -> acc)
    t.slots t.applying

let early_certify t txn =
  (not t.cfg.Config.early_certification)
  ||
  (* Probe the transaction's keys against the pending-key index —
     O(|writeset|) however deep the refresh backlog, where the previous
     [List.exists Writeset.conflicts] scanned every pending writeset. *)
  let ws = Storage.Txn.writeset txn in
  let kids = Storage.Writeset.cids ws ~intern:(Storage.Database.intern t.db) in
  not (Array.exists (fun kid -> Util.Tables.Itbl.mem t.pending_keys kid) kids)

let finish_txn t ~tid = Itbl.remove t.active tid

let exec_statement t txn stmt =
  Sim.Resource.acquire t.cpu;
  let result, cost = Storage.Query.exec txn stmt in
  let work =
    t.cfg.Config.stmt_base_ms
    +. (float_of_int cost.Storage.Txn.rows_scanned *. t.cfg.Config.row_scan_ms)
    +. (float_of_int cost.Storage.Txn.rows_read *. t.cfg.Config.row_read_ms)
    +. (float_of_int cost.Storage.Txn.rows_written *. t.cfg.Config.row_write_ms)
  in
  Sim.Process.sleep t.engine (service_time t work);
  Sim.Resource.release t.cpu;
  result

let commit_local t ~version ~ws =
  let done_ = Sim.Ivar.create t.engine in
  if t.crashed then Sim.Ivar.fill done_ (Error Transaction.Replica_failure)
  else if version <= v_local t then
    (* The certifier's refresh-repair resend already carried (and the
       sequencer applied) this version while our decision response was in
       flight: the writeset is installed, the commit is done. Never
       happens over the exactly-once network — repair is what races us. *)
    Sim.Ivar.fill done_ (Ok (Sim.Engine.now t.engine))
  else begin
    (match Itbl.find_opt t.slots version with
    | Some (Refresh { ws = rws; _ }) ->
      (* Same race, one step earlier: a repair resend queued our own
         commit as a refresh. Reclaim the slot for the local commit (the
         writesets are identical; the Local path fills [done_]). *)
      remove_pending_keys t rws
    | Some (Local _) | None -> ());
    Itbl.replace t.slots version (Local { ws; done_ });
    Sim.Condition.broadcast t.slot_arrived
  end;
  done_

let commit_read_only t _txn =
  Sim.Resource.use t.cpu ~duration:(service_time t t.cfg.Config.ro_commit_ms)

let enqueue_refresh_batch t items =
  begin
    List.iter
      (fun (trace, version, ws) ->
        (* Dedup by version: the network may duplicate batches and the
           certifier's repair loop re-sends un-acked suffixes, so any
           version already applied (<= V_local) or already queued —
           including our own pending Local commit, which a repair resend
           must never clobber — is dropped here. Refresh delivery is
           thereby idempotent; versions are the sequence numbers. *)
        if version > v_local t && not (Itbl.mem t.slots version) then begin
          (* Early certification: abort active local transactions whose
             partial writesets conflict with an incoming refresh writeset. *)
          if t.cfg.Config.early_certification then
            Itbl.iter
              (fun _ (txn, flag) ->
                if
                  (not !flag)
                  && (not (Storage.Txn.is_read_only txn))
                  && Storage.Writeset.conflicts (Storage.Txn.writeset txn) ws
                then flag := true)
              t.active;
          add_pending_keys t ws;
          Itbl.replace t.slots version (Refresh { ws; trace })
        end)
      items;
    Sim.Condition.broadcast t.slot_arrived
  end

let receive_refresh_batch ?(epoch = 0) t items =
  if not t.crashed then begin
    (* Certifier epoch fence: a batch from an epoch older than one we
       have already seen was released by a deposed primary — its
       versions may collide with the surviving history, so the whole
       batch is dropped and counted. A higher epoch is adopted. With no
       certifier failover every batch carries epoch 0 and the fence is
       inert. *)
    if epoch < t.cert_epoch then t.fenced_refreshes <- t.fenced_refreshes + 1
    else begin
      if epoch > t.cert_epoch then t.cert_epoch <- epoch;
      enqueue_refresh_batch t items
    end
  end

let cert_epoch t = t.cert_epoch

let fenced_refreshes t = t.fenced_refreshes

let receive_refresh ?trace ?epoch t ~version ~ws =
  receive_refresh_batch ?epoch t [ (trace, version, ws) ]

let set_on_commit t f = t.on_commit <- Some f

let crash t =
  t.crashed <- true;
  t.epoch <- t.epoch + 1;  (* cancel in-flight parallel apply lanes *)
  t.applying <- [];
  (* Queued refreshes are dropped below and [applying] is cleared: the
     pending set empties, so the key index resets with it. *)
  Util.Tables.Itbl.reset t.pending_keys;
  (* Abort in-flight local transactions. *)
  Itbl.iter (fun _ (_, flag) -> flag := true) t.active;
  Itbl.reset t.active;
  (* Fail local commits waiting for their sync turn; drop queued
     refreshes — recovery will replay them from the certifier log. *)
  let locals =
    Itbl.fold
      (fun _ slot acc ->
        match slot with Local { done_; _ } -> done_ :: acc | Refresh _ -> acc)
      t.slots []
  in
  Itbl.reset t.slots;
  List.iter (fun done_ -> Sim.Ivar.fill done_ (Error Transaction.Replica_failure)) locals;
  (* Wake waiters so they observe the crash. *)
  Sim.Condition.broadcast t.version_changed;
  Sim.Condition.broadcast t.slot_arrived

let checkpoint t = Storage.Database.snapshot t.db

let state_transfer t ~snapshot =
  if not t.crashed then invalid_arg "Replica.state_transfer: replica is running";
  (* Keep the group's intern table across the wipe so cached conflict
     ids on in-flight writesets stay valid. *)
  t.db <- Storage.Database.of_snapshot ~intern:(Storage.Database.intern t.db) snapshot

let recover t ~missed =
  List.iter
    (fun (version, ws) ->
      if version > v_local t then begin
        if not (Itbl.mem t.slots version) then add_pending_keys t ws;
        Itbl.replace t.slots version (Refresh { ws; trace = None })
      end)
    missed;
  t.crashed <- false;
  Sim.Condition.broadcast t.slot_arrived

let active_local t = Itbl.length t.active

let pending_refresh t = List.length (pending_refresh_writesets t)

let applied_refresh t = t.applied_refresh

type routing =
  | Least_active
  | Round_robin
  | Random_replica
  | Session_affinity

type cert_index =
  | Linear
  | Keyed

let cert_index_name = function Linear -> "linear" | Keyed -> "keyed"

type t = {
  seed : int;
  replicas : int;
  cpus_per_replica : int;
  net_base_ms : float;
  net_jitter_ms : float;
  net_bandwidth_mbps : float;
  lb_ms : float;
  stmt_base_ms : float;
  row_scan_ms : float;
  row_read_ms : float;
  row_write_ms : float;
  ro_commit_ms : float;
  commit_ms : float;
  ws_apply_base_ms : float;
  ws_apply_row_ms : float;
  certify_base_ms : float;
  certify_row_ms : float;
  durability_ms : float;
  cert_batch : int;
  cert_index : cert_index;
  certifier_standbys : int;
  standby_ack_quorum : int;
  cert_heartbeat_ms : float;
  cert_suspect_after_ms : float;
  promotion_backoff_ms : float;
  apply_parallelism : int;
  hiccup_interval_ms : float;
  hiccup_duration_ms : float;
  hiccup_factor : float;
  service_jitter : bool;
  early_certification : bool;
  routing : routing;
  max_retries : int;
  record_log : bool;
  gc_interval_ms : float;
  gc_window : int;
  watermark_slack : int;
  retry_backoff_ms : float;
  retry_backoff_max_ms : float;
  reliable : bool;
  rto_ms : float;
  max_retransmits : int;
  retransmit_ms : float;
  heartbeat_ms : float;
  suspect_after_ms : float;
  dead_after_ms : float;
  evict_after_ms : float;
  start_wait_timeout_ms : float;
  obs_window_ms : float;
  obs_hist_buckets_per_decade : int;
  read_tiers : bool;
  tier_history_ms : float;
  cert_election_timeout_ms : float;
  voter_lease_ms : float;
  lb_standby : bool;
  lb_repl_ms : float;
  lb_suspect_after_ms : float;
  admission_limit : int;
  admission_rate_tps : float;
  admission_burst : float;
  cert_queue_bound : int;
  apply_lag_gap : int;
  shed_retry_after_ms : float;
  retry_budget : float;
  retry_budget_per_s : float;
  deadline_ms : float;
}

(* Fault-plan node ids: replicas use their index (>= 0); the other roles
   get fixed negative ids so Sim.Faults link rules and partitions can
   target them. *)
let node_client = -4
let node_lb = -3
let node_certifier = -2

(* Certifier group members: member 0 (the initial primary) keeps the
   classic [node_certifier] id; standby [k >= 1] gets a fixed id below
   the other roles so fault plans can partition an individual standby —
   or a promoted primary — without touching the rest of the cluster. *)
let node_cert_standby k = if k = 0 then node_certifier else -8 - k

(* The standby load balancer's endpoint (-5 is free: -6/-7 were never
   assigned and certifier standbys live at -9 and below). *)
let node_lb_standby = -5

let default =
  {
    seed = 42;
    replicas = 8;
    cpus_per_replica = 2;
    net_base_ms = 0.15;
    net_jitter_ms = 0.1;
    net_bandwidth_mbps = 1000.0;
    lb_ms = 0.05;
    stmt_base_ms = 0.3;
    row_scan_ms = 0.002;
    row_read_ms = 0.05;
    row_write_ms = 0.15;
    ro_commit_ms = 0.1;
    commit_ms = 0.25;
    ws_apply_base_ms = 0.08;
    ws_apply_row_ms = 0.04;
    certify_base_ms = 0.05;
    certify_row_ms = 0.005;
    durability_ms = 0.08;
    cert_batch = 1;
    cert_index = Keyed;
    certifier_standbys = 0;
    standby_ack_quorum = 0;
    cert_heartbeat_ms = 10.0;
    cert_suspect_after_ms = 40.0;
    promotion_backoff_ms = 10.0;
    apply_parallelism = 1;
    hiccup_interval_ms = 1_500.0;
    hiccup_duration_ms = 150.0;
    hiccup_factor = 8.0;
    service_jitter = true;
    early_certification = true;
    routing = Least_active;
    max_retries = 10;
    record_log = false;
    gc_interval_ms = 10_000.0;
    gc_window = 1_000;
    watermark_slack = 1_000;
    retry_backoff_ms = 0.0;
    retry_backoff_max_ms = 50.0;
    reliable = false;
    rto_ms = 2.0;
    max_retransmits = 8;
    retransmit_ms = 30.0;
    heartbeat_ms = 25.0;
    suspect_after_ms = 80.0;
    dead_after_ms = 400.0;
    evict_after_ms = 5_000.0;
    start_wait_timeout_ms = 0.0;
    obs_window_ms = 250.0;
    obs_hist_buckets_per_decade = 40;
    read_tiers = false;
    tier_history_ms = 5_000.0;
    cert_election_timeout_ms = 15.0;
    voter_lease_ms = 0.0;
    lb_standby = false;
    lb_repl_ms = 5.0;
    lb_suspect_after_ms = 25.0;
    (* overload protection (docs/PROTOCOL.md, "Overload & admission
       control"): every knob defaults off so an unprotected run is
       bit-identical to a build without the machinery. *)
    admission_limit = 0;
    admission_rate_tps = 0.0;
    admission_burst = 16.0;
    cert_queue_bound = 0;
    apply_lag_gap = 0;
    shed_retry_after_ms = 5.0;
    retry_budget = 0.0;
    retry_budget_per_s = 10.0;
    deadline_ms = 0.0;
  }

let hardened c =
  {
    c with
    reliable = true;
    start_wait_timeout_ms = 300.0;
    retry_backoff_ms = 0.5;
  }

let tpcw =
  {
    default with
    stmt_base_ms = 7.0;
    row_scan_ms = 0.05;
    row_read_ms = 0.4;
    row_write_ms = 1.2;
    ro_commit_ms = 1.0;
    commit_ms = 3.0;
    ws_apply_base_ms = 1.5;
    ws_apply_row_ms = 1.8;
    certify_base_ms = 0.2;
    certify_row_ms = 0.02;
    durability_ms = 0.3;
  }

let batched c = { c with cert_batch = 8; apply_parallelism = c.cpus_per_replica }

let validate c =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  if c.replicas < 1 then err "replicas must be >= 1 (got %d)" c.replicas
  else if c.certifier_standbys < 0 then
    err "certifier-standbys must be >= 0 (got %d)" c.certifier_standbys
  else if c.standby_ack_quorum > c.certifier_standbys then
    err
      "standby-ack-quorum (%d) exceeds the number of certifier standbys (%d): \
       no commit could ever be released"
      c.standby_ack_quorum c.certifier_standbys
  else if c.certifier_standbys > 0 && c.cert_heartbeat_ms < 0.0 then
    err "cert-heartbeat interval must be >= 0 (got %g ms)" c.cert_heartbeat_ms
  else if c.certifier_standbys > 0 && c.cert_heartbeat_ms > 0.0 && c.cert_suspect_after_ms <= 0.0
  then err "cert-suspect-after must be > 0 when heartbeats run (got %g ms)" c.cert_suspect_after_ms
  else if c.certifier_standbys > 0 && c.promotion_backoff_ms < 0.0 then
    err "promotion-backoff must be >= 0 (got %g ms)" c.promotion_backoff_ms
  else if c.certifier_standbys > 0 && c.cert_election_timeout_ms <= 0.0 then
    err "cert-election-timeout must be > 0 (got %g ms)" c.cert_election_timeout_ms
  else if c.voter_lease_ms < 0.0 then
    err "voter-lease must be >= 0 (0 disables; got %g ms)" c.voter_lease_ms
  else if c.lb_standby && c.lb_repl_ms <= 0.0 then
    err "lb-repl interval must be > 0 when the standby LB is on (got %g ms)" c.lb_repl_ms
  else if c.lb_standby && c.lb_suspect_after_ms <= 0.0 then
    err "lb-suspect-after must be > 0 when the standby LB is on (got %g ms)"
      c.lb_suspect_after_ms
  else if c.lb_standby && c.lb_suspect_after_ms <= c.lb_repl_ms then
    err
      "lb-suspect-after (%g ms) must exceed the lb-repl interval (%g ms) or the standby \
       deposes a healthy LB on every push gap"
      c.lb_suspect_after_ms c.lb_repl_ms
  else if c.admission_limit < 0 then
    err "admission-limit must be >= 1, or 0 to disable (got %d)" c.admission_limit
  else if c.admission_rate_tps < 0.0 then
    err "admission-rate must be > 0, or 0 to disable (got %g tps)" c.admission_rate_tps
  else if c.admission_rate_tps > 0.0 && c.admission_burst < 1.0 then
    err
      "admission-burst (%g) must be >= 1 token when the admission token bucket is on: \
       no request could ever be admitted"
      c.admission_burst
  else if c.cert_queue_bound < 0 then
    err "cert-queue-bound must be >= 1, or 0 to disable (got %d)" c.cert_queue_bound
  else if c.apply_lag_gap < 0 then
    err "apply-lag-gap must be >= 1, or 0 to disable (got %d versions)" c.apply_lag_gap
  else if c.apply_lag_gap > 0 && c.apply_lag_gap >= c.watermark_slack then
    err
      "apply-lag-gap (%d versions) must stay below watermark-slack (%d): a replica \
       lagging past the slack is forced into state transfer before the governor would \
       ever throttle writes"
      c.apply_lag_gap c.watermark_slack
  else if c.shed_retry_after_ms <= 0.0 then
    err "shed-retry-after must be > 0 (got %g ms)" c.shed_retry_after_ms
  else if c.retry_budget < 0.0 then
    err "retry-budget must be > 0 tokens, or 0 to disable (got %g)" c.retry_budget
  else if c.retry_budget > 0.0 && c.retry_budget_per_s <= 0.0 then
    err
      "retry-budget-per-s must be > 0 when the retry budget is on (got %g): an \
       exhausted client could never retry again"
      c.retry_budget_per_s
  else if c.deadline_ms < 0.0 then
    err "deadline must be > 0, or 0 to disable (got %g ms)" c.deadline_ms
  else Ok ()

let pp ppf c =
  Format.fprintf ppf
    "@[<v>replicas=%d cpus=%d seed=%d@,\
     net: base=%.2fms jitter=%.2fms bw=%.0fMbps lb=%.2fms@,\
     exec: stmt=%.2f scan=%.3f read=%.3f write=%.3f (ms)@,\
     commit: ro=%.2f upd=%.2f apply=%.2f+%.2f/row (ms)@,\
     certifier: %.2f+%.3f/row durability=%.2f index=%s (ms)@,\
     batching: cert_batch=%d apply_parallelism=%d@,\
     jitter=%b retries=%d record_log=%b watermark_slack=%d@,\
     reliable=%b rto=%.1fms max_retransmits=%d retransmit=%.0fms \
     heartbeat=%.0fms suspect=%.0fms dead=%.0fms evict=%.0fms \
     start_wait=%.0fms backoff=%.1f..%.0fms@,\
     certifier HA: standbys=%d ack_quorum=%s heartbeat=%.0fms suspect=%.0fms \
     promotion_backoff=%.0fms election_timeout=%.0fms voter_lease=%s@,\
     lb HA: standby=%b repl=%.0fms suspect=%.0fms@,\
     observatory: window=%.0fms hist_buckets/decade=%d@,\
     read tiers: enabled=%b history=%.0fms@,\
     overload: admission_limit=%s rate=%s burst=%.0f cert_queue_bound=%s \
     apply_lag_gap=%s retry_after=%.1fms retry_budget=%s deadline=%s@]"
    c.replicas c.cpus_per_replica c.seed c.net_base_ms c.net_jitter_ms c.net_bandwidth_mbps
    c.lb_ms c.stmt_base_ms c.row_scan_ms c.row_read_ms c.row_write_ms c.ro_commit_ms
    c.commit_ms c.ws_apply_base_ms c.ws_apply_row_ms c.certify_base_ms c.certify_row_ms
    c.durability_ms (cert_index_name c.cert_index) c.cert_batch c.apply_parallelism
    c.service_jitter c.max_retries c.record_log c.watermark_slack c.reliable c.rto_ms
    c.max_retransmits c.retransmit_ms c.heartbeat_ms c.suspect_after_ms c.dead_after_ms
    c.evict_after_ms c.start_wait_timeout_ms c.retry_backoff_ms c.retry_backoff_max_ms
    c.certifier_standbys
    (if c.standby_ack_quorum <= 0 then "all" else string_of_int c.standby_ack_quorum)
    c.cert_heartbeat_ms c.cert_suspect_after_ms c.promotion_backoff_ms
    c.cert_election_timeout_ms
    (if c.voter_lease_ms <= 0.0 then "off" else Printf.sprintf "%.0fms" c.voter_lease_ms)
    c.lb_standby c.lb_repl_ms c.lb_suspect_after_ms
    c.obs_window_ms c.obs_hist_buckets_per_decade c.read_tiers c.tier_history_ms
    (if c.admission_limit <= 0 then "off" else string_of_int c.admission_limit)
    (if c.admission_rate_tps <= 0.0 then "off"
     else Printf.sprintf "%.0ftps" c.admission_rate_tps)
    c.admission_burst
    (if c.cert_queue_bound <= 0 then "off" else string_of_int c.cert_queue_bound)
    (if c.apply_lag_gap <= 0 then "off" else string_of_int c.apply_lag_gap)
    c.shed_retry_after_ms
    (if c.retry_budget <= 0.0 then "off"
     else Printf.sprintf "%.0f@%.0f/s" c.retry_budget c.retry_budget_per_s)
    (if c.deadline_ms <= 0.0 then "off" else Printf.sprintf "%.0fms" c.deadline_ms)

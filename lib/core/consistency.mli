(** The four consistency configurations of the paper (§III–IV), plus
    the {{!read_tier} read-only tiers} of the mixed-consistency
    extension.

    The paper's {!mode} governs {e write} transactions and the default
    read path: it decides how long a transaction waits at start before
    its snapshot is considered fresh enough. A {!read_tier} is a
    per-request relaxation available to {e read-only} transactions
    when {!Config.read_tiers} is enabled: it trades snapshot freshness
    for response time under an explicit, checkable contract (see
    [docs/CONSISTENCY.md]). *)

type mode =
  | Eager  (** eager strong consistency: global commit delay *)
  | Coarse  (** lazy coarse-grained strong consistency: wait on [V_system] *)
  | Fine  (** lazy fine-grained strong consistency: wait on table-set versions *)
  | Session  (** session consistency: wait on the client's own last version *)
  | Bounded of int
      (** relaxed currency (extension, cf. §VI): transactions may start
          up to [k] versions behind [V_system]. [Bounded 0] coincides
          with [Coarse]. *)

val all : mode list
(** The paper's four configurations (excludes the [Bounded] extension). *)

val is_strong : mode -> bool
(** Whether the mode guarantees strong consistency ([Eager], [Coarse],
    [Fine], and [Bounded 0]). *)

val to_string : mode -> string

val of_string : string -> (mode, string) result

val pp : Format.formatter -> mode -> unit

(** {1 Read-only tiers}

    Orthogonal to {!mode}: a read-only request may declare a weaker
    consistency class than the cluster's write mode. Tiered requests
    never delay or weaken concurrent strong transactions — they only
    change where the read is routed and which snapshot floor it waits
    for. *)

type read_tier =
  | Strong
      (** Follow the cluster {!mode} — the default for every request.
          Update transactions are always [Strong]. *)
  | Bounded_staleness of {
      versions : int option;
          (** admit snapshots at most this many versions behind
              [V_system] at start *)
      ms : float option;
          (** admit snapshots no older than [V_system] as of this many
              virtual milliseconds ago *)
    }
      (** Client-declared staleness budget. When both bounds are given
          the snapshot must satisfy both (the floors are combined with
          [max]). The load balancer routes to any replica whose applied
          watermark already satisfies the bound; if none qualifies the
          read waits at the most-caught-up replica until it does — the
          bound is never violated. *)
  | Causal
      (** Read-your-writes + monotonic reads: the snapshot floor is the
          client session's own floor (last commit ack, last snapshot
          read), served without consulting [V_system]. *)
  | Eventual  (** Fastest replica, no snapshot floor at all. *)

val tier_slug : read_tier -> string
(** Stable identifier collapsing bound parameters ("strong",
    "bounded", "causal", "eventual") — used as metrics/telemetry key. *)

val all_tier_slugs : string list
(** All four {!tier_slug} values, in decreasing strength order. *)

val tier_to_string : read_tier -> string
(** Round-trippable rendering: ["strong"], ["bounded:8"],
    ["bounded:50ms"], ["bounded:8,50ms"], ["causal"], ["eventual"]. *)

val tier_of_string : string -> (read_tier, string) result
(** Parse {!tier_to_string}'s formats (case-insensitive). *)

val pp_tier : Format.formatter -> read_tier -> unit

(** Mutable binary min-heap priority queue.

    Elements are ordered by a float priority supplied at insertion time;
    ties are broken by insertion order (FIFO among equal priorities),
    which the simulator relies on for deterministic replay. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val length : 'a t -> int
(** Number of queued elements. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the minimum-priority element, or [None]
    if the queue is empty. Among equal priorities the element inserted
    first is returned first. *)

val min_prio : 'a t -> float
(** Priority of the minimum element. Undefined on an empty queue (may
    raise or return garbage) — guard with {!is_empty}. Allocation-free,
    unlike {!peek}. *)

val pop_exn : 'a t -> 'a
(** Remove and return the minimum-priority payload. Raises
    [Invalid_argument] on an empty queue. Allocation-free, unlike
    {!pop}; read {!min_prio} first when the priority is needed. *)

val peek : 'a t -> (float * 'a) option
(** [peek q] is the minimum-priority element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements. *)

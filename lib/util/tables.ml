(* Monomorphic hash tables for the hot paths.

   [Hashtbl.Make] over explicit key modules so hashing is monomorphic
   and equality is structural-by-construction — the generic [Hashtbl]
   falls back to polymorphic hashing, which both allocates (boxed key
   tuples) and hashes whatever the key happens to contain. The intern
   layer (Storage.Intern) reduces hot-path keys to dense ints; these are
   the tables those ints live in. *)

module Int_key = struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end

module Str_key = struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end

(** Int-keyed hash table: interned conflict-key ids, replica ids,
    session ids. *)
module Itbl = Hashtbl.Make (Int_key)

(** String-keyed hash table: table names. *)
module Stbl = Hashtbl.Make (Str_key)

(** Fixed-width bucketed histogram over [\[lo, hi)].

    Observations below [lo] land in the first bucket, at or above [hi] in
    the last. Used for coarse latency distribution reports. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** Requires [hi > lo] and [buckets > 0]. *)

val add : t -> float -> unit

val count : t -> int
(** Total number of observations. *)

val bucket_count : t -> int

val bucket_range : t -> int -> float * float
(** [bucket_range h i] is the [\[lo, hi)] range of bucket [i]. *)

val bucket_value : t -> int -> int
(** Observations recorded in bucket [i]. *)

val pp : Format.formatter -> t -> unit
(** Render a small ASCII bar chart. *)

(** Mergeable log-bucketed (HDR-style) histogram.

    Buckets are geometric: bucket [i] covers
    [\[10^(i/sub), 10^((i+1)/sub))] with [sub] buckets per decade, so the
    value range is unbounded in both directions and quantile answers
    carry a bounded {e relative} error of [10^(1/(2*sub)) - 1] (about
    2.9% at the default [sub = 40]). Two histograms with the same
    bucketing merge by pointwise count addition — commutative and
    associative — which is what lets per-window latency histograms roll
    up into whole-run distributions ({!Obs.Timeseries}). *)
module Log : sig
  type t

  val create : ?buckets_per_decade:int -> unit -> t
  (** Default 40 buckets per decade. Raises [Invalid_argument] when
      [buckets_per_decade <= 0]. *)

  val buckets_per_decade : t -> int

  val add : t -> float -> unit
  (** Record one observation. Values [<= 0] land in a dedicated zero
      bucket ordered below every geometric bucket. *)

  val count : t -> int

  val is_empty : t -> bool

  val min_value : t -> float
  (** Exact smallest observation (negative observations clamp to 0);
      [0.] when empty. *)

  val max_value : t -> float
  (** Exact largest observation; [0.] when empty. *)

  val percentile : t -> float -> float
  (** [percentile h p] with [p] in [\[0, 100\]] (clamped): nearest-rank
      over the buckets, answering with the hit bucket's geometric
      midpoint clamped to the exact observed [\[min, max\]]; a rank that
      lands on the last observation answers the exact max (so p100 is
      exact, matching {!Stats.percentile}). [0.] when empty. *)

  val merge : t -> t -> t
  (** A fresh histogram holding the observations of both arguments.
      Raises [Invalid_argument] on a bucketing mismatch. *)

  val clear : t -> unit

  val pp : Format.formatter -> t -> unit
  (** Render a small ASCII bar chart of the occupied buckets. *)
end

(* Binary min-heap over (priority, sequence, payload). The sequence number
   makes the ordering total and FIFO among equal priorities, so simulation
   runs are deterministic.

   Stored as three parallel arrays rather than an array of entry records:
   the priority array is an unboxed float array, so push/pop allocate
   nothing (the simulator pushes and pops one event per step — an entry
   record per event was the engine loop's dominant allocation), and the
   sift comparisons read adjacent flat memory. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { prios = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

let length q = q.size

let[@inline] is_empty q = q.size = 0

(* [lt q i j]: does slot [i] order strictly before slot [j]? *)
let[@inline] lt q i j =
  let pi = Array.unsafe_get q.prios i and pj = Array.unsafe_get q.prios j in
  pi < pj
  || (pi = pj && Array.unsafe_get q.seqs i < Array.unsafe_get q.seqs j)

let[@inline] swap q i j =
  let p = q.prios.(i) in
  q.prios.(i) <- q.prios.(j);
  q.prios.(j) <- p;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let x = q.payloads.(i) in
  q.payloads.(i) <- q.payloads.(j);
  q.payloads.(j) <- x

let grow q =
  let capacity = Array.length q.payloads in
  let new_capacity = if capacity = 0 then 16 else capacity * 2 in
  let prios = Array.make new_capacity 0.0 in
  Array.blit q.prios 0 prios 0 q.size;
  q.prios <- prios;
  let seqs = Array.make new_capacity 0 in
  Array.blit q.seqs 0 seqs 0 q.size;
  q.seqs <- seqs;
  (* Dummy slot reused to fill the fresh tail of the array. *)
  let payloads = Array.make new_capacity q.payloads.(0) in
  Array.blit q.payloads 0 payloads 0 q.size;
  q.payloads <- payloads

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  if left < q.size then begin
    let right = left + 1 in
    let smallest = if right < q.size && lt q right left then right else left in
    if lt q smallest i then begin
      swap q i smallest;
      sift_down q smallest
    end
  end

let push q prio payload =
  if Array.length q.payloads = 0 then begin
    q.prios <- Array.make 16 0.0;
    q.seqs <- Array.make 16 0;
    q.payloads <- Array.make 16 payload
  end
  else if q.size = Array.length q.payloads then grow q;
  let i = q.size in
  q.prios.(i) <- prio;
  q.seqs.(i) <- q.next_seq;
  q.payloads.(i) <- payload;
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q i

let[@inline] min_prio q = q.prios.(0)

let pop_exn q =
  if q.size = 0 then invalid_arg "Pqueue.pop_exn: empty";
  let top = q.payloads.(0) in
  let last = q.size - 1 in
  q.size <- last;
  if last > 0 then begin
    q.prios.(0) <- q.prios.(last);
    q.seqs.(0) <- q.seqs.(last);
    q.payloads.(0) <- q.payloads.(last);
    sift_down q 0
  end;
  (* The vacated slot keeps a stale payload reference until the next
     push overwrites it — same retention as the caller, who is about to
     run the popped event anyway. *)
  top

let pop q =
  if q.size = 0 then None
  else begin
    let prio = min_prio q in
    Some (prio, pop_exn q)
  end

let peek q = if q.size = 0 then None else Some (q.prios.(0), q.payloads.(0))

let clear q =
  q.size <- 0;
  q.prios <- [||];
  q.seqs <- [||];
  q.payloads <- [||]

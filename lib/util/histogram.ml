type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~buckets =
  assert (hi > lo);
  assert (buckets > 0);
  { lo; hi; counts = Array.make buckets 0; total = 0 }

let bucket_index t x =
  let buckets = Array.length t.counts in
  if x < t.lo then 0
  else if x >= t.hi then buckets - 1
  else begin
    let width = (t.hi -. t.lo) /. float_of_int buckets in
    let i = int_of_float ((x -. t.lo) /. width) in
    Stdlib.min i (buckets - 1)
  end

let add t x =
  let i = bucket_index t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total

let bucket_count t = Array.length t.counts

let bucket_range t i =
  let buckets = Array.length t.counts in
  let width = (t.hi -. t.lo) /. float_of_int buckets in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let bucket_value t i = t.counts.(i)

let pp ppf t =
  if t.total = 0 then Format.fprintf ppf "(no samples)@."
  else begin
    let buckets = Array.length t.counts in
    let max_count = Array.fold_left Stdlib.max 1 t.counts in
    for i = 0 to buckets - 1 do
      let lo, hi = bucket_range t i in
      let width = t.counts.(i) * 40 / max_count in
      Format.fprintf ppf "[%8.2f, %8.2f) %6d %s@." lo hi t.counts.(i)
        (String.make width '#')
    done
  end

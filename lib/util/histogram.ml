type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~buckets =
  assert (hi > lo);
  assert (buckets > 0);
  { lo; hi; counts = Array.make buckets 0; total = 0 }

let bucket_index t x =
  let buckets = Array.length t.counts in
  if x < t.lo then 0
  else if x >= t.hi then buckets - 1
  else begin
    let width = (t.hi -. t.lo) /. float_of_int buckets in
    let i = int_of_float ((x -. t.lo) /. width) in
    Stdlib.min i (buckets - 1)
  end

let add t x =
  let i = bucket_index t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total

let bucket_count t = Array.length t.counts

let bucket_range t i =
  let buckets = Array.length t.counts in
  let width = (t.hi -. t.lo) /. float_of_int buckets in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let bucket_value t i = t.counts.(i)

let pp ppf t =
  if t.total = 0 then Format.fprintf ppf "(no samples)@."
  else begin
    let buckets = Array.length t.counts in
    let max_count = Array.fold_left Stdlib.max 1 t.counts in
    for i = 0 to buckets - 1 do
      let lo, hi = bucket_range t i in
      let width = t.counts.(i) * 40 / max_count in
      Format.fprintf ppf "[%8.2f, %8.2f) %6d %s@." lo hi t.counts.(i)
        (String.make width '#')
    done
  end

(* --- Mergeable log-bucketed (HDR-style) histogram ------------------

   Bucket [i] covers the value range [10^(i/sub), 10^((i+1)/sub)), where
   [sub] is buckets-per-decade; [i] may be negative (values below 1).
   Quantiles answer with the bucket's geometric midpoint, so the
   relative error is bounded by 10^(1/(2*sub)) - 1 (~2.9% at the default
   sub = 40). Counts live in a hash table keyed by bucket index, so the
   value range is unbounded and merging is pointwise addition —
   commutative and associative, which is what lets per-window histograms
   roll up into a whole-run distribution. *)
module Log = struct
  type t = {
    sub : int;  (* buckets per decade *)
    buckets : (int, int ref) Hashtbl.t;
    mutable zeros : int;  (* observations <= 0, ordered below every bucket *)
    mutable total : int;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create ?(buckets_per_decade = 40) () =
    if buckets_per_decade <= 0 then
      invalid_arg "Histogram.Log.create: buckets_per_decade must be positive";
    {
      sub = buckets_per_decade;
      buckets = Hashtbl.create 64;
      zeros = 0;
      total = 0;
      min_v = infinity;
      max_v = neg_infinity;
    }

  let buckets_per_decade t = t.sub

  let bucket_of t x =
    (* floor(log10 x * sub); Float.log10 is exact enough for bucketing —
       a value landing one bucket off its true one stays within the
       error bound anyway. *)
    int_of_float (Float.floor (Float.log10 x *. float_of_int t.sub))

  let add t x =
    t.total <- t.total + 1;
    let key = Float.max x 0.0 in
    if key < t.min_v then t.min_v <- key;
    if key > t.max_v then t.max_v <- key;
    if x <= 0.0 then t.zeros <- t.zeros + 1
    else begin
      let i = bucket_of t x in
      match Hashtbl.find_opt t.buckets i with
      | Some c -> incr c
      | None -> Hashtbl.add t.buckets i (ref 1)
    end

  let count t = t.total

  let is_empty t = t.total = 0

  let min_value t = if t.total = 0 then 0.0 else t.min_v

  let max_value t = if t.total = 0 then 0.0 else t.max_v

  let sorted_buckets t =
    Hashtbl.fold (fun i c acc -> (i, !c) :: acc) t.buckets []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

  let representative t i =
    (* Geometric midpoint of [10^(i/sub), 10^((i+1)/sub)). *)
    Float.pow 10.0 ((float_of_int i +. 0.5) /. float_of_int t.sub)

  let percentile t p =
    if t.total = 0 then 0.0
    else begin
      let p = Float.max 0.0 (Float.min 100.0 p) in
      (* Nearest-rank, matching Stats.percentile. *)
      let rank =
        Stdlib.max 1
          (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.total)))
      in
      if rank <= t.zeros then 0.0
      else if rank >= t.total then t.max_v
      else begin
        let rec walk seen = function
          | [] -> t.max_v
          | (i, c) :: rest ->
            if seen + c >= rank then
              Float.min t.max_v (Float.max t.min_v (representative t i))
            else walk (seen + c) rest
        in
        walk t.zeros (sorted_buckets t)
      end
    end

  let merge a b =
    if a.sub <> b.sub then
      invalid_arg "Histogram.Log.merge: buckets_per_decade mismatch";
    let m = create ~buckets_per_decade:a.sub () in
    let blend src =
      Hashtbl.iter
        (fun i c ->
          match Hashtbl.find_opt m.buckets i with
          | Some dst -> dst := !dst + !c
          | None -> Hashtbl.add m.buckets i (ref !c))
        src.buckets;
      m.zeros <- m.zeros + src.zeros;
      m.total <- m.total + src.total;
      if src.total > 0 then begin
        if src.min_v < m.min_v then m.min_v <- src.min_v;
        if src.max_v > m.max_v then m.max_v <- src.max_v
      end
    in
    blend a;
    blend b;
    m

  let clear t =
    Hashtbl.reset t.buckets;
    t.zeros <- 0;
    t.total <- 0;
    t.min_v <- infinity;
    t.max_v <- neg_infinity

  let pp ppf t =
    if t.total = 0 then Format.fprintf ppf "(no samples)@."
    else begin
      let rows =
        (if t.zeros > 0 then [ (neg_infinity, 0.0, t.zeros) ] else [])
        @ List.map
            (fun (i, c) ->
              let lo = Float.pow 10.0 (float_of_int i /. float_of_int t.sub) in
              let hi =
                Float.pow 10.0 (float_of_int (i + 1) /. float_of_int t.sub)
              in
              (lo, hi, c))
            (sorted_buckets t)
      in
      let max_count = List.fold_left (fun acc (_, _, c) -> Stdlib.max acc c) 1 rows in
      List.iter
        (fun (lo, hi, c) ->
          let width = c * 40 / max_count in
          if lo = neg_infinity then
            Format.fprintf ppf "[  <=0.00          ) %6d %s@." c
              (String.make width '#')
          else
            Format.fprintf ppf "[%8.3g, %8.3g) %6d %s@." lo hi c
              (String.make width '#'))
        rows
    end
end

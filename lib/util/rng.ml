(* splitmix64: tiny, fast, and statistically solid enough for workload
   generation. State is a single 64-bit word advanced by a Weyl constant. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let copy t = { state = t.state }

let int t n =
  assert (n > 0);
  (* Mask to the 62 low bits: Int64.to_int wraps at the 63-bit native-int
     boundary, which would otherwise yield negative values. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land max_int in
  r mod n

let float t x =
  (* 53 random bits mapped to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let unit = float_of_int bits /. 9007199254740992.0 in
  unit *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t lo hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  (* Inverse transform; guard against log 0. *)
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

(* Zipf via the Gray et al. quick method used by YCSB: precomputation-free
   closed form based on zeta approximations would need table state, so we
   keep a small memo keyed by (n, theta). The memo is the one piece of
   module-level mutable state in the whole library — the multicore run
   driver (Experiments.Runner.map_jobs) executes independent simulations
   on parallel domains, so it is guarded by a mutex. The computed values
   are deterministic, so racing domains would only have duplicated work,
   but unsynchronized Hashtbl mutation can corrupt the table itself. *)
let zeta_memo : (int * float, float) Hashtbl.t = Hashtbl.create 8
let zeta_lock = Mutex.create ()

let zeta n theta =
  Mutex.lock zeta_lock;
  match Hashtbl.find_opt zeta_memo (n, theta) with
  | Some z ->
    Mutex.unlock zeta_lock;
    z
  | None ->
    let z = ref 0.0 in
    for i = 1 to n do
      z := !z +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    Hashtbl.add zeta_memo (n, theta) !z;
    Mutex.unlock zeta_lock;
    !z

let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    let zetan = zeta n theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta 2 theta /. zetan))
    in
    let u = float t 1.0 in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 theta then 1
    else
      let rank =
        int_of_float (float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha)
      in
      if rank >= n then n - 1 else rank
  end

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

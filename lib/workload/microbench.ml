type params = {
  tables : int;
  rows : int;
  update_types : int;
}

let default = { tables = 40; rows = 10_000; update_types = 0 }

let table_name i = Printf.sprintf "t%02d" i

(* One shared pad value: immutable, so every row aliases the same string. *)
let pad = String.make 100 'x'

let schema i =
  Storage.Schema.make ~name:(table_name i)
    ~columns:
      [ ("id", Storage.Value.Tint); ("val", Storage.Value.Tint); ("pad", Storage.Value.Ttext) ]
    ~key:[ "id" ] ()

let schemas p = List.init p.tables schema

let load p db =
  for t = 0 to p.tables - 1 do
    let rows =
      List.init p.rows (fun i ->
          [| Storage.Value.Int i; Storage.Value.Int (i * 17 mod 97); Storage.Value.Text pad |])
    in
    Storage.Database.load db (table_name t) rows
  done

let request p rng =
  assert (p.update_types >= 0 && p.update_types <= p.tables);
  let tx_type = Util.Rng.int rng p.tables in
  let table = table_name tx_type in
  let row = Util.Rng.int rng p.rows in
  let key = [| Storage.Value.Int row |] in
  if tx_type < p.update_types then
    Core.Transaction.make ~profile:(Printf.sprintf "upd_%s" table)
      [
        Storage.Query.Update_key
          {
            table;
            key;
            set = [ ("val", Storage.Expr.(Col 1 + i 1)) ];  (* val := val + 1 *)
          };
      ]
  else
    Core.Transaction.make ~profile:(Printf.sprintf "read_%s" table)
      [ Storage.Query.Get { table; key } ]

let workload p =
  { Core.Client.think_ms = Core.Client.no_think; next_request = request p }

let span_request p ~span rng =
  assert (span >= 1 && span <= p.tables);
  let tx_type = Util.Rng.int rng p.tables in
  if tx_type < p.update_types then
    let statements =
      List.init span (fun k ->
          let table = table_name ((tx_type + k) mod p.tables) in
          Storage.Query.Update_key
            {
              table;
              key = [| Storage.Value.Int (Util.Rng.int rng p.rows) |];
              set = [ ("val", Storage.Expr.(Col 1 + i 1)) ];
            })
    in
    Core.Transaction.make ~profile:(Printf.sprintf "upd_span%d_%02d" span tx_type)
      statements
  else
    Core.Transaction.make
      ~profile:(Printf.sprintf "read_%s" (table_name tx_type))
      [
        Storage.Query.Get
          { table = table_name tx_type; key = [| Storage.Value.Int (Util.Rng.int rng p.rows) |] };
      ]

let span_workload p ~span =
  { Core.Client.think_ms = Core.Client.no_think; next_request = span_request p ~span }

let hot_request p ~hot_rows rng =
  let tx_type = Util.Rng.int rng p.tables in
  let table = table_name tx_type in
  if tx_type < p.update_types then
    Core.Transaction.make ~profile:(Printf.sprintf "hot_upd_%s" table)
      [
        Storage.Query.Update_key
          {
            table;
            key = [| Storage.Value.Int (Util.Rng.int rng (min hot_rows p.rows)) |];
            set = [ ("val", Storage.Expr.(Col 1 + i 1)) ];
          };
      ]
  else
    Core.Transaction.make ~profile:(Printf.sprintf "read_%s" table)
      [ Storage.Query.Get { table; key = [| Storage.Value.Int (Util.Rng.int rng p.rows) |] } ]

let hot_workload p ~hot_rows =
  { Core.Client.think_ms = Core.Client.no_think; next_request = hot_request p ~hot_rows }

(* --- Mixed-consistency read tiers (docs/CONSISTENCY.md) -------------- *)

type tier_mix = {
  bounded : float;
  causal : float;
  eventual : float;
}

let default_mix = { bounded = 0.25; causal = 0.25; eventual = 0.25 }

let tiered_request p ~mix ~bounded_tier rng =
  assert (p.update_types >= 0 && p.update_types <= p.tables);
  assert (mix.bounded +. mix.causal +. mix.eventual <= 1.0 +. 1e-9);
  let tx_type = Util.Rng.int rng p.tables in
  let table = table_name tx_type in
  let row = Util.Rng.int rng p.rows in
  let key = [| Storage.Value.Int row |] in
  if tx_type < p.update_types then
    (* Updates always run under the cluster's write mode. *)
    Core.Transaction.make ~profile:(Printf.sprintf "upd_%s" table)
      [
        Storage.Query.Update_key
          { table; key; set = [ ("val", Storage.Expr.(Col 1 + i 1)) ] };
      ]
  else begin
    let u = Util.Rng.float rng 1.0 in
    let tier =
      if u < mix.bounded then bounded_tier
      else if u < mix.bounded +. mix.causal then Core.Consistency.Causal
      else if u < mix.bounded +. mix.causal +. mix.eventual then Core.Consistency.Eventual
      else Core.Consistency.Strong
    in
    Core.Transaction.make ~tier
      ~profile:(Printf.sprintf "%s_read_%s" (Core.Consistency.tier_slug tier) table)
      [ Storage.Query.Get { table; key } ]
  end

let tiered_workload ?(mix = default_mix)
    ?(bounded_tier = Core.Consistency.Bounded_staleness { versions = Some 8; ms = None }) p
    =
  {
    Core.Client.think_ms = Core.Client.no_think;
    next_request = tiered_request p ~mix ~bounded_tier;
  }

type params = {
  tables : int;
  rows : int;
  update_types : int;
}

let default = { tables = 40; rows = 10_000; update_types = 0 }

(* Request builders run once per simulated transaction, so the strings
   they attach (table names, metrics profiles) are memoized: formatting
   them per request was a measurable share of the simulator's minor-heap
   traffic. [memo f] caches [f 0 .. f n] in a growable array; reads are
   race-tolerant (worst case a value is recomputed), so sharing across
   run-driver domains is safe. *)
let memo (f : int -> 'a) : int -> 'a =
  let cache = ref [||] in
  fun i ->
    let c = !cache in
    if i < Array.length c then c.(i)
    else begin
      let n = Array.length c in
      let c' =
        Array.init
          (max (i + 1) (max 16 (2 * n)))
          (fun j -> if j < n then c.(j) else f j)
      in
      cache := c';
      c'.(i)
    end

let table_name = memo (fun i -> Printf.sprintf "t%02d" i)

let upd_profile = memo (fun i -> "upd_" ^ table_name i)
let read_profile = memo (fun i -> "read_" ^ table_name i)
let hot_upd_profile = memo (fun i -> "hot_upd_" ^ table_name i)

let tiered_read_profile =
  let strong = memo (fun i -> "strong_read_" ^ table_name i)
  and bounded = memo (fun i -> "bounded_read_" ^ table_name i)
  and causal = memo (fun i -> "causal_read_" ^ table_name i)
  and eventual = memo (fun i -> "eventual_read_" ^ table_name i) in
  fun tier i ->
    match (tier : Core.Consistency.read_tier) with
    | Strong -> strong i
    | Bounded_staleness _ -> bounded i
    | Causal -> causal i
    | Eventual -> eventual i

let upd_span_profile =
  memo (fun span -> memo (fun t -> Printf.sprintf "upd_span%d_%02d" span t))

(* Every single-statement request's table-set is [[table_name i]];
   passing it explicitly skips [Storage.Query.table_set]'s per-request
   dedup table. *)
let single_table_set = memo (fun i -> [ table_name i ])

(* Primary keys are immutable once built (MVCC stores them as-is), so
   one [\[| Int row |\]] array per row id serves every request. *)
let row_key = memo (fun row -> [| Storage.Value.Int row |])

(* The update expression [val := val + 1] is the same tree in every
   update statement. *)
let incr_val = [ ("val", Storage.Expr.(Col 1 + i 1)) ]

(* One shared pad value: immutable, so every row aliases the same string. *)
let pad = String.make 100 'x'

let schema i =
  Storage.Schema.make ~name:(table_name i)
    ~columns:
      [ ("id", Storage.Value.Tint); ("val", Storage.Value.Tint); ("pad", Storage.Value.Ttext) ]
    ~key:[ "id" ] ()

let schemas p = List.init p.tables schema

(* The initial row set is identical for every table and every replica,
   and MVCC updates install fresh version arrays rather than mutating
   rows in place — so one physical copy per row count serves every load
   (a bench run loads tables × replicas × modes copies; building the
   rows each time dominated setup allocation). Guarded for the parallel
   run driver. *)
let initial_rows_cache : (int, Storage.Value.t array list) Hashtbl.t = Hashtbl.create 4
let initial_rows_lock = Mutex.create ()

let initial_rows n =
  Mutex.lock initial_rows_lock;
  let rows =
    match Hashtbl.find_opt initial_rows_cache n with
    | Some rows -> rows
    | None ->
      let rows =
        List.init n (fun i ->
            [| Storage.Value.Int i; Storage.Value.Int (i * 17 mod 97); Storage.Value.Text pad |])
      in
      Hashtbl.add initial_rows_cache n rows;
      rows
  in
  Mutex.unlock initial_rows_lock;
  rows

let load p db =
  let rows = initial_rows p.rows in
  for t = 0 to p.tables - 1 do
    Storage.Database.load db (table_name t) rows
  done

let request p rng =
  assert (p.update_types >= 0 && p.update_types <= p.tables);
  let tx_type = Util.Rng.int rng p.tables in
  let table = table_name tx_type in
  let key = row_key (Util.Rng.int rng p.rows) in
  if tx_type < p.update_types then
    Core.Transaction.make ~profile:(upd_profile tx_type)
      ~table_set:(single_table_set tx_type)
      [
        Storage.Query.Update_key
          {
            table;
            key;
            set = incr_val;  (* val := val + 1 *)
          };
      ]
  else
    Core.Transaction.make ~profile:(read_profile tx_type)
      ~table_set:(single_table_set tx_type)
      [ Storage.Query.Get { table; key } ]

let workload p =
  { Core.Client.think_ms = Core.Client.no_think; next_request = request p }

let span_request p ~span rng =
  assert (span >= 1 && span <= p.tables);
  let tx_type = Util.Rng.int rng p.tables in
  if tx_type < p.update_types then
    let statements =
      List.init span (fun k ->
          let table = table_name ((tx_type + k) mod p.tables) in
          Storage.Query.Update_key
            {
              table;
              key = row_key (Util.Rng.int rng p.rows);
              set = incr_val;
            })
    in
    Core.Transaction.make ~profile:(upd_span_profile span tx_type) statements
  else
    Core.Transaction.make
      ~profile:(read_profile tx_type)
      ~table_set:(single_table_set tx_type)
      [
        Storage.Query.Get
          { table = table_name tx_type; key = row_key (Util.Rng.int rng p.rows) };
      ]

let span_workload p ~span =
  { Core.Client.think_ms = Core.Client.no_think; next_request = span_request p ~span }

let hot_request p ~hot_rows rng =
  let tx_type = Util.Rng.int rng p.tables in
  let table = table_name tx_type in
  if tx_type < p.update_types then
    Core.Transaction.make ~profile:(hot_upd_profile tx_type)
      ~table_set:(single_table_set tx_type)
      [
        Storage.Query.Update_key
          {
            table;
            key = row_key (Util.Rng.int rng (min hot_rows p.rows));
            set = incr_val;
          };
      ]
  else
    Core.Transaction.make ~profile:(read_profile tx_type)
      ~table_set:(single_table_set tx_type)
      [ Storage.Query.Get { table; key = row_key (Util.Rng.int rng p.rows) } ]

let hot_workload p ~hot_rows =
  { Core.Client.think_ms = Core.Client.no_think; next_request = hot_request p ~hot_rows }

(* --- Mixed-consistency read tiers (docs/CONSISTENCY.md) -------------- *)

type tier_mix = {
  bounded : float;
  causal : float;
  eventual : float;
}

let default_mix = { bounded = 0.25; causal = 0.25; eventual = 0.25 }

let tiered_request p ~mix ~bounded_tier rng =
  assert (p.update_types >= 0 && p.update_types <= p.tables);
  assert (mix.bounded +. mix.causal +. mix.eventual <= 1.0 +. 1e-9);
  let tx_type = Util.Rng.int rng p.tables in
  let table = table_name tx_type in
  let key = row_key (Util.Rng.int rng p.rows) in
  if tx_type < p.update_types then
    (* Updates always run under the cluster's write mode. *)
    Core.Transaction.make ~profile:(upd_profile tx_type)
      ~table_set:(single_table_set tx_type)
      [
        Storage.Query.Update_key
          { table; key; set = incr_val };
      ]
  else begin
    let u = Util.Rng.float rng 1.0 in
    let tier =
      if u < mix.bounded then bounded_tier
      else if u < mix.bounded +. mix.causal then Core.Consistency.Causal
      else if u < mix.bounded +. mix.causal +. mix.eventual then Core.Consistency.Eventual
      else Core.Consistency.Strong
    in
    Core.Transaction.make ~tier
      ~profile:(tiered_read_profile tier tx_type)
      ~table_set:(single_table_set tx_type)
      [ Storage.Query.Get { table; key } ]
  end

let tiered_workload ?(mix = default_mix)
    ?(bounded_tier = Core.Consistency.Bounded_staleness { versions = Some 8; ms = None }) p
    =
  {
    Core.Client.think_ms = Core.Client.no_think;
    next_request = tiered_request p ~mix ~bounded_tier;
  }

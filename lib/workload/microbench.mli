(** The paper's micro-benchmark (§V.B).

    [tables] tables of [rows] records each; the common schema is a
    primary key (INT), an integer field and a 100-character text field.
    There are [tables] transaction types: type [i] either retrieves or
    updates one random record of table [i]. With [update_types = k], the
    first [k] types are updates and the rest are point reads — the
    paper's "ratio of read-only/update transactions between 0/40 and
    40/0". Clients pick a type uniformly at random. *)

type params = {
  tables : int;
  rows : int;
  update_types : int;  (** 0..tables *)
}

val default : params
(** 40 tables x 10,000 rows (the paper's sizes with the OCR-dropped
    zeros restored), no update types — set [update_types] per run. *)

val table_name : int -> string

val schemas : params -> Storage.Schema.t list

val load : params -> Storage.Database.t -> unit
(** Deterministic population: row [i] of every table is
    [(i, i * 17 mod 97, <shared 100-char pad>)]. *)

val workload : params -> Core.Client.workload
(** Closed-loop, zero think time. *)

val request : params -> Util.Rng.t -> Core.Transaction.request
(** One sampled transaction (exposed for tests). *)

val span_request : params -> span:int -> Util.Rng.t -> Core.Transaction.request
(** Like {!request}, but update transactions touch [span] consecutive
    tables (one random row in each), widening their table-sets. Used by
    the table-set-granularity ablation: as [span] approaches the table
    count, the fine-grained configuration converges to coarse-grained. *)

val span_workload : params -> span:int -> Core.Client.workload

val hot_workload : params -> hot_rows:int -> Core.Client.workload
(** Updates draw keys from only the first [hot_rows] rows of each table,
    raising the write-conflict rate. Used by the early-certification
    ablation. *)

(** {2 Mixed-consistency read tiers (docs/CONSISTENCY.md)} *)

(** Fractions of {e read} transactions assigned to each weaker tier; the
    remainder (and every update) stays [Strong]. The three fractions
    must sum to at most 1. *)
type tier_mix = {
  bounded : float;
  causal : float;
  eventual : float;
}

val default_mix : tier_mix
(** An even split: 25% bounded / 25% causal / 25% eventual / 25% strong
    reads. *)

val tiered_workload :
  ?mix:tier_mix ->
  ?bounded_tier:Core.Consistency.read_tier ->
  params ->
  Core.Client.workload
(** {!workload} with reads carrying a sampled {!Core.Consistency.read_tier}
    per {!tier_mix} ([bounded_tier] — default [Bounded_staleness
    {versions = Some 8; ms = None}] — is the tier bounded reads declare).
    Tier assignment draws one extra random number per read, so this
    workload is deterministic but not event-identical to {!workload};
    use it only in runs that opt into tiers. *)

(* Unit and property tests for the util library. *)

let test_pqueue_ordering () =
  let q = Util.Pqueue.create () in
  List.iter (fun (p, v) -> Util.Pqueue.push q p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let pop () = match Util.Pqueue.pop q with Some (_, v) -> v | None -> "!" in
  let popped = List.init 3 (fun _ -> pop ()) in
  Alcotest.(check (list string)) "min-heap order" [ "a"; "b"; "c" ] popped;
  Alcotest.(check bool) "empty after drain" true (Util.Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Util.Pqueue.create () in
  Util.Pqueue.push q 1.0 "x";
  Util.Pqueue.push q 0.0 "first";
  Util.Pqueue.push q 1.0 "y";
  Util.Pqueue.push q 1.0 "z";
  let order =
    List.init 4 (fun _ -> match Util.Pqueue.pop q with Some (_, v) -> v | None -> "!")
  in
  Alcotest.(check (list string)) "FIFO among equal priorities" [ "first"; "x"; "y"; "z" ]
    order

let test_pqueue_peek () =
  let q = Util.Pqueue.create () in
  Alcotest.(check bool) "peek empty" true (Util.Pqueue.peek q = None);
  Util.Pqueue.push q 5.0 42;
  Alcotest.(check bool) "peek non-destructive" true
    (Util.Pqueue.peek q = Some (5.0, 42) && Util.Pqueue.length q = 1)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_int))
    (fun items ->
      let q = Util.Pqueue.create () in
      List.iter (fun (p, v) -> Util.Pqueue.push q p v) items;
      let rec drain acc =
        match Util.Pqueue.pop q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let priorities = drain [] in
      List.sort compare priorities = priorities
      && List.length priorities = List.length items)

let test_rng_determinism () =
  let a = Util.Rng.create 123 and b = Util.Rng.create 123 in
  let seq r = List.init 50 (fun _ -> Util.Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b)

let test_rng_split_independent () =
  let a = Util.Rng.create 1 in
  let b = Util.Rng.split a in
  let sa = List.init 20 (fun _ -> Util.Rng.int a 1000) in
  let sb = List.init 20 (fun _ -> Util.Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (sa <> sb)

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Util.Rng.create seed in
      let x = Util.Rng.int rng n in
      x >= 0 && x < n)

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float stays in range" ~count:500
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, hi) ->
      let rng = Util.Rng.create seed in
      let x = Util.Rng.float rng hi in
      x >= 0.0 && x < hi)

let test_rng_exponential_mean () =
  let rng = Util.Rng.create 7 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Util.Rng.exponential rng ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean ~5 (got %.3f)" mean)
    true
    (mean > 4.8 && mean < 5.2)

let test_rng_zipf_skew () =
  let rng = Util.Rng.create 11 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let x = Util.Rng.zipf rng ~n:100 ~theta:0.99 in
    counts.(x) <- counts.(x) + 1
  done;
  Alcotest.(check bool) "zipf favours low ranks" true (counts.(0) > counts.(50) * 5)

let test_rng_zipf_uniform_when_theta_zero () =
  let rng = Util.Rng.create 13 in
  let ok = ref true in
  for _ = 1 to 1000 do
    let x = Util.Rng.zipf rng ~n:10 ~theta:0.0 in
    if x < 0 || x >= 10 then ok := false
  done;
  Alcotest.(check bool) "zipf theta=0 in range" true !ok

let test_rng_shuffle_permutes () =
  let rng = Util.Rng.create 99 in
  let arr = Array.init 20 (fun i -> i) in
  Util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_stats_basic () =
  let s = Util.Stats.create () in
  List.iter (Util.Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Util.Stats.mean s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Util.Stats.total s);
  Alcotest.(check int) "count" 4 (Util.Stats.count s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Util.Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Util.Stats.max_value s);
  Alcotest.(check (float 0.01)) "stddev" 1.29 (Util.Stats.stddev s)

let test_stats_percentile () =
  let s = Util.Stats.create () in
  for i = 1 to 100 do
    Util.Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Util.Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Util.Stats.percentile s 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Util.Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 1.0 (Util.Stats.percentile s 0.0)

let test_stats_empty () =
  let s = Util.Stats.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Util.Stats.mean s);
  Alcotest.(check (float 0.0)) "percentile of empty" 0.0 (Util.Stats.percentile s 50.0)

let test_stats_single_sample () =
  let s = Util.Stats.create () in
  Util.Stats.add s 7.5;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g of a single sample" p)
        7.5 (Util.Stats.percentile s p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  Alcotest.(check (float 0.0)) "stddev of one sample" 0.0 (Util.Stats.stddev s)

let test_stats_percentile_clamps () =
  let s = Util.Stats.create () in
  List.iter (Util.Stats.add s) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check (float 1e-9)) "p below 0 clamps to min" 1.0
    (Util.Stats.percentile s (-10.0));
  Alcotest.(check (float 1e-9)) "p above 100 clamps to max" 3.0
    (Util.Stats.percentile s 250.0)

let test_stats_merge () =
  let a = Util.Stats.create () and b = Util.Stats.create () in
  Util.Stats.add a 1.0;
  Util.Stats.add b 3.0;
  let m = Util.Stats.merge a b in
  Alcotest.(check (float 1e-9)) "merged mean" 2.0 (Util.Stats.mean m);
  Alcotest.(check int) "merged count" 2 (Util.Stats.count m)

let prop_stats_mean_welford_agree =
  QCheck.Test.make ~name:"stats and online accumulator agree on mean" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Util.Stats.create () and o = Util.Stats.Online.create () in
      List.iter
        (fun x ->
          Util.Stats.add s x;
          Util.Stats.Online.add o x)
        xs;
      Float.abs (Util.Stats.mean s -. Util.Stats.Online.mean o) < 1e-6)

let test_histogram () =
  let h = Util.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Util.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; 50.0; -3.0 ];
  Alcotest.(check int) "total count" 6 (Util.Histogram.count h);
  Alcotest.(check int) "bucket 0 (incl. below-range)" 2 (Util.Histogram.bucket_value h 0);
  Alcotest.(check int) "bucket 1" 2 (Util.Histogram.bucket_value h 1);
  Alcotest.(check int) "last bucket (incl. above-range)" 2 (Util.Histogram.bucket_value h 9)

let test_histogram_pp_empty () =
  let h = Util.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:4 in
  Alcotest.(check string) "empty histogram renders a placeholder" "(no samples)\n"
    (Format.asprintf "%a" Util.Histogram.pp h)

let test_histogram_pp_single_sample () =
  let h = Util.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:2 in
  Util.Histogram.add h 1.0;
  let rendered = Format.asprintf "%a" Util.Histogram.pp h in
  Alcotest.(check int) "one line per bucket" 2
    (List.length (String.split_on_char '\n' (String.trim rendered)));
  (* The lone sample's bucket gets the full-width bar. *)
  Alcotest.(check bool) "full bar for the occupied bucket" true
    (String.length (String.concat "" (String.split_on_char '#' rendered))
    = String.length rendered - 40)

(* --- Log histogram (mergeable, HDR-style; lib/util/histogram.ml) --- *)

let log_hist_of_list ?buckets_per_decade xs =
  let h = Util.Histogram.Log.create ?buckets_per_decade () in
  List.iter (Util.Histogram.Log.add h) xs;
  h

let test_log_hist_quantile_accuracy () =
  (* The documented bound: quantile answers carry a relative error of at
     most 10^(1/(2*sub)) - 1 (~2.9% at the default sub = 40). Checked
     against the exact percentile over the same stream, with a little
     slack for the nearest-rank tie at bucket edges. *)
  let h = Util.Histogram.Log.create () in
  let s = Util.Stats.create () in
  let rng = Util.Rng.create 17 in
  for _ = 1 to 10_000 do
    let x = Util.Rng.exponential rng ~mean:12.0 +. 0.01 in
    Util.Histogram.Log.add h x;
    Util.Stats.add s x
  done;
  let sub = float_of_int (Util.Histogram.Log.buckets_per_decade h) in
  let bound = Float.pow 10.0 (1.0 /. (2.0 *. sub)) -. 1.0 +. 0.01 in
  List.iter
    (fun p ->
      let exact = Util.Stats.percentile s p in
      let approx = Util.Histogram.Log.percentile h p in
      let rel = Float.abs (approx -. exact) /. exact in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within %.1f%% (exact %.4f, log %.4f, err %.2f%%)" p
           (100.0 *. bound) exact approx (100.0 *. rel))
        true (rel <= bound))
    [ 50.0; 90.0; 95.0; 99.0 ]

let test_log_hist_single_value_exact () =
  (* With one sample the [min, max] clamp pins every percentile to it. *)
  let h = log_hist_of_list [ 3.7 ] in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%g of a single sample" p)
        3.7
        (Util.Histogram.Log.percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  Alcotest.(check (float 0.0)) "min" 3.7 (Util.Histogram.Log.min_value h);
  Alcotest.(check (float 0.0)) "max" 3.7 (Util.Histogram.Log.max_value h)

let test_log_hist_zeros_and_negatives () =
  let h = log_hist_of_list [ -1.0; 0.0; 5.0 ] in
  Alcotest.(check int) "count includes zero bucket" 3 (Util.Histogram.Log.count h);
  Alcotest.(check (float 0.0)) "negatives clamp min to 0" 0.0
    (Util.Histogram.Log.min_value h);
  Alcotest.(check (float 0.0)) "p50 lands in the zero bucket" 0.0
    (Util.Histogram.Log.percentile h 50.0);
  Alcotest.(check (float 0.0)) "p100 is the max" 5.0
    (Util.Histogram.Log.percentile h 100.0)

let test_log_hist_empty_and_clear () =
  let h = Util.Histogram.Log.create () in
  Alcotest.(check bool) "fresh is empty" true (Util.Histogram.Log.is_empty h);
  Alcotest.(check (float 0.0)) "percentile of empty" 0.0
    (Util.Histogram.Log.percentile h 50.0);
  Alcotest.(check (float 0.0)) "min of empty" 0.0 (Util.Histogram.Log.min_value h);
  Util.Histogram.Log.add h 2.0;
  Alcotest.(check bool) "non-empty after add" false (Util.Histogram.Log.is_empty h);
  Util.Histogram.Log.clear h;
  Alcotest.(check bool) "clear empties" true (Util.Histogram.Log.is_empty h);
  Alcotest.(check int) "clear zeroes the count" 0 (Util.Histogram.Log.count h)

let test_log_hist_create_and_merge_validation () =
  Alcotest.check_raises "non-positive resolution rejected"
    (Invalid_argument "Histogram.Log.create: buckets_per_decade must be positive")
    (fun () -> ignore (Util.Histogram.Log.create ~buckets_per_decade:0 ()));
  Alcotest.check_raises "bucketing mismatch rejected"
    (Invalid_argument "Histogram.Log.merge: buckets_per_decade mismatch") (fun () ->
      ignore
        (Util.Histogram.Log.merge
           (Util.Histogram.Log.create ~buckets_per_decade:10 ())
           (Util.Histogram.Log.create ())))

(* Two Log histograms with identical bucket counts are observationally
   equal: same count, same extremes, same answer at every percentile. *)
let log_hist_fingerprint h =
  ( Util.Histogram.Log.count h,
    Util.Histogram.Log.min_value h,
    Util.Histogram.Log.max_value h,
    List.map (Util.Histogram.Log.percentile h) [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ]
  )

let log_samples_gen = QCheck.(list_of_size (Gen.int_range 0 30) (float_bound_inclusive 1e4))

let prop_log_hist_merge_commutative =
  QCheck.Test.make ~name:"log histogram merge is commutative" ~count:100
    QCheck.(pair log_samples_gen log_samples_gen)
    (fun (xs, ys) ->
      let a = log_hist_of_list xs and b = log_hist_of_list ys in
      log_hist_fingerprint (Util.Histogram.Log.merge a b)
      = log_hist_fingerprint (Util.Histogram.Log.merge b a))

let prop_log_hist_merge_associative =
  QCheck.Test.make ~name:"log histogram merge is associative" ~count:100
    QCheck.(triple log_samples_gen log_samples_gen log_samples_gen)
    (fun (xs, ys, zs) ->
      let a = log_hist_of_list xs
      and b = log_hist_of_list ys
      and c = log_hist_of_list zs in
      let open Util.Histogram.Log in
      log_hist_fingerprint (merge (merge a b) c)
      = log_hist_fingerprint (merge a (merge b c)))

let prop_log_hist_merge_counts_add =
  QCheck.Test.make ~name:"log histogram merge sums counts" ~count:100
    QCheck.(pair log_samples_gen log_samples_gen)
    (fun (xs, ys) ->
      let m = Util.Histogram.Log.merge (log_hist_of_list xs) (log_hist_of_list ys) in
      Util.Histogram.Log.count m = List.length xs + List.length ys
      && log_hist_fingerprint m = log_hist_fingerprint (log_hist_of_list (xs @ ys)))

let test_metrics_percentile_edge_cases () =
  let engine = Sim.Engine.create () in
  let m = Core.Metrics.create engine in
  Alcotest.(check (float 0.0)) "empty window p50" 0.0
    (Core.Metrics.percentile_response_ms m 50.0);
  let stages = Array.make Core.Metrics.stage_count 0.0 in
  Core.Metrics.record_commit m ~read_only:true ~stages ~response_ms:12.0;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single commit p%g" p)
        12.0
        (Core.Metrics.percentile_response_ms m p))
    [ 0.0; 50.0; 100.0 ];
  Core.Metrics.record_commit m ~read_only:true ~stages ~response_ms:4.0;
  Alcotest.(check (float 1e-9)) "p0 is the min" 4.0
    (Core.Metrics.percentile_response_ms m 0.0);
  Alcotest.(check (float 1e-9)) "p100 is the max" 12.0
    (Core.Metrics.percentile_response_ms m 100.0)

let test_vec () =
  let v = Util.Vec.create () in
  for i = 0 to 99 do
    Util.Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Util.Vec.length v);
  Alcotest.(check int) "get" 42 (Util.Vec.get v 42);
  Util.Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Util.Vec.get v 42);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Vec: index 100 out of bounds (size 100)") (fun () ->
      ignore (Util.Vec.get v 100));
  Alcotest.(check int) "to_list length" 100 (List.length (Util.Vec.to_list v))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "util.pqueue",
      [
        Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
        Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
        Alcotest.test_case "peek" `Quick test_pqueue_peek;
      ]
      @ qsuite [ prop_pqueue_sorted ] );
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
        Alcotest.test_case "zipf uniform" `Quick test_rng_zipf_uniform_when_theta_zero;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
      ]
      @ qsuite [ prop_rng_int_range; prop_rng_float_range ] );
    ( "util.stats",
      [
        Alcotest.test_case "basic moments" `Quick test_stats_basic;
        Alcotest.test_case "percentiles" `Quick test_stats_percentile;
        Alcotest.test_case "empty" `Quick test_stats_empty;
        Alcotest.test_case "single sample" `Quick test_stats_single_sample;
        Alcotest.test_case "percentile clamps" `Quick test_stats_percentile_clamps;
        Alcotest.test_case "merge" `Quick test_stats_merge;
      ]
      @ qsuite [ prop_stats_mean_welford_agree ] );
    ( "util.histogram.log",
      [
        Alcotest.test_case "quantile accuracy bound" `Quick test_log_hist_quantile_accuracy;
        Alcotest.test_case "single value exact" `Quick test_log_hist_single_value_exact;
        Alcotest.test_case "zeros and negatives" `Quick test_log_hist_zeros_and_negatives;
        Alcotest.test_case "empty and clear" `Quick test_log_hist_empty_and_clear;
        Alcotest.test_case "create/merge validation" `Quick
          test_log_hist_create_and_merge_validation;
      ]
      @ qsuite
          [
            prop_log_hist_merge_commutative;
            prop_log_hist_merge_associative;
            prop_log_hist_merge_counts_add;
          ] );
    ( "util.misc",
      [
        Alcotest.test_case "histogram buckets" `Quick test_histogram;
        Alcotest.test_case "histogram pp empty" `Quick test_histogram_pp_empty;
        Alcotest.test_case "histogram pp single" `Quick test_histogram_pp_single_sample;
        Alcotest.test_case "metrics percentile edges" `Quick
          test_metrics_percentile_edge_cases;
        Alcotest.test_case "vec" `Quick test_vec;
      ] );
  ]

(* End-to-end tests of the replicated cluster. *)

let micro_params = { Workload.Microbench.tables = 4; rows = 100; update_types = 2 }

let make_cluster ?(config = Core.Config.default) mode =
  Core.Cluster.create ~config ~mode
    ~schemas:(Workload.Microbench.schemas micro_params)
    ~load:(Workload.Microbench.load micro_params)
    ()

(* gc_interval_ms = 0 keeps the event queue drainable: tests use
   [Engine.run] without a horizon. *)
let small_config =
  {
    Core.Config.default with
    replicas = 3;
    record_log = true;
    seed = 7;
    gc_interval_ms = 0.0;
    hiccup_interval_ms = 0.0;
  }

(* Run one transaction from inside a process and return its outcome. *)
let run_one cluster request =
  let result = ref None in
  Sim.Process.spawn (Core.Cluster.engine cluster) (fun () ->
      result := Some (Core.Cluster.submit cluster ~sid:0 request));
  Sim.Engine.run (Core.Cluster.engine cluster);
  match !result with Some r -> r | None -> Alcotest.fail "transaction did not finish"

let read_req table key =
  Core.Transaction.make ~profile:"read"
    [ Storage.Query.Get { table; key = [| Storage.Value.Int key |] } ]

let update_req table key =
  Core.Transaction.make ~profile:"upd"
    [
      Storage.Query.Update_key
        {
          table;
          key = [| Storage.Value.Int key |];
          set = [ ("val", Storage.Expr.(Col 1 + i 1)) ];
        };
    ]

let test_read_only_commit () =
  let cluster = make_cluster ~config:small_config Core.Consistency.Coarse in
  match run_one cluster (read_req "t00" 5) with
  | Core.Transaction.Committed { commit_version; snapshot; _ } ->
    Alcotest.(check (option int)) "read-only has no commit version" None commit_version;
    Alcotest.(check int) "snapshot is initial" 0 snapshot
  | Core.Transaction.Aborted _ -> Alcotest.fail "read-only transaction aborted"

let test_update_commit_propagates () =
  let cluster = make_cluster ~config:small_config Core.Consistency.Coarse in
  (match run_one cluster (update_req "t00" 5) with
  | Core.Transaction.Committed { commit_version; _ } ->
    Alcotest.(check (option int)) "first update commits at v1" (Some 1) commit_version
  | Core.Transaction.Aborted _ -> Alcotest.fail "update aborted");
  (* After the run drains, every replica must have applied v1. *)
  for i = 0 to small_config.Core.Config.replicas - 1 do
    let replica = Core.Cluster.replica cluster i in
    Alcotest.(check int)
      (Printf.sprintf "replica %d applied v1" i)
      1
      (Core.Replica.v_local replica);
    let row =
      Storage.Table.read
        (Storage.Database.table (Core.Replica.database replica) "t00")
        ~key:[| Storage.Value.Int 5 |] ~at:1
    in
    match row with
    | Some r -> Alcotest.(check int) "val incremented" ((5 * 17 mod 97) + 1)
                  (Storage.Value.as_int r.(1))
    | None -> Alcotest.fail "row missing"
  done

let test_strong_consistency_across_clients () =
  (* Client 0 updates; after its ack, client 1 must see the new value
     under the coarse configuration. *)
  let cluster = make_cluster ~config:small_config Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  let seen = ref (-1) in
  Sim.Process.spawn engine (fun () ->
      match Core.Cluster.submit cluster ~sid:0 (update_req "t01" 7) with
      | Core.Transaction.Committed _ ->
        (* Hidden channel: after the ack, a different session reads. *)
        Sim.Process.spawn engine (fun () ->
            match Core.Cluster.submit cluster ~sid:1 (read_req "t01" 7) with
            | Core.Transaction.Committed { snapshot; _ } -> seen := snapshot
            | Core.Transaction.Aborted _ -> ())
      | Core.Transaction.Aborted _ -> Alcotest.fail "update aborted");
  Sim.Engine.run engine;
  Alcotest.(check bool) "second client read snapshot >= 1" true (!seen >= 1)

let test_certification_conflict () =
  (* Two concurrent updates of the same row on different replicas: the
     certifier must abort one. *)
  let config = { small_config with max_retries = 0 } in
  let cluster = make_cluster ~config Core.Consistency.Session in
  let engine = Core.Cluster.engine cluster in
  let outcomes = ref [] in
  for sid = 0 to 1 do
    Sim.Process.spawn engine (fun () ->
        let o = Core.Cluster.submit cluster ~sid (update_req "t00" 1) in
        outcomes := o :: !outcomes)
  done;
  Sim.Engine.run engine;
  let commits =
    List.length
      (List.filter
         (function Core.Transaction.Committed _ -> true | _ -> false)
         !outcomes)
  in
  (* Both may commit if one certifies before the other begins; with
     simultaneous submission both read snapshot v0, so exactly one
     commits. *)
  Alcotest.(check int) "exactly one concurrent writer commits" 1 commits

let test_eager_all_replicas_before_ack () =
  let cluster = make_cluster ~config:small_config Core.Consistency.Eager in
  let engine = Core.Cluster.engine cluster in
  let lagging = ref (-1) in
  Sim.Process.spawn engine (fun () ->
      match Core.Cluster.submit cluster ~sid:0 (update_req "t02" 3) with
      | Core.Transaction.Committed _ ->
        (* At ack time every replica must already be at v1. *)
        let min_v = ref max_int in
        for i = 0 to small_config.Core.Config.replicas - 1 do
          min_v := min !min_v (Core.Replica.v_local (Core.Cluster.replica cluster i))
        done;
        lagging := !min_v
      | Core.Transaction.Aborted _ -> Alcotest.fail "update aborted");
  Sim.Engine.run engine;
  Alcotest.(check int) "all replicas applied v1 before client ack" 1 !lagging

let test_metrics_stages_recorded () =
  let cluster = make_cluster ~config:small_config Core.Consistency.Coarse in
  match run_one cluster (update_req "t00" 9) with
  | Core.Transaction.Committed { stages; _ } ->
    let certify = stages.(Core.Metrics.stage_index Core.Metrics.Certify) in
    let commit = stages.(Core.Metrics.stage_index Core.Metrics.Commit) in
    let global = stages.(Core.Metrics.stage_index Core.Metrics.Global) in
    Alcotest.(check bool) "certify stage positive" true (certify > 0.0);
    Alcotest.(check bool) "commit stage positive" true (commit > 0.0);
    Alcotest.(check (float 0.0)) "no global stage outside eager" 0.0 global
  | Core.Transaction.Aborted _ -> Alcotest.fail "update aborted"

let test_session_version_tracking () =
  let cluster = make_cluster ~config:small_config Core.Consistency.Session in
  let engine = Core.Cluster.engine cluster in
  Sim.Process.spawn engine (fun () ->
      ignore (Core.Cluster.submit cluster ~sid:42 (update_req "t00" 2)));
  Sim.Engine.run engine;
  let lb = Core.Cluster.load_balancer cluster in
  Alcotest.(check int) "session version recorded" 1
    (Core.Load_balancer.session_version lb ~sid:42)

let test_load_balancer_least_active () =
  let lb = Core.Load_balancer.create small_config ~mode:Core.Consistency.Coarse in
  Core.Load_balancer.note_dispatch lb ~replica:0;
  Core.Load_balancer.note_dispatch lb ~replica:0;
  Core.Load_balancer.note_dispatch lb ~replica:1;
  Alcotest.(check int) "route to least-active replica" 2
    (Core.Load_balancer.choose_replica lb ~sid:0);
  Core.Load_balancer.note_dispatch lb ~replica:2;
  Core.Load_balancer.note_dispatch lb ~replica:2;
  Alcotest.(check int) "then to the next least-active" 1
    (Core.Load_balancer.choose_replica lb ~sid:0)

let test_load_balancer_policies () =
  let config routing = { small_config with Core.Config.routing } in
  (* Round-robin cycles through live replicas. *)
  let rr =
    Core.Load_balancer.create (config Core.Config.Round_robin)
      ~mode:Core.Consistency.Coarse
  in
  let picks = List.init 6 (fun _ -> Core.Load_balancer.choose_replica rr ~sid:0) in
  Alcotest.(check (list int)) "round robin cycles" [ 0; 1; 2; 0; 1; 2 ] picks;
  (* Round-robin skips dead replicas. *)
  Core.Load_balancer.set_live rr ~replica:1 false;
  let picks = List.init 4 (fun _ -> Core.Load_balancer.choose_replica rr ~sid:0) in
  Alcotest.(check bool) "dead replica skipped" true (not (List.mem 1 picks));
  (* Session affinity is sticky per session and spreads sessions. *)
  let sa =
    Core.Load_balancer.create (config Core.Config.Session_affinity)
      ~mode:Core.Consistency.Coarse
  in
  for sid = 0 to 20 do
    let first = Core.Load_balancer.choose_replica sa ~sid in
    let second = Core.Load_balancer.choose_replica sa ~sid in
    Alcotest.(check int) "sticky" first second
  done;
  let distinct =
    List.sort_uniq compare
      (List.init 21 (fun sid -> Core.Load_balancer.choose_replica sa ~sid))
  in
  Alcotest.(check bool) "sessions spread over replicas" true (List.length distinct >= 2);
  (* Affinity falls back when the pinned replica dies. *)
  let pinned = Core.Load_balancer.choose_replica sa ~sid:7 in
  Core.Load_balancer.set_live sa ~replica:pinned false;
  Alcotest.(check bool) "fallback avoids dead pin" true
    (Core.Load_balancer.choose_replica sa ~sid:7 <> pinned)

let test_fine_table_versions () =
  let lb = Core.Load_balancer.create small_config ~mode:Core.Consistency.Fine in
  Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:1 ~tables_written:[ "a" ];
  Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:2 ~tables_written:[ "b"; "c" ];
  Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:3 ~tables_written:[ "b" ];
  Alcotest.(check int) "start version for {a}" 1
    (Core.Load_balancer.start_version lb ~sid:9 ~table_set:[ "a" ]);
  Alcotest.(check int) "start version for {a,c}" 2
    (Core.Load_balancer.start_version lb ~sid:9 ~table_set:[ "a"; "c" ]);
  Alcotest.(check int) "start version for untouched table" 0
    (Core.Load_balancer.start_version lb ~sid:9 ~table_set:[ "z" ])

(* A fixed medium-sized run returning everything observable about the
   outcome; used by the determinism tests below. [tweak] adjusts the
   config (e.g. to turn batching knobs). *)
let determinism_run ?(tweak = fun c -> c) ?faults ~tracing () =
  let params = { Workload.Microbench.tables = 4; rows = 200; update_types = 2 } in
  let cluster =
    Core.Cluster.create
      ~config:(tweak { small_config with Core.Config.hiccup_interval_ms = 700.0 })
      ?faults ~tracing ~mode:Core.Consistency.Fine
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:12 ~first_sid:0
    (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:1_500.0;
  let m = Core.Cluster.metrics cluster in
  let v = Core.Certifier.version (Core.Cluster.certifier cluster) in
  let fp =
    Storage.Database.fingerprint
      (Core.Replica.database (Core.Cluster.replica cluster 0))
      ~at:(Core.Replica.v_local (Core.Cluster.replica cluster 0))
  in
  (Core.Metrics.committed m, Core.Metrics.mean_response_ms m, v, fp)

let test_simulation_determinism () =
  (* The entire stack — RNG, event ordering, protocol — must be
     deterministic: two runs with the same seed are bit-identical. *)
  let c1, r1, v1, f1 = determinism_run ~tracing:false () in
  let c2, r2, v2, f2 = determinism_run ~tracing:false () in
  Alcotest.(check int) "same committed count" c1 c2;
  Alcotest.(check (float 0.0)) "same mean response" r1 r2;
  Alcotest.(check int) "same certified version" v1 v2;
  Alcotest.(check int) "same database contents" f1 f2

(* Golden values captured from the pre-batching sequencer and certifier
   (commit 88e25aa, before group certification existed). The default
   knobs [cert_batch = 1] / [apply_parallelism = 1] must reproduce that
   run bit-identically: same commit count, same response-time mean to
   the last float bit, same version count, same database contents. Any
   event reordering, extra random draw or changed message size in the
   batching code shows up here. *)
let golden_committed = 7300
let golden_mean_response = 2.3483281337028905
let golden_version = 4197
let golden_fingerprint = 24587192258890

let check_golden (c, r, v, f) =
  Alcotest.(check int) "golden committed count" golden_committed c;
  Alcotest.(check (float 0.0)) "golden mean response" golden_mean_response r;
  Alcotest.(check int) "golden certified version" golden_version v;
  Alcotest.(check int) "golden database contents" golden_fingerprint f

let test_unbatched_matches_golden () =
  Alcotest.(check int) "default cert_batch" 1 Core.Config.default.Core.Config.cert_batch;
  Alcotest.(check int) "default apply_parallelism" 1
    Core.Config.default.Core.Config.apply_parallelism;
  check_golden (determinism_run ~tracing:false ())

let test_explicit_batch_one_matches_golden () =
  (* Spelling the knobs out (rather than relying on the defaults) pins
     the equivalence claim of docs/PROTOCOL.md: batch size 1 IS the
     unbatched protocol. *)
  let tweak c = { c with Core.Config.cert_batch = 1; apply_parallelism = 1 } in
  check_golden (determinism_run ~tweak ~tracing:false ())

let test_clean_fault_plan_matches_golden () =
  (* An attached but all-clean fault plan must be a pure no-op: it draws
     nothing from its RNG and injects nothing, so the run is
     event-identical to having no plan at all. *)
  check_golden
    (determinism_run ~faults:(fun e -> Sim.Faults.create ~seed:999 e) ~tracing:false ())

let test_linear_index_matches_golden () =
  (* The certification index is host-side soft state: the cost model
     charges certify_row_ms per writeset row whichever structure decides
     the check, so [Linear] and [Keyed] must produce bit-identical
     runs — same commits, same response-time mean, same database. *)
  Alcotest.(check string) "default index is keyed" "keyed"
    (Core.Config.cert_index_name Core.Config.default.Core.Config.cert_index);
  let tweak c = { c with Core.Config.cert_index = Core.Config.Linear } in
  check_golden (determinism_run ~tweak ~tracing:false ())

let test_tracing_zero_overhead () =
  (* Tracing only observes: an instrumented run must be bit-identical in
     virtual time and outcome to the plain run, down to the response-time
     mean. *)
  let c1, r1, v1, f1 = determinism_run ~tracing:false () in
  let c2, r2, v2, f2 = determinism_run ~tracing:true () in
  Alcotest.(check int) "same committed count" c1 c2;
  Alcotest.(check (float 0.0)) "same mean response" r1 r2;
  Alcotest.(check int) "same certified version" v1 v2;
  Alcotest.(check int) "same database contents" f1 f2

(* The same fixed run with the run-health observatory attached; returns
   the golden tuple plus the serialized time series. *)
let observatory_run () =
  let params = { Workload.Microbench.tables = 4; rows = 200; update_types = 2 } in
  let cluster =
    Core.Cluster.create
      ~config:{ small_config with Core.Config.hiccup_interval_ms = 700.0 }
      ~tracing:false ~mode:Core.Consistency.Fine
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:12 ~first_sid:0
    (Workload.Microbench.workload params);
  let ts = Core.Cluster.start_observatory ~window_ms:100.0 cluster in
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:1_500.0;
  Core.Cluster.stop_observatory cluster ts;
  let m = Core.Cluster.metrics cluster in
  let v = Core.Certifier.version (Core.Cluster.certifier cluster) in
  let fp =
    Storage.Database.fingerprint
      (Core.Replica.database (Core.Cluster.replica cluster 0))
      ~at:(Core.Replica.v_local (Core.Cluster.replica cluster 0))
  in
  ( (Core.Metrics.committed m, Core.Metrics.mean_response_ms m, v, fp),
    Obs.Json.to_string (Obs.Export.timeseries_json ts) )

let test_observatory_zero_overhead () =
  (* The observatory only reads: windows, histograms and gauges must
     not shift a single event, so the instrumented run still reproduces
     the golden baseline bit for bit. *)
  let golden, _series = observatory_run () in
  check_golden golden

let test_observatory_series_deterministic () =
  (* Two instrumented runs with the same seed serialize the exact same
     time series, byte for byte. *)
  let _, s1 = observatory_run () in
  let _, s2 = observatory_run () in
  Alcotest.(check bool) "series non-trivial" true (String.length s1 > 200);
  Alcotest.(check string) "identical serialized time series" s1 s2

let test_observatory_channels_populated () =
  let _, series = observatory_run () in
  let doc =
    match Obs.Json.parse series with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "series is not valid JSON: %s" e
  in
  let windows =
    match Option.bind (Obs.Json.member "windows" doc) Obs.Json.to_list with
    | Some ws -> ws
    | None -> Alcotest.fail "no windows array"
  in
  (* 1.7 s of virtual time in 100 ms windows, plus the flushed tail. *)
  Alcotest.(check bool)
    (Printf.sprintf "many windows (got %d)" (List.length windows))
    true
    (List.length windows >= 17);
  let counter_total name =
    List.fold_left
      (fun acc w ->
        match
          Option.bind
            (Option.bind (Obs.Json.member "counters" w) (Obs.Json.member name))
            Obs.Json.to_float
        with
        | Some v -> acc +. v
        | None -> Alcotest.failf "window missing counter %S" name)
      0.0 windows
  in
  Alcotest.(check bool) "commits counted" true (counter_total "txn.commit" > 0.0);
  Alcotest.(check bool) "certifier decisions counted" true
    (counter_total "certifier.decisions" > 0.0);
  let last = List.nth windows (List.length windows - 1) in
  let gauge name =
    match
      Option.bind
        (Option.bind (Obs.Json.member "gauges" last) (Obs.Json.member name))
        Obs.Json.to_float
    with
    | Some v -> v
    | None -> Alcotest.failf "final window missing gauge %S" name
  in
  Alcotest.(check bool) "v_system gauge advanced" true (gauge "v_system" > 0.0);
  Alcotest.(check bool) "lag gauge sane" true (gauge "replicas.lag.max" >= 0.0);
  Alcotest.(check bool) "cert log gauge sane" true (gauge "certifier.log_size" >= 0.0)

(* --- Certifier unit tests (driven directly, inside a process) --- *)

let ws_on table key =
  Storage.Writeset.of_entries
    [
      {
        Storage.Writeset.ws_table = table;
        ws_key = [| Storage.Value.Int key |];
        ws_op = Storage.Writeset.Put [| Storage.Value.Int key |];
      };
    ]

let with_certifier ?(config = small_config) ?(mode = Core.Consistency.Coarse) f =
  let engine = Sim.Engine.create () in
  let rng = Util.Rng.create 1 in
  let network =
    Sim.Network.create engine ~rng:(Util.Rng.split rng) ~base_ms:0.1 ~jitter_ms:0.0
      ~bandwidth_mbps:1000.0
  in
  let certifier = Core.Certifier.create engine config ~rng ~network ~mode in
  Sim.Process.spawn engine (fun () -> f certifier);
  Sim.Engine.run engine

let test_certifier_conflict_window () =
  with_certifier (fun c ->
      (* T1 commits key 1 at v1. *)
      (match Core.Certifier.certify c ~origin:0 ~snapshot:0 ~ws:(ws_on "t" 1) with
      | Core.Certifier.Commit { version; _ } -> Alcotest.(check int) "v1" 1 version
      | _ -> Alcotest.fail "first writer aborted");
      (* A conflicting writeset with a pre-commit snapshot aborts... *)
      (match Core.Certifier.certify c ~origin:1 ~snapshot:0 ~ws:(ws_on "t" 1) with
      | Core.Certifier.Abort -> ()
      | _ -> Alcotest.fail "conflicting writer committed");
      (* ...but commits once its snapshot includes v1. *)
      (match Core.Certifier.certify c ~origin:1 ~snapshot:1 ~ws:(ws_on "t" 1) with
      | Core.Certifier.Commit { version; _ } -> Alcotest.(check int) "v2" 2 version
      | _ -> Alcotest.fail "sequential writer aborted");
      (* Non-conflicting concurrent writesets both commit. *)
      match Core.Certifier.certify c ~origin:2 ~snapshot:0 ~ws:(ws_on "t" 99) with
      | Core.Certifier.Commit _ -> ()
      | _ -> Alcotest.fail "disjoint writer aborted")

let test_certifier_prune_and_replay () =
  with_certifier (fun c ->
      for i = 1 to 10 do
        match Core.Certifier.certify c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i) with
        | Core.Certifier.Commit _ -> ()
        | _ -> Alcotest.fail "unexpected abort"
      done;
      (match Core.Certifier.writesets_from c 4 with
      | Some l -> Alcotest.(check int) "replay suffix length" 6 (List.length l)
      | None -> Alcotest.fail "log unexpectedly pruned");
      Core.Certifier.prune c ~keep_after:5;
      Alcotest.(check int) "log base" 5 (Core.Certifier.log_base c);
      (match Core.Certifier.writesets_from c 5 with
      | Some l ->
        Alcotest.(check (list int)) "versions 6..10" [ 6; 7; 8; 9; 10 ] (List.map fst l)
      | None -> Alcotest.fail "suffix above the horizon must replay");
      (match Core.Certifier.writesets_from c 3 with
      | None -> ()
      | Some _ -> Alcotest.fail "pruned suffix must not replay");
      (* A snapshot below the horizon is conservatively aborted. *)
      match Core.Certifier.certify c ~origin:0 ~snapshot:2 ~ws:(ws_on "t" 77) with
      | Core.Certifier.Abort -> ()
      | _ -> Alcotest.fail "stale snapshot certified")

let test_certifier_decisions_counter () =
  with_certifier (fun c ->
      ignore (Core.Certifier.certify c ~origin:0 ~snapshot:0 ~ws:(ws_on "t" 1));
      ignore (Core.Certifier.certify c ~origin:0 ~snapshot:0 ~ws:(ws_on "t" 1));
      let commits, aborts = Core.Certifier.decisions c in
      Alcotest.(check (pair int int)) "one commit, one abort" (1, 1) (commits, aborts))

(* --- Metrics --- *)

let test_metrics_accounting () =
  let engine = Sim.Engine.create () in
  let m = Core.Metrics.create engine in
  Sim.Engine.schedule engine ~delay:1_000.0 (fun () ->
      let stages = Array.make Core.Metrics.stage_count 0.0 in
      stages.(Core.Metrics.stage_index Core.Metrics.Queries) <- 2.0;
      Core.Metrics.record_commit m ~read_only:true ~stages ~response_ms:10.0;
      stages.(Core.Metrics.stage_index Core.Metrics.Global) <- 8.0;
      Core.Metrics.record_commit m ~read_only:false ~stages ~response_ms:30.0;
      Core.Metrics.record_abort m);
  Sim.Engine.run engine;
  Alcotest.(check int) "committed" 2 (Core.Metrics.committed m);
  Alcotest.(check (float 1e-6)) "throughput over 1s window" 2.0
    (Core.Metrics.throughput_tps m);
  Alcotest.(check (float 1e-6)) "mean response" 20.0 (Core.Metrics.mean_response_ms m);
  Alcotest.(check (float 1e-6)) "mean queries stage" 2.0
    (Core.Metrics.mean_stage_ms m Core.Metrics.Queries);
  (* Global averages over update transactions only. *)
  Alcotest.(check (float 1e-6)) "global stage per update txn" 8.0
    (Core.Metrics.mean_stage_update_ms m Core.Metrics.Global);
  Alcotest.(check (float 1e-6)) "abort rate" (1.0 /. 3.0) (Core.Metrics.abort_rate m);
  Core.Metrics.reset_window m;
  Alcotest.(check int) "window reset" 0 (Core.Metrics.committed m)

let suites =
  [
    ( "core.cluster",
      [
        Alcotest.test_case "read-only commit" `Quick test_read_only_commit;
        Alcotest.test_case "update commit propagates" `Quick test_update_commit_propagates;
        Alcotest.test_case "strong consistency across clients" `Quick
          test_strong_consistency_across_clients;
        Alcotest.test_case "certification conflict" `Quick test_certification_conflict;
        Alcotest.test_case "eager waits for all replicas" `Quick
          test_eager_all_replicas_before_ack;
        Alcotest.test_case "metrics stages" `Quick test_metrics_stages_recorded;
        Alcotest.test_case "session version tracking" `Quick test_session_version_tracking;
        Alcotest.test_case "simulation determinism" `Quick test_simulation_determinism;
        Alcotest.test_case "unbatched run matches golden baseline" `Quick
          test_unbatched_matches_golden;
        Alcotest.test_case "explicit batch=1 matches golden baseline" `Quick
          test_explicit_batch_one_matches_golden;
        Alcotest.test_case "clean fault plan matches golden baseline" `Quick
          test_clean_fault_plan_matches_golden;
        Alcotest.test_case "linear cert index matches golden baseline" `Quick
          test_linear_index_matches_golden;
        Alcotest.test_case "observatory run matches golden baseline" `Quick
          test_observatory_zero_overhead;
        Alcotest.test_case "observatory series deterministic" `Quick
          test_observatory_series_deterministic;
        Alcotest.test_case "observatory channels populated" `Quick
          test_observatory_channels_populated;
        Alcotest.test_case "tracing is zero-overhead" `Quick test_tracing_zero_overhead;
      ] );
    ( "core.certifier",
      [
        Alcotest.test_case "conflict window" `Quick test_certifier_conflict_window;
        Alcotest.test_case "prune and replay" `Quick test_certifier_prune_and_replay;
        Alcotest.test_case "decision counters" `Quick test_certifier_decisions_counter;
      ] );
    ( "core.metrics",
      [ Alcotest.test_case "accounting" `Quick test_metrics_accounting ] );
    ( "core.load_balancer",
      [
        Alcotest.test_case "least-active routing" `Quick test_load_balancer_least_active;
        Alcotest.test_case "routing policies" `Quick test_load_balancer_policies;
        Alcotest.test_case "fine-grained table versions" `Quick test_fine_table_versions;
      ] );
  ]

(* Tests for the observability subsystem: span buffer, registry,
   sampler, JSON codec, and the Chrome trace-event exporter fed by a
   real traced cluster run. *)

let mk_trace () =
  let engine = Sim.Engine.create () in
  (engine, Obs.Trace.create engine)

(* --- Trace ring buffer --- *)

let test_trace_spans_in_finish_order () =
  let engine, tr = mk_trace () in
  Sim.Process.spawn engine (fun () ->
      let id = Obs.Trace.next_trace_id tr in
      let root =
        Obs.Trace.start tr ~trace_id:id ~component:(Obs.Span.Client 0) ~name:"root" ()
      in
      Sim.Process.sleep engine 2.0;
      let child =
        Obs.Trace.start tr ~trace_id:id ~parent:root ~component:(Obs.Span.Replica 1)
          ~name:"child" ()
      in
      Sim.Process.sleep engine 3.0;
      Obs.Trace.finish tr child;
      Obs.Trace.finish tr root);
  Sim.Engine.run engine;
  match Obs.Trace.spans tr with
  | [ child; root ] ->
    Alcotest.(check string) "inner span finishes first" "child" child.Obs.Span.name;
    Alcotest.(check (option int)) "parent link" (Some root.Obs.Span.id)
      child.Obs.Span.parent;
    Alcotest.(check (float 1e-9)) "child start" 2.0 child.Obs.Span.start_ms;
    Alcotest.(check (float 1e-9)) "child duration" 3.0 (Obs.Span.duration_ms child);
    Alcotest.(check (float 1e-9)) "root spans the whole txn" 5.0
      (Obs.Span.duration_ms root)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_trace_ring_overwrites_oldest () =
  let engine = Sim.Engine.create () in
  let tr = Obs.Trace.create ~capacity:4 engine in
  for i = 0 to 9 do
    let s =
      Obs.Trace.start tr ~trace_id:i ~component:Obs.Span.Certifier
        ~name:(string_of_int i) ()
    in
    Obs.Trace.finish tr s
  done;
  Alcotest.(check int) "capacity bounds retention" 4 (Obs.Trace.length tr);
  Alcotest.(check int) "overwrites counted" 6 (Obs.Trace.dropped tr);
  Alcotest.(check (list string)) "oldest evicted first" [ "6"; "7"; "8"; "9" ]
    (List.map (fun s -> s.Obs.Span.name) (Obs.Trace.spans tr));
  Obs.Trace.clear tr;
  Alcotest.(check int) "clear empties" 0 (Obs.Trace.length tr)

let test_trace_disabled_is_free () =
  (* The option-threaded entry points must accept [None] everywhere. *)
  let span =
    Obs.Trace.start_opt None ~trace_id:0 ~component:Obs.Span.Load_balancer ~name:"x" ()
  in
  Alcotest.(check bool) "no span materializes" true (span = None);
  Obs.Trace.finish_opt None span;
  Obs.Trace.instant_opt None ~trace_id:0 ~component:Obs.Span.Load_balancer ~name:"x" ()

(* --- Registry --- *)

let test_registry_counters_and_gauges () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "commits" in
  Obs.Registry.incr c;
  Obs.Registry.incr ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 (Obs.Registry.counter_value c);
  Alcotest.(check bool) "find-or-create returns the same cell" true
    (Obs.Registry.counter r "commits" == c);
  let g = Obs.Registry.gauge r "queue" in
  Obs.Registry.set g 3.5;
  Alcotest.(check (float 0.0)) "gauge holds last value" 3.5 (Obs.Registry.gauge_value g);
  Alcotest.(check (list (pair string (float 0.0))))
    "snapshot sorted by name"
    [ ("commits", 5.0); ("queue", 3.5) ]
    (Obs.Registry.snapshot r);
  Alcotest.(check (option (float 0.0))) "find widens counters" (Some 5.0)
    (Obs.Registry.find r "commits");
  Obs.Registry.reset r;
  Alcotest.(check int) "reset zeroes counters" 0 (Obs.Registry.counter_value c);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Registry.gauge: \"commits\" is a counter") (fun () ->
      ignore (Obs.Registry.gauge r "commits"))

(* --- Sampler --- *)

let test_sampler_periodic_series () =
  let engine = Sim.Engine.create () in
  let s = Obs.Sampler.create ~interval_ms:10.0 engine in
  Obs.Sampler.add s ~name:"clock" (fun () -> Sim.Engine.now engine);
  Obs.Sampler.start s;
  Sim.Engine.schedule engine ~delay:35.0 (fun () -> Obs.Sampler.stop s);
  Sim.Engine.run engine;
  (* Samples on start and then every 10 ms; the stop at t=35 lets the
     t=40 wake-up exit the loop so a horizonless run can drain. *)
  match Obs.Sampler.series s with
  | [ { Obs.Sampler.name; points } ] ->
    Alcotest.(check string) "series name" "clock" name;
    Alcotest.(check (list (float 1e-9)))
      "one sample per interval" [ 0.0; 10.0; 20.0; 30.0 ]
      (Array.to_list (Array.map fst points));
    Alcotest.(check (list (float 1e-9)))
      "probe read at sample time" [ 0.0; 10.0; 20.0; 30.0 ]
      (Array.to_list (Array.map snd points))
  | l -> Alcotest.failf "expected 1 series, got %d" (List.length l)

let test_sampler_resource_probes () =
  let engine = Sim.Engine.create () in
  let s = Obs.Sampler.create engine in
  let r = Sim.Resource.create engine ~servers:2 in
  Obs.Sampler.add_resource s ~name:"cpu" r;
  Alcotest.(check (list string)) "busy/queue/util probes" [ "cpu.busy"; "cpu.queue"; "cpu.util" ]
    (List.map (fun (ser : Obs.Sampler.series) -> ser.Obs.Sampler.name)
       (Obs.Sampler.series s))

(* --- Timeseries (windowed run-health telemetry) --- *)

(* A scripted 3-window run: activity in windows 0 and 1, silence in the
   flushed partial window 2. *)
let scripted_timeseries () =
  let engine = Sim.Engine.create () in
  let ts = Obs.Timeseries.create ~window_ms:10.0 engine in
  let c = Obs.Timeseries.counter ts "ev" in
  let d = Obs.Timeseries.dist ts "lat" in
  Obs.Timeseries.add_probe ts ~name:"clock" (fun () -> Sim.Engine.now engine);
  Obs.Timeseries.add_pre_close ts (fun () ->
      Obs.Timeseries.bump ~by:5 (Obs.Timeseries.counter ts "hook"));
  Sim.Process.spawn engine (fun () ->
      Obs.Timeseries.bump c;
      Obs.Timeseries.observe d 1.0;
      Sim.Process.sleep engine 12.0;
      Obs.Timeseries.bump ~by:2 c;
      Obs.Timeseries.observe d 100.0;
      Sim.Process.sleep engine 13.0);
  Obs.Timeseries.start ts;
  Sim.Engine.schedule engine ~delay:25.0 (fun () -> Obs.Timeseries.stop ts);
  Sim.Engine.run engine;
  Obs.Timeseries.flush ts;
  ts

let test_timeseries_windows_and_channels () =
  let ts = scripted_timeseries () in
  match Obs.Timeseries.windows ts with
  | [ w0; w1; w2 ] ->
    Alcotest.(check int) "window sequence" 0 w0.Obs.Timeseries.seq;
    Alcotest.(check (float 1e-9)) "w0 spans [0, 10)" 10.0 w0.Obs.Timeseries.end_ms;
    Alcotest.(check (list (pair string int)))
      "w0 counters (sorted; hook from pre_close)"
      [ ("ev", 1); ("hook", 5) ]
      w0.Obs.Timeseries.counters;
    Alcotest.(check (list (pair string int)))
      "counters reset at the boundary"
      [ ("ev", 2); ("hook", 5) ]
      w1.Obs.Timeseries.counters;
    Alcotest.(check (float 1e-9)) "windowed rate is count over span" 200.0
      (Obs.Timeseries.rate_per_sec w1 "ev");
    Alcotest.(check (float 1e-9)) "unknown counter rates 0" 0.0
      (Obs.Timeseries.rate_per_sec w1 "nope");
    Alcotest.(check (option (float 1e-9))) "probe read at each close" (Some 10.0)
      (Obs.Timeseries.gauge_value w0 "clock");
    (match Obs.Timeseries.summary_of w1 "lat" with
    | Some s ->
      Alcotest.(check int) "one observation in w1" 1 s.Obs.Timeseries.count;
      Alcotest.(check (float 0.0)) "w1 max is the sample" 100.0 s.Obs.Timeseries.max
    | None -> Alcotest.fail "no lat summary in w1");
    (* The flushed partial window: empty but for the gauges and hook. *)
    Alcotest.(check (list (pair string int)))
      "flushed window saw no events"
      [ ("ev", 0); ("hook", 5) ]
      w2.Obs.Timeseries.counters;
    (match Obs.Timeseries.summary_of w2 "lat" with
    | Some s -> Alcotest.(check int) "empty dist summary" 0 s.Obs.Timeseries.count
    | None -> Alcotest.fail "dist channel missing from flushed window")
  | ws -> Alcotest.failf "expected 3 windows, got %d" (List.length ws)

let test_timeseries_merged_rolls_up () =
  let ts = scripted_timeseries () in
  match Obs.Timeseries.merged ts "lat" with
  | None -> Alcotest.fail "no merged histogram"
  | Some h ->
    Alcotest.(check int) "both windows' samples" 2 (Util.Histogram.Log.count h);
    Alcotest.(check (float 0.0)) "whole-run min" 1.0 (Util.Histogram.Log.min_value h);
    Alcotest.(check (float 0.0)) "whole-run max" 100.0 (Util.Histogram.Log.max_value h)

let test_timeseries_flush_needs_elapsed_time () =
  let ts = scripted_timeseries () in
  let n = List.length (Obs.Timeseries.windows ts) in
  Obs.Timeseries.flush ts;
  Alcotest.(check int) "flush with no elapsed time is a no-op" n
    (List.length (Obs.Timeseries.windows ts))

let test_timeseries_json_parses_back () =
  let ts = scripted_timeseries () in
  let doc =
    match Obs.Json.parse (Obs.Json.to_string (Obs.Export.timeseries_json ts)) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "timeseries export is not valid JSON: %s" e
  in
  Alcotest.(check (option (float 1e-9))) "window_ms" (Some 10.0)
    (Option.bind (Obs.Json.member "window_ms" doc) Obs.Json.to_float);
  match Option.bind (Obs.Json.member "windows" doc) Obs.Json.to_list with
  | Some ws ->
    Alcotest.(check int) "one object per window" 3 (List.length ws);
    let w0 = List.hd ws in
    Alcotest.(check (option (float 1e-9))) "counters serialized" (Some 1.0)
      (Option.bind
         (Option.bind (Obs.Json.member "counters" w0) (Obs.Json.member "ev"))
         Obs.Json.to_float)
  | None -> Alcotest.fail "no windows array"

(* --- JSON codec --- *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("s", Obs.Json.Str "a \"quoted\"\nline\twith \\ and unicode \x1b");
        ("n", Obs.Json.Num 1.5);
        ("i", Obs.Json.Num 3.0);
        ("neg", Obs.Json.Num (-0.25));
        ("b", Obs.Json.Bool true);
        ("null", Obs.Json.Null);
        ("arr", Obs.Json.Arr [ Obs.Json.Num 1.0; Obs.Json.Str "x"; Obs.Json.Obj [] ]);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "print/parse round-trips" true (parsed = doc)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun input ->
      match Obs.Json.parse input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" input)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2" ]

(* --- End-to-end: traced cluster run exported as Chrome trace JSON --- *)

let tpcw_traced_trace () =
  let config =
    {
      Core.Config.tpcw with
      Core.Config.replicas = 3;
      seed = 42;
      gc_interval_ms = 0.0;
      hiccup_interval_ms = 0.0;
    }
  in
  let params =
    { Workload.Tpcw.default with Workload.Tpcw.think_mean_ms = 100.0 }
  in
  let cluster =
    Core.Cluster.create ~config ~tracing:true ~mode:Core.Consistency.Fine
      ~schemas:Workload.Tpcw.schemas ~load:(Workload.Tpcw.load params) ()
  in
  for sid = 0 to 11 do
    Core.Client.spawn cluster ~sid ~rng:(Core.Cluster.rng cluster)
      (Workload.Tpcw.workload params Workload.Tpcw.Ordering ~sid)
  done;
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:2_000.0;
  match Core.Cluster.trace cluster with
  | Some trace -> trace
  | None -> Alcotest.fail "tracing-enabled cluster has no trace"

let test_chrome_export_parses_back () =
  let trace = tpcw_traced_trace () in
  let doc =
    match Obs.Json.parse (Obs.Export.chrome_trace trace) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "exported trace is not valid JSON: %s" e
  in
  let events =
    match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
    | Some events -> events
    | None -> Alcotest.fail "no traceEvents array"
  in
  let field name ev = Obs.Json.member name ev in
  let str name ev = Option.bind (field name ev) Obs.Json.to_str in
  let num name ev = Option.bind (field name ev) Obs.Json.to_float in
  let complete = List.filter (fun ev -> str "ph" ev = Some "X") events in
  Alcotest.(check bool) "has spans" true (complete <> []);
  (* The §V.A acceptance bar: spans from all three middleware
     components — load balancer, replicas, certifier. *)
  let pids =
    List.sort_uniq compare (List.filter_map (fun ev -> num "pid" ev) complete)
  in
  List.iter
    (fun component ->
      let pid = float_of_int (Obs.Span.pid component) in
      Alcotest.(check bool)
        (Printf.sprintf "spans from %s" (Obs.Span.component_name component))
        true (List.mem pid pids))
    [ Obs.Span.Load_balancer; Obs.Span.Replica 0; Obs.Span.Certifier ];
  (* Every complete event is well-formed: ts/dur present, dur >= 0. *)
  List.iter
    (fun ev ->
      match (num "ts" ev, num "dur" ev, str "name" ev) with
      | Some _, Some dur, Some _ ->
        if dur < 0.0 then Alcotest.fail "negative span duration"
      | _ -> Alcotest.fail "span event missing ts/dur/name")
    complete;
  (* Metadata names every process that emitted spans. *)
  let named_pids =
    List.filter_map
      (fun ev -> if str "ph" ev = Some "M" then num "pid" ev else None)
      events
  in
  List.iter
    (fun pid ->
      Alcotest.(check bool) "span pid has metadata" true (List.mem pid named_pids))
    pids

let test_chrome_export_timeseries_counters () =
  (* A timeseries handed to the exporter renders as Chrome counter
     tracks: one "C" event per channel per window, stamped at the window
     end, under a named telemetry process. *)
  let ts = scripted_timeseries () in
  let engine = Sim.Engine.create () in
  let trace = Obs.Trace.create engine in
  let doc = Obs.Export.chrome_json ~timeseries:ts trace in
  let events =
    match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
    | Some events -> events
    | None -> Alcotest.fail "no traceEvents array"
  in
  let str name ev = Option.bind (Obs.Json.member name ev) Obs.Json.to_str in
  let counters = List.filter (fun ev -> str "ph" ev = Some "C") events in
  Alcotest.(check bool) "counter events present" true (counters <> []);
  Alcotest.(check bool) "windowed rates exported" true
    (List.exists (fun ev -> str "name" ev = Some "ev/s") counters);
  Alcotest.(check bool) "gauges exported" true
    (List.exists (fun ev -> str "name" ev = Some "clock") counters);
  Alcotest.(check bool) "dist p99 exported" true
    (List.exists (fun ev -> str "name" ev = Some "lat.p99") counters);
  Alcotest.(check bool) "telemetry process named" true
    (List.exists
       (fun ev ->
         str "ph" ev = Some "M"
         && Option.bind (Obs.Json.member "args" ev) (fun a ->
                Option.bind (Obs.Json.member "name" a) Obs.Json.to_str)
            = Some "telemetry")
       events)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_text_dump_mentions_components () =
  let trace = tpcw_traced_trace () in
  let text = Format.asprintf "%a" Obs.Export.pp_text trace in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "text dump mentions %s" needle)
        true
        (contains_substring text needle))
    [ "certify"; "refresh.apply"; "route" ]

let suites =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "spans in finish order" `Quick test_trace_spans_in_finish_order;
        Alcotest.test_case "ring overwrites oldest" `Quick test_trace_ring_overwrites_oldest;
        Alcotest.test_case "disabled path" `Quick test_trace_disabled_is_free;
      ] );
    ( "obs.registry",
      [ Alcotest.test_case "counters and gauges" `Quick test_registry_counters_and_gauges ]
    );
    ( "obs.sampler",
      [
        Alcotest.test_case "periodic series" `Quick test_sampler_periodic_series;
        Alcotest.test_case "resource probes" `Quick test_sampler_resource_probes;
      ] );
    ( "obs.timeseries",
      [
        Alcotest.test_case "windows and channels" `Quick
          test_timeseries_windows_and_channels;
        Alcotest.test_case "merged histograms roll up" `Quick
          test_timeseries_merged_rolls_up;
        Alcotest.test_case "flush idempotent" `Quick
          test_timeseries_flush_needs_elapsed_time;
        Alcotest.test_case "json export parses back" `Quick
          test_timeseries_json_parses_back;
      ] );
    ( "obs.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
      ] );
    ( "obs.export",
      [
        Alcotest.test_case "chrome trace parses back" `Quick test_chrome_export_parses_back;
        Alcotest.test_case "chrome counter tracks" `Quick
          test_chrome_export_timeseries_counters;
        Alcotest.test_case "text dump" `Quick test_text_dump_mentions_components;
      ] );
  ]

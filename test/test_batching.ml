(* Batched certification and conflict-aware parallel refresh apply
   (docs/PROTOCOL.md, "Batched certification and refresh").

   The bit-identity of [cert_batch = 1] / [apply_parallelism = 1] with
   the pre-batching protocol is pinned in test_core.ml against golden
   values; this file exercises the batching machinery itself: batch
   formation under backlog, intra-batch conflict handling, the one
   message-per-replica refresh fan-out, crash/recovery across a
   partially applied group, and the consistency guarantees under
   batched configurations. *)

let ws_on table key =
  Storage.Writeset.of_entries
    [
      {
        Storage.Writeset.ws_table = table;
        ws_key = [| Storage.Value.Int key |];
        ws_op = Storage.Writeset.Put [| Storage.Value.Int key |];
      };
    ]

(* --- Direct certifier tests ---------------------------------------- *)

let cert_config =
  {
    Core.Config.default with
    replicas = 3;
    seed = 11;
    cert_batch = 4;
    service_jitter = false;
    hiccup_interval_ms = 0.0;
    gc_interval_ms = 0.0;
  }

let with_certifier f =
  let engine = Sim.Engine.create () in
  let rng = Util.Rng.create 1 in
  let network =
    Sim.Network.create engine ~rng:(Util.Rng.split rng) ~base_ms:0.1 ~jitter_ms:0.0
      ~bandwidth_mbps:1000.0
  in
  let certifier =
    Core.Certifier.create engine cert_config ~rng ~network ~mode:Core.Consistency.Coarse
  in
  f engine certifier;
  Sim.Engine.run engine

(* Three writers: the first forms a singleton batch; the other two queue
   while it is in service and are decided together as one batch. *)
let spawn_three engine c ~ws2 ~ws3 record =
  let run name ~origin ws =
    Sim.Process.spawn engine (fun () ->
        let decision = Core.Certifier.certify c ~origin ~snapshot:0 ~ws in
        record name decision (Sim.Engine.now engine))
  in
  run "p1" ~origin:0 (ws_on "t" 1);
  run "p2" ~origin:0 ws2;
  run "p3" ~origin:1 ws3

let test_intra_batch_conflict_aborts_later_arrival () =
  let decisions = Hashtbl.create 4 in
  with_certifier (fun engine c ->
      (* p2 and p3 write the same key with the same snapshot: they end up
         in one batch, where first-committer-wins must still hold. *)
      spawn_three engine c ~ws2:(ws_on "t" 2) ~ws3:(ws_on "t" 2) (fun name d at ->
          Hashtbl.replace decisions name (d, at)));
  let decision name = fst (Hashtbl.find decisions name) in
  (match decision "p1" with
  | Core.Certifier.Commit { version; _ } -> Alcotest.(check int) "p1 at v1" 1 version
  | _ -> Alcotest.fail "p1 aborted");
  (match decision "p2" with
  | Core.Certifier.Commit { version; _ } -> Alcotest.(check int) "p2 at v2" 2 version
  | _ -> Alcotest.fail "p2 aborted");
  (match decision "p3" with
  | Core.Certifier.Abort -> ()
  | _ -> Alcotest.fail "intra-batch conflict not detected");
  (* p2 and p3 were decided in the same batch: same decision instant. *)
  let at name = snd (Hashtbl.find decisions name) in
  Alcotest.(check (float 1e-9)) "p2/p3 decided together" (at "p2") (at "p3");
  Alcotest.(check bool) "p1 decided earlier (own batch)" true (at "p1" < at "p2")

let test_refresh_batch_one_message_per_replica () =
  let delivered = ref [] in  (* (replica, versions in one message), reversed *)
  with_certifier (fun engine c ->
      let stub replica ~epoch:_ items =
        delivered := (replica, List.map (fun (_, v, _) -> v) items) :: !delivered
      in
      Core.Certifier.subscribe c ~replica:0 (stub 0);
      Core.Certifier.subscribe c ~replica:9 (stub 9);
      (* No conflicts: p2 (origin 0) and p3 (origin 1) both commit, in
         one batch. *)
      spawn_three engine c ~ws2:(ws_on "t" 2) ~ws3:(ws_on "t" 3) (fun _ _ _ -> ()));
  let messages_to replica =
    List.rev (List.filter_map (fun (r, vs) -> if r = replica then Some vs else None) !delivered)
  in
  (* Replica 9 originated nothing: one singleton message for p1's batch,
     then ONE message carrying both commits of the second batch. *)
  Alcotest.(check (list (list int))) "replica 9 messages" [ [ 1 ]; [ 2; 3 ] ]
    (messages_to 9);
  (* Replica 0 originated p1 and p2, so it receives neither: only p3's
     commit reaches it, inside the second batch's message. *)
  Alcotest.(check (list (list int))) "replica 0 messages" [ [ 3 ] ] (messages_to 0)

(* --- Cluster-level tests ------------------------------------------- *)

let params = { Workload.Microbench.tables = 4; rows = 100; update_types = 4 }

let batched_config =
  {
    Core.Config.default with
    replicas = 3;
    seed = 33;
    record_log = true;
    gc_interval_ms = 0.0;
    hiccup_interval_ms = 0.0;
    cert_batch = 8;
    apply_parallelism = 2;
  }

let make_cluster ?(config = batched_config) mode =
  Core.Cluster.create ~config ~mode
    ~schemas:(Workload.Microbench.schemas params)
    ~load:(Workload.Microbench.load params)
    ()

let fingerprint_at cluster i ~at =
  Storage.Database.fingerprint (Core.Replica.database (Core.Cluster.replica cluster i)) ~at

let test_crash_mid_batch_recovers_by_replay () =
  (* With [apply_parallelism = 2] a crash can interrupt a group between
     install and publish; recovery must replay the certifier log over
     the partially installed writesets and converge. *)
  let cluster = make_cluster Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      Core.Cluster.crash_replica cluster 2;
      Sim.Process.sleep engine 1_000.0;
      Core.Cluster.recover_replica cluster 2);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  let certified = Core.Certifier.version (Core.Cluster.certifier cluster) in
  let recovered = Core.Replica.v_local (Core.Cluster.replica cluster 2) in
  Alcotest.(check bool)
    (Printf.sprintf "recovered replica caught up (v_local %d, certified %d)" recovered
       certified)
    true
    (certified - recovered < 20);
  Alcotest.(check bool) "progress was made" true (certified > 100);
  (* Every replica agrees on the database contents at the deepest common
     prefix of the commit order. *)
  let min_v =
    List.fold_left min max_int
      (List.init 3 (fun i -> Core.Replica.v_local (Core.Cluster.replica cluster i)))
  in
  let reference = fingerprint_at cluster 0 ~at:min_v in
  for i = 1 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d converged with replica 0 at v%d" i min_v)
      reference
      (fingerprint_at cluster i ~at:min_v)
  done

let check_empty name violations =
  match violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d violations, first: %s" name (List.length violations)
      (Format.asprintf "%a" Check.Runlog.pp_violation v)

let test_fine_version_accounting_under_batching () =
  (* Theorem 2 (Table I version arithmetic) must survive batching: the
     per-table V_t tracking feeds start versions, and delayed group
     publication must never let a transaction read an inconsistent
     snapshot. *)
  let cluster = make_cluster Core.Consistency.Fine in
  Core.Client.spawn_many cluster ~n:12 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:3_000.0;
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "log non-trivial" true (List.length log > 100);
  check_empty "fine strong under batching" (Check.Runlog.fine_strong_consistency log);
  check_empty "fcw under batching" (Check.Runlog.first_committer_wins log);
  (* The batching machinery actually engaged. *)
  let m = Core.Cluster.metrics cluster in
  Alcotest.(check bool) "certification batches recorded" true
    (Core.Metrics.cert_batches m > 0);
  Alcotest.(check bool) "apply groups recorded" true (Core.Metrics.apply_groups m > 0);
  Alcotest.(check bool) "group size sane" true (Core.Metrics.mean_apply_group m >= 1.0)

let test_eager_with_parallel_apply () =
  (* Eager global commit counts one ack per version; group publication
     must still produce every ack, in order. *)
  let cluster = make_cluster Core.Consistency.Eager in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:2_000.0;
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "eager cluster committed" true (List.length log > 100);
  check_empty "strong under batching" (Check.Runlog.strong_consistency log);
  check_empty "fcw" (Check.Runlog.first_committer_wins log)

let batched_run () =
  let cluster = make_cluster Core.Consistency.Session in
  Core.Client.spawn_many cluster ~n:12 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:1_500.0;
  let m = Core.Cluster.metrics cluster in
  let v = Core.Certifier.version (Core.Cluster.certifier cluster) in
  let fp = fingerprint_at cluster 0 ~at:(Core.Replica.v_local (Core.Cluster.replica cluster 0)) in
  (Core.Metrics.committed m, Core.Metrics.mean_response_ms m, v, fp)

let test_batched_run_is_deterministic () =
  (* Parallel lanes are simulated processes, not OS threads: a batched
     run must be exactly reproducible like everything else. *)
  let c1, r1, v1, f1 = batched_run () in
  let c2, r2, v2, f2 = batched_run () in
  Alcotest.(check int) "same committed count" c1 c2;
  Alcotest.(check (float 0.0)) "same mean response" r1 r2;
  Alcotest.(check int) "same certified version" v1 v2;
  Alcotest.(check int) "same database contents" f1 f2

let suites =
  [
    ( "core.batching",
      [
        Alcotest.test_case "intra-batch conflict aborts later arrival" `Quick
          test_intra_batch_conflict_aborts_later_arrival;
        Alcotest.test_case "one refresh message per replica" `Quick
          test_refresh_batch_one_message_per_replica;
        Alcotest.test_case "crash mid-batch recovers by replay" `Quick
          test_crash_mid_batch_recovers_by_replay;
        Alcotest.test_case "fine version accounting under batching" `Quick
          test_fine_version_accounting_under_batching;
        Alcotest.test_case "eager with parallel apply" `Quick
          test_eager_with_parallel_apply;
        Alcotest.test_case "batched run is deterministic" `Quick
          test_batched_run_is_deterministic;
      ] );
  ]

(* Tests for the discrete-event simulation kernel. *)

let test_engine_time_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~delay:5.0 (fun () -> log := "b" :: !log);
  Sim.Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Sim.Engine.schedule e ~delay:9.0 (fun () -> log := "c" :: !log);
  Sim.Engine.run e;
  Alcotest.(check (list string)) "events in time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 9.0 (Sim.Engine.now e)

let test_engine_same_time_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    Sim.Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "same-instant events run FIFO" [ 0; 1; 2; 3; 4 ]
    (List.rev !log)

let test_engine_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule e ~delay:1.0 (fun () -> incr fired);
  Sim.Engine.schedule e ~delay:100.0 (fun () -> incr fired);
  Sim.Engine.run e ~until:10.0;
  Alcotest.(check int) "only events before the horizon" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock parked at horizon" 10.0 (Sim.Engine.now e);
  Alcotest.(check int) "future event still queued" 1 (Sim.Engine.pending e)

let test_engine_negative_delay_clamped () =
  let e = Sim.Engine.create () in
  let at = ref (-1.0) in
  Sim.Engine.schedule e ~delay:5.0 (fun () ->
      Sim.Engine.schedule e ~delay:(-3.0) (fun () -> at := Sim.Engine.now e));
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "negative delay fires now" 5.0 !at

let test_process_sleep () =
  let e = Sim.Engine.create () in
  let wake = ref 0.0 in
  Sim.Process.spawn e (fun () ->
      Sim.Process.sleep e 3.0;
      Sim.Process.sleep e 4.0;
      wake := Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "sleeps accumulate" 7.0 !wake

let test_mailbox_blocking_recv () =
  let e = Sim.Engine.create () in
  let mb = Sim.Mailbox.create e in
  let got = ref 0 in
  let at = ref 0.0 in
  Sim.Process.spawn e (fun () ->
      got := Sim.Mailbox.recv mb;
      at := Sim.Engine.now e);
  Sim.Process.spawn e (fun () ->
      Sim.Process.sleep e 10.0;
      Sim.Mailbox.send mb 42);
  Sim.Engine.run e;
  Alcotest.(check int) "received value" 42 !got;
  Alcotest.(check (float 1e-9)) "received when sent" 10.0 !at

let test_mailbox_fifo_messages () =
  let e = Sim.Engine.create () in
  let mb = Sim.Mailbox.create e in
  List.iter (Sim.Mailbox.send mb) [ 1; 2; 3 ];
  let got = ref [] in
  Sim.Process.spawn e (fun () ->
      for _ = 1 to 3 do
        got := Sim.Mailbox.recv mb :: !got
      done);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "messages in order" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_multiple_waiters () =
  let e = Sim.Engine.create () in
  let mb = Sim.Mailbox.create e in
  let got = ref [] in
  for i = 0 to 2 do
    Sim.Process.spawn e (fun () ->
        let v = Sim.Mailbox.recv mb in
        got := (i, v) :: !got)
  done;
  Sim.Process.spawn e (fun () ->
      Sim.Process.sleep e 1.0;
      List.iter (Sim.Mailbox.send mb) [ 10; 20; 30 ]);
  Sim.Engine.run e;
  Alcotest.(check (list (pair int int)))
    "waiters served FIFO" [ (0, 10); (1, 20); (2, 30) ] (List.rev !got)

let test_ivar () =
  let e = Sim.Engine.create () in
  let iv = Sim.Ivar.create e in
  let a = ref 0 and b = ref 0 in
  Sim.Process.spawn e (fun () -> a := Sim.Ivar.read iv);
  Sim.Process.spawn e (fun () -> b := Sim.Ivar.read iv);
  Sim.Process.spawn e (fun () ->
      Sim.Process.sleep e 2.0;
      Sim.Ivar.fill iv 7);
  Sim.Engine.run e;
  Alcotest.(check (pair int int)) "both readers woke" (7, 7) (!a, !b);
  Alcotest.(check bool) "filled" true (Sim.Ivar.is_filled iv);
  Alcotest.check_raises "double fill rejected" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Sim.Ivar.fill iv 8)

let test_ivar_read_after_fill () =
  let e = Sim.Engine.create () in
  let iv = Sim.Ivar.create e in
  Sim.Ivar.fill iv "x";
  let got = ref "" in
  Sim.Process.spawn e (fun () -> got := Sim.Ivar.read iv);
  Sim.Engine.run e;
  Alcotest.(check string) "immediate read" "x" !got

let test_resource_mutual_exclusion () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~servers:1 in
  let finish = ref [] in
  for i = 0 to 2 do
    Sim.Process.spawn e (fun () ->
        Sim.Resource.use r ~duration:10.0;
        finish := (i, Sim.Engine.now e) :: !finish)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list (pair int (float 1e-9))))
    "serial service, FIFO order"
    [ (0, 10.0); (1, 20.0); (2, 30.0) ]
    (List.rev !finish)

let test_resource_parallel_servers () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~servers:2 in
  let finish = ref [] in
  for i = 0 to 3 do
    Sim.Process.spawn e (fun () ->
        Sim.Resource.use r ~duration:10.0;
        finish := (i, Sim.Engine.now e) :: !finish)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list (pair int (float 1e-9))))
    "two at a time"
    [ (0, 10.0); (1, 10.0); (2, 20.0); (3, 20.0) ]
    (List.rev !finish)

let test_resource_no_handoff_steal () =
  (* A release with a queued waiter must hand the server to the waiter
     even if another process acquires at the same instant. *)
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~servers:1 in
  let order = ref [] in
  Sim.Process.spawn e (fun () ->
      Sim.Resource.use r ~duration:5.0;
      order := "holder-done" :: !order);
  Sim.Process.spawn e (fun () ->
      Sim.Process.sleep e 1.0;
      Sim.Resource.acquire r;
      order := "waiter" :: !order;
      Sim.Resource.release r);
  Sim.Process.spawn e (fun () ->
      Sim.Process.sleep e 5.0;
      (* arrives exactly when the first holder releases *)
      Sim.Resource.acquire r;
      order := "latecomer" :: !order;
      Sim.Resource.release r);
  Sim.Engine.run e;
  Alcotest.(check (list string))
    "FIFO handoff" [ "holder-done"; "waiter"; "latecomer" ] (List.rev !order);
  Alcotest.(check int) "all released" 0 (Sim.Resource.busy r)

let test_resource_utilization () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~servers:1 in
  Sim.Process.spawn e (fun () ->
      Sim.Resource.use r ~duration:5.0;
      Sim.Process.sleep e 5.0);
  Sim.Engine.run e;
  Alcotest.(check (float 0.001)) "50% busy" 0.5 (Sim.Resource.utilization r)

let test_resource_queue_length () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~servers:1 in
  let observed = ref (-1) in
  for _ = 0 to 2 do
    Sim.Process.spawn e (fun () -> Sim.Resource.use r ~duration:10.0)
  done;
  Sim.Engine.schedule e ~delay:5.0 (fun () -> observed := Sim.Resource.queue_length r);
  Sim.Engine.run e;
  (* At t=5 one holder is in service and two wait behind it. *)
  Alcotest.(check int) "two waiting mid-service" 2 !observed;
  Alcotest.(check int) "drained" 0 (Sim.Resource.queue_length r);
  Alcotest.(check int) "servers accessor" 1 (Sim.Resource.servers r)

let test_resource_reset_utilization_window () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~servers:1 in
  Sim.Process.spawn e (fun () ->
      (* Busy for the whole first window... *)
      Sim.Resource.use r ~duration:10.0;
      Sim.Resource.reset_utilization r;
      (* ...then idle for half of the second. *)
      Sim.Process.sleep e 5.0;
      Sim.Resource.use r ~duration:5.0);
  Sim.Engine.run e;
  (* Only the post-reset window counts: 5 busy out of 10. *)
  Alcotest.(check (float 0.001)) "window restarted at reset" 0.5
    (Sim.Resource.utilization r)

let test_resource_multi_server_fifo_wakeup () =
  (* With k=2 servers and 4 waiters behind 2 holders, releases must wake
     waiters in arrival order, not in release or reverse order. *)
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~servers:2 in
  let order = ref [] in
  for i = 0 to 5 do
    Sim.Process.spawn e (fun () ->
        (* Stagger arrivals so the queue order is unambiguous. *)
        Sim.Process.sleep e (float_of_int i *. 0.1);
        Sim.Resource.acquire r;
        order := i :: !order;
        Sim.Process.sleep e 10.0;
        Sim.Resource.release r)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "service entry follows arrival order" [ 0; 1; 2; 3; 4; 5 ]
    (List.rev !order);
  Alcotest.(check int) "all released" 0 (Sim.Resource.busy r)

let test_condition_await () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create e in
  let v = ref 0 in
  let woke_at = ref 0.0 in
  Sim.Process.spawn e (fun () ->
      Sim.Condition.await c (fun () -> !v >= 3);
      woke_at := Sim.Engine.now e);
  Sim.Process.spawn e (fun () ->
      for _ = 1 to 3 do
        Sim.Process.sleep e 1.0;
        incr v;
        Sim.Condition.broadcast c
      done);
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "woke only when predicate held" 3.0 !woke_at

let test_condition_immediate () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create e in
  let ran = ref false in
  Sim.Process.spawn e (fun () ->
      Sim.Condition.await c (fun () -> true);
      ran := true);
  Sim.Engine.run e;
  Alcotest.(check bool) "no broadcast needed when predicate holds" true !ran

let test_network_latency_positive () =
  let e = Sim.Engine.create () in
  let rng = Util.Rng.create 3 in
  let net = Sim.Network.create e ~rng ~base_ms:0.5 ~jitter_ms:0.2 ~bandwidth_mbps:100.0 in
  let arrived = ref 0.0 in
  Sim.Network.send net ~size_bytes:1000 (fun () -> arrived := Sim.Engine.now e);
  Sim.Engine.run e;
  (* base 0.5 + jitter <=0.2 + 8000 bits / 100 Mbps = 0.08ms *)
  Alcotest.(check bool)
    (Printf.sprintf "latency in [0.58, 0.78] (got %f)" !arrived)
    true
    (!arrived >= 0.58 && !arrived <= 0.78);
  Alcotest.(check int) "accounted" 1 (Sim.Network.messages_sent net)

let test_network_latency_formula () =
  (* With jitter 0 the sampled delay is exactly base + size/bandwidth. *)
  let e = Sim.Engine.create () in
  let rng = Util.Rng.create 3 in
  let net = Sim.Network.create e ~rng ~base_ms:0.5 ~jitter_ms:0.0 ~bandwidth_mbps:100.0 in
  let arrived = ref nan in
  Sim.Network.send net ~size_bytes:10_000 (fun () -> arrived := Sim.Engine.now e);
  Sim.Engine.run e;
  (* 80,000 bits / 100 Mbps = 0.8 ms *)
  Alcotest.(check (float 1e-12)) "base + serialization" 1.3 !arrived

let test_network_determinism () =
  (* Same seed, same traffic: identical delivery times and accounting. *)
  let run () =
    let e = Sim.Engine.create () in
    let rng = Util.Rng.create 99 in
    let net = Sim.Network.create e ~rng ~base_ms:0.4 ~jitter_ms:0.3 ~bandwidth_mbps:50.0 in
    let times = ref [] in
    for i = 1 to 20 do
      Sim.Network.send net ~size_bytes:(i * 100) (fun () ->
          times := Sim.Engine.now e :: !times)
    done;
    Sim.Engine.run e;
    (List.rev !times, Sim.Network.messages_sent net, Sim.Network.bytes_sent net)
  in
  let t1, m1, b1 = run () and t2, m2, b2 = run () in
  Alcotest.(check (list (float 0.0))) "same delivery times" t1 t2;
  Alcotest.(check int) "same messages" m1 m2;
  Alcotest.(check int) "same bytes" b1 b2;
  Alcotest.(check int) "all sent" 20 m1;
  Alcotest.(check int) "bytes are the sum" (100 * 210) b1

let make_faulty_net ?(seed = 7) ?(base_ms = 0.1) () =
  let e = Sim.Engine.create () in
  let rng = Util.Rng.create 5 in
  let net =
    Sim.Network.create ~rto_ms:1.0 e ~rng ~base_ms ~jitter_ms:0.0
      ~bandwidth_mbps:1000.0
  in
  let f = Sim.Faults.create ~seed e in
  Sim.Network.set_faults net f;
  (e, net, f)

let test_network_drop_path () =
  let e, net, f = make_faulty_net () in
  Sim.Faults.script_drop f ~src:1 ~dst:2 ~count:1;
  let delivered = ref 0 in
  Sim.Network.send net ~src:1 ~dst:2 ~size_bytes:100 (fun () -> incr delivered);
  Sim.Network.send net ~src:1 ~dst:2 ~size_bytes:100 (fun () -> incr delivered);
  Sim.Engine.run e;
  Alcotest.(check int) "first dropped, second delivered" 1 !delivered;
  Alcotest.(check int) "dropped message still counts as offered load" 2
    (Sim.Network.messages_sent net);
  Alcotest.(check int) "drop counted" 1 (Sim.Faults.drops f)

let test_network_duplicate_path () =
  let e, net, f = make_faulty_net () in
  Sim.Faults.set_link f ~src:1 ~dst:2 (Sim.Faults.spec ~duplicate:1.0 ());
  let delivered = ref 0 in
  Sim.Network.send net ~src:1 ~dst:2 ~size_bytes:100 (fun () -> incr delivered);
  Sim.Engine.run e;
  Alcotest.(check int) "delivered twice" 2 !delivered;
  Alcotest.(check int) "both copies counted" 2 (Sim.Network.messages_sent net);
  Alcotest.(check int) "duplicate counted" 1 (Sim.Faults.duplicates f)

let test_network_partition_window () =
  let e, net, f = make_faulty_net () in
  Sim.Faults.partition f ~a:[ 1 ] ~b:[] ~from_ms:0.0 ~until_ms:5.0 ();
  let delivered = ref [] in
  Sim.Process.spawn e (fun () ->
      Alcotest.(check bool) "cut both ways while open" true
        (Sim.Faults.partitioned f ~src:2 ~dst:1);
      Sim.Network.send net ~src:1 ~dst:2 ~size_bytes:10 (fun () ->
          delivered := `During :: !delivered);
      Sim.Process.sleep e 6.0;
      Alcotest.(check bool) "healed" false (Sim.Faults.partitioned f ~src:1 ~dst:2);
      Sim.Network.send net ~src:1 ~dst:2 ~size_bytes:10 (fun () ->
          delivered := `After :: !delivered));
  Sim.Engine.run e;
  Alcotest.(check bool) "only the post-heal message arrived" true
    (!delivered = [ `After ]);
  Alcotest.(check int) "partition drop counted" 1 (Sim.Faults.drops f)

let test_network_partition_ignores_untagged () =
  (* Untagged endpoints ({!Sim.Network.unspecified}) belong to no group:
     a partition — even one with a [b = []] "everyone else" side — must
     never cut a message whose src or dst is untagged. *)
  let e, net, f = make_faulty_net () in
  Sim.Faults.partition f ~a:[ 1 ] ~b:[] ~from_ms:0.0 ~until_ms:infinity ();
  Alcotest.(check bool) "tagged -> untagged not cut" false
    (Sim.Faults.partitioned f ~src:1 ~dst:Sim.Network.unspecified);
  Alcotest.(check bool) "untagged -> tagged not cut" false
    (Sim.Faults.partitioned f ~src:Sim.Network.unspecified ~dst:1);
  let delivered = ref 0 in
  Sim.Network.send net ~size_bytes:10 (fun () -> incr delivered);
  Sim.Network.send net ~src:1 ~size_bytes:10 (fun () -> incr delivered);
  Sim.Network.send net ~dst:1 ~size_bytes:10 (fun () -> incr delivered);
  Sim.Engine.run e;
  Alcotest.(check int) "untagged and half-tagged messages flow" 3 !delivered

let test_network_asymmetric_partition () =
  let e, net, f = make_faulty_net () in
  Sim.Faults.partition f ~symmetric:false ~a:[ 1 ] ~b:[ 2 ] ~from_ms:0.0
    ~until_ms:infinity ();
  let forward = ref false and backward = ref false in
  Sim.Network.send net ~src:1 ~dst:2 ~size_bytes:10 (fun () -> forward := true);
  Sim.Network.send net ~src:2 ~dst:1 ~size_bytes:10 (fun () -> backward := true);
  Sim.Engine.run e;
  Alcotest.(check bool) "1 -> 2 cut" false !forward;
  Alcotest.(check bool) "2 -> 1 still flows" true !backward

let test_network_transfer_persists () =
  let e, net, f = make_faulty_net () in
  Sim.Faults.partition f ~a:[ 1 ] ~b:[] ~from_ms:0.0 ~until_ms:10.0 ();
  let done_at = ref nan in
  Sim.Process.spawn e (fun () ->
      Sim.Network.transfer net ~src:1 ~dst:2 ~size_bytes:10;
      done_at := Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check bool)
    (Printf.sprintf "completed only after heal (%.2f)" !done_at)
    true
    (!done_at >= 10.0 && !done_at < 13.0);
  Alcotest.(check bool) "retransmissions recorded" true
    (Sim.Network.retransmits net >= 5)

let test_network_transfer_bounded_gives_up () =
  let e, net, f = make_faulty_net () in
  Sim.Faults.partition f ~a:[ 1 ] ~b:[] ~from_ms:0.0 ~until_ms:infinity ();
  let result = ref (Ok ()) in
  Sim.Process.spawn e (fun () ->
      result := Sim.Network.transfer_bounded net ~src:1 ~dst:2 ~size_bytes:10
          ~max_tries:3);
  Sim.Engine.run e;
  Alcotest.(check bool) "gave up" true (!result = Error `Timeout);
  Alcotest.(check int) "three attempts offered" 3 (Sim.Network.messages_sent net)

let test_faults_determinism () =
  (* Same plan seed, same judged link sequence: identical verdicts. *)
  let run () =
    let e = Sim.Engine.create () in
    let f = Sim.Faults.create ~seed:11 e in
    Sim.Faults.set_default f
      (Sim.Faults.spec ~drop:0.2 ~duplicate:0.1 ~delay:0.2 ~delay_ms:3.0 ());
    List.init 200 (fun i ->
        match Sim.Faults.judge f ~src:(i mod 3) ~dst:((i + 1) mod 3) with
        | Sim.Faults.Deliver -> 0
        | Sim.Faults.Drop _ -> 1
        | Sim.Faults.Duplicate -> 2
        | Sim.Faults.Delay _ -> 3)
  in
  Alcotest.(check (list int)) "same verdict stream" (run ()) (run ())

let test_faults_clean_plan_draws_nothing () =
  (* A clean plan consumes no randomness and never perturbs delivery:
     the same network RNG stream with and without the plan attached
     yields identical delivery times. *)
  let run attach =
    let e = Sim.Engine.create () in
    let rng = Util.Rng.create 42 in
    let net = Sim.Network.create e ~rng ~base_ms:0.2 ~jitter_ms:0.4 ~bandwidth_mbps:80.0 in
    if attach then Sim.Network.set_faults net (Sim.Faults.create ~seed:123 e);
    let times = ref [] in
    for i = 1 to 50 do
      Sim.Network.send net ~src:(i mod 4) ~dst:((i + 1) mod 4) ~size_bytes:(i * 37)
        (fun () -> times := Sim.Engine.now e :: !times)
    done;
    Sim.Engine.run e;
    List.rev !times
  in
  Alcotest.(check (list (float 0.0))) "bit-identical delivery" (run false) (run true)

let test_faults_slowdown_windows () =
  let e = Sim.Engine.create () in
  let f = Sim.Faults.create e in
  Sim.Faults.slow f ~node:3 ~factor:4.0 ~from_ms:10.0 ~until_ms:20.0;
  Sim.Faults.slow f ~node:3 ~factor:2.0 ~from_ms:15.0 ~until_ms:25.0;
  let at t k =
    Sim.Process.spawn e (fun () ->
        Sim.Process.sleep e t;
        k (Sim.Faults.slowdown f ~node:3))
  in
  let s5 = ref 0.0 and s12 = ref 0.0 and s17 = ref 0.0 and s22 = ref 0.0 in
  at 5.0 (fun x -> s5 := x);
  at 12.0 (fun x -> s12 := x);
  at 17.0 (fun x -> s17 := x);
  at 22.0 (fun x -> s22 := x);
  Sim.Engine.run e;
  Alcotest.(check (float 0.0)) "outside windows" 1.0 !s5;
  Alcotest.(check (float 0.0)) "first window" 4.0 !s12;
  Alcotest.(check (float 0.0)) "overlap compounds" 8.0 !s17;
  Alcotest.(check (float 0.0)) "second window" 2.0 !s22;
  Alcotest.(check (float 0.0)) "other nodes unaffected" 1.0
    (Sim.Faults.slowdown f ~node:0)

let test_fork_join_waits_for_all () =
  let e = Sim.Engine.create () in
  let finished = ref [] in
  let joined_at = ref nan in
  Sim.Process.spawn e (fun () ->
      Sim.Fork.join e
        [
          (fun () -> Sim.Process.sleep e 5.0; finished := 5 :: !finished);
          (fun () -> Sim.Process.sleep e 1.0; finished := 1 :: !finished);
          (fun () -> Sim.Process.sleep e 3.0; finished := 3 :: !finished);
        ];
      joined_at := Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "children complete in time order" [ 1; 3; 5 ]
    (List.rev !finished);
  Alcotest.(check (float 1e-9)) "join completes at slowest child" 5.0 !joined_at

let test_fork_join_empty_and_singleton () =
  let e = Sim.Engine.create () in
  let ran = ref false in
  let finished_at = ref nan in
  Sim.Process.spawn e (fun () ->
      Sim.Fork.join e [];
      Sim.Fork.join e [ (fun () -> Sim.Process.sleep e 2.0; ran := true) ];
      finished_at := Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check bool) "singleton body ran" true !ran;
  Alcotest.(check (float 1e-9)) "empty is free, singleton inline" 2.0 !finished_at

let test_fork_join_resource_contention () =
  (* Four 1ms jobs through a 2-server resource: the join sees 2ms. *)
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create e ~servers:2 in
  let done_at = ref nan in
  Sim.Process.spawn e (fun () ->
      Sim.Fork.join e (List.init 4 (fun _ () -> Sim.Resource.use r ~duration:1.0));
      done_at := Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "two at a time" 2.0 !done_at

let test_process_exception_propagates () =
  let e = Sim.Engine.create () in
  Sim.Process.spawn e (fun () -> failwith "boom");
  Alcotest.check_raises "process exception escapes run" (Failure "boom") (fun () ->
      Sim.Engine.run e)

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "time ordering" `Quick test_engine_time_ordering;
        Alcotest.test_case "same-time FIFO" `Quick test_engine_same_time_fifo;
        Alcotest.test_case "run until" `Quick test_engine_until;
        Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
      ] );
    ( "sim.process",
      [
        Alcotest.test_case "sleep" `Quick test_process_sleep;
        Alcotest.test_case "exception propagates" `Quick test_process_exception_propagates;
      ] );
    ( "sim.mailbox",
      [
        Alcotest.test_case "blocking recv" `Quick test_mailbox_blocking_recv;
        Alcotest.test_case "fifo messages" `Quick test_mailbox_fifo_messages;
        Alcotest.test_case "multiple waiters" `Quick test_mailbox_multiple_waiters;
      ] );
    ( "sim.ivar",
      [
        Alcotest.test_case "fill wakes readers" `Quick test_ivar;
        Alcotest.test_case "read after fill" `Quick test_ivar_read_after_fill;
      ] );
    ( "sim.resource",
      [
        Alcotest.test_case "mutual exclusion" `Quick test_resource_mutual_exclusion;
        Alcotest.test_case "parallel servers" `Quick test_resource_parallel_servers;
        Alcotest.test_case "no handoff steal" `Quick test_resource_no_handoff_steal;
        Alcotest.test_case "utilization" `Quick test_resource_utilization;
        Alcotest.test_case "queue length" `Quick test_resource_queue_length;
        Alcotest.test_case "reset utilization window" `Quick
          test_resource_reset_utilization_window;
        Alcotest.test_case "multi-server FIFO wakeup" `Quick
          test_resource_multi_server_fifo_wakeup;
      ] );
    ( "sim.condition",
      [
        Alcotest.test_case "await predicate" `Quick test_condition_await;
        Alcotest.test_case "immediate when true" `Quick test_condition_immediate;
      ] );
    ( "sim.fork",
      [
        Alcotest.test_case "join waits for all" `Quick test_fork_join_waits_for_all;
        Alcotest.test_case "empty and singleton" `Quick test_fork_join_empty_and_singleton;
        Alcotest.test_case "resource contention" `Quick test_fork_join_resource_contention;
      ] );
    ( "sim.network",
      [
        Alcotest.test_case "latency model" `Quick test_network_latency_positive;
        Alcotest.test_case "latency formula" `Quick test_network_latency_formula;
        Alcotest.test_case "determinism + accounting" `Quick test_network_determinism;
        Alcotest.test_case "drop path" `Quick test_network_drop_path;
        Alcotest.test_case "duplicate path" `Quick test_network_duplicate_path;
        Alcotest.test_case "partition window" `Quick test_network_partition_window;
        Alcotest.test_case "asymmetric partition" `Quick test_network_asymmetric_partition;
        Alcotest.test_case "partition ignores untagged" `Quick
          test_network_partition_ignores_untagged;
        Alcotest.test_case "transfer persists" `Quick test_network_transfer_persists;
        Alcotest.test_case "transfer_bounded gives up" `Quick
          test_network_transfer_bounded_gives_up;
      ] );
    ( "sim.faults",
      [
        Alcotest.test_case "verdict determinism" `Quick test_faults_determinism;
        Alcotest.test_case "clean plan draws nothing" `Quick
          test_faults_clean_plan_draws_nothing;
        Alcotest.test_case "slowdown windows" `Quick test_faults_slowdown_windows;
      ] );
  ]

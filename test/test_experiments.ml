(* Tests for the experiments library: Table I exactness, report and plot
   rendering, and a smoke run of the shared experiment driver. *)

let test_table1_exact () =
  (* The paper's Table I, row by row. *)
  let rows = Experiments.Table1.rows () in
  let expect =
    [
      ("T1", 1, 1, 0, 0);
      ("T2", 2, 1, 2, 2);
      ("T3", 3, 1, 3, 2);
      ("T4", 4, 1, 3, 4);
      ("T5", 5, 1, 5, 5);
      ("T6", 6, 6, 5, 5);
    ]
  in
  List.iter2
    (fun row (txn, vs, va, vb, vc) ->
      Alcotest.(check string) "txn" txn row.Experiments.Table1.txn;
      Alcotest.(check int) (txn ^ " V_system") vs row.Experiments.Table1.v_system;
      Alcotest.(check int) (txn ^ " V_A") va row.Experiments.Table1.v_a;
      Alcotest.(check int) (txn ^ " V_B") vb row.Experiments.Table1.v_b;
      Alcotest.(check int) (txn ^ " V_C") vc row.Experiments.Table1.v_c)
    rows expect

let test_table1_start_versions () =
  Alcotest.(check int) "fine-grained start for {A} after T5" 1
    (Experiments.Table1.fine_start_for_a ());
  Alcotest.(check int) "coarse-grained start after T5" 5
    (Experiments.Table1.coarse_start_after_t5 ())

let test_report_table () =
  let s =
    Experiments.Report.table ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yyy"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has header + rule + rows" true (List.length lines >= 4);
  (* All non-empty lines are equally wide. *)
  let widths =
    List.filter_map
      (fun l -> if String.length l = 0 then None else Some (String.length l))
      lines
  in
  Alcotest.(check bool) "aligned columns" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_report_fmt () =
  Alcotest.(check string) "large" "123" (Experiments.Report.fmt_f 123.4);
  Alcotest.(check string) "medium" "12.3" (Experiments.Report.fmt_f 12.34);
  Alcotest.(check string) "small" "1.23" (Experiments.Report.fmt_f 1.234)

let test_plot_renders () =
  let s =
    Experiments.Plot.chart ~width:20 ~height:6
      ~series:[ ("up", [ (0.0, 0.0); (1.0, 1.0); (2.0, 2.0) ]) ]
      ()
  in
  Alcotest.(check bool) "chart non-empty" true (String.length s > 100);
  Alcotest.(check bool) "marker present" true (String.contains s '*');
  Alcotest.(check bool) "legend present" true
    (String.length s >= 4
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> l = "  *=up") lines)

let test_plot_empty () =
  Alcotest.(check string) "no data placeholder" "(no data)\n"
    (Experiments.Plot.chart ~series:[ ("e", []) ] ())

let test_runner_smoke () =
  (* A miniature end-to-end experiment through the shared driver. *)
  let params = { Workload.Microbench.tables = 4; rows = 200; update_types = 1 } in
  let config =
    { Core.Config.default with replicas = 2; seed = 1; gc_interval_ms = 0.0 }
  in
  let s =
    Experiments.Runner.run_micro ~config ~mode:Core.Consistency.Coarse ~params ~clients:8
      ~warmup_ms:200.0 ~measure_ms:1_000.0 ()
  in
  Alcotest.(check bool) "throughput positive" true (s.Experiments.Runner.tps > 100.0);
  Alcotest.(check bool) "response positive" true (s.Experiments.Runner.response_ms > 0.0);
  Alcotest.(check int) "clients recorded" 8 s.Experiments.Runner.clients;
  Alcotest.(check int) "replicas recorded" 2 s.Experiments.Runner.replicas

let test_ablation_rows_shape () =
  let rows =
    [
      { Experiments.Ablation.label = "x"; cells = [ ("TPS", 1.0); ("ms", 2.0) ] };
      { Experiments.Ablation.label = "y"; cells = [ ("TPS", 3.0); ("ms", 4.0) ] };
    ]
  in
  let s = Experiments.Ablation.render ~title:"t" rows in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec probe i = i + nl <= sl && (String.sub s i nl = needle || probe (i + 1)) in
    probe 0
  in
  Alcotest.(check bool) "contains labels" true
    (List.for_all contains [ "x"; "y"; "TPS" ])

let test_replicate_aggregates () =
  (* Aggregate across seeds; the paper's methodology (10 runs, <5%
     deviation). Use 3 short runs for test time. *)
  let params = { Workload.Microbench.tables = 4; rows = 500; update_types = 1 } in
  let agg =
    Experiments.Runner.replicate ~runs:3 ~base_seed:100 (fun ~seed ->
        let config =
          {
            Core.Config.default with
            replicas = 2;
            seed;
            gc_interval_ms = 0.0;
            (* Transient slowdowns dominate variance in short windows;
               the methodology check uses a quiet cluster. *)
            hiccup_interval_ms = 0.0;
          }
        in
        Experiments.Runner.run_micro ~config ~mode:Core.Consistency.Coarse ~params
          ~clients:8 ~warmup_ms:300.0 ~measure_ms:2_000.0 ())
  in
  Alcotest.(check int) "runs" 3 agg.Experiments.Runner.runs;
  Alcotest.(check bool) "mean tps positive" true (agg.Experiments.Runner.mean.tps > 100.0);
  Alcotest.(check bool)
    (Printf.sprintf "deviation below 5%% (got %.2f%%)"
       (100.0 *. agg.Experiments.Runner.tps_rel_dev))
    true
    (agg.Experiments.Runner.tps_rel_dev < 0.05)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* --- Report sparklines --- *)

let test_sparkline () =
  Alcotest.(check string) "empty series" "" (Experiments.Report.sparkline []);
  let s = Experiments.Report.sparkline [ 0.0; 4.0; 8.0 ] in
  Alcotest.(check int) "one char per value" 3 (String.length s);
  Alcotest.(check char) "zero renders blank" ' ' s.[0];
  Alcotest.(check char) "max renders the top level" '@' s.[2];
  (* A tiny nonzero value must stay visible. *)
  let t = Experiments.Report.sparkline [ 0.001; 8.0 ] in
  Alcotest.(check bool) "nonzero never blank" true (t.[0] <> ' ')

(* --- Bench baseline + regression gate --- *)

let bench_point mode tps =
  {
    Experiments.Bench.mode;
    committed = int_of_float (tps *. 3.0);
    aborted = 10;
    tps;
    p50_ms = 2.0;
    p99_ms = 8.0;
    cert_decisions_per_sec = tps /. 4.0;
  }

let bench_run () =
  {
    Experiments.Bench.schema_version = Experiments.Bench.schema_version;
    seed = 42;
    replicas = 4;
    clients = 40;
    warmup_ms = 500.0;
    measure_ms = 3_000.0;
    quick = false;
    points =
      List.map
        (fun (m, tps) -> bench_point m tps)
        (List.combine Core.Consistency.all [ 9_000.0; 12_000.0; 11_500.0; 12_200.0 ]);
    sim_events = 2_000_000;
    wall_s = 2.5;
    sim_events_per_sec = 800_000.0;
  }

let test_bench_gate_passes_identical () =
  let r = bench_run () in
  Alcotest.(check (list string)) "identical runs pass the gate" []
    (Experiments.Bench.compare_runs ~baseline:r ~current:r ~threshold:0.15)

let test_bench_gate_flags_injected_regression () =
  (* The acceptance scenario: inflate the baseline TPS by 25% so the
     current run reads as a 20% throughput regression in every mode —
     the 15% gate must flag all four. *)
  let current = bench_run () in
  let baseline =
    {
      current with
      Experiments.Bench.points =
        List.map
          (fun (p : Experiments.Bench.point) ->
            { p with Experiments.Bench.tps = p.tps *. 1.25 })
          current.Experiments.Bench.points;
    }
  in
  let problems =
    Experiments.Bench.compare_runs ~baseline ~current ~threshold:0.15
  in
  Alcotest.(check int) "one finding per mode" 4 (List.length problems);
  List.iter
    (fun msg ->
      Alcotest.(check bool)
        (Printf.sprintf "finding names the metric: %s" msg)
        true
        (contains_substring msg "TPS regressed 20.0%"))
    problems

let test_bench_gate_flags_p99_and_shape () =
  let base = bench_run () in
  (* p99 is a higher-is-worse metric. *)
  let slow =
    {
      base with
      Experiments.Bench.points =
        List.map
          (fun (p : Experiments.Bench.point) ->
            { p with Experiments.Bench.p99_ms = p.p99_ms *. 1.5 })
          base.Experiments.Bench.points;
    }
  in
  Alcotest.(check int) "p99 regressions flagged" 4
    (List.length (Experiments.Bench.compare_runs ~baseline:base ~current:slow ~threshold:0.15));
  (* Parameter drift is a gate failure even with identical numbers. *)
  let drifted = { base with Experiments.Bench.seed = 43 } in
  Alcotest.(check bool) "seed drift flagged" true
    (Experiments.Bench.compare_runs ~baseline:base ~current:drifted ~threshold:0.15 <> []);
  let missing =
    { base with Experiments.Bench.points = List.tl base.Experiments.Bench.points }
  in
  Alcotest.(check bool) "missing mode flagged" true
    (List.exists
       (fun m -> contains_substring m "missing")
       (Experiments.Bench.compare_runs ~baseline:base ~current:missing ~threshold:0.15))

let test_bench_json_roundtrip () =
  let r = bench_run () in
  match Experiments.Bench.of_json (Experiments.Bench.to_json r) with
  | Ok r' -> Alcotest.(check bool) "print/parse round-trips" true (r' = r)
  | Error e -> Alcotest.failf "bench json did not parse back: %s" e

let test_bench_quick_sweep () =
  (* One real (quick) sweep end to end: all four modes produce traffic,
     the certifier is exercised, and the run passes its own gate. *)
  let r = Experiments.Bench.run ~quick:true () in
  Alcotest.(check int) "four configurations" 4 (List.length r.Experiments.Bench.points);
  List.iter
    (fun (p : Experiments.Bench.point) ->
      let name = Core.Consistency.to_string p.Experiments.Bench.mode in
      Alcotest.(check bool) (name ^ " commits flowed") true (p.Experiments.Bench.tps > 100.0);
      Alcotest.(check bool)
        (name ^ " certifier decided")
        true
        (p.Experiments.Bench.cert_decisions_per_sec > 0.0);
      Alcotest.(check bool) (name ^ " p99 >= p50") true
        (p.Experiments.Bench.p99_ms >= p.Experiments.Bench.p50_ms))
    r.Experiments.Bench.points;
  Alcotest.(check (list string)) "self-comparison passes" []
    (Experiments.Bench.compare_runs ~baseline:r ~current:r ~threshold:0.15);
  Alcotest.(check bool) "render mentions the sweep" true
    (contains_substring (Experiments.Bench.render r) "bench sweep")

(* --- Chaos health-timeline artifact --- *)

let test_chaos_health_json_shape () =
  let r =
    Experiments.Chaos.soak ~mode:Core.Consistency.Eager ~plan:Experiments.Chaos.Clean
      ~seed:1 ~duration_ms:1_000.0 ()
  in
  let doc =
    match
      Obs.Json.parse (Obs.Json.to_string (Experiments.Chaos.health_json [ r ]))
    with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "health artifact is not valid JSON: %s" e
  in
  Alcotest.(check (option (float 1e-9))) "versioned envelope" (Some 1.0)
    (Option.bind (Obs.Json.member "schema_version" doc) Obs.Json.to_float);
  match Option.bind (Obs.Json.member "runs" doc) Obs.Json.to_list with
  | Some [ run ] ->
    let str name = Option.bind (Obs.Json.member name run) Obs.Json.to_str in
    let num name = Option.bind (Obs.Json.member name run) Obs.Json.to_float in
    Alcotest.(check (option string)) "mode" (Some "eager") (str "mode");
    Alcotest.(check (option string)) "plan" (Some "clean") (str "plan");
    Alcotest.(check bool) "verdict serialized" true
      (Obs.Json.member "ok" run = Some (Obs.Json.Bool true));
    Alcotest.(check bool) "digest present" true (str "digest" <> None);
    Alcotest.(check bool) "drain time present" true
      (match num "wedge_drain_ms" with Some d -> d >= 0.0 | None -> false);
    Alcotest.(check bool) "fault counters nested" true
      (match Obs.Json.member "faults" run with
      | Some f -> Obs.Json.member "drops" f <> None
      | None -> false)
  | Some rs -> Alcotest.failf "expected 1 run object, got %d" (List.length rs)
  | None -> Alcotest.fail "no runs array"

(* --- Domain-pool run driver ------------------------------------------- *)

let test_map_jobs_order_and_results () =
  let items = List.init 23 Fun.id in
  let serial = List.map (fun i -> i * i) items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        serial
        (Experiments.Runner.map_jobs ~jobs (fun i -> i * i) items))
    [ 1; 2; 4; 8 ]

let test_parallel_chaos_matrix_identical () =
  (* The tentpole's contract: every soak is one self-contained
     simulation, so the domain pool may only change wall-clock — the
     per-run runlog digests and the matrix result ordering must be
     bit-identical between [--jobs 1] and [--jobs 4]. *)
  let seeds = [ 3; 4 ] in
  let modes = [ Core.Consistency.Coarse; Core.Consistency.Session ] in
  let run jobs =
    Experiments.Chaos.soak_matrix ~modes ~plans:[ Experiments.Chaos.Mixed ] ~jobs ~seeds
      ~duration_ms:1_500.0 ()
  in
  let serial = run 1 and parallel = run 4 in
  Alcotest.(check int) "same matrix size" (List.length serial) (List.length parallel);
  List.iter2
    (fun (a : Experiments.Chaos.result) (b : Experiments.Chaos.result) ->
      Alcotest.(check string) "seed matrix order preserved"
        (Printf.sprintf "%s/%d" (Core.Consistency.to_string a.mode) a.seed)
        (Printf.sprintf "%s/%d" (Core.Consistency.to_string b.mode) b.seed);
      Alcotest.(check string)
        (Printf.sprintf "digest identical for %s/%d" (Core.Consistency.to_string a.mode)
           a.seed)
        a.digest b.digest;
      Alcotest.(check int) "commit counts identical" a.committed b.committed)
    serial parallel

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "Table I rows exact" `Quick test_table1_exact;
        Alcotest.test_case "Table I start versions" `Quick test_table1_start_versions;
        Alcotest.test_case "report table" `Quick test_report_table;
        Alcotest.test_case "report fmt" `Quick test_report_fmt;
        Alcotest.test_case "plot renders" `Quick test_plot_renders;
        Alcotest.test_case "plot empty" `Quick test_plot_empty;
        Alcotest.test_case "runner smoke" `Quick test_runner_smoke;
        Alcotest.test_case "replicate aggregates" `Quick test_replicate_aggregates;
        Alcotest.test_case "ablation render" `Quick test_ablation_rows_shape;
        Alcotest.test_case "sparkline" `Quick test_sparkline;
        Alcotest.test_case "map_jobs order across pool sizes" `Quick
          test_map_jobs_order_and_results;
        Alcotest.test_case "chaos matrix digests identical at -j 4" `Quick
          test_parallel_chaos_matrix_identical;
      ] );
    ( "experiments.bench",
      [
        Alcotest.test_case "gate passes identical runs" `Quick
          test_bench_gate_passes_identical;
        Alcotest.test_case "gate flags 20% TPS regression" `Quick
          test_bench_gate_flags_injected_regression;
        Alcotest.test_case "gate flags p99 and shape drift" `Quick
          test_bench_gate_flags_p99_and_shape;
        Alcotest.test_case "baseline json round-trips" `Quick test_bench_json_roundtrip;
        Alcotest.test_case "quick sweep end to end" `Quick test_bench_quick_sweep;
        Alcotest.test_case "chaos health artifact shape" `Quick
          test_chaos_health_json_shape;
      ] );
  ]

(* The consensus-grade control plane (docs/PROTOCOL.md, "Control
   plane"): quorum-intersecting certifier elections, the partitioned-
   voter lease, and load-balancer failover.

   Everything here runs end to end through [Core.Cluster] under the
   hardened protocol with a seeded fault plan, so elections and
   takeovers are driven by the real failure detectors — the tests only
   script the faults, never the role changes. *)

let params = { Workload.Microbench.tables = 4; rows = 100; update_types = 4 }

let base_config =
  Core.Config.hardened
    {
      Core.Config.default with
      replicas = 3;
      seed = 17;
      record_log = true;
      gc_interval_ms = 0.0;
      hiccup_interval_ms = 0.0;
    }

let make_cluster ?faults ~config mode =
  Core.Cluster.create ~config ?faults ~mode
    ~schemas:(Workload.Microbench.schemas params)
    ~load:(Workload.Microbench.load params)
    ()

let check_empty name violations =
  match violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d violation(s), first: %s" name (List.length violations)
      (Format.asprintf "%a" Check.Runlog.pp_violation v)

let updates log = List.filter (fun r -> r.Check.Runlog.commit_version <> None) log

let commit_version r =
  match r.Check.Runlog.commit_version with Some v -> v | None -> 0

(* --- Configuration validation (CLI error path) ----------------------- *)

let test_config_validation () =
  let ok c =
    match Core.Config.validate c with
    | Ok () -> ()
    | Error e -> Alcotest.failf "valid config rejected: %s" e
  in
  let rejected what c =
    match Core.Config.validate c with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error e -> Alcotest.(check bool) (what ^ " has a reason") true (String.length e > 0)
  in
  ok Core.Config.default;
  ok { base_config with Core.Config.certifier_standbys = 2; standby_ack_quorum = 1 };
  ok { base_config with Core.Config.lb_standby = true; voter_lease_ms = 100.0 };
  rejected "zero replicas" { base_config with Core.Config.replicas = 0 };
  rejected "negative standby count"
    { base_config with Core.Config.certifier_standbys = -1 };
  rejected "quorum above standby count"
    { base_config with Core.Config.certifier_standbys = 1; standby_ack_quorum = 2 };
  rejected "zero election timeout"
    { base_config with Core.Config.certifier_standbys = 2; cert_election_timeout_ms = 0.0 };
  rejected "negative voter lease" { base_config with Core.Config.voter_lease_ms = -1.0 };
  rejected "zero LB push interval"
    { base_config with Core.Config.lb_standby = true; lb_repl_ms = 0.0 };
  rejected "LB suspicion window not above push interval"
    { base_config with Core.Config.lb_standby = true; lb_repl_ms = 5.0;
      lb_suspect_after_ms = 5.0 };
  (* The cluster constructor refuses to build a doomed cluster. *)
  match
    make_cluster
      ~config:{ base_config with Core.Config.certifier_standbys = 1; standby_ack_quorum = 2 }
      Core.Consistency.Coarse
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Cluster.create accepted an invalid config"

(* --- Stale-standby election regression ------------------------------- *)

(* The pre-election promotion rule let a suspecting standby promote
   itself after a rank stagger, with no one checking its log. Under
   [standby_ack_quorum = 1] a standby that was partitioned away while
   the other one acked releases is missing released decisions; the old
   rule would hand it the primary role as soon as the caught-up standby
   was also unreachable, and its epoch base — its own short log head —
   would re-assign released commit versions (split brain). The election
   makes that impossible: the stale standby's rounds cannot reach a
   quorum-intersecting majority, so the cluster stays headless until
   the caught-up standby is reachable again and wins. *)
let test_stale_standby_cannot_win () =
  let config =
    {
      base_config with
      Core.Config.seed = 31;
      certifier_standbys = 2;
      standby_ack_quorum = 1;
    }
  in
  let lagger = Core.Config.node_cert_standby 2 in
  let acker = Core.Config.node_cert_standby 1 in
  let faults engine =
    let f = Sim.Faults.create ~seed:7 engine in
    (* Standby 2 lags: cut off while standby 1 alone satisfies the
       ack quorum, so released versions run far past its log head. *)
    Sim.Faults.partition f ~a:[ lagger ] ~b:[] ~from_ms:150.0 ~until_ms:600.0 ();
    (* Then the caught-up standby disappears too, just before the
       primary dies: the stale standby is the only reachable member. *)
    Sim.Faults.partition f ~a:[ acker ] ~b:[] ~from_ms:500.0 ~until_ms:900.0 ();
    f
  in
  let cluster = make_cluster ~faults ~config Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  let certifier = Core.Cluster.certifier cluster in
  let promotions_while_headless = ref (-1) in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 520.0;
      Core.Cluster.crash_certifier cluster;
      (* Window where only the stale standby can campaign: it must keep
         losing (self-vote < quorum-intersecting majority). *)
      Sim.Process.sleep engine 350.0;
      promotions_while_headless := Core.Certifier.promotions certifier;
      Sim.Process.sleep engine 330.0;
      Core.Cluster.revive_certifier_node cluster 0);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_400.0;
  Alcotest.(check int) "no promotion while only the stale standby was reachable" 0
    !promotions_while_headless;
  Alcotest.(check bool) "vote rounds were attempted in the headless window" true
    (Core.Certifier.elections certifier > Core.Certifier.promotions certifier);
  Alcotest.(check bool) "the heal elected a primary" true
    (Core.Certifier.promotions certifier >= 1);
  Alcotest.(check bool) "the stale standby did not win" true
    (Core.Certifier.primary_index certifier <> 2);
  let log = Core.Cluster.records cluster in
  (* The promoted log covered every version released before the crash:
     nothing a client saw committed can be re-assigned. *)
  let released_before_crash =
    List.fold_left
      (fun acc r ->
        if r.Check.Runlog.ack_time < 620.0 then max acc (commit_version r) else acc)
      0 (updates log)
  in
  Alcotest.(check bool) "epoch base covers every released version" true
    (Core.Certifier.epoch_base certifier >= released_before_crash);
  check_empty "election_safety" (Check.Runlog.election_safety log);
  check_empty "epoch_fencing" (Check.Runlog.epoch_fencing log);
  check_empty "first_committer_wins" (Check.Runlog.first_committer_wins log);
  check_empty "strong_consistency" (Check.Runlog.strong_consistency log)

(* --- Partitioned-voter lease ----------------------------------------- *)

(* Under [standby_ack_quorum = all] a partitioned-but-alive voter
   blocks every release. The voter lease must demote it within one
   lease window (checked every lease/4), so the commit stall is bounded
   by ~1.25 windows plus delivery latency — asserted below as: no
   update-ack gap across the partitioned window ever exceeds two
   windows. *)
let lease_ms = 100.0

let lease_faults engine =
  let f = Sim.Faults.create ~seed:13 engine in
  Sim.Faults.partition f
    ~a:[ Core.Config.node_cert_standby 1 ]
    ~b:[] ~from_ms:400.0 ~until_ms:1_300.0 ();
  f

let lease_config ~lease =
  {
    base_config with
    Core.Config.seed = 23;
    certifier_standbys = 2;
    standby_ack_quorum = 0;
    (* all *)
    voter_lease_ms = lease;
  }

let test_lease_bounds_quorum_stall () =
  let cluster =
    make_cluster ~faults:lease_faults ~config:(lease_config ~lease:lease_ms)
      Core.Consistency.Coarse
  in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:1_800.0;
  let certifier = Core.Cluster.certifier cluster in
  Alcotest.(check bool) "the silent voter's lease expired" true
    (Core.Certifier.lease_expiries certifier >= 1);
  Alcotest.(check int) "no failover was needed" 0 (Core.Certifier.promotions certifier);
  let acks =
    List.sort compare (List.map (fun r -> r.Check.Runlog.ack_time) (updates (Core.Cluster.records cluster)))
  in
  (* Commits resumed well inside the partition window... *)
  Alcotest.(check bool) "commits flowed while the voter was partitioned" true
    (List.exists (fun t -> t > 700.0 && t < 1_250.0) acks);
  (* ...and the stall never exceeded two lease windows. *)
  let max_gap =
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (max acc (b -. a)) rest
      | _ -> acc
    in
    go 0.0 (List.filter (fun t -> t > 300.0 && t < 1_250.0) acks)
  in
  Alcotest.(check bool)
    (Printf.sprintf "max update-ack gap %.0fms within two lease windows" max_gap)
    true
    (max_gap < 2.0 *. lease_ms);
  check_empty "strong_consistency" (Check.Runlog.strong_consistency (Core.Cluster.records cluster))

let test_no_lease_stalls_until_heal () =
  (* Control arm: with the lease off, the same partition freezes
     quorum=all releases for its whole duration. This is the stall the
     lease exists to bound. *)
  let cluster =
    make_cluster ~faults:lease_faults ~config:(lease_config ~lease:0.0)
      Core.Consistency.Coarse
  in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:1_800.0;
  let certifier = Core.Cluster.certifier cluster in
  Alcotest.(check int) "no lease, no expiry" 0 (Core.Certifier.lease_expiries certifier);
  let acks = List.map (fun r -> r.Check.Runlog.ack_time) (updates (Core.Cluster.records cluster)) in
  Alcotest.(check bool) "updates stalled across the partition" true
    (not (List.exists (fun t -> t > 600.0 && t < 1_250.0) acks));
  Alcotest.(check bool) "updates resumed after the heal" true
    (List.exists (fun t -> t > 1_350.0) acks)

(* --- LB takeover ------------------------------------------------------ *)

let lb_config =
  {
    base_config with
    Core.Config.seed = 41;
    lb_standby = true;
  }

let test_lb_takeover_with_inflight_sessions () =
  (* Crash the active LB under a full closed-loop session load: the
     standby must depose it, reconstruct conservative floors, and every
     session contract must hold across the routing-epoch boundary. *)
  let cluster = make_cluster ~config:lb_config Core.Consistency.Session in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:12 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 600.0;
      Core.Cluster.crash_lb cluster (Core.Cluster.lb_active_index cluster));
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_500.0;
  Alcotest.(check int) "exactly one takeover" 1 (Core.Cluster.lb_takeovers cluster);
  Alcotest.(check int) "routing epoch bumped" 1 (Core.Cluster.lb_epoch cluster);
  Alcotest.(check int) "the standby holds the role" 1 (Core.Cluster.lb_active_index cluster);
  let log = Core.Cluster.records cluster in
  let after = List.filter (fun r -> r.Check.Runlog.lb_epoch = 1) log in
  Alcotest.(check bool) "commits resumed under the new LB" true
    (List.length after > 50);
  Alcotest.(check bool) "commits recorded under the old LB too" true
    (List.exists (fun r -> r.Check.Runlog.lb_epoch = 0) log);
  check_empty "session_consistency" (Check.Runlog.session_consistency log);
  check_empty "monotone_session_snapshots" (Check.Runlog.monotone_session_snapshots log);
  check_empty "first_committer_wins" (Check.Runlog.first_committer_wins log);
  check_empty "lb_floor_preservation" (Check.Runlog.lb_floor_preservation log);
  check_empty "election_safety" (Check.Runlog.election_safety log)

let test_lb_takeover_during_certifier_failover () =
  (* Double failure: the cluster loses its router and its certifier
     primary in the same window, recovers both by itself, and the
     history stays strongly consistent. *)
  let config =
    { lb_config with Core.Config.seed = 43; certifier_standbys = 2 }
  in
  let cluster = make_cluster ~config Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  let certifier = Core.Cluster.certifier cluster in
  Core.Client.spawn_many cluster ~n:12 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 600.0;
      Core.Cluster.crash_lb cluster (Core.Cluster.lb_active_index cluster);
      Sim.Process.sleep engine 20.0;
      Core.Cluster.crash_certifier cluster;
      Sim.Process.sleep engine 700.0;
      Core.Cluster.revive_certifier_node cluster 0);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  Alcotest.(check bool) "LB takeover happened" true (Core.Cluster.lb_takeovers cluster >= 1);
  Alcotest.(check bool) "a standby was elected" true
    (Core.Certifier.promotions certifier >= 1);
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "commits resumed under both new regimes" true
    (List.exists
       (fun r -> r.Check.Runlog.lb_epoch >= 1 && r.Check.Runlog.epoch >= 1)
       log);
  check_empty "strong_consistency" (Check.Runlog.strong_consistency log);
  check_empty "first_committer_wins" (Check.Runlog.first_committer_wins log);
  check_empty "epoch_fencing" (Check.Runlog.epoch_fencing log);
  check_empty "election_safety" (Check.Runlog.election_safety log);
  check_empty "lb_floor_preservation" (Check.Runlog.lb_floor_preservation log)

let test_deposed_lb_is_fenced () =
  (* A recovered ex-active that still believes it holds the role must
     be fenced by the successor's epoch and stand down as the standby —
     no routing flap, no second takeover. *)
  let cluster =
    make_cluster ~config:{ lb_config with Core.Config.seed = 47 } Core.Consistency.Coarse
  in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      Core.Cluster.crash_lb cluster 0;
      Sim.Process.sleep engine 300.0;
      Core.Cluster.recover_lb cluster 0);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_000.0;
  Alcotest.(check int) "one takeover, no flap back" 1 (Core.Cluster.lb_takeovers cluster);
  Alcotest.(check int) "routing epoch bumped once" 1 (Core.Cluster.lb_epoch cluster);
  Alcotest.(check int) "the successor kept the role" 1 (Core.Cluster.lb_active_index cluster);
  Alcotest.(check bool) "the deposed instance was fenced" true
    (Core.Cluster.lb_fenced cluster >= 1);
  Alcotest.(check bool) "the deposed instance is alive (as standby)" true
    (not (Core.Cluster.lb_is_crashed cluster 0));
  let log = Core.Cluster.records cluster in
  check_empty "strong_consistency" (Check.Runlog.strong_consistency log);
  check_empty "election_safety" (Check.Runlog.election_safety log)

let test_tier_floors_survive_takeover () =
  (* Tiered reads across a takeover: the reconstructed conservative
     floors must keep bounded-staleness and causal read-your-writes
     intact on both sides of the routing-epoch boundary. *)
  let config =
    { lb_config with Core.Config.seed = 53; read_tiers = true }
  in
  let cluster = make_cluster ~config Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  (* Same schema, but only half the transaction types write — the rest
     are tiered reads. *)
  Core.Client.spawn_many cluster ~n:16 ~first_sid:0
    (Workload.Microbench.tiered_workload { params with Workload.Microbench.update_types = 2 });
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 700.0;
      Core.Cluster.crash_lb cluster (Core.Cluster.lb_active_index cluster));
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_500.0;
  Alcotest.(check int) "takeover happened" 1 (Core.Cluster.lb_takeovers cluster);
  let log = Core.Cluster.records cluster in
  let tiered e =
    List.exists
      (fun r -> r.Check.Runlog.lb_epoch = e && r.Check.Runlog.tier <> Check.Runlog.Strong)
      log
  in
  Alcotest.(check bool) "tiered reads before the takeover" true (tiered 0);
  Alcotest.(check bool) "tiered reads after the takeover" true (tiered 1);
  check_empty "tier_bounded_staleness" (Check.Runlog.tier_bounded_staleness log);
  check_empty "tier_causal_ryw" (Check.Runlog.tier_causal_ryw log);
  check_empty "tier_monotone_reads" (Check.Runlog.tier_monotone_reads log);
  check_empty "lb_floor_preservation" (Check.Runlog.lb_floor_preservation log);
  check_empty "first_committer_wins" (Check.Runlog.first_committer_wins log)

let suites =
  [
    ( "core.controlplane",
      [
        Alcotest.test_case "config validation rejects contradictions" `Quick
          test_config_validation;
        Alcotest.test_case "stale standby cannot win an election" `Quick
          test_stale_standby_cannot_win;
        Alcotest.test_case "voter lease bounds the quorum=all stall" `Quick
          test_lease_bounds_quorum_stall;
        Alcotest.test_case "no lease: quorum=all stalls until heal" `Quick
          test_no_lease_stalls_until_heal;
        Alcotest.test_case "LB takeover with in-flight sessions" `Quick
          test_lb_takeover_with_inflight_sessions;
        Alcotest.test_case "LB takeover during certifier failover" `Quick
          test_lb_takeover_during_certifier_failover;
        Alcotest.test_case "deposed LB is fenced and stands down" `Quick
          test_deposed_lb_is_fenced;
        Alcotest.test_case "tier floors survive a takeover" `Quick
          test_tier_floors_survive_takeover;
      ] );
  ]

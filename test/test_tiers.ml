(* Mixed-consistency read tiers (docs/CONSISTENCY.md): tier parsing,
   the load balancer's staleness-aware routing, session-floor edge
   cases, and end-to-end tier-contract validation. *)

let micro_params = { Workload.Microbench.tables = 4; rows = 100; update_types = 2 }

let tier_config =
  {
    Core.Config.default with
    replicas = 3;
    record_log = true;
    read_tiers = true;
    seed = 11;
    gc_interval_ms = 0.0;
    hiccup_interval_ms = 0.0;
  }

let make_cluster ?(config = tier_config) mode =
  Core.Cluster.create ~config ~mode
    ~schemas:(Workload.Microbench.schemas micro_params)
    ~load:(Workload.Microbench.load micro_params)
    ()

let read_req ?tier table key =
  Core.Transaction.make ~profile:"read" ?tier
    [ Storage.Query.Get { table; key = [| Storage.Value.Int key |] } ]

let update_req ?tier table key =
  Core.Transaction.make ~profile:"upd" ?tier
    [
      Storage.Query.Update_key
        {
          table;
          key = [| Storage.Value.Int key |];
          set = [ ("val", Storage.Expr.(Col 1 + i 1)) ];
        };
    ]

(* --- tier parsing ---------------------------------------------------- *)

let test_tier_string_roundtrip () =
  let roundtrip tier =
    let s = Core.Consistency.tier_to_string tier in
    match Core.Consistency.tier_of_string s with
    | Ok tier' -> Alcotest.(check string) ("roundtrip " ^ s) s
                    (Core.Consistency.tier_to_string tier')
    | Error e -> Alcotest.failf "cannot parse %S back: %s" s e
  in
  List.iter roundtrip
    [
      Core.Consistency.Strong;
      Core.Consistency.Causal;
      Core.Consistency.Eventual;
      Core.Consistency.Bounded_staleness { versions = Some 8; ms = None };
      Core.Consistency.Bounded_staleness { versions = None; ms = Some 50.0 };
      Core.Consistency.Bounded_staleness { versions = Some 3; ms = Some 12.5 };
    ];
  (match Core.Consistency.tier_of_string "bounded:" with
  | Ok _ -> Alcotest.fail "bounded with no bound should not parse"
  | Error _ -> ());
  match Core.Consistency.tier_of_string "snapshot" with
  | Ok _ -> Alcotest.fail "unknown tier should not parse"
  | Error _ -> ()

let test_tier_slugs () =
  Alcotest.(check (list string))
    "slug order" [ "strong"; "bounded"; "causal"; "eventual" ]
    Core.Consistency.all_tier_slugs;
  Alcotest.(check string) "bounded slug collapses bounds" "bounded"
    (Core.Consistency.tier_slug
       (Core.Consistency.Bounded_staleness { versions = Some 4; ms = Some 9.0 }))

(* --- admission ------------------------------------------------------- *)

let test_tiered_update_rejected () =
  Alcotest.(check bool) "strong update admissible" true
    (Core.Transaction.tier_violation (update_req "t00" 1) = None);
  Alcotest.(check bool) "tiered read admissible" true
    (Core.Transaction.tier_violation (read_req ~tier:Core.Consistency.Causal "t00" 1)
    = None);
  Alcotest.(check bool) "tiered update rejected" true
    (Core.Transaction.tier_violation (update_req ~tier:Core.Consistency.Eventual "t00" 1)
    <> None);
  (* End to end: the replica aborts it before executing anything, and
     the abort is permanent (not retried into oblivion). *)
  let cluster = make_cluster Core.Consistency.Coarse in
  let outcome = ref None in
  Sim.Process.spawn (Core.Cluster.engine cluster) (fun () ->
      outcome :=
        Some
          (Core.Cluster.submit cluster ~sid:0
             (update_req ~tier:Core.Consistency.Causal "t00" 1)));
  Sim.Engine.run (Core.Cluster.engine cluster);
  match !outcome with
  | Some (Core.Transaction.Aborted { reason = Core.Transaction.Statement_error _; _ }) ->
    ()
  | Some _ -> Alcotest.fail "tiered update should abort with Statement_error"
  | None -> Alcotest.fail "transaction did not finish"

(* --- load-balancer routing ------------------------------------------- *)

let make_lb () = Core.Load_balancer.create tier_config ~mode:Core.Consistency.Coarse

let test_bounded_routing_filter () =
  let lb = make_lb () in
  Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:10 ~tables_written:[ "a" ];
  Core.Load_balancer.note_applied lb ~replica:0 ~version:9;
  Core.Load_balancer.note_applied lb ~replica:1 ~version:5;
  Core.Load_balancer.note_applied lb ~replica:2 ~version:2;
  (* max_lag 2 -> floor 8: only replica 0's watermark qualifies. *)
  let replica, floor =
    Core.Load_balancer.route_read lb ~sid:0
      ~tier:(Core.Consistency.Bounded_staleness { versions = Some 2; ms = None })
      ~now:0.0
  in
  Alcotest.(check int) "floor is v_system - k" 8 floor;
  Alcotest.(check int) "routed to the only satisfying replica" 0 replica;
  (* A loose bound admits everyone; the policy pick takes over (replica
     0 is busiest below, so least-active avoids it). *)
  Core.Load_balancer.note_dispatch lb ~replica:0;
  let replica, floor =
    Core.Load_balancer.route_read lb ~sid:0
      ~tier:(Core.Consistency.Bounded_staleness { versions = Some 9; ms = None })
      ~now:0.0
  in
  Alcotest.(check int) "loose floor" 1 floor;
  Alcotest.(check bool) "policy pick among satisfying replicas" true (replica <> 0)

let test_bounded_no_satisfier_waits () =
  let lb = make_lb () in
  Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:10 ~tables_written:[ "a" ];
  Core.Load_balancer.note_applied lb ~replica:0 ~version:3;
  Core.Load_balancer.note_applied lb ~replica:1 ~version:7;
  Core.Load_balancer.note_applied lb ~replica:2 ~version:6;
  (* Nothing satisfies floor 10: route to the most-caught-up replica,
     keeping the floor — the replica's start wait enforces the bound. *)
  let replica, floor =
    Core.Load_balancer.route_read lb ~sid:0
      ~tier:(Core.Consistency.Bounded_staleness { versions = Some 0; ms = None })
      ~now:0.0
  in
  Alcotest.(check int) "floor preserved" 10 floor;
  Alcotest.(check int) "most-caught-up fallback" 1 replica

let test_ms_floor_history () =
  let lb = make_lb () in
  Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:1 ~tables_written:[] ~now:100.0;
  Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:5 ~tables_written:[] ~now:200.0;
  Core.Load_balancer.note_commit_ack lb ~sid:0 ~version:9 ~tables_written:[] ~now:300.0;
  let floor ~ms ~now =
    Core.Load_balancer.tier_floor lb ~sid:0
      ~tier:(Core.Consistency.Bounded_staleness { versions = None; ms = Some ms })
      ~now
  in
  (* "At most 50ms stale" at t=320 means V_system as of t=270: v5. *)
  Alcotest.(check int) "cutoff between entries" 5 (floor ~ms:50.0 ~now:320.0);
  Alcotest.(check int) "cutoff after newest entry" 9 (floor ~ms:50.0 ~now:1000.0);
  (* A cutoff before all recorded history resolves to 0 (nothing was
     committed then). *)
  Alcotest.(check int) "cutoff before history" 0 (floor ~ms:100.0 ~now:120.0);
  (* Both bounds given: the floors combine with max. *)
  Alcotest.(check int) "versions+ms takes max" 7
    (Core.Load_balancer.tier_floor lb ~sid:0
       ~tier:(Core.Consistency.Bounded_staleness { versions = Some 2; ms = Some 200.0 })
       ~now:320.0)

let test_causal_floor_and_eviction () =
  let lb = make_lb () in
  Core.Load_balancer.note_commit_ack lb ~sid:7 ~version:10 ~tables_written:[ "a" ];
  Core.Load_balancer.note_applied lb ~replica:0 ~version:10;
  Core.Load_balancer.note_applied lb ~replica:1 ~version:2;
  Core.Load_balancer.note_applied lb ~replica:2 ~version:3;
  (* The session's own floor routes it to the caught-up replica. *)
  let replica, floor =
    Core.Load_balancer.route_read lb ~sid:7 ~tier:Core.Consistency.Causal ~now:0.0
  in
  Alcotest.(check int) "causal floor is the session floor" 10 floor;
  Alcotest.(check int) "routed to the satisfying replica" 0 replica;
  (* Another session without writes has no floor at all. *)
  let _, floor =
    Core.Load_balancer.route_read lb ~sid:8 ~tier:Core.Consistency.Causal ~now:0.0
  in
  Alcotest.(check int) "fresh session has floor 0" 0 floor;
  (* Monotone reads: a strong read's snapshot raises the floor too. *)
  Core.Load_balancer.note_snapshot_ack lb ~sid:8 ~snapshot:4;
  let _, floor =
    Core.Load_balancer.route_read lb ~sid:8 ~tier:Core.Consistency.Causal ~now:0.0
  in
  Alcotest.(check int) "snapshot ack raises the floor" 4 floor;
  (* The only replica satisfying sid 7's floor goes down (eviction /
     crash): the floor must survive and the read fall back to a live
     replica that will catch up — never to the dead one. *)
  Core.Load_balancer.set_live lb ~replica:0 false;
  let replica, floor =
    Core.Load_balancer.route_read lb ~sid:7 ~tier:Core.Consistency.Causal ~now:0.0
  in
  Alcotest.(check int) "floor survives the eviction" 10 floor;
  Alcotest.(check int) "most-caught-up live fallback" 2 replica

(* --- end-to-end ------------------------------------------------------ *)

let submit_seq cluster reqs =
  (* Run [reqs] strictly one after another (each from a fresh process
     spawned after the previous ack) and return outcomes in order. *)
  let outcomes = ref [] in
  let engine = Core.Cluster.engine cluster in
  let rec go = function
    | [] -> ()
    | (sid, req, after) :: tl ->
      Sim.Process.spawn engine (fun () ->
          let o = Core.Cluster.submit cluster ~sid req in
          outcomes := o :: !outcomes;
          after ();
          go tl)
  in
  go reqs;
  Sim.Engine.run engine;
  List.rev !outcomes

let snapshot_of name = function
  | Core.Transaction.Committed { snapshot; _ } -> snapshot
  | Core.Transaction.Aborted { reason; _ } ->
    Alcotest.failf "%s aborted: %s" name (Core.Transaction.abort_slug reason)

let test_causal_read_after_failover () =
  (* A session writes, then the replica that served everything crashes;
     its next causal read must still observe the write (served by a
     surviving replica once it catches up), not a pre-write snapshot. *)
  let cluster = make_cluster Core.Consistency.Coarse in
  let outcomes =
    submit_seq cluster
      [
        (3, update_req "t00" 1, fun () -> ());
        ( 3,
          update_req "t01" 2,
          fun () ->
            (* Crash the replica most likely to be ahead (0 serves the
               first picks under least-active). *)
            Core.Cluster.crash_replica cluster 0 );
        (3, read_req ~tier:Core.Consistency.Causal "t00" 1, fun () -> ());
      ]
  in
  match outcomes with
  | [ _; o2; o3 ] ->
    let v2 = Option.get ((function
      | Core.Transaction.Committed { commit_version; _ } -> commit_version
      | _ -> None) o2)
    in
    Alcotest.(check bool) "causal read observes the session's last write" true
      (snapshot_of "causal read" o3 >= v2)
  | _ -> Alcotest.fail "expected 3 outcomes"

let test_bounded_zero_lag_sees_latest () =
  (* max_lag 0 right after an ack: the floor equals V_system, so the
     read waits until a replica applies it — it can never be served a
     stale snapshot even though every replica may lag at submit time. *)
  let cluster = make_cluster Core.Consistency.Coarse in
  let tier = Core.Consistency.Bounded_staleness { versions = Some 0; ms = None } in
  let outcomes =
    submit_seq cluster
      [
        (0, update_req "t00" 3, fun () -> ());
        (1, update_req "t00" 4, fun () -> ());
        (2, update_req "t00" 5, fun () -> ());
        (0, read_req ~tier "t00" 3, fun () -> ());
      ]
  in
  match List.rev outcomes with
  | read :: _ ->
    Alcotest.(check int) "bounded(0) read is current" 3
      (snapshot_of "bounded read" read)
  | [] -> Alcotest.fail "no outcomes"

let run_tiered mode =
  let cluster = make_cluster mode in
  Core.Client.spawn_many cluster ~n:16 ~first_sid:0
    (Workload.Microbench.tiered_workload micro_params);
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:2_500.0;
  cluster

let check_empty name violations =
  match violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d violations, first: %s" name (List.length violations)
      (Format.asprintf "%a" Check.Runlog.pp_violation v)

let test_tiered_run_contracts () =
  let cluster = run_tiered Core.Consistency.Coarse in
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "log non-trivial" true (List.length log > 100);
  let tiered =
    List.filter (fun r -> r.Check.Runlog.tier <> Check.Runlog.Strong) log
  in
  Alcotest.(check bool) "tiered reads present" true (List.length tiered > 20);
  check_empty "tier_bounded_staleness" (Check.Runlog.tier_bounded_staleness log);
  check_empty "tier_causal_ryw" (Check.Runlog.tier_causal_ryw log);
  check_empty "tier_monotone_reads" (Check.Runlog.tier_monotone_reads log);
  (* The mode's own guarantee, on Strong-class records only, still
     holds in the same run. *)
  check_empty "strong (Strong-class records)" (Check.Runlog.strong_consistency log);
  check_empty "fcw" (Check.Runlog.first_committer_wins log);
  (* Per-tier metrics recorded every class. *)
  let m = Core.Cluster.metrics cluster in
  List.iter
    (fun slug ->
      Alcotest.(check bool) (slug ^ " commits recorded") true
        (Core.Metrics.tier_committed m slug > 0))
    Core.Consistency.all_tier_slugs;
  Alcotest.(check bool) "eventual reads show staleness" true
    (Core.Metrics.tier_mean_staleness m "eventual" > 0.0)

let test_tiered_run_deterministic () =
  let digest () = Check.Runlog.digest (Core.Cluster.records (run_tiered Core.Consistency.Fine)) in
  Alcotest.(check string) "same seed, same tiered runlog" (digest ()) (digest ())

let suites =
  [
    ( "tiers",
      [
        Alcotest.test_case "tier string roundtrip" `Quick test_tier_string_roundtrip;
        Alcotest.test_case "tier slugs" `Quick test_tier_slugs;
        Alcotest.test_case "tiered update rejected" `Quick test_tiered_update_rejected;
        Alcotest.test_case "bounded routing filter" `Quick test_bounded_routing_filter;
        Alcotest.test_case "bounded no-satisfier waits" `Quick
          test_bounded_no_satisfier_waits;
        Alcotest.test_case "ms floor history" `Quick test_ms_floor_history;
        Alcotest.test_case "causal floor and eviction" `Quick
          test_causal_floor_and_eviction;
        Alcotest.test_case "causal read after failover" `Quick
          test_causal_read_after_failover;
        Alcotest.test_case "bounded zero-lag sees latest" `Quick
          test_bounded_zero_lag_sees_latest;
        Alcotest.test_case "tiered run satisfies contracts" `Slow
          test_tiered_run_contracts;
        Alcotest.test_case "tiered run deterministic" `Slow test_tiered_run_deterministic;
      ] );
  ]

(* Tests for the MVCC storage engine. *)

open Storage

let vi x = Value.Int x
let vt s = Value.Text s

let accounts_schema =
  Schema.make ~name:"accounts"
    ~columns:[ ("id", Value.Tint); ("owner", Value.Ttext); ("balance", Value.Tint) ]
    ~indexes:[ "owner" ] ~key:[ "id" ] ()

let fresh_db () =
  let db = Database.create () in
  ignore (Database.create_table db accounts_schema);
  Database.load db "accounts"
    [
      [| vi 1; vt "alice"; vi 100 |];
      [| vi 2; vt "bob"; vi 200 |];
      [| vi 3; vt "alice"; vi 300 |];
    ];
  db

(* --- Value --- *)

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (vi 1) (vi 2) < 0);
  Alcotest.(check bool) "int/float numeric" true
    (Value.compare (vi 2) (Value.Float 1.5) > 0);
  Alcotest.(check bool) "null smallest" true (Value.compare Value.Null (vi 0) < 0);
  Alcotest.(check bool) "text order" true (Value.compare (vt "a") (vt "b") < 0);
  Alcotest.(check bool) "equal ints" true (Value.equal (vi 5) (vi 5))

let test_value_types () =
  Alcotest.(check bool) "null matches any type" true (Value.matches Value.Tint Value.Null);
  Alcotest.(check bool) "int matches Tint" true (Value.matches Value.Tint (vi 1));
  Alcotest.(check bool) "text does not match Tint" false (Value.matches Value.Tint (vt "x"));
  Alcotest.(check int) "as_int" 7 (Value.as_int (vi 7));
  Alcotest.(check (float 1e-9)) "as_float coerces int" 7.0 (Value.as_float (vi 7));
  Alcotest.check_raises "as_int on text" (Invalid_argument "Value.as_int: \"x\"") (fun () ->
      ignore (Value.as_int (vt "x")))

(* --- Schema --- *)

let test_schema_validate () =
  let ok = Schema.validate_row accounts_schema [| vi 1; vt "x"; vi 5 |] in
  Alcotest.(check bool) "valid row" true (ok = Ok ());
  (match Schema.validate_row accounts_schema [| vi 1; vt "x" |] with
  | Error msg -> Alcotest.(check bool) "arity error mentions arity" true
                   (String.length msg > 0)
  | Ok () -> Alcotest.fail "arity mismatch accepted");
  match Schema.validate_row accounts_schema [| vi 1; vi 2; vi 3 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "type mismatch accepted"

let test_schema_rejects_nullable_key () =
  Alcotest.(check bool) "nullable key rejected" true
    (try
       ignore
         (Schema.make ~name:"bad" ~columns:[ ("id", Value.Tint) ] ~nullable:[ "id" ]
            ~key:[ "id" ] ());
       false
     with Invalid_argument _ -> true)

let test_schema_key_extraction () =
  let key = Schema.key_of_row accounts_schema [| vi 9; vt "z"; vi 0 |] in
  Alcotest.(check int) "key column" 9 (Value.as_int key.(0));
  Alcotest.(check int) "single-column key" 1 (Array.length key)

(* --- Expr --- *)

let test_expr_eval () =
  let row = [| vi 10; vt "alice"; vi 250 |] in
  let e = Expr.(col accounts_schema "balance" > i 100 && col accounts_schema "owner" = s "alice") in
  Alcotest.(check bool) "predicate true" true (Expr.eval_bool row e);
  let e2 = Expr.(col accounts_schema "balance" + i 50) in
  Alcotest.(check bool) "arithmetic" true (Expr.eval row e2 = vi 300)

let test_expr_null_semantics () =
  let row = [| Value.Null |] in
  Alcotest.(check bool) "null = null is false (SQL-style)" false
    (Expr.eval_bool row Expr.(Col 0 = Const Value.Null));
  Alcotest.(check bool) "is_null" true (Expr.eval_bool row (Expr.Is_null (Expr.Col 0)))

let test_expr_type_error () =
  let row = [| vt "x" |] in
  Alcotest.(check bool) "adding text raises" true
    (try
       ignore (Expr.eval row Expr.(Col 0 + i 1));
       false
     with Expr.Type_error _ -> true)

let test_expr_like () =
  let cases =
    [
      ("abc", "abc", true);
      ("a%", "abc", true);
      ("%c", "abc", true);
      ("%b%", "abc", true);
      ("a_c", "abc", true);
      ("a_c", "abbc", false);
      ("%", "", true);
      ("_", "", false);
      ("", "", true);
      ("", "x", false);
      ("a%b%c", "axxbyyc", true);
      ("a%b%c", "acb", false);
      ("%%", "anything", true);
    ]
  in
  List.iter
    (fun (pattern, s, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "LIKE %S on %S" pattern s)
        expected
        (Expr.like_match ~pattern s))
    cases;
  (* Non-text values never match. *)
  Alcotest.(check bool) "int never matches" false
    (Expr.eval_bool [| vi 1 |] (Expr.Like (Expr.Col 0, "%")));
  Alcotest.(check bool) "null never matches" false
    (Expr.eval_bool [| Value.Null |] (Expr.Like (Expr.Col 0, "%")))

let test_expr_columns () =
  let e = Expr.(Col 2 > i 1 && Col 0 = Col 2) in
  Alcotest.(check (list int)) "referenced columns" [ 0; 2 ] (Expr.columns e)

(* --- Mvcc --- *)

let test_mvcc_snapshot_reads () =
  let m = Mvcc.create () in
  let k = [| vi 1 |] in
  Mvcc.install m k ~version:0 (Some [| vi 1; vt "a" |]);
  Mvcc.install m k ~version:5 (Some [| vi 1; vt "b" |]);
  Mvcc.install m k ~version:9 None;
  let owner at =
    match Mvcc.read m k ~at with Some row -> Value.as_text row.(1) | None -> "<gone>"
  in
  Alcotest.(check string) "v0..4 sees a" "a" (owner 3);
  Alcotest.(check string) "v5..8 sees b" "b" (owner 8);
  Alcotest.(check string) "v9 sees tombstone" "<gone>" (owner 9);
  Alcotest.(check (option int)) "latest version" (Some 9) (Mvcc.latest_version m k)

let test_mvcc_rejects_stale_install () =
  let m = Mvcc.create () in
  let k = [| vi 1 |] in
  Mvcc.install m k ~version:5 (Some [| vi 1 |]);
  Alcotest.(check bool) "non-monotonic install rejected" true
    (try
       Mvcc.install m k ~version:5 (Some [| vi 2 |]);
       false
     with Invalid_argument _ -> true)

let test_mvcc_gc () =
  let m = Mvcc.create () in
  let k = [| vi 1 |] in
  for v = 1 to 10 do
    Mvcc.install m k ~version:v (Some [| vi v |])
  done;
  let removed = Mvcc.gc m ~keep_after:7 in
  Alcotest.(check int) "dropped versions 1..6" 6 removed;
  (* Version 7 must survive: it is the visible row for snapshot 7. *)
  (match Mvcc.read m k ~at:7 with
  | Some row -> Alcotest.(check int) "snapshot 7 intact" 7 (Value.as_int row.(0))
  | None -> Alcotest.fail "gc destroyed visible version");
  match Mvcc.read m k ~at:10 with
  | Some row -> Alcotest.(check int) "latest intact" 10 (Value.as_int row.(0))
  | None -> Alcotest.fail "gc destroyed newest version"

let test_mvcc_ordered_iteration () =
  let m = Mvcc.create () in
  List.iter
    (fun i -> Mvcc.install m [| vi i |] ~version:0 (Some [| vi i |]))
    [ 5; 1; 3; 2; 4 ];
  let keys = ref [] in
  Mvcc.iter_keys_ordered m (fun k -> keys := Value.as_int k.(0) :: !keys);
  Alcotest.(check (list int)) "ascending key order" [ 1; 2; 3; 4; 5 ] (List.rev !keys)

(* --- Writeset --- *)

let entry table key op = { Writeset.ws_table = table; ws_key = [| vi key |]; ws_op = op }

let test_writeset_conflicts () =
  let a = Writeset.of_entries [ entry "t" 1 (Writeset.Put [| vi 1 |]) ] in
  let b = Writeset.of_entries [ entry "t" 1 Writeset.Delete ] in
  let c = Writeset.of_entries [ entry "t" 2 (Writeset.Put [| vi 2 |]) ] in
  let d = Writeset.of_entries [ entry "u" 1 (Writeset.Put [| vi 1 |]) ] in
  Alcotest.(check bool) "same key conflicts" true (Writeset.conflicts a b);
  Alcotest.(check bool) "different key ok" false (Writeset.conflicts a c);
  Alcotest.(check bool) "different table ok" false (Writeset.conflicts a d);
  Alcotest.(check bool) "empty never conflicts" false (Writeset.conflicts a Writeset.empty)

let test_writeset_supersede () =
  let ws =
    Writeset.of_entries
      [
        entry "t" 1 (Writeset.Put [| vi 1 |]);
        entry "t" 1 (Writeset.Put [| vi 99 |]);
        entry "t" 2 Writeset.Delete;
      ]
  in
  Alcotest.(check int) "distinct records" 2 (Writeset.cardinal ws);
  match List.find_opt (fun e -> Value.as_int e.Writeset.ws_key.(0) = 1) (Writeset.entries ws) with
  | Some { ws_op = Writeset.Put row; _ } ->
    Alcotest.(check int) "last write wins" 99 (Value.as_int row.(0))
  | _ -> Alcotest.fail "entry missing"

let test_writeset_keys () =
  let ws =
    Writeset.of_entries
      [
        entry "t" 1 (Writeset.Put [| vi 1 |]);
        entry "u" 1 Writeset.Delete;
        entry "t" 2 (Writeset.Put [| vi 2 |]);
      ]
  in
  let keys = Writeset.keys ws in
  Alcotest.(check int) "one conflict key per entry" 3 (List.length keys);
  List.iter
    (fun k -> Alcotest.(check bool) "expected key present" true (List.mem k keys))
    [ ("t", [| vi 1 |]); ("u", [| vi 1 |]); ("t", [| vi 2 |]) ]

let test_writeset_tables () =
  let ws =
    Writeset.of_entries
      [
        entry "b" 1 (Writeset.Put [| vi 1 |]);
        entry "a" 1 (Writeset.Put [| vi 1 |]);
        entry "b" 2 (Writeset.Put [| vi 2 |]);
      ]
  in
  Alcotest.(check (list string)) "tables in first-write order" [ "b"; "a" ]
    (Writeset.tables ws)

(* --- Txn --- *)

let test_txn_read_your_writes () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  Alcotest.(check bool) "update succeeds" true
    (Txn.update_key txn ~table:"accounts" ~key:[| vi 1 |]
       ~set:[ ("balance", Expr.i 999) ]);
  (match Txn.get txn ~table:"accounts" ~key:[| vi 1 |] with
  | Some row -> Alcotest.(check int) "sees own write" 999 (Value.as_int row.(2))
  | None -> Alcotest.fail "row vanished");
  (* Another transaction does not see it before commit. *)
  let other = Txn.begin_ db in
  match Txn.get other ~table:"accounts" ~key:[| vi 1 |] with
  | Some row -> Alcotest.(check int) "isolation before commit" 100 (Value.as_int row.(2))
  | None -> Alcotest.fail "row vanished for other"

let test_txn_commit_visibility () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  ignore (Txn.update_key txn ~table:"accounts" ~key:[| vi 1 |] ~set:[ ("balance", Expr.i 7) ]);
  (match Txn.commit_standalone txn with
  | Ok v -> Alcotest.(check int) "commit bumps version" 1 v
  | Error e -> Alcotest.fail e);
  let after = Txn.begin_ db in
  match Txn.get after ~table:"accounts" ~key:[| vi 1 |] with
  | Some row -> Alcotest.(check int) "new txn sees commit" 7 (Value.as_int row.(2))
  | None -> Alcotest.fail "row vanished"

let test_txn_first_committer_wins () =
  let db = fresh_db () in
  let t1 = Txn.begin_ db in
  let t2 = Txn.begin_ db in
  ignore (Txn.update_key t1 ~table:"accounts" ~key:[| vi 2 |] ~set:[ ("balance", Expr.i 1) ]);
  ignore (Txn.update_key t2 ~table:"accounts" ~key:[| vi 2 |] ~set:[ ("balance", Expr.i 2) ]);
  (match Txn.commit_standalone t1 with Ok _ -> () | Error e -> Alcotest.fail e);
  match Txn.commit_standalone t2 with
  | Ok _ -> Alcotest.fail "second concurrent writer must abort"
  | Error _ -> ()

let test_txn_snapshot_stability () =
  let db = fresh_db () in
  let reader = Txn.begin_ db in
  let writer = Txn.begin_ db in
  ignore
    (Txn.update_key writer ~table:"accounts" ~key:[| vi 1 |] ~set:[ ("balance", Expr.i 0) ]);
  ignore (Txn.commit_standalone writer);
  match Txn.get reader ~table:"accounts" ~key:[| vi 1 |] with
  | Some row ->
    Alcotest.(check int) "reader keeps its snapshot" 100 (Value.as_int row.(2))
  | None -> Alcotest.fail "row vanished"

let test_txn_insert_delete () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  (match Txn.insert txn ~table:"accounts" [| vi 4; vt "carol"; vi 50 |] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Txn.insert txn ~table:"accounts" [| vi 4; vt "dup"; vi 0 |] with
  | Ok () -> Alcotest.fail "duplicate insert accepted"
  | Error _ -> ());
  Alcotest.(check bool) "delete existing" true
    (Txn.delete_key txn ~table:"accounts" ~key:[| vi 2 |]);
  ignore (Txn.commit_standalone txn);
  let after = Txn.begin_ db in
  Alcotest.(check bool) "inserted row visible" true
    (Txn.get after ~table:"accounts" ~key:[| vi 4 |] <> None);
  Alcotest.(check bool) "deleted row gone" true
    (Txn.get after ~table:"accounts" ~key:[| vi 2 |] = None)

let test_txn_select_predicate_and_index () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  let rows =
    Txn.select txn ~table:"accounts" ~where:Expr.(col accounts_schema "owner" = s "alice") ()
  in
  Alcotest.(check int) "index lookup finds both alice rows" 2 (List.length rows);
  let rich =
    Txn.select txn ~table:"accounts" ~where:Expr.(col accounts_schema "balance" > i 150) ()
  in
  Alcotest.(check int) "scan predicate" 2 (List.length rich)

let test_txn_select_overlays_writes () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  ignore (Txn.delete_key txn ~table:"accounts" ~key:[| vi 1 |]);
  ignore (Txn.insert txn ~table:"accounts" [| vi 7; vt "alice"; vi 1 |]);
  let rows =
    Txn.select txn ~table:"accounts" ~where:Expr.(col accounts_schema "owner" = s "alice") ()
  in
  (* alice rows: id 3 from the base, id 7 from the buffer; id 1 deleted. *)
  let ids = List.map (fun r -> Value.as_int r.(0)) rows |> List.sort compare in
  Alcotest.(check (list int)) "overlay semantics" [ 3; 7 ] ids

let test_txn_update_where () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  let n =
    Txn.update txn ~table:"accounts"
      ~where:Expr.(col accounts_schema "owner" = s "alice")
      ~set:[ ("balance", Expr.(col accounts_schema "balance" + i 1)) ]
      ()
  in
  Alcotest.(check int) "two rows updated" 2 n;
  ignore (Txn.commit_standalone txn);
  let after = Txn.begin_ db in
  match Txn.get after ~table:"accounts" ~key:[| vi 3 |] with
  | Some row -> Alcotest.(check int) "updated through predicate" 301 (Value.as_int row.(2))
  | None -> Alcotest.fail "row vanished"

let test_txn_read_only_writeset_empty () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  ignore (Txn.get txn ~table:"accounts" ~key:[| vi 1 |]);
  Alcotest.(check bool) "read-only" true (Txn.is_read_only txn);
  Alcotest.(check bool) "empty writeset" true (Writeset.is_empty (Txn.writeset txn))

let test_txn_cost_accounting () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  ignore (Txn.get txn ~table:"accounts" ~key:[| vi 1 |]);
  ignore (Txn.update_key txn ~table:"accounts" ~key:[| vi 1 |] ~set:[ ("balance", Expr.i 0) ]);
  let c = Txn.cost txn in
  Alcotest.(check bool) "reads counted" true (c.Txn.rows_read >= 2);
  Alcotest.(check int) "writes counted" 1 c.Txn.rows_written

(* --- Query --- *)

let test_query_exec_and_tableset () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  let stmts =
    [
      Query.Get { table = "accounts"; key = [| vi 1 |] };
      Query.Update_key
        { table = "accounts"; key = [| vi 1 |]; set = [ ("balance", Expr.i 1) ] };
    ]
  in
  Alcotest.(check (list string)) "table-set" [ "accounts" ] (Query.table_set stmts);
  List.iter
    (fun stmt ->
      match Query.exec txn stmt with
      | Query.Error msg, _ -> Alcotest.fail msg
      | (Query.Rows _ | Query.Affected _), _ -> ())
    stmts;
  Alcotest.(check bool) "writeset non-empty" false (Writeset.is_empty (Txn.writeset txn))

let test_query_put_upsert () =
  let db = fresh_db () in
  let txn = Txn.begin_ db in
  (match Query.exec txn (Query.Put { table = "accounts"; row = [| vi 1; vt "x"; vi 5 |] }) with
  | Query.Affected 1, _ -> ()
  | _ -> Alcotest.fail "put over existing row failed");
  match Query.exec txn (Query.Put { table = "accounts"; row = [| vi 50; vt "y"; vi 5 |] }) with
  | Query.Affected 1, _ -> ()
  | _ -> Alcotest.fail "put of new row failed"

let orders_schema =
  Schema.make ~name:"ord"
    ~columns:[ ("o_id", Value.Tint); ("line", Value.Tint); ("item", Value.Tint) ]
    ~key:[ "o_id"; "line" ] ()

let items_schema =
  Schema.make ~name:"itm"
    ~columns:[ ("i_id", Value.Tint); ("title", Value.Ttext) ]
    ~key:[ "i_id" ] ()

let orders_db () =
  let db = Database.create () in
  ignore (Database.create_table db orders_schema);
  ignore (Database.create_table db items_schema);
  (* 10 orders x 3 lines; item = (order*7 + line) mod 5. *)
  Database.load db "ord"
    (List.concat_map
       (fun o -> List.init 3 (fun l -> [| vi o; vi l; vi (((o * 7) + l) mod 5) |]))
       (List.init 10 (fun i -> i)));
  Database.load db "itm" (List.init 5 (fun i -> [| vi i; vt (Printf.sprintf "book%d" i) |]));
  db

let test_txn_range_scan () =
  let db = orders_db () in
  let txn = Txn.begin_ db in
  (* Composite-key range: all lines of orders 3..5 (prefix bounds). *)
  let rows = Txn.range txn ~table:"ord" ~lo:[| vi 3 |] ~hi:[| vi 5; vi 99 |] () in
  Alcotest.(check int) "3 orders x 3 lines" 9 (List.length rows);
  let c = Txn.cost txn in
  Alcotest.(check bool) "only the range was examined" true (c.Txn.rows_scanned <= 10)

let test_txn_range_overlay () =
  let db = orders_db () in
  let txn = Txn.begin_ db in
  ignore (Txn.insert txn ~table:"ord" [| vi 4; vi 9; vi 0 |]);
  ignore (Txn.delete_key txn ~table:"ord" ~key:[| vi 4; vi 0 |]);
  let rows = Txn.range txn ~table:"ord" ~lo:[| vi 4 |] ~hi:[| vi 4; vi 99 |] () in
  (* order 4: lines 1,2 from base (0 deleted), line 9 inserted. *)
  let lines = List.map (fun r -> Value.as_int r.(1)) rows |> List.sort compare in
  Alcotest.(check (list int)) "range overlays buffer" [ 1; 2; 9 ] lines

let exec_rows txn stmt =
  match Query.exec txn stmt with
  | Query.Rows rows, _ -> rows
  | Query.Affected _, _ -> Alcotest.fail "expected rows"
  | Query.Error msg, _ -> Alcotest.fail msg

let test_query_aggregates () =
  let db = orders_db () in
  let txn = Txn.begin_ db in
  (match exec_rows txn (Query.Aggregate { table = "ord"; op = Query.Count_all; where = None }) with
  | [ [| Value.Int n |] ] -> Alcotest.(check int) "count(*)" 30 n
  | _ -> Alcotest.fail "bad count result");
  (match
     exec_rows txn
       (Query.Aggregate
          {
            table = "ord";
            op = Query.Sum "line";
            where = Some Expr.(col orders_schema "o_id" = i 0);
          })
   with
  | [ [| Value.Float s |] ] -> Alcotest.(check (float 1e-9)) "sum(line)" 3.0 s
  | _ -> Alcotest.fail "bad sum result");
  (match exec_rows txn (Query.Aggregate { table = "ord"; op = Query.Max_of "item"; where = None }) with
  | [ [| Value.Float m |] ] -> Alcotest.(check (float 1e-9)) "max(item)" 4.0 m
  | _ -> Alcotest.fail "bad max result");
  match
    exec_rows txn
      (Query.Aggregate
         {
           table = "ord";
           op = Query.Avg "item";
           where = Some Expr.(col orders_schema "o_id" = i 999);
         })
  with
  | [ [| Value.Null |] ] -> ()
  | _ -> Alcotest.fail "avg of empty set should be NULL"

let test_query_group_count () =
  let db = orders_db () in
  let txn = Txn.begin_ db in
  let groups =
    exec_rows txn
      (Query.Group_count
         { table = "ord"; group_column = "item"; lo = None; hi = None; limit = 3 })
  in
  Alcotest.(check int) "top-3 groups" 3 (List.length groups);
  (* 30 rows over 5 items => 6 each; ties break by item value asc. *)
  (match groups with
  | [| v0; Value.Int c0 |] :: _ ->
    Alcotest.(check int) "top group count" 6 c0;
    Alcotest.(check bool) "tie broken by value" true (Value.equal v0 (vi 0))
  | _ -> Alcotest.fail "bad group rows");
  (* Counts are non-increasing. *)
  let counts = List.map (fun r -> Value.as_int r.(1)) groups in
  Alcotest.(check bool) "descending counts" true
    (List.sort (fun a b -> compare b a) counts = counts)

let test_query_join () =
  let db = orders_db () in
  let txn = Txn.begin_ db in
  let rows =
    exec_rows txn
      (Query.Join
         {
           left = "ord";
           right = "itm";
           left_col = "item";
           right_col = "i_id";
           left_where = Some Expr.(col orders_schema "o_id" = i 2);
           limit = None;
         })
  in
  Alcotest.(check int) "3 joined rows for order 2" 3 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "joined width" 5 (Array.length row);
      (* join key matches *)
      Alcotest.(check bool) "join key equal" true (Value.equal row.(2) row.(3));
      (* right payload is the matching title *)
      Alcotest.(check string) "title matches item"
        (Printf.sprintf "book%d" (Value.as_int row.(2)))
        (Value.as_text row.(4)))
    rows

let test_query_join_tableset () =
  let stmt =
    Query.Join
      {
        left = "ord"; right = "itm"; left_col = "item"; right_col = "i_id";
        left_where = None; limit = None;
      }
  in
  Alcotest.(check (list string)) "join contributes both tables" [ "ord"; "itm" ]
    (Query.table_set [ stmt ])

let test_database_apply_out_of_order_rejected () =
  let db = fresh_db () in
  let ws = Writeset.of_entries [ entry "accounts" 1 Writeset.Delete ] in
  Alcotest.(check bool) "non-sequential version rejected" true
    (try
       Database.apply db ws ~version:5;
       false
     with Invalid_argument _ -> true)

let balance_of db key =
  let txn = Txn.begin_ db in
  match Txn.get txn ~table:"accounts" ~key:[| vi key |] with
  | Some row -> Value.as_int row.(2)
  | None -> Alcotest.fail "row vanished"

let test_database_unpublished_invisible_until_publish () =
  let db = fresh_db () in
  let ws =
    Writeset.of_entries [ entry "accounts" 1 (Writeset.Put [| vi 1; vt "alice"; vi 999 |]) ]
  in
  Database.apply_unpublished db ws ~version:1;
  Alcotest.(check int) "version not advanced" 0 (Database.version db);
  Alcotest.(check int) "old snapshot sees old row" 100 (balance_of db 1);
  Database.publish db ~version:1;
  Alcotest.(check int) "version published" 1 (Database.version db);
  Alcotest.(check int) "new snapshot sees new row" 999 (balance_of db 1);
  Alcotest.(check bool) "already-published version rejected" true
    (try
       Database.apply_unpublished db ws ~version:1;
       false
     with Invalid_argument _ -> true)

let test_database_replay_is_redo_idempotent () =
  (* A parallel batch apply can be interrupted after installing only some
     of its writesets; recovery then replays the same versions from the
     certifier log. Re-installing must skip rows already at the target
     version instead of tripping the MVCC stale-install check. *)
  let db = fresh_db () in
  let partial =
    Writeset.of_entries [ entry "accounts" 1 (Writeset.Put [| vi 1; vt "alice"; vi 999 |]) ]
  in
  Database.apply_unpublished db partial ~version:1;
  (* Crash before publish: the replayed writeset carries both rows. *)
  let full =
    Writeset.of_entries
      [
        entry "accounts" 1 (Writeset.Put [| vi 1; vt "alice"; vi 999 |]);
        entry "accounts" 2 (Writeset.Put [| vi 2; vt "bob"; vi 777 |]);
      ]
  in
  Database.apply db full ~version:1;
  Alcotest.(check int) "version advanced by replay" 1 (Database.version db);
  Alcotest.(check int) "partially installed row intact" 999 (balance_of db 1);
  Alcotest.(check int) "missing row installed by replay" 777 (balance_of db 2)

let test_database_gc () =
  let db = fresh_db () in
  for _ = 1 to 5 do
    let txn = Txn.begin_ db in
    ignore
      (Txn.update_key txn ~table:"accounts" ~key:[| vi 1 |]
         ~set:[ ("balance", Expr.(col accounts_schema "balance" + i 1)) ]);
    ignore (Txn.commit_standalone txn)
  done;
  let before = Database.total_versions db in
  let removed = Database.gc db ~keep_after:(Database.version db) in
  Alcotest.(check bool) "gc removed versions" true (removed > 0);
  Alcotest.(check int) "version accounting consistent" before
    (Database.total_versions db + removed)

(* Model-based test: the MVCC store against a naive reference (an assoc
   list of (key, version, row-option) facts). Random install sequences at
   increasing versions; at every step, reads at random snapshots must
   agree. *)
let prop_mvcc_matches_model =
  let open QCheck in
  Test.make ~name:"mvcc agrees with reference model" ~count:60
    (list_of_size (Gen.int_range 0 25) (pair (int_range 0 9) (option (int_range 0 999))))
    (fun ops ->
      let store = Mvcc.create () in
      let model : (int * int * int option) list ref = ref [] in
      (* reference read: newest fact for the key with version <= at *)
      let model_read key ~at =
        let candidates =
          List.filter (fun (k, v, _) -> k = key && v <= at) !model
        in
        match List.sort (fun (_, a, _) (_, b, _) -> compare b a) candidates with
        | (_, _, row) :: _ -> row
        | [] -> None
      in
      let ok = ref true in
      List.iteri
        (fun version (key, payload) ->
          let version = version + 1 in
          let row = Option.map (fun p -> [| vi p |]) payload in
          Mvcc.install store [| vi key |] ~version row;
          model := (key, version, payload) :: !model;
          (* Check reads for every key at a few snapshots. *)
          for at = 0 to version do
            for k = 0 to 9 do
              let got =
                match Mvcc.read store [| vi k |] ~at with
                | Some r -> Some (Value.as_int r.(0))
                | None -> None
              in
              if got <> model_read k ~at then ok := false
            done
          done)
        ops;
      (* GC at a random horizon must preserve all reads above it. *)
      let n = List.length ops in
      if n > 2 then begin
        let horizon = n / 2 in
        ignore (Mvcc.gc store ~keep_after:horizon);
        for at = horizon to n do
          for k = 0 to 9 do
            let got =
              match Mvcc.read store [| vi k |] ~at with
              | Some r -> Some (Value.as_int r.(0))
              | None -> None
            in
            if got <> model_read k ~at then ok := false
          done
        done
      end;
      !ok)

(* --- Codec and checkpoints --- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1e12);
        map (fun s -> Value.Text s) string;
        map (fun b -> Value.Bool b) bool;
      ])

let prop_codec_value_roundtrip =
  QCheck.Test.make ~name:"codec value roundtrip" ~count:500
    (QCheck.make value_gen)
    (fun v ->
      let buf = Buffer.create 16 in
      Codec.encode_value buf v;
      let r = Codec.reader (Buffer.contents buf) in
      let v' = Codec.decode_value r in
      Value.equal v v' && Codec.reader_at_end r)

let prop_codec_row_roundtrip =
  QCheck.Test.make ~name:"codec row roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(array_size (int_range 0 20) value_gen))
    (fun row ->
      let buf = Buffer.create 64 in
      Codec.encode_row buf row;
      let r = Codec.reader (Buffer.contents buf) in
      let row' = Codec.decode_row r in
      Array.length row = Array.length row'
      && Array.for_all2 Value.equal row row')

let test_codec_writeset_roundtrip () =
  let ws =
    Writeset.of_entries
      [
        entry "t" 1 (Writeset.Put [| vi 1; vt "x" |]);
        entry "u" 2 Writeset.Delete;
        entry "t" 3 (Writeset.Put [| vi 3; Value.Null |]);
      ]
  in
  let buf = Buffer.create 64 in
  Codec.encode_writeset buf ws;
  let ws' = Codec.decode_writeset (Codec.reader (Buffer.contents buf)) in
  Alcotest.(check int) "cardinality preserved" (Writeset.cardinal ws) (Writeset.cardinal ws');
  Alcotest.(check bool) "delete preserved" true (Writeset.mem ws' ~table:"u" ~key:[| vi 2 |]);
  Alcotest.(check int) "exact size accounting" (Buffer.length buf) (Codec.writeset_bytes ws)

let test_codec_corrupt_input () =
  Alcotest.(check bool) "truncated input rejected" true
    (try
       ignore (Codec.decode_value (Codec.reader "\001\042"));
       false
     with Codec.Corrupt _ -> true);
  Alcotest.(check bool) "bad tag rejected" true
    (try
       ignore (Codec.decode_value (Codec.reader "\255"));
       false
     with Codec.Corrupt _ -> true)

let test_codec_schema_roundtrip () =
  let buf = Buffer.create 64 in
  Codec.encode_schema buf accounts_schema;
  let s = Codec.decode_schema (Codec.reader (Buffer.contents buf)) in
  Alcotest.(check string) "name" "accounts" s.Schema.table_name;
  Alcotest.(check int) "columns" 3 (Schema.column_count s);
  Alcotest.(check bool) "key preserved" true (s.Schema.primary_key = [| 0 |]);
  Alcotest.(check bool) "index preserved" true (s.Schema.indexed = [| 1 |])

let test_database_snapshot_roundtrip () =
  let db = fresh_db () in
  (* Create some version history: two commits. *)
  List.iter
    (fun delta ->
      let txn = Txn.begin_ db in
      ignore
        (Txn.update_key txn ~table:"accounts" ~key:[| vi 1 |]
           ~set:[ ("balance", Expr.(Col 2 + i delta)) ]);
      ignore (Txn.commit_standalone txn))
    [ 10; 20 ];
  let restored = Database.of_snapshot (Database.snapshot db) in
  Alcotest.(check int) "version restored" (Database.version db) (Database.version restored);
  Alcotest.(check (list string)) "tables restored" (Database.table_names db)
    (Database.table_names restored);
  (* Every retained snapshot version must agree. *)
  for at = 0 to Database.version db do
    Alcotest.(check int)
      (Printf.sprintf "fingerprint at v%d" at)
      (Database.fingerprint db ~at)
      (Database.fingerprint restored ~at)
  done;
  (* Secondary indexes were rebuilt. *)
  let txn = Txn.begin_ restored in
  Alcotest.(check int) "index works after restore" 2
    (List.length
       (Txn.select txn ~table:"accounts"
          ~where:Expr.(col accounts_schema "owner" = s "alice")
          ()))

let test_database_snapshot_rejects_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Database.of_snapshot "not a snapshot at all");
       false
     with Codec.Corrupt _ -> true)

let test_fingerprint_detects_divergence () =
  let a = fresh_db () and b = fresh_db () in
  Alcotest.(check int) "identical databases agree" (Database.fingerprint a ~at:0)
    (Database.fingerprint b ~at:0);
  let txn = Txn.begin_ b in
  ignore (Txn.update_key txn ~table:"accounts" ~key:[| vi 1 |] ~set:[ ("balance", Expr.i 1) ]);
  ignore (Txn.commit_standalone txn);
  Alcotest.(check bool) "divergent databases differ" true
    (Database.fingerprint a ~at:0 <> Database.fingerprint b ~at:1)

(* Property: random interleavings of single-key standalone transactions
   preserve the sum under commit-or-abort (atomicity). *)
let prop_txn_atomic_transfer =
  QCheck.Test.make ~name:"standalone transfers conserve total balance" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 20) (pair (int_range 1 3) (int_range 1 3)))
    (fun transfers ->
      let db = fresh_db () in
      let total db =
        let txn = Txn.begin_ db in
        List.fold_left
          (fun acc id ->
            match Txn.get txn ~table:"accounts" ~key:[| vi id |] with
            | Some row -> acc + Value.as_int row.(2)
            | None -> acc)
          0 [ 1; 2; 3 ]
      in
      let before = total db in
      List.iter
        (fun (a, b) ->
          let txn = Txn.begin_ db in
          ignore
            (Txn.update_key txn ~table:"accounts" ~key:[| vi a |]
               ~set:[ ("balance", Expr.(Col 2 - i 10)) ]);
          ignore
            (Txn.update_key txn ~table:"accounts" ~key:[| vi b |]
               ~set:[ ("balance", Expr.(Col 2 + i 10)) ]);
          ignore (Txn.commit_standalone txn))
        transfers;
      total db = before)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "storage.value",
      [
        Alcotest.test_case "compare" `Quick test_value_compare;
        Alcotest.test_case "types" `Quick test_value_types;
      ] );
    ( "storage.schema",
      [
        Alcotest.test_case "validate" `Quick test_schema_validate;
        Alcotest.test_case "nullable key rejected" `Quick test_schema_rejects_nullable_key;
        Alcotest.test_case "key extraction" `Quick test_schema_key_extraction;
      ] );
    ( "storage.expr",
      [
        Alcotest.test_case "eval" `Quick test_expr_eval;
        Alcotest.test_case "null semantics" `Quick test_expr_null_semantics;
        Alcotest.test_case "like matching" `Quick test_expr_like;
        Alcotest.test_case "type errors" `Quick test_expr_type_error;
        Alcotest.test_case "columns" `Quick test_expr_columns;
      ] );
    ( "storage.mvcc",
      [
        Alcotest.test_case "snapshot reads" `Quick test_mvcc_snapshot_reads;
        Alcotest.test_case "stale install rejected" `Quick test_mvcc_rejects_stale_install;
        Alcotest.test_case "gc" `Quick test_mvcc_gc;
        Alcotest.test_case "ordered iteration" `Quick test_mvcc_ordered_iteration;
      ]
      @ qsuite [ prop_mvcc_matches_model ] );
    ( "storage.writeset",
      [
        Alcotest.test_case "conflicts" `Quick test_writeset_conflicts;
        Alcotest.test_case "supersede" `Quick test_writeset_supersede;
        Alcotest.test_case "tables" `Quick test_writeset_tables;
        Alcotest.test_case "conflict keys" `Quick test_writeset_keys;
      ] );
    ( "storage.txn",
      [
        Alcotest.test_case "read your writes" `Quick test_txn_read_your_writes;
        Alcotest.test_case "commit visibility" `Quick test_txn_commit_visibility;
        Alcotest.test_case "first committer wins" `Quick test_txn_first_committer_wins;
        Alcotest.test_case "snapshot stability" `Quick test_txn_snapshot_stability;
        Alcotest.test_case "insert and delete" `Quick test_txn_insert_delete;
        Alcotest.test_case "select with index" `Quick test_txn_select_predicate_and_index;
        Alcotest.test_case "select overlays writes" `Quick test_txn_select_overlays_writes;
        Alcotest.test_case "update with predicate" `Quick test_txn_update_where;
        Alcotest.test_case "read-only writeset empty" `Quick test_txn_read_only_writeset_empty;
        Alcotest.test_case "cost accounting" `Quick test_txn_cost_accounting;
      ]
      @ qsuite [ prop_txn_atomic_transfer ] );
    ( "storage.query",
      [
        Alcotest.test_case "exec and table-set" `Quick test_query_exec_and_tableset;
        Alcotest.test_case "put upsert" `Quick test_query_put_upsert;
        Alcotest.test_case "range scan" `Quick test_txn_range_scan;
        Alcotest.test_case "range overlays writes" `Quick test_txn_range_overlay;
        Alcotest.test_case "aggregates" `Quick test_query_aggregates;
        Alcotest.test_case "group count" `Quick test_query_group_count;
        Alcotest.test_case "join" `Quick test_query_join;
        Alcotest.test_case "join table-set" `Quick test_query_join_tableset;
      ] );
    ( "storage.database",
      [
        Alcotest.test_case "out-of-order apply rejected" `Quick
          test_database_apply_out_of_order_rejected;
        Alcotest.test_case "unpublished invisible until publish" `Quick
          test_database_unpublished_invisible_until_publish;
        Alcotest.test_case "replay is redo-idempotent" `Quick
          test_database_replay_is_redo_idempotent;
        Alcotest.test_case "gc accounting" `Quick test_database_gc;
      ] );
    ( "storage.codec",
      [
        Alcotest.test_case "writeset roundtrip + size" `Quick test_codec_writeset_roundtrip;
        Alcotest.test_case "corrupt input" `Quick test_codec_corrupt_input;
        Alcotest.test_case "schema roundtrip" `Quick test_codec_schema_roundtrip;
        Alcotest.test_case "database snapshot roundtrip" `Quick
          test_database_snapshot_roundtrip;
        Alcotest.test_case "snapshot rejects garbage" `Quick
          test_database_snapshot_rejects_garbage;
        Alcotest.test_case "fingerprint divergence" `Quick test_fingerprint_detects_divergence;
      ]
      @ qsuite [ prop_codec_value_roundtrip; prop_codec_row_roundtrip ] );
  ]

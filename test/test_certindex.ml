(* The keyed certification index: unit tests for index maintenance
   (commit, prune, failover rebuild), a QCheck differential property
   pinning Linear ≡ Keyed across randomized workloads with log
   truncation and certifier failover mid-stream, watermark-driven log
   GC, and the load balancer's watermark-bounded session table. *)

let small_config =
  {
    Core.Config.default with
    replicas = 3;
    seed = 7;
    gc_interval_ms = 0.0;
    hiccup_interval_ms = 0.0;
  }

let ws_on table key =
  Storage.Writeset.of_entries
    [
      {
        Storage.Writeset.ws_table = table;
        ws_key = [| Storage.Value.Int key |];
        ws_op = Storage.Writeset.Put [| Storage.Value.Int key |];
      };
    ]

let with_certifier ?(config = small_config) ?(mode = Core.Consistency.Coarse) f =
  let engine = Sim.Engine.create () in
  let rng = Util.Rng.create 1 in
  let network =
    Sim.Network.create engine ~rng:(Util.Rng.split rng) ~base_ms:0.1 ~jitter_ms:0.0
      ~bandwidth_mbps:1000.0
  in
  let certifier = Core.Certifier.create engine config ~rng ~network ~mode in
  Sim.Process.spawn engine (fun () -> f certifier);
  Sim.Engine.run engine

let keyed_config = { small_config with Core.Config.cert_index = Core.Config.Keyed }
let linear_config = { small_config with Core.Config.cert_index = Core.Config.Linear }

(* --- index maintenance ------------------------------------------------ *)

let test_index_tracks_last_writer () =
  with_certifier ~config:keyed_config (fun c ->
      (* Distinct keys: one index entry each. *)
      for i = 1 to 5 do
        match Core.Certifier.certify c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i) with
        | Core.Certifier.Commit _ -> ()
        | _ -> Alcotest.fail "disjoint writer aborted"
      done;
      Alcotest.(check int) "one entry per distinct key" 5 (Core.Certifier.index_size c);
      (* Rewriting key 3 must supersede, not add. *)
      (match Core.Certifier.certify c ~origin:0 ~snapshot:5 ~ws:(ws_on "t" 3) with
      | Core.Certifier.Commit { version; _ } -> Alcotest.(check int) "v6" 6 version
      | _ -> Alcotest.fail "up-to-date rewrite aborted");
      Alcotest.(check int) "rewrite replaces the entry" 5 (Core.Certifier.index_size c);
      (* A snapshot that predates the rewrite now conflicts on key 3
         only. *)
      (match Core.Certifier.certify c ~origin:1 ~snapshot:5 ~ws:(ws_on "t" 3) with
      | Core.Certifier.Abort -> ()
      | _ -> Alcotest.fail "stale rewrite certified");
      match Core.Certifier.certify c ~origin:1 ~snapshot:5 ~ws:(ws_on "t" 1) with
      | Core.Certifier.Commit _ -> ()
      | _ -> Alcotest.fail "non-conflicting key aborted")

let test_linear_oracle_conflict_window () =
  (* The Linear arm must implement the same window semantics — the
     conflict-window unit test rerun against the scan oracle. *)
  with_certifier ~config:linear_config (fun c ->
      Alcotest.(check int) "linear keeps no index" 0 (Core.Certifier.index_size c);
      (match Core.Certifier.certify c ~origin:0 ~snapshot:0 ~ws:(ws_on "t" 1) with
      | Core.Certifier.Commit { version; _ } -> Alcotest.(check int) "v1" 1 version
      | _ -> Alcotest.fail "first writer aborted");
      (match Core.Certifier.certify c ~origin:1 ~snapshot:0 ~ws:(ws_on "t" 1) with
      | Core.Certifier.Abort -> ()
      | _ -> Alcotest.fail "conflicting writer committed");
      (match Core.Certifier.certify c ~origin:1 ~snapshot:1 ~ws:(ws_on "t" 1) with
      | Core.Certifier.Commit _ -> ()
      | _ -> Alcotest.fail "sequential writer aborted");
      Alcotest.(check int) "still no index" 0 (Core.Certifier.index_size c))

let test_prune_drops_index_entries () =
  with_certifier ~config:keyed_config (fun c ->
      for i = 1 to 10 do
        match Core.Certifier.certify c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i) with
        | Core.Certifier.Commit _ -> ()
        | _ -> Alcotest.fail "unexpected abort"
      done;
      Core.Certifier.prune c ~keep_after:6;
      Alcotest.(check int) "entries <= horizon dropped" 4 (Core.Certifier.index_size c);
      (* Key 8 (committed at v8 > horizon) still conflicts for a
         snapshot of 7; key 9 does not for a snapshot of 9. *)
      (match Core.Certifier.certify c ~origin:0 ~snapshot:7 ~ws:(ws_on "t" 8) with
      | Core.Certifier.Abort -> ()
      | _ -> Alcotest.fail "post-horizon conflict missed");
      match Core.Certifier.certify c ~origin:0 ~snapshot:10 ~ws:(ws_on "t" 9) with
      | Core.Certifier.Commit _ -> ()
      | _ -> Alcotest.fail "up-to-date writer aborted")

let test_failover_rebuilds_index () =
  let config = { keyed_config with Core.Config.certifier_standbys = 1 } in
  with_certifier ~config (fun c ->
      for i = 1 to 8 do
        match Core.Certifier.certify c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i) with
        | Core.Certifier.Commit _ -> ()
        | _ -> Alcotest.fail "unexpected abort"
      done;
      Core.Certifier.prune c ~keep_after:3;
      Core.Certifier.crash c;
      Core.Certifier.failover c;
      (* The promoted standby rebuilt the index from its replicated log
         copy: only post-horizon entries, same decisions as before. *)
      Alcotest.(check int) "rebuilt from the log suffix" 5 (Core.Certifier.index_size c);
      (match Core.Certifier.certify c ~origin:0 ~snapshot:5 ~ws:(ws_on "t" 7) with
      | Core.Certifier.Abort -> ()
      | _ -> Alcotest.fail "conflict lost across failover");
      match Core.Certifier.certify c ~origin:0 ~snapshot:8 ~ws:(ws_on "t" 2) with
      | Core.Certifier.Commit _ -> ()
      | _ -> Alcotest.fail "clean writer aborted after failover")

(* --- Linear ≡ Keyed differential property ----------------------------- *)

type op =
  | Certify of int * int * int  (* origin, key, staleness *)
  | Truncate of int  (* keep the last [window] versions *)
  | Failover

let pp_op = function
  | Certify (o, k, s) -> Printf.sprintf "Certify(%d,%d,%d)" o k s
  | Truncate w -> Printf.sprintf "Truncate(%d)" w
  | Failover -> "Failover"

(* Drive one certifier through the op stream and record every decision
   (with its assigned version) plus the post-run log/index state.
   [~interned:true] builds each writeset against the certifier group's
   intern table, exercising the cached dense-id fast path; [false]
   submits bare (foreign) writesets that the certifier must re-resolve
   per probe. The two must be indistinguishable in every decision. *)
let run_ops ?(interned = false) ~index ops =
  let config =
    { small_config with Core.Config.cert_index = index; certifier_standbys = 1 }
  in
  let out = ref [] in
  with_certifier ~config (fun c ->
      let ws_for key =
        if interned then
          Storage.Writeset.of_entries ~intern:(Core.Certifier.intern c)
            (Storage.Writeset.entries (ws_on "t" key))
        else ws_on "t" key
      in
      List.iter
        (fun op ->
          match op with
          | Certify (origin, key, staleness) ->
            let snapshot = max 0 (Core.Certifier.version c - staleness) in
            (match Core.Certifier.certify c ~origin ~snapshot ~ws:(ws_for key) with
            | Core.Certifier.Commit { version; _ } ->
              out := Printf.sprintf "C%d" version :: !out
            | Core.Certifier.Abort -> out := "A" :: !out
            | Core.Certifier.Overloaded | Core.Certifier.Expired ->
              Alcotest.fail "unexpected overload decision")
          | Truncate window ->
            Core.Certifier.prune c
              ~keep_after:(max 0 (Core.Certifier.version c - window))
          | Failover ->
            let deposed = Core.Certifier.primary_index c in
            Core.Certifier.crash c;
            Core.Certifier.failover c;
            (* The deposed member rejoins as a standby, so later
               failovers always have a promotion candidate. *)
            Core.Certifier.revive_node c deposed)
        ops;
      out :=
        Printf.sprintf "base=%d v=%d" (Core.Certifier.log_base c)
          (Core.Certifier.version c)
        :: !out);
  List.rev !out

let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 10,
          map3
            (fun o k s -> Certify (o, k, s))
            (int_bound 2) (int_bound 15) (int_bound 30) );
        (1, map (fun w -> Truncate w) (int_bound 8));
        (1, return Failover);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

let prop_linear_equals_keyed =
  QCheck.Test.make ~count:60 ~name:"Linear and Keyed decide identically" ops_arb
    (fun ops ->
      run_ops ~index:Core.Config.Linear ops = run_ops ~index:Core.Config.Keyed ops)

(* The raw-speed pass differential: the interned dense-id index must be
   a pure representation change. All four arms — {Linear, Keyed} ×
   {interned, foreign} writesets — produce the identical decision/version
   stream across random workloads, truncation, and failover mid-stream. *)
let prop_interned_is_representation_only =
  QCheck.Test.make ~count:60
    ~name:"interned ids change no decision (vs Linear oracle and foreign keyed)" ops_arb
    (fun ops ->
      let oracle = run_ops ~interned:false ~index:Core.Config.Linear ops in
      run_ops ~interned:true ~index:Core.Config.Keyed ops = oracle
      && run_ops ~interned:false ~index:Core.Config.Keyed ops = oracle
      && run_ops ~interned:true ~index:Core.Config.Linear ops = oracle)

(* --- watermarks and GC ------------------------------------------------ *)

let test_watermark_tracking_and_gc () =
  let config = { keyed_config with Core.Config.watermark_slack = 2 } in
  with_certifier ~config (fun c ->
      Core.Certifier.subscribe c ~replica:0 (fun ~epoch:_ _ -> ());
      Core.Certifier.subscribe c ~replica:1 (fun ~epoch:_ _ -> ());
      for i = 1 to 10 do
        match
          Core.Certifier.certify c ~applied:(i - 1) ~origin:0 ~snapshot:(i - 1)
            ~ws:(ws_on "t" i)
        with
        | Core.Certifier.Commit _ -> ()
        | _ -> Alcotest.fail "unexpected abort"
      done;
      (* Origin 0 piggybacked applied = 9 on its last request; replica 1
         has only acked what we tell it. *)
      Alcotest.(check int) "piggybacked watermark" 9
        (Core.Certifier.watermark c ~replica:0);
      Core.Certifier.ack c ~replica:1 ~version:6;
      Core.Certifier.ack c ~replica:1 ~version:4;  (* stale ack: no regression *)
      Alcotest.(check int) "acked watermark" 6 (Core.Certifier.watermark c ~replica:1);
      Alcotest.(check int) "cluster-wide minimum" 6 (Core.Certifier.min_watermark c);
      Core.Certifier.gc c;
      (* min live watermark 6, slack 2: log covers (4, 10]. *)
      Alcotest.(check int) "log truncated to min - slack" 4 (Core.Certifier.log_base c);
      Alcotest.(check int) "index pruned with the log" 6 (Core.Certifier.index_size c);
      (* A crashed replica's frozen watermark must stop holding GC back. *)
      Core.Certifier.mark_down c ~replica:1;
      Core.Certifier.gc c;
      Alcotest.(check int) "GC follows live replicas only" 7
        (Core.Certifier.log_base c))

let test_gc_noop_without_live_replicas () =
  with_certifier ~config:keyed_config (fun c ->
      for i = 1 to 5 do
        ignore (Core.Certifier.certify c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i))
      done;
      Core.Certifier.gc c;
      Alcotest.(check int) "nothing heard from, nothing truncated" 0
        (Core.Certifier.log_base c))

(* --- load balancer: watermark-bounded session table ------------------- *)

let test_lb_prune_sessions () =
  let lb = Core.Load_balancer.create small_config ~mode:Core.Consistency.Session in
  for sid = 0 to 99 do
    Core.Load_balancer.note_commit_ack lb ~sid ~version:(sid + 1) ~tables_written:[ "t" ]
  done;
  Alcotest.(check int) "one entry per session" 100 (Core.Load_balancer.session_count lb);
  Core.Load_balancer.prune_sessions lb ~applied_min:60;
  Alcotest.(check int) "entries <= watermark dropped" 40
    (Core.Load_balancer.session_count lb);
  (* A pruned session falls back to version 0: same (no) wait as an
     entry below the cluster-wide applied minimum. *)
  Alcotest.(check int) "pruned session imposes no wait" 0
    (Core.Load_balancer.session_version lb ~sid:3);
  Alcotest.(check int) "surviving session keeps its version" 77
    (Core.Load_balancer.session_version lb ~sid:76)

let test_session_table_bounded_in_cluster () =
  (* Session-id churn: 150 one-shot sessions each commit one update
     through a cluster whose GC loop is live. The watermark hook must
     keep the session table from retaining all of them, and once every
     replica has applied everything the table drains to empty. *)
  let params = { Workload.Microbench.tables = 2; rows = 50; update_types = 2 } in
  let config =
    {
      small_config with
      Core.Config.gc_interval_ms = 200.0;
      watermark_slack = 5;
      record_log = false;
    }
  in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Session
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  let update sid key =
    Core.Transaction.make ~profile:"upd"
      [
        Storage.Query.Update_key
          {
            table = "t00";
            key = [| Storage.Value.Int key |];
            set = [ ("val", Storage.Expr.(Col 1 + i 1)) ];
          };
      ]
    |> fun req -> ignore (Core.Cluster.submit cluster ~sid req)
  in
  Sim.Process.spawn (Core.Cluster.engine cluster) (fun () ->
      for sid = 0 to 149 do
        update sid (sid mod 50)
      done);
  (* Long enough for all 150 sequential transactions plus refresh
     application and several GC ticks after the last commit. *)
  Core.Cluster.run_for cluster ~warmup_ms:0.0 ~measure_ms:30_000.0;
  let lb = Core.Cluster.load_balancer cluster in
  let certifier = Core.Cluster.certifier cluster in
  Alcotest.(check bool) "all sessions committed" true
    (Core.Certifier.version certifier >= 150);
  Alcotest.(check int) "session table drained behind the watermark" 0
    (Core.Load_balancer.session_count lb)

let suites =
  [
    ( "core.certindex",
      [
        Alcotest.test_case "index tracks last writer per key" `Quick
          test_index_tracks_last_writer;
        Alcotest.test_case "linear oracle conflict window" `Quick
          test_linear_oracle_conflict_window;
        Alcotest.test_case "prune drops index entries" `Quick
          test_prune_drops_index_entries;
        Alcotest.test_case "failover rebuilds index from the log" `Quick
          test_failover_rebuilds_index;
        QCheck_alcotest.to_alcotest prop_linear_equals_keyed;
        QCheck_alcotest.to_alcotest prop_interned_is_representation_only;
      ] );
    ( "core.watermarks",
      [
        Alcotest.test_case "tracking and watermark-driven GC" `Quick
          test_watermark_tracking_and_gc;
        Alcotest.test_case "GC is a no-op with no live replicas" `Quick
          test_gc_noop_without_live_replicas;
        Alcotest.test_case "load balancer prunes session versions" `Quick
          test_lb_prune_sessions;
        Alcotest.test_case "session table bounded under sid churn" `Quick
          test_session_table_bounded_in_cluster;
      ] );
  ]

let () =
  Alcotest.run "repro"
    (Test_util.suites @ Test_sim.suites @ Test_obs.suites @ Test_storage.suites
   @ Test_check.suites @ Test_core.suites @ Test_batching.suites @ Test_certindex.suites
   @ Test_workload.suites
   @ Test_consistency.suites @ Test_tiers.suites @ Test_faults.suites @ Test_certha.suites @ Test_controlplane.suites
   @ Test_overload.suites
   @ Test_experiments.suites
   @ Test_sql.suites)

(* Tests for the consistency checkers, including the paper's §II
   example histories H1, H2, H3. *)

open Check

(* H1 = {B1, W1(X=1), C1, B2, R2(X=0), C2}: serializable (as T2,T1) but
   NOT strongly consistent. *)
let h1 : History.t =
  [
    History.Begin 1;
    History.Write (1, "X", 1);
    History.Commit 1;
    History.Begin 2;
    History.Read (2, "X", 0);
    History.Commit 2;
  ]

(* H2 = same but T2 reads the new value: strongly consistent and
   serializable as T1,T2. *)
let h2 : History.t =
  [
    History.Begin 1;
    History.Write (1, "X", 1);
    History.Commit 1;
    History.Begin 2;
    History.Read (2, "X", 1);
    History.Commit 2;
  ]

(* H3 = write-skew-shaped: strongly consistent and snapshot-legal, but
   not serializable. *)
let h3 : History.t =
  [
    History.Begin 1;
    History.Read (1, "X", 0);
    History.Read (1, "Y", 0);
    History.Begin 2;
    History.Read (2, "X", 0);
    History.Read (2, "Y", 0);
    History.Write (1, "X", 1);
    History.Write (2, "Y", 1);
    History.Commit 1;
    History.Commit 2;
  ]

let test_h1 () =
  Alcotest.(check bool) "H1 serializable" true (Checker.serializable h1);
  Alcotest.(check bool) "H1 not strongly consistent" false (Checker.strongly_consistent h1);
  (* With T1 and T2 in different sessions, session consistency holds. *)
  Alcotest.(check bool) "H1 session consistent (separate sessions)" true
    (Checker.session_consistent ~session:(fun t -> t) h1);
  (* In the same session even session consistency is violated. *)
  Alcotest.(check bool) "H1 violates same-session consistency" false
    (Checker.session_consistent ~session:(fun _ -> 0) h1)

let test_h1_gsi_legal () =
  (* H1 is exactly the GSI-legal-but-not-strong case: T2 may read an
     older snapshot under `Any, but not under `Strong. *)
  Alcotest.(check bool) "H1 legal under GSI" true
    (Checker.snapshot_consistent ~mode:`Any h1);
  Alcotest.(check bool) "H1 passes first-committer-wins" true
    (Checker.first_committer_wins h1)

let test_h2 () =
  Alcotest.(check bool) "H2 serializable" true (Checker.serializable h2);
  Alcotest.(check bool) "H2 strongly consistent" true (Checker.strongly_consistent h2)

let test_h3 () =
  Alcotest.(check bool) "H3 not serializable" false (Checker.serializable h3);
  Alcotest.(check bool) "H3 strongly consistent" true (Checker.strongly_consistent h3);
  Alcotest.(check bool) "H3 snapshot-legal" true
    (Checker.snapshot_consistent ~mode:`Any h3);
  Alcotest.(check bool) "H3 passes first-committer-wins" true
    (Checker.first_committer_wins h3)

let test_first_committer_wins_violation () =
  (* Two concurrent transactions writing the same item both commit. *)
  let h : History.t =
    [
      History.Begin 1;
      History.Begin 2;
      History.Write (1, "X", 1);
      History.Write (2, "X", 2);
      History.Commit 1;
      History.Commit 2;
    ]
  in
  Alcotest.(check bool) "concurrent conflicting commits flagged" false
    (Checker.first_committer_wins h);
  (* Sequential versions of the same writes are fine. *)
  let h' : History.t =
    [
      History.Begin 1;
      History.Write (1, "X", 1);
      History.Commit 1;
      History.Begin 2;
      History.Write (2, "X", 2);
      History.Commit 2;
    ]
  in
  Alcotest.(check bool) "sequential writers ok" true (Checker.first_committer_wins h')

let test_well_formed () =
  Alcotest.(check bool) "h1 well-formed" true (History.well_formed h1 = Ok ());
  let bad = [ History.Read (1, "X", 0) ] in
  Alcotest.(check bool) "op before begin rejected" true
    (match History.well_formed bad with Error _ -> true | Ok () -> false);
  let double = [ History.Begin 1; History.Begin 1 ] in
  Alcotest.(check bool) "double begin rejected" true
    (match History.well_formed double with Error _ -> true | Ok () -> false)

let test_commits_before_begin () =
  Alcotest.(check (list (pair int int))) "H1 precedence" [ (1, 2) ]
    (History.commits_before_begin h1);
  Alcotest.(check (list (pair int int))) "H3 has no precedence pairs" []
    (History.commits_before_begin h3)

(* --- Runlog checkers --- *)

let record ?(session = 0) ?(table_set = [ "t" ]) ?(written = []) ?(keys = []) ?(epoch = 0)
    ?(lb_epoch = 0) ?(tier = Runlog.Strong) tid ~begin_ ~ack ~snapshot ~commit =
  {
    Runlog.tid;
    session;
    begin_time = begin_;
    ack_time = ack;
    snapshot_version = snapshot;
    commit_version = commit;
    epoch;
    lb_epoch;
    table_set;
    tier;
    tables_written = written;
    write_keys = keys;
    trace = None;
  }

let test_runlog_strong_ok () =
  let log =
    [
      record 1 ~begin_:0.0 ~ack:10.0 ~snapshot:0 ~commit:(Some 1) ~written:[ "t" ];
      record 2 ~begin_:11.0 ~ack:20.0 ~snapshot:1 ~commit:None;
    ]
  in
  Alcotest.(check int) "no violations" 0 (List.length (Runlog.strong_consistency log))

let test_runlog_strong_violation () =
  let log =
    [
      record 1 ~begin_:0.0 ~ack:10.0 ~snapshot:0 ~commit:(Some 1) ~written:[ "t" ];
      record 2 ~begin_:11.0 ~ack:20.0 ~snapshot:0 ~commit:None;
    ]
  in
  Alcotest.(check int) "stale snapshot detected" 1
    (List.length (Runlog.strong_consistency log));
  (* Overlapping transactions are unconstrained. *)
  let overlapping =
    [
      record 1 ~begin_:0.0 ~ack:10.0 ~snapshot:0 ~commit:(Some 1) ~written:[ "t" ];
      record 2 ~begin_:5.0 ~ack:20.0 ~snapshot:0 ~commit:None;
    ]
  in
  Alcotest.(check int) "overlap not flagged" 0
    (List.length (Runlog.strong_consistency overlapping))

let test_runlog_fine_scoping () =
  (* T1 writes table "a"; T2's table-set is {"b"}: a stale snapshot is
     fine under the table-set-scoped property but not the full one. *)
  let log =
    [
      record 1 ~begin_:0.0 ~ack:10.0 ~snapshot:0 ~commit:(Some 1) ~written:[ "a" ]
        ~table_set:[ "a" ];
      record 2 ~begin_:11.0 ~ack:20.0 ~snapshot:0 ~commit:None ~table_set:[ "b" ];
    ]
  in
  Alcotest.(check int) "full strong consistency violated" 1
    (List.length (Runlog.strong_consistency log));
  Alcotest.(check int) "table-set-scoped consistency holds" 0
    (List.length (Runlog.fine_strong_consistency log))

let test_runlog_session_scoping () =
  let log =
    [
      record ~session:1 1 ~begin_:0.0 ~ack:10.0 ~snapshot:0 ~commit:(Some 1)
        ~written:[ "t" ];
      record ~session:2 2 ~begin_:11.0 ~ack:20.0 ~snapshot:0 ~commit:None;
      record ~session:1 3 ~begin_:12.0 ~ack:21.0 ~snapshot:0 ~commit:None;
    ]
  in
  (* T2 is in another session: not a session violation. T3 is in T1's
     session and must see v1. *)
  let violations = Runlog.session_consistency log in
  Alcotest.(check int) "one session violation" 1 (List.length violations);
  match violations with
  | [ v ] -> Alcotest.(check int) "the same-session pair" 3 v.Runlog.second.Runlog.tid
  | _ -> Alcotest.fail "expected exactly one violation"

let test_runlog_fcw () =
  let log =
    [
      record 1 ~begin_:0.0 ~ack:10.0 ~snapshot:0 ~commit:(Some 1)
        ~keys:[ ("t", "k1") ] ~written:[ "t" ];
      record 2 ~begin_:1.0 ~ack:11.0 ~snapshot:0 ~commit:(Some 2)
        ~keys:[ ("t", "k1") ] ~written:[ "t" ];
    ]
  in
  Alcotest.(check int) "concurrent same-key commits flagged" 1
    (List.length (Runlog.first_committer_wins log));
  let ok =
    [
      record 1 ~begin_:0.0 ~ack:10.0 ~snapshot:0 ~commit:(Some 1)
        ~keys:[ ("t", "k1") ] ~written:[ "t" ];
      record 2 ~begin_:1.0 ~ack:11.0 ~snapshot:1 ~commit:(Some 2)
        ~keys:[ ("t", "k1") ] ~written:[ "t" ];
    ]
  in
  Alcotest.(check int) "serialized same-key commits ok" 0
    (List.length (Runlog.first_committer_wins ok))

let test_runlog_monotone_session () =
  let log =
    [
      record ~session:5 1 ~begin_:0.0 ~ack:10.0 ~snapshot:9 ~commit:None;
      record ~session:5 2 ~begin_:11.0 ~ack:20.0 ~snapshot:3 ~commit:None;
    ]
  in
  Alcotest.(check int) "snapshot regression flagged" 1
    (List.length (Runlog.monotone_session_snapshots log))

(* Property: the strong-consistency checker is monotone — raising a later
   transaction's snapshot version never introduces a violation. *)
let prop_strong_monotone_in_snapshot =
  QCheck.Test.make ~name:"runlog strong checker monotone in snapshot" ~count:100
    QCheck.(pair (int_range 0 5) (int_range 0 5))
    (fun (snap_lo, extra) ->
      let log snap =
        [
          record 1 ~begin_:0.0 ~ack:10.0 ~snapshot:0 ~commit:(Some 3) ~written:[ "t" ];
          record 2 ~begin_:11.0 ~ack:20.0 ~snapshot:snap ~commit:None;
        ]
      in
      let v lo = List.length (Runlog.strong_consistency (log lo)) in
      v (snap_lo + extra) <= v snap_lo)

(* --- Static SI serializability analysis --- *)

let test_si_write_skew_flagged () =
  (* The H3 shape: two transactions each read {x,y} and write one of
     them — the canonical SI write-skew. *)
  let profiles =
    [
      Si_analysis.profile ~name:"T1" ~reads:[ "x"; "y" ] ~writes:[ "x" ] ();
      Si_analysis.profile ~name:"T2" ~reads:[ "x"; "y" ] ~writes:[ "y" ] ();
    ]
  in
  Alcotest.(check bool) "write skew detected" false
    (Si_analysis.serializable_under_si profiles);
  match Si_analysis.dangerous_structures profiles with
  | [] -> Alcotest.fail "expected a dangerous structure"
  | d :: _ ->
    Alcotest.(check bool) "pivot is one of the two" true
      (d.Si_analysis.pivot = "T1" || d.Si_analysis.pivot = "T2")

let test_si_single_row_updates_safe () =
  (* The micro-benchmark shape: per-table point reads and blind
     read-modify-write updates. Concurrent updates of the same row
     write-write conflict, so no vulnerable rw path exists. *)
  let profiles =
    [
      Si_analysis.profile ~name:"read_t0" ~reads:[ "t0.val" ] ();
      Si_analysis.profile ~name:"upd_t0" ~writes:[ "t0.val" ] ();
      Si_analysis.profile ~name:"read_t1" ~reads:[ "t1.val" ] ();
      Si_analysis.profile ~name:"upd_t1" ~writes:[ "t1.val" ] ();
    ]
  in
  Alcotest.(check bool) "micro-benchmark serializable under SI" true
    (Si_analysis.serializable_under_si profiles)

let test_si_read_only_anomaly () =
  (* Fekete's checking/savings example: a read-only transaction makes an
     otherwise-serializable pair non-serializable. *)
  let deposit = Si_analysis.profile ~name:"deposit" ~reads:[ "sav" ] ~writes:[ "sav" ] () in
  let withdraw =
    Si_analysis.profile ~name:"withdraw" ~reads:[ "chk"; "sav" ] ~writes:[ "chk" ] ()
  in
  let report = Si_analysis.profile ~name:"report" ~reads:[ "chk"; "sav" ] () in
  Alcotest.(check bool) "without the report: serializable" true
    (Si_analysis.serializable_under_si [ deposit; withdraw ]);
  Alcotest.(check bool) "with the read-only report: anomaly possible" false
    (Si_analysis.serializable_under_si [ deposit; withdraw; report ])

let test_si_disjoint_safe () =
  let profiles =
    [
      Si_analysis.profile ~name:"a" ~reads:[ "x" ] ~writes:[ "x" ] ();
      Si_analysis.profile ~name:"b" ~reads:[ "y" ] ~writes:[ "y" ] ();
    ]
  in
  Alcotest.(check bool) "disjoint transactions serializable" true
    (Si_analysis.serializable_under_si profiles)

let test_si_edges () =
  let a = Si_analysis.profile ~name:"a" ~reads:[ "x" ] () in
  let b = Si_analysis.profile ~name:"b" ~writes:[ "x" ] () in
  let es = Si_analysis.edges [ a; b ] in
  Alcotest.(check bool) "a -rw-> b present" true
    (List.exists
       (fun e ->
         e.Si_analysis.src = "a" && e.Si_analysis.dst = "b" && e.Si_analysis.kind = `Rw)
       es);
  Alcotest.(check bool) "b -wr-> a present" true
    (List.exists
       (fun e ->
         e.Si_analysis.src = "b" && e.Si_analysis.dst = "a" && e.Si_analysis.kind = `Wr)
       es)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "check.histories",
      [
        Alcotest.test_case "H1: serializable, not strong" `Quick test_h1;
        Alcotest.test_case "H1: GSI-legal" `Quick test_h1_gsi_legal;
        Alcotest.test_case "H2: strong" `Quick test_h2;
        Alcotest.test_case "H3: strong + SI, not serializable" `Quick test_h3;
        Alcotest.test_case "first-committer-wins" `Quick test_first_committer_wins_violation;
        Alcotest.test_case "well-formedness" `Quick test_well_formed;
        Alcotest.test_case "commit-before-begin pairs" `Quick test_commits_before_begin;
      ] );
    ( "check.runlog",
      [
        Alcotest.test_case "strong ok" `Quick test_runlog_strong_ok;
        Alcotest.test_case "strong violation" `Quick test_runlog_strong_violation;
        Alcotest.test_case "fine-grained scoping" `Quick test_runlog_fine_scoping;
        Alcotest.test_case "session scoping" `Quick test_runlog_session_scoping;
        Alcotest.test_case "first-committer-wins" `Quick test_runlog_fcw;
        Alcotest.test_case "monotone session snapshots" `Quick test_runlog_monotone_session;
      ]
      @ qsuite [ prop_strong_monotone_in_snapshot ] );
    ( "check.si_analysis",
      [
        Alcotest.test_case "write skew flagged" `Quick test_si_write_skew_flagged;
        Alcotest.test_case "single-row updates safe" `Quick test_si_single_row_updates_safe;
        Alcotest.test_case "read-only anomaly" `Quick test_si_read_only_anomaly;
        Alcotest.test_case "disjoint safe" `Quick test_si_disjoint_safe;
        Alcotest.test_case "edge construction" `Quick test_si_edges;
      ] );
  ]

(* Certifier high availability (docs/PROTOCOL.md, "Certifier HA").

   The group machinery itself: primary->standby replication as real
   addressed network traffic (visible in the per-link counters, subject
   to fault injection, retransmitted under loss), commit release gated
   on the standby ack quorum, outage queueing order across a failover,
   automatic epoch-bumped promotion, epoch fencing of a dead history's
   stragglers, and reconciliation of a deposed primary back into the
   group. The bit-identity of [certifier_standbys = 0] with the pre-HA
   protocol is pinned by the golden tests in test_core.ml. *)

let params = { Workload.Microbench.tables = 4; rows = 100; update_types = 4 }

let ws_on table key =
  Storage.Writeset.of_entries
    [
      {
        Storage.Writeset.ws_table = table;
        ws_key = [| Storage.Value.Int key |];
        ws_op = Storage.Writeset.Put [| Storage.Value.Int key |];
      };
    ]

let ha_config =
  {
    Core.Config.default with
    replicas = 3;
    seed = 5;
    certifier_standbys = 2;
    service_jitter = false;
    gc_interval_ms = 0.0;
    hiccup_interval_ms = 0.0;
  }

(* Direct certifier-group harness: heartbeats/monitors stay off
   ([reliable = false]), so role changes happen only where the test
   scripts them. *)
let with_group ?(config = ha_config) ?faults ?(mode = Core.Consistency.Coarse) f =
  let engine = Sim.Engine.create () in
  let rng = Util.Rng.create 1 in
  let network =
    Sim.Network.create engine ~rng:(Util.Rng.split rng) ~base_ms:0.1 ~jitter_ms:0.0
      ~bandwidth_mbps:1000.0
  in
  (match faults with
  | Some make ->
    let fl = make engine in
    Sim.Network.set_faults network fl
  | None -> ());
  let certifier = Core.Certifier.create engine config ~rng ~network ~mode in
  Sim.Process.spawn engine (fun () -> f engine certifier network);
  Sim.Engine.run engine

let commit_or_fail c ~origin ~snapshot ~ws =
  match Core.Certifier.certify c ~origin ~snapshot ~ws with
  | Core.Certifier.Commit { version; epoch; _ } -> (version, epoch)
  | _ -> Alcotest.fail "disjoint writer aborted"

(* --- Replication on the wire (satellite: latency accounting) -------- *)

let test_standby_traffic_on_network () =
  (* Replication to standbys must be real traffic on the addressed
     primary->standby links — not an off-network latency fudge — and a
     commit must not be released before the ack quorum covers it. *)
  with_group (fun _engine c net ->
      for i = 1 to 20 do
        let version, _ = commit_or_fail c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i) in
        Alcotest.(check int) (Printf.sprintf "v%d in order" i) i version;
        (* Release gated on the quorum: both standbys acked the version
           by the time the decision reaches the client. *)
        for k = 1 to 2 do
          Alcotest.(check bool)
            (Printf.sprintf "standby %d acked v%d at release" k version)
            true
            (Core.Certifier.node_acked c k >= version)
        done
      done;
      let primary = Core.Config.node_certifier in
      let standby = Core.Config.node_cert_standby 1 in
      Alcotest.(check bool) "push messages on the data link" true
        (Sim.Network.link_messages net ~src:primary ~dst:standby > 0);
      Alcotest.(check bool) "push bytes on the data link" true
        (Sim.Network.link_bytes net ~src:primary ~dst:standby > 0);
      Alcotest.(check bool) "ack messages on the return link" true
        (Sim.Network.link_messages net ~src:standby ~dst:primary > 0);
      (* Both standby copies of the log reached the head. *)
      Alcotest.(check int) "standby 1 at head" (Core.Certifier.version c)
        (Core.Certifier.node_version c 1);
      Alcotest.(check int) "standby 2 at head" (Core.Certifier.version c)
        (Core.Certifier.node_version c 2))

let test_lossy_standby_link_retransmits () =
  (* Drops on the replication link hit the stop-and-wait transfer: the
     pusher pays retransmission timeouts but durability is never faked —
     every released commit is still covered by real acks. *)
  let dropped = ref None in
  let faults engine =
    let f = Sim.Faults.create ~seed:3 engine in
    Sim.Faults.set_link f ~src:Core.Config.node_certifier
      ~dst:(Core.Config.node_cert_standby 1)
      (Sim.Faults.spec ~drop:0.4 ());
    dropped := Some f;
    f
  in
  with_group ~faults (fun _engine c net ->
      for i = 1 to 30 do
        ignore (commit_or_fail c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i))
      done;
      let f = Option.get !dropped in
      Alcotest.(check bool) "drops actually fired" true (Sim.Faults.drops f > 0);
      Alcotest.(check bool) "pushes were retransmitted" true
        (Sim.Network.retransmits net > 0);
      Alcotest.(check int) "lossy standby still reached the head"
        (Core.Certifier.version c)
        (Core.Certifier.node_version c 1);
      Alcotest.(check bool) "acks cover the head" true
        (Core.Certifier.node_acked c 1 >= Core.Certifier.version c))

(* --- Outage queueing across a failover (satellite) ------------------ *)

let test_outage_queueing_preserves_order () =
  (* Requests arriving while the primary is down block on the revival
     queue; a failover must wake them in arrival order, interleaved
     origins and all, and decide them under the new epoch. *)
  let decided = ref [] in
  with_group (fun engine c _net ->
      ignore (commit_or_fail c ~origin:0 ~snapshot:0 ~ws:(ws_on "t" 1));
      Core.Certifier.crash c;
      for i = 0 to 5 do
        Sim.Process.spawn engine (fun () ->
            (* Distinct arrival instants, alternating origins. *)
            Sim.Process.sleep engine (10.0 +. float_of_int i);
            let version, epoch =
              commit_or_fail c ~origin:(i mod 2) ~snapshot:1 ~ws:(ws_on "t" (100 + i))
            in
            decided := (i, version, epoch) :: !decided)
      done;
      Sim.Process.sleep engine 50.0;
      Core.Certifier.failover c);
  let decided = List.sort compare !decided in
  Alcotest.(check int) "every queued request decided" 6 (List.length decided);
  List.iteri
    (fun i (arrival, version, epoch) ->
      Alcotest.(check int) "arrival order intact" i arrival;
      (* Versions assigned strictly in arrival order: FIFO across the
         outage, no origin starved by the interleaving. *)
      Alcotest.(check int)
        (Printf.sprintf "arrival %d got version %d" arrival (2 + i))
        (2 + i) version;
      Alcotest.(check int) "decided under the new epoch" 1 epoch)
    decided

(* --- Eviction rejoin watermark (satellite) -------------------------- *)

let test_evicted_rejoin_reenters_at_applied () =
  (* An evicted replica that rejoins after state transfer re-enters the
     watermark table at its transferred version — re-entering at 0 (the
     old behaviour) pinned the GC floor at the log base until its next
     heartbeat. *)
  let config =
    { ha_config with Core.Config.certifier_standbys = 0; evict_after_ms = 100.0 }
  in
  with_group ~config (fun engine c _net ->
      Core.Certifier.subscribe c ~replica:0 (fun ~epoch:_ _ -> ());
      Core.Certifier.subscribe c ~replica:1 (fun ~epoch:_ _ -> ());
      for i = 1 to 8 do
        ignore (commit_or_fail c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i))
      done;
      Core.Certifier.heartbeat c ~replica:0 ~applied:8;
      Core.Certifier.heartbeat c ~replica:1 ~applied:2;
      Core.Certifier.mark_down c ~replica:1;
      Sim.Process.sleep engine 200.0;
      Core.Certifier.gc c;
      Alcotest.(check bool) "silent corpse evicted" true
        (Core.Certifier.needs_state_transfer c ~replica:1);
      Alcotest.(check int) "floor released by the eviction" 8
        (Core.Certifier.min_watermark c);
      Core.Certifier.mark_up ~applied:8 c ~replica:1;
      Alcotest.(check int) "rejoined at the transferred version" 8
        (Core.Certifier.watermark c ~replica:1);
      Alcotest.(check int) "GC floor does not collapse to 0" 8
        (Core.Certifier.min_watermark c))

(* --- Reconciliation of a deposed primary ---------------------------- *)

let test_deposed_primary_reconciles_and_refollows () =
  (* After a failover, the old primary's unreleased tail is dead
     history: on revival it must truncate to the promotion point, adopt
     the ruling epoch, and re-follow to an identical log copy. *)
  with_group (fun engine c _net ->
      for i = 1 to 10 do
        ignore (commit_or_fail c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i))
      done;
      Core.Certifier.crash c;
      Sim.Process.sleep engine 5.0;
      Core.Certifier.failover c;
      let new_primary = Core.Certifier.primary_index c in
      Alcotest.(check bool) "role moved" true (new_primary <> 0);
      for i = 11 to 20 do
        ignore (commit_or_fail c ~origin:0 ~snapshot:(i - 1) ~ws:(ws_on "t" i))
      done;
      Core.Certifier.revive_node c 0;
      (* Let replication drag the deposed member back to the head. *)
      Sim.Process.sleep engine 100.0;
      Alcotest.(check int) "deposed member adopted the ruling epoch"
        (Core.Certifier.current_epoch c)
        (Core.Certifier.node_epoch c 0);
      Alcotest.(check int) "deposed member re-followed to the head"
        (Core.Certifier.version c)
        (Core.Certifier.node_version c 0);
      (* Structural identity of the log copies: no divergent entry may
         survive reconciliation. *)
      let reference = Hashtbl.create 32 in
      List.iter
        (fun (v, ws) -> Hashtbl.replace reference v (Storage.Writeset.entries ws))
        (Core.Certifier.node_log c new_primary);
      List.iter
        (fun (v, ws) ->
          match Hashtbl.find_opt reference v with
          | None -> ()
          | Some entries ->
            Alcotest.(check bool) (Printf.sprintf "log entry v%d identical" v) true
              (entries = Storage.Writeset.entries ws))
        (Core.Certifier.node_log c 0))

(* --- Automatic promotion, end to end -------------------------------- *)

let auto_config =
  Core.Config.hardened
    {
      Core.Config.default with
      replicas = 3;
      seed = 21;
      record_log = true;
      certifier_standbys = 2;
      gc_interval_ms = 0.0;
      hiccup_interval_ms = 0.0;
    }

let test_automatic_promotion_end_to_end () =
  (* Kill the primary under load with no scripted failover: a standby's
     failure detector must promote it, commits must resume under the
     bumped epoch, and the whole history must stay strongly consistent
     and epoch-fenced. *)
  let cluster =
    Core.Cluster.create ~config:auto_config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  let engine = Core.Cluster.engine cluster in
  let certifier = Core.Cluster.certifier cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  let version_at_crash = ref 0 in
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      version_at_crash := Core.Certifier.version certifier;
      Core.Cluster.crash_certifier cluster;
      (* No manual failover: detection + promotion are on their own. *)
      Sim.Process.sleep engine 700.0;
      Core.Cluster.revive_certifier_node cluster 0);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  Alcotest.(check bool) "a standby promoted itself" true
    (Core.Certifier.promotions certifier >= 1);
  Alcotest.(check bool) "epoch advanced" true (Core.Certifier.current_epoch certifier >= 1);
  Alcotest.(check bool) "the old primary is not in charge" true
    (Core.Certifier.primary_index certifier <> 0);
  Alcotest.(check bool) "commits resumed after the promotion" true
    (Core.Certifier.version certifier > !version_at_crash + 100);
  (* The revived ex-primary reconciled back into the group. *)
  Alcotest.(check int) "revived member adopted the ruling epoch"
    (Core.Certifier.current_epoch certifier)
    (Core.Certifier.node_epoch certifier 0);
  let log = Core.Cluster.records cluster in
  Alcotest.(check int) "strong consistency across the promotion" 0
    (List.length (Check.Runlog.strong_consistency log));
  Alcotest.(check int) "first-committer-wins held" 0
    (List.length (Check.Runlog.first_committer_wins log));
  Alcotest.(check int) "commit versions epoch-fenced" 0
    (List.length (Check.Runlog.epoch_fencing log))

(* --- Epoch fencing -------------------------------------------------- *)

let test_replica_fences_stale_epoch_refresh () =
  (* A deposed primary's late refresh batch must be dropped whole; a
     newer epoch is adopted. *)
  let engine = Sim.Engine.create () in
  let config = { ha_config with Core.Config.certifier_standbys = 0 } in
  let db = Storage.Database.create () in
  List.iter
    (fun s -> ignore (Storage.Database.create_table db s))
    (Workload.Microbench.schemas params);
  Workload.Microbench.load params db;
  let replica = Core.Replica.create engine config ~rng:(Util.Rng.create 3) ~id:0 db in
  Core.Replica.start replica;
  let item v =
    ( None,
      v,
      Storage.Writeset.of_entries
        [
          {
            Storage.Writeset.ws_table = "t00";
            ws_key = [| Storage.Value.Int v |];
            ws_op =
              Storage.Writeset.Put
                [| Storage.Value.Int v; Storage.Value.Int 0; Storage.Value.Text "" |];
          };
        ] )
  in
  Sim.Process.spawn engine (fun () ->
      Core.Replica.receive_refresh_batch ~epoch:2 replica [ item 1 ];
      (* Stragglers from the dead epoch: fenced, not applied. *)
      Core.Replica.receive_refresh_batch ~epoch:1 replica [ item 2; item 3 ];
      Core.Replica.receive_refresh_batch ~epoch:2 replica [ item 2 ]);
  Sim.Engine.run engine;
  Alcotest.(check int) "newer epoch adopted" 2 (Core.Replica.cert_epoch replica);
  Alcotest.(check int) "one stale batch fenced" 1 (Core.Replica.fenced_refreshes replica);
  Alcotest.(check int) "only ruling-history versions applied" 2
    (Core.Replica.v_local replica)

let fence_record ?(epoch = 0) tid ~commit =
  {
    Check.Runlog.tid;
    session = 0;
    begin_time = float_of_int tid;
    ack_time = float_of_int tid +. 1.0;
    snapshot_version = 0;
    commit_version = Some commit;
    epoch;
    lb_epoch = 0;
    table_set = [ "t" ];
    tier = Check.Runlog.Strong;
    tables_written = [ "t" ];
    write_keys = [];
    trace = None;
  }

let test_epoch_fencing_checker () =
  (* Clean: each epoch's versions sit strictly above the previous
     epoch's. *)
  let clean =
    [
      fence_record 1 ~epoch:0 ~commit:1;
      fence_record 2 ~epoch:0 ~commit:2;
      fence_record 3 ~epoch:1 ~commit:3;
      fence_record 4 ~epoch:2 ~commit:4;
    ]
  in
  Alcotest.(check int) "monotone epochs pass" 0
    (List.length (Check.Runlog.epoch_fencing clean));
  (* A version released under epoch 0 re-assigned under epoch 1: the
     split-brain signature the fence exists to kill. *)
  let overlap =
    [
      fence_record 1 ~epoch:0 ~commit:1;
      fence_record 2 ~epoch:0 ~commit:5;
      fence_record 3 ~epoch:1 ~commit:5;
    ]
  in
  Alcotest.(check bool) "cross-epoch version reuse flagged" true
    (List.length (Check.Runlog.epoch_fencing overlap) > 0)

let suites =
  [
    ( "core.certha",
      [
        Alcotest.test_case "standby replication rides the network" `Quick
          test_standby_traffic_on_network;
        Alcotest.test_case "lossy standby link retransmits" `Quick
          test_lossy_standby_link_retransmits;
        Alcotest.test_case "outage queueing preserves arrival order" `Quick
          test_outage_queueing_preserves_order;
        Alcotest.test_case "evicted rejoin re-enters at applied version" `Quick
          test_evicted_rejoin_reenters_at_applied;
        Alcotest.test_case "deposed primary reconciles and re-follows" `Quick
          test_deposed_primary_reconciles_and_refollows;
        Alcotest.test_case "automatic promotion end to end" `Quick
          test_automatic_promotion_end_to_end;
        Alcotest.test_case "replica fences stale-epoch refresh" `Quick
          test_replica_fences_stale_epoch_refresh;
        Alcotest.test_case "epoch fencing checker" `Quick test_epoch_fencing_checker;
      ] );
  ]

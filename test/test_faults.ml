(* Crash-recovery tests (the paper's fault-tolerance model, §IV). *)

let params = { Workload.Microbench.tables = 4; rows = 100; update_types = 4 }

let config =
  {
    Core.Config.default with
    replicas = 3;
    seed = 77;
    record_log = true;
    gc_interval_ms = 0.0;
    hiccup_interval_ms = 0.0;
  }

let make_cluster mode =
  Core.Cluster.create ~config ~mode
    ~schemas:(Workload.Microbench.schemas params)
    ~load:(Workload.Microbench.load params)
    ()

let test_crash_then_recover_catches_up () =
  let cluster = make_cluster Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  (* Crash replica 2 at t=500ms, recover at t=1500ms. *)
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      Core.Cluster.crash_replica cluster 2;
      Sim.Process.sleep engine 1_000.0;
      Core.Cluster.recover_replica cluster 2);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  (* After the run, the recovered replica must have caught up with the
     certifier's history (allowing only for in-flight tail). *)
  let certified = Core.Certifier.version (Core.Cluster.certifier cluster) in
  let recovered = Core.Replica.v_local (Core.Cluster.replica cluster 2) in
  Alcotest.(check bool)
    (Printf.sprintf "recovered replica caught up (v_local %d, certified %d)" recovered
       certified)
    true
    (certified - recovered < 20);
  Alcotest.(check bool) "progress was made" true (certified > 100);
  Alcotest.(check bool) "replica is live again" true
    (not (Core.Replica.is_crashed (Core.Cluster.replica cluster 2)))

let test_crash_preserves_strong_consistency () =
  let cluster = make_cluster Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 600.0;
      Core.Cluster.crash_replica cluster 1;
      Sim.Process.sleep engine 800.0;
      Core.Cluster.recover_replica cluster 1);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "committed through the failure" true (List.length log > 100);
  (match Check.Runlog.strong_consistency log with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "strong consistency violated across crash: %s"
      (Format.asprintf "%a" Check.Runlog.pp_violation v));
  match Check.Runlog.first_committer_wins log with
  | [] -> ()
  | _ -> Alcotest.fail "write-write conflict slipped through during failure"

let test_crash_during_eager_does_not_wedge () =
  (* The certifier drops a crashed replica from the eager ack set, so
     commits keep completing. *)
  let cluster = make_cluster Core.Consistency.Eager in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      Core.Cluster.crash_replica cluster 0);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_000.0;
  let metrics = Core.Cluster.metrics cluster in
  Alcotest.(check bool) "eager cluster kept committing" true
    (Core.Metrics.committed metrics > 100)

let test_client_requests_survive_crash () =
  (* Transactions in flight on the crashed replica abort; clients retry
     and eventually succeed on the survivors. *)
  let cluster = make_cluster Core.Consistency.Session in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      Core.Cluster.crash_replica cluster 2);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_000.0;
  let metrics = Core.Cluster.metrics cluster in
  Alcotest.(check bool) "throughput continued" true (Core.Metrics.committed metrics > 100);
  Alcotest.(check int) "no client gave up" 0 (Core.Metrics.retry_exhausted metrics)

let test_recovery_replays_missed_writesets () =
  (* Direct unit check of the replay path: commit a known update while a
     replica is down, recover, and read the value there. *)
  let cluster = make_cluster Core.Consistency.Coarse in
  let engine = Core.Cluster.engine cluster in
  let update =
    Core.Transaction.make ~profile:"upd"
      [
        Storage.Query.Update_key
          {
            table = "t00";
            key = [| Storage.Value.Int 5 |];
            set = [ ("val", Storage.Expr.i 4242) ];
          };
      ]
  in
  Sim.Process.spawn engine (fun () ->
      Core.Cluster.crash_replica cluster 2;
      (match Core.Cluster.submit cluster ~sid:0 update with
      | Core.Transaction.Committed _ -> ()
      | Core.Transaction.Aborted _ -> Alcotest.fail "update aborted");
      Core.Cluster.recover_replica cluster 2);
  Sim.Engine.run engine;
  let db = Core.Replica.database (Core.Cluster.replica cluster 2) in
  Alcotest.(check int) "replica 2 replayed the missed commit" 1
    (Storage.Database.version db);
  match
    Storage.Table.read (Storage.Database.table db "t00") ~key:[| Storage.Value.Int 5 |]
      ~at:1
  with
  | Some row -> Alcotest.(check int) "value replayed" 4242 (Storage.Value.as_int row.(1))
  | None -> Alcotest.fail "row missing after replay"

let test_state_transfer_after_log_prune () =
  (* Crash a replica, let the cluster run long past the certifier's
     pruned log horizon, then recover: recovery must fall back to a
     checkpoint state transfer and still converge. *)
  let config =
    { config with Core.Config.gc_interval_ms = 200.0; gc_window = 50 }
  in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 300.0;
      Core.Cluster.crash_replica cluster 2;
      Sim.Process.sleep engine 2_000.0;
      (* By now the log horizon is far beyond replica 2's version. *)
      let certifier = Core.Cluster.certifier cluster in
      let stale = Core.Replica.v_local (Core.Cluster.replica cluster 2) in
      Alcotest.(check bool) "log was pruned past the outage" true
        (Core.Certifier.log_base certifier > stale);
      Alcotest.(check bool) "log replay unavailable" true
        (Core.Certifier.writesets_from certifier stale = None);
      Core.Cluster.recover_replica cluster 2);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:4_000.0;
  let r2 = Core.Cluster.replica cluster 2 in
  Alcotest.(check bool) "replica 2 live" true (not (Core.Replica.is_crashed r2));
  let certified = Core.Certifier.version (Core.Cluster.certifier cluster) in
  Alcotest.(check bool)
    (Printf.sprintf "caught up after state transfer (v%d of v%d)"
       (Core.Replica.v_local r2) certified)
    true
    (certified - Core.Replica.v_local r2 < 20)

let test_certifier_failover () =
  (* Crash the certifier primary under load; update transactions stall,
     the standby takes over with no lost decisions, and strong
     consistency holds across the failover. *)
  let config = { config with Core.Config.certifier_standbys = 2 } in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  let version_at_crash = ref 0 in
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 500.0;
      version_at_crash := Core.Certifier.version (Core.Cluster.certifier cluster);
      Core.Cluster.crash_certifier cluster;
      Sim.Process.sleep engine 400.0;
      (* Only certifications already in flight at the crash may still be
         decided (at most one per client); new requests must queue. *)
      let during = Core.Certifier.version (Core.Cluster.certifier cluster) in
      Alcotest.(check bool)
        (Printf.sprintf "only in-flight decisions during outage (%d -> %d)"
           !version_at_crash during)
        true
        (during - !version_at_crash <= 10);
      Core.Cluster.failover_certifier cluster);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  let certifier = Core.Cluster.certifier cluster in
  Alcotest.(check int) "one failover" 1 (Core.Certifier.failovers certifier);
  Alcotest.(check bool) "commits resumed after failover" true
    (Core.Certifier.version certifier > !version_at_crash + 100);
  let log = Core.Cluster.records cluster in
  Alcotest.(check int) "strong consistency across certifier failover" 0
    (List.length (Check.Runlog.strong_consistency log));
  Alcotest.(check int) "no write-write conflicts slipped through" 0
    (List.length (Check.Runlog.first_committer_wins log))

let test_certifier_crash_requires_standby () =
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Alcotest.(check bool) "crash without standby rejected" true
    (try
       Core.Cluster.crash_certifier cluster;
       false
     with Invalid_argument _ -> true)

let test_replicas_converge_to_same_state () =
  (* After a loaded run drains, all replicas must hold identical data:
     compare content fingerprints at the lowest common version. *)
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Session
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:2_000.0;
  (* Let in-flight refresh propagation drain: run with no new client
     events beyond the horizon is not possible (closed loop), so compare
     at the minimum applied version across replicas. *)
  let min_v = ref max_int in
  for i = 0 to config.Core.Config.replicas - 1 do
    min_v := min !min_v (Core.Replica.v_local (Core.Cluster.replica cluster i))
  done;
  Alcotest.(check bool) "made progress" true (!min_v > 100);
  let reference =
    Storage.Database.fingerprint
      (Core.Replica.database (Core.Cluster.replica cluster 0))
      ~at:!min_v
  in
  for i = 1 to config.Core.Config.replicas - 1 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d converged at v%d" i !min_v)
      reference
      (Storage.Database.fingerprint
         (Core.Replica.database (Core.Cluster.replica cluster i))
         ~at:!min_v)
  done

(* --- hardened protocol under injected network faults ------------- *)

let hardened_config = Core.Config.hardened config

let test_detector_transitions () =
  (* Pure failure-detector state machine: Alive -> Suspect -> Dead on
     silence, back to Alive on any contact. *)
  let lb = Core.Load_balancer.create hardened_config ~mode:Core.Consistency.Coarse in
  let check_health msg expected =
    let show = function
      | Core.Load_balancer.Alive -> "alive"
      | Core.Load_balancer.Suspect -> "suspect"
      | Core.Load_balancer.Dead -> "dead"
    in
    Alcotest.(check string) msg (show expected) (show (Core.Load_balancer.health lb ~replica:0))
  in
  (* Keep the other replicas chatty so every event below is replica 0's. *)
  let keep_others_alive now =
    for r = 1 to config.Core.Config.replicas - 1 do
      Core.Load_balancer.note_contact lb ~replica:r ~now
    done
  in
  check_health "starts alive" Core.Load_balancer.Alive;
  Core.Load_balancer.note_contact lb ~replica:0 ~now:100.0;
  keep_others_alive 150.0;
  Core.Load_balancer.sweep lb ~now:150.0;
  check_health "recent contact keeps it alive" Core.Load_balancer.Alive;
  (* suspect_after_ms = 80, dead_after_ms = 400 *)
  keep_others_alive 200.0;
  Core.Load_balancer.sweep lb ~now:200.0;
  check_health "80ms of silence suspects" Core.Load_balancer.Suspect;
  Alcotest.(check int) "suspect event counted" 1 (Core.Load_balancer.suspect_events lb);
  keep_others_alive 250.0;
  Core.Load_balancer.sweep lb ~now:250.0;
  Alcotest.(check int) "no double count while already suspect" 1
    (Core.Load_balancer.suspect_events lb);
  Core.Load_balancer.note_contact lb ~replica:0 ~now:260.0;
  check_health "contact un-suspects" Core.Load_balancer.Alive;
  keep_others_alive 700.0;
  Core.Load_balancer.sweep lb ~now:700.0;
  check_health "400ms of silence kills" Core.Load_balancer.Dead;
  Alcotest.(check int) "failover event counted" 1 (Core.Load_balancer.failover_events lb);
  Core.Load_balancer.note_contact lb ~replica:0 ~now:710.0;
  check_health "contact resurrects even from dead" Core.Load_balancer.Alive

let test_detector_routes_around_suspects () =
  let lb = Core.Load_balancer.create hardened_config ~mode:Core.Consistency.Coarse in
  (* Silence replica 0 into Suspect (90ms quiet: past suspect_after_ms
     but well short of dead_after_ms); keep the others chatty. *)
  Core.Load_balancer.note_contact lb ~replica:0 ~now:410.0;
  Core.Load_balancer.note_contact lb ~replica:1 ~now:500.0;
  Core.Load_balancer.note_contact lb ~replica:2 ~now:500.0;
  Core.Load_balancer.sweep lb ~now:500.0;
  Alcotest.(check bool) "replica 0 suspect" true
    (Core.Load_balancer.health lb ~replica:0 = Core.Load_balancer.Suspect);
  for sid = 0 to 19 do
    let r = Core.Load_balancer.choose_replica lb ~sid in
    Alcotest.(check bool) "suspect not routed while alives exist" true (r <> 0);
    Core.Load_balancer.note_dispatch lb ~replica:r
  done;
  (* With every replica suspect, routing falls back to the suspects
     rather than failing. *)
  Core.Load_balancer.sweep lb ~now:2_000.0;
  let r = Core.Load_balancer.choose_replica lb ~sid:0 in
  Alcotest.(check bool) "suspect routable as fallback" true (r >= 0 && r < 3)

let run_hardened ?(config = hardened_config) ?(measure_ms = 2_000.0) ~plan mode =
  let cluster =
    Core.Cluster.create ~config
      ~faults:(fun e -> plan e)
      ~mode
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:0.0 ~measure_ms;
  cluster

let test_lossy_refresh_repair_and_dedup () =
  (* An extremely lossy, duplicating certifier->replica link: refresh
     batches are dropped and delivered twice; repair must fill the gaps,
     dedup must ignore the copies, and all replicas must converge to
     identical contents. *)
  let plan e =
    let f = Sim.Faults.create ~seed:4 e in
    Sim.Faults.set_link f ~src:Core.Config.node_certifier ~dst:Sim.Faults.any
      (Sim.Faults.spec ~drop:0.3 ~duplicate:0.2 ());
    f
  in
  let cluster = run_hardened ~plan Core.Consistency.Session in
  let metrics = Core.Cluster.metrics cluster in
  Alcotest.(check bool) "faults actually fired" true
    (Core.Metrics.fault_drops metrics > 50 && Core.Metrics.fault_duplicates metrics > 20);
  Alcotest.(check bool) "repair retransmitted" true (Core.Metrics.retransmits metrics > 0);
  Alcotest.(check bool) "throughput survived" true
    (Core.Metrics.committed metrics > 100);
  (* Drain with the link still lossy: repair alone must converge the
     replicas, then contents must be identical at the common version. *)
  let engine = Core.Cluster.engine cluster in
  let certified = Core.Certifier.version (Core.Cluster.certifier cluster) in
  Sim.Engine.run engine ~until:(Sim.Engine.now engine +. 1_000.0);
  let min_v = ref max_int in
  for i = 0 to 2 do
    let v = Core.Replica.v_local (Core.Cluster.replica cluster i) in
    Alcotest.(check bool)
      (Printf.sprintf "replica %d passed pre-drain certified version (v%d of v%d)" i v
         certified)
      true (v >= certified);
    min_v := min !min_v v
  done;
  let reference =
    Storage.Database.fingerprint
      (Core.Replica.database (Core.Cluster.replica cluster 0))
      ~at:!min_v
  in
  for i = 1 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d converged" i)
      reference
      (Storage.Database.fingerprint
         (Core.Replica.database (Core.Cluster.replica cluster i))
         ~at:!min_v)
  done

let test_partition_suspects_then_recovers () =
  (* Cut replica 2 off mid-run: the detector must suspect (and at this
     length, kill) it, traffic must keep flowing, and after the heal the
     replica must rejoin and catch up without manual intervention. *)
  let plan e =
    let f = Sim.Faults.create ~seed:9 e in
    Sim.Faults.partition f ~a:[ 2 ] ~b:[] ~from_ms:500.0 ~until_ms:1_300.0 ();
    f
  in
  let cluster = run_hardened ~plan ~measure_ms:2_500.0 Core.Consistency.Coarse in
  let metrics = Core.Cluster.metrics cluster in
  Alcotest.(check bool) "partitioned replica was suspected" true
    (Core.Metrics.suspects metrics >= 1);
  Alcotest.(check bool) "declared dead (800ms > dead_after)" true
    (Core.Metrics.failovers metrics >= 1);
  Alcotest.(check bool) "cluster kept committing" true
    (Core.Metrics.committed metrics > 200);
  Alcotest.(check int) "no client gave up" 0 (Core.Metrics.retry_exhausted metrics);
  (* After the heal + drain the replica is back in the certifier's live
     set and caught up. *)
  let certified = Core.Certifier.version (Core.Cluster.certifier cluster) in
  let v2 = Core.Replica.v_local (Core.Cluster.replica cluster 2) in
  Alcotest.(check bool)
    (Printf.sprintf "rejoined and caught up (v%d of v%d)" v2 certified)
    true
    (certified - v2 < 50);
  Alcotest.(check bool) "marked live at the certifier again" true
    (Core.Certifier.is_marked_live (Core.Cluster.certifier cluster) ~replica:2)

let test_eviction_unblocks_gc_and_forces_state_transfer () =
  (* A replica that stays dead past evict_after_ms loses its watermark
     entry: the certifier's log GC advances past it, and its eventual
     rejoin is forced through checkpoint state transfer. *)
  let config =
    {
      hardened_config with
      Core.Config.gc_interval_ms = 100.0;
      gc_window = 50;
      watermark_slack = 50;
      evict_after_ms = 600.0;
    }
  in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  let engine = Core.Cluster.engine cluster in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Sim.Process.spawn engine (fun () ->
      Sim.Process.sleep engine 300.0;
      Core.Cluster.crash_replica cluster 2;
      Sim.Process.sleep engine 1_200.0;
      (* Well past evict_after: the corpse must be out of the watermark
         table and the log pruned beyond its applied version. *)
      let certifier = Core.Cluster.certifier cluster in
      Alcotest.(check bool) "evicted" true (Core.Certifier.evictions certifier >= 1);
      Alcotest.(check bool) "flagged for state transfer" true
        (Core.Certifier.needs_state_transfer certifier ~replica:2);
      Alcotest.(check bool) "log GC advanced past the corpse" true
        (Core.Certifier.log_base certifier
        > Core.Replica.v_local (Core.Cluster.replica cluster 2));
      Core.Cluster.recover_replica cluster 2);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:3_000.0;
  let r2 = Core.Cluster.replica cluster 2 in
  Alcotest.(check bool) "rejoined" true (not (Core.Replica.is_crashed r2));
  let certified = Core.Certifier.version (Core.Cluster.certifier cluster) in
  Alcotest.(check bool)
    (Printf.sprintf "caught up after forced state transfer (v%d of v%d)"
       (Core.Replica.v_local r2) certified)
    true
    (certified - Core.Replica.v_local r2 < 50)

let test_backoff_defaults_off_and_works_when_on () =
  Alcotest.(check (float 0.0)) "default backoff base is 0" 0.0
    Core.Config.default.Core.Config.retry_backoff_ms;
  Alcotest.(check bool) "default is not reliable" false
    Core.Config.default.Core.Config.reliable;
  (* With backoff on and a conflict-heavy workload, clients still make
     progress and the run completes (the backoff sleeps draw from the
     client's own RNG stream only). *)
  let config = { config with Core.Config.retry_backoff_ms = 1.0; retry_backoff_max_ms = 16.0 } in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:1_000.0;
  Alcotest.(check bool) "committed with backoff enabled" true
    (Core.Metrics.committed (Core.Cluster.metrics cluster) > 100)

let test_abort_reason_breakdown () =
  (* Unit-level: the per-reason abort table sorts by count and the fault
     counters render in the summary. *)
  let e = Sim.Engine.create () in
  let m = Core.Metrics.create e in
  Core.Metrics.reset_window m;
  for _ = 1 to 3 do Core.Metrics.record_abort ~slug:"certification" m done;
  Core.Metrics.record_abort ~slug:"timeout" m;
  Core.Metrics.record_abort m;
  Alcotest.(check (list (pair string int)))
    "sorted by count desc"
    [ ("certification", 3); ("timeout", 1) ]
    (Core.Metrics.aborts_by_reason m);
  Alcotest.(check int) "unslugged still counted in total" 5 (Core.Metrics.aborted m);
  Core.Metrics.note_fault m `Drop;
  Core.Metrics.note_fault m `Duplicate;
  Core.Metrics.note_retransmits m 7;
  Core.Metrics.note_suspect m;
  let rendered = Format.asprintf "%a" Core.Metrics.pp_summary m in
  let contains sub =
    let n = String.length rendered and k = String.length sub in
    let rec at i = i + k <= n && (String.sub rendered i k = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "summary lists abort reasons" true (contains "certification=3");
  Alcotest.(check bool) "summary lists fault counters" true (contains "retransmits=7")

(* --- commit_local vs in-flight refresh apply ------------------------

   The certifier's repair resend can deliver version [v] as a refresh
   while the same transaction's decision leg is still in flight. If the
   decision lands in the window where the sequencer has already dequeued
   the refresh slot for [v] but not yet advanced V_local (mid-apply),
   commit_local inserts a Local slot at a version the sequencer will
   never revisit; it must be settled at publication or the submitter
   blocks on its ivar forever. *)

let make_replica_db () =
  let db = Storage.Database.create () in
  List.iter
    (fun s -> ignore (Storage.Database.create_table db s))
    (Workload.Microbench.schemas params);
  Workload.Microbench.load params db;
  db

let race_ws key =
  Storage.Writeset.of_entries
    [
      {
        Storage.Writeset.ws_table = "t00";
        ws_key = [| Storage.Value.Int key |];
        ws_op =
          Storage.Writeset.Put
            [| Storage.Value.Int key; Storage.Value.Int 0; Storage.Value.Text "" |];
      };
    ]

let check_settled ~what = function
  | None -> Alcotest.failf "%s: commit_local never ran" what
  | Some ivar -> (
    match Sim.Ivar.peek ivar with
    | Some (Ok _) -> ()
    | Some (Error _) -> Alcotest.failf "%s: raced commit reported an abort" what
    | None -> Alcotest.failf "%s: raced commit wedged (ivar never filled)" what)

let test_commit_local_races_serial_apply () =
  let engine = Sim.Engine.create () in
  let cfg = { config with Core.Config.service_jitter = false } in
  let replica =
    Core.Replica.create engine cfg ~rng:(Util.Rng.create 3) ~id:0 (make_replica_db ())
  in
  Core.Replica.start replica;
  let ws = race_ws 1 in
  let ivar = ref None in
  Sim.Process.spawn engine (fun () ->
      (* The repair resend delivers v1; the sequencer dequeues it at t=0
         and spends ws_apply_base_ms + ws_apply_row_ms (0.12ms) applying. *)
      Core.Replica.receive_refresh replica ~version:1 ~ws;
      (* The decision leg lands strictly inside that window. *)
      Sim.Process.sleep engine 0.05;
      ivar := Some (Core.Replica.commit_local replica ~version:1 ~ws));
  Sim.Engine.run engine;
  Alcotest.(check int) "v1 applied" 1 (Core.Replica.v_local replica);
  check_settled ~what:"serial" !ivar

let test_commit_local_races_group_apply () =
  let engine = Sim.Engine.create () in
  let cfg =
    { config with Core.Config.service_jitter = false; apply_parallelism = 2 }
  in
  let replica =
    Core.Replica.create engine cfg ~rng:(Util.Rng.create 3) ~id:0 (make_replica_db ())
  in
  Core.Replica.start replica;
  let ws1 = race_ws 1 and ws2 = race_ws 2 in
  let ivar = ref None in
  Sim.Process.spawn engine (fun () ->
      (* Two disjoint writesets drain as one parallel apply group. *)
      Core.Replica.receive_refresh replica ~version:1 ~ws:ws1;
      Core.Replica.receive_refresh replica ~version:2 ~ws:ws2;
      (* The decision leg for v2 lands while the group is in flight
         (slots dequeued, nothing published yet). *)
      Sim.Process.sleep engine 0.05;
      ivar := Some (Core.Replica.commit_local replica ~version:2 ~ws:ws2));
  Sim.Engine.run engine;
  Alcotest.(check int) "group published through v2" 2 (Core.Replica.v_local replica);
  check_settled ~what:"group" !ivar

let test_chaos_soak_smoke () =
  (* One cell of the chaos matrix end to end through the harness: the
     mixed plan must pass every checker and reproduce bit-identically. *)
  let r, same =
    Experiments.Chaos.reproducible ~mode:Core.Consistency.Fine
      ~plan:Experiments.Chaos.Mixed ~seed:3 ~duration_ms:1_200.0 ()
  in
  Alcotest.(check bool)
    (Format.asprintf "chaos run ok: %a" Experiments.Chaos.pp_result r)
    true (Experiments.Chaos.ok r);
  Alcotest.(check bool) "faults were injected" true (r.Experiments.Chaos.drops > 0);
  Alcotest.(check bool) "same seed, same runlog digest" true same

let test_chaos_clean_plan_soak () =
  (* The clean plan through the same harness: no faults fire, nothing
     retransmits, and every checker passes. *)
  let r =
    Experiments.Chaos.soak ~mode:Core.Consistency.Eager ~plan:Experiments.Chaos.Clean
      ~seed:1 ~duration_ms:1_000.0 ()
  in
  Alcotest.(check bool)
    (Format.asprintf "clean soak ok: %a" Experiments.Chaos.pp_result r)
    true (Experiments.Chaos.ok r);
  Alcotest.(check int) "no drops" 0 r.Experiments.Chaos.drops;
  Alcotest.(check int) "no duplicates" 0 r.Experiments.Chaos.duplicates

let suites =
  [
    ( "faults",
      [
        Alcotest.test_case "crash + recover catches up" `Quick
          test_crash_then_recover_catches_up;
        Alcotest.test_case "strong consistency across crash" `Quick
          test_crash_preserves_strong_consistency;
        Alcotest.test_case "eager does not wedge on crash" `Quick
          test_crash_during_eager_does_not_wedge;
        Alcotest.test_case "clients survive crash via retries" `Quick
          test_client_requests_survive_crash;
        Alcotest.test_case "recovery replays missed writesets" `Quick
          test_recovery_replays_missed_writesets;
        Alcotest.test_case "state transfer after log prune" `Quick
          test_state_transfer_after_log_prune;
        Alcotest.test_case "certifier failover" `Quick test_certifier_failover;
        Alcotest.test_case "certifier crash requires standby" `Quick
          test_certifier_crash_requires_standby;
        Alcotest.test_case "replicas converge" `Quick test_replicas_converge_to_same_state;
      ] );
    ( "faults.hardened",
      [
        Alcotest.test_case "detector transitions" `Quick test_detector_transitions;
        Alcotest.test_case "detector routes around suspects" `Quick
          test_detector_routes_around_suspects;
        Alcotest.test_case "lossy refresh repair + dedup" `Quick
          test_lossy_refresh_repair_and_dedup;
        Alcotest.test_case "partition suspect + rejoin" `Quick
          test_partition_suspects_then_recovers;
        Alcotest.test_case "eviction unblocks GC" `Quick
          test_eviction_unblocks_gc_and_forces_state_transfer;
        Alcotest.test_case "client backoff" `Quick test_backoff_defaults_off_and_works_when_on;
        Alcotest.test_case "abort breakdown + fault counters" `Quick
          test_abort_reason_breakdown;
        Alcotest.test_case "commit races serial refresh apply" `Quick
          test_commit_local_races_serial_apply;
        Alcotest.test_case "commit races group refresh apply" `Quick
          test_commit_local_races_group_apply;
        Alcotest.test_case "chaos soak smoke" `Quick test_chaos_soak_smoke;
        Alcotest.test_case "chaos clean plan" `Quick test_chaos_clean_plan_soak;
      ] );
  ]

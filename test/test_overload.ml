(* Overload protection (docs/PROTOCOL.md, "Overload & admission
   control"): open-loop arrivals, admission shedding, retry budgets,
   deadline propagation — and the metastable-failure regression pinning
   the protected-vs-unprotected contrast under the chaos harness's
   [Overload] plan.

   Everything runs end to end through [Core.Cluster]; tests configure
   knobs and offered load, never reach into the shedding paths. *)

let params = { Workload.Microbench.tables = 4; rows = 100; update_types = 4 }

let base_config =
  {
    Core.Config.default with
    replicas = 3;
    seed = 23;
    record_log = true;
    gc_interval_ms = 0.0;
    hiccup_interval_ms = 0.0;
  }

let make_cluster ?faults ~config mode =
  Core.Cluster.create ~config ?faults ~mode
    ~schemas:(Workload.Microbench.schemas params)
    ~load:(Workload.Microbench.load params)
    ()

(* Offer [rate_tps] open-loop for [duration_ms], then return the cluster
   after its post-load state has settled. *)
let run_open_loop ?faults ~config ~rate_tps ~duration_ms mode =
  let cluster = make_cluster ?faults ~config mode in
  Core.Client.open_loop_many cluster ~n:8 ~first_sid:0 ~rate_tps
    (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:0.0 ~measure_ms:duration_ms;
  cluster

(* --- Abort-reason classification ------------------------------------- *)

let test_overloaded_is_transient () =
  let t = Core.Transaction.abort_is_transient in
  Alcotest.(check bool)
    "Overloaded is transient" true
    (t (Core.Transaction.Overloaded { retry_after_ms = 5.0 }));
  Alcotest.(check bool) "Timeout is transient" true (t Core.Transaction.Timeout);
  Alcotest.(check bool)
    "Replica_failure is transient" true
    (t Core.Transaction.Replica_failure);
  Alcotest.(check bool)
    "Certification_conflict is not transient" false
    (t Core.Transaction.Certification_conflict);
  Alcotest.(check string)
    "reason slug" "overloaded"
    (Core.Transaction.abort_slug
       (Core.Transaction.Overloaded { retry_after_ms = 5.0 }))

(* --- Configuration validation ---------------------------------------- *)

let test_overload_config_validation () =
  let ok what c =
    match Core.Config.validate c with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s rejected: %s" what e
  in
  let rejected what c =
    match Core.Config.validate c with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error e ->
      Alcotest.(check bool) (what ^ " has a reason") true (String.length e > 0)
  in
  ok "defaults (all protections off)" base_config;
  ok "full protection stack"
    {
      base_config with
      Core.Config.admission_limit = 48;
      admission_rate_tps = 2_000.0;
      admission_burst = 16.0;
      cert_queue_bound = 24;
      apply_lag_gap = 200;
      retry_budget = 6.0;
      retry_budget_per_s = 2.0;
      deadline_ms = 500.0;
    };
  rejected "negative admission limit"
    { base_config with Core.Config.admission_limit = -1 };
  rejected "negative admission rate"
    { base_config with Core.Config.admission_rate_tps = -2.0 };
  rejected "token bucket without a whole token"
    { base_config with Core.Config.admission_rate_tps = 100.0; admission_burst = 0.5 };
  rejected "negative certifier queue bound"
    { base_config with Core.Config.cert_queue_bound = -3 };
  rejected "negative apply-lag gap"
    { base_config with Core.Config.apply_lag_gap = -1 };
  rejected "apply-lag gap at the flow-control slack"
    {
      base_config with
      Core.Config.apply_lag_gap = base_config.Core.Config.watermark_slack;
    };
  rejected "non-positive retry-after hint"
    { base_config with Core.Config.shed_retry_after_ms = 0.0 };
  rejected "negative retry budget"
    { base_config with Core.Config.retry_budget = -1.0 };
  rejected "retry budget with no refill"
    { base_config with Core.Config.retry_budget = 4.0; retry_budget_per_s = 0.0 };
  rejected "negative deadline"
    { base_config with Core.Config.deadline_ms = -10.0 }

(* --- Admission shedding: refusals, hints, zero zombies ---------------- *)

let test_admission_sheds_without_zombies () =
  let config =
    { base_config with Core.Config.admission_limit = 4; shed_retry_after_ms = 7.0 }
  in
  let cluster =
    run_open_loop ~config ~rate_tps:4_000.0 ~duration_ms:300.0
      Core.Consistency.Coarse
  in
  let m = Core.Cluster.metrics cluster in
  Alcotest.(check bool) "load was shed" true (Core.Metrics.shed m > 0);
  Alcotest.(check int)
    "metrics and cluster shed tids agree" (Core.Metrics.shed m)
    (Core.Cluster.shed_count cluster);
  Alcotest.(check bool)
    "queue depth observed" true
    (Core.Metrics.max_queue_depth m > 0);
  Alcotest.(check bool) "work still commits" true (Core.Metrics.committed m > 0);
  (* the zombie-commit invariant: no shed tid ever reaches the runlog *)
  List.iter
    (fun r ->
      if Core.Cluster.was_shed cluster ~tid:r.Check.Runlog.tid then
        Alcotest.failf "zombie commit: shed tid %d committed" r.Check.Runlog.tid)
    (Core.Cluster.records cluster)

(* --- Retry budgets: amplification is capped --------------------------- *)

let test_retry_budget_exhaustion () =
  let config =
    {
      base_config with
      Core.Config.admission_limit = 2;
      shed_retry_after_ms = 1.0;
      retry_budget = 2.0;
      retry_budget_per_s = 1.0;
    }
  in
  let cluster =
    run_open_loop ~config ~rate_tps:4_000.0 ~duration_ms:300.0
      Core.Consistency.Coarse
  in
  let m = Core.Cluster.metrics cluster in
  Alcotest.(check bool)
    "budgets ran dry" true
    (Core.Metrics.retry_budget_exhausted m > 0);
  Alcotest.(check bool) "cluster survived" true (Core.Metrics.committed m > 0)

(* --- Deadline propagation: a slow certifier drops expired work -------- *)

let test_deadline_expiry () =
  let config = { base_config with Core.Config.deadline_ms = 3.0 } in
  let faults engine =
    let f = Sim.Faults.create ~seed:11 engine in
    Sim.Faults.slow f ~node:Core.Config.node_certifier ~factor:40.0 ~from_ms:0.0
      ~until_ms:300.0;
    f
  in
  let cluster =
    run_open_loop ~faults ~config ~rate_tps:3_000.0 ~duration_ms:300.0
      Core.Consistency.Coarse
  in
  let m = Core.Cluster.metrics cluster in
  Alcotest.(check bool)
    "expired work was dropped" true
    (Core.Metrics.deadline_expired m > 0)

(* --- Open-loop determinism ------------------------------------------- *)

let test_open_loop_deterministic () =
  let digest_of () =
    let config =
      { base_config with Core.Config.admission_limit = 8; retry_budget = 4.0 }
    in
    let cluster =
      run_open_loop ~config ~rate_tps:2_000.0 ~duration_ms:250.0
        Core.Consistency.Coarse
    in
    ( Check.Runlog.digest (Core.Cluster.records cluster),
      Core.Metrics.shed (Core.Cluster.metrics cluster) )
  in
  let d1, s1 = digest_of () in
  let d2, s2 = digest_of () in
  Alcotest.(check string) "same seed, same runlog digest" d1 d2;
  Alcotest.(check int) "same seed, same shed count" s1 s2

(* --- Metastable-failure regression ----------------------------------- *)

(* The pinned scenario (docs/FAULTS.md, "Overload"): 6000 tps offered
   open-loop against a cluster whose certifier takes a 6x gray slowdown
   mid-run. Unprotected, the backlog built during the slowdown outlives
   the fault — the post-heal drain stays wedged. With the protection
   stack armed the cluster sheds its way through the window and recovers
   within one drain slice. *)
let test_metastable_regression () =
  let protected_arm =
    Experiments.Chaos.soak ~protections:true ~offered_tps:6_000.0
      ~mode:Core.Consistency.Coarse ~plan:Experiments.Chaos.Overload ~seed:1
      ~duration_ms:1_000.0 ()
  in
  let control =
    Experiments.Chaos.soak ~protections:false ~offered_tps:6_000.0
      ~mode:Core.Consistency.Coarse ~plan:Experiments.Chaos.Overload ~seed:1
      ~duration_ms:1_000.0 ()
  in
  (* protected arm: healthy under the same offered load *)
  Alcotest.(check bool) "protected arm ok" true (Experiments.Chaos.ok protected_arm);
  Alcotest.(check bool)
    "protected arm not wedged" false protected_arm.Experiments.Chaos.wedged;
  Alcotest.(check bool)
    "protected arm shed load" true
    (protected_arm.Experiments.Chaos.shed > 0);
  Alcotest.(check int)
    "protected arm has zero zombie commits" 0
    protected_arm.Experiments.Chaos.zombie_commits;
  Alcotest.(check int)
    "protected arm has zero violations" 0
    (List.fold_left
       (fun acc (_, n) -> acc + n)
       0 protected_arm.Experiments.Chaos.violations);
  (* control arm: the metastable collapse — strictly slower recovery *)
  Alcotest.(check int)
    "control arm sheds nothing" 0 control.Experiments.Chaos.shed;
  Alcotest.(check bool)
    "control arm degrades (wedged or strictly slower recovery)" true
    (control.Experiments.Chaos.wedged
    || control.Experiments.Chaos.wedge_drain_ms
       > protected_arm.Experiments.Chaos.wedge_drain_ms);
  Alcotest.(check bool)
    "retry storm: control aborts dwarf the protected arm's" true
    (control.Experiments.Chaos.aborted > 2 * protected_arm.Experiments.Chaos.aborted);
  Alcotest.(check bool)
    "protected arm commits at least as much" true
    (protected_arm.Experiments.Chaos.committed >= control.Experiments.Chaos.committed)

let suites =
  [
    ( "overload",
      [
        Alcotest.test_case "overloaded abort is transient" `Quick
          test_overloaded_is_transient;
        Alcotest.test_case "overload knob validation" `Quick
          test_overload_config_validation;
        Alcotest.test_case "admission sheds, zero zombies" `Quick
          test_admission_sheds_without_zombies;
        Alcotest.test_case "retry budget exhaustion" `Quick
          test_retry_budget_exhaustion;
        Alcotest.test_case "deadline expiry under gray certifier" `Quick
          test_deadline_expiry;
        Alcotest.test_case "open-loop arrivals are deterministic" `Quick
          test_open_loop_deterministic;
        Alcotest.test_case "metastable-failure regression" `Slow
          test_metastable_regression;
      ] );
  ]

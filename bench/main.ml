(* The full benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Table I, Figures 3-7) plus the ablation benches, printing the same
   rows/series the paper reports.

   Part 2 runs Bechamel micro-benchmarks of the core building blocks
   (certifier conflict check, writeset application, MVCC reads, query
   execution, history checking) so component-level regressions are
   visible independently of the system experiments.

   Set REPRO_QUICK=1 for a fast pass with smaller sweeps, and
   REPRO_BENCH_ONLY=1 to skip Part 1 and run only the Bechamel
   micro-benchmarks (the CI smoke configuration). *)

let env_flag name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let quick = env_flag "REPRO_QUICK"
let bench_only = env_flag "REPRO_BENCH_ONLY"

let say fmt = Printf.printf (fmt ^^ "\n%!")

let timed label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  say "[%s took %.1fs]" label (Unix.gettimeofday () -. t0);
  r

(* --- Part 1: paper tables and figures --- *)

let micro_params =
  if quick then { Workload.Microbench.default with rows = 2_000 }
  else Workload.Microbench.default

let micro_windows = if quick then (1_000.0, 4_000.0) else (2_000.0, 8_000.0)
let tpcw_windows = if quick then (3_000.0, 10_000.0) else (5_000.0, 20_000.0)
let replica_counts = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let run_table1 () = print_string (Experiments.Table1.render ())

let run_fig3 () =
  let warmup_ms, measure_ms = micro_windows in
  let update_points =
    if quick then [ 0; 10; 20; 40 ] else [ 0; 5; 10; 15; 20; 25; 30; 35; 40 ]
  in
  let points =
    Experiments.Fig3.run ~params:micro_params ~update_points ~warmup_ms ~measure_ms ()
  in
  print_string (Experiments.Fig3.render points)

let run_fig4 () =
  let warmup_ms, measure_ms = micro_windows in
  let results = Experiments.Fig4.run ~params:micro_params ~warmup_ms ~measure_ms () in
  print_string (Experiments.Fig4.render results)

let run_fig56 () =
  let warmup_ms, measure_ms = tpcw_windows in
  let points = Experiments.Tpcw_sweep.scaled ~replica_counts ~warmup_ms ~measure_ms () in
  print_string (Experiments.Fig5.render points);
  print_string (Experiments.Fig6.render points)

let run_fig7 () =
  let warmup_ms, measure_ms = tpcw_windows in
  let points = Experiments.Tpcw_sweep.fixed ~replica_counts ~warmup_ms ~measure_ms () in
  print_string (Experiments.Fig7.render points)

let run_ablations () =
  let measure_ms = if quick then 3_000.0 else 6_000.0 in
  print_string
    (Experiments.Ablation.render ~title:"Ablation: writeset shipping vs re-execution"
       (Experiments.Ablation.apply_vs_reexec ~measure_ms ()));
  print_string
    (Experiments.Ablation.render ~title:"Ablation: table-set granularity"
       (Experiments.Ablation.table_span ~measure_ms ()));
  print_string
    (Experiments.Ablation.render ~title:"Ablation: early certification"
       (Experiments.Ablation.early_certification ~measure_ms ()));
  print_string
    (Experiments.Ablation.render ~title:"Ablation: load-balancer routing"
       (Experiments.Ablation.routing ~measure_ms ()))

(* Extension workloads: one comparative run each (TPC-C, YCSB-A). *)
let run_extensions () =
  let header () = say "%-8s %9s %9s %8s %9s" "mode" "TPS" "resp(ms)" "abort%" "sync(ms)" in
  let row mode cluster =
    let m = Core.Cluster.metrics cluster in
    say "%-8s %9.0f %9.2f %8.2f %9.2f"
      (Core.Consistency.to_string mode)
      (Core.Metrics.throughput_tps m) (Core.Metrics.mean_response_ms m)
      (100.0 *. Core.Metrics.abort_rate m)
      (Core.Metrics.sync_delay_ms m)
  in
  say "%s" (Experiments.Report.section "Extension: TPC-C (8 warehouses, 40 terminals)");
  let tpcc_params = { Workload.Tpcc.default with Workload.Tpcc.warehouses = 8 } in
  header ();
  List.iter
    (fun mode ->
      let cluster =
        Core.Cluster.create
          ~config:{ Core.Config.default with replicas = 4 }
          ~mode ~schemas:Workload.Tpcc.schemas
          ~load:(Workload.Tpcc.load tpcc_params)
          ()
      in
      Core.Client.spawn_many cluster ~n:40 ~first_sid:0
        {
          (Workload.Tpcc.workload tpcc_params) with
          Core.Client.think_ms = Core.Client.exp_think ~mean_ms:100.0;
        };
      Core.Cluster.run_for cluster ~warmup_ms:1_000.0
        ~measure_ms:(if quick then 3_000.0 else 6_000.0);
      row mode cluster)
    Core.Consistency.all;
  say "%s" (Experiments.Report.section "Extension: YCSB-A (zipf 0.99, 40 clients)");
  header ();
  List.iter
    (fun mode ->
      let cluster =
        Core.Cluster.create
          ~config:{ Core.Config.default with replicas = 4 }
          ~mode
          ~schemas:(Workload.Ycsb.schemas Workload.Ycsb.default)
          ~load:(Workload.Ycsb.load Workload.Ycsb.default)
          ()
      in
      Core.Client.spawn_many cluster ~n:40 ~first_sid:0
        (Workload.Ycsb.workload Workload.Ycsb.default Workload.Ycsb.A);
      Core.Cluster.run_for cluster ~warmup_ms:1_000.0
        ~measure_ms:(if quick then 3_000.0 else 5_000.0);
      row mode cluster)
    Core.Consistency.all

(* --- Part 2: Bechamel component micro-benchmarks --- *)

let bench_fixture () =
  (* A populated standalone database for storage-level benches. *)
  let schema =
    Storage.Schema.make ~name:"bench"
      ~columns:
        [ ("id", Storage.Value.Tint); ("val", Storage.Value.Tint);
          ("tag", Storage.Value.Ttext) ]
      ~indexes:[ "tag" ] ~key:[ "id" ] ()
  in
  let db = Storage.Database.create () in
  ignore (Storage.Database.create_table db schema);
  Storage.Database.load db "bench"
    (List.init 10_000 (fun i ->
         [|
           Storage.Value.Int i; Storage.Value.Int (i * 7);
           Storage.Value.Text (Printf.sprintf "tag%d" (i mod 100));
         |]));
  db

let writeset_of_size n =
  Storage.Writeset.of_entries
    (List.init n (fun i ->
         {
           Storage.Writeset.ws_table = "bench";
           ws_key = [| Storage.Value.Int i |];
           ws_op =
             Storage.Writeset.Put
               [| Storage.Value.Int i; Storage.Value.Int 0; Storage.Value.Text "t" |];
         }))

let component_tests () =
  let open Bechamel in
  let db = bench_fixture () in
  let rng = Util.Rng.create 1 in
  let mvcc_point_read =
    Test.make ~name:"mvcc point read"
      (Staged.stage (fun () ->
           let key = [| Storage.Value.Int (Util.Rng.int rng 10_000) |] in
           ignore (Storage.Table.read (Storage.Database.table db "bench") ~key ~at:0)))
  in
  let txn_update =
    Test.make ~name:"txn update + writeset extraction"
      (Staged.stage (fun () ->
           let txn = Storage.Txn.begin_ db in
           ignore
             (Storage.Txn.update_key txn ~table:"bench"
                ~key:[| Storage.Value.Int (Util.Rng.int rng 10_000) |]
                ~set:[ ("val", Storage.Expr.i 1) ]);
           ignore (Storage.Txn.writeset txn)))
  in
  let index_select =
    Test.make ~name:"secondary-index select (~100 rows)"
      (Staged.stage (fun () ->
           let txn = Storage.Txn.begin_ db in
           let tag = Printf.sprintf "tag%d" (Util.Rng.int rng 100) in
           ignore
             (Storage.Txn.select txn ~table:"bench"
                ~where:Storage.Expr.(Col 2 = Const (Storage.Value.Text tag))
                ())))
  in
  let small = writeset_of_size 4 and big = writeset_of_size 64 in
  let ws_conflict =
    Test.make ~name:"writeset conflict check (4 vs 64)"
      (Staged.stage (fun () -> ignore (Storage.Writeset.conflicts small big)))
  in
  let checker =
    let log =
      List.init 200 (fun i ->
          {
            Check.Runlog.tid = i;
            session = i mod 10;
            begin_time = float_of_int i;
            ack_time = float_of_int i +. 0.5;
            snapshot_version = i;
            commit_version = (if i mod 2 = 0 then Some (i + 1) else None);
            epoch = 0;
            lb_epoch = 0;
            table_set = [ "t" ];
            tier = Check.Runlog.Strong;
            tables_written = (if i mod 2 = 0 then [ "t" ] else []);
            write_keys = (if i mod 2 = 0 then [ ("t", string_of_int i) ] else []);
            trace = None;
          })
    in
    Test.make ~name:"strong-consistency check (200 txns)"
      (Staged.stage (fun () -> ignore (Check.Runlog.strong_consistency log)))
  in
  let sim_events =
    Test.make ~name:"simulator: 1000 timer events"
      (Staged.stage (fun () ->
           let engine = Sim.Engine.create () in
           for i = 0 to 999 do
             Sim.Engine.schedule engine ~delay:(float_of_int i) (fun () -> ())
           done;
           Sim.Engine.run engine))
  in
  Test.make_grouped ~name:"components"
    [ mvcc_point_read; txn_update; index_select; ws_conflict; checker; sim_events ]

(* Certification conflict check, Linear log scan vs Keyed index probe,
   with the requesting snapshot 1 / 100 / 10k versions behind a
   10k-entry log. Fixtures come from the certindex experiment so the
   bench and the `repro certindex` sweep measure the same thing. *)
let certification_tests () =
  let open Bechamel in
  let versions = 10_000 and ws_rows = 4 in
  let linear =
    Experiments.Cert_index.build ~index:Core.Config.Linear ~versions ~ws_rows ()
  in
  let keyed =
    Experiments.Cert_index.build ~index:Core.Config.Keyed ~versions ~ws_rows ()
  in
  let ws = Experiments.Cert_index.probe ~versions ~ws_rows in
  let check certifier ~staleness =
    let snapshot = versions - staleness in
    Staged.stage (fun () ->
        ignore (Core.Certifier.check_conflict certifier ~snapshot ~ws))
  in
  Test.make_grouped ~name:"certification"
    (List.concat_map
       (fun staleness ->
         [
           Test.make
             ~name:(Printf.sprintf "linear, %d behind" staleness)
             (check linear ~staleness);
           Test.make
             ~name:(Printf.sprintf "keyed, %d behind" staleness)
             (check keyed ~staleness);
         ])
       [ 1; 100; 10_000 ])

(* Conflict probing over interned dense ids vs boxed (table, key)
   tuples — the two representations a writeset can carry depending on
   whether it was built against the group's intern table. Disjoint key
   ranges force the full scan (worst case for both). *)
let intern_tests () =
  let open Bechamel in
  let entries n offset =
    List.init n (fun i ->
        {
          Storage.Writeset.ws_table = "bench";
          ws_key = [| Storage.Value.Int (offset + i) |];
          ws_op = Storage.Writeset.Delete;
        })
  in
  let intern = Storage.Intern.create () in
  let boxed n offset = Storage.Writeset.of_entries (entries n offset) in
  let interned n offset = Storage.Writeset.of_entries ~intern (entries n offset) in
  let pair name a b =
    Test.make ~name (Staged.stage (fun () -> ignore (Storage.Writeset.conflicts a b)))
  in
  let probe_key = [| Storage.Value.Int 2 |] in
  Test.make_grouped ~name:"interning"
    [
      pair "conflict check, boxed tuples (4 vs 4)" (boxed 4 0) (boxed 4 5_000);
      pair "conflict check, interned ids (4 vs 4)" (interned 4 0) (interned 4 5_000);
      pair "conflict check, boxed tuples (4 vs 64)" (boxed 4 0) (boxed 64 10_000);
      pair "conflict check, interned ids (4 vs 64)" (interned 4 0)
        (interned 64 10_000);
      Test.make ~name:"intern probe, existing key"
        (Staged.stage (fun () ->
             ignore (Storage.Intern.find intern ~table:"bench" ~key:probe_key)));
    ]

(* Flat Bytes-based encoding vs the boxed Buffer codec, round-tripping
   the same logical payload; plus a full runlog-record append into the
   flat sink (the chaos-soak hot path). *)
let codec_tests () =
  let open Bechamel in
  let row =
    [| Storage.Value.Int 42; Storage.Value.Int 7; Storage.Value.Text "tag42" |]
  in
  let boxed_roundtrip =
    Test.make ~name:"row round-trip, boxed Buffer codec"
      (Staged.stage (fun () ->
           let buf = Buffer.create 64 in
           Storage.Codec.encode_row buf row;
           let r = Storage.Codec.reader (Buffer.contents buf) in
           ignore (Storage.Codec.decode_row r)))
  in
  let w = Storage.Codec.Flat.writer ~capacity:256 () in
  let flat_roundtrip =
    Test.make ~name:"fields round-trip, flat Bytes codec"
      (Staged.stage (fun () ->
           Storage.Codec.Flat.clear w;
           Storage.Codec.Flat.int w 42;
           Storage.Codec.Flat.int w 7;
           Storage.Codec.Flat.str w "tag42";
           let c = Storage.Codec.Flat.cursor w in
           ignore (Storage.Codec.Flat.read_int c);
           ignore (Storage.Codec.Flat.read_int c);
           ignore (Storage.Codec.Flat.read_str c)))
  in
  let record =
    {
      Check.Runlog.tid = 42;
      session = 3;
      begin_time = 1234.5;
      ack_time = 1236.0;
      snapshot_version = 41;
      commit_version = Some 43;
      epoch = 0;
      lb_epoch = 0;
      table_set = [ "bench" ];
      tier = Check.Runlog.Strong;
      tables_written = [ "bench" ];
      write_keys = [ ("bench", "42") ];
      trace = None;
    }
  in
  let sink = Check.Runlog.Sink.create ~capacity:1024 () in
  let sink_append =
    Test.make ~name:"runlog record append, flat sink"
      (Staged.stage (fun () ->
           Check.Runlog.Sink.clear sink;
           Check.Runlog.Sink.add sink record))
  in
  Test.make_grouped ~name:"codec"
    [ boxed_roundtrip; flat_roundtrip; sink_append ]

let run_bechamel () =
  let open Bechamel in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let report title test =
    let results = analyze (benchmark test) in
    say "%s" (Experiments.Report.section title);
    let rows = ref [] in
    Hashtbl.iter
      (fun name result ->
        match Bechamel.Analyze.OLS.estimates result with
        | Some [ est ] -> rows := (name, Printf.sprintf "%12.0f ns/run" est) :: !rows
        | Some _ | None -> rows := (name, "(no estimate)") :: !rows)
      results;
    List.iter
      (fun (name, cell) -> say "%-48s %s" name cell)
      (List.sort compare !rows)
  in
  report "Component micro-benchmarks (Bechamel)" (component_tests ());
  report "Certification index micro-benchmarks (Bechamel)" (certification_tests ());
  report "Interned vs boxed conflict keys (Bechamel)" (intern_tests ());
  report "Flat vs boxed codec (Bechamel)" (codec_tests ())

let () =
  say "Reproduction benchmarks — 'Strongly consistent replication for a bargain'";
  say "mode: %s%s (set REPRO_QUICK=1 for a fast pass)\n"
    (if quick then "quick" else "full")
    (if bench_only then ", micro-benches only" else "");
  if not bench_only then begin
    timed "table1" run_table1;
    timed "fig3" run_fig3;
    timed "fig4" run_fig4;
    timed "fig5+fig6" run_fig56;
    timed "fig7" run_fig7;
    timed "ablations" run_ablations;
    timed "extensions" run_extensions
  end;
  timed "bechamel" run_bechamel;
  say "\nDone. See EXPERIMENTS.md for the paper-vs-measured comparison."

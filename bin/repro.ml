(* repro — command-line driver for the replicated-database reproduction.

   Subcommands regenerate each table/figure of the paper, run the
   consistency validator, or run the ablation benchmarks. *)

open Cmdliner

let quick_arg =
  let doc = "Smaller sweeps and shorter measurement windows." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let seed_arg =
  let doc = "Simulation seed." in
  Arg.(value & opt int Core.Config.default.Core.Config.seed & info [ "seed" ] ~doc)

let jobs_arg =
  let doc =
    "Run up to $(docv) independent simulations in parallel (one OCaml domain \
     each). Every run stays single-threaded and bit-deterministic; results and \
     output come back in the same order as $(b,--jobs 1)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let micro_windows quick =
  if quick then (1_000.0, 4_000.0) else (2_000.0, 8_000.0)

let tpcw_windows quick =
  if quick then (3_000.0, 10_000.0) else (5_000.0, 25_000.0)

let with_seed seed config = { config with Core.Config.seed }

(* --- table1 --- *)

let table1_cmd =
  let run () = print_string (Experiments.Table1.render ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table I (database and table versions)")
    Term.(const run $ const ())

(* --- fig3 --- *)

let fig3 quick seed =
  let warmup_ms, measure_ms = micro_windows quick in
  let update_points = if quick then [ 0; 10; 20; 40 ] else [ 0; 5; 10; 15; 20; 25; 30; 35; 40 ] in
  let params =
    if quick then { Workload.Microbench.default with rows = 2_000 }
    else Workload.Microbench.default
  in
  let points =
    Experiments.Fig3.run
      ~config:(with_seed seed Core.Config.default)
      ~params ~update_points ~warmup_ms ~measure_ms ()
  in
  print_string (Experiments.Fig3.render points)

let fig3_cmd =
  Cmd.v
    (Cmd.info "fig3" ~doc:"Reproduce Figure 3 (micro-benchmark throughput)")
    Term.(const fig3 $ quick_arg $ seed_arg)

(* --- fig4 --- *)

let fig4 quick seed =
  let warmup_ms, measure_ms = micro_windows quick in
  let params =
    if quick then { Workload.Microbench.default with rows = 2_000 }
    else Workload.Microbench.default
  in
  let results =
    Experiments.Fig4.run
      ~config:(with_seed seed Core.Config.default)
      ~params ~warmup_ms ~measure_ms ()
  in
  print_string (Experiments.Fig4.render results)

let fig4_cmd =
  Cmd.v
    (Cmd.info "fig4" ~doc:"Reproduce Figure 4 (latency breakdown, 25% and 100% updates)")
    Term.(const fig4 $ quick_arg $ seed_arg)

(* --- fig5 / fig6 (one scaled-load sweep feeds both) --- *)

let fig56 quick seed =
  let warmup_ms, measure_ms = tpcw_windows quick in
  let replica_counts = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let points =
    Experiments.Tpcw_sweep.scaled
      ~config:(with_seed seed Core.Config.tpcw)
      ~replica_counts ~warmup_ms ~measure_ms ()
  in
  print_string (Experiments.Fig5.render points);
  print_string (Experiments.Fig6.render points)

let fig5_cmd =
  Cmd.v
    (Cmd.info "fig5" ~doc:"Reproduce Figures 5 and 6 (TPC-W scaled load)")
    Term.(const fig56 $ quick_arg $ seed_arg)

(* --- fig7 --- *)

let fig7 quick seed =
  let warmup_ms, measure_ms = tpcw_windows quick in
  let replica_counts = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let points =
    Experiments.Tpcw_sweep.fixed
      ~config:(with_seed seed Core.Config.tpcw)
      ~replica_counts ~warmup_ms ~measure_ms ()
  in
  print_string (Experiments.Fig7.render points)

let fig7_cmd =
  Cmd.v
    (Cmd.info "fig7" ~doc:"Reproduce Figure 7 (TPC-W fixed load response time)")
    Term.(const fig7 $ quick_arg $ seed_arg)

(* --- batch: group certification / parallel apply sweep --- *)

let cert_batch_arg =
  let doc = "Certification batch cap used by the batched arm of the sweep." in
  Arg.(value & opt int 8 & info [ "cert-batch" ] ~docv:"N" ~doc)

let apply_parallelism_arg =
  let doc =
    "Refresh-apply lanes per replica used by the batched arm of the sweep \
     (default: cpus per replica)."
  in
  Arg.(value & opt (some int) None & info [ "apply-parallelism" ] ~docv:"N" ~doc)

let clients_arg =
  let doc = "Closed-loop clients driving the sweep." in
  Arg.(value & opt int 160 & info [ "clients" ] ~docv:"N" ~doc)

let costs_arg =
  let doc =
    "Cost model for the sweep: $(b,micro) (the fig-3 micro-benchmark costs, \
     execution-bound), $(b,tpcw) (the TPC-W costs), or $(b,reexec) (micro costs \
     with refresh application priced like statement re-execution, as in the \
     `apply' ablation — the regime where writeset application is the throughput \
     ceiling)."
  in
  Arg.(value & opt (enum [ ("micro", `Micro); ("tpcw", `Tpcw); ("reexec", `Reexec) ]) `Micro
       & info [ "costs" ] ~docv:"MODEL" ~doc)

let batch quick seed cert_batch apply_parallelism clients costs =
  let warmup_ms, measure_ms = micro_windows quick in
  let update_points = if quick then [ 0; 10; 20 ] else [ 0; 5; 10; 15; 20 ] in
  let params =
    if quick then { Workload.Microbench.default with rows = 2_000 }
    else Workload.Microbench.default
  in
  let config =
    match costs with
    | `Micro -> Core.Config.default
    | `Tpcw -> Core.Config.tpcw
    | `Reexec ->
      let c = Core.Config.default in
      {
        c with
        Core.Config.ws_apply_base_ms = c.Core.Config.stmt_base_ms +. c.Core.Config.commit_ms;
        ws_apply_row_ms = c.Core.Config.row_write_ms;
      }
  in
  let batched config =
    let b = Core.Config.batched config in
    {
      b with
      Core.Config.cert_batch;
      apply_parallelism =
        Option.value apply_parallelism ~default:b.Core.Config.apply_parallelism;
    }
  in
  let points =
    Experiments.Batch_sweep.run ~config:(with_seed seed config) ~batched ~params
      ~clients ~update_points ~warmup_ms ~measure_ms ()
  in
  print_string (Experiments.Batch_sweep.render points)

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Measure group certification + conflict-aware parallel refresh apply \
          against the unbatched pipeline")
    Term.(
      const batch $ quick_arg $ seed_arg $ cert_batch_arg $ apply_parallelism_arg
      $ clients_arg $ costs_arg)

(* --- certindex: host cost of the certification conflict check --- *)

let certindex quick versions ws_rows jobs =
  let versions = if quick then min versions 2_000 else versions in
  let stalenesses =
    List.filter (fun s -> s <= versions) Experiments.Cert_index.default_stalenesses
  in
  let points = Experiments.Cert_index.run ~versions ~ws_rows ~stalenesses ~jobs () in
  print_string (Experiments.Cert_index.render points)

let certindex_cmd =
  let versions =
    let doc = "Committed versions in the certifier log fixture." in
    Arg.(value & opt int 10_000 & info [ "versions" ] ~docv:"N" ~doc)
  in
  let ws_rows =
    let doc = "Rows per writeset (both the committed and the probing ones)." in
    Arg.(value & opt int 4 & info [ "ws-rows" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "certindex"
       ~doc:
         "Measure the host CPU cost of Linear vs Keyed certification as the \
          requesting snapshot falls behind (the simulated protocol is \
          decision-identical either way)")
    Term.(const certindex $ quick_arg $ versions $ ws_rows $ jobs_arg)

(* --- ablations --- *)

let ablation which quick =
  let measure_ms = if quick then 3_000.0 else 6_000.0 in
  let run name =
    match name with
    | "apply" ->
      print_string
        (Experiments.Ablation.render ~title:"Ablation: writeset shipping vs re-execution"
           (Experiments.Ablation.apply_vs_reexec ~measure_ms ()))
    | "span" ->
      print_string
        (Experiments.Ablation.render ~title:"Ablation: table-set granularity"
           (Experiments.Ablation.table_span ~measure_ms ()))
    | "early-cert" ->
      print_string
        (Experiments.Ablation.render ~title:"Ablation: early certification"
           (Experiments.Ablation.early_certification ~measure_ms ()))
    | "routing" ->
      print_string
        (Experiments.Ablation.render ~title:"Ablation: load-balancer routing"
           (Experiments.Ablation.routing ~measure_ms ()))
    | other -> Printf.eprintf "unknown ablation %S\n" other
  in
  match which with
  | "all" -> List.iter run [ "apply"; "span"; "early-cert"; "routing" ]
  | name -> run name

let ablation_cmd =
  let which =
    let doc = "Which ablation: apply, span, early-cert, routing, or all." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"NAME" ~doc)
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run the design-choice ablation benchmarks")
    Term.(const ablation $ which $ quick_arg)

(* --- ycsb: the serving-benchmark extension --- *)

let ycsb seed =
  let params = Workload.Ycsb.default in
  let config =
    { (with_seed seed Core.Config.default) with Core.Config.replicas = 4 }
  in
  Printf.printf "YCSB on 4 replicas, 40 closed-loop clients, 10k records (zipf 0.99)\n\n";
  Printf.printf "%-7s %-8s %9s %9s %8s\n" "mix" "mode" "TPS" "resp(ms)" "abort%";
  List.iter
    (fun mix ->
      List.iter
        (fun mode ->
          let cluster =
            Core.Cluster.create ~config ~mode ~schemas:(Workload.Ycsb.schemas params)
              ~load:(Workload.Ycsb.load params)
              ()
          in
          Core.Client.spawn_many cluster ~n:40 ~first_sid:0
            (Workload.Ycsb.workload params mix);
          Core.Cluster.run_for cluster ~warmup_ms:1_000.0 ~measure_ms:4_000.0;
          let m = Core.Cluster.metrics cluster in
          Printf.printf "%-7s %-8s %9.0f %9.2f %8.2f\n%!" (Workload.Ycsb.mix_name mix)
            (Core.Consistency.to_string mode)
            (Core.Metrics.throughput_tps m) (Core.Metrics.mean_response_ms m)
            (100.0 *. Core.Metrics.abort_rate m))
        Core.Consistency.all;
      print_newline ())
    [ Workload.Ycsb.A; Workload.Ycsb.B; Workload.Ycsb.C; Workload.Ycsb.D;
      Workload.Ycsb.E; Workload.Ycsb.F ]

let ycsb_cmd =
  Cmd.v
    (Cmd.info "ycsb" ~doc:"Run the YCSB extension workload across configurations")
    Term.(const ycsb $ seed_arg)

(* --- tpcc: the TPC-C extension --- *)

let tpcc seed =
  (* 5 terminals per warehouse: optimistic certification turns the spec's
     hot rows (w_ytd, d_next_o_id) into write-write aborts, so contention
     is kept at the moderate end; the abort column shows what remains. *)
  let params = { Workload.Tpcc.default with Workload.Tpcc.warehouses = 8 } in
  let config = { (with_seed seed Core.Config.default) with Core.Config.replicas = 4 } in
  Printf.printf
    "TPC-C on 4 replicas, 40 paced terminals, %d warehouses x %d districts\n\n"
    params.Workload.Tpcc.warehouses params.Workload.Tpcc.districts_per_warehouse;
  Printf.printf "%-8s %9s %9s %8s %9s\n" "mode" "TPS" "resp(ms)" "abort%" "sync(ms)";
  List.iter
    (fun mode ->
      let cluster =
        Core.Cluster.create ~config ~mode ~schemas:Workload.Tpcc.schemas
          ~load:(Workload.Tpcc.load params)
          ()
      in
      Core.Client.spawn_many cluster ~n:40 ~first_sid:0
        {
          (Workload.Tpcc.workload params) with
          Core.Client.think_ms = Core.Client.exp_think ~mean_ms:100.0;
        };
      Core.Cluster.run_for cluster ~warmup_ms:1_000.0 ~measure_ms:6_000.0;
      let m = Core.Cluster.metrics cluster in
      Printf.printf "%-8s %9.0f %9.2f %8.2f %9.2f\n%!"
        (Core.Consistency.to_string mode)
        (Core.Metrics.throughput_tps m) (Core.Metrics.mean_response_ms m)
        (100.0 *. Core.Metrics.abort_rate m)
        (Core.Metrics.sync_delay_ms m))
    Core.Consistency.all;
  print_newline ();
  Printf.printf "Static SI analysis: %s\n"
    (if Check.Si_analysis.serializable_under_si Workload.Tpcc.profiles then
       "no dangerous structures — TPC-C runs serializably under GSI (as the paper notes)"
     else "dangerous structures found")

let tpcc_cmd =
  Cmd.v
    (Cmd.info "tpcc" ~doc:"Run the TPC-C extension workload across configurations")
    Term.(const tpcc $ seed_arg)

(* --- check: consistency validation of live runs --- *)

let check seed =
  let params = { Workload.Microbench.tables = 8; rows = 500; update_types = 4 } in
  let config =
    {
      Core.Config.default with
      Core.Config.seed;
      replicas = 4;
      record_log = true;
      gc_interval_ms = 0.0;
    }
  in
  Printf.printf "Running each configuration for 5s of virtual time with logging on...\n\n";
  Printf.printf "%-8s %9s %8s %8s %8s %8s\n" "mode" "txns" "strong" "tableset" "session"
    "wwconf";
  List.iter
    (fun mode ->
      let cluster =
        Core.Cluster.create ~config ~mode
          ~schemas:(Workload.Microbench.schemas params)
          ~load:(Workload.Microbench.load params)
          ()
      in
      Core.Client.spawn_many cluster ~n:24 ~first_sid:0
        (Workload.Microbench.workload params);
      Core.Cluster.run_for cluster ~warmup_ms:300.0 ~measure_ms:5_000.0;
      let log = Core.Cluster.records cluster in
      Printf.printf "%-8s %9d %8d %8d %8d %8d\n"
        (Core.Consistency.to_string mode)
        (List.length log)
        (List.length (Check.Runlog.strong_consistency log))
        (List.length (Check.Runlog.fine_strong_consistency log))
        (List.length (Check.Runlog.session_consistency log))
        (List.length (Check.Runlog.first_committer_wins log)))
    Core.Consistency.all;
  Printf.printf
    "\nExpected: eager/coarse have 0 everywhere; fine has 0 in tableset/wwconf;\n\
     session has 0 in session/wwconf but may be non-zero in strong (it is weaker).\n"

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Validate the consistency guarantees of each configuration on live runs")
    Term.(const check $ seed_arg)

(* --- chaos: seeded fault-schedule soak --- *)

let chaos seeds seed_count duration plan_str modes_str tiers cert_standbys ack_quorum
    voter_lease lb_standby verify_digest health_file offered_tps protections jobs =
  match Experiments.Chaos.plan_of_string plan_str with
  | Error e -> `Error (false, e)
  | Ok plan -> (
    (* Control-plane knob overrides ride on the soak's own default
       config, and go through Config.validate so a contradictory
       combination fails here with a message instead of deep in a run. *)
    let config =
      match (cert_standbys, ack_quorum, voter_lease, lb_standby) with
      | None, None, None, false -> Ok None
      | _ ->
        let c =
          Experiments.Chaos.default_config
            ~seed:Core.Config.default.Core.Config.seed
        in
        let c =
          {
            c with
            Core.Config.certifier_standbys =
              Option.value cert_standbys ~default:c.Core.Config.certifier_standbys;
            standby_ack_quorum =
              Option.value ack_quorum ~default:c.Core.Config.standby_ack_quorum;
            voter_lease_ms =
              Option.value voter_lease ~default:c.Core.Config.voter_lease_ms;
            lb_standby = lb_standby || c.Core.Config.lb_standby;
          }
        in
        (match Core.Config.validate c with
        | Ok () -> Ok (Some c)
        | Error e -> Error e)
    in
    match config with
    | Error e -> `Error (false, e)
    | Ok config -> (
    let modes =
      match modes_str with
      | None -> Ok Core.Consistency.all
      | Some s ->
        let parts = String.split_on_char ',' s in
        List.fold_left
          (fun acc m ->
            match (acc, Core.Consistency.of_string (String.trim m)) with
            | Error e, _ -> Error e
            | Ok ms, Ok m -> Ok (ms @ [ m ])
            | Ok _, Error e -> Error e)
          (Ok []) parts
    in
    match modes with
    | Error e -> `Error (false, e)
    | Ok modes when modes = [] -> `Error (false, "no consistency modes selected")
    | Ok modes ->
      let seeds =
        match seeds with
        | [] -> List.init (max 0 seed_count) (fun i -> 1 + i)
        | seeds -> seeds
      in
      if seeds = [] then
        `Error (false, "empty seed matrix: pass --seeds N with N > 0, or --seed-list")
      else
      let duration_ms = duration *. 1000.0 in
      Printf.printf "Chaos soak: plan=%s%s, %d seed(s) x %d mode(s), %.1fs virtual each\n\n"
        (Experiments.Chaos.plan_name plan)
        (if tiers then " (mixed-tier reads)" else "")
        (List.length seeds) (List.length modes) duration;
      let results =
        Experiments.Chaos.soak_matrix ?config ~tiers ~protections ~offered_tps ~modes
          ~plans:[ plan ] ~jobs ~seeds ~duration_ms ()
      in
      List.iter (fun r -> Format.printf "%a@." Experiments.Chaos.pp_result r) results;
      (match health_file with
      | None -> ()
      | Some file ->
        Experiments.Chaos.write_health results ~file;
        Printf.printf "\nwrote health timeline to %s\n" file);
      let failed = List.filter (fun r -> not (Experiments.Chaos.ok r)) results in
      let digest_ok =
        if verify_digest then begin
          (* Re-run the first combination and demand a byte-identical
             runlog: the whole stack, faults included, is deterministic. *)
          let mode = List.hd modes and seed = List.hd seeds in
          let _, same =
            Experiments.Chaos.reproducible ?config ~tiers ~protections ~offered_tps
              ~mode ~plan ~seed ~duration_ms ()
          in
          Printf.printf "\ndigest reproducibility (%s, seed %d): %s\n"
            (Core.Consistency.to_string mode)
            seed
            (if same then "identical" else "DIVERGED");
          same
        end
        else true
      in
      Printf.printf "\n%d/%d runs ok\n" (List.length results - List.length failed)
        (List.length results);
      if failed = [] && digest_ok then `Ok ()
      else `Error (false, "chaos soak found violations")))

let chaos_seeds_arg =
  let doc = "Explicit seed list (repeatable); overrides $(b,--seeds)." in
  Arg.(value & opt_all int [] & info [ "seed-list" ] ~docv:"SEED" ~doc)

let chaos_seed_count_arg =
  let doc = "Number of consecutive seeds (starting at 1) to soak." in
  Arg.(value & opt int 8 & info [ "seeds" ] ~docv:"N" ~doc)

let chaos_duration_arg =
  let doc = "Virtual seconds per run (faults all heal by 75%% of it)." in
  Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)

let chaos_plan_arg =
  let doc =
    "Fault plan: clean, lossy, partitions, gray, mixed, cert-failover, control-plane \
     or overload (open-loop metastable-failure reproduction)."
  in
  Arg.(value & opt string "mixed" & info [ "plan" ] ~docv:"PLAN" ~doc)

let chaos_cert_standbys_arg =
  let doc = "Certifier standbys (overrides the soak default config)." in
  Arg.(value & opt (some int) None & info [ "cert-standbys" ] ~docv:"N" ~doc)

let chaos_ack_quorum_arg =
  let doc =
    "Standby replication ack quorum: 0 = all caught-up standbys, else the count of \
     standby acks a commit waits for."
  in
  Arg.(value & opt (some int) None & info [ "ack-quorum" ] ~docv:"N" ~doc)

let chaos_voter_lease_arg =
  let doc =
    "Voter lease in virtual ms: a silent un-caught-up standby is demoted out of the \
     ack quorum after this long (0 disables; the control-plane plan forces 100ms \
     when unset)."
  in
  Arg.(value & opt (some float) None & info [ "voter-lease" ] ~docv:"MS" ~doc)

let chaos_lb_standby_arg =
  let doc = "Run a standby load balancer with heartbeat-driven takeover." in
  Arg.(value & flag & info [ "lb-standby" ] ~doc)

let chaos_modes_arg =
  let doc = "Comma-separated consistency modes (default: all four)." in
  Arg.(value & opt (some string) None & info [ "modes" ] ~docv:"MODES" ~doc)

let chaos_tiers_arg =
  let doc =
    "Drive the mixed-tier read workload (strong/bounded/causal/eventual reads) with \
     read-tier routing enabled, so the per-class contract checkers are exercised \
     under the fault plan."
  in
  Arg.(value & flag & info [ "tiers" ] ~doc)

let chaos_no_digest_arg =
  let doc = "Skip the double-run digest reproducibility check." in
  Arg.(value & flag & info [ "no-digest-check" ] ~doc)

let chaos_offered_arg =
  let doc =
    "Aggregate open-loop arrival rate for the overload plan, in offered \
     transactions/second (ignored by the closed-loop plans)."
  in
  Arg.(value & opt float 6_000.0 & info [ "offered-tps" ] ~docv:"TPS" ~doc)

let chaos_no_protections_arg =
  let doc =
    "Overload plan only: leave every overload-protection knob off — the control arm \
     that demonstrates the metastable collapse (the soak is expected to FAIL its \
     shed requirement)."
  in
  Arg.(value & flag & info [ "no-protections" ] ~doc)

let chaos_health_arg =
  let doc =
    "Write the per-run health timeline (faults injected, detector and HA events, \
     violation counts, wedge-drain time, digest) as JSON to $(docv); CI uploads it \
     as an artifact when a soak fails."
  in
  Arg.(value & opt (some string) None & info [ "health-json" ] ~docv:"FILE" ~doc)

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Soak the hardened protocol under a seeded fault schedule and check \
          consistency, liveness and reproducibility")
    Term.(
      ret
        (const (fun seeds n d p m t cs aq vl lbs nd hf otps noprot jobs ->
             chaos seeds n d p m t cs aq vl lbs (not nd) hf otps (not noprot) jobs)
        $ chaos_seeds_arg $ chaos_seed_count_arg $ chaos_duration_arg $ chaos_plan_arg
        $ chaos_modes_arg $ chaos_tiers_arg $ chaos_cert_standbys_arg
        $ chaos_ack_quorum_arg $ chaos_voter_lease_arg $ chaos_lb_standby_arg
        $ chaos_no_digest_arg $ chaos_health_arg $ chaos_offered_arg
        $ chaos_no_protections_arg $ jobs_arg))

(* --- overload: open-loop offered-rate sweep --- *)

let overload rates_str mode_str protect seed clients duration warmup json_file jobs =
  match Core.Consistency.of_string mode_str with
  | Error e -> `Error (false, e)
  | Ok mode -> (
    let rates =
      let parts = String.split_on_char ',' rates_str in
      List.fold_left
        (fun acc r ->
          match (acc, float_of_string_opt (String.trim r)) with
          | Error e, _ -> Error e
          | Ok _, None -> Error (Printf.sprintf "bad offered rate %S" (String.trim r))
          | Ok _, Some r when r <= 0.0 ->
            Error (Printf.sprintf "offered rate must be > 0 (got %g)" r)
          | Ok rs, Some r -> Ok (rs @ [ r ]))
        (Ok []) parts
    in
    match rates with
    | Error e -> `Error (false, e)
    | Ok [] -> `Error (false, "empty rate list")
    | Ok rates ->
      (* The protected arm arms the same stack the chaos overload soak
         uses, so the sweep's plateau and the soak's recovery claim are
         about one configuration. *)
      let config =
        let c = with_seed seed (Experiments.Chaos.default_config ~seed) in
        if protect then
          {
            c with
            Core.Config.admission_limit = 48;
            cert_queue_bound = 24;
            apply_lag_gap = 200;
            retry_budget = 6.0;
            retry_budget_per_s = 2.0;
            deadline_ms = 500.0;
          }
        else c
      in
      Printf.printf
        "Open-loop sweep: mode=%s, %d rate(s), %.1fs measured, protections %s\n\n"
        (Core.Consistency.to_string mode)
        (List.length rates) duration
        (if protect then "ON" else "off");
      let points =
        Experiments.Overload.sweep ~config ~clients ~jobs ~mode ~rates
          ~warmup_ms:(warmup *. 1000.0) ~measure_ms:(duration *. 1000.0) ()
      in
      List.iter (fun p -> Format.printf "%a@." Experiments.Overload.pp_point p) points;
      (match json_file with
      | None -> `Ok ()
      | Some file ->
        let out = open_out file in
        output_string out (Obs.Json.to_string (Experiments.Overload.sweep_json ~mode points));
        output_char out '\n';
        close_out out;
        Printf.printf "\nwrote sweep to %s\n" file;
        `Ok ()))

let overload_rates_arg =
  let doc = "Comma-separated offered arrival rates (aggregate tps) to sweep." in
  Arg.(
    value
    & opt string "1000,2000,4000,8000,12000,16000"
    & info [ "rates" ] ~docv:"TPS,TPS,..." ~doc)

let overload_mode_arg =
  let doc = "Consistency mode for the sweep." in
  Arg.(value & opt string "coarse" & info [ "mode" ] ~docv:"MODE" ~doc)

let overload_protect_arg =
  let doc =
    "Arm the overload-protection stack (admission control, bounded certifier \
     backlog, apply-lag governor, retry budget, deadlines) — the same knobs the \
     chaos overload soak uses. Off by default so the bare collapse is visible."
  in
  Arg.(value & flag & info [ "protect" ] ~doc)

let overload_clients_arg =
  let doc = "Open-loop generators the offered rate is split across." in
  Arg.(value & opt int 16 & info [ "clients" ] ~docv:"N" ~doc)

let overload_duration_arg =
  let doc = "Measured virtual seconds per point." in
  Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)

let overload_warmup_arg =
  let doc = "Warmup virtual seconds per point (excluded from the measurement)." in
  Arg.(value & opt float 0.5 & info [ "warmup" ] ~docv:"SECONDS" ~doc)

let overload_json_arg =
  let doc = "Write the sweep points as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let overload_cmd =
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Sweep an open-loop offered-load range and report goodput, shedding, tail \
          latency and queue depth — the goodput-vs-offered-load curve, with or \
          without the overload-protection stack")
    Term.(
      ret
        (const overload $ overload_rates_arg $ overload_mode_arg $ overload_protect_arg
        $ seed_arg $ overload_clients_arg $ overload_duration_arg $ overload_warmup_arg
        $ overload_json_arg $ jobs_arg))

(* --- tiers: read-tier latency/staleness frontier --- *)

let tiers quick seed clients jobs =
  (* --quick trims sweep points, not measurement windows: each point is
     an independent cluster run, so the quick rows are bit-identical to
     the same rows of the full sweep, and the latency-ordering check
     stays out of short-window noise. *)
  let bounds = if quick then [ 0; 8; 32 ] else Experiments.Tiers.default_bounds in
  let points =
    Experiments.Tiers.run ~clients ~bounds ~seed ~warmup_ms:1_000.0 ~measure_ms:4_000.0
      ~jobs ()
  in
  print_string (Experiments.Tiers.render points);
  if Experiments.Tiers.ok points then `Ok ()
  else begin
    let viol =
      List.fold_left (fun acc p -> acc + Experiments.Tiers.total_violations p) 0 points
    in
    `Error
      ( false,
        if viol > 0 then Printf.sprintf "%d read-tier contract violation(s)" viol
        else
          "latency ordering eventual < bounded < causal < strong did not hold at any \
           bound >= 8" )
  end

let tiers_clients_arg =
  let doc = "Closed-loop clients driving the sweep." in
  Arg.(value & opt int 24 & info [ "clients" ] ~docv:"N" ~doc)

let tiers_cmd =
  Cmd.v
    (Cmd.info "tiers"
       ~doc:
         "Sweep the bounded-staleness lag bound and report per-read-tier latency and \
          served staleness (the latency-vs-staleness frontier), validating every tier \
          contract on the run log")
    Term.(ret (const tiers $ quick_arg $ seed_arg $ tiers_clients_arg $ jobs_arg))

(* --- bench: the committed baseline and its regression gate --- *)

(* `--check` with no FILE picks the newest committed baseline: the
   highest-numbered BENCH_<n>.json in the working directory (the
   in-tree convention — BENCH_6.json is the pre-optimization reference,
   the highest number is the current gate). *)
let newest_baseline () =
  let number name =
    if String.length name > 11
       && String.sub name 0 6 = "BENCH_"
       && Filename.check_suffix name ".json"
    then int_of_string_opt (String.sub name 6 (String.length name - 11))
    else None
  in
  Array.fold_left
    (fun best name ->
      match (number name, best) with
      | Some n, Some (bn, _) when n > bn -> Some (n, name)
      | Some n, None -> Some (n, name)
      | _ -> best)
    None (Sys.readdir ".")

let bench quick seed out check_file threshold jobs =
  let quick = quick || Sys.getenv_opt "REPRO_BENCH_QUICK" = Some "1" in
  let check_file =
    match check_file with
    | Some "auto" -> (
      match newest_baseline () with
      | Some (_, name) ->
        Printf.printf "auto-selected baseline %s (highest-numbered BENCH_*.json)\n" name;
        Ok (Some name)
      | None -> Error "no BENCH_*.json baseline found in the working directory")
    | other -> Ok other
  in
  match check_file with
  | Error e -> `Error (false, e)
  | Ok check_file -> (
  match check_file with
  | None ->
    let r = Experiments.Bench.run ~quick ~seed ~jobs () in
    print_string (Experiments.Bench.render r);
    (match out with
    | None -> `Ok ()
    | Some file -> (
      try
        Experiments.Bench.save r ~file;
        Printf.printf "wrote %s\n" file;
        `Ok ()
      with Sys_error e -> `Error (false, Printf.sprintf "cannot write %s: %s" file e)))
  | Some file -> (
    match Experiments.Bench.load ~file with
    | Error e -> `Error (false, Printf.sprintf "cannot load baseline %s: %s" file e)
    | Ok baseline ->
      (* The gate re-runs the sweep at the baseline's own scale and seed,
         so `repro bench --check FILE` needs no other flags to agree with
         however the baseline was generated. *)
      let r =
        Experiments.Bench.run ~quick:baseline.Experiments.Bench.quick
          ~seed:baseline.Experiments.Bench.seed ~jobs ()
      in
      print_string (Experiments.Bench.render r);
      (match Experiments.Bench.compare_runs ~baseline ~current:r ~threshold with
      | [] ->
        Printf.printf "regression gate: ok against %s (threshold %.0f%%)\n" file
          (100.0 *. threshold);
        `Ok ()
      | problems ->
        List.iter (fun p -> Printf.eprintf "REGRESSION: %s\n" p) problems;
        `Error
          ( false,
            Printf.sprintf "%d headline regression(s) against %s"
              (List.length problems) file ))))

let bench_out_arg =
  let doc = "Also write the sweep as JSON to $(docv) (the committed baseline format)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let bench_check_arg =
  let doc =
    "Regression gate: re-run the sweep at the baseline's scale and seed and fail \
     if any headline metric (TPS, p99 response, certifier decisions/sec) regressed \
     beyond the threshold. With no $(docv), auto-selects the highest-numbered \
     BENCH_*.json in the working directory and prints which one."
  in
  Arg.(
    value
    & opt ~vopt:(Some "auto") (some string) None
    & info [ "check" ] ~docv:"FILE" ~doc)

let bench_threshold_arg =
  let doc = "Relative regression threshold for $(b,--check) (fraction)." in
  Arg.(value & opt float 0.15 & info [ "threshold" ] ~docv:"FRACTION" ~doc)

let bench_cmd =
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the pinned-seed bench sweep (four consistency configurations), \
          optionally writing or checking the committed JSON baseline"
       ~man:
         [
           `S Manpage.s_environment;
           `P
             "REPRO_BENCH_QUICK=1 shrinks the measurement windows like $(b,--quick) \
              (ignored under $(b,--check), which always follows the baseline's \
              scale).";
         ])
    Term.(
      ret
        (const bench $ quick_arg $ seed_arg $ bench_out_arg $ bench_check_arg
        $ bench_threshold_arg $ jobs_arg))

(* --- report: the run-health observatory on a demo run --- *)

let report quick seed window json_file =
  let warmup_ms, measure_ms = if quick then (500.0, 2_000.0) else (1_000.0, 5_000.0) in
  let params = { Workload.Tpcw.default with Workload.Tpcw.think_mean_ms = 300.0 } in
  let mix = Workload.Tpcw.Shopping in
  let config = { (with_seed seed Core.Config.tpcw) with Core.Config.replicas = 4 } in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Fine
      ~schemas:Workload.Tpcw.schemas
      ~load:(Workload.Tpcw.load params) ()
  in
  for sid = 0 to 39 do
    Core.Client.spawn cluster ~sid ~rng:(Core.Cluster.rng cluster)
      (Workload.Tpcw.workload params mix ~sid)
  done;
  let ts = Core.Cluster.start_observatory ?window_ms:window cluster in
  Core.Cluster.run_for cluster ~warmup_ms ~measure_ms;
  Core.Cluster.stop_observatory cluster ts;
  print_string
    (Experiments.Report.health
       ~title:
         (Printf.sprintf "run health: TPC-W %s mix, fine mode, seed %d, %.0fms windows"
          (Workload.Tpcw.mix_name mix) seed (Obs.Timeseries.window_ms ts))
       ts);
  Format.printf "@.%a@." Core.Metrics.pp_summary (Core.Cluster.metrics cluster);
  match json_file with
  | None -> `Ok ()
  | Some file -> (
    try
      Obs.Export.write_timeseries ts ~file;
      Printf.printf "wrote time series to %s\n" file;
      `Ok ()
    with Sys_error e -> `Error (false, Printf.sprintf "cannot write %s: %s" file e))

let report_window_arg =
  let doc = "Observatory window span in virtual ms (default: Config.obs_window_ms)." in
  Arg.(value & opt (some float) None & info [ "window" ] ~docv:"MS" ~doc)

let report_json_arg =
  let doc = "Also dump the windowed time series as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run an instrumented TPC-W demo with the run-health observatory on and \
          print the windowed health report (throughput, latency percentiles, \
          staleness, certifier and detector activity)")
    Term.(ret (const report $ quick_arg $ seed_arg $ report_window_arg $ report_json_arg))

(* --- trace / telemetry: an instrumented demo run (default command) --- *)

let trace_file_arg =
  let doc =
    "Run an instrumented TPC-W demo and write its trace as Chrome trace-event JSON to \
     $(docv) (load it in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let telemetry_arg =
  let doc =
    "Sample resource utilization during the demo run and print the counter/gauge \
     registry and sampler summaries."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let trace_run trace_file telemetry quick seed cert_batch apply_parallelism =
  if trace_file = None && not telemetry then `Help (`Pager, None)
  else begin
    let warmup_ms, measure_ms = if quick then (500.0, 2_000.0) else (1_000.0, 5_000.0) in
    (* Shorter think time than the benchmark default so the demo trace is
       dense enough to be interesting. *)
    let params = { Workload.Tpcw.default with Workload.Tpcw.think_mean_ms = 300.0 } in
    let mix = Workload.Tpcw.Shopping in
    let config =
      {
        (with_seed seed Core.Config.tpcw) with
        Core.Config.replicas = 4;
        cert_batch;
        apply_parallelism;
      }
    in
    let cluster =
      Core.Cluster.create ~config
        ~tracing:(trace_file <> None)
        ~mode:Core.Consistency.Fine ~schemas:Workload.Tpcw.schemas
        ~load:(Workload.Tpcw.load params) ()
    in
    for sid = 0 to 39 do
      Core.Client.spawn cluster ~sid ~rng:(Core.Cluster.rng cluster)
        (Workload.Tpcw.workload params mix ~sid)
    done;
    let sampler =
      if telemetry then Some (Core.Cluster.start_telemetry cluster) else None
    in
    Core.Cluster.run_for cluster ~warmup_ms ~measure_ms;
    Option.iter Obs.Sampler.stop sampler;
    let m = Core.Cluster.metrics cluster in
    Printf.printf
      "TPC-W %s mix, fine mode, 4 replicas, 40 clients, %.1fs measured: %.0f TPS, %.2f \
       ms mean response\n"
      (Workload.Tpcw.mix_name mix) (measure_ms /. 1000.0)
      (Core.Metrics.throughput_tps m) (Core.Metrics.mean_response_ms m);
    (match sampler with
    | Some s ->
      Core.Cluster.update_gauges cluster;
      Format.printf "@.Registry:@.%a@." Obs.Registry.pp (Core.Cluster.registry cluster);
      Format.printf "@.Sampler (every %.0f ms):@.%a@." (Obs.Sampler.interval_ms s)
        Obs.Sampler.pp s
    | None -> ());
    match (trace_file, Core.Cluster.trace cluster) with
    | Some file, Some trace -> (
      try
        Obs.Export.write_chrome_trace ?sampler trace ~file;
        Printf.printf "Wrote %d spans (%d dropped) to %s\n" (Obs.Trace.length trace)
          (Obs.Trace.dropped trace) file;
        `Ok ()
      with Sys_error e -> `Error (false, Printf.sprintf "cannot write trace: %s" e))
    | _ -> `Ok ()
  end

let trace_cert_batch_arg =
  let doc = "Certification batch cap for the demo run (1 = unbatched)." in
  Arg.(value & opt int 1 & info [ "cert-batch" ] ~docv:"N" ~doc)

let trace_apply_parallelism_arg =
  let doc = "Refresh-apply lanes per replica for the demo run (1 = serial)." in
  Arg.(value & opt int 1 & info [ "apply-parallelism" ] ~docv:"N" ~doc)

let trace_term =
  Term.ret
    Term.(
      const trace_run $ trace_file_arg $ telemetry_arg $ quick_arg $ seed_arg
      $ trace_cert_batch_arg $ trace_apply_parallelism_arg)

(* --- all --- *)

let all quick seed =
  print_string (Experiments.Table1.render ());
  fig3 quick seed;
  fig4 quick seed;
  fig56 quick seed;
  fig7 quick seed;
  ablation "all" quick

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table and figure plus the ablations")
    Term.(const all $ quick_arg $ seed_arg)

let () =
  let doc = "Reproduction of 'Strongly consistent replication for a bargain' (ICDE 2010)" in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group ~default:trace_term info
      [
        table1_cmd; fig3_cmd; fig4_cmd; fig5_cmd; fig7_cmd; batch_cmd; certindex_cmd;
        ablation_cmd; ycsb_cmd; tpcc_cmd; check_cmd; chaos_cmd; overload_cmd; tiers_cmd;
        bench_cmd;
        report_cmd;
        all_cmd;
      ]
  in
  exit (Cmd.eval group)

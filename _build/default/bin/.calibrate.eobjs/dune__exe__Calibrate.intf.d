bin/calibrate.mli:

bin/calibrate.ml: Array Core Experiments List Printf Sys Unix Workload

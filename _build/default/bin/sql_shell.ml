(* Interactive SQL shell over the storage engine.

   Usage:
     dune exec bin/sql_shell.exe                # interactive REPL
     dune exec bin/sql_shell.exe -- script.sql  # execute a script, then exit

   Statements end with ';'. BEGIN/COMMIT/ROLLBACK give explicit
   snapshot-isolation transactions; everything else auto-commits. *)

let run_input session input ~echo =
  match Sql.Session.exec_script session input with
  | Ok results -> List.iter (fun r -> print_string (Sql.Session.render r)) results
  | Error msg ->
    if echo then Printf.printf "error: %s\n%!" msg
    else begin
      Printf.eprintf "error: %s\n" msg;
      exit 1
    end

let repl session =
  print_endline "repro SQL shell — end statements with ';', ctrl-D to exit.";
  let buf = Buffer.create 256 in
  (try
     while true do
       print_string (if Buffer.length buf = 0 then "sql> " else "  -> ");
       flush stdout;
       let line = input_line stdin in
       Buffer.add_string buf line;
       Buffer.add_char buf '\n';
       if String.contains line ';' then begin
         let statement = Buffer.contents buf in
         Buffer.clear buf;
         run_input session statement ~echo:true
       end
     done
   with End_of_file -> print_newline ())

let () =
  let session = Sql.Session.create () in
  match Sys.argv with
  | [| _ |] -> repl session
  | [| _; path |] ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    run_input session contents ~echo:false
  | _ ->
    prerr_endline "usage: sql_shell [script.sql]";
    exit 2

bin/repro.ml: Arg Check Cmd Cmdliner Core Experiments List Printf Term Workload

bin/repro.mli:

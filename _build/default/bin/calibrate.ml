(* Scratch calibration driver: small sweeps to sanity-check shapes while
   tuning the cost model. Not part of the documented CLI. *)

let micro () =
  let params = { Workload.Microbench.default with rows = 2_000 } in
  let clients = 80 in
  Printf.printf "mode      upd%%   TPS    resp(ms)  ver   qry   cert  sync  cmt   glob  abrt\n%!";
  List.iter
    (fun update_types ->
      List.iter
        (fun mode ->
          let t0 = Unix.gettimeofday () in
          let s =
            Experiments.Runner.run_micro ~mode
              ~params:{ params with update_types }
              ~clients ~warmup_ms:1_000.0 ~measure_ms:4_000.0 ()
          in
          Printf.printf "%-8s %4d%% %7.0f %8.2f %6.2f %5.2f %5.2f %5.2f %5.2f %5.2f %5.3f  [%0.1fs]\n%!"
            (Core.Consistency.to_string mode)
            (update_types * 100 / 40)
            s.Experiments.Runner.tps s.response_ms s.stage_ms.(0) s.stage_ms.(1)
            s.stage_ms.(2) s.stage_ms.(3) s.stage_ms.(4) s.stage_update_ms.(5) s.abort_rate
            (Unix.gettimeofday () -. t0))
        Core.Consistency.all;
      print_newline ())
    [ 0; 2; 10; 20; 40 ]

let tpcw ~fixed () =
  let params = Workload.Tpcw.default in
  Printf.printf "mix       mode     reps clients  TPS   resp(ms) sync(ms) abrt\n%!";
  List.iter
    (fun mix ->
      List.iter
        (fun replicas ->
          List.iter
            (fun mode ->
              let t0 = Unix.gettimeofday () in
              let cpr = Experiments.Tpcw_sweep.clients_per_replica mix in
              let clients = if fixed then cpr else cpr * replicas in
              let config = { Core.Config.tpcw with replicas } in
              let s =
                Experiments.Runner.run_tpcw ~config ~mode ~params ~mix ~clients
                  ~warmup_ms:5_000.0 ~measure_ms:30_000.0 ()
              in
              Printf.printf "%-9s %-8s %4d %7d %6.0f %8.1f %8.2f %5.3f  [%0.1fs]\n%!"
                (Workload.Tpcw.mix_name mix)
                (Core.Consistency.to_string mode)
                replicas clients s.Experiments.Runner.tps s.response_ms s.sync_delay_ms
                s.abort_rate
                (Unix.gettimeofday () -. t0))
            Core.Consistency.all;
          print_newline ())
        [ 1; 4; 8 ])
    [ Workload.Tpcw.Shopping; Workload.Tpcw.Ordering ]

let () =
  match Sys.argv with
  | [| _; "tpcw" |] -> tpcw ~fixed:false ()
  | [| _; "tpcw-fixed" |] -> tpcw ~fixed:true ()
  | _ -> micro ()

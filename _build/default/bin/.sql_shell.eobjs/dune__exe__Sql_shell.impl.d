bin/sql_shell.ml: Buffer List Printf Sql String Sys

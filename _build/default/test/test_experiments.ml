(* Tests for the experiments library: Table I exactness, report and plot
   rendering, and a smoke run of the shared experiment driver. *)

let test_table1_exact () =
  (* The paper's Table I, row by row. *)
  let rows = Experiments.Table1.rows () in
  let expect =
    [
      ("T1", 1, 1, 0, 0);
      ("T2", 2, 1, 2, 2);
      ("T3", 3, 1, 3, 2);
      ("T4", 4, 1, 3, 4);
      ("T5", 5, 1, 5, 5);
      ("T6", 6, 6, 5, 5);
    ]
  in
  List.iter2
    (fun row (txn, vs, va, vb, vc) ->
      Alcotest.(check string) "txn" txn row.Experiments.Table1.txn;
      Alcotest.(check int) (txn ^ " V_system") vs row.Experiments.Table1.v_system;
      Alcotest.(check int) (txn ^ " V_A") va row.Experiments.Table1.v_a;
      Alcotest.(check int) (txn ^ " V_B") vb row.Experiments.Table1.v_b;
      Alcotest.(check int) (txn ^ " V_C") vc row.Experiments.Table1.v_c)
    rows expect

let test_table1_start_versions () =
  Alcotest.(check int) "fine-grained start for {A} after T5" 1
    (Experiments.Table1.fine_start_for_a ());
  Alcotest.(check int) "coarse-grained start after T5" 5
    (Experiments.Table1.coarse_start_after_t5 ())

let test_report_table () =
  let s =
    Experiments.Report.table ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yyy"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has header + rule + rows" true (List.length lines >= 4);
  (* All non-empty lines are equally wide. *)
  let widths =
    List.filter_map
      (fun l -> if String.length l = 0 then None else Some (String.length l))
      lines
  in
  Alcotest.(check bool) "aligned columns" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_report_fmt () =
  Alcotest.(check string) "large" "123" (Experiments.Report.fmt_f 123.4);
  Alcotest.(check string) "medium" "12.3" (Experiments.Report.fmt_f 12.34);
  Alcotest.(check string) "small" "1.23" (Experiments.Report.fmt_f 1.234)

let test_plot_renders () =
  let s =
    Experiments.Plot.chart ~width:20 ~height:6
      ~series:[ ("up", [ (0.0, 0.0); (1.0, 1.0); (2.0, 2.0) ]) ]
      ()
  in
  Alcotest.(check bool) "chart non-empty" true (String.length s > 100);
  Alcotest.(check bool) "marker present" true (String.contains s '*');
  Alcotest.(check bool) "legend present" true
    (String.length s >= 4
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> l = "  *=up") lines)

let test_plot_empty () =
  Alcotest.(check string) "no data placeholder" "(no data)\n"
    (Experiments.Plot.chart ~series:[ ("e", []) ] ())

let test_runner_smoke () =
  (* A miniature end-to-end experiment through the shared driver. *)
  let params = { Workload.Microbench.tables = 4; rows = 200; update_types = 1 } in
  let config =
    { Core.Config.default with replicas = 2; seed = 1; gc_interval_ms = 0.0 }
  in
  let s =
    Experiments.Runner.run_micro ~config ~mode:Core.Consistency.Coarse ~params ~clients:8
      ~warmup_ms:200.0 ~measure_ms:1_000.0 ()
  in
  Alcotest.(check bool) "throughput positive" true (s.Experiments.Runner.tps > 100.0);
  Alcotest.(check bool) "response positive" true (s.Experiments.Runner.response_ms > 0.0);
  Alcotest.(check int) "clients recorded" 8 s.Experiments.Runner.clients;
  Alcotest.(check int) "replicas recorded" 2 s.Experiments.Runner.replicas

let test_ablation_rows_shape () =
  let rows =
    [
      { Experiments.Ablation.label = "x"; cells = [ ("TPS", 1.0); ("ms", 2.0) ] };
      { Experiments.Ablation.label = "y"; cells = [ ("TPS", 3.0); ("ms", 4.0) ] };
    ]
  in
  let s = Experiments.Ablation.render ~title:"t" rows in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec probe i = i + nl <= sl && (String.sub s i nl = needle || probe (i + 1)) in
    probe 0
  in
  Alcotest.(check bool) "contains labels" true
    (List.for_all contains [ "x"; "y"; "TPS" ])

let test_replicate_aggregates () =
  (* Aggregate across seeds; the paper's methodology (10 runs, <5%
     deviation). Use 3 short runs for test time. *)
  let params = { Workload.Microbench.tables = 4; rows = 500; update_types = 1 } in
  let agg =
    Experiments.Runner.replicate ~runs:3 ~base_seed:100 (fun ~seed ->
        let config =
          {
            Core.Config.default with
            replicas = 2;
            seed;
            gc_interval_ms = 0.0;
            (* Transient slowdowns dominate variance in short windows;
               the methodology check uses a quiet cluster. *)
            hiccup_interval_ms = 0.0;
          }
        in
        Experiments.Runner.run_micro ~config ~mode:Core.Consistency.Coarse ~params
          ~clients:8 ~warmup_ms:300.0 ~measure_ms:2_000.0 ())
  in
  Alcotest.(check int) "runs" 3 agg.Experiments.Runner.runs;
  Alcotest.(check bool) "mean tps positive" true (agg.Experiments.Runner.mean.tps > 100.0);
  Alcotest.(check bool)
    (Printf.sprintf "deviation below 5%% (got %.2f%%)"
       (100.0 *. agg.Experiments.Runner.tps_rel_dev))
    true
    (agg.Experiments.Runner.tps_rel_dev < 0.05)

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "Table I rows exact" `Quick test_table1_exact;
        Alcotest.test_case "Table I start versions" `Quick test_table1_start_versions;
        Alcotest.test_case "report table" `Quick test_report_table;
        Alcotest.test_case "report fmt" `Quick test_report_fmt;
        Alcotest.test_case "plot renders" `Quick test_plot_renders;
        Alcotest.test_case "plot empty" `Quick test_plot_empty;
        Alcotest.test_case "runner smoke" `Quick test_runner_smoke;
        Alcotest.test_case "replicate aggregates" `Quick test_replicate_aggregates;
        Alcotest.test_case "ablation render" `Quick test_ablation_rows_shape;
      ] );
  ]

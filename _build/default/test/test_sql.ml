(* Tests for the SQL front-end: lexer, parser, compilation, execution and
   transaction semantics. *)

let vi x = Storage.Value.Int x
let vt s = Storage.Value.Text s

(* --- Lexer --- *)

let test_lexer_basics () =
  match Sql.Lexer.tokenize "SELECT a, b FROM t WHERE x >= 10.5 AND y = 'it''s';" with
  | Error msg -> Alcotest.fail msg
  | Ok tokens ->
    Alcotest.(check int) "token count" 15 (List.length tokens);
    Alcotest.(check bool) "float literal" true (List.mem (Sql.Lexer.Float_lit 10.5) tokens);
    Alcotest.(check bool) "escaped quote" true
      (List.mem (Sql.Lexer.String_lit "it's") tokens);
    Alcotest.(check bool) "two-char op" true (List.mem (Sql.Lexer.Op ">=") tokens)

let test_lexer_comments_and_errors () =
  (match Sql.Lexer.tokenize "SELECT -- a comment\n1" with
  | Ok [ Sql.Lexer.Word _; Sql.Lexer.Int_lit 1 ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "comment not skipped");
  (match Sql.Lexer.tokenize "'unterminated" with
  | Error msg -> Alcotest.(check bool) "error mentions string" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "unterminated string accepted");
  match Sql.Lexer.tokenize "a ? b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad character accepted"

let test_lexer_dot_vs_float () =
  (match Sql.Lexer.tokenize "t.col" with
  | Ok [ Sql.Lexer.Word "t"; Sql.Lexer.Dot; Sql.Lexer.Word "col" ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "qualified name mis-lexed");
  match Sql.Lexer.tokenize "1.5" with
  | Ok [ Sql.Lexer.Float_lit 1.5 ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "float mis-lexed"

(* --- Parser --- *)

let parse_ok s =
  match Sql.Parser.parse s with Ok stmt -> stmt | Error msg -> Alcotest.fail (s ^ ": " ^ msg)

let test_parser_select_shapes () =
  (match parse_ok "SELECT * FROM t" with
  | Sql.Ast.Select { projection = Sql.Ast.Star; from_table = "t"; _ } -> ()
  | _ -> Alcotest.fail "star select");
  (match parse_ok "SELECT a, t.b FROM t WHERE a = 1 ORDER BY a DESC LIMIT 5" with
  | Sql.Ast.Select
      {
        projection = Sql.Ast.Columns [ (None, "a"); (Some "t", "b") ];
        where = Some _;
        order_by = Some ("a", Sql.Ast.Desc);
        limit = Some 5;
        _;
      } -> ()
  | _ -> Alcotest.fail "column select with clauses");
  (match parse_ok "SELECT COUNT(*) FROM t" with
  | Sql.Ast.Select { projection = Sql.Ast.Aggregate Sql.Ast.Count_star; _ } -> ()
  | _ -> Alcotest.fail "count");
  (match parse_ok "SELECT kind, COUNT(*) FROM t GROUP BY kind LIMIT 3" with
  | Sql.Ast.Select
      { projection = Sql.Ast.Columns [ (None, "kind") ]; group_by = Some "kind"; _ } -> ()
  | _ -> Alcotest.fail "group by");
  match parse_ok "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z > 0" with
  | Sql.Ast.Select { join = Some ("b", (Some "a", "x"), (Some "b", "y")); _ } -> ()
  | _ -> Alcotest.fail "join"

let test_parser_precedence () =
  (* a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3). *)
  match parse_ok "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3" with
  | Sql.Ast.Select { where = Some (Sql.Ast.Binop (Sql.Ast.Or, _, Sql.Ast.Binop (Sql.Ast.And, _, _))); _ }
    -> ()
  | _ -> Alcotest.fail "OR/AND precedence wrong"

let test_parser_errors () =
  List.iter
    (fun sql ->
      match Sql.Parser.parse sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid SQL: %s" sql)
    [
      "SELECT";
      "SELECT * FROM";
      "SELECT * WHERE x = 1";
      "INSERT t VALUES (1)";
      "UPDATE t SET";
      "CREATE TABLE t";
      "SELECT * FROM t WHERE";
      "SELECT * FROM t LIMIT x";
      "FROB THE KNOB";
      "SELECT * FROM t; garbage";
    ]

let test_parser_script () =
  match Sql.Parser.parse_script "BEGIN; SELECT * FROM t; COMMIT;" with
  | Ok [ Sql.Ast.Begin; Sql.Ast.Select _; Sql.Ast.Commit ] -> ()
  | Ok _ -> Alcotest.fail "wrong script shape"
  | Error msg -> Alcotest.fail msg

(* --- End-to-end execution --- *)

let fresh_session () =
  let session = Sql.Session.create () in
  (match
     Sql.Session.exec_script session
       "CREATE TABLE pets (id INT PRIMARY KEY, name TEXT, kind TEXT, age INT, INDEX (kind));\n\
        INSERT INTO pets VALUES (1, 'rex', 'dog', 3), (2, 'tom', 'cat', 5),\n\
        (3, 'ada', 'dog', 7), (4, 'flo', 'fish', 1);"
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  session

let exec_ok session sql =
  match Sql.Session.exec session sql with
  | Ok r -> r
  | Error msg -> Alcotest.fail (sql ^ ": " ^ msg)

let ints_of result col =
  let idx =
    match List.find_index (String.equal col) result.Sql.Compile.columns with
    | Some i -> i
    | None -> Alcotest.fail ("missing column " ^ col)
  in
  List.map (fun row -> Storage.Value.as_int row.(idx)) result.Sql.Compile.rows

let test_exec_select_where_order () =
  let s = fresh_session () in
  let r = exec_ok s "SELECT id, age FROM pets WHERE kind = 'dog' ORDER BY age DESC" in
  Alcotest.(check (list int)) "dogs by age desc" [ 3; 1 ] (ints_of r "id");
  let r = exec_ok s "SELECT id FROM pets WHERE age > 2 AND kind <> 'cat'" in
  Alcotest.(check (list int)) "compound predicate" [ 1; 3 ] (List.sort compare (ints_of r "id"))

let test_exec_like_and_limit () =
  let s = fresh_session () in
  let r = exec_ok s "SELECT id FROM pets WHERE name LIKE '%o%' ORDER BY id LIMIT 2" in
  Alcotest.(check (list int)) "like + limit" [ 2; 4 ] (ints_of r "id")

let test_exec_aggregates () =
  let s = fresh_session () in
  let count r = match r.Sql.Compile.rows with
    | [ [| v |] ] -> v
    | _ -> Alcotest.fail "expected one aggregate row"
  in
  Alcotest.(check bool) "count" true
    (Storage.Value.equal (count (exec_ok s "SELECT COUNT(*) FROM pets")) (vi 4));
  Alcotest.(check bool) "sum" true
    (Storage.Value.equal
       (count (exec_ok s "SELECT SUM(age) FROM pets"))
       (Storage.Value.Float 16.0));
  Alcotest.(check bool) "max with where" true
    (Storage.Value.equal
       (count (exec_ok s "SELECT MAX(age) FROM pets WHERE kind = 'dog'"))
       (Storage.Value.Float 7.0))

let test_exec_group_by () =
  let s = fresh_session () in
  let r = exec_ok s "SELECT kind, COUNT(*) FROM pets GROUP BY kind" in
  Alcotest.(check (list string)) "columns" [ "kind"; "count(*)" ] r.Sql.Compile.columns;
  (match r.Sql.Compile.rows with
  | [| k; c |] :: _ ->
    Alcotest.(check bool) "top group is dog x2" true
      (Storage.Value.equal k (vt "dog") && Storage.Value.equal c (vi 2))
  | _ -> Alcotest.fail "no group rows");
  Alcotest.(check int) "three kinds" 3 (List.length r.Sql.Compile.rows)

let test_exec_join () =
  let s = fresh_session () in
  (match
     Sql.Session.exec_script s
       "CREATE TABLE owners (oid INT PRIMARY KEY, pet_id INT, oname TEXT);\n\
        INSERT INTO owners VALUES (10, 1, 'kim'), (11, 3, 'lee'), (12, 9, 'sam');"
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let r =
    exec_ok s
      "SELECT oname, name FROM owners JOIN pets ON owners.pet_id = pets.id ORDER BY oid"
  in
  Alcotest.(check int) "two joined rows" 2 (List.length r.Sql.Compile.rows);
  (match r.Sql.Compile.rows with
  | [ [| o1; n1 |]; [| o2; n2 |] ] ->
    Alcotest.(check bool) "kim-rex" true
      (Storage.Value.equal o1 (vt "kim") && Storage.Value.equal n1 (vt "rex"));
    Alcotest.(check bool) "lee-ada" true
      (Storage.Value.equal o2 (vt "lee") && Storage.Value.equal n2 (vt "ada"))
  | _ -> Alcotest.fail "unexpected join rows");
  (* WHERE over the joined row, with qualified columns. *)
  let r =
    exec_ok s
      "SELECT oname FROM owners JOIN pets ON owners.pet_id = pets.id WHERE pets.age > 5"
  in
  Alcotest.(check int) "filtered join" 1 (List.length r.Sql.Compile.rows)

let test_exec_update_delete () =
  let s = fresh_session () in
  let r = exec_ok s "UPDATE pets SET age = age + 1 WHERE kind = 'dog'" in
  Alcotest.(check int) "two dogs updated" 2 r.Sql.Compile.affected;
  let r = exec_ok s "SELECT age FROM pets WHERE id = 1" in
  Alcotest.(check (list int)) "age bumped" [ 4 ] (ints_of r "age");
  let r = exec_ok s "DELETE FROM pets WHERE kind = 'fish'" in
  Alcotest.(check int) "one fish deleted" 1 r.Sql.Compile.affected;
  let r = exec_ok s "SELECT COUNT(*) FROM pets" in
  match r.Sql.Compile.rows with
  | [ [| v |] ] -> Alcotest.(check bool) "three left" true (Storage.Value.equal v (vi 3))
  | _ -> Alcotest.fail "bad count"

let test_exec_insert_with_columns () =
  let s = fresh_session () in
  ignore (exec_ok s "INSERT INTO pets (id, name) VALUES (9, 'gil')");
  let r = exec_ok s "SELECT kind FROM pets WHERE id = 9" in
  (match r.Sql.Compile.rows with
  | [ [| Storage.Value.Null |] ] -> ()
  | _ -> Alcotest.fail "missing columns should be NULL");
  match Sql.Session.exec s "INSERT INTO pets VALUES (9, 'dup', 'dog', 1)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate key accepted"

let test_exec_transactions () =
  let s = fresh_session () in
  ignore (exec_ok s "BEGIN");
  Alcotest.(check bool) "in txn" true (Sql.Session.in_transaction s);
  ignore (exec_ok s "UPDATE pets SET age = 100 WHERE id = 1");
  ignore (exec_ok s "ROLLBACK");
  let r = exec_ok s "SELECT age FROM pets WHERE id = 1" in
  Alcotest.(check (list int)) "rollback discards" [ 3 ] (ints_of r "age");
  ignore (exec_ok s "BEGIN");
  ignore (exec_ok s "UPDATE pets SET age = 100 WHERE id = 1");
  ignore (exec_ok s "COMMIT");
  let r = exec_ok s "SELECT age FROM pets WHERE id = 1" in
  Alcotest.(check (list int)) "commit applies" [ 100 ] (ints_of r "age")

let test_exec_snapshot_isolation_between_sessions () =
  let a = fresh_session () in
  let b = Sql.Session.of_database (Sql.Session.database a) in
  ignore (exec_ok a "BEGIN");
  ignore (exec_ok b "BEGIN");
  ignore (exec_ok a "UPDATE pets SET age = 50 WHERE id = 2");
  (* B reads its snapshot, not A's uncommitted write. *)
  let r = exec_ok b "SELECT age FROM pets WHERE id = 2" in
  Alcotest.(check (list int)) "snapshot read" [ 5 ] (ints_of r "age");
  ignore (exec_ok b "UPDATE pets SET age = 60 WHERE id = 2");
  ignore (exec_ok a "COMMIT");
  (* First committer wins: B's commit must fail. *)
  match Sql.Session.exec b "COMMIT" with
  | Error msg ->
    Alcotest.(check bool) "conflict reported" true
      (String.length msg > 0 && Sql.Session.in_transaction b = false)
  | Ok _ -> Alcotest.fail "write-write conflict committed"

let test_exec_errors () =
  let s = fresh_session () in
  List.iter
    (fun sql ->
      match Sql.Session.exec s sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted: %s" sql)
    [
      "SELECT * FROM nope";
      "SELECT nope FROM pets";
      "SELECT pets.nope FROM pets";
      "INSERT INTO pets VALUES (1, 2)";
      "UPDATE pets SET nope = 1";
      "SELECT name + 1 FROM pets";
      "COMMIT";
      "CREATE TABLE pets (id INT PRIMARY KEY)";
      "CREATE TABLE nokey (a INT)";
    ]

let test_exec_show_tables_and_render () =
  let s = fresh_session () in
  let r = exec_ok s "SHOW TABLES" in
  Alcotest.(check int) "one table" 1 (List.length r.Sql.Compile.rows);
  let rendered = Sql.Session.render r in
  Alcotest.(check bool) "render mentions table" true
    (String.length rendered > 0
    &&
    let lines = String.split_on_char '\n' rendered in
    List.exists (fun l -> String.length l > 0 && l.[0] = '|') lines)

(* Property: LIKE matching agrees with a reference implementation on
   wildcard-free patterns (equality) and prefix patterns. *)
let prop_like_prefix =
  QCheck.Test.make ~name:"LIKE 'p%' means prefix" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 8)) (string_of_size (QCheck.Gen.int_range 0 8)))
    (fun (p, s) ->
      QCheck.assume (not (String.contains p '%') && not (String.contains p '_'));
      QCheck.assume (not (String.contains s '%') && not (String.contains s '_'));
      let is_prefix =
        String.length p <= String.length s && String.sub s 0 (String.length p) = p
      in
      Storage.Expr.like_match ~pattern:(p ^ "%") s = is_prefix)

let prop_like_exact =
  QCheck.Test.make ~name:"wildcard-free LIKE is equality" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 8)) (string_of_size (QCheck.Gen.int_range 0 8)))
    (fun (p, s) ->
      QCheck.assume (not (String.contains p '%') && not (String.contains p '_'));
      Storage.Expr.like_match ~pattern:p s = String.equal p s)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "sql.lexer",
      [
        Alcotest.test_case "basics" `Quick test_lexer_basics;
        Alcotest.test_case "comments and errors" `Quick test_lexer_comments_and_errors;
        Alcotest.test_case "dot vs float" `Quick test_lexer_dot_vs_float;
      ] );
    ( "sql.parser",
      [
        Alcotest.test_case "select shapes" `Quick test_parser_select_shapes;
        Alcotest.test_case "precedence" `Quick test_parser_precedence;
        Alcotest.test_case "rejects invalid" `Quick test_parser_errors;
        Alcotest.test_case "scripts" `Quick test_parser_script;
      ] );
    ( "sql.exec",
      [
        Alcotest.test_case "select/where/order" `Quick test_exec_select_where_order;
        Alcotest.test_case "like and limit" `Quick test_exec_like_and_limit;
        Alcotest.test_case "aggregates" `Quick test_exec_aggregates;
        Alcotest.test_case "group by" `Quick test_exec_group_by;
        Alcotest.test_case "join" `Quick test_exec_join;
        Alcotest.test_case "update/delete" `Quick test_exec_update_delete;
        Alcotest.test_case "insert with columns" `Quick test_exec_insert_with_columns;
        Alcotest.test_case "transactions" `Quick test_exec_transactions;
        Alcotest.test_case "snapshot isolation across sessions" `Quick
          test_exec_snapshot_isolation_between_sessions;
        Alcotest.test_case "errors" `Quick test_exec_errors;
        Alcotest.test_case "show tables / render" `Quick test_exec_show_tables_and_render;
      ]
      @ qsuite [ prop_like_prefix; prop_like_exact ] );
  ]

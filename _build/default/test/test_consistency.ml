(* End-to-end consistency validation: run real workloads under each
   configuration with transaction logging on, then feed the logs to the
   Check.Runlog checkers. This is the executable form of the paper's
   Theorems 1 and 2. *)

let params = { Workload.Microbench.tables = 4; rows = 200; update_types = 2 }

let config =
  {
    Core.Config.default with
    replicas = 3;
    seed = 20260705;
    record_log = true;
    gc_interval_ms = 0.0;
  }

let run_mode mode =
  let cluster =
    Core.Cluster.create ~config ~mode
      ~schemas:(Workload.Microbench.schemas params)
      ~load:(Workload.Microbench.load params)
      ()
  in
  Core.Client.spawn_many cluster ~n:20 ~first_sid:0 (Workload.Microbench.workload params);
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:3_000.0;
  Core.Cluster.records cluster

let check_empty name violations =
  match violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d violations, first: %s" name (List.length violations)
      (Format.asprintf "%a" Check.Runlog.pp_violation v)

let test_eager_strong () =
  let log = run_mode Core.Consistency.Eager in
  Alcotest.(check bool) "log non-trivial" true (List.length log > 100);
  check_empty "strong" (Check.Runlog.strong_consistency log);
  check_empty "session" (Check.Runlog.session_consistency log);
  check_empty "fcw" (Check.Runlog.first_committer_wins log)

let test_coarse_strong () =
  let log = run_mode Core.Consistency.Coarse in
  Alcotest.(check bool) "log non-trivial" true (List.length log > 100);
  check_empty "strong" (Check.Runlog.strong_consistency log);
  check_empty "session" (Check.Runlog.session_consistency log);
  check_empty "monotone" (Check.Runlog.monotone_session_snapshots log);
  check_empty "fcw" (Check.Runlog.first_committer_wins log)

let test_fine_strong_on_tablesets () =
  let log = run_mode Core.Consistency.Fine in
  Alcotest.(check bool) "log non-trivial" true (List.length log > 100);
  (* Theorem 2: strong consistency restricted to each transaction's
     table-set (a superset of its data-set). *)
  check_empty "fine strong" (Check.Runlog.fine_strong_consistency log);
  check_empty "fcw" (Check.Runlog.first_committer_wins log)

let test_session_guarantees () =
  let log = run_mode Core.Consistency.Session in
  Alcotest.(check bool) "log non-trivial" true (List.length log > 100);
  check_empty "session" (Check.Runlog.session_consistency log);
  check_empty "monotone" (Check.Runlog.monotone_session_snapshots log);
  check_empty "fcw" (Check.Runlog.first_committer_wins log)

let test_session_not_strong () =
  (* Session consistency is weaker than strong consistency: under load,
     cross-client staleness must actually occur (otherwise the
     comparison in the paper would be vacuous). *)
  let log = run_mode Core.Consistency.Session in
  let violations = Check.Runlog.strong_consistency log in
  Alcotest.(check bool)
    (Printf.sprintf "session mode shows cross-client staleness (%d cases)"
       (List.length violations))
    true
    (List.length violations > 0)

let test_tpcw_coarse_strong () =
  (* The same theorem on a schema with multi-table transactions. *)
  let tp = { Workload.Tpcw.default with items = 500; customers = 300; authors = 50;
             initial_orders = 200; think_mean_ms = 50.0 } in
  let cluster =
    Core.Cluster.create
      ~config:{ config with Core.Config.seed = 99 }
      ~mode:Core.Consistency.Coarse ~schemas:Workload.Tpcw.schemas
      ~load:(Workload.Tpcw.load tp)
      ()
  in
  for sid = 0 to 14 do
    Core.Client.spawn cluster ~sid ~rng:(Core.Cluster.rng cluster)
      (Workload.Tpcw.workload tp Workload.Tpcw.Ordering ~sid)
  done;
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:4_000.0;
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "log non-trivial" true (List.length log > 50);
  check_empty "tpcw strong" (Check.Runlog.strong_consistency log);
  check_empty "tpcw fcw" (Check.Runlog.first_committer_wins log)

let test_tpcw_fine_strong () =
  let tp = { Workload.Tpcw.default with items = 500; customers = 300; authors = 50;
             initial_orders = 200; think_mean_ms = 50.0 } in
  let cluster =
    Core.Cluster.create
      ~config:{ config with Core.Config.seed = 98 }
      ~mode:Core.Consistency.Fine ~schemas:Workload.Tpcw.schemas
      ~load:(Workload.Tpcw.load tp)
      ()
  in
  for sid = 0 to 14 do
    Core.Client.spawn cluster ~sid ~rng:(Core.Cluster.rng cluster)
      (Workload.Tpcw.workload tp Workload.Tpcw.Ordering ~sid)
  done;
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:4_000.0;
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "log non-trivial" true (List.length log > 50);
  check_empty "tpcw fine strong" (Check.Runlog.fine_strong_consistency log);
  check_empty "tpcw fcw" (Check.Runlog.first_committer_wins log)

let test_bounded_staleness_mode () =
  (* The relaxed-currency extension: Bounded k bounds how far behind a
     transaction may read; Bounded 0 is strong consistency. *)
  let run k =
    let cluster =
      Core.Cluster.create ~config ~mode:(Core.Consistency.Bounded k)
        ~schemas:(Workload.Microbench.schemas params)
        ~load:(Workload.Microbench.load params)
        ()
    in
    Core.Client.spawn_many cluster ~n:20 ~first_sid:0
      (Workload.Microbench.workload params);
    Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:2_000.0;
    Core.Cluster.records cluster
  in
  let log0 = run 0 in
  Alcotest.(check bool) "log non-trivial" true (List.length log0 > 100);
  check_empty "bounded 0 = strong" (Check.Runlog.strong_consistency log0);
  let log50 = run 50 in
  check_empty "bounded 50 within its bound" (Check.Runlog.bounded_staleness ~k:50 log50);
  check_empty "bounded runs keep GSI" (Check.Runlog.first_committer_wins log50)

let test_bounded_parse_roundtrip () =
  List.iter
    (fun mode ->
      match Core.Consistency.of_string (Core.Consistency.to_string mode) with
      | Ok m -> Alcotest.(check bool) "roundtrip" true (m = mode)
      | Error e -> Alcotest.fail e)
    (Core.Consistency.Bounded 0 :: Core.Consistency.Bounded 17 :: Core.Consistency.all);
  Alcotest.(check bool) "negative bound rejected" true
    (match Core.Consistency.of_string "bounded:-3" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "strongness" true
    (Core.Consistency.is_strong (Core.Consistency.Bounded 0)
    && not (Core.Consistency.is_strong (Core.Consistency.Bounded 1)))

(* Property: across seeds, the coarse configuration never violates strong
   consistency (randomized protocol-level check). *)
let prop_coarse_strong_across_seeds =
  QCheck.Test.make ~name:"coarse strong consistency across seeds" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let cluster =
        Core.Cluster.create
          ~config:{ config with Core.Config.seed }
          ~mode:Core.Consistency.Coarse
          ~schemas:(Workload.Microbench.schemas params)
          ~load:(Workload.Microbench.load params)
          ()
      in
      Core.Client.spawn_many cluster ~n:10 ~first_sid:0
        (Workload.Microbench.workload params);
      Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:1_000.0;
      let log = Core.Cluster.records cluster in
      Check.Runlog.strong_consistency log = []
      && Check.Runlog.first_committer_wins log = [])

let prop_eager_strong_across_seeds =
  QCheck.Test.make ~name:"eager strong consistency across seeds" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let cluster =
        Core.Cluster.create
          ~config:{ config with Core.Config.seed }
          ~mode:Core.Consistency.Eager
          ~schemas:(Workload.Microbench.schemas params)
          ~load:(Workload.Microbench.load params)
          ()
      in
      Core.Client.spawn_many cluster ~n:10 ~first_sid:0
        (Workload.Microbench.workload params);
      Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:1_000.0;
      let log = Core.Cluster.records cluster in
      Check.Runlog.strong_consistency log = []
      && Check.Runlog.first_committer_wins log = [])

let prop_fine_strong_across_seeds =
  QCheck.Test.make ~name:"fine table-set consistency across seeds" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let cluster =
        Core.Cluster.create
          ~config:{ config with Core.Config.seed }
          ~mode:Core.Consistency.Fine
          ~schemas:(Workload.Microbench.schemas params)
          ~load:(Workload.Microbench.load params)
          ()
      in
      Core.Client.spawn_many cluster ~n:10 ~first_sid:0
        (Workload.Microbench.workload params);
      Core.Cluster.run_for cluster ~warmup_ms:100.0 ~measure_ms:1_000.0;
      let log = Core.Cluster.records cluster in
      Check.Runlog.fine_strong_consistency log = []
      && Check.Runlog.first_committer_wins log = [])

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "consistency.theorems",
      [
        Alcotest.test_case "eager is strongly consistent" `Quick test_eager_strong;
        Alcotest.test_case "coarse is strongly consistent (Thm 1)" `Quick test_coarse_strong;
        Alcotest.test_case "fine is table-set strong (Thm 2)" `Quick
          test_fine_strong_on_tablesets;
        Alcotest.test_case "session keeps its own guarantee" `Quick test_session_guarantees;
        Alcotest.test_case "session is weaker than strong" `Quick test_session_not_strong;
        Alcotest.test_case "tpcw coarse strong" `Quick test_tpcw_coarse_strong;
        Alcotest.test_case "tpcw fine strong" `Quick test_tpcw_fine_strong;
        Alcotest.test_case "bounded staleness extension" `Quick test_bounded_staleness_mode;
        Alcotest.test_case "mode parse roundtrip" `Quick test_bounded_parse_roundtrip;
      ]
      @ qsuite
          [
            prop_coarse_strong_across_seeds;
            prop_eager_strong_across_seeds;
            prop_fine_strong_across_seeds;
          ] );
  ]

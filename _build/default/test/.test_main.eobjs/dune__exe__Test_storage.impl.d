test/test_storage.ml: Alcotest Array Buffer Codec Database Expr Gen List Mvcc Option Printf QCheck QCheck_alcotest Query Schema Storage String Test Txn Value Writeset

test/test_sql.ml: Alcotest Array List QCheck QCheck_alcotest Sql Storage String

test/test_workload.ml: Alcotest Array Check Core Float Hashtbl List Option Printf Storage Util Workload

test/test_check.ml: Alcotest Check Checker History List QCheck QCheck_alcotest Runlog Si_analysis

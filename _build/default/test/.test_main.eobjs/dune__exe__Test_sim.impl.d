test/test_sim.ml: Alcotest List Printf Sim Util

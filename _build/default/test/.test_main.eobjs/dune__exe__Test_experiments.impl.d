test/test_experiments.ml: Alcotest Core Experiments List Printf String Workload

test/test_consistency.ml: Alcotest Check Core Format List Printf QCheck QCheck_alcotest Workload

test/test_core.ml: Alcotest Array Core List Printf Sim Storage Util Workload

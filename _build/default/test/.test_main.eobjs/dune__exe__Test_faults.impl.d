test/test_faults.ml: Alcotest Array Check Core Format List Printf Sim Storage Workload

(* Tests for the workload generators. *)

let test_micro_schema_and_load () =
  let p = { Workload.Microbench.tables = 3; rows = 50; update_types = 1 } in
  let db = Storage.Database.create () in
  List.iter
    (fun s -> ignore (Storage.Database.create_table db s))
    (Workload.Microbench.schemas p);
  Workload.Microbench.load p db;
  Alcotest.(check (list string)) "table names" [ "t00"; "t01"; "t02" ]
    (Storage.Database.table_names db);
  let t = Storage.Database.table db "t01" in
  Alcotest.(check int) "row count" 50 (Storage.Table.row_count t ~at:0);
  match Storage.Table.read t ~key:[| Storage.Value.Int 7 |] ~at:0 with
  | Some row ->
    Alcotest.(check int) "deterministic value" (7 * 17 mod 97) (Storage.Value.as_int row.(1))
  | None -> Alcotest.fail "row 7 missing"

let test_micro_request_shape () =
  let p = { Workload.Microbench.tables = 4; rows = 100; update_types = 2 } in
  let rng = Util.Rng.create 5 in
  let reads = ref 0 and updates = ref 0 in
  for _ = 1 to 1000 do
    let req = Workload.Microbench.request p rng in
    Alcotest.(check int) "single statement" 1 (List.length req.Core.Transaction.statements);
    Alcotest.(check int) "single-table table-set" 1
      (List.length req.Core.Transaction.table_set);
    if Core.Transaction.updates_possible req then incr updates else incr reads
  done;
  (* update_types/tables = 1/2 of requests should be updates. *)
  Alcotest.(check bool)
    (Printf.sprintf "update ratio ~50%% (got %d/1000)" !updates)
    true
    (!updates > 420 && !updates < 580)

let test_micro_request_targets_right_tables () =
  let p = { Workload.Microbench.tables = 4; rows = 10; update_types = 2 } in
  let rng = Util.Rng.create 6 in
  for _ = 1 to 200 do
    let req = Workload.Microbench.request p rng in
    let table = List.hd req.Core.Transaction.table_set in
    if Core.Transaction.updates_possible req then
      Alcotest.(check bool) "updates hit t00/t01" true (table = "t00" || table = "t01")
    else Alcotest.(check bool) "reads hit t02/t03" true (table = "t02" || table = "t03")
  done

let tpcw_params =
  { Workload.Tpcw.default with items = 200; customers = 100; authors = 20;
    initial_orders = 80 }

let tpcw_db () =
  let db = Storage.Database.create () in
  List.iter (fun s -> ignore (Storage.Database.create_table db s)) Workload.Tpcw.schemas;
  Workload.Tpcw.load tpcw_params db;
  db

let test_tpcw_population () =
  let db = tpcw_db () in
  let count name = Storage.Table.row_count (Storage.Database.table db name) ~at:0 in
  Alcotest.(check int) "items" 200 (count "item");
  Alcotest.(check int) "customers" 100 (count "customer");
  Alcotest.(check int) "addresses" 200 (count "address");
  Alcotest.(check int) "orders" 80 (count "orders");
  Alcotest.(check int) "order lines (3 per order)" 240 (count "order_line");
  Alcotest.(check int) "cc_xacts" 80 (count "cc_xacts");
  Alcotest.(check int) "carts start empty" 0 (count "shopping_cart")

let test_tpcw_mix_weights () =
  List.iter
    (fun mix ->
      let weights = Workload.Tpcw.weights mix in
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weights in
      Alcotest.(check (float 1e-6))
        (Workload.Tpcw.mix_name mix ^ " weights sum to 100")
        100.0 total;
      let updates =
        List.fold_left
          (fun acc (tx, w) -> if Workload.Tpcw.is_update_tx tx then acc +. w else acc)
          0.0 weights
      in
      Alcotest.(check (float 1e-6))
        (Workload.Tpcw.mix_name mix ^ " update fraction")
        (Workload.Tpcw.update_fraction mix *. 100.0)
        updates)
    [ Workload.Tpcw.Browsing; Workload.Tpcw.Shopping; Workload.Tpcw.Ordering ]

let test_tpcw_sampling_matches_weights () =
  let rng = Util.Rng.create 17 in
  let n = 20_000 in
  let updates = ref 0 in
  for _ = 1 to n do
    let tx = Workload.Tpcw.sample_tx Workload.Tpcw.Ordering rng in
    if Workload.Tpcw.is_update_tx tx then incr updates
  done;
  let frac = float_of_int !updates /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "ordering sampled update fraction ~0.5 (got %.3f)" frac)
    true
    (frac > 0.47 && frac < 0.53)

let test_tpcw_transactions_execute () =
  (* Every transaction type must run cleanly against a fresh database. *)
  let db = tpcw_db () in
  let rng = Util.Rng.create 23 in
  List.iter
    (fun tx ->
      let req = Workload.Tpcw.request tpcw_params ~sid:1 tx rng in
      let txn = Storage.Txn.begin_ db in
      List.iter
        (fun stmt ->
          match Storage.Query.exec txn stmt with
          | Storage.Query.Error msg, _ ->
            Alcotest.failf "%s: statement failed: %s" (Workload.Tpcw.tx_name tx) msg
          | (Storage.Query.Rows _ | Storage.Query.Affected _), _ -> ())
        req.Core.Transaction.statements;
      match Storage.Txn.commit_standalone txn with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: commit failed: %s" (Workload.Tpcw.tx_name tx) e)
    [
      Workload.Tpcw.Home; Workload.Tpcw.New_products; Workload.Tpcw.Best_sellers;
      Workload.Tpcw.Product_detail; Workload.Tpcw.Search; Workload.Tpcw.Shopping_cart;
      Workload.Tpcw.Customer_registration; Workload.Tpcw.Buy_request;
      Workload.Tpcw.Buy_confirm; Workload.Tpcw.Order_inquiry; Workload.Tpcw.Admin_confirm;
    ]

let test_tpcw_update_classification () =
  (* The statements of update transactions must actually write, and those
     of read-only transactions must not. *)
  let rng = Util.Rng.create 29 in
  List.iter
    (fun tx ->
      let req = Workload.Tpcw.request tpcw_params ~sid:2 tx rng in
      Alcotest.(check bool)
        (Workload.Tpcw.tx_name tx ^ " classification")
        (Workload.Tpcw.is_update_tx tx)
        (Core.Transaction.updates_possible req))
    [
      Workload.Tpcw.Home; Workload.Tpcw.Best_sellers; Workload.Tpcw.Search;
      Workload.Tpcw.Shopping_cart; Workload.Tpcw.Buy_confirm; Workload.Tpcw.Buy_request;
      Workload.Tpcw.Customer_registration; Workload.Tpcw.Admin_confirm;
    ]

let test_tpcw_cart_isolated_per_session () =
  let rng = Util.Rng.create 31 in
  let req17 = Workload.Tpcw.request tpcw_params ~sid:17 Workload.Tpcw.Shopping_cart rng in
  List.iter
    (fun stmt ->
      match stmt with
      | Storage.Query.Put { table = "shopping_cart"; row } ->
        Alcotest.(check int) "cart keyed by session" 17 (Storage.Value.as_int row.(0))
      | Storage.Query.Put { table = "shopping_cart_line"; row } ->
        Alcotest.(check int) "cart line keyed by session" 17 (Storage.Value.as_int row.(0))
      | _ -> ())
    req17.Core.Transaction.statements

let test_tpcw_table_sets_are_supersets () =
  (* The declared table-set must cover every statement's table — the
     correctness prerequisite of the fine-grained approach. *)
  let rng = Util.Rng.create 37 in
  List.iter
    (fun tx ->
      for _ = 1 to 20 do
        let req = Workload.Tpcw.request tpcw_params ~sid:3 tx rng in
        List.iter
          (fun stmt ->
            let table = Storage.Query.table_of stmt in
            Alcotest.(check bool)
              (Printf.sprintf "%s table-set covers %s" (Workload.Tpcw.tx_name tx) table)
              true
              (List.mem table req.Core.Transaction.table_set))
          req.Core.Transaction.statements
      done)
    [ Workload.Tpcw.Home; Workload.Tpcw.Shopping_cart; Workload.Tpcw.Buy_confirm;
      Workload.Tpcw.Order_inquiry ]

(* --- YCSB --- *)

let ycsb_params = { Workload.Ycsb.default with records = 500 }

let test_ycsb_population () =
  let db = Storage.Database.create () in
  List.iter
    (fun s -> ignore (Storage.Database.create_table db s))
    (Workload.Ycsb.schemas ycsb_params);
  Workload.Ycsb.load ycsb_params db;
  Alcotest.(check int) "records loaded" 500
    (Storage.Table.row_count (Storage.Database.table db Workload.Ycsb.table) ~at:0)

let test_ycsb_mix_fractions () =
  let rng = Util.Rng.create 41 in
  List.iter
    (fun mix ->
      let updates = ref 0 in
      let n = 5_000 in
      for _ = 1 to n do
        let req = Workload.Ycsb.request ycsb_params mix rng in
        if Core.Transaction.updates_possible req then incr updates
      done;
      let frac = float_of_int !updates /. float_of_int n in
      let expected = Workload.Ycsb.update_fraction mix in
      Alcotest.(check bool)
        (Printf.sprintf "%s update fraction ~%.2f (got %.3f)"
           (Workload.Ycsb.mix_name mix) expected frac)
        true
        (Float.abs (frac -. expected) < 0.03))
    [ Workload.Ycsb.A; Workload.Ycsb.B; Workload.Ycsb.C; Workload.Ycsb.D;
      Workload.Ycsb.E; Workload.Ycsb.F ]

let test_ycsb_requests_execute () =
  let db = Storage.Database.create () in
  List.iter
    (fun s -> ignore (Storage.Database.create_table db s))
    (Workload.Ycsb.schemas ycsb_params);
  Workload.Ycsb.load ycsb_params db;
  let rng = Util.Rng.create 43 in
  List.iter
    (fun mix ->
      for _ = 1 to 50 do
        let req = Workload.Ycsb.request ycsb_params mix rng in
        let txn = Storage.Txn.begin_ db in
        List.iter
          (fun stmt ->
            match Storage.Query.exec txn stmt with
            | Storage.Query.Error msg, _ -> Alcotest.fail msg
            | (Storage.Query.Rows _ | Storage.Query.Affected _), _ -> ())
          req.Core.Transaction.statements;
        ignore (Storage.Txn.commit_standalone txn)
      done)
    [ Workload.Ycsb.A; Workload.Ycsb.E; Workload.Ycsb.F ]

let test_ycsb_skew () =
  (* With theta=0.99 the hottest key must be much hotter than the median. *)
  let rng = Util.Rng.create 47 in
  let counts = Hashtbl.create 512 in
  for _ = 1 to 20_000 do
    let req = Workload.Ycsb.request ycsb_params Workload.Ycsb.C rng in
    match req.Core.Transaction.statements with
    | [ Storage.Query.Get { key; _ } ] ->
      let k = Storage.Value.as_int key.(0) in
      Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0)
    | _ -> Alcotest.fail "expected a single Get"
  done;
  let hottest = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool)
    (Printf.sprintf "zipf hot key dominates (hottest=%d)" hottest)
    true (hottest > 500)

let test_ycsb_cluster_run () =
  (* End-to-end: YCSB-A on a small cluster keeps strong consistency. *)
  let config =
    { Core.Config.default with replicas = 3; seed = 3; record_log = true;
      gc_interval_ms = 0.0 }
  in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Coarse
      ~schemas:(Workload.Ycsb.schemas ycsb_params)
      ~load:(Workload.Ycsb.load ycsb_params)
      ()
  in
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0
    (Workload.Ycsb.workload ycsb_params Workload.Ycsb.A);
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:2_000.0;
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "committed work" true (List.length log > 100);
  Alcotest.(check int) "strongly consistent" 0
    (List.length (Check.Runlog.strong_consistency log));
  Alcotest.(check int) "first-committer-wins" 0
    (List.length (Check.Runlog.first_committer_wins log))

(* --- TPC-C --- *)

let tpcc_params =
  { Workload.Tpcc.default with warehouses = 2; customers_per_district = 30;
    items = 100; initial_orders_per_district = 20 }

let tpcc_db () =
  let db = Storage.Database.create () in
  List.iter (fun s -> ignore (Storage.Database.create_table db s)) Workload.Tpcc.schemas;
  Workload.Tpcc.load tpcc_params db;
  db

let test_tpcc_population () =
  let db = tpcc_db () in
  let count name = Storage.Table.row_count (Storage.Database.table db name) ~at:0 in
  Alcotest.(check int) "warehouses" 2 (count "warehouse");
  Alcotest.(check int) "districts" 20 (count "district");
  Alcotest.(check int) "customers" 600 (count "tpcc_customer");
  Alcotest.(check int) "stock is warehouses x items" 200 (count "stock");
  Alcotest.(check int) "orders" 400 (count "tpcc_orders");
  Alcotest.(check int) "order lines" 2000 (count "tpcc_order_line");
  (* 30% of initial orders are undelivered. *)
  Alcotest.(check int) "new_order backlog" 120 (count "new_order")

let test_tpcc_transactions_execute () =
  let db = tpcc_db () in
  let rng = Util.Rng.create 51 in
  List.iter
    (fun tx ->
      for _ = 1 to 20 do
        let req = Workload.Tpcc.request tpcc_params tx rng in
        let txn = Storage.Txn.begin_ db in
        List.iter
          (fun stmt ->
            match Storage.Query.exec txn stmt with
            | Storage.Query.Error msg, _ ->
              Alcotest.failf "%s: %s" (Workload.Tpcc.tx_name tx) msg
            | (Storage.Query.Rows _ | Storage.Query.Affected _), _ -> ())
          req.Core.Transaction.statements;
        match Storage.Txn.commit_standalone txn with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s commit: %s" (Workload.Tpcc.tx_name tx) e
      done)
    [ Workload.Tpcc.New_order; Workload.Tpcc.Payment; Workload.Tpcc.Order_status;
      Workload.Tpcc.Delivery; Workload.Tpcc.Stock_level ]

let test_tpcc_mix () =
  let rng = Util.Rng.create 53 in
  let updates = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Workload.Tpcc.is_update_tx (Workload.Tpcc.sample_tx rng) then incr updates
  done;
  let frac = float_of_int !updates /. float_of_int n in
  (* new_order + payment + delivery = 92%. *)
  Alcotest.(check bool)
    (Printf.sprintf "update fraction ~0.92 (got %.3f)" frac)
    true
    (Float.abs (frac -. 0.92) < 0.02)

let test_tpcc_serializable_under_si () =
  (* The classic result the paper leans on: TPC-C has no dangerous
     structure, so it runs serializably under SI/GSI. *)
  Alcotest.(check bool) "no dangerous structures" true
    (Check.Si_analysis.serializable_under_si Workload.Tpcc.profiles)

let test_tpcc_cluster_run () =
  let config =
    { Core.Config.default with replicas = 3; seed = 13; record_log = true;
      gc_interval_ms = 0.0 }
  in
  (* Spec-shaped contention: ~2-3 terminals per warehouse. *)
  let params = { tpcc_params with Workload.Tpcc.warehouses = 4 } in
  let cluster =
    Core.Cluster.create ~config ~mode:Core.Consistency.Fine
      ~schemas:Workload.Tpcc.schemas
      ~load:(Workload.Tpcc.load params)
      ()
  in
  (* The spec paces terminals with keying/think times; without any, ten
     closed-loop clients over two warehouses turn the w_ytd hot row into
     a conflict storm. A short think time restores the spec's shape. *)
  Core.Client.spawn_many cluster ~n:10 ~first_sid:0
    {
      (Workload.Tpcc.workload params) with
      Core.Client.think_ms = Core.Client.exp_think ~mean_ms:40.0;
    };
  Core.Cluster.run_for cluster ~warmup_ms:200.0 ~measure_ms:3_000.0;
  let log = Core.Cluster.records cluster in
  Alcotest.(check bool) "committed work" true (List.length log > 100);
  Alcotest.(check int) "table-set strong consistency" 0
    (List.length (Check.Runlog.fine_strong_consistency log));
  Alcotest.(check int) "first-committer-wins" 0
    (List.length (Check.Runlog.first_committer_wins log));
  (* The district hot counter makes write-write aborts expected but
     bounded. *)
  let m = Core.Cluster.metrics cluster in
  Alcotest.(check bool)
    (Printf.sprintf "abort rate sane (got %.3f)" (Core.Metrics.abort_rate m))
    true
    (Core.Metrics.abort_rate m < 0.25)

let suites =
  [
    ( "workload.micro",
      [
        Alcotest.test_case "schema and load" `Quick test_micro_schema_and_load;
        Alcotest.test_case "request shape" `Quick test_micro_request_shape;
        Alcotest.test_case "request targets" `Quick test_micro_request_targets_right_tables;
      ] );
    ( "workload.tpcw",
      [
        Alcotest.test_case "population" `Quick test_tpcw_population;
        Alcotest.test_case "mix weights" `Quick test_tpcw_mix_weights;
        Alcotest.test_case "sampling matches weights" `Quick
          test_tpcw_sampling_matches_weights;
        Alcotest.test_case "transactions execute" `Quick test_tpcw_transactions_execute;
        Alcotest.test_case "update classification" `Quick test_tpcw_update_classification;
        Alcotest.test_case "cart per session" `Quick test_tpcw_cart_isolated_per_session;
        Alcotest.test_case "table-sets are supersets" `Quick
          test_tpcw_table_sets_are_supersets;
      ] );
    ( "workload.tpcc",
      [
        Alcotest.test_case "population" `Quick test_tpcc_population;
        Alcotest.test_case "transactions execute" `Quick test_tpcc_transactions_execute;
        Alcotest.test_case "mix fractions" `Quick test_tpcc_mix;
        Alcotest.test_case "serializable under SI" `Quick test_tpcc_serializable_under_si;
        Alcotest.test_case "cluster run is consistent" `Quick test_tpcc_cluster_run;
      ] );
    ( "workload.ycsb",
      [
        Alcotest.test_case "population" `Quick test_ycsb_population;
        Alcotest.test_case "mix fractions" `Quick test_ycsb_mix_fractions;
        Alcotest.test_case "requests execute" `Quick test_ycsb_requests_execute;
        Alcotest.test_case "zipf skew" `Quick test_ycsb_skew;
        Alcotest.test_case "cluster run is consistent" `Quick test_ycsb_cluster_run;
      ] );
  ]
